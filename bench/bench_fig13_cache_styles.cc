/**
 * @file
 * Figure 13 (cache implementation styles): the Traveller Cache (DRAM
 * data + SRAM tags) against a pure on-chip SRAM data cache and a DRAM
 * cache with in-DRAM tags, all with hybrid scheduling and the same data
 * capacity. Reports speedup and dynamic DRAM energy plus the area
 * argument of Section 7.2.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace abndp;
    using namespace abndp::bench;

    Options opts = parseOptions(argc, argv, /*sweepBench=*/true);
    printBanner("Figure 13 — Traveller vs SRAM-data vs in-DRAM-tag cache",
                "SRAM cache ~15% faster / 23% less energy but needs an "
                "unrealistic 16.12mm2 per unit; in-DRAM tags cost ~21% "
                "slowdown and ~54% more energy; Traveller needs 0.32mm2");

    struct Style
    {
        const char *label;
        CacheStyle style;
    };
    const Style styles[] = {
        {"Traveller", CacheStyle::TravellerSramTags},
        {"SRAM data", CacheStyle::SramData},
        {"DRAM tags", CacheStyle::DramTags},
    };

    TextTable table({"workload", "style", "speedup vs Traveller",
                     "dyn. DRAM energy vs Traveller"});

    for (const auto &wl : representativeWorkloadNames()) {
        WorkloadSpec spec = specFor(wl, opts);
        double baseTicks = 0.0, baseDram = 0.0;
        for (const auto &s : styles) {
            ExperimentOptions eopts;
            eopts.verify = opts.verify;
            eopts.cacheStyle = s.style;
            RunMetrics m =
                runExperiment(opts.base, Design::O, spec, eopts);
            if (s.style == CacheStyle::TravellerSramTags) {
                baseTicks = static_cast<double>(m.ticks);
                baseDram = m.energy.dram();
            }
            table.addRow({wl, s.label, fmt(baseTicks / m.ticks),
                          fmt(baseDram > 0 ? m.energy.dram() / baseDram
                                           : 0.0)});
        }
    }
    table.print(std::cout);

    std::cout << "\nArea accounting (per NDP unit, CACTI-class):\n"
              << "  8MB SRAM data cache : ~16.12 mm^2 (impractical)\n"
              << "  Traveller tag SRAM  : ~0.32 mm^2 (160 kB tags)\n";
    return 0;
}
