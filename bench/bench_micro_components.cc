/**
 * @file
 * Component microbenchmarks (google-benchmark): throughput of the hot
 * simulator primitives — camp mapping, cache probes, the event queue,
 * DRAM/network reservations, and scheduler scoring. These guard the
 * simulator's own performance, not the paper's results.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "cache/camp_mapping.hh"
#include "cache/set_assoc_cache.hh"
#include "cache/traveller_cache.hh"
#include "common/config.hh"
#include "common/rng.hh"
#include "energy/energy.hh"
#include "mem/address_map.hh"
#include "mem/meter_backend.hh"
#include "net/network.hh"
#include "net/topology.hh"
#include "sched/scheduler.hh"
#include "sim/bandwidth_meter.hh"
#include "sim/event_queue.hh"

namespace abndp
{

namespace
{

SystemConfig
cachedConfig()
{
    SystemConfig cfg;
    cfg.traveller.style = CacheStyle::TravellerSramTags;
    return cfg;
}

void
BM_Mix64(benchmark::State &state)
{
    std::uint64_t x = 1;
    for (auto _ : state) {
        x = mix64(x);
        benchmark::DoNotOptimize(x);
    }
}
BENCHMARK(BM_Mix64);

void
BM_RngNext(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void
BM_EventQueueSchedule(benchmark::State &state)
{
    EventQueue eq;
    Tick t = 0;
    for (auto _ : state) {
        eq.schedule(++t, [] {});
        if (eq.size() > 1024)
            eq.runAll();
    }
}
BENCHMARK(BM_EventQueueSchedule);

void
BM_CampCandidates(benchmark::State &state)
{
    auto cfg = cachedConfig();
    Topology topo(cfg);
    AddressMap amap(cfg);
    CampMapping camps(cfg, topo, amap);
    CandidateList cl;
    Addr a = 0;
    for (auto _ : state) {
        camps.candidates(a, cl);
        benchmark::DoNotOptimize(cl.loc[0]);
        a += 64;
    }
}
BENCHMARK(BM_CampCandidates);

void
BM_NearestCandidate(benchmark::State &state)
{
    auto cfg = cachedConfig();
    Topology topo(cfg);
    AddressMap amap(cfg);
    CampMapping camps(cfg, topo, amap);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            camps.nearestCandidate(a, static_cast<UnitId>(a / 64 % 128)));
        a += 64;
    }
}
BENCHMARK(BM_NearestCandidate);

void
BM_L1Access(benchmark::State &state)
{
    SystemConfig cfg;
    SetAssocCache l1(cfg.l1d);
    Addr a = 0;
    for (auto _ : state) {
        if (!l1.access(a))
            l1.insert(a);
        a = (a + 64) % (1 << 20);
    }
}
BENCHMARK(BM_L1Access);

void
BM_TravellerLookupInsert(benchmark::State &state)
{
    auto cfg = cachedConfig();
    TravellerCache tc(cfg, 1);
    Addr a = 0;
    for (auto _ : state) {
        if (!tc.lookup(a))
            tc.maybeInsert(a);
        a = (a + 64) % (1 << 22);
    }
}
BENCHMARK(BM_TravellerLookupInsert);

void
BM_DramAccess(benchmark::State &state)
{
    SystemConfig cfg;
    EnergyAccount energy(cfg);
    MeterBackend dram(cfg, energy);
    Tick t = 0;
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dram.access(a, 64, false, false, t));
        a += 4096;
        t += 100000;
    }
}
BENCHMARK(BM_DramAccess);

void
BM_NetworkTransfer(benchmark::State &state)
{
    SystemConfig cfg;
    Topology topo(cfg);
    EnergyAccount energy(cfg);
    Network net(cfg, topo, energy);
    Tick t = 0;
    UnitId dst = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(net.transfer(0, dst, 80, t));
        dst = (dst + 17) % 128;
        if (dst == 0)
            dst = 1;
        t += 100000;
    }
}
BENCHMARK(BM_NetworkTransfer);

void
BM_BandwidthMeterReserve(benchmark::State &state)
{
    BandwidthMeter m;
    Tick t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(m.reserve(t, 50));
        t += 60;
    }
}
BENCHMARK(BM_BandwidthMeterReserve);

void
BM_SchedulerChoose(benchmark::State &state)
{
    auto cfg = cachedConfig();
    cfg.sched.policy = SchedPolicy::Hybrid;
    Topology topo(cfg);
    AddressMap amap(cfg);
    CampMapping camps(cfg, topo, amap);
    Scheduler sched(cfg, topo, camps);

    // A representative vertex task: one main record + 16 neighbors.
    Task task;
    Rng rng(3);
    for (int i = 0; i < 17; ++i)
        task.hint.data.push_back(amap.unitBase(
                                     static_cast<UnitId>(rng.below(128)))
                                 + rng.below(1 << 20) * 64);
    task.mainHome = amap.homeOf(task.hint.data[0]);
    task.loadEstimate = sched.estimateLoad(task);

    UnitId creator = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sched.choose(task, creator));
        creator = (creator + 1) % 128;
    }
}
BENCHMARK(BM_SchedulerChoose);

} // namespace
} // namespace abndp

BENCHMARK_MAIN();
