/**
 * @file
 * Figure 2 (motivation): effects of lowest-distance mapping (LDM = Sm)
 * and work-stealing scheduling (WS = Sl) on remote accesses (total
 * interconnect hops) and load imbalance (execution-cycle distribution
 * across NDP units), running Page Rank.
 */

#include <algorithm>
#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace abndp;
    using namespace abndp::bench;

    Options opts = parseOptions(argc, argv);
    printBanner("Figure 2 — the remote-access / load-balance tradeoff",
                "LDM cuts hops but the busiest unit slows ~1.43x; WS "
                "balances load but raises hop counts");

    WorkloadSpec spec = specFor("pr", opts);

    TextTable hops({"design", "interconnect hops", "vs BASE"});
    TextTable cycles({"design", "min(Mcyc)", "p25", "median", "p75",
                      "max", "max/median"});

    double baseHops = 0.0;
    struct Row
    {
        const char *label;
        Design d;
    };
    for (auto [label, d] : {Row{"BASE", Design::B}, Row{"LDM", Design::Sm},
                            Row{"WS", Design::Sl}}) {
        RunMetrics m = runCell(opts.base, d, spec, opts.verify);
        if (d == Design::B)
            baseHops = static_cast<double>(m.interHops);
        hops.addRow({label, fmt(static_cast<double>(m.interHops), 0),
                     fmt(m.interHops / baseHops)});

        // Per-unit execution cycles = busiest core per unit in cycles.
        auto cfg = applyDesign(opts.base, d);
        std::vector<double> unitCycles;
        for (std::size_t u = 0; u < m.coreActiveTicks.size();
             u += cfg.coresPerUnit) {
            Tick busy = 0;
            for (std::uint32_t c = 0; c < cfg.coresPerUnit; ++c)
                busy += m.coreActiveTicks[u + c];
            unitCycles.push_back(static_cast<double>(busy)
                                 / cfg.ticksPerCycle() / 1e6);
        }
        std::sort(unitCycles.begin(), unitCycles.end());
        auto pct = [&](double p) {
            return unitCycles[static_cast<std::size_t>(
                p * (unitCycles.size() - 1))];
        };
        cycles.addRow({label, fmt(pct(0.0)), fmt(pct(0.25)),
                       fmt(pct(0.5)), fmt(pct(0.75)), fmt(pct(1.0)),
                       fmt(pct(0.5) > 0 ? pct(1.0) / pct(0.5) : 0.0)});
    }

    std::cout << "Remote accesses (Page Rank):\n";
    hops.print(std::cout);
    std::cout << "\nExecution cycles across NDP units (box-plot data):\n";
    cycles.print(std::cout);
    return 0;
}
