/**
 * @file
 * Ablations of secondary design choices the paper discusses in text:
 *
 *  1. Replacement policy (Section 4.4): "little performance difference
 *     between an LRU and a random policy" — random avoids the metadata.
 *  2. Programmer workload hints (Section 3.1): the scheduler's
 *     memory-cost estimate should be as good as exact hint.workload
 *     values ("the estimation only needs to be approximate").
 *  3. Data placement: the element-interleaved baseline placement vs
 *     naive blocked partitioning.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/ndp_system.hh"
#include "workloads/graph_gen.hh"
#include "workloads/pagerank.hh"

int
main(int argc, char **argv)
{
    using namespace abndp;
    using namespace abndp::bench;

    Options opts = parseOptions(argc, argv, /*sweepBench=*/true);
    printBanner("Ablations — replacement, load hints, data placement",
                "Section 4.4: LRU ~= random replacement; Section 3.1: "
                "estimated loads suffice; blocked placement destroys "
                "the baseline's balance");

    // ---- 1. Traveller replacement policy ----
    {
        TextTable table({"workload", "policy", "time (ms)", "campHit",
                         "speedup vs random"});
        for (const auto &wl : {std::string("pr"), std::string("gcn")}) {
            WorkloadSpec spec = specFor(wl, opts);
            double base = 0.0;
            for (ReplPolicy repl : {ReplPolicy::Random, ReplPolicy::Lru}) {
                SystemConfig cfg = opts.base;
                cfg.traveller.repl = repl;
                RunMetrics m = runCell(cfg, Design::O, spec, opts.verify);
                if (repl == ReplPolicy::Random)
                    base = static_cast<double>(m.ticks);
                table.addRow({wl,
                              repl == ReplPolicy::Random ? "random"
                                                         : "LRU",
                              fmt(m.seconds() * 1e3),
                              fmt(m.campHitRate()),
                              fmt(base / m.ticks)});
            }
        }
        std::cout << "1. Traveller Cache replacement policy:\n";
        table.print(std::cout);
    }

    // ---- 2. Programmer workload hints vs estimation ----
    {
        TextTable table({"workload", "hint.workload", "time (ms)",
                         "imbalance", "speedup vs estimated"});
        for (const auto &wl :
             {std::string("pr"), std::string("gcn"), std::string("spmv")}) {
            double base = 0.0;
            for (bool explicit_hints : {false, true}) {
                WorkloadSpec spec = specFor(wl, opts);
                spec.explicitLoadHints = explicit_hints;
                RunMetrics m =
                    runCell(opts.base, Design::O, spec, opts.verify);
                if (!explicit_hints)
                    base = static_cast<double>(m.ticks);
                table.addRow({wl,
                              explicit_hints ? "programmer" : "estimated",
                              fmt(m.seconds() * 1e3), fmt(m.imbalance()),
                              fmt(base / m.ticks)});
            }
        }
        std::cout << "\n2. Scheduler load information:\n";
        table.print(std::cout);
    }

    // ---- 3. Data placement ----
    {
        TextTable table({"placement", "design", "time (ms)", "imbalance",
                         "hops (k)"});
        RmatParams p;
        p.scale = opts.scale;
        p.seed = opts.seed;
        p.undirected = false;
        for (Placement placement :
             {Placement::Interleaved, Placement::Blocked}) {
            for (Design d : {Design::B, Design::O}) {
                NdpSystem sys(applyDesign(opts.base, d));
                PageRankWorkload pr(makeRmatGraph(p), 4, 1e-7, placement);
                RunMetrics m = sys.run(pr);
                if (opts.verify && !pr.verify())
                    fatal("placement ablation verification failed");
                table.addRow({placement == Placement::Interleaved
                                  ? "interleaved"
                                  : "blocked",
                              designName(d), fmt(m.seconds() * 1e3),
                              fmt(m.imbalance()),
                              fmt(m.interHops / 1000.0, 1)});
            }
        }
        std::cout << "\n3. Page Rank data placement:\n";
        table.print(std::cout);
    }
    return 0;
}
