/**
 * @file
 * Hierarchical load-balancer benchmark (lb extension, not a paper
 * figure): runs the Figure-6 batch grid and a skewed open-loop serving
 * stream over the extension designs `HLB` / `HLB-mig` next to the
 * paper's `B` and `O` rows, reporting per cell the simulated time,
 * speedup over B, load imbalance, and the new lb counters (intra/inter
 * sheds, re-homed blocks, stale-camp invalidation sweeps, migration
 * NoC traffic).
 *
 * --workloads resizes the batch grid (comma-separated);
 * --requests/--rate/--skew shape the serving stream (kv point lookups
 * at Zipf 0.99 by default, where hot-key imbalance is what the
 * balancer exists to absorb).
 *
 * --out=FILE writes one machine-readable JSON line with host
 * throughput; --compare=FILE checks this run's events_per_sec against
 * a baseline written by a previous --out run (same convention as
 * bench_mem): the process exits nonzero when throughput regressed by
 * more than --tolerance (default 0.10). A missing or unparsable
 * baseline warns and passes, so the first CI run on a fresh cache
 * succeeds.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"

namespace
{

/**
 * Extract the number after "\"key\":" from a one-line JSON record.
 * @return false when the key is absent (malformed baseline).
 */
bool
extractJsonNumber(const std::string &json, const std::string &key,
                  double &out)
{
    auto pos = json.find("\"" + key + "\":");
    if (pos == std::string::npos)
        return false;
    pos += key.size() + 3;
    try {
        out = std::stod(json.substr(pos));
    } catch (...) {
        return false;
    }
    return true;
}

/** Split a comma-separated flag value; empty fields are dropped. */
std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::istringstream iss(s);
    std::string tok;
    while (std::getline(iss, tok, ','))
        if (!tok.empty())
            out.push_back(tok);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace abndp;
    using namespace abndp::bench;

    Options opts = parseOptions(argc, argv, /*sweepBench=*/true);
    const std::string outPath = opts.flags.getString("out", "");
    const std::vector<std::string> workloads =
        splitCsv(opts.flags.getString("workloads", "pr,bfs"));
    const std::uint64_t requests =
        opts.flags.getUint("requests", 200000);
    const double rate = opts.flags.getDouble("rate", 8.0);
    const double skew = opts.flags.getDouble("skew", 0.99);
    if (workloads.empty())
        fatal("--workloads must name at least one workload");

    printBanner("Hierarchical load balancing — HLB/HLB-mig vs B and O",
                "(extension) the paper balances load by caching at the "
                "requester (Traveller); HLB sheds queued tasks across "
                "the two NoC tiers and HLB-mig re-homes hot blocks — "
                "both must land between B and O on batch graphs, and "
                "re-homing must pay off under a skewed serving stream");

    const std::vector<Design> designs =
        {Design::B, Design::O, Design::Hlb, Design::HlbM};

    auto start = std::chrono::steady_clock::now();
    std::uint64_t events = 0;

    // Batch grid: the Figure-6 workloads under the lb design family.
    std::vector<CellSpec> grid;
    for (const std::string &wl : workloads) {
        WorkloadSpec spec = specFor(wl, opts);
        for (Design d : designs)
            grid.push_back(cellFor(d, spec, opts));
    }
    std::vector<RunMetrics> results = runGrid(opts, grid);

    TextTable table({"workload", "design", "time (ms)", "speedup",
                     "imbalance", "shedIntra", "shedInter", "migrated",
                     "invalSweeps", "migKB"});
    std::size_t cellIdx = 0;
    for (const std::string &wl : workloads) {
        double baseTicks = 0.0;
        for (Design d : designs) {
            const RunMetrics &m = results[cellIdx++];
            events += m.simEvents;
            if (d == Design::B)
                baseTicks = static_cast<double>(m.ticks);
            table.addRow({wl, designName(d), fmt(m.seconds() * 1e3),
                          baseTicks > 0.0
                              ? fmt(baseTicks / m.ticks)
                              : "-",
                          fmt(m.imbalance()),
                          std::to_string(m.tasksShedIntra),
                          std::to_string(m.tasksShedInter),
                          std::to_string(m.blocksMigrated),
                          std::to_string(m.migrationInvalidations),
                          fmt(m.migrationTrafficBytes / 1024.0, 1)});
        }
    }
    table.print(std::cout);

    // Skewed serving stream: hot-key imbalance is the case re-homing
    // targets — a handful of keys dominate the open-loop load, so the
    // home units of those blocks saturate while the rest idle.
    std::cout << "\nOpen-loop kv serving at Zipf " << fmt(skew, 2)
              << " (" << requests << " requests, " << fmt(rate, 1)
              << "/us):\n";
    WorkloadSpec servingSpec = specFor("kv", opts);
    std::vector<CellSpec> servingGrid;
    for (Design d : designs) {
        CellSpec cell = cellFor(d, servingSpec, opts);
        SystemConfig cfg = opts.base;
        cfg.serving.requests = requests;
        cfg.serving.ratePerUs = rate;
        cfg.serving.zipfS = skew;
        cell.config = cfg;
        servingGrid.push_back(cell);
    }
    std::vector<RunMetrics> served = runGrid(opts, servingGrid);

    TextTable stable({"design", "p50_ns", "p99_ns", "goodput_q/s",
                      "miss_rate", "shedIntra", "shedInter",
                      "migrated"});
    std::ostringstream json;
    json << "{\"bench\":\"lb\""
         << ",\"scale\":" << opts.scale
         << ",\"requests\":" << requests
         << ",\"cells\":" << grid.size() + servingGrid.size();
    for (std::size_t i = 0; i < designs.size(); ++i) {
        const RunMetrics &m = served[i];
        events += m.simEvents;
        stable.addRow({designName(designs[i]), fmt(m.servingP50Ns),
                       fmt(m.servingP99Ns),
                       fmt(m.servingGoodputQps, 0),
                       fmt(m.servingSloMissRate, 4),
                       std::to_string(m.tasksShedIntra),
                       std::to_string(m.tasksShedInter),
                       std::to_string(m.blocksMigrated)});
        json << ",\"serving_p99_ns_" << designName(designs[i])
             << "\":" << m.servingP99Ns;
    }
    stable.print(std::cout);
    auto end = std::chrono::steady_clock::now();

    double wall = std::chrono::duration<double>(end - start).count();
    json << ",\"sim_events\":" << events
         << ",\"wall_seconds\":" << wall
         << ",\"events_per_sec\":" << (wall > 0 ? events / wall : 0)
         << "}";
    std::cout << json.str() << "\n";
    if (!outPath.empty()) {
        std::ofstream out(outPath);
        if (!out)
            fatal("cannot write ", outPath);
        out << json.str() << "\n";
    }

    const std::string comparePath = opts.flags.getString("compare", "");
    if (!comparePath.empty()) {
        double tolerance = opts.flags.getDouble("tolerance", 0.10);
        std::ifstream baseFile(comparePath);
        std::string baseline;
        if (!baseFile || !std::getline(baseFile, baseline)) {
            warn("lb baseline ", comparePath,
                 " missing; skipping comparison (first run?)");
            return 0;
        }
        double baseEps = 0.0;
        if (!extractJsonNumber(baseline, "events_per_sec", baseEps)
            || baseEps <= 0.0) {
            warn("lb baseline ", comparePath,
                 " has no usable events_per_sec; skipping comparison");
            return 0;
        }
        double curEps = wall > 0 ? events / wall : 0;
        double ratio = curEps / baseEps;
        std::cerr << "bench_lb compare: " << curEps << " vs baseline "
                  << baseEps << " events/sec (x" << ratio
                  << ", tolerance -" << tolerance * 100 << "%)\n";
        if (ratio < 1.0 - tolerance) {
            std::cerr << "bench_lb: throughput regression beyond "
                      << tolerance * 100 << "% tolerance\n";
            return 1;
        }
    }
    return 0;
}
