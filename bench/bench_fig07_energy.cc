/**
 * @file
 * Figure 7 (energy): total energy of every NDP design normalized to B,
 * broken into the paper's four components — cores + SRAM, DRAM (memory
 * + cache), interconnect, static.
 */

#include <iostream>
#include <map>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace abndp;
    using namespace abndp::bench;

    Options opts = parseOptions(argc, argv);
    printBanner("Figure 7 — energy breakdown (normalized to B)",
                "O consumes the least energy: 24.6% avg / 40.1% max "
                "reduction; interconnect energy tracks hop counts; DRAM "
                "energy rises slightly with Traveller insertions");

    const auto &workloads = allWorkloadNames();
    const auto &designs = ndpDesigns();

    TextTable table({"workload", "design", "core+SRAM", "DRAM(mem)",
                     "DRAM(cache)", "interconnect", "static", "total"});

    std::vector<CellSpec> grid;
    for (const auto &wl : workloads) {
        WorkloadSpec spec = specFor(wl, opts);
        for (Design d : designs)
            grid.push_back(cellFor(d, spec, opts));
    }
    std::vector<RunMetrics> results = runGrid(opts, grid);

    std::vector<double> oReduction;
    std::size_t cell = 0;
    for (const auto &wl : workloads) {
        double baseTotal = 0.0;
        for (Design d : designs) {
            const RunMetrics &m = results[cell++];
            const auto &e = m.energy;
            if (d == Design::B)
                baseTotal = e.total();
            table.addRow({wl, designName(d),
                          fmt(e.coreSramPj / baseTotal),
                          fmt(e.dramMemPj / baseTotal),
                          fmt(e.dramCachePj / baseTotal),
                          fmt(e.netPj / baseTotal),
                          fmt(e.staticPj / baseTotal),
                          fmt(e.total() / baseTotal)});
            if (d == Design::O)
                oReduction.push_back(e.total() / baseTotal);
        }
    }
    table.print(std::cout);

    double avg = geomean(oReduction);
    double best = 1.0;
    for (double r : oReduction)
        best = std::min(best, r);
    std::cout << "\nO vs B energy: geomean " << fmt((1.0 - avg) * 100, 1)
              << "% reduction (paper: 24.6%), best "
              << fmt((1.0 - best) * 100, 1) << "% (paper: 40.1%)\n";
    return 0;
}
