/**
 * @file
 * Resilience benchmark (robustness extension, not a paper figure): every
 * Table-2 NDP design under injected hardware skew — straggler units at a
 * range of count x derating points, plus optional link faults and DRAM
 * ECC retries (--link-faults / --drop-prob / --ecc-prob).
 *
 * The no-fault row reproduces the design_matrix shape (O fastest, Sl/Sh
 * above B, Sm/C below B); the faulted rows show how gracefully each
 * scheduling policy degrades. Load-aware policies (Sl, Sh, O) see the
 * derated units through the workload-exchange snapshot and steer tasks
 * away; locality-only placement (B, Sm, C) keeps feeding the slow units
 * and degrades roughly with 1/derate.
 */

#include <iostream>

#include "bench_common.hh"

namespace
{

/** One fault point of the sweep. */
struct FaultPoint
{
    std::string label;
    abndp::FaultConfig fault;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace abndp;
    using namespace abndp::bench;

    Options opts = parseOptions(argc, argv, /*sweepBench=*/true);
    const auto linkFaults = static_cast<std::uint32_t>(
        opts.flags.getUint("link-faults", 0));
    const double dropProb = opts.flags.getDouble("drop-prob", 0.05);
    const double eccProb = opts.flags.getDouble("ecc-prob", 0.0);

    printBanner("Resilience — time vs. injected stragglers (ms, and "
                "slowdown vs. each design's own no-fault run)",
                "not a paper artifact; expectation: load-aware designs "
                "(Sl, Sh, O) degrade gracefully, locality-only placement "
                "(B, Sm, C) degrades ~1/derate");

    std::vector<FaultPoint> points;
    points.push_back({"none", {}});
    auto stragglers = [](std::uint32_t count, double derate) {
        FaultConfig f;
        f.straggler.count = count;
        f.straggler.computeDerate = derate;
        f.straggler.bandwidthDerate = derate;
        return f;
    };
    points.push_back({"8 units @ 0.50x", stragglers(8, 0.5)});
    points.push_back({"8 units @ 0.25x", stragglers(8, 0.25)});
    points.push_back({"24 units @ 0.50x", stragglers(24, 0.5)});
    for (auto &p : points) {
        p.fault.link.count = linkFaults;
        p.fault.link.dropProb = linkFaults ? dropProb : 0.0;
        p.fault.dram.eccRetryProb = eccProb;
        if (linkFaults || eccProb > 0.0)
            p.label += " +net/dram";
    }

    const auto &designs = ndpDesigns();
    WorkloadSpec spec = specFor("pr", opts);

    TextTable table({"faults", "design", "time_ms", "slowdown",
                     "vs_B", "hops", "netRetries", "eccRetries",
                     "imbalance", "util"});

    std::vector<CellSpec> grid;
    for (const auto &point : points) {
        for (Design d : designs) {
            CellSpec cell;
            cell.design = d;
            cell.workload = spec;
            cell.opts.verify = opts.verify;
            cell.opts.fault = point.fault;
            grid.push_back(cell);
        }
    }
    std::vector<RunMetrics> results = runGrid(opts, grid);

    std::vector<double> cleanMs(designs.size(), 0.0);
    std::size_t cellIdx = 0;
    for (const auto &point : points) {
        double baseMs = 0.0;
        for (std::size_t i = 0; i < designs.size(); ++i) {
            Design d = designs[i];
            const RunMetrics &m = results[cellIdx++];
            const double ms = m.seconds() * 1e3;
            if (d == Design::B)
                baseMs = ms;
            if (point.label == points.front().label)
                cleanMs[i] = ms;
            table.addRow({point.label, designName(d), fmt(ms),
                          fmt(cleanMs[i] > 0 ? ms / cleanMs[i] : 0.0),
                          fmt(baseMs > 0 ? ms / baseMs : 0.0),
                          std::to_string(m.interHops),
                          std::to_string(m.netRetries),
                          std::to_string(m.dramEccRetries),
                          fmt(m.imbalance()), fmt(m.utilization())});
        }
    }
    table.print(std::cout);
    std::cout << "\nslowdown = time / the same design's no-fault time "
                 "(graceful degradation if close to the derated "
                 "fraction's ideal).\n";
    return 0;
}
