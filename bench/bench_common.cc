#include "bench_common.hh"

#include <cmath>
#include <iostream>

namespace abndp
{
namespace bench
{

Options
parseOptions(int argc, char **argv, bool sweepBench)
{
    Options opts;
    opts.flags.parse(argc, argv);
    opts.scale = static_cast<std::uint32_t>(
        opts.flags.getUint("scale", sweepBench ? 13 : 14));
    opts.verify = opts.flags.getBool("verify", false);
    opts.seed = opts.flags.getUint("seed", 42);
    opts.base.seed = opts.flags.getUint("sim-seed", 1);
    opts.run = parseRunFlags(opts.flags);
    opts.threads = opts.run.threads;
    return opts;
}

WorkloadSpec
specFor(const std::string &name, const Options &opts)
{
    WorkloadSpec spec;
    spec.name = name;
    spec.seed = opts.seed;
    spec.scale = opts.scale;
    // Non-graph workloads shrink with the scale knob too so that sweep
    // benches stay fast.
    if (opts.scale < 14) {
        spec.kmeansPoints = 1ull << (opts.scale + 2);
        spec.knnPoints = 1u << (opts.scale + 1);
        spec.knnQueries = 1u << (opts.scale - 3);
        spec.astarQueries = 8;
    }
    return spec;
}

RunMetrics
runCell(const SystemConfig &base, Design d, const WorkloadSpec &spec,
        bool verify)
{
    ExperimentOptions eopts;
    eopts.verify = verify;
    eopts.fatalOnVerifyFailure = true;
    return runExperiment(base, d, spec, eopts);
}

CellSpec
cellFor(Design d, const WorkloadSpec &spec, const Options &opts)
{
    CellSpec cell;
    cell.design = d;
    cell.workload = spec;
    cell.opts.verify = opts.verify;
    cell.opts.fatalOnVerifyFailure = true;
    return cell;
}

std::vector<RunMetrics>
runGrid(const Options &opts, const std::vector<CellSpec> &cells)
{
    return runCells(opts.base, cells, opts.threads);
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : values)
        acc += std::log(v);
    return std::exp(acc / values.size());
}

void
printBanner(const std::string &artifact, const std::string &paper)
{
    std::cout << "==============================================================\n";
    std::cout << "ABNDP reproduction: " << artifact << "\n";
    std::cout << "Paper reports: " << paper << "\n";
    std::cout << "==============================================================\n\n";
}

} // namespace bench
} // namespace abndp
