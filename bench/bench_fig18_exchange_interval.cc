/**
 * @file
 * Figure 18 (workload exchange interval): speedup of the full ABNDP
 * design with exchange intervals 25k .. 800k cycles, normalized per
 * workload to the 25k-cycle interval.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace abndp;
    using namespace abndp::bench;

    Options opts = parseOptions(argc, argv, /*sweepBench=*/true);
    printBanner("Figure 18 — workload exchange interval sweep",
                "the interval can be made quite large without hurting "
                "performance, so the exchange cost is negligible");

    TextTable table([&] {
        std::vector<std::string> header{"workload"};
        for (std::uint64_t i :
             {25000u, 50000u, 100000u, 200000u, 400000u, 800000u})
            header.push_back(std::to_string(i / 1000) + "k");
        return header;
    }());

    for (const auto &wl : representativeWorkloadNames()) {
        WorkloadSpec spec = specFor(wl, opts);
        std::vector<std::string> cells{wl};
        double base = 0.0;
        for (std::uint64_t interval :
             {25000u, 50000u, 100000u, 200000u, 400000u, 800000u}) {
            SystemConfig cfg = opts.base;
            cfg.sched.exchangeIntervalCycles = interval;
            RunMetrics m = runCell(cfg, Design::O, spec, opts.verify);
            if (interval == 25000)
                base = static_cast<double>(m.ticks);
            cells.push_back(fmt(base / m.ticks));
        }
        table.addRow(cells);
    }
    table.print(std::cout);
    return 0;
}
