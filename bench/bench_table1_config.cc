/**
 * @file
 * Table 1 (system configurations): print the default configuration and
 * the Section-4.3 tag-storage arithmetic, so the reproduction's
 * parameters are auditable against the paper.
 */

#include <iostream>

#include "bench_common.hh"
#include "cache/camp_mapping.hh"
#include "mem/address_map.hh"
#include "net/topology.hh"

int
main(int argc, char **argv)
{
    using namespace abndp;
    using namespace abndp::bench;

    Options opts = parseOptions(argc, argv);
    printBanner("Table 1 — system configurations",
                "4x4 stacks, 128 NDP units, 64GB; Traveller Cache 1/64 "
                "capacity, C=3, 40% bypass; B = 3*Dinter");

    SystemConfig cfg = applyDesign(opts.base, Design::O);
    cfg.print(std::cout);

    Topology topo(cfg);
    AddressMap amap(cfg);
    CampMapping camps(cfg, topo, amap);
    std::cout << "\nSection 4.3 tag-storage accounting:\n";
    std::cout << "  cache sets per unit        : " << cfg.travellerSets()
              << "\n";
    std::cout << "  tag bits (unrestricted)    : "
              << camps.tagBitsUnrestricted() << " (paper: 15)\n";
    std::cout << "  tag bits (camp-restricted) : " << camps.tagBits()
              << " (paper: 10, a 1.5x reduction)\n";
    std::cout << "  SRAM tag storage per unit  : "
              << camps.tagStorageBytes() / 1024 << " kB (paper: 160 kB)\n";
    return 0;
}
