/**
 * @file
 * Figure 14 (cache capacity): remote-access hops of the full ABNDP
 * design with the Traveller Cache sized at 1/512 .. 1/16 of local DRAM,
 * normalized per workload to the smallest capacity.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace abndp;
    using namespace abndp::bench;

    Options opts = parseOptions(argc, argv, /*sweepBench=*/true);
    printBanner("Figure 14 — Traveller capacity sweep (hops)",
                "larger caches keep more data and cut remote accesses, "
                "with diminishing returns beyond 1/64");

    // The paper's datasets are orders of magnitude larger than this
    // repo's default synthetic inputs, so per-unit DRAM is shrunk here
    // to keep the cache-to-working-set ratio in the paper's regime
    // (capacity ratios 1/R are unchanged from Table 1).
    opts.base.memBytesPerUnit =
        opts.flags.getUint("mem-mb", 2) * (1ull << 20);
    std::cout << "(per-unit DRAM scaled to "
              << (opts.base.memBytesPerUnit >> 20)
              << "MB so the 1/R ratios face real pressure)\n\n";

    TextTable table([&] {
        std::vector<std::string> header{"workload"};
        for (std::uint64_t r : {512u, 256u, 128u, 64u, 32u, 16u})
            header.push_back("1/" + std::to_string(r));
        return header;
    }());

    for (const auto &wl : representativeWorkloadNames()) {
        WorkloadSpec spec = specFor(wl, opts);
        std::vector<std::string> cells{wl};
        double base = 0.0;
        for (std::uint64_t r : {512u, 256u, 128u, 64u, 32u, 16u}) {
            SystemConfig cfg = opts.base;
            cfg.traveller.ratioDenom = r;
            RunMetrics m = runCell(cfg, Design::O, spec, opts.verify);
            if (r == 512)
                base = static_cast<double>(m.interHops);
            cells.push_back(fmt(base > 0 ? m.interHops / base : 0.0));
        }
        table.addRow(cells);
    }
    table.print(std::cout);
    return 0;
}
