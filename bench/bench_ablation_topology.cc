/**
 * @file
 * Ablation (beyond the paper): the paper states its design "does not
 * rely on any particular ... interconnect topologies". This bench swaps
 * the intra-stack crossbar for a bidirectional ring and checks that the
 * ABNDP advantages survive the topology change.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace abndp;
    using namespace abndp::bench;

    Options opts = parseOptions(argc, argv, /*sweepBench=*/true);
    printBanner("Ablation — intra-stack crossbar vs ring NoC",
                "(extension) the O-over-B advantage should persist; the "
                "ring adds intra-stack hops, so absolute times rise");

    TextTable table({"workload", "NoC", "B time (ms)", "O time (ms)",
                     "O speedup", "O hops (k)"});

    for (const auto &wl : {std::string("pr"), std::string("bfs"),
                           std::string("gcn")}) {
        WorkloadSpec spec = specFor(wl, opts);
        for (IntraTopology noc :
             {IntraTopology::Crossbar, IntraTopology::Ring}) {
            SystemConfig cfg = opts.base;
            cfg.net.intraTopology = noc;
            RunMetrics b = runCell(cfg, Design::B, spec, opts.verify);
            RunMetrics o = runCell(cfg, Design::O, spec, opts.verify);
            table.addRow({wl,
                          noc == IntraTopology::Crossbar ? "crossbar"
                                                         : "ring",
                          fmt(b.seconds() * 1e3), fmt(o.seconds() * 1e3),
                          fmt(static_cast<double>(b.ticks) / o.ticks),
                          fmt(o.interHops / 1000.0, 1)});
        }
    }
    table.print(std::cout);
    return 0;
}
