/**
 * @file
 * Ablation of the paper's core premise (Section 2.3): the remote-access
 * / load-balance tension comes from *skewed* real-world data. On a
 * uniform-degree graph the baseline has no hotspots, so ABNDP's gain
 * should shrink toward parity; on power-law input it should be large.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/ndp_system.hh"
#include "workloads/graph_gen.hh"
#include "workloads/pagerank.hh"

int
main(int argc, char **argv)
{
    using namespace abndp;
    using namespace abndp::bench;

    Options opts = parseOptions(argc, argv, /*sweepBench=*/true);
    printBanner("Ablation — input skew (the premise of Section 2.3)",
                "(extension) power-law inputs create the hotspots ABNDP "
                "fixes; uniform inputs should show little gain");

    TextTable table({"input", "design", "time (ms)", "imbalance",
                     "O speedup"});

    struct Input
    {
        const char *label;
        Graph graph;
    };
    RmatParams rp;
    rp.scale = opts.scale;
    rp.seed = opts.seed;
    rp.undirected = false;
    std::uint32_t n = 1u << opts.scale;
    Input inputs[] = {
        {"power-law (R-MAT)", makeRmatGraph(rp)},
        {"uniform", makeUniformGraph(n, static_cast<std::uint64_t>(n) * 16,
                                     opts.seed, false)},
    };

    for (auto &input : inputs) {
        double bTicks = 0.0;
        for (Design d : {Design::B, Design::O}) {
            NdpSystem sys(applyDesign(opts.base, d));
            PageRankWorkload pr(input.graph, 4);
            RunMetrics m = sys.run(pr);
            if (opts.verify && !pr.verify())
                fatal("skew ablation verification failed");
            if (d == Design::B)
                bTicks = static_cast<double>(m.ticks);
            table.addRow({input.label, designName(d),
                          fmt(m.seconds() * 1e3), fmt(m.imbalance()),
                          d == Design::O ? fmt(bTicks / m.ticks) : "-"});
        }
    }
    table.print(std::cout);
    return 0;
}
