/**
 * @file
 * Ablation (beyond the paper): exhaustive unit scoring — the paper's
 * scheduler scores every NDP unit — versus a pruned candidate set (the
 * creating unit, the home, the camp candidates of a few hint addresses,
 * and the most idle units). A hardware scheduler would prefer the pruned
 * set; this bench quantifies what it gives up.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace abndp;
    using namespace abndp::bench;

    Options opts = parseOptions(argc, argv, /*sweepBench=*/true);
    printBanner("Ablation — exhaustive vs pruned scheduler scoring",
                "(extension, not in the paper) pruned scoring should be "
                "nearly equivalent: camp candidates + idle units cover "
                "the useful targets");

    TextTable table({"workload", "mode", "time (ms)", "hops (k)",
                     "forwards", "speedup vs exhaustive"});

    for (const auto &wl : representativeWorkloadNames()) {
        WorkloadSpec spec = specFor(wl, opts);
        double baseTicks = 0.0;
        for (bool exhaustive : {true, false}) {
            SystemConfig cfg = opts.base;
            cfg.sched.exhaustiveScoring = exhaustive;
            RunMetrics m = runCell(cfg, Design::O, spec, opts.verify);
            if (exhaustive)
                baseTicks = static_cast<double>(m.ticks);
            table.addRow({wl, exhaustive ? "exhaustive" : "pruned",
                          fmt(m.seconds() * 1e3),
                          fmt(m.interHops / 1000.0, 1),
                          TextTable::fmt(m.forwardedTasks),
                          fmt(baseTicks / m.ticks)});
        }
    }
    table.print(std::cout);
    return 0;
}
