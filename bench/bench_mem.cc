/**
 * @file
 * Memory-backend sweep (not a paper figure): runs a small design grid
 * under every MemBackend — the analytic bandwidth meter and the
 * bank-state DDR model — and reports both the simulated contrast
 * (latency, row-buffer behaviour, ACT stalls) and a machine-readable
 * JSON line with host throughput, so CI can guard the DDR fast path
 * against host-side regressions the same way bench_perf_smoke guards
 * the event kernel.
 *
 * --compare=FILE checks this run's events_per_sec against a baseline
 * JSON line written by a previous run (--out): the process exits
 * nonzero when throughput regressed by more than --tolerance (default
 * 0.10). A missing or unparsable baseline warns and passes, so the
 * first CI run on a fresh cache succeeds.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_common.hh"

namespace
{

/**
 * Extract the number after "\"key\":" from a one-line JSON record.
 * @return false when the key is absent (malformed baseline).
 */
bool
extractJsonNumber(const std::string &json, const std::string &key,
                  double &out)
{
    auto pos = json.find("\"" + key + "\":");
    if (pos == std::string::npos)
        return false;
    pos += key.size() + 3;
    try {
        out = std::stod(json.substr(pos));
    } catch (...) {
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace abndp;
    using namespace abndp::bench;

    Options opts = parseOptions(argc, argv, /*sweepBench=*/true);
    const std::string outPath = opts.flags.getString("out", "");
    const std::string wl = opts.flags.getString("workload", "pr");
    WorkloadSpec spec = specFor(wl, opts);

    printBanner("Memory-backend sweep — analytic meter vs bank-state "
                "DDR",
                "(extension) the design ordering must survive the "
                "backend swap; DDR adds row-buffer and tFAW detail");

    struct Backend
    {
        const char *label;
        MemBackendKind kind;
    };
    const Backend backends[] = {{"meter", MemBackendKind::Meter},
                                {"ddr", MemBackendKind::Ddr}};

    TextTable table({"design", "backend", "time (ms)", "row hit%",
                     "actStalls", "vs meter"});

    auto start = std::chrono::steady_clock::now();
    std::uint64_t events = 0;
    for (Design d : {Design::B, Design::Sl, Design::O}) {
        double meterTicks = 0.0;
        for (const Backend &be : backends) {
            SystemConfig cfg = opts.base;
            cfg.dram.backend = be.kind;
            if (be.kind == MemBackendKind::Ddr)
                cfg.dram.pagePolicy = PagePolicy::Adaptive;
            RunMetrics m = runCell(cfg, d, spec, opts.verify);
            events += m.simEvents;
            std::uint64_t rowRefs = m.dramRowHits + m.dramRowMisses;
            double hitPct = rowRefs
                ? 100.0 * static_cast<double>(m.dramRowHits) / rowRefs
                : 0.0;
            if (be.kind == MemBackendKind::Meter)
                meterTicks = static_cast<double>(m.ticks);
            table.addRow({designName(d), be.label,
                          fmt(m.seconds() * 1e3),
                          be.kind == MemBackendKind::Ddr ? fmt(hitPct, 1)
                                                         : "-",
                          std::to_string(m.dramActStalls),
                          fmt(static_cast<double>(m.ticks) / meterTicks)});
        }
    }
    table.print(std::cout);

    // Row-locality ablation (DDR only): the Traveller set index is
    // low-bit by default, so consecutive blocks occupy consecutive
    // sets and the cache data region inherits DRAM row adjacency
    // (cache/traveller_cache.hh). Hashing the index scatters those
    // blocks across rows; the analytic meter cannot tell the
    // difference, the bank-state backend can.
    std::cout << "\nTraveller set index under the DDR backend:\n";
    TextTable idx({"design", "index", "time (ms)", "row hit%",
                   "rowMisses"});
    for (Design d : {Design::C, Design::O}) {
        for (bool hashed : {false, true}) {
            SystemConfig cfg = opts.base;
            cfg.dram.backend = MemBackendKind::Ddr;
            cfg.dram.pagePolicy = PagePolicy::Adaptive;
            cfg.traveller.hashedIndex = hashed;
            RunMetrics m = runCell(cfg, d, spec, opts.verify);
            events += m.simEvents;
            std::uint64_t rowRefs = m.dramRowHits + m.dramRowMisses;
            double hitPct = rowRefs
                ? 100.0 * static_cast<double>(m.dramRowHits) / rowRefs
                : 0.0;
            idx.addRow({designName(d), hashed ? "hashed" : "low-bit",
                        fmt(m.seconds() * 1e3), fmt(hitPct, 1),
                        std::to_string(m.dramRowMisses)});
        }
    }
    auto end = std::chrono::steady_clock::now();
    idx.print(std::cout);

    double wall = std::chrono::duration<double>(end - start).count();
    std::ostringstream json;
    json << "{\"bench\":\"mem\""
         << ",\"scale\":" << opts.scale
         << ",\"workload\":\"" << wl << "\""
         << ",\"cells\":" << 10
         << ",\"sim_events\":" << events
         << ",\"wall_seconds\":" << wall
         << ",\"events_per_sec\":" << (wall > 0 ? events / wall : 0)
         << "}";
    std::cout << json.str() << "\n";
    if (!outPath.empty()) {
        std::ofstream out(outPath);
        if (!out)
            fatal("cannot write ", outPath);
        out << json.str() << "\n";
    }

    const std::string comparePath = opts.flags.getString("compare", "");
    if (!comparePath.empty()) {
        double tolerance = opts.flags.getDouble("tolerance", 0.10);
        std::ifstream baseFile(comparePath);
        std::string baseline;
        if (!baseFile || !std::getline(baseFile, baseline)) {
            warn("mem baseline ", comparePath,
                 " missing; skipping comparison (first run?)");
            return 0;
        }
        double baseEps = 0.0;
        if (!extractJsonNumber(baseline, "events_per_sec", baseEps)
            || baseEps <= 0.0) {
            warn("mem baseline ", comparePath,
                 " has no usable events_per_sec; skipping comparison");
            return 0;
        }
        double curEps = wall > 0 ? events / wall : 0;
        double ratio = curEps / baseEps;
        std::cerr << "bench_mem compare: " << curEps << " vs baseline "
                  << baseEps << " events/sec (x" << ratio
                  << ", tolerance -" << tolerance * 100 << "%)\n";
        if (ratio < 1.0 - tolerance) {
            std::cerr << "bench_mem: throughput regression beyond "
                      << tolerance * 100 << "% tolerance\n";
            return 1;
        }
    }
    return 0;
}
