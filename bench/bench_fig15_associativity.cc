/**
 * @file
 * Figure 15 (associativity): remote-access hops of the full ABNDP
 * design with Traveller Cache associativity 1..16, normalized per
 * workload to 1-way.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace abndp;
    using namespace abndp::bench;

    Options opts = parseOptions(argc, argv, /*sweepBench=*/true);
    printBanner("Figure 15 — Traveller associativity sweep (hops)",
                "4-way is sufficient: accesses are spread over many "
                "units, so higher associativity buys little");

    // See bench_fig14: shrink per-unit DRAM so the fixed-capacity cache
    // faces the paper's level of pressure.
    opts.base.memBytesPerUnit =
        opts.flags.getUint("mem-mb", 2) * (1ull << 20);
    opts.base.traveller.ratioDenom =
        opts.flags.getUint("ratio", 64);
    std::cout << "(per-unit DRAM "
              << (opts.base.memBytesPerUnit >> 20) << "MB, cache 1/"
              << opts.base.traveller.ratioDenom << ")\n\n";

    TextTable table([&] {
        std::vector<std::string> header{"workload"};
        for (std::uint32_t a : {1u, 2u, 4u, 8u, 16u})
            header.push_back(std::to_string(a) + "-way");
        return header;
    }());

    for (const auto &wl : representativeWorkloadNames()) {
        WorkloadSpec spec = specFor(wl, opts);
        std::vector<std::string> cells{wl};
        double base = 0.0;
        for (std::uint32_t a : {1u, 2u, 4u, 8u, 16u}) {
            SystemConfig cfg = opts.base;
            cfg.traveller.assoc = a;
            RunMetrics m = runCell(cfg, Design::O, spec, opts.verify);
            if (a == 1)
                base = static_cast<double>(m.interHops);
            cells.push_back(fmt(base > 0 ? m.interHops / base : 0.0));
        }
        table.addRow(cells);
    }
    table.print(std::cout);
    return 0;
}
