/**
 * @file
 * Figure 9 (load distribution): active processing cycles of all NDP
 * cores, sorted ascending, per design — printed as deciles of the
 * normalized curve the paper plots.
 */

#include <algorithm>
#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace abndp;
    using namespace abndp::bench;

    Options opts = parseOptions(argc, argv);
    printBanner("Figure 9 — per-core active-cycle distribution",
                "B/Sm curves are steep (hotspots); Sl/Sh/O flatten the "
                "curve; Sm overlaps B on gcn; knn most imbalanced");

    const auto &workloads = representativeWorkloadNames();
    const auto &designs = ndpDesigns();

    for (const auto &wl : workloads) {
        WorkloadSpec spec = specFor(wl, opts);
        std::cout << "--- " << wl
                  << " (cycles normalized to the design mean; sorted "
                     "core percentiles) ---\n";
        TextTable table({"design", "p0", "p25", "p50", "p75", "p90",
                         "p100", "max/mean"});
        for (Design d : designs) {
            RunMetrics m = runCell(opts.base, d, spec, opts.verify);
            std::vector<double> cycles;
            for (Tick t : m.coreActiveTicks)
                cycles.push_back(static_cast<double>(t));
            std::sort(cycles.begin(), cycles.end());
            double mean = m.meanCoreActive();
            auto pct = [&](double p) {
                double v = cycles[static_cast<std::size_t>(
                    p * (cycles.size() - 1))];
                return mean > 0 ? v / mean : 0.0;
            };
            table.addRow({designName(d), fmt(pct(0.0)), fmt(pct(0.25)),
                          fmt(pct(0.5)), fmt(pct(0.75)), fmt(pct(0.9)),
                          fmt(pct(1.0)), fmt(m.imbalance())});
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
