/**
 * @file
 * Figure 17 (hybrid scheduling weight): remote-access hops and speedup
 * of the full ABNDP design with B = alpha * Dinter for alpha 0..6
 * (alpha = 3 = half the 4x4 mesh diameter is the paper default).
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace abndp;
    using namespace abndp::bench;

    Options opts = parseOptions(argc, argv, /*sweepBench=*/true);
    printBanner("Figure 17 — hybrid weight sweep (alpha = B / Dinter)",
                "hops grow with alpha while performance saturates "
                "around alpha = 3 (= d/2)");

    TextTable table({"workload", "alpha", "hops vs a=0", "speedup vs a=0"});

    for (const auto &wl : representativeWorkloadNames()) {
        WorkloadSpec spec = specFor(wl, opts);
        double baseHops = 0.0, baseTicks = 0.0;
        for (double alpha : {0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0}) {
            SystemConfig cfg = opts.base;
            cfg.sched.autoAlpha = false;
            cfg.sched.hybridAlpha = alpha;
            RunMetrics m = runCell(cfg, Design::O, spec, opts.verify);
            if (alpha == 0.0) {
                baseHops = static_cast<double>(m.interHops);
                baseTicks = static_cast<double>(m.ticks);
            }
            table.addRow({wl, fmt(alpha, 0),
                          fmt(baseHops > 0 ? m.interHops / baseHops : 0.0),
                          fmt(baseTicks / m.ticks)});
        }
    }
    table.print(std::cout);
    return 0;
}
