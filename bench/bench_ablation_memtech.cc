/**
 * @file
 * Ablation (beyond the paper's figures, but claimed in Section 3.2):
 * "the hardware architecture does not rely on any particular memory
 * technologies" — swap the HBM-like channel for an HMC-like vault and
 * check the ABNDP advantage persists.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace abndp;
    using namespace abndp::bench;

    Options opts = parseOptions(argc, argv, /*sweepBench=*/true);
    printBanner("Ablation — HBM-like vs HMC-like DRAM organization",
                "(extension) O-over-B speedup should persist across "
                "memory technologies");

    TextTable table({"workload", "DRAM", "B time (ms)", "O time (ms)",
                     "O speedup"});

    struct Tech
    {
        const char *label;
        DramConfig cfg;
    };
    const Tech techs[] = {{"HBM-like", DramConfig::hbm()},
                          {"HMC-like", DramConfig::hmc()}};

    for (const auto &wl : {std::string("pr"), std::string("gcn"),
                           std::string("spmv")}) {
        WorkloadSpec spec = specFor(wl, opts);
        for (const auto &tech : techs) {
            SystemConfig cfg = opts.base;
            cfg.dram = tech.cfg;
            RunMetrics b = runCell(cfg, Design::B, spec, opts.verify);
            RunMetrics o = runCell(cfg, Design::O, spec, opts.verify);
            table.addRow({wl, tech.label, fmt(b.seconds() * 1e3),
                          fmt(o.seconds() * 1e3),
                          fmt(static_cast<double>(b.ticks) / o.ticks)});
        }
    }
    table.print(std::cout);
    return 0;
}
