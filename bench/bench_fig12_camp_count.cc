/**
 * @file
 * Figure 12 (camp-location count): DRAM and interconnect energy of the
 * full ABNDP design for C in {1, 3, 7, 15}, normalized per workload to
 * C = 1.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace abndp;
    using namespace abndp::bench;

    Options opts = parseOptions(argc, argv, /*sweepBench=*/true);
    printBanner("Figure 12 — camp count C sweep (DRAM + net energy)",
                "impact is minor: more camps cut interconnect energy "
                "but add DRAM-cache insertions; C = 3 is a good choice");

    TextTable table({"workload", "C", "DRAM", "interconnect",
                     "DRAM+net"});

    std::vector<CellSpec> grid;
    for (const auto &wl : representativeWorkloadNames()) {
        WorkloadSpec spec = specFor(wl, opts);
        for (std::uint32_t c : {1u, 3u, 7u, 15u}) {
            CellSpec cell = cellFor(Design::O, spec, opts);
            cell.config = opts.base;
            cell.config->traveller.campCount = c;
            grid.push_back(cell);
        }
    }
    std::vector<RunMetrics> results = runGrid(opts, grid);

    std::size_t cellIdx = 0;
    for (const auto &wl : representativeWorkloadNames()) {
        double base = 0.0;
        for (std::uint32_t c : {1u, 3u, 7u, 15u}) {
            const RunMetrics &m = results[cellIdx++];
            double dram = m.energy.dram();
            double net = m.energy.netPj;
            if (c == 1)
                base = dram + net;
            table.addRow({wl, std::to_string(c), fmt(dram / base),
                          fmt(net / base), fmt((dram + net) / base)});
        }
    }
    table.print(std::cout);
    return 0;
}
