/**
 * @file
 * Figure 16 (probabilistic insertion): DRAM and interconnect energy of
 * the full ABNDP design for bypass probabilities 0 .. 0.8, normalized
 * per workload to bypass 0.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace abndp;
    using namespace abndp::bench;

    Options opts = parseOptions(argc, argv, /*sweepBench=*/true);
    printBanner("Figure 16 — insertion bypass probability sweep",
                "more bypassing cuts DRAM-cache insertion energy but "
                "slightly raises hops; insensitive overall, 40% is a "
                "good balance");

    TextTable table({"workload", "bypass", "DRAM", "interconnect",
                     "DRAM+net", "campHit"});

    for (const auto &wl : representativeWorkloadNames()) {
        WorkloadSpec spec = specFor(wl, opts);
        double base = 0.0;
        for (double p : {0.0, 0.2, 0.4, 0.6, 0.8}) {
            SystemConfig cfg = opts.base;
            cfg.traveller.bypassProb = p;
            RunMetrics m = runCell(cfg, Design::O, spec, opts.verify);
            double dram = m.energy.dram();
            double net = m.energy.netPj;
            if (p == 0.0)
                base = dram + net;
            table.addRow({wl, fmt(p, 1), fmt(dram / base),
                          fmt(net / base), fmt((dram + net) / base),
                          fmt(m.campHitRate())});
        }
    }
    table.print(std::cout);
    return 0;
}
