/**
 * @file
 * Shared infrastructure for the per-table/per-figure benchmark binaries.
 * Every binary runs standalone with small defaults (so that looping over
 * build/bench/* regenerates all results) and accepts --scale / --seed /
 * --verify flags to change fidelity.
 */

#ifndef ABNDP_BENCH_BENCH_COMMON_HH
#define ABNDP_BENCH_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/config.hh"
#include "common/table.hh"
#include "core/metrics.hh"
#include "driver/cell_runner.hh"
#include "driver/experiment.hh"
#include "driver/run_flags.hh"
#include "workloads/factory.hh"

namespace abndp
{
namespace bench
{

/** Parsed common options of a benchmark binary. */
struct Options
{
    SystemConfig base;
    CliFlags flags;
    /** Shared run-output flags (driver/run_flags.hh). */
    RunFlags run;
    /** Graph scale for graph workloads (sweeps default smaller). */
    std::uint32_t scale = 14;
    bool verify = false;
    std::uint64_t seed = 42;
    /** Host threads for the cell grid (--threads; 0 = all cores). */
    std::uint32_t threads = 0;
};

/**
 * Parse the common flags. @p sweepBench picks the smaller default scale
 * used by the parameter sweeps (Figures 11-18).
 */
Options parseOptions(int argc, char **argv, bool sweepBench = false);

/** Workload spec sized according to the options. */
WorkloadSpec specFor(const std::string &name, const Options &opts);

/** Run one (design, workload) cell. */
RunMetrics runCell(const SystemConfig &base, Design d,
                   const WorkloadSpec &spec, bool verify);

/** Cell spec with the benchmark's standard verify behavior applied. */
CellSpec cellFor(Design d, const WorkloadSpec &spec, const Options &opts);

/**
 * Run a whole grid of cells on opts.threads host threads (results in
 * cell order; per-cell metrics independent of the thread count).
 */
std::vector<RunMetrics> runGrid(const Options &opts,
                                const std::vector<CellSpec> &cells);

/** Geometric mean of a list of ratios. */
double geomean(const std::vector<double> &values);

/**
 * Print the benchmark banner: which paper artifact this regenerates and
 * what shape the paper reports (EXPERIMENTS.md records the comparison).
 */
void printBanner(const std::string &artifact, const std::string &paper);

/** Shorthand formatter. */
inline std::string
fmt(double v, int prec = 2)
{
    return TextTable::fmt(v, prec);
}

} // namespace bench
} // namespace abndp

#endif // ABNDP_BENCH_BENCH_COMMON_HH
