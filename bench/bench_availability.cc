/**
 * @file
 * Availability benchmark (robustness extension, not a paper figure):
 * every Table-2 NDP design with a growing fraction of its units
 * permanently killed mid-run (--fail-at-ns, default 2000). Reports the
 * makespan degradation of each design relative to its own failure-free
 * run, plus the recovery protocol's overhead — tasks recovered from
 * the dead units' queues, delivery-ack redispatches, and the recovery
 * descriptor traffic.
 *
 * Completing at all is part of the result: every cell must drain its
 * epochs without tripping the watchdog, i.e. the recovery protocol
 * loses no task and the degraded-mode scheduler keeps making progress
 * with the surviving units.
 *
 * --out=FILE additionally writes the whole curve as one
 * machine-readable JSON line (same convention as bench_perf_smoke),
 * so CI can archive availability trajectories.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace abndp;
    using namespace abndp::bench;

    Options opts = parseOptions(argc, argv, /*sweepBench=*/true);
    const double failAtNs = opts.flags.getDouble("fail-at-ns", 2000.0);
    const std::string outPath = opts.flags.getString("out", "");

    printBanner("Availability — time vs. fraction of units killed "
                "mid-run (ms, and slowdown vs. each design's own "
                "failure-free run)",
                "not a paper artifact; expectation: degradation stays "
                "near the lost-compute fraction, with load-aware "
                "designs (Sl, Sh, O) absorbing the re-injected work "
                "most smoothly");

    const std::uint32_t numUnits = opts.base.numUnits();
    // Failed fraction sweep: 0 (baseline), 1/16, 1/8, 1/4 of units.
    std::vector<std::uint32_t> failedCounts{0, numUnits / 16,
                                            numUnits / 8, numUnits / 4};
    for (auto &n : failedCounts)
        if (n == 0 && &n != &failedCounts.front())
            n = 1; // tiny meshes: fractions floor to at least one unit

    const auto &designs = ndpDesigns();
    WorkloadSpec spec = specFor("pr", opts);

    std::vector<CellSpec> grid;
    for (std::uint32_t failed : failedCounts) {
        for (Design d : designs) {
            CellSpec cell = cellFor(d, spec, opts);
            if (failed > 0) {
                FaultConfig f;
                f.unitFailure.count = failed;
                f.unitFailure.failAtNs = failAtNs;
                cell.opts.fault = f;
            }
            grid.push_back(cell);
        }
    }
    std::vector<RunMetrics> results = runGrid(opts, grid);

    TextTable table({"failed", "design", "time_ms", "slowdown",
                     "recovered", "redispatched", "recoveryKB",
                     "hops", "imbalance", "util"});
    std::ostringstream points;
    std::vector<double> cleanMs(designs.size(), 0.0);
    std::size_t cellIdx = 0;
    for (std::uint32_t failed : failedCounts) {
        const std::string label = failed == 0
            ? "none"
            : std::to_string(failed) + "/" + std::to_string(numUnits);
        for (std::size_t i = 0; i < designs.size(); ++i) {
            const RunMetrics &m = results[cellIdx++];
            const double ms = m.seconds() * 1e3;
            if (failed == 0)
                cleanMs[i] = ms;
            const double slowdown =
                cleanMs[i] > 0.0 ? ms / cleanMs[i] : 0.0;
            table.addRow({label, designName(designs[i]), fmt(ms),
                          fmt(slowdown),
                          std::to_string(m.tasksRecovered),
                          std::to_string(m.tasksRedispatched),
                          fmt(m.recoveryTrafficBytes / 1024.0),
                          std::to_string(m.interHops),
                          fmt(m.imbalance()), fmt(m.utilization())});
            if (cellIdx > 1)
                points << ",";
            points << "{\"design\":\"" << designName(designs[i])
                   << "\",\"failed_units\":" << failed
                   << ",\"time_ms\":" << ms
                   << ",\"slowdown\":" << slowdown
                   << ",\"tasks_recovered\":" << m.tasksRecovered
                   << ",\"tasks_redispatched\":" << m.tasksRedispatched
                   << ",\"recovery_bytes\":" << m.recoveryTrafficBytes
                   << "}";
        }
    }
    table.print(std::cout);
    std::cout << "\nslowdown = time / the same design's failure-free "
                 "time; every cell completing (no watchdog trip) means "
                 "the recovery protocol lost no task.\n";

    std::ostringstream json;
    json << "{\"bench\":\"availability\""
         << ",\"workload\":\"" << spec.name << '"'
         << ",\"scale\":" << opts.scale
         << ",\"units\":" << numUnits
         << ",\"fail_at_ns\":" << failAtNs
         << ",\"points\":[" << points.str() << "]}";
    std::cout << json.str() << "\n";
    if (!outPath.empty()) {
        std::ofstream out(outPath);
        if (!out)
            fatal("cannot write ", outPath);
        out << json.str() << "\n";
    }
    return 0;
}
