/**
 * @file
 * Figure 6 (overall performance): speedup of every Table-2 design over
 * the baseline B on all eight workloads, plus the geomean and the
 * H-relative ratios reported in Section 7.1.
 */

#include <iostream>
#include <map>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace abndp;
    using namespace abndp::bench;

    Options opts = parseOptions(argc, argv);
    printBanner("Figure 6 — overall speedup (normalized to B)",
                "O: 1.68x avg / 2.19x max; Sh ~1.23x; Sl ~1.14x; Sm "
                "~0.86x; B = 3.70x over host H, O = 6.29x over H");

    const auto &workloads = allWorkloadNames();
    const auto &designs = allDesigns();

    TextTable table([&] {
        std::vector<std::string> header{"workload"};
        for (Design d : designs)
            header.push_back(designName(d));
        return header;
    }());

    std::vector<CellSpec> grid;
    for (const auto &wl : workloads) {
        WorkloadSpec spec = specFor(wl, opts);
        for (Design d : designs)
            grid.push_back(cellFor(d, spec, opts));
    }
    std::vector<RunMetrics> results = runGrid(opts, grid);

    std::map<Design, std::vector<double>> speedups;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const RunMetrics *row = &results[w * designs.size()];
        std::map<Design, RunMetrics> byDesign;
        for (std::size_t i = 0; i < designs.size(); ++i)
            byDesign[designs[i]] = row[i];
        double baseTicks =
            static_cast<double>(byDesign[Design::B].ticks);
        std::vector<std::string> cells{workloads[w]};
        for (Design d : designs) {
            double s = baseTicks / byDesign[d].ticks;
            speedups[d].push_back(s);
            cells.push_back(fmt(s));
        }
        table.addRow(cells);
    }

    std::vector<std::string> geo{"geomean"};
    for (Design d : designs)
        geo.push_back(fmt(geomean(speedups[d])));
    table.addRow(geo);
    table.print(std::cout);

    double bOverH = geomean(speedups[Design::B]) == 0.0
        ? 0.0
        : 1.0 / geomean(speedups[Design::H]);
    double oOverH = geomean(speedups[Design::O]) * bOverH;
    std::cout << "\nB over host H (geomean): " << fmt(bOverH)
              << "x (paper: 3.70x)\n";
    std::cout << "O over host H (geomean): " << fmt(oOverH)
              << "x (paper: 6.29x)\n";
    std::cout << "O over B (geomean):      "
              << fmt(geomean(speedups[Design::O]))
              << "x (paper: 1.68x avg, 2.19x max)\n";
    return 0;
}
