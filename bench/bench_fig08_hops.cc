/**
 * @file
 * Figure 8 (remote accesses): total inter-stack mesh hops of every NDP
 * design, normalized to B, on the representative workloads.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace abndp;
    using namespace abndp::bench;

    Options opts = parseOptions(argc, argv);
    printBanner("Figure 8 — remote accesses (inter-stack hops, norm. to B)",
                "Sm ~0.93x; Sl up to 2x; Sh ~1.45x; C ~0.79x (lowest); "
                "O slightly above C and well below Sl/Sh");

    const auto &workloads = representativeWorkloadNames();
    const auto &designs = ndpDesigns();

    TextTable table([&] {
        std::vector<std::string> header{"workload"};
        for (Design d : designs)
            header.push_back(designName(d));
        return header;
    }());

    std::vector<CellSpec> grid;
    for (const auto &wl : workloads) {
        WorkloadSpec spec = specFor(wl, opts);
        for (Design d : designs)
            grid.push_back(cellFor(d, spec, opts));
    }
    std::vector<RunMetrics> results = runGrid(opts, grid);

    std::size_t cell = 0;
    for (const auto &wl : workloads) {
        std::vector<std::string> cells{wl};
        double base = 0.0;
        for (Design d : designs) {
            const RunMetrics &m = results[cell++];
            if (d == Design::B)
                base = static_cast<double>(m.interHops);
            cells.push_back(
                fmt(base > 0 ? m.interHops / base : 0.0));
        }
        table.addRow(cells);
    }
    table.print(std::cout);
    return 0;
}
