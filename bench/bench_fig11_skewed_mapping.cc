/**
 * @file
 * Figure 11 (camp-location mapping): remote-access hops of the full
 * ABNDP design with skewed vs identical camp unit mappings.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace abndp;
    using namespace abndp::bench;

    Options opts = parseOptions(argc, argv, /*sweepBench=*/true);
    printBanner("Figure 11 — skewed vs identical camp mappings (hops)",
                "skewed mapping saves ~12% remote-access hops on "
                "average (fewer conflicts + closer multi-data tasks)");

    // Mapping conflicts only matter under cache pressure (the paper's
    // datasets dwarf the cache); shrink per-unit DRAM accordingly.
    opts.base.memBytesPerUnit =
        opts.flags.getUint("mem-mb", 2) * (1ull << 20);
    opts.base.traveller.ratioDenom =
        opts.flags.getUint("ratio", 64);
    std::cout << "(per-unit DRAM "
              << (opts.base.memBytesPerUnit >> 20) << "MB, cache 1/"
              << opts.base.traveller.ratioDenom << ")\n\n";

    TextTable table({"workload", "identical(k)", "skewed(k)",
                     "skewed/identical"});

    std::vector<CellSpec> grid;
    for (const auto &wl : representativeWorkloadNames()) {
        WorkloadSpec spec = specFor(wl, opts);
        for (bool skewed : {false, true}) {
            CellSpec cell = cellFor(Design::O, spec, opts);
            cell.config = opts.base;
            cell.config->traveller.skewedMapping = skewed;
            grid.push_back(cell);
        }
    }
    std::vector<RunMetrics> results = runGrid(opts, grid);

    std::vector<double> ratios;
    std::size_t cellIdx = 0;
    for (const auto &wl : representativeWorkloadNames()) {
        RunMetrics mi = results[cellIdx++];
        RunMetrics ms = results[cellIdx++];

        double ratio = mi.interHops > 0
            ? static_cast<double>(ms.interHops) / mi.interHops
            : 0.0;
        ratios.push_back(ratio);
        table.addRow({wl, fmt(mi.interHops / 1000.0, 1),
                      fmt(ms.interHops / 1000.0, 1), fmt(ratio)});
    }
    table.print(std::cout);
    std::cout << "\ngeomean skewed/identical hops: "
              << fmt(geomean(ratios)) << " (paper: ~0.88)\n";
    return 0;
}
