/**
 * @file
 * Online-serving benchmark (serving extension, not a paper figure):
 * sweeps arrival rate x Zipfian key skew x Table-2 NDP design over an
 * open-loop kv point-lookup stream and reports, per cell, the exact
 * tail-latency percentiles (p50/p95/p99/p99.9), goodput (completions
 * inside the SLO per simulated second), and the SLO-miss rate. The
 * defaults drive a one-million-request stream per cell; all reported
 * figures are simulated metrics and therefore bit-deterministic.
 *
 * --requests/--rates/--skews/--designs/--workload resize the sweep
 * (comma-separated rates in requests/us and Zipf exponents);
 * --slo-ns and --tenants forward to the serving config.
 *
 * --out=FILE writes one machine-readable JSON line with per-design
 * goodput and p99 aggregates (same convention as bench_perf_smoke).
 * --compare=FILE checks those aggregates against a baseline written by
 * a previous --out run: the process exits nonzero when any design's
 * goodput dropped, or its p99 rose, by more than --tolerance (default
 * 0.10). A missing or unparsable baseline warns and passes, so the
 * first CI run on a fresh cache succeeds.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"

namespace
{

/**
 * Extract the number after "\"key\":" from a one-line JSON record.
 * @return false when the key is absent (malformed baseline).
 */
bool
extractJsonNumber(const std::string &json, const std::string &key,
                  double &out)
{
    auto pos = json.find("\"" + key + "\":");
    if (pos == std::string::npos)
        return false;
    pos += key.size() + 3;
    try {
        out = std::stod(json.substr(pos));
    } catch (...) {
        return false;
    }
    return true;
}

/** Split a comma-separated flag value; empty fields are dropped. */
std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::istringstream iss(s);
    std::string tok;
    while (std::getline(iss, tok, ','))
        if (!tok.empty())
            out.push_back(tok);
    return out;
}

std::vector<double>
parseCsvDoubles(const std::string &s)
{
    std::vector<double> out;
    for (const std::string &tok : splitCsv(s))
        out.push_back(std::strtod(tok.c_str(), nullptr));
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace abndp;
    using namespace abndp::bench;

    Options opts = parseOptions(argc, argv, /*sweepBench=*/true);
    const std::uint64_t requests =
        opts.flags.getUint("requests", 1000000);
    const double sloNs = opts.flags.getDouble("slo-ns", 4000.0);
    const std::uint64_t tenants = opts.flags.getUint("tenants", 1);
    const std::string workload =
        opts.flags.getString("workload", "kv");
    const std::string outPath = opts.flags.getString("out", "");

    const std::vector<double> rates =
        parseCsvDoubles(opts.flags.getString("rates", "2,8"));
    const std::vector<double> skews =
        parseCsvDoubles(opts.flags.getString("skews", "0,0.99"));
    const std::vector<std::string> designLetters =
        splitCsv(opts.flags.getString("designs", "B,Sl,O"));
    if (rates.empty() || skews.empty() || designLetters.empty())
        fatal("--rates/--skews/--designs must name at least one cell");
    std::vector<Design> designs;
    for (const std::string &dn : designLetters)
        designs.push_back(designFromName(dn));

    printBanner("Online serving — open-loop tail latency and goodput "
                "over rate x key-skew x design",
                "not a paper artifact; expectation: designs ranked as "
                "in Figure 6 (O tightest tail), skew widening the gap "
                "via hot-key load imbalance, and p99 rising steeply "
                "once the rate approaches a design's capacity");

    WorkloadSpec spec = specFor(workload, opts);

    std::vector<CellSpec> grid;
    for (Design d : designs) {
        for (double rate : rates) {
            for (double skew : skews) {
                CellSpec cell = cellFor(d, spec, opts);
                SystemConfig cfg = opts.base;
                cfg.serving.requests = requests;
                cfg.serving.ratePerUs = rate;
                cfg.serving.zipfS = skew;
                cfg.serving.sloNs = sloNs;
                cfg.serving.tenants =
                    static_cast<std::uint32_t>(tenants);
                cell.config = cfg;
                grid.push_back(cell);
            }
        }
    }
    std::vector<RunMetrics> results = runGrid(opts, grid);

    TextTable table({"design", "rate/us", "skew", "p50_ns", "p95_ns",
                     "p99_ns", "p999_ns", "mean_ns", "goodput_q/s",
                     "miss_rate", "rejected"});
    std::ostringstream json;
    json << "{\"bench\":\"serving\""
         << ",\"workload\":\"" << workload << "\""
         << ",\"requests\":" << requests
         << ",\"slo_ns\":" << sloNs
         << ",\"cells\":" << grid.size();

    std::size_t cellIdx = 0;
    for (Design d : designs) {
        std::vector<double> goodputs, p99s;
        for (double rate : rates) {
            for (double skew : skews) {
                const RunMetrics &m = results[cellIdx++];
                table.addRow({designName(d), fmt(rate, 1),
                              fmt(skew, 2), fmt(m.servingP50Ns),
                              fmt(m.servingP95Ns), fmt(m.servingP99Ns),
                              fmt(m.servingP999Ns),
                              fmt(m.servingMeanNs),
                              fmt(m.servingGoodputQps, 0),
                              fmt(m.servingSloMissRate, 4),
                              TextTable::fmt(m.servingRejected)});
                goodputs.push_back(m.servingGoodputQps);
                p99s.push_back(m.servingP99Ns);
            }
        }
        json << ",\"goodput_qps_" << designName(d)
             << "\":" << geomean(goodputs) << ",\"p99_ns_"
             << designName(d) << "\":" << geomean(p99s);
    }
    json << "}";
    table.print(std::cout);

    std::cout << json.str() << "\n";
    if (!outPath.empty()) {
        std::ofstream out(outPath);
        if (!out)
            fatal("cannot write ", outPath);
        out << json.str() << "\n";
    }

    const std::string comparePath =
        opts.flags.getString("compare", "");
    if (!comparePath.empty()) {
        double tolerance = opts.flags.getDouble("tolerance", 0.10);
        std::ifstream baseFile(comparePath);
        std::string baseline;
        if (!baseFile || !std::getline(baseFile, baseline)) {
            warn("serving baseline ", comparePath,
                 " missing; skipping comparison (first run?)");
            return 0;
        }
        bool regressed = false;
        for (Design d : designs) {
            const std::string name = designName(d);
            double curGoodput = 0.0, curP99 = 0.0;
            extractJsonNumber(json.str(), "goodput_qps_" + name,
                              curGoodput);
            extractJsonNumber(json.str(), "p99_ns_" + name, curP99);
            double baseGoodput = 0.0, baseP99 = 0.0;
            if (!extractJsonNumber(baseline, "goodput_qps_" + name,
                                   baseGoodput)
                || !extractJsonNumber(baseline, "p99_ns_" + name,
                                      baseP99)
                || baseGoodput <= 0.0 || baseP99 <= 0.0) {
                warn("serving baseline ", comparePath,
                     " has no usable record for design ", name,
                     "; skipping comparison");
                return 0;
            }
            std::cerr << "serving compare " << name << ": goodput "
                      << curGoodput << " vs " << baseGoodput
                      << " q/s, p99 " << curP99 << " vs " << baseP99
                      << " ns (tolerance " << tolerance * 100
                      << "%)\n";
            if (curGoodput < baseGoodput * (1.0 - tolerance)) {
                std::cerr << "serving: goodput regression under design "
                          << name << " beyond " << tolerance * 100
                          << "% tolerance\n";
                regressed = true;
            }
            if (curP99 > baseP99 * (1.0 + tolerance)) {
                std::cerr << "serving: p99 latency regression under "
                          << "design " << name << " beyond "
                          << tolerance * 100 << "% tolerance\n";
                regressed = true;
            }
        }
        if (regressed)
            return 1;
    }
    return 0;
}
