/**
 * @file
 * Simulator performance smoke test (not a paper figure): runs a fixed
 * small (design, workload) grid and reports host-side throughput as one
 * machine-readable JSON line, so CI can archive a perf trajectory and
 * regressions in the event kernel or cache models show up as a drop in
 * events/sec.
 *
 * The simulated metrics of every cell are bit-deterministic; only the
 * wall-clock figures vary between hosts and runs.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace abndp;
    using namespace abndp::bench;

    Options opts = parseOptions(argc, argv, /*sweepBench=*/true);
    // Fixed grid: two contrasting workloads on the baseline and the
    // full design; --scale only changes fidelity, not the grid.
    std::uint32_t scale = static_cast<std::uint32_t>(
        opts.flags.getUint("scale", 12));
    opts.scale = scale;
    const std::string outPath = opts.flags.getString("out", "");

    std::vector<CellSpec> grid;
    for (const char *wl : {"pr", "bfs"})
        for (Design d : {Design::B, Design::O})
            grid.push_back(cellFor(d, specFor(wl, opts), opts));

    auto start = std::chrono::steady_clock::now();
    std::vector<RunMetrics> results = runGrid(opts, grid);
    auto end = std::chrono::steady_clock::now();

    double wall = std::chrono::duration<double>(end - start).count();
    std::uint64_t events = 0;
    std::uint64_t tasks = 0;
    for (const RunMetrics &m : results) {
        events += m.simEvents;
        tasks += m.tasks;
    }

    std::uint32_t threads = opts.threads ? opts.threads
                                         : defaultThreads();
    std::ostringstream json;
    json << "{\"bench\":\"perf_smoke\""
         << ",\"scale\":" << scale
         << ",\"threads\":" << threads
         << ",\"cells\":" << grid.size()
         << ",\"sim_events\":" << events
         << ",\"sim_tasks\":" << tasks
         << ",\"wall_seconds\":" << wall
         << ",\"cells_per_sec\":" << (wall > 0 ? grid.size() / wall : 0)
         << ",\"events_per_sec\":" << (wall > 0 ? events / wall : 0)
         << "}";

    std::cout << json.str() << "\n";
    if (!outPath.empty()) {
        std::ofstream out(outPath);
        if (!out)
            fatal("cannot write ", outPath);
        out << json.str() << "\n";
    }
    return 0;
}
