/**
 * @file
 * Simulator performance smoke test (not a paper figure): runs a fixed
 * small (design, workload) grid and reports host-side throughput as one
 * machine-readable JSON line, so CI can archive a perf trajectory and
 * regressions in the event kernel or cache models show up as a drop in
 * events/sec.
 *
 * The simulated metrics of every cell are bit-deterministic; only the
 * wall-clock figures vary between hosts and runs.
 *
 * --compare=FILE checks this run's events_per_sec against a baseline
 * JSON line written by a previous run (--out): the process exits
 * nonzero when throughput regressed by more than --tolerance (default
 * 0.10). A missing or unparsable baseline warns and passes, so the
 * first CI run on a fresh cache succeeds.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_common.hh"

namespace
{

/**
 * Extract the number after "\"key\":" from a one-line JSON record.
 * @return false when the key is absent (malformed baseline).
 */
bool
extractJsonNumber(const std::string &json, const std::string &key,
                  double &out)
{
    auto pos = json.find("\"" + key + "\":");
    if (pos == std::string::npos)
        return false;
    pos += key.size() + 3;
    try {
        out = std::stod(json.substr(pos));
    } catch (...) {
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace abndp;
    using namespace abndp::bench;

    Options opts = parseOptions(argc, argv, /*sweepBench=*/true);
    // Fixed grid: two contrasting workloads on the baseline and the
    // full design; --scale only changes fidelity, not the grid.
    std::uint32_t scale = static_cast<std::uint32_t>(
        opts.flags.getUint("scale", 12));
    opts.scale = scale;
    const std::string outPath = opts.flags.getString("out", "");

    std::vector<CellSpec> grid;
    for (const char *wl : {"pr", "bfs"})
        for (Design d : {Design::B, Design::O})
            grid.push_back(cellFor(d, specFor(wl, opts), opts));

    auto start = std::chrono::steady_clock::now();
    std::vector<RunMetrics> results = runGrid(opts, grid);
    auto end = std::chrono::steady_clock::now();

    double wall = std::chrono::duration<double>(end - start).count();
    std::uint64_t events = 0;
    std::uint64_t tasks = 0;
    for (const RunMetrics &m : results) {
        events += m.simEvents;
        tasks += m.tasks;
    }

    std::uint32_t threads = opts.threads ? opts.threads
                                         : defaultThreads();
    std::ostringstream json;
    json << "{\"bench\":\"perf_smoke\""
         << ",\"scale\":" << scale
         << ",\"threads\":" << threads
         << ",\"cells\":" << grid.size()
         << ",\"sim_events\":" << events
         << ",\"sim_tasks\":" << tasks
         << ",\"wall_seconds\":" << wall
         << ",\"cells_per_sec\":" << (wall > 0 ? grid.size() / wall : 0)
         << ",\"events_per_sec\":" << (wall > 0 ? events / wall : 0)
         << "}";

    std::cout << json.str() << "\n";
    if (!outPath.empty()) {
        std::ofstream out(outPath);
        if (!out)
            fatal("cannot write ", outPath);
        out << json.str() << "\n";
    }

    const std::string comparePath =
        opts.flags.getString("compare", "");
    if (!comparePath.empty()) {
        double tolerance = opts.flags.getDouble("tolerance", 0.10);
        std::ifstream baseFile(comparePath);
        std::string baseline;
        if (!baseFile || !std::getline(baseFile, baseline)) {
            warn("perf baseline ", comparePath,
                 " missing; skipping comparison (first run?)");
            return 0;
        }
        double baseEps = 0.0;
        if (!extractJsonNumber(baseline, "events_per_sec", baseEps)
            || baseEps <= 0.0) {
            warn("perf baseline ", comparePath,
                 " has no usable events_per_sec; skipping comparison");
            return 0;
        }
        double curEps = wall > 0 ? events / wall : 0;
        double ratio = curEps / baseEps;
        std::cerr << "perf_smoke compare: " << curEps << " vs baseline "
                  << baseEps << " events/sec (x" << ratio
                  << ", tolerance -" << tolerance * 100 << "%)\n";
        if (ratio < 1.0 - tolerance) {
            std::cerr << "perf_smoke: throughput regression beyond "
                      << tolerance * 100 << "% tolerance\n";
            return 1;
        }
    }
    return 0;
}
