/**
 * @file
 * Simulator performance smoke test (not a paper figure): runs a fixed
 * small (design, workload) grid and reports host-side throughput as one
 * machine-readable JSON line, so CI can archive a perf trajectory and
 * regressions in the event kernel or cache models show up as a drop in
 * events/sec.
 *
 * The simulated metrics of every cell are bit-deterministic; only the
 * wall-clock figures vary between hosts and runs.
 *
 * --compare=FILE checks this run's events_per_sec against a baseline
 * JSON line written by a previous run (--out): the process exits
 * nonzero when throughput regressed by more than --tolerance (default
 * 0.10). A missing or unparsable baseline warns and passes, so the
 * first CI run on a fresh cache succeeds.
 *
 * --workloads=pr,bfs and --designs=B,O subset the grid (comma-
 * separated workload names / Table-2 design letters), so expensive
 * large-scale records (e.g. the scale-20 guard in CI) can track a
 * single representative cell instead of the full default grid.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_common.hh"

namespace
{

/**
 * Extract the number after "\"key\":" from a one-line JSON record.
 * @return false when the key is absent (malformed baseline).
 */
bool
extractJsonNumber(const std::string &json, const std::string &key,
                  double &out)
{
    auto pos = json.find("\"" + key + "\":");
    if (pos == std::string::npos)
        return false;
    pos += key.size() + 3;
    try {
        out = std::stod(json.substr(pos));
    } catch (...) {
        return false;
    }
    return true;
}

/** Split a comma-separated flag value; empty fields are dropped. */
std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::istringstream iss(s);
    std::string tok;
    while (std::getline(iss, tok, ','))
        if (!tok.empty())
            out.push_back(tok);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace abndp;
    using namespace abndp::bench;

    Options opts = parseOptions(argc, argv, /*sweepBench=*/true);
    std::uint32_t scale = static_cast<std::uint32_t>(
        opts.flags.getUint("scale", 12));
    opts.scale = scale;
    const std::string outPath = opts.flags.getString("out", "");

    // Default grid: two contrasting workloads on the baseline and the
    // full design; --workloads/--designs subset it for targeted
    // records (the order is workload-major, matching the default).
    const std::vector<std::string> wls =
        splitCsv(opts.flags.getString("workloads", "pr,bfs"));
    const std::vector<std::string> designNames =
        splitCsv(opts.flags.getString("designs", "B,O"));
    if (wls.empty() || designNames.empty())
        fatal("--workloads/--designs must name at least one cell");

    std::vector<CellSpec> grid;
    for (const std::string &wl : wls)
        for (const std::string &dn : designNames)
            grid.push_back(
                cellFor(designFromName(dn), specFor(wl, opts), opts));

    auto start = std::chrono::steady_clock::now();
    std::vector<RunMetrics> results = runGrid(opts, grid);
    auto end = std::chrono::steady_clock::now();

    double wall = std::chrono::duration<double>(end - start).count();
    std::uint64_t events = 0;
    std::uint64_t tasks = 0;
    for (const RunMetrics &m : results) {
        events += m.simEvents;
        tasks += m.tasks;
    }

    std::uint32_t threads = opts.threads ? opts.threads
                                         : defaultThreads();
    auto joinCsv = [](const std::vector<std::string> &v) {
        std::string s;
        for (const std::string &e : v)
            s += (s.empty() ? "" : ",") + e;
        return s;
    };
    std::ostringstream json;
    json << "{\"bench\":\"perf_smoke\""
         << ",\"scale\":" << scale
         << ",\"workloads\":\"" << joinCsv(wls) << "\""
         << ",\"designs\":\"" << joinCsv(designNames) << "\""
         << ",\"threads\":" << threads
         << ",\"cells\":" << grid.size()
         << ",\"sim_events\":" << events
         << ",\"sim_tasks\":" << tasks
         << ",\"wall_seconds\":" << wall
         << ",\"cells_per_sec\":" << (wall > 0 ? grid.size() / wall : 0)
         << ",\"events_per_sec\":" << (wall > 0 ? events / wall : 0)
         << "}";

    std::cout << json.str() << "\n";
    if (!outPath.empty()) {
        std::ofstream out(outPath);
        if (!out)
            fatal("cannot write ", outPath);
        out << json.str() << "\n";
    }

    const std::string comparePath =
        opts.flags.getString("compare", "");
    if (!comparePath.empty()) {
        double tolerance = opts.flags.getDouble("tolerance", 0.10);
        std::ifstream baseFile(comparePath);
        std::string baseline;
        if (!baseFile || !std::getline(baseFile, baseline)) {
            warn("perf baseline ", comparePath,
                 " missing; skipping comparison (first run?)");
            return 0;
        }
        double baseEps = 0.0;
        if (!extractJsonNumber(baseline, "events_per_sec", baseEps)
            || baseEps <= 0.0) {
            warn("perf baseline ", comparePath,
                 " has no usable events_per_sec; skipping comparison");
            return 0;
        }
        double curEps = wall > 0 ? events / wall : 0;
        double ratio = curEps / baseEps;
        std::cerr << "perf_smoke compare: " << curEps << " vs baseline "
                  << baseEps << " events/sec (x" << ratio
                  << ", tolerance -" << tolerance * 100 << "%)\n";
        if (ratio < 1.0 - tolerance) {
            std::cerr << "perf_smoke: throughput regression beyond "
                      << tolerance * 100 << "% tolerance\n";
            return 1;
        }
    }
    return 0;
}
