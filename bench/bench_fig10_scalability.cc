/**
 * @file
 * Figure 10 (scalability): Page Rank on 2x2, 4x4 and 8x8 meshes (32,
 * 128, 512 NDP units), keeping C = 3. Reports per-scale speedup over
 * the same-scale baseline B and the energy ratio, plus the absolute
 * O-time ratio between scales (the paper notes 8x8 gains < 15% over
 * 4x4 because remote accesses dominate).
 */

#include <iostream>
#include <map>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace abndp;
    using namespace abndp::bench;

    Options opts = parseOptions(argc, argv);
    // Bigger default input: 512 NDP units need enough parallel work.
    opts.scale = static_cast<std::uint32_t>(
        opts.flags.getUint("scale", 15));
    printBanner("Figure 10 — scalability (Page Rank; 2x2 / 4x4 / 8x8)",
                "O's speedup and energy reduction over B grow with "
                "scale; Sm/C scale worse than B; 8x8 gains <15% over "
                "4x4 in absolute time");

    WorkloadSpec spec = specFor("pr", opts);
    const auto &designs = ndpDesigns();

    TextTable speed({"mesh", "B", "Sm", "Sl", "Sh", "C", "O"});
    TextTable energy({"mesh", "B", "Sm", "Sl", "Sh", "C", "O"});
    std::map<std::string, double> oTicks;

    for (std::uint32_t dim : {2u, 4u, 8u}) {
        SystemConfig base = opts.base;
        base.meshX = base.meshY = dim;
        std::string mesh = std::to_string(dim) + "x" + std::to_string(dim);

        double bTicks = 0.0, bEnergy = 0.0;
        std::vector<std::string> srow{mesh}, erow{mesh};
        for (Design d : designs) {
            RunMetrics m = runCell(base, d, spec, opts.verify);
            if (d == Design::B) {
                bTicks = static_cast<double>(m.ticks);
                bEnergy = m.energy.total();
            }
            srow.push_back(fmt(bTicks / m.ticks));
            erow.push_back(fmt(m.energy.total() / bEnergy));
            if (d == Design::O)
                oTicks[mesh] = static_cast<double>(m.ticks);
        }
        speed.addRow(srow);
        energy.addRow(erow);
    }

    std::cout << "(a) Speedup over the same-scale baseline B:\n";
    speed.print(std::cout);
    std::cout << "\n(b) Energy normalized to the same-scale B:\n";
    energy.print(std::cout);
    std::cout << "\nAbsolute O time: 4x4 is "
              << fmt(oTicks["2x2"] / oTicks["4x4"])
              << "x faster than 2x2; 8x8 is "
              << fmt(oTicks["4x4"] / oTicks["8x8"])
              << "x faster than 4x4 (paper: <1.15x)\n";
    return 0;
}
