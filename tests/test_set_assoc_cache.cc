/** @file Tests for the generic set-associative cache model. */

#include <gtest/gtest.h>

#include <set>

#include "cache/set_assoc_cache.hh"

namespace abndp
{

TEST(SetAssocCache, MissThenHit)
{
    SetAssocCache cache(16, 2, ReplPolicy::Lru);
    Addr block = 0x1000;
    EXPECT_FALSE(cache.access(block));
    cache.insert(block);
    EXPECT_TRUE(cache.access(block));
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(SetAssocCache, ContainsHasNoSideEffects)
{
    SetAssocCache cache(16, 2, ReplPolicy::Lru);
    cache.insert(0x40);
    EXPECT_TRUE(cache.contains(0x40));
    EXPECT_FALSE(cache.contains(0x80));
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
}

TEST(SetAssocCache, LruEvictsLeastRecentlyUsed)
{
    // Single set, 2 ways: find three blocks mapping to the same set.
    SetAssocCache cache(1, 2, ReplPolicy::Lru);
    Addr a = 0x40, b = 0x80, c = 0xc0;
    cache.insert(a);
    cache.insert(b);
    cache.access(a); // a is now MRU
    Addr evicted = cache.insert(c);
    EXPECT_EQ(evicted, b);
    EXPECT_TRUE(cache.contains(a));
    EXPECT_FALSE(cache.contains(b));
    EXPECT_TRUE(cache.contains(c));
}

TEST(SetAssocCache, FifoEvictsOldestInsertion)
{
    SetAssocCache cache(1, 2, ReplPolicy::Fifo);
    cache.insert(0x40);
    cache.insert(0x80);
    cache.access(0x40); // does not refresh FIFO order
    Addr evicted = cache.insert(0xc0);
    EXPECT_EQ(evicted, 0x40u);
}

TEST(SetAssocCache, ReinsertDoesNotDuplicate)
{
    SetAssocCache cache(4, 4, ReplPolicy::Lru);
    cache.insert(0x40);
    cache.insert(0x40);
    EXPECT_EQ(cache.occupancy(), 1u);
}

TEST(SetAssocCache, InvalidateRemovesBlock)
{
    SetAssocCache cache(8, 2, ReplPolicy::Lru);
    cache.insert(0x40);
    EXPECT_TRUE(cache.invalidate(0x40));
    EXPECT_FALSE(cache.invalidate(0x40));
    EXPECT_FALSE(cache.contains(0x40));
}

TEST(SetAssocCache, InvalidateAllEmptiesCache)
{
    SetAssocCache cache(8, 2, ReplPolicy::Lru);
    for (Addr a = 0; a < 16; ++a)
        cache.insert(a * 64);
    EXPECT_GT(cache.occupancy(), 0u);
    cache.invalidateAll();
    EXPECT_EQ(cache.occupancy(), 0u);
}

/** Property sweep: occupancy never exceeds capacity for any geometry. */
class CacheCapacity
    : public ::testing::TestWithParam<std::pair<std::uint64_t,
                                                std::uint32_t>>
{
};

TEST_P(CacheCapacity, NeverExceedsCapacity)
{
    auto [sets, ways] = GetParam();
    SetAssocCache cache(sets, ways, ReplPolicy::Random, 99);
    for (Addr a = 0; a < 10000; ++a) {
        cache.insert(a * 64);
        ASSERT_LE(cache.occupancy(), sets * ways);
    }
    // With far more blocks than capacity, the cache must be full.
    EXPECT_EQ(cache.occupancy(), sets * ways);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheCapacity,
    ::testing::Values(std::make_pair(1ull, 1u), std::make_pair(1ull, 4u),
                      std::make_pair(16ull, 1u), std::make_pair(16ull, 4u),
                      std::make_pair(64ull, 8u),
                      std::make_pair(256ull, 16u)));

TEST(SetAssocCache, GeometryFromCacheConfig)
{
    CacheGeometry geom{64 * 1024, 4, 64, ReplPolicy::Lru};
    SetAssocCache cache(geom);
    EXPECT_EQ(cache.numSets(), 256u);
    EXPECT_EQ(cache.associativity(), 4u);
}

TEST(SetAssocCache, SequentialIndexNeverConflictsOnSmallFootprints)
{
    // Regression: an L1-I streaming 16 consecutive code blocks must warm
    // after one pass; hashed indexing can put three of them into one
    // 2-way set and thrash forever (LRU cyclic pattern).
    CacheGeometry geom{32 * 1024, 2, 64, ReplPolicy::Lru,
                       /*hashedIndex=*/false};
    SetAssocCache l1i(geom);
    std::uint64_t misses = 0;
    for (int pass = 0; pass < 100; ++pass)
        for (Addr a = 1ull << 40; a < (1ull << 40) + 1024; a += 64)
            if (!l1i.access(a)) {
                ++misses;
                l1i.insert(a);
            }
    EXPECT_EQ(misses, 16u);
}

TEST(SetAssocCache, HashedIndexSpreadsAlignedBases)
{
    // Blocks at 512MB-aligned bases (the per-unit region bases) must not
    // all collide in one set — the regression the hashed index fixes.
    SetAssocCache cache(256, 4, ReplPolicy::Lru);
    for (Addr u = 0; u < 64; ++u)
        cache.insert(u << 29);
    // With plain modulo indexing only 4 of these could survive.
    EXPECT_GT(cache.occupancy(), 32u);
}

} // namespace abndp
