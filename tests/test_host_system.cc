/** @file Tests for the host-only baseline H. */

#include <gtest/gtest.h>

#include "driver/experiment.hh"
#include "host/host_system.hh"
#include "workloads/factory.hh"

namespace abndp
{

TEST(HostSystem, RunsAndVerifies)
{
    SystemConfig cfg;
    HostSystem host(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("pr"));
    RunMetrics m = host.run(*wl);
    EXPECT_TRUE(wl->verify());
    EXPECT_GT(m.ticks, 0u);
    EXPECT_EQ(m.coreActiveTicks.size(), cfg.host.cores);
}

TEST(HostSystem, Deterministic)
{
    SystemConfig cfg;
    HostSystem a(cfg), b(cfg);
    auto wa = makeWorkload(WorkloadSpec::tiny("bfs"));
    auto wb = makeWorkload(WorkloadSpec::tiny("bfs"));
    EXPECT_EQ(a.run(*wa).ticks, b.run(*wb).ticks);
}

TEST(HostSystem, NdpBaselineOutperformsHost)
{
    // Section 7.1: the NDP baseline B is substantially faster than the
    // host-only H on these data-intensive workloads.
    SystemConfig base;
    WorkloadSpec spec; // bench-shaped input: power-law, edge factor 16
    spec.name = "pr";
    spec.scale = 13; // enough skewed work to exceed the host LLC benefit
    ExperimentOptions opts;
    opts.verify = false;
    RunMetrics h = runExperiment(base, Design::H, spec, opts);
    RunMetrics b = runExperiment(base, Design::B, spec, opts);
    EXPECT_GT(h.ticks, b.ticks);
}

TEST(HostSystemDeath, RunTwiceIsAnError)
{
    SystemConfig cfg;
    HostSystem host(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("bfs"));
    host.run(*wl);
    auto wl2 = makeWorkload(WorkloadSpec::tiny("bfs"));
    EXPECT_DEATH(host.run(*wl2), "once");
}

} // namespace abndp
