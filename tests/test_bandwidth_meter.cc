/** @file Tests for the bucketed bandwidth meter. */

#include <gtest/gtest.h>

#include "sim/bandwidth_meter.hh"

namespace abndp
{

TEST(BandwidthMeter, UncontendedStartsImmediately)
{
    BandwidthMeter m(1000);
    EXPECT_EQ(m.reserve(500, 100), 500u);
    EXPECT_EQ(m.reserve(5000, 100), 5000u);
}

TEST(BandwidthMeter, ZeroServiceIsFree)
{
    BandwidthMeter m(1000);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(m.reserve(10, 0), 10u);
}

TEST(BandwidthMeter, FullBucketSpillsToNext)
{
    BandwidthMeter m(1000);
    // Fill bucket [0, 1000) completely.
    EXPECT_EQ(m.reserve(0, 1000), 0u);
    // The next reservation at t=0 must start in the next bucket.
    Tick start = m.reserve(0, 100);
    EXPECT_GE(start, 1000u);
}

TEST(BandwidthMeter, CapacityIsNeverOverbooked)
{
    const Tick width = 256;
    BandwidthMeter m(width);
    // Issue many reservations at the same instant; aggregate service per
    // bucket can never exceed the bucket width, so the k-th reservation
    // must start no earlier than k * service / (width/service) buckets.
    const Tick service = 64;
    Tick lastStart = 0;
    for (int i = 0; i < 64; ++i)
        lastStart = std::max(lastStart, m.reserve(0, service));
    // 64 x 64 = 4096 ticks of service over 256-tick buckets: at least
    // 16 buckets are needed, so the last start is >= 15 * 256.
    EXPECT_GE(lastStart, 15 * width);
}

TEST(BandwidthMeter, BackfillDoesNotBlockEarlierTraffic)
{
    BandwidthMeter m(1000);
    // A reservation far in the future must not delay earlier requests —
    // the failure mode of the naive next-free-time model.
    m.reserve(1000000, 500);
    EXPECT_EQ(m.reserve(0, 100), 0u);
    EXPECT_EQ(m.reserve(2000, 100), 2000u);
}

TEST(BandwidthMeter, ResetClearsReservations)
{
    BandwidthMeter m(1000);
    m.reserve(0, 1000);
    m.reset();
    EXPECT_EQ(m.reserve(0, 1000), 0u);
}

TEST(BandwidthMeter, LargeServiceSpansBuckets)
{
    BandwidthMeter m(100);
    EXPECT_EQ(m.reserve(0, 250), 0u); // fills buckets 0,1 and half of 2
    // The next request must queue behind all of it.
    Tick next = m.reserve(0, 100);
    EXPECT_GE(next, 250u);
}

TEST(BandwidthMeter, BurstDelayGrowsWithBurstSize)
{
    BandwidthMeter light(1000), heavy(1000);
    Tick lightDelay = 0, heavyDelay = 0;
    // Bursts arriving at the same instant: the larger burst must spill
    // into later buckets and accumulate more queueing delay.
    for (int i = 0; i < 8; ++i)
        lightDelay += light.reserve(0, 200);
    for (int i = 0; i < 40; ++i)
        heavyDelay += heavy.reserve(0, 200);
    EXPECT_LT(lightDelay / 8, heavyDelay / 40);
}

} // namespace abndp
