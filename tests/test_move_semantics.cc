/**
 * @file
 * Move-semantics regression tests for the task transit paths.
 *
 * Task is move-only: the recovery (TaskTransit) and steal-batch
 * (StealTransit) paths used to copy tasks — with payload spans now
 * owned by per-epoch arenas, a stray copy would either fail to compile
 * or silently double-account payload lines. The static_asserts pin the
 * type contract; the run-twice fingerprint tests pin that moving (not
 * copying) tasks through forward, steal, failure-drain, and redispatch
 * leaves simulated behavior bit-identical and deterministic.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <type_traits>

#include "core/ndp_system.hh"
#include "driver/experiment.hh"
#include "tasking/task.hh"
#include "workloads/factory.hh"

namespace abndp
{

// The type contract the transit paths rely on: tasks move, never copy.
static_assert(std::is_move_constructible_v<Task>,
              "Task must be move-constructible");
static_assert(std::is_move_assignable_v<Task>,
              "Task must be move-assignable");
static_assert(!std::is_copy_constructible_v<Task>,
              "Task must not be copyable (transit paths must move)");
static_assert(!std::is_copy_assignable_v<Task>,
              "Task must not be copy-assignable");
static_assert(std::is_nothrow_move_constructible_v<Task>,
              "Task moves must not throw (vector growth would copy)");

namespace
{

/** 2x2 mesh, 2 units/stack (8 units), 2 cores; checkers armed. */
SystemConfig
smallConfig(Design d)
{
    SystemConfig cfg;
    cfg.meshX = cfg.meshY = 2;
    cfg.unitsPerStack = 2;
    cfg.coresPerUnit = 2;
    cfg = applyDesign(cfg, d);
    cfg.checkInvariants = true;
    return cfg;
}

/** Run pr-tiny under @p cfg and return the full stats-registry dump. */
std::string
runAndDump(const SystemConfig &cfg)
{
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("pr"));
    sys.run(*wl);
    EXPECT_TRUE(wl->verify());
    std::ostringstream oss;
    sys.statsRegistry().dump(oss);
    return oss.str();
}

} // namespace

TEST(TransitMoveSemantics, StealPathBitIdenticalAcrossRuns)
{
    // Sl exercises StealTransit: steal batches are drained from victim
    // queues and delivered (or redispatched) by moving tasks. Two runs
    // of the same config must produce byte-identical stats dumps.
    auto cfg = smallConfig(Design::Sl);
    std::string a = runAndDump(cfg);
    std::string b = runAndDump(cfg);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(TransitMoveSemantics, RecoveryPathBitIdenticalAcrossRuns)
{
    // Sl + a mid-run unit failure exercises every move site at once:
    // steal batches, failure-time queue drains, delivery-ack
    // redispatch, and re-injection of recovered tasks.
    auto cfg = smallConfig(Design::Sl);
    cfg.fault.unitFailure.count = 2;
    cfg.fault.unitFailure.failAtNs = 150.0;
    std::string a = runAndDump(cfg);
    std::string b = runAndDump(cfg);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("tasksRecovered"), std::string::npos);
}

TEST(TransitMoveSemantics, ForwardPathBitIdenticalAcrossRuns)
{
    // O exercises TaskTransit: scheduling-window forwards tracked for
    // delivery acks, with the task moved into and out of the transit.
    auto cfg = smallConfig(Design::O);
    cfg.fault.unitFailure.count = 1;
    cfg.fault.unitFailure.failAtNs = 100.0;
    cfg.fault.unitFailure.recoverAtNs = 400.0;
    std::string a = runAndDump(cfg);
    std::string b = runAndDump(cfg);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

} // namespace abndp
