/** @file Tests for the KD-tree used by the KNN workload. */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hh"
#include "workloads/kdtree.hh"

namespace abndp
{

namespace
{

std::vector<float>
randomPoints(std::uint32_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> pts(static_cast<std::size_t>(n) * KdTree::dims);
    for (auto &v : pts)
        v = static_cast<float>(rng.uniform(-100.0, 100.0));
    return pts;
}

} // namespace

TEST(KdTree, LeavesPartitionAllPoints)
{
    auto pts = randomPoints(1000, 1);
    KdTree tree(pts, 8);
    std::set<std::uint32_t> seen;
    std::uint64_t covered = 0;
    for (const auto &node : tree.nodes()) {
        if (!node.isLeaf())
            continue;
        EXPECT_LE(node.end - node.begin, 8u);
        for (std::uint32_t i = node.begin; i < node.end; ++i) {
            seen.insert(tree.pointOrder()[i]);
            ++covered;
        }
    }
    EXPECT_EQ(covered, 1000u);
    EXPECT_EQ(seen.size(), 1000u);
}

TEST(KdTree, SplitSeparatesChildren)
{
    auto pts = randomPoints(512, 2);
    KdTree tree(pts, 8);
    // For each internal node, all points in the left subtree have
    // coordinate <= splitVal (ties split by index, so allow equality).
    for (std::uint32_t ni = 0; ni < tree.nodes().size(); ++ni) {
        const auto &node = tree.nodes()[ni];
        if (node.isLeaf())
            continue;
        // Collect leaf points under the left child.
        std::vector<std::uint32_t> stack{node.left};
        while (!stack.empty()) {
            auto cur = stack.back();
            stack.pop_back();
            const auto &cn = tree.nodes()[cur];
            if (cn.isLeaf()) {
                for (std::uint32_t i = cn.begin; i < cn.end; ++i) {
                    auto p = tree.pointOrder()[i];
                    EXPECT_LE(pts[p * KdTree::dims + node.splitDim],
                              node.splitVal);
                }
            } else {
                stack.push_back(cn.left);
                stack.push_back(cn.right);
            }
        }
    }
}

TEST(KdTree, SmallInputSingleLeaf)
{
    auto pts = randomPoints(5, 3);
    KdTree tree(pts, 8);
    EXPECT_EQ(tree.nodes().size(), 1u);
    EXPECT_TRUE(tree.nodes()[0].isLeaf());
    EXPECT_EQ(tree.depth(), 0u);
}

TEST(KdTree, DepthIsLogarithmic)
{
    auto pts = randomPoints(4096, 4);
    KdTree tree(pts, 8);
    // 4096 / 8 = 512 leaves; a median-split tree has depth ~9-12.
    EXPECT_GE(tree.depth(), 9u);
    EXPECT_LE(tree.depth(), 14u);
}

TEST(KdTree, DeterministicBuild)
{
    auto pts = randomPoints(300, 5);
    KdTree a(pts, 8), b(pts, 8);
    EXPECT_EQ(a.nodes().size(), b.nodes().size());
    EXPECT_EQ(a.pointOrder(), b.pointOrder());
}

TEST(KdTree, BoxDistanceIsZeroInsideBox)
{
    float q[2] = {1.0f, 2.0f};
    float lo[2] = {0.0f, 0.0f};
    float hi[2] = {3.0f, 3.0f};
    EXPECT_FLOAT_EQ(KdTree::boxDistance(q, lo, hi), 0.0f);
    float q2[2] = {5.0f, 2.0f};
    EXPECT_FLOAT_EQ(KdTree::boxDistance(q2, lo, hi), 4.0f);
}

} // namespace abndp
