/**
 * @file
 * Reference-model differential testing (src/check/ref_models.hh):
 * seeded operation generators drive each optimized core structure in
 * lock-step against its slow, obviously-correct reference and compare
 * every return value and counter. >= 10k operations per pair.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "cache/prefetch_buffer.hh"
#include "cache/set_assoc_cache.hh"
#include "cache/traveller_cache.hh"
#include "check/ref_models.hh"
#include "common/config.hh"
#include "common/rng.hh"
#include "energy/energy.hh"
#include "mem/ddr_backend.hh"
#include "sched/lb/data_hotness.hh"
#include "sched/lb/home_indirection.hh"
#include "serve/latency_recorder.hh"
#include "serve/zipf.hh"
#include "sim/bandwidth_meter.hh"
#include "sim/event_queue.hh"

namespace abndp
{

namespace
{

constexpr std::uint64_t kOps = 12000;

/** Block-aligned address in a small window (forces set conflicts). */
Addr
drawBlockAddr(Rng &gen, std::uint64_t blocks = 768)
{
    return gen.below(blocks) * cachelineBytes;
}

} // namespace

// ---- SetAssocCache vs RefSetAssocCache --------------------------------

struct CacheGeomCase
{
    const char *name;
    std::uint64_t sets;
    std::uint32_t assoc;
    ReplPolicy repl;
    bool hashed;
};

class SetAssocDifferential
    : public ::testing::TestWithParam<CacheGeomCase>
{
};

TEST_P(SetAssocDifferential, LockStepAgainstReference)
{
    const CacheGeomCase &g = GetParam();
    constexpr std::uint64_t seed = 0xd1ffu;
    SetAssocCache opt(g.sets, g.assoc, g.repl, seed, g.hashed);
    check::RefSetAssocCache ref(g.sets, g.assoc, g.repl, seed, g.hashed);

    Rng gen(0xa5a5a5a5u);
    for (std::uint64_t i = 0; i < kOps; ++i) {
        Addr a = drawBlockAddr(gen);
        switch (gen.below(8)) {
          case 0:
          case 1:
          case 2:
            ASSERT_EQ(opt.access(a), ref.access(a)) << "op " << i;
            break;
          case 3:
          case 4:
          case 5:
            ASSERT_EQ(opt.insert(a), ref.insert(a)) << "op " << i;
            break;
          case 6:
            ASSERT_EQ(opt.contains(a), ref.contains(a)) << "op " << i;
            break;
          default:
            ASSERT_EQ(opt.invalidate(a), ref.invalidate(a))
                << "op " << i;
            break;
        }
        if (i % 4096 == 4095) {
            opt.invalidateAll();
            ref.invalidateAll();
        }
        if (i % 512 == 0)
            ASSERT_EQ(opt.occupancy(), ref.occupancy()) << "op " << i;
    }
    EXPECT_EQ(opt.hits(), ref.hits());
    EXPECT_EQ(opt.misses(), ref.misses());
    EXPECT_EQ(opt.insertions(), ref.insertions());
    EXPECT_EQ(opt.evictions(), ref.evictions());
    EXPECT_EQ(opt.occupancy(), ref.occupancy());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SetAssocDifferential,
    ::testing::Values(
        CacheGeomCase{"l1_like_lru", 64, 4, ReplPolicy::Lru, true},
        CacheGeomCase{"random_repl", 64, 4, ReplPolicy::Random, true},
        CacheGeomCase{"fifo_lowbit", 32, 2, ReplPolicy::Fifo, false},
        CacheGeomCase{"non_pow2_sets", 48, 3, ReplPolicy::Lru, true},
        CacheGeomCase{"direct_mapped", 128, 1, ReplPolicy::Lru, false}),
    [](const auto &info) { return std::string(info.param.name); });

// ---- TravellerCache vs RefTravellerCache ------------------------------

class TravellerDifferential : public ::testing::TestWithParam<double>
{
};

TEST_P(TravellerDifferential, LockStepAgainstReference)
{
    // Both sides mix the same raw seed into the same dedicated stream,
    // so bypass and victim draws line up one-to-one.
    SystemConfig cfg;
    cfg.memBytesPerUnit = 1ull << 22; // small cache: evictions happen
    cfg.traveller.bypassProb = GetParam();
    cfg.validate();
    TravellerCache opt(cfg, cfg.seed);
    check::RefTravellerCache ref(cfg.travellerSets(), cfg.traveller.assoc,
                                 cfg.traveller.repl,
                                 cfg.traveller.bypassProb, cfg.seed);

    Rng gen(0x77aaull);
    for (std::uint64_t i = 0; i < kOps; ++i) {
        Addr a = drawBlockAddr(gen, 4096);
        switch (gen.below(8)) {
          case 0:
          case 1:
          case 2:
            ASSERT_EQ(opt.lookup(a), ref.lookup(a)) << "op " << i;
            break;
          case 3:
          case 4:
          case 5:
            ASSERT_EQ(opt.maybeInsert(a), ref.maybeInsert(a))
                << "op " << i;
            break;
          default:
            ASSERT_EQ(opt.contains(a), ref.contains(a)) << "op " << i;
            break;
        }
        if (i % 4096 == 4095) {
            opt.bulkInvalidate();
            ref.bulkInvalidate();
        }
        if (i % 512 == 0)
            ASSERT_EQ(opt.occupancy(), ref.occupancy()) << "op " << i;
    }
    EXPECT_EQ(opt.hits(), ref.hits());
    EXPECT_EQ(opt.misses(), ref.misses());
    EXPECT_EQ(opt.insertions(), ref.insertions());
    EXPECT_EQ(opt.evictions(), ref.evictions());
    EXPECT_EQ(opt.bypasses(), ref.bypasses());
    EXPECT_EQ(opt.occupancy(), ref.occupancy());
}

INSTANTIATE_TEST_SUITE_P(BypassProbs, TravellerDifferential,
                         ::testing::Values(0.0, 0.1, 0.5),
                         [](const auto &info) {
                             return "bypass"
                                 + std::to_string(static_cast<int>(
                                       info.param * 100));
                         });

// ---- BandwidthMeter vs RefBandwidthMeter ------------------------------

TEST(BandwidthMeterDifferential, LockStepAgainstReference)
{
    constexpr Tick width = 256 * ticksPerNs;
    BandwidthMeter opt(width);
    check::RefBandwidthMeter ref(width);

    // Out-of-order start times and services spanning several buckets —
    // exactly the regime the paged backfill structure optimizes.
    Rng gen(0xbeefu);
    Tick base = 0;
    for (std::uint64_t i = 0; i < kOps; ++i) {
        // Drift the window forward while jittering backwards, so
        // reservations arrive out of time order like task-granularity
        // timing produces.
        base += gen.below(200);
        Tick t = base >= 5000 ? base - gen.below(5000) : base;
        Tick service = gen.below(3 * width / 2) + 1;
        ASSERT_EQ(opt.reserve(t, service), ref.reserve(t, service))
            << "op " << i;
        if (i % 1024 == 1023) {
            ASSERT_EQ(opt.maxBucketFill(), ref.maxBucketFill());
            ASSERT_EQ(opt.bucketsInUse(), ref.bucketsInUse());
        }
        if (i % 6000 == 5999) {
            opt.reset();
            ref.reset();
            base = 0;
        }
    }
    EXPECT_EQ(opt.bucketsInUse(), ref.bucketsInUse());
    EXPECT_EQ(opt.maxBucketFill(), ref.maxBucketFill());
    EXPECT_LE(opt.maxBucketFill(), width);
}

// ---- DdrBackend vs RefDdrBackend --------------------------------------

struct DdrDiffCase
{
    const char *name;
    PagePolicy policy;
    DramAddrMapKind addrMap;
    bool refresh;
};

class DdrBackendDifferential
    : public ::testing::TestWithParam<DdrDiffCase>
{
};

TEST_P(DdrBackendDifferential, LockStepAgainstReference)
{
    const DdrDiffCase &g = GetParam();
    SystemConfig cfg;
    cfg.memBytesPerUnit = 1ull << 22; // few rows/bank: conflicts happen
    cfg.dram.backend = MemBackendKind::Ddr;
    cfg.dram.pagePolicy = g.policy;
    cfg.dram.addrMap = g.addrMap;
    cfg.dram.refreshEnabled = g.refresh;
    cfg.validate();
    EnergyAccount energy(cfg);
    DdrBackend opt(cfg, energy); // faults == nullptr: no Rng draws
    check::RefDdrBackend ref(cfg);

    // Drifting, backwards-jittering start ticks: the task-granularity
    // regime every bank-state anchor must stay bounded under.
    Rng gen(0xdd12u);
    Tick base = 0;
    for (std::uint64_t i = 0; i < kOps; ++i) {
        base += gen.below(300);
        Tick t = base >= 20000 ? base - gen.below(20000) : base;
        Addr a = gen.below(cfg.memBytesPerUnit / cachelineBytes)
            * cachelineBytes;
        bool wr = gen.below(4) == 0;
        ASSERT_EQ(opt.access(a, cachelineBytes, wr, false, t),
                  ref.access(a, cachelineBytes, wr, t))
            << "op " << i;
    }
    EXPECT_EQ(opt.reads(), ref.reads());
    EXPECT_EQ(opt.writes(), ref.writes());
    EXPECT_EQ(opt.rowMisses(), ref.rowMisses());
    EXPECT_EQ(opt.rowHits(), ref.rowHits());
    EXPECT_EQ(opt.refreshes(), ref.refreshes());
    EXPECT_EQ(opt.actStalls(), ref.actStalls());
    // Four-activate invariant, cross-checked on the naive meter too.
    EXPECT_LE(ref.actWindowPeak(), ref.actWindowWidth());
}

INSTANTIATE_TEST_SUITE_P(
    Policies, DdrBackendDifferential,
    ::testing::Values(
        DdrDiffCase{"open_rbc", PagePolicy::Open,
                    DramAddrMapKind::RowBankColumn, true},
        DdrDiffCase{"close_rcb", PagePolicy::Close,
                    DramAddrMapKind::RowColumnBank, true},
        DdrDiffCase{"adaptive_brc", PagePolicy::Adaptive,
                    DramAddrMapKind::BankRowColumn, true},
        DdrDiffCase{"open_rcb_norefresh", PagePolicy::Open,
                    DramAddrMapKind::RowColumnBank, false},
        DdrDiffCase{"adaptive_rbc", PagePolicy::Adaptive,
                    DramAddrMapKind::RowBankColumn, true}),
    [](const auto &info) { return std::string(info.param.name); });

// ---- PrefetchBuffer vs RefPrefetchBuffer ------------------------------

TEST(PrefetchBufferDifferential, LockStepAgainstReference)
{
    constexpr std::uint64_t capacity = 64; // 4 kB / 64 B
    PrefetchBuffer opt(capacity);
    check::RefPrefetchBuffer ref(capacity);

    // One generator decodes each operation and its arguments exactly
    // once per iteration, so both sides see identical inputs.
    Rng gen2(0xfee1u);
    Tick now = 0;
    for (std::uint64_t i = 0; i < kOps; ++i) {
        Addr a = drawBlockAddr(gen2, 256);
        now += gen2.below(50);
        std::uint64_t op = gen2.below(8);
        if (op < 4) {
            Tick ready = now + gen2.below(400);
            opt.fill(a, ready);
            ref.fill(a, ready);
        } else if (op < 7) {
            ASSERT_EQ(opt.lookup(a, now), ref.lookup(a, now))
                << "op " << i;
        } else {
            ASSERT_EQ(opt.peek(a), ref.peek(a)) << "op " << i;
        }
        ASSERT_EQ(opt.size(), ref.size()) << "op " << i;
        if (i % 4096 == 4095) {
            opt.invalidateAll();
            ref.invalidateAll();
        }
    }
    EXPECT_EQ(opt.hits(), ref.hits());
    EXPECT_EQ(opt.lateHits(), ref.lateHits());
    EXPECT_EQ(opt.misses(), ref.misses());
    EXPECT_EQ(opt.fills(), ref.fills());
    EXPECT_EQ(opt.evictions(), ref.evictions());
}

// ---- EventQueue vs RefEventQueue --------------------------------------

TEST(EventQueueDifferential, ExecutionOrderMatchesReference)
{
    EventQueue opt;
    check::RefEventQueue ref;

    std::vector<std::uint64_t> optLog, refLog;

    // Seeded generator interleaving schedules (with deliberate tick
    // ties), runs, and barrier-style clearPending; callbacks may
    // schedule follow-ups, exercising in-flight insertion.
    Rng gen(0xe0e0u);
    std::uint64_t nextId = 0;
    for (std::uint64_t i = 0; i < kOps; ++i) {
        std::uint64_t op = gen.below(8);
        if (op < 4) {
            // Coarse tick grid forces frequent ties; order must then
            // follow insertion sequence on both sides.
            Tick when = opt.now() + gen.below(16) * 10;
            std::uint64_t id = nextId++;
            bool chain = gen.below(4) == 0;
            auto *log = &optLog;
            EventQueue *q = &opt;
            opt.schedule(when, [log, id, chain, q] {
                log->push_back(id);
                if (chain)
                    q->scheduleIn(5, [log, id] {
                        log->push_back(id | (1ull << 63));
                    });
            });
            auto *rlog = &refLog;
            check::RefEventQueue *rq = &ref;
            ref.schedule(when, [rlog, id, chain, rq] {
                rlog->push_back(id);
                if (chain)
                    rq->scheduleIn(5, [rlog, id] {
                        rlog->push_back(id | (1ull << 63));
                    });
            });
        } else if (op < 7) {
            ASSERT_EQ(opt.runOne(), ref.runOne()) << "op " << i;
            ASSERT_EQ(opt.now(), ref.now()) << "op " << i;
        } else if (op == 7 && gen.below(64) == 0) {
            opt.clearPending();
            ref.clearPending();
        }
        ASSERT_EQ(opt.size(), ref.size()) << "op " << i;
    }
    while (opt.runOne())
        ref.runOne();
    EXPECT_FALSE(ref.runOne());
    EXPECT_EQ(opt.now(), ref.now());
    EXPECT_EQ(opt.executed(), ref.executed());
    EXPECT_EQ(optLog, refLog);
    EXPECT_GT(optLog.size(), 1000u);
}

// ---- serve::LatencyRecorder vs RefLatencyRecorder ---------------------

TEST(LatencyRecorderDifferential, QuantilesMatchFullSortReference)
{
    // Same stream into both sides; after every batch the nth_element
    // selection must agree bit-exactly with the full-sort reference at
    // every reported rank, including heavy-duplicate and adversarial
    // already-sorted regimes.
    constexpr Tick slo = 5000 * ticksPerNs;
    serve::LatencyRecorder opt(slo);
    check::RefLatencyRecorder ref(slo);

    const double qs[] = {0.5, 0.9, 0.95, 0.99, 0.999, 1.0};
    Rng gen(0x1a7e9cu);
    for (std::uint64_t i = 0; i < kOps; ++i) {
        Tick v;
        switch (gen.below(4)) {
          case 0:
            // Heavy-tail draw: most mass small, occasional huge spike.
            v = gen.below(64) == 0 ? gen.below(1u << 24) : gen.below(4096);
            break;
          case 1:
            v = i; // monotonically increasing (sorted input)
            break;
          case 2:
            v = 1000; // heavy duplicates around one value
            break;
          default:
            v = gen.below(1u << 20);
            break;
        }
        opt.record(v);
        ref.record(v);
        if (i % 997 == 0 || i + 1 == kOps) {
            for (double q : qs)
                ASSERT_EQ(opt.percentile(q), ref.percentile(q))
                    << "op " << i << " q " << q;
            ASSERT_EQ(opt.meanTicks(), ref.meanTicks()) << "op " << i;
        }
    }
    EXPECT_EQ(opt.samples(), ref.samples());
    EXPECT_EQ(opt.sloMisses(), ref.sloMisses());
}

TEST(LatencyRecorderDifferential, EmptyAndSingleSample)
{
    serve::LatencyRecorder opt(100);
    check::RefLatencyRecorder ref(100);
    EXPECT_EQ(opt.percentile(0.99), 0u);
    EXPECT_EQ(opt.percentile(0.99), ref.percentile(0.99));
    opt.record(42);
    ref.record(42);
    for (double q : {0.001, 0.5, 0.999, 1.0})
        EXPECT_EQ(opt.percentile(q), ref.percentile(q)) << q;
}

// ---- serve::ZipfianSampler vs RefZipfSampler --------------------------

TEST(ZipfSamplerDifferential, KeysMatchLinearScanReference)
{
    // Binary-search inversion vs linear scan over identically-built
    // CDF tables: the same uniform draw stream must yield the same key
    // sequence bit for bit, at several skews including the uniform
    // degenerate case.
    for (double s : {0.0, 0.5, 0.99, 1.2}) {
        SCOPED_TRACE(s);
        constexpr std::uint64_t keys = 2311; // non-power-of-two
        serve::ZipfianSampler opt(keys, s);
        check::RefZipfSampler ref(keys, s);

        Rng optRng(0x21bfu), refRng(0x21bfu);
        for (std::uint64_t i = 0; i < kOps; ++i)
            ASSERT_EQ(opt(optRng), ref(refRng)) << "draw " << i;
        // Boundary inversions, exactly representable in double.
        for (double u : {0.0, 0.25, 0.5, 0.999999, 1.0 - 1e-16})
            ASSERT_EQ(opt.keyFor(u), ref.keyFor(u)) << u;
    }
}

// ---- DataHotness vs RefDataHotness ------------------------------------

namespace
{

void
expectSameEntries(const std::vector<HotEntry> &a,
                  const std::vector<HotEntry> &b, std::uint64_t op,
                  UnitId home)
{
    ASSERT_EQ(a.size(), b.size()) << "op " << op << " home " << home;
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].block, b[i].block)
            << "op " << op << " home " << home << " rank " << i;
        ASSERT_EQ(a[i].cnt, b[i].cnt)
            << "op " << op << " home " << home << " rank " << i;
        ASSERT_EQ(a[i].reqId, b[i].reqId)
            << "op " << op << " home " << home << " rank " << i;
        ASSERT_EQ(a[i].reqCnt, b[i].reqCnt)
            << "op " << op << " home " << home << " rank " << i;
    }
}

} // namespace

TEST(DataHotnessDifferential, LockStepAgainstReference)
{
    // Flat slot banks with in-place lossy counting vs a per-home
    // std::map scanned naively. A tight block window over a small K
    // forces constant min-evictions and Boyer-Moore vote churn.
    constexpr std::uint32_t units = 8;
    constexpr std::uint32_t hotK = 6;
    constexpr std::uint32_t decayShift = 1;
    DataHotness opt(units, hotK, decayShift);
    check::RefDataHotness ref(units, hotK, decayShift);

    Rng gen(0x407b10cc5u);
    for (std::uint64_t i = 0; i < kOps; ++i) {
        auto home = static_cast<UnitId>(gen.below(units));
        Addr a = drawBlockAddr(gen, 24); // few blocks: slot contention
        auto req = static_cast<UnitId>(gen.below(units));
        switch (gen.below(8)) {
          case 7:
            opt.erase(home, a);
            ref.erase(home, a);
            break;
          default:
            opt.record(home, a, req);
            ref.record(home, a, req);
            break;
        }
        if (i % 64 == 63) {
            opt.decayAll();
            ref.decayAll();
        }
        ASSERT_EQ(opt.totalCount(home), ref.totalCount(home))
            << "op " << i;
        if (i % 128 == 0)
            for (UnitId h = 0; h < units; ++h)
                expectSameEntries(opt.topK(h), ref.topK(h), i, h);
    }
    for (UnitId h = 0; h < units; ++h) {
        expectSameEntries(opt.topK(h), ref.topK(h), kOps, h);
        EXPECT_EQ(opt.totalCount(h), ref.totalCount(h)) << "home " << h;
    }
}

TEST(DataHotnessDifferential, DecayFreesSlotsIdentically)
{
    // Full-strength decay (shift 63) zeroes everything: both sides
    // must agree the banks are empty and reusable afterwards.
    DataHotness opt(2, 4, 63);
    check::RefDataHotness ref(2, 4, 63);
    for (std::uint64_t i = 0; i < 64; ++i) {
        Addr a = (i % 6) * cachelineBytes;
        opt.record(0, a, 1);
        ref.record(0, a, 1);
    }
    opt.decayAll();
    ref.decayAll();
    EXPECT_EQ(opt.totalCount(0), 0u);
    EXPECT_EQ(ref.totalCount(0), 0u);
    EXPECT_TRUE(opt.topK(0).empty());
    EXPECT_TRUE(ref.topK(0).empty());
    opt.record(0, 0, 1);
    ref.record(0, 0, 1);
    expectSameEntries(opt.topK(0), ref.topK(0), 65, 0);
}

// ---- HomeIndirection vs RefHomeIndirection ----------------------------

TEST(HomeIndirectionDifferential, LockStepAgainstReference)
{
    // unordered_map overlay vs ordered std::map: every point query
    // must agree. Static homes derive deterministically from the
    // block number, like the range partition does.
    constexpr std::uint32_t units = 16;
    HomeIndirection opt;
    check::RefHomeIndirection ref;

    Rng gen(0x1d1ecccu);
    for (std::uint64_t i = 0; i < kOps; ++i) {
        Addr a = drawBlockAddr(gen, 512);
        auto base = static_cast<UnitId>(blockNumber(a) % units);
        switch (gen.below(8)) {
          case 0:
          case 1:
          case 2: {
            auto to = static_cast<UnitId>(gen.below(units));
            opt.set(a, to, base);
            ref.set(a, to, base);
            break;
          }
          case 3: {
            // Move home again: exercises overwrite of a live entry.
            auto to = static_cast<UnitId>(gen.below(units));
            opt.set(a, to, base);
            ref.set(a, to, base);
            break;
          }
          case 4:
            // Re-home back to base: the entry must vanish.
            opt.set(a, base, base);
            ref.set(a, base, base);
            break;
          default:
            break;
        }
        ASSERT_EQ(opt.resolve(a, base), ref.resolve(a, base))
            << "op " << i;
        ASSERT_EQ(opt.entries(), ref.entries()) << "op " << i;
        ASSERT_EQ(opt.active(), ref.active()) << "op " << i;
        if (i % 6000 == 5999) {
            opt.clear();
            ref.clear();
            ASSERT_FALSE(opt.active());
        }
    }
    // Full sweep: every block in the window resolves identically.
    for (std::uint64_t b = 0; b < 512; ++b) {
        Addr a = b * cachelineBytes;
        auto base = static_cast<UnitId>(b % units);
        EXPECT_EQ(opt.resolve(a, base), ref.resolve(a, base))
            << "block " << b;
    }
}

TEST(ZipfSamplerDifferential, EmpiricalFrequencyTracksExactPmf)
{
    // Statistical leg: with s = 0.99 over a small key space, observed
    // frequencies over 200k draws must track the exact per-key
    // probabilities within a loose relative band for the head keys
    // (the tail is too thin for tight per-key bounds).
    constexpr std::uint64_t keys = 64;
    constexpr std::uint64_t draws = 200000;
    serve::ZipfianSampler zipf(keys, 0.99);

    std::vector<std::uint64_t> count(keys, 0);
    Rng rng(0x5eedu);
    for (std::uint64_t i = 0; i < draws; ++i)
        ++count[zipf(rng)];

    double mass = 0.0;
    for (std::uint64_t k = 0; k < 8; ++k) {
        double expect = zipf.probabilityOf(k) * draws;
        EXPECT_NEAR(static_cast<double>(count[k]), expect,
                    0.1 * expect + 3.0 * std::sqrt(expect))
            << "key " << k;
        mass += zipf.probabilityOf(k);
    }
    // s ~ 1 concentrates a large share of all draws on the head.
    EXPECT_GT(mass, 0.5);
    // Skew sanity: the head key dominates the median key.
    EXPECT_GT(count[0], 8 * count[keys / 2]);
}

} // namespace abndp
