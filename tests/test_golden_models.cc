/**
 * @file
 * Golden-model property tests: drive the optimized simulator data
 * structures with long random operation streams and compare every
 * response against naive reference implementations.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <map>
#include <vector>

#include "cache/set_assoc_cache.hh"
#include "cache/prefetch_buffer.hh"
#include "common/rng.hh"
#include "sim/event_queue.hh"

namespace abndp
{

namespace
{

/** Naive LRU set-associative cache (list-per-set, linear everything). */
class RefLruCache
{
  public:
    RefLruCache(std::uint64_t sets, std::uint32_t ways)
        : sets(sets), ways(ways), store(sets)
    {
    }

    bool
    access(Addr block)
    {
        auto &set = store[mix64(blockNumber(block)) % sets];
        auto it = std::find(set.begin(), set.end(), block);
        if (it == set.end())
            return false;
        set.erase(it);
        set.push_front(block); // MRU at front
        return true;
    }

    void
    insert(Addr block)
    {
        auto &set = store[mix64(blockNumber(block)) % sets];
        auto it = std::find(set.begin(), set.end(), block);
        if (it != set.end()) {
            set.erase(it);
        } else if (set.size() == ways) {
            set.pop_back(); // evict LRU
        }
        set.push_front(block);
    }

  private:
    std::uint64_t sets;
    std::uint32_t ways;
    std::vector<std::list<Addr>> store;
};

} // namespace

/** Random mixed access/insert streams over several geometries. */
class LruGolden
    : public ::testing::TestWithParam<std::pair<std::uint64_t,
                                                std::uint32_t>>
{
};

TEST_P(LruGolden, MatchesReferenceExactly)
{
    auto [sets, ways] = GetParam();
    SetAssocCache dut(sets, ways, ReplPolicy::Lru);
    RefLruCache ref(sets, ways);
    Rng rng(mix64(sets * 131 + ways));

    for (int i = 0; i < 20000; ++i) {
        Addr block = rng.below(sets * ways * 4) * 64;
        if (rng.chance(0.5)) {
            ASSERT_EQ(dut.access(block), ref.access(block))
                << "op " << i << " block " << block;
        } else {
            dut.insert(block);
            ref.insert(block);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, LruGolden,
    ::testing::Values(std::make_pair(1ull, 2u), std::make_pair(4ull, 4u),
                      std::make_pair(16ull, 1u),
                      std::make_pair(64ull, 8u)));

TEST(EventQueueGolden, MatchesSortedReference)
{
    // Random schedule times; execution order must equal a stable sort
    // by (time, insertion order).
    EventQueue eq;
    Rng rng(99);
    std::vector<std::pair<Tick, int>> ref;
    std::vector<int> order;
    for (int i = 0; i < 5000; ++i) {
        Tick when = rng.below(10000);
        ref.emplace_back(when, i);
        eq.schedule(when, [&order, i] { order.push_back(i); });
    }
    eq.runAll();
    std::stable_sort(ref.begin(), ref.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    ASSERT_EQ(order.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
        ASSERT_EQ(order[i], ref[i].second) << i;
}

TEST(PrefetchBufferGolden, MatchesFifoMapReference)
{
    PrefetchBuffer dut(8);
    // Reference: map + insertion-order list of at most 8 entries.
    std::map<Addr, Tick> entries;
    std::list<Addr> fifo;
    Rng rng(7);

    for (int i = 0; i < 20000; ++i) {
        Addr block = rng.below(32) * 64;
        if (rng.chance(0.5)) {
            Tick ready = rng.below(1000);
            dut.fill(block, ready);
            auto it = entries.find(block);
            if (it != entries.end()) {
                it->second = std::min(it->second, ready);
            } else {
                if (entries.size() == 8) {
                    entries.erase(fifo.front());
                    fifo.pop_front();
                }
                entries.emplace(block, ready);
                fifo.push_back(block);
            }
        } else {
            Tick now = rng.below(1000);
            Tick got = dut.lookup(block, now);
            auto it = entries.find(block);
            Tick want = it == entries.end() ? tickNever : it->second;
            ASSERT_EQ(got, want) << "op " << i;
        }
    }
}

TEST(RandomReplacement, IsUniformish)
{
    // Property: with random replacement in a single set, long-run
    // eviction victims should not be biased toward one way.
    SetAssocCache dut(1, 4, ReplPolicy::Random, 5);
    std::map<Addr, int> evictions;
    // Fill, then hammer with new blocks and track what gets evicted.
    for (Addr a = 0; a < 4; ++a)
        dut.insert(a * 64);
    Rng rng(13);
    int total = 0;
    for (int i = 0; i < 4000; ++i) {
        Addr fresh = (100 + i) * 64;
        Addr evicted = dut.insert(fresh);
        if (evicted != invalidAddr) {
            ++total;
        }
    }
    EXPECT_GT(total, 3900); // almost every insert evicts once warm
}

} // namespace abndp
