/** @file Tests for the end-to-end Traveller access flow (Section 4.4). */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>

#include "core/mem_system.hh"

namespace abndp
{

namespace
{

struct MemFixture
{
    explicit MemFixture(CacheStyle style, double bypass = 0.0)
    {
        cfg.traveller.style = style;
        cfg.traveller.bypassProb = bypass;
        topo = std::make_unique<Topology>(cfg);
        amap = std::make_unique<AddressMap>(cfg);
        energy = std::make_unique<EnergyAccount>(cfg);
        mem = std::make_unique<MemSystem>(cfg, *topo, *amap, *energy);
    }

    SystemConfig cfg;
    std::unique_ptr<Topology> topo;
    std::unique_ptr<AddressMap> amap;
    std::unique_ptr<EnergyAccount> energy;
    std::unique_ptr<MemSystem> mem;
};

} // namespace

TEST(MemSystem, LocalReadIsCheapestWithoutCaching)
{
    MemFixture f(CacheStyle::None);
    Addr local = f.amap->unitBase(0) + 0x40;
    Addr same_stack = f.amap->unitBase(5) + 0x40;
    Addr far = f.amap->unitBase(127) + 0x40;
    Tick t_local = f.mem->readBlock(0, local, 0);
    Tick t_intra = f.mem->readBlock(0, same_stack, 1000000);
    Tick t_far = f.mem->readBlock(0, far, 2000000);
    EXPECT_LT(t_local, t_intra);
    EXPECT_LT(t_intra, t_far);
}

TEST(MemSystem, NoCampActivityWithoutCaching)
{
    MemFixture f(CacheStyle::None);
    f.mem->readBlock(0, f.amap->unitBase(90) + 0x40, 0);
    EXPECT_EQ(f.mem->campHits() + f.mem->campMisses(), 0u);
    EXPECT_FALSE(f.mem->cachingEnabled());
}

TEST(MemSystem, SecondRemoteReadHitsTheCamp)
{
    MemFixture f(CacheStyle::TravellerSramTags);
    Addr addr = f.amap->unitBase(90) + 0x40;
    // Find a requester whose nearest candidate is a camp, not the home.
    UnitId requester = invalidUnit;
    for (UnitId u = 0; u < 128; ++u) {
        if (f.mem->campMapping().nearestCandidate(addr, u) != 90u) {
            requester = u;
            break;
        }
    }
    ASSERT_NE(requester, invalidUnit);

    Tick cold = f.mem->readBlock(requester, addr, 0);
    EXPECT_EQ(f.mem->campMisses(), 1u);
    EXPECT_EQ(f.mem->cacheInsertions(), 1u); // bypassProb = 0

    Tick warm = f.mem->readBlock(requester, addr, 10000000);
    EXPECT_EQ(f.mem->campHits(), 1u);
    EXPECT_LT(warm, cold);
}

TEST(MemSystem, BulkInvalidateDropsCampContents)
{
    MemFixture f(CacheStyle::TravellerSramTags);
    Addr addr = f.amap->unitBase(90) + 0x40;
    UnitId requester = 0;
    while (f.mem->campMapping().nearestCandidate(addr, requester) == 90u)
        ++requester;
    f.mem->readBlock(requester, addr, 0);
    f.mem->bulkInvalidate();
    f.mem->readBlock(requester, addr, 10000000);
    EXPECT_EQ(f.mem->campMisses(), 2u);
    EXPECT_EQ(f.mem->campHits(), 0u);
}

TEST(MemSystem, WritesBypassCacheAndGoHome)
{
    MemFixture f(CacheStyle::TravellerSramTags);
    Addr addr = f.amap->unitBase(90) + 0x40;
    f.mem->writeBlock(3, addr, 0);
    EXPECT_EQ(f.mem->dram(90).writes(), 1u);
    EXPECT_EQ(f.mem->campHits() + f.mem->campMisses(), 0u);
}

TEST(MemSystem, DramTagStyleCostsExtraDramAccesses)
{
    MemFixture sram(CacheStyle::TravellerSramTags);
    MemFixture intag(CacheStyle::DramTags);
    Addr addr = sram.amap->unitBase(90) + 0x40;
    UnitId req = 0;
    while (sram.mem->campMapping().nearestCandidate(addr, req) == 90u)
        ++req;
    UnitId camp = sram.mem->campMapping().nearestCandidate(addr, req);

    sram.mem->readBlock(req, addr, 0);
    intag.mem->readBlock(req, addr, 0);
    // The in-DRAM tag check adds DRAM accesses at the camp.
    EXPECT_GT(intag.mem->dram(camp).reads()
                  + intag.mem->dram(camp).writes(),
              sram.mem->dram(camp).reads()
                  + sram.mem->dram(camp).writes());
}

TEST(MemSystem, SramDataStyleHitAvoidsDram)
{
    MemFixture f(CacheStyle::SramData);
    Addr addr = f.amap->unitBase(90) + 0x40;
    UnitId req = 0;
    while (f.mem->campMapping().nearestCandidate(addr, req) == 90u)
        ++req;
    UnitId camp = f.mem->campMapping().nearestCandidate(addr, req);

    f.mem->readBlock(req, addr, 0);
    auto dram_after_miss = f.mem->dram(camp).reads();
    f.mem->readBlock(req, addr, 10000000);
    EXPECT_EQ(f.mem->campHits(), 1u);
    // The hit is served from SRAM: no new DRAM read at the camp.
    EXPECT_EQ(f.mem->dram(camp).reads(), dram_after_miss);
}

TEST(MemSystem, BypassProbabilitySkipsInsertions)
{
    MemFixture f(CacheStyle::TravellerSramTags, 1.0); // always bypass
    Addr addr = f.amap->unitBase(90) + 0x40;
    UnitId req = 0;
    while (f.mem->campMapping().nearestCandidate(addr, req) == 90u)
        ++req;
    f.mem->readBlock(req, addr, 0);
    f.mem->readBlock(req, addr, 10000000);
    EXPECT_EQ(f.mem->cacheInsertions(), 0u);
    EXPECT_EQ(f.mem->campMisses(), 2u);
}

TEST(MemSystem, ReadLatencySampled)
{
    MemFixture f(CacheStyle::None);
    f.mem->readBlock(0, f.amap->unitBase(64) + 0x40, 0);
    EXPECT_EQ(f.mem->readLatencyNs().samples(), 1u);
    EXPECT_GT(f.mem->readLatencyNs().mean(), 0.0);
}

// The per-block read histogram is a debug aid, opt-in via the
// ABNDP_READ_HIST environment variable (checked once at construction)
// so benchmark runs never pay for the hash map on the read path.
TEST(MemSystem, ReadHistogramOffByDefault)
{
    MemFixture f(CacheStyle::None);
    f.mem->readBlock(0, f.amap->unitBase(64) + 0x40, 0);
    f.mem->readBlock(0, f.amap->unitBase(64) + 0x80, 0);
    EXPECT_TRUE(f.mem->readHist().empty());
}

TEST(MemSystem, ReadHistogramCountsWhenEnabled)
{
    ::setenv("ABNDP_READ_HIST", "1", 1);
    MemFixture f(CacheStyle::None);
    ::unsetenv("ABNDP_READ_HIST");

    Addr a = f.amap->unitBase(64) + 0x40;
    Addr b = f.amap->unitBase(64) + 0x80;
    f.mem->readBlock(0, a, 0);
    f.mem->readBlock(0, a, 1000000);
    f.mem->readBlock(0, b, 2000000);

    const auto &hist = f.mem->readHist();
    ASSERT_EQ(hist.size(), 2u);
    EXPECT_EQ(hist.at(blockAlign(a)), 2u);
    EXPECT_EQ(hist.at(blockAlign(b)), 1u);
}

} // namespace abndp
