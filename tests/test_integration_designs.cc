/**
 * @file
 * Cross-design integration properties: every Table-2 design must run
 * every workload correctly, and the qualitative relationships the paper
 * builds on must hold on representative inputs.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "check/config_fuzz.hh"
#include "common/rng.hh"
#include "core/ndp_system.hh"
#include "driver/experiment.hh"
#include "host/host_system.hh"

namespace abndp
{

/** design x workload sweep at tiny scale: correctness everywhere. */
class DesignWorkloadMatrix
    : public ::testing::TestWithParam<std::tuple<Design, std::string>>
{
};

TEST_P(DesignWorkloadMatrix, RunsAndVerifies)
{
    auto [design, wlname] = GetParam();
    SystemConfig base;
    ExperimentOptions opts;
    opts.verify = true;
    opts.fatalOnVerifyFailure = false; // let gtest report instead
    WorkloadSpec spec = WorkloadSpec::tiny(wlname);
    auto cfg = applyDesign(base, design);
    auto wl = makeWorkload(spec);
    RunMetrics m;
    if (design == Design::H) {
        HostSystem host(cfg);
        m = host.run(*wl);
    } else {
        NdpSystem sys(cfg);
        m = sys.run(*wl);
    }
    EXPECT_TRUE(wl->verify());
    EXPECT_GT(m.tasks, 0u);
    EXPECT_GT(m.ticks, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, DesignWorkloadMatrix,
    ::testing::Combine(::testing::ValuesIn(allDesigns()),
                       ::testing::ValuesIn(allWorkloadNames())),
    [](const auto &info) {
        return designToken(std::get<0>(info.param)) + "_"
            + std::get<1>(info.param);
    });

/**
 * Randomized companion to the fixed matrix above: per (design,
 * workload) cell, three machines drawn by the config fuzzer's sampler
 * must still verify. Seeds derive from gtest's --gtest_random_seed
 * (shuffle runs explore new machines; the unshuffled default pins a
 * fixed base so plain ctest runs stay reproducible).
 */
class RandomSeedGrid
    : public ::testing::TestWithParam<std::tuple<Design, std::string>>
{
};

TEST_P(RandomSeedGrid, VerifiesUnderFuzzerDrawnConfigs)
{
    auto [design, wlname] = GetParam();
    const int gseed =
        ::testing::UnitTest::GetInstance()->random_seed();
    const std::uint64_t base =
        gseed != 0 ? static_cast<std::uint64_t>(gseed) : 20260806ull;
    // Decorrelate cells: mix the cell coordinates into the seed.
    std::uint64_t cell = static_cast<std::uint64_t>(design) << 32;
    for (char ch : wlname)
        cell = cell * 131 + static_cast<unsigned char>(ch);
    Rng rng(mix64(base) ^ mix64(cell));

    for (int draw = 0; draw < 3; ++draw) {
        check::FuzzCase c = check::sampleFuzzCase(rng);
        // The grid substitutes its own workload per cell, so drop any
        // serving axis the sampler drew: serving is only meaningful
        // for the QueryService workloads the sampler pairs it with.
        c.cfg.serving.requests = 0;
        SystemConfig cfg = applyDesign(c.cfg, design);
        WorkloadSpec spec = WorkloadSpec::tiny(wlname);
        auto wl = makeWorkload(spec);
        RunMetrics m;
        if (design == Design::H) {
            HostSystem host(cfg);
            m = host.run(*wl);
        } else {
            NdpSystem sys(cfg);
            m = sys.run(*wl);
        }
        EXPECT_TRUE(wl->verify())
            << "draw " << draw << " cfg seed " << cfg.seed
            << " units " << cfg.numUnits()
            << "\nrepro:\n" << check::fuzzCaseToJson(c);
        EXPECT_GT(m.tasks, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RandomSeedGrid,
    ::testing::Combine(::testing::ValuesIn(allDesigns()),
                       ::testing::ValuesIn(allWorkloadNames())),
    [](const auto &info) {
        return designToken(std::get<0>(info.param)) + "_"
            + std::get<1>(info.param);
    });

namespace
{

RunMetrics
runPr(Design d, std::uint32_t scale = 12)
{
    SystemConfig base;
    WorkloadSpec spec;
    spec.name = "pr";
    spec.scale = scale;
    spec.prIters = 3;
    ExperimentOptions opts;
    opts.verify = false;
    return runExperiment(base, d, spec, opts);
}

} // namespace

TEST(DesignProperties, LowestDistanceReducesHopsButWorsensBalance)
{
    // The Figure-2 motivation: Sm (LDM) lowers interconnect hops
    // relative to B but concentrates load.
    RunMetrics b = runPr(Design::B);
    RunMetrics sm = runPr(Design::Sm);
    EXPECT_LT(sm.interHops, b.interHops);
    EXPECT_GT(sm.imbalance(), b.imbalance());
}

TEST(DesignProperties, WorkStealingBalancesButAddsHops)
{
    RunMetrics sm = runPr(Design::Sm);
    RunMetrics sl = runPr(Design::Sl);
    EXPECT_LT(sl.imbalance(), sm.imbalance());
    EXPECT_GT(sl.interHops, sm.interHops);
}

TEST(DesignProperties, TravellerCacheReducesHops)
{
    RunMetrics sm = runPr(Design::Sm);
    RunMetrics c = runPr(Design::C);
    EXPECT_LT(c.interHops, sm.interHops);
    EXPECT_GT(c.campHitRate(), 0.3);
}

TEST(DesignProperties, AbndpBeatsBaselineOnSkewedGraphs)
{
    RunMetrics b = runPr(Design::B, 13);
    RunMetrics o = runPr(Design::O, 13);
    EXPECT_LT(o.ticks, b.ticks);
    EXPECT_LT(o.imbalance(), b.imbalance());
}

TEST(DesignProperties, HybridHopsBetweenColocateAndStealing)
{
    RunMetrics b = runPr(Design::B);
    RunMetrics sl = runPr(Design::Sl);
    RunMetrics sh = runPr(Design::Sh);
    // Section 7.1: Sh has fewer remote accesses than Sl while balancing
    // better than B-like static mappings.
    EXPECT_LT(sh.interHops, sl.interHops);
    EXPECT_LT(sh.imbalance(), b.imbalance() * 2.0);
}

TEST(DesignProperties, KmeansInsensitiveToDesign)
{
    // Section 7.1: kmeans tasks are fully independent and local.
    SystemConfig base;
    WorkloadSpec spec = WorkloadSpec::tiny("kmeans");
    spec.kmeansPoints = 1 << 14;
    ExperimentOptions opts;
    opts.verify = false;
    RunMetrics b = runExperiment(base, Design::B, spec, opts);
    RunMetrics o = runExperiment(base, Design::O, spec, opts);
    double ratio = static_cast<double>(b.ticks) / o.ticks;
    EXPECT_GT(ratio, 0.9);
    EXPECT_LT(ratio, 1.1);
}

} // namespace abndp
