/**
 * @file
 * Unit-failure tolerance tests: the FaultModel liveness mask and buddy
 * re-homing, the recovery protocol (queue drain / re-inject,
 * delivery-ack redispatch), graceful degraded-mode scheduling under
 * every Table-2 NDP design, and bit-determinism of failure runs.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/config.hh"
#include "core/ndp_system.hh"
#include "driver/experiment.hh"
#include "fault/fault_model.hh"
#include "workloads/factory.hh"

namespace abndp
{

namespace
{

/** 2x2 mesh, 2 units/stack (8 units), 2 cores; checkers armed. */
SystemConfig
smallConfig(Design d)
{
    SystemConfig cfg;
    cfg.meshX = cfg.meshY = 2;
    cfg.unitsPerStack = 2;
    cfg.coresPerUnit = 2;
    cfg = applyDesign(cfg, d);
    cfg.checkInvariants = true;
    return cfg;
}

RunMetrics
runWorkload(const SystemConfig &cfg, const char *wlname = "pr")
{
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny(wlname));
    RunMetrics m = sys.run(*wl);
    EXPECT_TRUE(wl->verify());
    return m;
}

} // namespace

// ---- FaultModel liveness / re-homing ----------------------------------

TEST(FaultModelLiveness, MaskAndRehomeFollowMarks)
{
    auto cfg = smallConfig(Design::B);
    cfg.fault.unitFailure.units = {1, 2};
    cfg.validate();
    FaultModel fm(cfg);

    EXPECT_TRUE(fm.unitFailuresEnabled());
    EXPECT_FALSE(fm.anyUnitDown());
    for (UnitId u = 0; u < cfg.numUnits(); ++u)
        EXPECT_TRUE(fm.isLive(u));

    fm.markDown(1);
    fm.markDown(2);
    EXPECT_TRUE(fm.anyUnitDown());
    EXPECT_EQ(fm.downCount(), 2u);
    EXPECT_FALSE(fm.isLive(1));
    EXPECT_FALSE(fm.isLive(2));
    // Buddy = next live unit in id order, skipping dead ones.
    EXPECT_EQ(fm.rehomeOf(1), 3u);
    EXPECT_EQ(fm.rehomeOf(2), 3u);
    // A live unit re-homes to itself.
    EXPECT_EQ(fm.rehomeOf(0), 0u);

    // markDown is idempotent; markUp restores the unit.
    fm.markDown(1);
    EXPECT_EQ(fm.downCount(), 2u);
    fm.markUp(1);
    fm.markUp(2);
    EXPECT_FALSE(fm.anyUnitDown());
    EXPECT_TRUE(fm.isLive(1));
}

TEST(FaultModelLiveness, RehomeWrapsAroundIdSpace)
{
    auto cfg = smallConfig(Design::B);
    UnitId last = cfg.numUnits() - 1;
    cfg.fault.unitFailure.units = {last};
    cfg.validate();
    FaultModel fm(cfg);
    fm.markDown(last);
    EXPECT_EQ(fm.rehomeOf(last), 0u);
}

TEST(FaultModelLiveness, CountFromSeedIsDeterministic)
{
    auto cfg = smallConfig(Design::B);
    cfg.fault.unitFailure.count = 3;
    cfg.validate();
    FaultModel a(cfg), b(cfg);
    ASSERT_EQ(a.failedUnits().size(), 3u);
    EXPECT_EQ(a.failedUnits(), b.failedUnits());
    for (UnitId u : a.failedUnits())
        EXPECT_LT(u, cfg.numUnits());

    // The unit-failure draw has its own seed domain: link-fault and
    // straggler selections must be unaffected by enabling it.
    auto plain = smallConfig(Design::B);
    plain.validate();
    FaultModel base(plain);
    EXPECT_EQ(base.failedUnits().size(), 0u);
}

// ---- Recovery under every Table-2 NDP design --------------------------

class UnitFailureDesignRun : public ::testing::TestWithParam<Design>
{
};

TEST_P(UnitFailureDesignRun, PermanentMidRunKillCompletesAndVerifies)
{
    // A unit killed shortly into the run: the workload must still
    // complete, verify, and satisfy every invariant, including the
    // task-conservation-under-failure law (checkers panic otherwise).
    auto cfg = smallConfig(GetParam());
    cfg.fault.unitFailure.units = {3};
    cfg.fault.unitFailure.failAtNs = 100.0;
    RunMetrics m = runWorkload(cfg);
    EXPECT_GT(m.tasks, 0u);
    EXPECT_EQ(m.unitsFailed, 1u);
}

TEST_P(UnitFailureDesignRun, FailureRunsAreBitDeterministic)
{
    auto cfg = smallConfig(GetParam());
    cfg.fault.unitFailure.count = 2;
    cfg.fault.unitFailure.failAtNs = 150.0;
    RunMetrics a = runWorkload(cfg);
    RunMetrics b = runWorkload(cfg);
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.tasks, b.tasks);
    EXPECT_EQ(a.interHops, b.interHops);
    EXPECT_EQ(a.tasksRecovered, b.tasksRecovered);
    EXPECT_EQ(a.tasksRedispatched, b.tasksRedispatched);
    EXPECT_EQ(a.recoveryTrafficBytes, b.recoveryTrafficBytes);
}

INSTANTIATE_TEST_SUITE_P(AllNdpDesigns, UnitFailureDesignRun,
                         ::testing::ValuesIn(ndpDesigns()),
                         [](const auto &info) {
                             return designToken(info.param);
                         });

// ---- Degraded-mode scheduling -----------------------------------------

TEST(UnitFailure, DeadFromStartRunsZeroTasks)
{
    // Killed at t=0, before any dispatch: the dead unit must never
    // execute a task, and the work initially staged on it must be
    // recovered onto live units.
    auto cfg = smallConfig(Design::O);
    cfg.fault.unitFailure.units = {3};
    cfg.fault.unitFailure.failAtNs = 0.0;
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("pr"));
    RunMetrics m = sys.run(*wl);
    EXPECT_TRUE(wl->verify());
    EXPECT_EQ(sys.unit(3).tasksRun(), 0u);
    EXPECT_GT(m.tasksRecovered, 0u);
    EXPECT_GT(m.recoveryTrafficBytes, 0u);
    EXPECT_EQ(m.unitsFailed, 1u);
}

TEST(UnitFailure, TransientWindowRecoversTheUnit)
{
    // A transient down-window: the machine completes, and once the
    // unit is back up it picks up work again (it ran tasks despite
    // being dead from the very start of the run).
    auto cfg = smallConfig(Design::O);
    cfg.fault.unitFailure.units = {2};
    cfg.fault.unitFailure.failAtNs = 0.0;
    cfg.fault.unitFailure.recoverAtNs = 300.0;
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("pr"));
    RunMetrics m = sys.run(*wl);
    EXPECT_TRUE(wl->verify());
    EXPECT_EQ(m.unitsFailed, 1u);
    EXPECT_GT(sys.unit(2).tasksRun(), 0u);
}

TEST(UnitFailure, FailureAfterRunEndNeverFires)
{
    auto cfg = smallConfig(Design::O);
    cfg.fault.unitFailure.units = {1};
    cfg.fault.unitFailure.failAtNs = 1e12; // far beyond any tiny run
    RunMetrics m = runWorkload(cfg);
    EXPECT_EQ(m.unitsFailed, 0u);
    EXPECT_EQ(m.tasksRecovered, 0u);
    EXPECT_EQ(m.recoveryTrafficBytes, 0u);
}

// ---- Observability ----------------------------------------------------

TEST(UnitFailure, RecoveryStatsRegisteredOnlyWhenConfigured)
{
    // With a failure configured the registry grows a recovery group;
    // without one the dump must not mention it (golden dumps stay
    // byte-identical with failure injection off).
    auto on = smallConfig(Design::O);
    on.fault.unitFailure.units = {3};
    on.fault.unitFailure.failAtNs = 0.0;
    NdpSystem sysOn(on);
    auto wl = makeWorkload(WorkloadSpec::tiny("pr"));
    sysOn.run(*wl);
    std::ostringstream dumpOn;
    sysOn.statsRegistry().dump(dumpOn);
    EXPECT_NE(dumpOn.str().find("recovery.tasksRecovered"),
              std::string::npos);

    auto off = smallConfig(Design::O);
    NdpSystem sysOff(off);
    auto wl2 = makeWorkload(WorkloadSpec::tiny("pr"));
    sysOff.run(*wl2);
    std::ostringstream dumpOff;
    sysOff.statsRegistry().dump(dumpOff);
    EXPECT_EQ(dumpOff.str().find("recovery."), std::string::npos);
}

} // namespace abndp
