/**
 * @file
 * Coverage properties of the camp-location design (Section 4.2): every
 * requester must find a candidate copy of every block within its own
 * localized group, bounding the probe distance; skewing must create the
 * cross-group diversity the scheduler exploits.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "cache/camp_mapping.hh"
#include "common/rng.hh"
#include "mem/address_map.hh"
#include "net/topology.hh"

namespace abndp
{

namespace
{

struct Fixture
{
    explicit Fixture(std::uint32_t camps = 3, bool skewed = true)
    {
        cfg.traveller.style = CacheStyle::TravellerSramTags;
        cfg.traveller.campCount = camps;
        cfg.traveller.skewedMapping = skewed;
        topo = std::make_unique<Topology>(cfg);
        amap = std::make_unique<AddressMap>(cfg);
        camps_ = std::make_unique<CampMapping>(cfg, *topo, *amap);
    }

    SystemConfig cfg;
    std::unique_ptr<Topology> topo;
    std::unique_ptr<AddressMap> amap;
    std::unique_ptr<CampMapping> camps_;
};

} // namespace

TEST(CampCoverage, EveryRequesterHasAnInGroupCandidate)
{
    Fixture f;
    Rng rng(3);
    for (int i = 0; i < 500; ++i) {
        Addr a = (rng.below(1ull << 35)) & ~63ull;
        auto requester = static_cast<UnitId>(rng.below(128));
        UnitId inGroup =
            f.camps_->locationInGroup(a, f.topo->groupOf(requester));
        ASSERT_EQ(f.topo->groupOf(inGroup), f.topo->groupOf(requester));
    }
}

TEST(CampCoverage, NearestProbeDistanceIsBoundedByGroupDiameter)
{
    // Because each group is a 2x2 stack tile, the nearest candidate is
    // at most 2 inter-stack hops away — far below the mesh diameter 6.
    Fixture f;
    Rng rng(5);
    for (int i = 0; i < 500; ++i) {
        Addr a = (rng.below(1ull << 35)) & ~63ull;
        auto requester = static_cast<UnitId>(rng.below(128));
        UnitId nearest = f.camps_->nearestCandidate(a, requester);
        EXPECT_LE(f.topo->interHops(requester, nearest), 2u);
    }
}

TEST(CampCoverage, SkewGivesTasksCloserMultiDataPlacements)
{
    // Section 4.2's second benefit: for pairs of blocks, the best
    // single-group distance between their candidates should (on
    // average) be smaller under skewed mapping than identical mapping.
    Fixture skew(3, true), ident(3, false);
    Rng rng(7);
    double skewTotal = 0.0, identTotal = 0.0;
    const int pairs = 2000;
    for (int i = 0; i < pairs; ++i) {
        Addr a = (rng.below(1ull << 35)) & ~63ull;
        Addr b = (rng.below(1ull << 35)) & ~63ull;
        auto bestPairDist = [&](const Fixture &f) {
            double best = 1e18;
            for (GroupId g = 0; g < 4; ++g) {
                UnitId ca = f.camps_->locationInGroup(a, g);
                UnitId cb = f.camps_->locationInGroup(b, g);
                best = std::min(best, f.topo->distanceCost(ca, cb));
            }
            return best;
        };
        skewTotal += bestPairDist(skew);
        identTotal += bestPairDist(ident);
    }
    EXPECT_LT(skewTotal / pairs, identTotal / pairs);
}

TEST(CampCoverage, CandidatesNeverRepeatAUnit)
{
    Fixture f(7);
    Rng rng(9);
    for (int i = 0; i < 300; ++i) {
        Addr a = (rng.below(1ull << 35)) & ~63ull;
        CandidateList cl;
        f.camps_->candidates(a, cl);
        std::set<UnitId> unique(cl.loc.begin(), cl.loc.begin() + cl.n);
        EXPECT_EQ(unique.size(), cl.n);
    }
}

TEST(CampCoverage, SubStackGroupsStillCoverEveryRequester)
{
    // 15 camps = 16 groups on 16 stacks: one group per stack.
    Fixture f(15);
    Rng rng(11);
    for (int i = 0; i < 200; ++i) {
        Addr a = (rng.below(1ull << 35)) & ~63ull;
        auto requester = static_cast<UnitId>(rng.below(128));
        UnitId nearest = f.camps_->nearestCandidate(a, requester);
        // A candidate exists in the requester's own stack.
        EXPECT_LE(f.topo->interHops(requester, nearest), 0u);
    }
}

} // namespace abndp
