/**
 * @file
 * Tests for the secondary hardware detail: DRAM refresh, per-core TLBs,
 * L1-I streaming, and the pruned scheduler scoring mode.
 */

#include <gtest/gtest.h>

#include "core/ndp_system.hh"
#include "driver/experiment.hh"
#include "energy/energy.hh"
#include "mem/meter_backend.hh"
#include "workloads/factory.hh"
#include "workloads/graph_gen.hh"
#include "workloads/pagerank.hh"

namespace abndp
{

TEST(DramRefresh, ChargesRefreshesOverTime)
{
    SystemConfig cfg;
    EnergyAccount energy(cfg);
    MeterBackend dram(cfg, energy);
    // Access the same bank twice, 10 tREFI apart: refreshes are due.
    dram.access(0, 64, false, false, 0);
    Tick later = static_cast<Tick>(10 * cfg.dram.tRefiNs * ticksPerNs);
    dram.access(0, 64, false, false, later);
    EXPECT_GT(dram.refreshes(), 0u);
}

TEST(DramRefresh, BoundedCatchupAfterLongIdle)
{
    SystemConfig cfg;
    EnergyAccount energy(cfg);
    MeterBackend dram(cfg, energy);
    // A bank idle for a simulated hour must not charge millions of
    // refreshes to the next access.
    dram.access(0, 64, false, false, 0);
    auto before = dram.refreshes();
    dram.access(0, 64, false, false, 3'600'000'000'000'000ull);
    EXPECT_LE(dram.refreshes() - before, 4u);
}

TEST(DramRefresh, CanBeDisabled)
{
    SystemConfig cfg;
    cfg.dram.refreshEnabled = false;
    EnergyAccount energy(cfg);
    MeterBackend dram(cfg, energy);
    dram.access(0, 64, false, false, 0);
    dram.access(0, 64, false, false, 1'000'000'000'000ull);
    EXPECT_EQ(dram.refreshes(), 0u);
}

TEST(DramRefresh, ClosesTheRowBuffer)
{
    SystemConfig cfg;
    EnergyAccount energy(cfg);
    MeterBackend dram(cfg, energy);
    dram.access(0, 64, false, false, 0);
    // Same row much later: the refresh in between forces a row miss.
    Tick later = static_cast<Tick>(10 * cfg.dram.tRefiNs * ticksPerNs);
    dram.access(64, 64, false, false, later);
    EXPECT_EQ(dram.rowMisses(), 2u);
}

TEST(Tlb, MissesCostTimeComparedToDisabled)
{
    WorkloadSpec spec = WorkloadSpec::tiny("pr");
    SystemConfig with = applyDesign(SystemConfig{}, Design::B);
    SystemConfig without = with;
    without.tlb.enabled = false;
    ExperimentOptions opts;
    opts.verify = false;

    RunMetrics mw = runExperiment(with, Design::B, spec, opts);
    RunMetrics mo = runExperiment(without, Design::B, spec, opts);
    // Page walks add time; results stay correct either way.
    EXPECT_GT(mw.ticks, mo.ticks);
}

TEST(Tlb, ConfigDefaultsMatchSection32)
{
    SystemConfig cfg;
    EXPECT_TRUE(cfg.tlb.enabled);
    EXPECT_EQ(cfg.tlb.entries, 64u);
    EXPECT_EQ(cfg.tlb.pageBytes, 4096u);
}

TEST(PrunedScoring, RunsCorrectlyAndDeterministically)
{
    SystemConfig base;
    base.sched.exhaustiveScoring = false;
    WorkloadSpec spec = WorkloadSpec::tiny("pr");
    ExperimentOptions opts;
    opts.verify = true; // correctness independent of scoring mode

    RunMetrics a = runExperiment(base, Design::O, spec, opts);
    RunMetrics b = runExperiment(base, Design::O, spec, opts);
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_GT(a.forwardedTasks, 0u);
}

TEST(ExplicitLoadHints, VerifiesAndRuns)
{
    WorkloadSpec spec = WorkloadSpec::tiny("pr");
    spec.explicitLoadHints = true;
    ExperimentOptions opts;
    opts.verify = true;
    RunMetrics m = runExperiment(SystemConfig{}, Design::O, spec, opts);
    EXPECT_GT(m.tasks, 0u);
}

TEST(Placement, BlockedPlacementStillVerifies)
{
    SystemConfig cfg = applyDesign(SystemConfig{}, Design::O);
    NdpSystem sys(cfg);
    RmatParams p;
    p.scale = 9;
    PageRankWorkload pr(makeRmatGraph(p), 3, 1e-7, Placement::Blocked);
    sys.run(pr);
    EXPECT_TRUE(pr.verify());
}

} // namespace abndp
