/**
 * @file
 * The README's code snippets must stay true: this test mirrors the
 * quickstart API usage verbatim (smaller inputs).
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "core/ndp_system.hh"
#include "driver/experiment.hh"
#include "workloads/graph_gen.hh"
#include "workloads/pagerank.hh"

namespace abndp
{

TEST(ReadmeApi, HighLevelRunExperiment)
{
    SystemConfig base; // Table-1 defaults: 4x4 stacks, 128 units
    WorkloadSpec spec; // a synthetic power-law graph
    spec.name = "pr";
    spec.scale = 10;

    RunMetrics baseline = runExperiment(base, Design::B, spec);
    RunMetrics abndp = runExperiment(base, Design::O, spec);
    EXPECT_GT(baseline.ticks, 0u);
    EXPECT_GT(abndp.ticks, 0u);
    EXPECT_GT(abndp.campHitRate(), 0.0);
}

TEST(ReadmeApi, LowLevelOwnWorkload)
{
    SystemConfig base;
    NdpSystem sys(applyDesign(base, Design::O));
    PageRankWorkload pr(makeRmatGraph({.scale = 10}), /*maxIters=*/3);
    RunMetrics m = sys.run(pr);
    EXPECT_TRUE(pr.verify());
    EXPECT_GT(m.tasks, 0u);
}

} // namespace abndp
