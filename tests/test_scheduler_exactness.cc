/**
 * @file
 * Exactness of the scheduler's two-level costmem decomposition: for
 * random tasks (below the sampling cap) the chosen unit must equal the
 * brute-force argmin of Eq. 2 over all units, including tie handling.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/camp_mapping.hh"
#include "common/rng.hh"
#include "mem/address_map.hh"
#include "net/topology.hh"
#include "sched/scheduler.hh"

namespace abndp
{

namespace
{

struct Fixture
{
    explicit Fixture(bool withCamps)
    {
        cfg.sched.policy = SchedPolicy::LowestDistance;
        cfg.traveller.style = withCamps ? CacheStyle::TravellerSramTags
                                        : CacheStyle::None;
        topo = std::make_unique<Topology>(cfg);
        amap = std::make_unique<AddressMap>(cfg);
        camps = std::make_unique<CampMapping>(cfg, *topo, *amap);
        sched = std::make_unique<Scheduler>(cfg, *topo, *camps);
    }

    /** Brute-force Eq. 2 with home-only candidates + tie preferences. */
    UnitId
    bruteForce(const Task &task, UnitId creator) const
    {
        std::vector<double> score(topo->numUnits(), 0.0);
        for (UnitId u = 0; u < topo->numUnits(); ++u) {
            double total = 0.0;
            for (Addr a : task.hint.data)
                total += topo->distanceCost(u, amap->homeOf(a));
            score[u] = total / task.hint.data.size();
        }
        UnitId best = 0;
        for (UnitId u = 1; u < topo->numUnits(); ++u)
            if (score[u] < score[best])
                best = u;
        constexpr double eps = 1e-9;
        if (score[creator] <= score[best] + eps)
            return creator;
        if (task.mainHome < topo->numUnits()
            && score[task.mainHome] <= score[best] + eps)
            return task.mainHome;
        return best;
    }

    SystemConfig cfg;
    std::unique_ptr<Topology> topo;
    std::unique_ptr<AddressMap> amap;
    std::unique_ptr<CampMapping> camps;
    std::unique_ptr<Scheduler> sched;
};

} // namespace

TEST(SchedulerExactness, LowestDistanceMatchesBruteForce)
{
    Fixture f(/*withCamps=*/false);
    Rng rng(21);
    for (int trial = 0; trial < 300; ++trial) {
        Task task;
        auto n_addrs = 1 + rng.below(20);
        for (std::uint64_t i = 0; i < n_addrs; ++i) {
            auto unit = static_cast<UnitId>(rng.below(128));
            task.hint.data.push_back(f.amap->unitBase(unit)
                                     + rng.below(1 << 20) * 64);
        }
        task.mainHome = f.amap->homeOf(task.hint.data[0]);
        auto creator = static_cast<UnitId>(rng.below(128));
        EXPECT_EQ(f.sched->choose(task, creator),
                  f.bruteForce(task, creator))
            << "trial " << trial;
    }
}

TEST(SchedulerExactness, SingleAddressAlwaysGoesHome)
{
    Fixture f(false);
    Rng rng(22);
    for (int trial = 0; trial < 100; ++trial) {
        Task task;
        auto unit = static_cast<UnitId>(rng.below(128));
        task.hint.data.push_back(f.amap->unitBase(unit) + 64);
        task.mainHome = unit;
        EXPECT_EQ(f.sched->choose(task, static_cast<UnitId>(
                                      rng.below(128))),
                  unit);
    }
}

TEST(SchedulerExactness, AllAddressesInOneStackStayInThatStack)
{
    Fixture f(false);
    Rng rng(23);
    for (int trial = 0; trial < 100; ++trial) {
        // All homes inside stack of unit base (units 8..15 share stack).
        Task task;
        for (int i = 0; i < 6; ++i) {
            auto unit = static_cast<UnitId>(8 + rng.below(8));
            task.hint.data.push_back(f.amap->unitBase(unit)
                                     + rng.below(1 << 20) * 64);
        }
        task.mainHome = f.amap->homeOf(task.hint.data[0]);
        UnitId dst = f.sched->choose(task, 0);
        EXPECT_TRUE(f.topo->sameStack(dst, 8));
    }
}

} // namespace abndp
