/**
 * @file
 * Unit tests for the NdpUnit component: construction, the barrier-time
 * queue swap, the scheduling/prefetch window reset invariants, and
 * timestamp invalidation of primary data.
 */

#include <gtest/gtest.h>

#include "core/ndp_system.hh"
#include "core/ndp_unit.hh"
#include "workloads/factory.hh"

namespace abndp
{

TEST(NdpUnit, InitBuildsCoresAndCaches)
{
    SystemConfig cfg;
    NdpUnit unit;
    unit.init(cfg, 7);
    EXPECT_EQ(unit.id(), 7u);
    ASSERT_EQ(unit.cores.size(), cfg.coresPerUnit);
    for (const auto &core : unit.cores) {
        EXPECT_FALSE(core.busy);
        EXPECT_NE(core.l1d, nullptr);
        EXPECT_NE(core.l1i, nullptr);
        EXPECT_NE(core.tlb, nullptr);
    }
    ASSERT_NE(unit.pb, nullptr);
    EXPECT_TRUE(unit.anyIdleCore());
    EXPECT_EQ(unit.busyCores(), 0u);
    EXPECT_EQ(unit.tasksRun(), 0u);
}

TEST(NdpUnit, BeginEpochSwapsStagedIntoLive)
{
    SystemConfig cfg;
    NdpUnit unit;
    unit.init(cfg, 0);

    for (int i = 0; i < 3; ++i)
        unit.stagedPending.push_back(Task{});
    for (int i = 0; i < 2; ++i)
        unit.stagedReady.push_back(Task{});

    EXPECT_EQ(unit.beginEpoch(), 5u);
    EXPECT_EQ(unit.pending.size(), 3u);
    EXPECT_EQ(unit.ready.size(), 2u);
    EXPECT_TRUE(unit.stagedPending.empty());
    EXPECT_TRUE(unit.stagedReady.empty());
}

TEST(NdpUnit, BeginEpochResetsWindowState)
{
    SystemConfig cfg;
    NdpUnit unit;
    unit.init(cfg, 0);
    unit.stagedReady.push_back(Task{});
    unit.prefetchedCount = 4;
    unit.stealBackoff = 1234;

    unit.beginEpoch();
    // The prefetch window restarts at the head of the new ready queue;
    // a stale count could exceed the queue and index out of bounds.
    EXPECT_EQ(unit.prefetchedCount, 0u);
    EXPECT_LE(unit.prefetchedCount, unit.ready.size());
    EXPECT_EQ(unit.stealBackoff, 0u);
}

TEST(NdpUnit, ResetTransientClearsInFlightFlags)
{
    SystemConfig cfg;
    NdpUnit unit;
    unit.init(cfg, 0);
    unit.schedBusy = true;
    unit.stealInFlight = true;
    unit.stealBackoff = 99;
    unit.resetTransient();
    EXPECT_FALSE(unit.schedBusy);
    EXPECT_FALSE(unit.stealInFlight);
    EXPECT_EQ(unit.stealBackoff, 0u);
}

TEST(NdpUnit, InvalidatePrimaryDataClearsPbAndL1d)
{
    SystemConfig cfg;
    NdpUnit unit;
    unit.init(cfg, 0);

    constexpr Addr block = 0x1000;
    unit.pb->fill(block, 10);
    unit.cores[0].l1d->insert(block);
    EXPECT_TRUE(unit.pb->peek(block));
    EXPECT_TRUE(unit.cores[0].l1d->contains(block));

    unit.invalidatePrimaryData();
    EXPECT_FALSE(unit.pb->peek(block));
    EXPECT_FALSE(unit.cores[0].l1d->contains(block));
}

TEST(NdpUnit, QueueWindowInvariantHoldsAtBarriers)
{
    // Run a scheduling-window design end to end and check that every
    // unit leaves the run with its Figure-4 queue state fully drained:
    // the epoch loop asserts emptiness at each barrier, so post-run
    // state reflects the last barrier's invariant.
    SystemConfig cfg = applyDesign(SystemConfig{}, Design::O);
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("bfs"));
    RunMetrics m = sys.run(*wl);
    EXPECT_GT(m.tasks, 0u);
    EXPECT_TRUE(wl->verify());
    for (UnitId u = 0; u < sys.numUnits(); ++u) {
        NdpUnit &unit = sys.unit(u);
        EXPECT_TRUE(unit.pending.empty());
        EXPECT_TRUE(unit.ready.empty());
        EXPECT_TRUE(unit.stagedPending.empty());
        EXPECT_TRUE(unit.stagedReady.empty());
        EXPECT_LE(unit.prefetchedCount, unit.ready.size());
        EXPECT_FALSE(unit.schedBusy);
        EXPECT_FALSE(unit.stealInFlight);
        EXPECT_EQ(unit.busyCores(), 0u);
    }
}

} // namespace abndp
