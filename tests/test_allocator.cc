/** @file Tests for the simulated address space and allocator. */

#include <gtest/gtest.h>

#include "mem/allocator.hh"

namespace abndp
{

TEST(AddressMap, HomeOfRangePartition)
{
    SystemConfig cfg;
    AddressMap amap(cfg);
    EXPECT_EQ(amap.homeOf(0), 0u);
    EXPECT_EQ(amap.homeOf(cfg.memBytesPerUnit - 1), 0u);
    EXPECT_EQ(amap.homeOf(cfg.memBytesPerUnit), 1u);
    EXPECT_EQ(amap.homeOf(amap.unitBase(100) + 12345), 100u);
    EXPECT_EQ(amap.offsetInUnit(amap.unitBase(100) + 12345), 12345u);
}

TEST(AddressMapDeath, OutOfRangePanics)
{
    SystemConfig cfg;
    AddressMap amap(cfg);
    EXPECT_DEATH(amap.homeOf(cfg.totalMemBytes()), "outside memory");
}

TEST(Allocator, InterleavedPlacementMatchesBaselineRule)
{
    SystemConfig cfg;
    SimAllocator alloc(cfg);
    auto addrs = alloc.allocateArray(16, 1000, Placement::Interleaved);
    for (std::uint64_t i = 0; i < addrs.size(); ++i)
        EXPECT_EQ(alloc.map().homeOf(addrs[i]), i % cfg.numUnits());
}

TEST(Allocator, InterleavedElementsPackWithinUnit)
{
    SystemConfig cfg;
    SimAllocator alloc(cfg);
    auto addrs = alloc.allocateArray(16, 1000, Placement::Interleaved);
    // Elements i and i + numUnits are adjacent in the same unit.
    EXPECT_EQ(addrs[cfg.numUnits()], addrs[0] + 16);
}

TEST(Allocator, BlockedPlacementSplitsIntoChunks)
{
    SystemConfig cfg;
    SimAllocator alloc(cfg);
    std::uint64_t count = cfg.numUnits() * 10;
    auto addrs = alloc.allocateArray(8, count, Placement::Blocked);
    EXPECT_EQ(alloc.map().homeOf(addrs[0]), 0u);
    EXPECT_EQ(alloc.map().homeOf(addrs[9]), 0u);
    EXPECT_EQ(alloc.map().homeOf(addrs[10]), 1u);
    EXPECT_EQ(alloc.map().homeOf(addrs.back()), cfg.numUnits() - 1);
}

TEST(Allocator, SingleUnitPlacement)
{
    SystemConfig cfg;
    SimAllocator alloc(cfg);
    auto addrs = alloc.allocateArray(8, 100, Placement::SingleUnit, 17);
    for (Addr a : addrs)
        EXPECT_EQ(alloc.map().homeOf(a), 17u);
}

TEST(Allocator, RespectsAlignment)
{
    SystemConfig cfg;
    SimAllocator alloc(cfg);
    alloc.allocate(3, 0);
    Addr a = alloc.allocate(100, 0, cachelineBytes);
    EXPECT_EQ(a % cachelineBytes, 0u);
}

TEST(Allocator, ReservesTravellerCacheRegion)
{
    SystemConfig cfg;
    cfg.memBytesPerUnit = 1ull << 20;
    cfg.traveller.style = CacheStyle::TravellerSramTags;
    cfg.traveller.ratioDenom = 2; // half the unit is cache
    SimAllocator alloc(cfg);
    // Allocating more than half of the unit must fail.
    alloc.allocate(400 * 1024, 0);
    EXPECT_DEATH(alloc.allocate(200 * 1024, 0), "out of simulated memory");
}

TEST(Allocator, TracksUsage)
{
    SystemConfig cfg;
    SimAllocator alloc(cfg);
    EXPECT_EQ(alloc.usedBytes(3), 0u);
    alloc.allocate(100, 3);
    EXPECT_EQ(alloc.usedBytes(3), 100u);
}

} // namespace abndp
