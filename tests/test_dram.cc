/** @file Tests for the DRAM channel timing and energy model. */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "energy/energy.hh"
#include "mem/ddr_backend.hh"
#include "mem/meter_backend.hh"

namespace abndp
{

namespace
{

struct DramFixture
{
    SystemConfig cfg;
    EnergyAccount energy{cfg};
    MeterBackend dram{cfg, energy};
};

} // namespace

TEST(Dram, RowMissThenRowHitLatency)
{
    DramFixture f;
    // Cold access: row miss = tRP + tRCD + tCAS (+ burst).
    Tick first = f.dram.access(0, 64, false, false, 0);
    Tick miss_core = static_cast<Tick>((17 + 17 + 17) * ticksPerNs);
    EXPECT_GE(first, miss_core);

    // Same row, later: row hit = tCAS (+ burst) only.
    Tick second = f.dram.access(64, 64, false, false, first + 100000);
    EXPECT_LT(second, first);
    EXPECT_GE(second, static_cast<Tick>(17 * ticksPerNs));
    EXPECT_EQ(f.dram.rowMisses(), 1u);
}

TEST(Dram, BankConflictQueues)
{
    DramFixture f;
    // Two simultaneous accesses to the same row (same bank): the second
    // queues behind the first.
    Tick a = f.dram.access(0, 64, false, false, 0);
    Tick b = f.dram.access(64, 64, false, false, 0);
    EXPECT_GT(b, a - static_cast<Tick>(34 * ticksPerNs));
    EXPECT_GT(a + b, a); // b includes queueing
    EXPECT_GT(f.dram.queueWaitNs().max(), 0.0);
}

TEST(Dram, DifferentBanksDoNotConflict)
{
    DramFixture f;
    Tick a = f.dram.access(0, 64, false, false, 0);
    // Next row maps to the next bank (row interleaving).
    Tick b = f.dram.access(f.cfg.dram.rowBytes, 64, false, false, 0);
    // Both are cold row misses of equal latency; neither queues.
    EXPECT_EQ(a, b);
}

TEST(Dram, CountsReadsAndWrites)
{
    DramFixture f;
    f.dram.access(0, 64, false, false, 0);
    f.dram.access(4096, 64, true, false, 0);
    f.dram.access(8192, 64, true, true, 0);
    EXPECT_EQ(f.dram.reads(), 1u);
    EXPECT_EQ(f.dram.writes(), 2u);
}

TEST(Dram, EnergySplitsMemoryAndCacheRegions)
{
    DramFixture f;
    f.dram.access(0, 64, false, false, 0);
    double mem_only = f.energy.breakdown().dramMemPj;
    EXPECT_GT(mem_only, 0.0);
    EXPECT_DOUBLE_EQ(f.energy.breakdown().dramCachePj, 0.0);

    f.dram.access(1ull << 20, 64, false, true, 0);
    EXPECT_GT(f.energy.breakdown().dramCachePj, 0.0);
    EXPECT_DOUBLE_EQ(f.energy.breakdown().dramMemPj, mem_only);
}

TEST(Dram, RowMissEnergyIncludesActPre)
{
    DramFixture f;
    // Row miss: 64B * 8 * 5 pJ/bit + 535.8 pJ.
    f.dram.access(0, 64, false, false, 0);
    EXPECT_NEAR(f.energy.breakdown().dramMemPj, 64 * 8 * 5.0 + 535.8,
                1e-9);
}

TEST(Dram, ResetStateClearsBanks)
{
    DramFixture f;
    f.dram.access(0, 64, false, false, 0);
    f.dram.resetState();
    // After reset the row buffer is closed again: row miss.
    f.dram.access(0, 64, false, false, 1000000);
    EXPECT_EQ(f.dram.rowMisses(), 2u);
}

// ---- DdrBackend: bank-state timing ------------------------------------

namespace
{

struct DdrFixture
{
    explicit DdrFixture(PagePolicy policy = PagePolicy::Open,
                        bool refresh = false)
    {
        cfg.dram.backend = MemBackendKind::Ddr;
        cfg.dram.pagePolicy = policy;
        cfg.dram.refreshEnabled = refresh;
        cfg.validate();
        energy = std::make_unique<EnergyAccount>(cfg);
        dram = std::make_unique<DdrBackend>(cfg, *energy);
    }

    SystemConfig cfg;
    std::unique_ptr<EnergyAccount> energy;
    std::unique_ptr<DdrBackend> dram;
};

/** Row-0 address of bank @p b under the default rbc interleave. */
Addr
bankAddr(const SystemConfig &cfg, std::uint32_t b)
{
    return static_cast<Addr>(b) * cfg.dram.rowBytes;
}

} // namespace

TEST(DdrBackend, OpenPageHitsAfterMiss)
{
    DdrFixture f;
    Tick miss = f.dram->access(0, 64, false, false, 0);
    Tick hit = f.dram->access(64, 64, false, false, miss + 100000);
    EXPECT_LT(hit, miss);
    EXPECT_EQ(f.dram->rowMisses(), 1u);
    EXPECT_EQ(f.dram->rowHits(), 1u);
}

TEST(DdrBackend, ClosePageNeverHits)
{
    DdrFixture f(PagePolicy::Close);
    Tick t = 0;
    for (int i = 0; i < 4; ++i)
        t += f.dram->access(0, 64, false, false, t) + 1000000;
    EXPECT_EQ(f.dram->rowMisses(), 4u);
    EXPECT_EQ(f.dram->rowHits(), 0u);
}

TEST(DdrBackend, AdaptiveConvergesToClosedUnderMissStream)
{
    // Alternating rows in one bank: the saturating score drains to 0
    // and the adaptive policy must converge to close-page latencies
    // (no tRP in the critical path because the row is precharged
    // eagerly), while open-page keeps paying the precharge.
    DdrFixture adaptive(PagePolicy::Adaptive);
    DdrFixture close(PagePolicy::Close);
    DdrFixture open(PagePolicy::Open);
    Tick t = 0;
    Tick lastAdaptive = 0;
    Tick lastClose = 0;
    Tick lastOpen = 0;
    for (int i = 0; i < 8; ++i) {
        Addr a = i % 2 == 0 ? 0 : 1ull * close.cfg.dram.rowBytes * 8;
        lastAdaptive = adaptive.dram->access(a, 64, false, false, t);
        lastClose = close.dram->access(a, 64, false, false, t);
        lastOpen = open.dram->access(a, 64, false, false, t);
        t += 10000000; // wide spacing: no queueing or recovery overlap
    }
    EXPECT_EQ(lastAdaptive, lastClose);
    EXPECT_GT(lastOpen, lastAdaptive);
}

TEST(DdrBackend, AdaptiveStaysOpenUnderHitStream)
{
    DdrFixture adaptive(PagePolicy::Adaptive);
    Tick t = 10000000;
    for (int i = 0; i < 6; ++i)
        adaptive.dram->access(64ull * i, 64, false, false,
                              t += 10000000);
    EXPECT_EQ(adaptive.dram->rowMisses(), 1u);
    EXPECT_EQ(adaptive.dram->rowHits(), 5u);
}

TEST(DdrBackend, FourActivateWindowDelaysFifthAct)
{
    DdrFixture f;
    auto tFaw = static_cast<Tick>(f.cfg.dram.tFawNs * ticksPerNs);
    // Five cold row misses to five distinct banks at t = 0: the ACT
    // meter spaces ACTs a quarter window apart, so the fifth lands a
    // full tFAW after the first.
    Tick lat[5];
    for (std::uint32_t b = 0; b < 5; ++b)
        lat[b] = f.dram->access(bankAddr(f.cfg, b), 64, false, false, 0);
    EXPECT_EQ(lat[4] - lat[0], tFaw);
    EXPECT_EQ(f.dram->actStalls(), 4u);
    // Far apart in time, the same five banks stall nobody.
    DdrFixture calm;
    Tick t = 0;
    Tick prev = 0;
    for (std::uint32_t b = 0; b < 5; ++b)
        prev = calm.dram->access(bankAddr(calm.cfg, b), 64, false,
                                 false, t += 10000000);
    EXPECT_EQ(calm.dram->actStalls(), 0u);
    EXPECT_EQ(prev, lat[0]); // cold miss latency, no window stall
}

TEST(DdrBackend, WriteRecoveryDelaysPrecharge)
{
    // A row conflict right after a write pays tWR before the
    // precharge; after a read it only waits out tRAS (already long
    // elapsed here).
    DdrFixture wr;
    DdrFixture rd;
    Addr rowA = 0;
    Addr rowB = 8ull * wr.cfg.dram.rowBytes; // same bank, next row
    Tick w = wr.dram->access(rowA, 64, true, false, 0);
    Tick r = rd.dram->access(rowA, 64, false, false, 0);
    EXPECT_EQ(w, r); // the write itself costs the same
    Tick afterW = wr.dram->access(rowB, 64, false, false, w);
    Tick afterR = rd.dram->access(rowB, 64, false, false, r);
    auto tWr = static_cast<Tick>(wr.cfg.dram.tWrNs * ticksPerNs);
    EXPECT_EQ(afterW - afterR, tWr);
}

TEST(DdrBackend, RefreshClosesRowBuffer)
{
    DdrFixture f(PagePolicy::Open, true);
    auto tRefi = static_cast<Tick>(f.cfg.dram.tRefiNs * ticksPerNs);
    f.dram->access(0, 64, false, false, 0);
    // Well past bank 0's staggered refresh deadline: the refresh must
    // close the row, so the revisit misses again.
    f.dram->access(0, 64, false, false, 2 * tRefi);
    EXPECT_GT(f.dram->refreshes(), 0u);
    EXPECT_EQ(f.dram->rowMisses(), 2u);
}

TEST(DdrBackend, DifferentBanksDoNotConflict)
{
    DdrFixture f;
    Tick a = f.dram->access(bankAddr(f.cfg, 0), 64, false, false, 0);
    // Far enough in time that the ACT window cannot couple them.
    Tick b = f.dram->access(bankAddr(f.cfg, 1), 64, false, false,
                            10000000);
    EXPECT_EQ(a, b);
}

TEST(DdrBackend, ResetStateReplaysIdentically)
{
    DdrFixture f;
    std::vector<Tick> first;
    for (std::uint32_t i = 0; i < 64; ++i)
        first.push_back(f.dram->access((i % 16) * 4096ull, 64,
                                       i % 3 == 0, false, i * 500));
    f.dram->resetState();
    for (std::uint32_t i = 0; i < 64; ++i)
        EXPECT_EQ(f.dram->access((i % 16) * 4096ull, 64, i % 3 == 0,
                                 false, i * 500),
                  first[i])
            << "op " << i;
}

TEST(DdrBackend, FactorySelectsBackendKind)
{
    SystemConfig cfg;
    cfg.validate();
    EnergyAccount energy(cfg);
    auto meter = makeMemBackend(cfg, energy);
    EXPECT_NE(dynamic_cast<MeterBackend *>(meter.get()), nullptr);
    cfg.dram.backend = MemBackendKind::Ddr;
    auto ddr = makeMemBackend(cfg, energy);
    EXPECT_NE(dynamic_cast<DdrBackend *>(ddr.get()), nullptr);
}

} // namespace abndp
