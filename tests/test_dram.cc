/** @file Tests for the DRAM channel timing and energy model. */

#include <gtest/gtest.h>

#include "energy/energy.hh"
#include "mem/dram.hh"

namespace abndp
{

namespace
{

struct DramFixture
{
    SystemConfig cfg;
    EnergyAccount energy{cfg};
    DramChannel dram{cfg, energy};
};

} // namespace

TEST(Dram, RowMissThenRowHitLatency)
{
    DramFixture f;
    // Cold access: row miss = tRP + tRCD + tCAS (+ burst).
    Tick first = f.dram.access(0, 64, false, false, 0);
    Tick miss_core = static_cast<Tick>((17 + 17 + 17) * ticksPerNs);
    EXPECT_GE(first, miss_core);

    // Same row, later: row hit = tCAS (+ burst) only.
    Tick second = f.dram.access(64, 64, false, false, first + 100000);
    EXPECT_LT(second, first);
    EXPECT_GE(second, static_cast<Tick>(17 * ticksPerNs));
    EXPECT_EQ(f.dram.rowMisses(), 1u);
}

TEST(Dram, BankConflictQueues)
{
    DramFixture f;
    // Two simultaneous accesses to the same row (same bank): the second
    // queues behind the first.
    Tick a = f.dram.access(0, 64, false, false, 0);
    Tick b = f.dram.access(64, 64, false, false, 0);
    EXPECT_GT(b, a - static_cast<Tick>(34 * ticksPerNs));
    EXPECT_GT(a + b, a); // b includes queueing
    EXPECT_GT(f.dram.queueWaitNs().max(), 0.0);
}

TEST(Dram, DifferentBanksDoNotConflict)
{
    DramFixture f;
    Tick a = f.dram.access(0, 64, false, false, 0);
    // Next row maps to the next bank (row interleaving).
    Tick b = f.dram.access(f.cfg.dram.rowBytes, 64, false, false, 0);
    // Both are cold row misses of equal latency; neither queues.
    EXPECT_EQ(a, b);
}

TEST(Dram, CountsReadsAndWrites)
{
    DramFixture f;
    f.dram.access(0, 64, false, false, 0);
    f.dram.access(4096, 64, true, false, 0);
    f.dram.access(8192, 64, true, true, 0);
    EXPECT_EQ(f.dram.reads(), 1u);
    EXPECT_EQ(f.dram.writes(), 2u);
}

TEST(Dram, EnergySplitsMemoryAndCacheRegions)
{
    DramFixture f;
    f.dram.access(0, 64, false, false, 0);
    double mem_only = f.energy.breakdown().dramMemPj;
    EXPECT_GT(mem_only, 0.0);
    EXPECT_DOUBLE_EQ(f.energy.breakdown().dramCachePj, 0.0);

    f.dram.access(1ull << 20, 64, false, true, 0);
    EXPECT_GT(f.energy.breakdown().dramCachePj, 0.0);
    EXPECT_DOUBLE_EQ(f.energy.breakdown().dramMemPj, mem_only);
}

TEST(Dram, RowMissEnergyIncludesActPre)
{
    DramFixture f;
    // Row miss: 64B * 8 * 5 pJ/bit + 535.8 pJ.
    f.dram.access(0, 64, false, false, 0);
    EXPECT_NEAR(f.energy.breakdown().dramMemPj, 64 * 8 * 5.0 + 535.8,
                1e-9);
}

TEST(Dram, ResetStateClearsBanks)
{
    DramFixture f;
    f.dram.access(0, 64, false, false, 0);
    f.dram.resetState();
    // After reset the row buffer is closed again: row miss.
    f.dram.access(0, 64, false, false, 1000000);
    EXPECT_EQ(f.dram.rowMisses(), 2u);
}

} // namespace abndp
