/**
 * @file
 * Death-test coverage of the simulator's fatal()/panic() paths: every
 * SystemConfig::validate() rejection reachable by a test, plus the
 * watchdog/deadlock diagnostic dump. The event queue's own death
 * paths (schedule-into-the-past panic; its capacity limit is a
 * compile-time callbackFits rejection) live in test_event_queue.cc,
 * and the straggler/link/ECC fault rejections in FaultConfigValidate
 * (test_fault_injection.cc); this file adds the remaining
 * window/latency/count gaps without repeating those.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "core/ndp_system.hh"
#include "driver/experiment.hh"
#include "workloads/factory.hh"

namespace abndp
{

namespace
{

/** Valid baseline without the Traveller Cache. */
SystemConfig
plainConfig()
{
    return applyDesign(SystemConfig{}, Design::B);
}

/** Valid baseline with the Traveller Cache on (O = full ABNDP). */
SystemConfig
travellerConfig()
{
    return applyDesign(SystemConfig{}, Design::O);
}

} // namespace

// ---- validate(): mesh / units / memory -------------------------------

TEST(ConfigValidateDeath, RejectsZeroMesh)
{
    auto cfg = plainConfig();
    cfg.meshX = 0;
    EXPECT_DEATH(cfg.validate(), "mesh dimensions must be nonzero");
    auto cfg2 = plainConfig();
    cfg2.meshY = 0;
    EXPECT_DEATH(cfg2.validate(), "mesh dimensions must be nonzero");
}

TEST(ConfigValidateDeath, RejectsZeroUnitsOrCores)
{
    auto cfg = plainConfig();
    cfg.unitsPerStack = 0;
    EXPECT_DEATH(cfg.validate(), "unitsPerStack and coresPerUnit");
    auto cfg2 = plainConfig();
    cfg2.coresPerUnit = 0;
    EXPECT_DEATH(cfg2.validate(), "unitsPerStack and coresPerUnit");
}

TEST(ConfigValidateDeath, RejectsNonPow2Memory)
{
    auto cfg = plainConfig();
    cfg.memBytesPerUnit = 3ull << 20;
    EXPECT_DEATH(cfg.validate(),
                 "memBytesPerUnit must be a power of two");
}

// ---- validate(): L1 cache geometry -----------------------------------

TEST(ConfigValidateDeath, RejectsBadL1Geometry)
{
    auto cfg = plainConfig();
    cfg.l1d.sizeBytes = 3000;
    EXPECT_DEATH(cfg.validate(), "L1-D size");
    auto cfg2 = plainConfig();
    cfg2.l1d.lineBytes = 48;
    EXPECT_DEATH(cfg2.validate(), "L1-D line size");
    auto cfg3 = plainConfig();
    cfg3.l1d.assoc = 0;
    EXPECT_DEATH(cfg3.validate(), "L1-D associativity must be nonzero");
    auto cfg4 = plainConfig();
    cfg4.l1d.sizeBytes = 64; // 64B / 64B lines / 2-way = zero sets
    cfg4.l1d.lineBytes = 64;
    cfg4.l1d.assoc = 2;
    EXPECT_DEATH(cfg4.validate(), "L1-D geometry degenerate");
    auto cfg5 = plainConfig();
    cfg5.l1i.sizeBytes = 3000; // the instruction cache is checked too
    EXPECT_DEATH(cfg5.validate(), "L1-I size");
}

// ---- validate(): Traveller Cache -------------------------------------

TEST(ConfigValidateDeath, RejectsBadTravellerGeometry)
{
    auto cfg = travellerConfig();
    cfg.traveller.ratioDenom = 3;
    EXPECT_DEATH(cfg.validate(),
                 "traveller ratio denominator must be a power of two");
    auto cfg2 = travellerConfig();
    cfg2.traveller.assoc = 0;
    EXPECT_DEATH(cfg2.validate(),
                 "traveller cache geometry degenerate");
}

TEST(ConfigValidateDeath, RejectsBadCampGrouping)
{
    auto cfg = travellerConfig();
    cfg.traveller.campCount = 0;
    EXPECT_DEATH(cfg.validate(), "campCount must be >= 1");
    auto cfg2 = travellerConfig();
    cfg2.traveller.campCount = 2; // 3 groups cannot tile 128 units
    EXPECT_DEATH(cfg2.validate(), "must be divisible by the");
}

TEST(ConfigValidateDeath, RejectsBadTravellerTimings)
{
    auto cfg = travellerConfig();
    cfg.traveller.bypassProb = 1.5;
    EXPECT_DEATH(cfg.validate(), "bypassProb must be within");
    auto cfg2 = travellerConfig();
    cfg2.traveller.tagCheckNs = -0.5;
    EXPECT_DEATH(cfg2.validate(), "tagCheckNs and sramDataNs");
}

// ---- validate(): latency scalars and scheduler knobs -----------------

TEST(ConfigValidateDeath, RejectsNegativeLatencies)
{
    auto cfg = plainConfig();
    cfg.pbHitNs = -1.0;
    EXPECT_DEATH(cfg.validate(), "pbHitNs must be non-negative");
    auto cfg2 = plainConfig();
    cfg2.l1iMissNs = -1.0;
    EXPECT_DEATH(cfg2.validate(), "l1iMissNs must be non-negative");
}

TEST(ConfigValidateDeath, RejectsBadSchedulerKnobs)
{
    auto cfg = plainConfig();
    cfg.sched.prefetchWindow = 0;
    EXPECT_DEATH(cfg.validate(), "prefetchWindow must be nonzero");
    auto cfg2 = plainConfig();
    cfg2.sched.schedulingWindow = 0;
    EXPECT_DEATH(cfg2.validate(), "schedulingWindow must be nonzero");
    auto cfg3 = plainConfig();
    cfg3.sched.workStealing = true;
    cfg3.sched.stealBatch = 0;
    EXPECT_DEATH(cfg3.validate(), "stealBatch must be nonzero");
    auto cfg4 = plainConfig();
    cfg4.sched.exchangeIntervalCycles = 0;
    EXPECT_DEATH(cfg4.validate(),
                 "exchangeIntervalCycles must be nonzero");
    auto cfg5 = plainConfig();
    cfg5.sched.missPipelineDepth = 0;
    EXPECT_DEATH(cfg5.validate(), "missPipelineDepth must be within");
    auto cfg6 = plainConfig();
    cfg6.sched.missPipelineDepth = 65;
    EXPECT_DEATH(cfg6.validate(), "missPipelineDepth must be within");
}

TEST(ConfigValidateDeath, RejectsNonPositiveFrequency)
{
    auto cfg = plainConfig();
    cfg.coreFreqGHz = 0.0;
    EXPECT_DEATH(cfg.validate(), "coreFreqGHz must be positive");
}

// ---- validate(): TLB --------------------------------------------------

TEST(ConfigValidateDeath, RejectsBadTlbGeometry)
{
    auto cfg = plainConfig();
    cfg.tlb.enabled = true;
    cfg.tlb.pageBytes = 3000;
    EXPECT_DEATH(cfg.validate(), "TLB page size");
    auto cfg2 = plainConfig();
    cfg2.tlb.enabled = true;
    cfg2.tlb.entries = 5; // not a multiple of the 4-way associativity
    EXPECT_DEATH(cfg2.validate(), "TLB entries");
}

// ---- validate(): tracing and remaining fault-config gaps -------------

TEST(ConfigValidateDeath, RejectsTracingWithoutBuffer)
{
    auto cfg = plainConfig();
    cfg.traceOut = "trace.json";
    cfg.traceBufferEvents = 0;
    EXPECT_DEATH(cfg.validate(), "traceBufferEvents must be nonzero");
}

TEST(ConfigValidateDeath, RejectsRemainingFaultGaps)
{
    auto cfg = plainConfig();
    cfg.fault.straggler.units = {0};
    cfg.fault.straggler.windowStartNs = -1.0;
    EXPECT_DEATH(cfg.validate(),
                 "straggler window bounds must be non-negative");
    auto cfg2 = plainConfig();
    cfg2.fault.link.extraLatencyNs = -1.0;
    EXPECT_DEATH(cfg2.validate(),
                 "extraLatencyNs and retryBackoffNs");
    auto cfg3 = plainConfig();
    cfg3.fault.link.count = cfg3.numStacks() * 4 + 1;
    EXPECT_DEATH(cfg3.validate(), "exceeds the directed");
}

// ---- validate(): unit failures ----------------------------------------

TEST(ConfigValidateDeath, RejectsOutOfRangeFailedUnit)
{
    auto cfg = plainConfig();
    cfg.fault.unitFailure.units = {cfg.numUnits()};
    EXPECT_DEATH(cfg.validate(), "failed unit id .* is out of range");
}

TEST(ConfigValidateDeath, RejectsKillingEveryUnit)
{
    auto cfg = plainConfig();
    cfg.fault.unitFailure.count = cfg.numUnits();
    EXPECT_DEATH(cfg.validate(),
                 "unit failures must leave at least one live unit");
    // Duplicated explicit ids must not evade the live-unit floor.
    auto cfg2 = plainConfig();
    for (UnitId u = 0; u < cfg2.numUnits(); ++u) {
        cfg2.fault.unitFailure.units.push_back(u);
        cfg2.fault.unitFailure.units.push_back(u);
    }
    EXPECT_DEATH(cfg2.validate(),
                 "unit failures must leave at least one live unit");
}

TEST(ConfigValidateDeath, RejectsNegativeFailureTimes)
{
    auto cfg = plainConfig();
    cfg.fault.unitFailure.count = 1;
    cfg.fault.unitFailure.failAtNs = -1.0;
    EXPECT_DEATH(cfg.validate(),
                 "failAtNs and recoverAtNs must be non-negative");
}

TEST(ConfigValidateDeath, RejectsRecoveryBeforeFailure)
{
    auto cfg = plainConfig();
    cfg.fault.unitFailure.count = 1;
    cfg.fault.unitFailure.failAtNs = 500.0;
    cfg.fault.unitFailure.recoverAtNs = 500.0;
    EXPECT_DEATH(cfg.validate(), "must exceed failAtNs");
}

TEST(ConfigValidateDeath, RejectsNonPositiveAckTimeout)
{
    auto cfg = plainConfig();
    cfg.fault.unitFailure.count = 1;
    cfg.fault.unitFailure.ackTimeoutNs = 0.0;
    EXPECT_DEATH(cfg.validate(), "ackTimeoutNs must be positive");
}

TEST(ConfigValidateDeath, RejectsNegativeRedispatchBackoff)
{
    auto cfg = plainConfig();
    cfg.fault.unitFailure.count = 1;
    cfg.fault.unitFailure.redispatchBackoffNs = -1.0;
    EXPECT_DEATH(cfg.validate(),
                 "redispatchBackoffNs must be\\s+non-negative");
}

TEST(ConfigValidateDeath, RejectsZeroMaxRedispatch)
{
    auto cfg = plainConfig();
    cfg.fault.unitFailure.count = 1;
    cfg.fault.unitFailure.maxRedispatch = 0;
    EXPECT_DEATH(cfg.validate(), "maxRedispatch must be nonzero");
}

// ---- validate(): online serving ---------------------------------------

namespace
{

/** Valid baseline with a serving stream enabled. */
SystemConfig
servingConfig()
{
    auto cfg = plainConfig();
    cfg.serving.requests = 100;
    return cfg;
}

} // namespace

TEST(ConfigValidateDeath, RejectsNonPositiveServingRate)
{
    auto cfg = servingConfig();
    cfg.serving.ratePerUs = 0.0;
    EXPECT_DEATH(cfg.validate(), "ratePerUs must be positive");
}

TEST(ConfigValidateDeath, RejectsSubUnityBurstFactor)
{
    auto cfg = servingConfig();
    cfg.serving.burstFactor = 0.5;
    EXPECT_DEATH(cfg.validate(), "burstFactor must be >= 1");
}

TEST(ConfigValidateDeath, RejectsOutOfRangeBurstFraction)
{
    auto cfg = servingConfig();
    cfg.serving.burstFraction = 1.0;
    EXPECT_DEATH(cfg.validate(), "burstFraction must be within");
    auto cfg2 = servingConfig();
    cfg2.serving.burstFraction = -0.1;
    EXPECT_DEATH(cfg2.validate(), "burstFraction must be within");
}

TEST(ConfigValidateDeath, RejectsMeanDestroyingBurst)
{
    // factor x fraction >= 1 leaves no positive off-phase rate that
    // preserves the configured mean.
    auto cfg = servingConfig();
    cfg.serving.profile = RateProfile::Bursty;
    cfg.serving.burstFactor = 4.0;
    cfg.serving.burstFraction = 0.25;
    EXPECT_DEATH(cfg.validate(), "must stay below 1");
}

TEST(ConfigValidateDeath, RejectsNonPositiveServingPeriods)
{
    auto cfg = servingConfig();
    cfg.serving.burstPeriodUs = 0.0;
    EXPECT_DEATH(cfg.validate(), "burstPeriodUs must be positive");
    auto cfg2 = servingConfig();
    cfg2.serving.diurnalPeriodUs = -1.0;
    EXPECT_DEATH(cfg2.validate(), "diurnalPeriodUs must be positive");
}

TEST(ConfigValidateDeath, RejectsOutOfRangeDiurnalDepth)
{
    auto cfg = servingConfig();
    cfg.serving.diurnalDepth = 1.0;
    EXPECT_DEATH(cfg.validate(), "diurnalDepth must be within");
}

TEST(ConfigValidateDeath, RejectsNegativeZipfExponent)
{
    auto cfg = servingConfig();
    cfg.serving.zipfS = -0.1;
    EXPECT_DEATH(cfg.validate(), "zipfS must be non-negative");
}

TEST(ConfigValidateDeath, RejectsBadTenantCounts)
{
    auto cfg = servingConfig();
    cfg.serving.tenants = 0;
    EXPECT_DEATH(cfg.validate(), "tenants must be nonzero");
    auto cfg2 = servingConfig();
    cfg2.serving.tenants = 65;
    EXPECT_DEATH(cfg2.validate(), "tenants must be at most 64");
}

TEST(ConfigValidateDeath, RejectsBadTenantWeights)
{
    auto cfg = servingConfig();
    cfg.serving.tenants = 2;
    cfg.serving.tenantWeights = {1.0, 2.0, 3.0};
    EXPECT_DEATH(cfg.validate(), "tenantWeights has 3 entries");
    auto cfg2 = servingConfig();
    cfg2.serving.tenants = 2;
    cfg2.serving.tenantWeights = {1.0, 0.0};
    EXPECT_DEATH(cfg2.validate(), "tenant weights must be positive");
}

TEST(ConfigValidateDeath, RejectsNonPositiveSlo)
{
    auto cfg = servingConfig();
    cfg.serving.sloNs = 0.0;
    EXPECT_DEATH(cfg.validate(), "sloNs must be positive");
}

// ---- serving driver fatal paths ---------------------------------------

TEST(ServingDeath, HostDesignCannotServe)
{
    auto cfg = servingConfig();
    EXPECT_DEATH(runExperiment(cfg, Design::H,
                               WorkloadSpec::tiny("kv"), {}),
                 "design H cannot run serving mode");
}

TEST(ServingDeath, NonQueryServiceWorkloadCannotServe)
{
    auto cfg = servingConfig();
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("pr"));
    EXPECT_DEATH(sys.run(*wl), "cannot be served");
}

TEST(ServingDeath, UnsustainableRateTripsWatchdog)
{
    // Overdriving a tiny machine with an unbounded admission window:
    // the watchdog converts the silent queue explosion into a fatal
    // diagnostic pointing at the arrival rate.
    auto cfg = servingConfig();
    cfg.serving.requests = 200000;
    cfg.serving.ratePerUs = 10000.0;
    cfg.serving.maxOutstanding = 0;
    cfg.fault.watchdog.maxEpochEvents = 200000;
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("kv"));
    EXPECT_DEATH(sys.run(*wl), "arrival rate");
}

// ---- validate(): memory backend (src/mem) -----------------------------

namespace
{

/** Valid baseline on the bank-state DDR backend. */
SystemConfig
ddrConfig()
{
    auto cfg = plainConfig();
    cfg.dram.backend = MemBackendKind::Ddr;
    return cfg;
}

} // namespace

TEST(ConfigValidateDeath, RejectsZeroDramGeometry)
{
    auto cfg = plainConfig();
    cfg.dram.banks = 0;
    EXPECT_DEATH(cfg.validate(), "dram banks must be nonzero");
    auto cfg2 = plainConfig();
    cfg2.dram.rowBytes = 0;
    EXPECT_DEATH(cfg2.validate(), "dram rowBytes must be nonzero");
    auto cfg3 = plainConfig();
    cfg3.dram.busBits = 0;
    EXPECT_DEATH(cfg3.validate(), "dram busBits must be nonzero");
}

TEST(ConfigValidateDeath, RejectsNonPositiveDramBus)
{
    auto cfg = plainConfig();
    cfg.dram.busGHz = 0.0;
    EXPECT_DEATH(cfg.validate(), "dram busGHz must be positive");
}

TEST(ConfigValidateDeath, RejectsNegativeDramCoreTimings)
{
    auto cfg = plainConfig();
    cfg.dram.tRcdNs = -1.0;
    EXPECT_DEATH(cfg.validate(),
                 "dram tCAS/tRCD/tRP must be non-negative");
}

TEST(ConfigValidateDeath, RejectsBadRefreshParameters)
{
    auto cfg = plainConfig();
    cfg.dram.tRefiNs = 0.0;
    EXPECT_DEATH(cfg.validate(), "dram tREFI must be positive");
    auto cfg2 = plainConfig();
    cfg2.dram.tRfcNs = -1.0;
    EXPECT_DEATH(cfg2.validate(), "dram tRFC must be non-negative");
    auto cfg3 = plainConfig();
    cfg3.dram.refreshCatchupMax = 0;
    EXPECT_DEATH(cfg3.validate(),
                 "dram refreshCatchupMax must be nonzero");
    // With refresh off the same knobs are dormant and tolerated.
    auto cfg4 = plainConfig();
    cfg4.dram.refreshEnabled = false;
    cfg4.dram.tRefiNs = 0.0;
    cfg4.dram.refreshCatchupMax = 0;
    cfg4.validate();
}

TEST(ConfigValidateDeath, RejectsBadDdrBurstBytes)
{
    auto cfg = ddrConfig();
    cfg.dram.burstBytes = 48; // not a power of two
    EXPECT_DEATH(cfg.validate(),
                 "dram burstBytes must be a nonzero power of two");
    auto cfg2 = ddrConfig();
    cfg2.dram.rowBytes = 2048 + 32;
    cfg2.dram.burstBytes = 64;
    EXPECT_DEATH(cfg2.validate(), "multiple of burstBytes");
}

TEST(ConfigValidateDeath, RejectsBadBankGroups)
{
    auto cfg = ddrConfig();
    cfg.dram.banks = 8;
    cfg.dram.bankGroups = 3; // does not divide the bank count
    EXPECT_DEATH(cfg.validate(), "multiple of bankGroups");
    auto cfg2 = ddrConfig();
    cfg2.dram.bankGroups = 0;
    EXPECT_DEATH(cfg2.validate(), "multiple of bankGroups");
}

TEST(ConfigValidateDeath, RejectsRasShorterThanRcd)
{
    auto cfg = ddrConfig();
    cfg.dram.tRasNs = cfg.dram.tRcdNs - 1.0;
    EXPECT_DEATH(cfg.validate(), "must cover at least");
}

TEST(ConfigValidateDeath, RejectsNegativeWrOrFaw)
{
    auto cfg = ddrConfig();
    cfg.dram.tWrNs = -1.0;
    EXPECT_DEATH(cfg.validate(),
                 "dram tWR and tFAW must be non-negative");
    auto cfg2 = ddrConfig();
    cfg2.dram.tFawNs = -1.0;
    EXPECT_DEATH(cfg2.validate(),
                 "dram tWR and tFAW must be non-negative");
}

TEST(ConfigValidateDeath, RejectsUnevenBrcSlices)
{
    auto cfg = ddrConfig();
    cfg.dram.addrMap = DramAddrMapKind::BankRowColumn;
    cfg.dram.banks = 24; // memBytesPerUnit is pow2: cannot divide
    cfg.dram.bankGroups = 4;
    EXPECT_DEATH(cfg.validate(), "slices each unit's region evenly");
    // The meter backend ignores the map and accepts the same count.
    auto cfg2 = plainConfig();
    cfg2.dram.banks = 24;
    cfg2.validate();
}

TEST(ConfigValidateDeath, RejectsUnknownBackendNames)
{
    EXPECT_DEATH(memBackendFromName("hbm3"), "unknown memory backend");
    EXPECT_DEATH(pagePolicyFromName("lazy"), "unknown page policy");
    EXPECT_DEATH(dramAddrMapFromName("rbx"), "unknown dram address map");
}

// ---- validate(): hierarchical load balancing (src/sched/lb) -----------

namespace
{

/** Valid baseline with the balancer and migration on (HLB-mig). */
SystemConfig
hlbConfig()
{
    return applyDesign(SystemConfig{}, Design::HlbM);
}

} // namespace

TEST(ConfigValidateDeath, RejectsLbWithNoTiers)
{
    auto cfg = hlbConfig();
    cfg.lb.intraTier = LbTierKind::None;
    cfg.lb.interTier = LbTierKind::None;
    EXPECT_DEATH(cfg.validate(), "both tiers set to none");
}

TEST(ConfigValidateDeath, RejectsZeroHotK)
{
    auto cfg = hlbConfig();
    cfg.lb.hotK = 0;
    EXPECT_DEATH(cfg.validate(), "lb hotK must be nonzero");
}

TEST(ConfigValidateDeath, RejectsOversizedDecayShift)
{
    auto cfg = hlbConfig();
    cfg.lb.decayShift = 64;
    EXPECT_DEATH(cfg.validate(), "lb decayShift must be at most 63");
}

TEST(ConfigValidateDeath, RejectsZeroChunkWithStealingTier)
{
    auto cfg = hlbConfig();
    cfg.lb.intraTier = LbTierKind::Stealing;
    cfg.lb.chunkSize = 0;
    EXPECT_DEATH(cfg.validate(),
                 "chunkSize must be nonzero when a stealing tier");
    // With no stealing tier the knob is dormant and tolerated.
    auto cfg2 = hlbConfig();
    cfg2.lb.intraTier = LbTierKind::Average;
    cfg2.lb.interTier = LbTierKind::Reserve;
    cfg2.lb.chunkSize = 0;
    cfg2.validate();
}

TEST(ConfigValidateDeath, RejectsOutOfRangeReserveFrac)
{
    auto cfg = hlbConfig();
    cfg.lb.interTier = LbTierKind::Reserve;
    cfg.lb.reserveFrac = 1.5;
    EXPECT_DEATH(cfg.validate(), "reserveFrac must be within");
    // Without a reserve tier the knob is dormant and tolerated.
    auto cfg2 = hlbConfig();
    cfg2.lb.reserveFrac = -1.0;
    cfg2.validate();
}

TEST(ConfigValidateDeath, RejectsMigrationWithoutBalancer)
{
    auto cfg = plainConfig();
    cfg.lb.migration.enabled = true;
    EXPECT_DEATH(cfg.validate(),
                 "migration requires the load balancer");
}

TEST(ConfigValidateDeath, RejectsZeroMigrationThreshold)
{
    auto cfg = hlbConfig();
    cfg.lb.migration.threshold = 0;
    EXPECT_DEATH(cfg.validate(),
                 "lb migration threshold must be nonzero");
}

TEST(ConfigValidateDeath, RejectsZeroMigrationCap)
{
    auto cfg = hlbConfig();
    cfg.lb.migration.maxPerExchange = 0;
    EXPECT_DEATH(cfg.validate(),
                 "lb migration maxPerExchange must be nonzero");
}

TEST(ConfigValidateDeath, RejectsUnknownLbTierNames)
{
    EXPECT_DEATH(lbTierFromName("bogus"), "unknown lb tier");
}

// ---- design helpers ---------------------------------------------------

TEST(ConfigValidateDeath, UnknownDesignPanics)
{
    EXPECT_DEATH(designName(static_cast<Design>(99)), "unknown design");
}

// ---- watchdog / deadlock diagnostic dump -----------------------------

TEST(WatchdogDeath, BudgetOverrunDumpsDiagnostics)
{
    auto cfg = plainConfig();
    cfg.fault.watchdog.maxEpochEvents = 3; // far below one real epoch
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("pr"));
    EXPECT_DEATH(sys.run(*wl), "exceeded its budget");
}

TEST(WatchdogDeath, DumpListsPerUnitQueueDepths)
{
    auto cfg = plainConfig();
    cfg.fault.watchdog.maxEpochTicks = 10;
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("pr"));
    EXPECT_DEATH(sys.run(*wl), "per-unit queue depths");
}

} // namespace abndp
