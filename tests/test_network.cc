/** @file Tests for the two-level interconnect model. */

#include <gtest/gtest.h>

#include "energy/energy.hh"
#include "net/network.hh"

namespace abndp
{

namespace
{

struct NetFixture
{
    SystemConfig cfg;
    Topology topo{cfg};
    EnergyAccount energy{cfg};
    Network net{cfg, topo, energy};
};

} // namespace

TEST(Network, SameUnitIsFree)
{
    NetFixture f;
    auto r = f.net.transfer(5, 5, 80, 1000);
    EXPECT_EQ(r.latency, 0u);
    EXPECT_EQ(r.interHops, 0u);
    EXPECT_EQ(f.net.totalPackets(), 0u);
}

TEST(Network, IntraStackUsesCrossbarOnly)
{
    NetFixture f;
    auto r = f.net.transfer(0, 1, 80, 0);
    EXPECT_EQ(r.interHops, 0u);
    // 1.5 ns traversal + 80B serialization at 16 GB/s (5 ns).
    EXPECT_GE(r.latency, static_cast<Tick>(1.5 * ticksPerNs));
    EXPECT_EQ(f.net.totalIntraTraversals(), 1u);
    EXPECT_EQ(f.net.totalInterHops(), 0u);
}

TEST(Network, InterStackHopsMatchManhattanDistance)
{
    NetFixture f;
    // Units 0 and 127 sit in opposite corner quadrants of the 4x4 mesh.
    auto r = f.net.transfer(0, 127, 80, 0);
    EXPECT_EQ(r.interHops, f.topo.interHops(0, 127));
    EXPECT_GE(r.interHops, 1u);
    // Latency at least hops * 10 ns.
    EXPECT_GE(r.latency,
              static_cast<Tick>(r.interHops * 10.0 * ticksPerNs));
    EXPECT_EQ(f.net.totalInterHops(), r.interHops);
}

TEST(Network, HopCountAccumulates)
{
    NetFixture f;
    std::uint64_t total = 0;
    for (UnitId dst = 8; dst < 128; dst += 16)
        total += f.net.transfer(0, dst, 80, 0).interHops;
    EXPECT_EQ(f.net.totalInterHops(), total);
}

TEST(Network, ContentionDelaysLaterPackets)
{
    NetFixture f;
    // Hammer the same destination port at the same tick.
    Tick first = f.net.transfer(0, 1, 8192, 0).latency;
    Tick worst = first;
    for (int i = 0; i < 50; ++i)
        worst = std::max(worst, f.net.transfer(2, 1, 8192, 0).latency);
    EXPECT_GT(worst, first);
}

TEST(Network, EnergyScalesWithBytesAndHops)
{
    NetFixture f;
    auto r = f.net.transfer(0, 127, 80, 0);
    double expected_inter = 80 * 8 * 4.0 * r.interHops;
    // Plus two crossbar traversals at 0.4 pJ/bit.
    double expected_intra = 2 * 80 * 8 * 0.4;
    EXPECT_NEAR(f.energy.breakdown().netPj,
                expected_inter + expected_intra, 1e-6);
}

TEST(Network, ResetStateClearsContention)
{
    NetFixture f;
    for (int i = 0; i < 50; ++i)
        f.net.transfer(0, 1, 8192, 0);
    f.net.resetState();
    Tick fresh = f.net.transfer(2, 1, 8192, 0).latency;
    // After reset, a transfer at t=0 sees an uncontended port again.
    NetFixture g;
    EXPECT_EQ(fresh, g.net.transfer(2, 1, 8192, 0).latency);
}

} // namespace abndp
