/**
 * @file
 * Cross-configuration property sweeps: determinism and correctness must
 * hold for every design, workload, camp count, and mesh size — not just
 * the Table-1 defaults.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "driver/experiment.hh"
#include "workloads/factory.hh"

namespace abndp
{

/** Determinism across the full design x workload grid (tiny inputs). */
class DeterminismMatrix
    : public ::testing::TestWithParam<std::tuple<Design, std::string>>
{
};

TEST_P(DeterminismMatrix, SameConfigSameMetrics)
{
    auto [design, wlname] = GetParam();
    WorkloadSpec spec = WorkloadSpec::tiny(wlname);
    ExperimentOptions opts;
    opts.verify = false;
    SystemConfig base;
    RunMetrics a = runExperiment(base, design, spec, opts);
    RunMetrics b = runExperiment(base, design, spec, opts);
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.interHops, b.interHops);
    EXPECT_EQ(a.tasks, b.tasks);
    EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DeterminismMatrix,
    ::testing::Combine(::testing::Values(Design::B, Design::Sl, Design::O),
                       ::testing::ValuesIn(allWorkloadNames())),
    [](const auto &info) {
        return designToken(std::get<0>(info.param)) + "_"
            + std::get<1>(info.param);
    });

/** Camp-count sweep: O must stay correct for every legal C. */
class CampCountSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(CampCountSweep, VerifiesAndUsesTheCache)
{
    SystemConfig base;
    base.traveller.campCount = GetParam();
    WorkloadSpec spec = WorkloadSpec::tiny("pr");
    ExperimentOptions opts;
    opts.verify = true;
    RunMetrics m = runExperiment(base, Design::O, spec, opts);
    EXPECT_GT(m.campHits + m.campMisses, 0u);
}

INSTANTIATE_TEST_SUITE_P(Camps, CampCountSweep,
                         ::testing::Values(1u, 3u, 7u, 15u));

/** Mesh-size sweep: geometry changes must not break anything. */
class MeshSweep
    : public ::testing::TestWithParam<std::pair<std::uint32_t,
                                                std::uint32_t>>
{
};

TEST_P(MeshSweep, VerifiesAcrossGeometries)
{
    auto [mx, my] = GetParam();
    SystemConfig base;
    base.meshX = mx;
    base.meshY = my;
    WorkloadSpec spec = WorkloadSpec::tiny("bfs");
    ExperimentOptions opts;
    opts.verify = true;
    for (Design d : {Design::B, Design::O}) {
        RunMetrics m = runExperiment(base, d, spec, opts);
        EXPECT_GT(m.tasks, 0u) << designName(d) << " " << mx << "x" << my;
        EXPECT_EQ(m.coreActiveTicks.size(),
                  static_cast<std::size_t>(mx) * my * 8 * 2);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Meshes, MeshSweep,
    ::testing::Values(std::make_pair(2u, 2u), std::make_pair(4u, 2u),
                      std::make_pair(2u, 4u), std::make_pair(4u, 4u)));

/** Pruned scoring should place tasks nearly as well as exhaustive. */
TEST(PrunedScoringQuality, HopsWithinFactorOfExhaustive)
{
    WorkloadSpec spec = WorkloadSpec::tiny("pr");
    spec.scale = 11;
    ExperimentOptions opts;
    opts.verify = false;

    SystemConfig exhaustive;
    exhaustive.sched.exhaustiveScoring = true;
    SystemConfig pruned;
    pruned.sched.exhaustiveScoring = false;

    RunMetrics me = runExperiment(exhaustive, Design::O, spec, opts);
    RunMetrics mp = runExperiment(pruned, Design::O, spec, opts);
    EXPECT_LT(mp.interHops, me.interHops * 2);
    EXPECT_LT(mp.ticks, me.ticks * 2);
}

/** Seeds change the input but never break verification. */
class SeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SeedSweep, AllWorkloadsVerify)
{
    for (const auto &name : {std::string("pr"), std::string("knn"),
                             std::string("astar")}) {
        WorkloadSpec spec = WorkloadSpec::tiny(name);
        spec.seed = GetParam();
        ExperimentOptions opts;
        opts.verify = true;
        runExperiment(SystemConfig{}, Design::O, spec, opts);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1ull, 7ull, 12345ull));

} // namespace abndp
