/**
 * @file
 * Determinism properties of the observability layer: same-seed runs
 * export byte-identical traces, the host thread count cannot leak into
 * a trace, and turning tracing on/off leaves every simulated metric and
 * the stats registry dump unchanged (instrumentation is observational
 * only — it must never feed back into timing or Rng streams).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/ndp_system.hh"
#include "driver/cell_runner.hh"
#include "workloads/factory.hh"

namespace abndp
{

namespace
{

SystemConfig
smallConfig(Design d)
{
    SystemConfig cfg;
    cfg.meshX = cfg.meshY = 2;
    cfg.unitsPerStack = 2;
    cfg.coresPerUnit = 2;
    return applyDesign(cfg, d);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

/** Run pr-tiny on @p cfg, returning (metrics, registry dump). */
std::pair<RunMetrics, std::string>
runOnce(const SystemConfig &cfg)
{
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("pr"));
    RunMetrics m = sys.run(*wl);
    EXPECT_TRUE(wl->verify());
    std::ostringstream oss;
    sys.statsRegistry().dump(oss);
    return {std::move(m), oss.str()};
}

} // namespace

TEST(TraceDeterminism, SameSeedRunsExportIdenticalTraces)
{
    for (Design d : {Design::O, Design::Sl}) {
        auto cfg = smallConfig(d);
        std::string pathA = tmpPath("trace_det_a.json");
        std::string pathB = tmpPath("trace_det_b.json");

        cfg.traceOut = pathA;
        runOnce(cfg);
        cfg.traceOut = pathB;
        runOnce(cfg);

        std::string a = readFile(pathA);
        std::string b = readFile(pathB);
        EXPECT_FALSE(a.empty()) << designName(d);
        EXPECT_EQ(a, b) << designName(d);
        std::remove(pathA.c_str());
        std::remove(pathB.c_str());
    }
}

TEST(TraceDeterminism, ThreadCountDoesNotAffectTracesOrMetrics)
{
    // Two cells traced to per-cell files, run once inline and once on a
    // 4-thread pool; both the metrics and the trace bytes must match.
    SystemConfig base;
    auto makeCells = [&](const std::string &tag) {
        std::vector<CellSpec> cells;
        for (Design d : {Design::O, Design::Sl}) {
            CellSpec cell;
            cell.design = d;
            cell.workload = WorkloadSpec::tiny("pr");
            SystemConfig cfg = smallConfig(d);
            cfg.traceOut =
                tmpPath(std::string("trace_thr_") + designName(d) + "_"
                        + tag + ".json");
            cell.config = cfg;
            cells.push_back(cell);
        }
        return cells;
    };

    auto cellsSeq = makeCells("t1");
    auto cellsPar = makeCells("t4");
    auto seq = runCells(base, cellsSeq, 1);
    auto par = runCells(base, cellsPar, 4);

    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        EXPECT_EQ(seq[i].ticks, par[i].ticks);
        EXPECT_EQ(seq[i].tasks, par[i].tasks);
        EXPECT_EQ(seq[i].interHops, par[i].interHops);
        EXPECT_EQ(seq[i].coreActiveTicks, par[i].coreActiveTicks);

        std::string a = readFile(cellsSeq[i].config->traceOut);
        std::string b = readFile(cellsPar[i].config->traceOut);
        EXPECT_FALSE(a.empty());
        EXPECT_EQ(a, b);
        std::remove(cellsSeq[i].config->traceOut.c_str());
        std::remove(cellsPar[i].config->traceOut.c_str());
    }
}

TEST(TraceDeterminism, TracingOnOffLeavesMetricsAndStatsUnchanged)
{
    for (Design d : {Design::B, Design::Sl, Design::O}) {
        auto cfgOff = smallConfig(d);
        auto cfgOn = cfgOff;
        cfgOn.traceOut = tmpPath("trace_onoff.json");

        auto [mOff, statsOff] = runOnce(cfgOff);
        auto [mOn, statsOn] = runOnce(cfgOn);

        EXPECT_EQ(mOff.ticks, mOn.ticks) << designName(d);
        EXPECT_EQ(mOff.tasks, mOn.tasks) << designName(d);
        EXPECT_EQ(mOff.epochs, mOn.epochs) << designName(d);
        EXPECT_EQ(mOff.interHops, mOn.interHops) << designName(d);
        EXPECT_EQ(mOff.forwardedTasks, mOn.forwardedTasks)
            << designName(d);
        EXPECT_EQ(mOff.stolenTasks, mOn.stolenTasks) << designName(d);
        EXPECT_EQ(mOff.campHits, mOn.campHits) << designName(d);
        EXPECT_EQ(mOff.simEvents, mOn.simEvents) << designName(d);
        EXPECT_EQ(mOff.coreActiveTicks, mOn.coreActiveTicks)
            << designName(d);
        EXPECT_EQ(mOff.energy.total(), mOn.energy.total())
            << designName(d);
        // The whole registry dump — several hundred values — must be
        // byte-identical with tracing enabled.
        EXPECT_EQ(statsOff, statsOn) << designName(d);
        std::remove(cfgOn.traceOut.c_str());
    }
}

TEST(TraceDeterminism, StatsIntervalDumpingDoesNotPerturbMetrics)
{
    auto cfgPlain = smallConfig(Design::O);
    auto cfgDump = cfgPlain;
    cfgDump.statsInterval = 1;
    cfgDump.statsOut = tmpPath("interval_onoff.stats");

    auto [mPlain, statsPlain] = runOnce(cfgPlain);
    auto [mDump, statsDump] = runOnce(cfgDump);

    EXPECT_EQ(mPlain.ticks, mDump.ticks);
    EXPECT_EQ(mPlain.tasks, mDump.tasks);
    EXPECT_EQ(mPlain.coreActiveTicks, mDump.coreActiveTicks);
    EXPECT_EQ(statsPlain, statsDump);

    // The interval file itself must exist and contain one header per
    // epoch interval.
    std::string intervals = readFile(cfgDump.statsOut);
    EXPECT_NE(intervals.find("interval epochs [0, 1)"),
              std::string::npos);
    std::remove(cfgDump.statsOut.c_str());
}

} // namespace abndp
