/**
 * @file
 * Functional tests of every workload: run the task graph through the
 * order-preserving ImmediateExecutor and check verify() plus
 * application-level properties.
 */

#include <gtest/gtest.h>

#include "workloads/factory.hh"
#include "workloads/pagerank.hh"
#include "workloads/bfs.hh"
#include "workloads/sssp.hh"
#include "workloads/astar.hh"
#include "workloads/gcn.hh"
#include "workloads/kmeans.hh"
#include "workloads/knn.hh"
#include "workloads/spmv.hh"
#include "workloads/graph_gen.hh"

namespace abndp
{

namespace
{

/** Run a workload functionally (no timing) and return epochs executed. */
std::uint64_t
runFunctional(Workload &wl, std::uint64_t maxEpochs = 0)
{
    SystemConfig cfg;
    SimAllocator alloc(cfg);
    wl.setup(alloc);
    ImmediateExecutor exec(wl);
    wl.emitInitialTasks(exec);
    return exec.runToCompletion(maxEpochs);
}

Graph
smallGraph(bool undirected, std::uint64_t seed = 42)
{
    RmatParams p;
    p.scale = 9;
    p.edgeFactor = 8;
    p.seed = seed;
    p.undirected = undirected;
    return makeRmatGraph(p);
}

} // namespace

/** verify() must pass for every workload at tiny scale. */
class WorkloadFunctional : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadFunctional, VerifiesAgainstReference)
{
    auto wl = makeWorkload(WorkloadSpec::tiny(GetParam()));
    runFunctional(*wl);
    EXPECT_TRUE(wl->verify());
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadFunctional,
                         ::testing::ValuesIn(allWorkloadNames()),
                         [](const auto &info) { return info.param; });

TEST(PageRank, RanksSumToRoughlyOne)
{
    PageRankWorkload pr(smallGraph(false), 10);
    runFunctional(pr);
    double sum = 0.0;
    for (double r : pr.ranks())
        sum += r;
    // Dangling vertices leak rank mass, so the sum is below 1.
    EXPECT_GT(sum, 0.2);
    EXPECT_LT(sum, 1.05);
    EXPECT_TRUE(pr.verify());
}

TEST(PageRank, ConvergesAndStops)
{
    PageRankWorkload pr(smallGraph(false), 0, 1e-4);
    std::uint64_t epochs = runFunctional(pr);
    EXPECT_GT(epochs, 2u);
    EXPECT_LT(epochs, 200u);
    EXPECT_TRUE(pr.verify());
}

TEST(PageRank, EpochCapKeepsVerifyExact)
{
    PageRankWorkload pr(smallGraph(false), 2);
    runFunctional(pr);
    EXPECT_EQ(pr.iterationsRun(), 2u);
    EXPECT_TRUE(pr.verify());
}

TEST(Bfs, SourceDistanceIsZero)
{
    BfsWorkload bfs(smallGraph(true), 0);
    runFunctional(bfs);
    EXPECT_EQ(bfs.distances()[0], 0u);
    EXPECT_TRUE(bfs.verify());
}

TEST(Bfs, CappedRunStillVerifies)
{
    BfsWorkload bfs(smallGraph(true), 0);
    runFunctional(bfs, 2);
    EXPECT_TRUE(bfs.verify());
}

TEST(Sssp, DistancesRespectTriangleInequalityOnEdges)
{
    Graph g = smallGraph(true);
    SsspWorkload sssp(g, 0);
    runFunctional(sssp);
    EXPECT_TRUE(sssp.verify());
    EXPECT_DOUBLE_EQ(sssp.distances()[0], 0.0);
}

TEST(Astar, FindsShortestPathCosts)
{
    Graph g = smallGraph(true);
    AstarWorkload astar(g, 4, 11);
    runFunctional(astar);
    EXPECT_TRUE(astar.verify());
    // The search must terminate with a finite goal cost per query (the
    // endpoints are chosen from one connected component).
    for (std::uint32_t q = 0; q < astar.numQueriesTotal(); ++q)
        EXPECT_LT(astar.goalCost(q), ~0u);
}

TEST(Astar, HeuristicIsAdmissible)
{
    Graph g = smallGraph(true);
    AstarWorkload astar(g, 2, 11);
    runFunctional(astar);
    // h(goal, goal) == 0 follows from the ALT definition.
    for (std::uint32_t v = 0; v < g.numVertices(); ++v)
        EXPECT_EQ(astar.heuristic(v, v), 0u);
}

TEST(Gcn, ProducesNonNegativeFeatures)
{
    GcnWorkload gcn(smallGraph(true), 2);
    runFunctional(gcn);
    EXPECT_TRUE(gcn.verify());
    for (std::uint32_t f = 0; f < GcnWorkload::featureDim; ++f)
        EXPECT_GE(gcn.featuresOf(0)[f], 0.0f); // post-ReLU
}

TEST(Kmeans, EveryPointAssignedToAValidCluster)
{
    KmeansWorkload km(1000, 8, 3);
    runFunctional(km);
    EXPECT_TRUE(km.verify());
    for (std::uint32_t a : km.assignments())
        EXPECT_LT(a, 8u);
}

TEST(Knn, ExactAgainstBruteForce)
{
    KnnWorkload knn(1500, 64, 4, 0.8, 17, 16);
    runFunctional(knn);
    EXPECT_TRUE(knn.verify());
    // Results are sorted by distance.
    for (std::uint32_t q = 0; q < 64; ++q) {
        const auto &res = knn.resultsOf(q);
        ASSERT_EQ(res.size(), 4u);
        for (std::size_t i = 1; i < res.size(); ++i)
            EXPECT_LE(res[i - 1].first, res[i].first);
    }
}

TEST(Spmv, MatchesReferenceIteration)
{
    SpmvWorkload spmv(smallGraph(false), 3);
    runFunctional(spmv);
    EXPECT_TRUE(spmv.verify());
    // After normalization the vector's max magnitude is 1.
    double mx = 0.0;
    for (double v : spmv.vector())
        mx = std::max(mx, std::abs(v));
    EXPECT_NEAR(mx, 1.0, 1e-12);
}

TEST(Factory, UnknownWorkloadIsFatal)
{
    WorkloadSpec spec;
    spec.name = "nosuch";
    EXPECT_DEATH(makeWorkload(spec), "unknown workload");
}

TEST(Factory, SuiteMatchesPaperList)
{
    const auto &names = allWorkloadNames();
    ASSERT_EQ(names.size(), 8u);
    EXPECT_EQ(names[0], "pr");
    EXPECT_EQ(names.back(), "spmv");
    EXPECT_EQ(representativeWorkloadNames().size(), 5u);
}

} // namespace abndp
