/**
 * @file
 * Golden-metrics regression suite: locks the full hierarchical stats
 * dump of every Table-2 NDP design on a fixed small configuration
 * against checked-in golden files, compared bit-exactly.
 *
 * Any change to scheduler, cache, network, DRAM, or energy behavior —
 * intended or not — shows up here as a one-line diff instead of a
 * silently shifted figure. To regenerate after an intentional change:
 *
 *     ABNDP_UPDATE_GOLDEN=1 ./build/tests/abndp_tests \
 *         --gtest_filter='GoldenMetrics.*'
 *
 * then review the golden diff like any other code change (CLAUDE.md).
 * Dumps are stable across build types because all float formatting goes
 * through obs::formatStatValue() and the build compiles with
 * -ffp-contract=off.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/ndp_system.hh"
#include "workloads/factory.hh"

namespace abndp
{

namespace
{

/**
 * Small fixed geometry: 2x2 mesh, 2 units/stack, 2 cores/unit = 8
 * units / 16 cores. Kept deliberately lean so the six golden files stay
 * reviewable (~500 lines each), while still exercising inter-stack
 * forwarding, stealing, and the Traveller cache.
 */
SystemConfig
goldenConfig(Design d)
{
    SystemConfig cfg;
    cfg.meshX = cfg.meshY = 2;
    cfg.unitsPerStack = 2;
    cfg.coresPerUnit = 2;
    return applyDesign(cfg, d);
}

std::string
goldenPath(Design d)
{
    return std::string(ABNDP_GOLDEN_DIR) + "/" + designName(d)
           + ".stats";
}

/** Run pr-tiny under @p d and return the full registry dump. */
std::string
runAndDump(Design d)
{
    auto cfg = goldenConfig(d);
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("pr"));
    sys.run(*wl);
    EXPECT_TRUE(wl->verify()) << designName(d);
    std::ostringstream oss;
    sys.statsRegistry().dump(oss);
    return oss.str();
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

/** First line where @p a and @p b disagree, for failure messages. */
std::string
firstDiff(const std::string &a, const std::string &b)
{
    std::istringstream sa(a), sb(b);
    std::string la, lb;
    std::size_t lineNo = 0;
    while (true) {
        bool okA = static_cast<bool>(std::getline(sa, la));
        bool okB = static_cast<bool>(std::getline(sb, lb));
        ++lineNo;
        if (!okA && !okB)
            return "(no difference found)";
        if (!okA || !okB || la != lb) {
            std::ostringstream oss;
            oss << "line " << lineNo << ":\n  golden: "
                << (okA ? la : "<eof>") << "\n  actual: "
                << (okB ? lb : "<eof>");
            return oss.str();
        }
    }
}

void
checkDesign(Design d)
{
    const std::string dump = runAndDump(d);
    const std::string path = goldenPath(d);

    if (std::getenv("ABNDP_UPDATE_GOLDEN")) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << dump;
        std::cout << "[golden] regenerated " << path << "\n";
        return;
    }

    const std::string golden = readFile(path);
    ASSERT_FALSE(golden.empty())
        << "missing golden file " << path
        << "; regenerate with ABNDP_UPDATE_GOLDEN=1 (see CLAUDE.md)";
    EXPECT_EQ(golden, dump)
        << "stats dump for design " << designName(d)
        << " diverged from " << path << "\nfirst "
        << firstDiff(golden, dump);
}

} // namespace

TEST(GoldenMetrics, DesignB) { checkDesign(Design::B); }
TEST(GoldenMetrics, DesignSm) { checkDesign(Design::Sm); }
TEST(GoldenMetrics, DesignSl) { checkDesign(Design::Sl); }
TEST(GoldenMetrics, DesignSh) { checkDesign(Design::Sh); }
TEST(GoldenMetrics, DesignC) { checkDesign(Design::C); }
TEST(GoldenMetrics, DesignO) { checkDesign(Design::O); }

/**
 * Negative control: a single-counter perturbation of the dump must be
 * caught by the bit-exact comparison — this is what guarantees the
 * suite has no tolerance window a real regression could hide in.
 */
TEST(GoldenMetrics, CatchesOneCounterPerturbation)
{
    if (std::getenv("ABNDP_UPDATE_GOLDEN"))
        GTEST_SKIP() << "regenerating goldens";

    const std::string golden = readFile(goldenPath(Design::B));
    ASSERT_FALSE(golden.empty());

    // Bump the final digit of the first counter line ("system.epochs
    // <n>") by one, exactly what an off-by-one regression would do.
    std::string perturbed = golden;
    auto nl = perturbed.find('\n');
    ASSERT_NE(nl, std::string::npos);
    ASSERT_GT(nl, 0u);
    char &digit = perturbed[nl - 1];
    ASSERT_TRUE(digit >= '0' && digit <= '9') << "unexpected format";
    digit = digit == '9' ? '0' : static_cast<char>(digit + 1);

    EXPECT_NE(perturbed, golden);
    EXPECT_NE(perturbed, runAndDump(Design::B));
}

} // namespace abndp
