/**
 * @file
 * Golden-metrics regression suite: locks the full hierarchical stats
 * dump of every Table-2 NDP design on a fixed small configuration
 * against checked-in golden files, compared bit-exactly.
 *
 * Any change to scheduler, cache, network, DRAM, or energy behavior —
 * intended or not — shows up here as a one-line diff instead of a
 * silently shifted figure. To regenerate after an intentional change:
 *
 *     ABNDP_UPDATE_GOLDEN=1 ./build/tests/abndp_tests \
 *         --gtest_filter='GoldenMetrics.*'
 *
 * then review the golden diff like any other code change (CLAUDE.md).
 * Dumps are stable across build types because all float formatting goes
 * through obs::formatStatValue() and the build compiles with
 * -ffp-contract=off.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/ndp_system.hh"
#include "workloads/factory.hh"

namespace abndp
{

namespace
{

/**
 * Small fixed geometry: 2x2 mesh, 2 units/stack, 2 cores/unit = 8
 * units / 16 cores. Kept deliberately lean so the six golden files stay
 * reviewable (~500 lines each), while still exercising inter-stack
 * forwarding, stealing, and the Traveller cache.
 */
SystemConfig
goldenConfig(Design d)
{
    SystemConfig cfg;
    cfg.meshX = cfg.meshY = 2;
    cfg.unitsPerStack = 2;
    cfg.coresPerUnit = 2;
    return applyDesign(cfg, d);
}

std::string
goldenPath(Design d)
{
    return std::string(ABNDP_GOLDEN_DIR) + "/" + designName(d)
           + ".stats";
}

std::string
servingGoldenPath(Design d)
{
    return std::string(ABNDP_GOLDEN_DIR) + "/serving_"
           + designName(d) + ".stats";
}

/**
 * The golden geometry with a short kv serving stream on top: 1000
 * Zipf-skewed open-loop arrivals across two tenants, so the locked
 * dump covers the full serving stats tree (counters, exact
 * percentiles, per-tenant vectors) on every design.
 */
SystemConfig
servingGoldenConfig(Design d)
{
    SystemConfig cfg = goldenConfig(d);
    cfg.serving.requests = 1000;
    cfg.serving.ratePerUs = 4.0;
    cfg.serving.zipfS = 0.99;
    cfg.serving.tenants = 2;
    cfg.serving.tenantWeights = {3.0, 1.0};
    return cfg;
}

/** Run pr-tiny under @p d and return the full registry dump. */
std::string
runAndDump(Design d)
{
    auto cfg = goldenConfig(d);
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("pr"));
    sys.run(*wl);
    EXPECT_TRUE(wl->verify()) << designName(d);
    std::ostringstream oss;
    sys.statsRegistry().dump(oss);
    return oss.str();
}

/** Serve kv-tiny under @p d and return the full registry dump. */
std::string
runAndDumpServing(Design d)
{
    auto cfg = servingGoldenConfig(d);
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("kv"));
    sys.run(*wl);
    EXPECT_TRUE(wl->verify()) << designName(d);
    std::ostringstream oss;
    sys.statsRegistry().dump(oss);
    return oss.str();
}

std::string
ddrGoldenPath(Design d)
{
    return std::string(ABNDP_GOLDEN_DIR) + "/ddr_" + designName(d)
           + ".stats";
}

/**
 * The golden geometry on the bank-state DDR backend with every
 * DdrBackend-only mechanism lit up: adaptive page policy, burst-level
 * bank interleave, bank groups, and the tRAS/tWR/tFAW constraints.
 * Locks the per-bank vectors, rowHits/actStalls counters, and every
 * latency shift the state machine introduces.
 */
SystemConfig
ddrGoldenConfig(Design d)
{
    SystemConfig cfg = goldenConfig(d);
    cfg.dram.backend = MemBackendKind::Ddr;
    cfg.dram.pagePolicy = PagePolicy::Adaptive;
    cfg.dram.addrMap = DramAddrMapKind::RowColumnBank;
    return cfg;
}

/** Run pr-tiny under @p d on the DDR backend and dump the registry. */
std::string
runAndDumpDdr(Design d)
{
    auto cfg = ddrGoldenConfig(d);
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("pr"));
    sys.run(*wl);
    EXPECT_TRUE(wl->verify()) << designName(d);
    std::ostringstream oss;
    sys.statsRegistry().dump(oss);
    return oss.str();
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

/** First line where @p a and @p b disagree, for failure messages. */
std::string
firstDiff(const std::string &a, const std::string &b)
{
    std::istringstream sa(a), sb(b);
    std::string la, lb;
    std::size_t lineNo = 0;
    while (true) {
        bool okA = static_cast<bool>(std::getline(sa, la));
        bool okB = static_cast<bool>(std::getline(sb, lb));
        ++lineNo;
        if (!okA && !okB)
            return "(no difference found)";
        if (!okA || !okB || la != lb) {
            std::ostringstream oss;
            oss << "line " << lineNo << ":\n  golden: "
                << (okA ? la : "<eof>") << "\n  actual: "
                << (okB ? lb : "<eof>");
            return oss.str();
        }
    }
}

void
checkAgainstGolden(const std::string &dump, const std::string &path,
                   const std::string &label)
{
    if (std::getenv("ABNDP_UPDATE_GOLDEN")) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << dump;
        std::cout << "[golden] regenerated " << path << "\n";
        return;
    }

    const std::string golden = readFile(path);
    ASSERT_FALSE(golden.empty())
        << "missing golden file " << path
        << "; regenerate with ABNDP_UPDATE_GOLDEN=1 (see CLAUDE.md)";
    EXPECT_EQ(golden, dump)
        << "stats dump for " << label << " diverged from " << path
        << "\nfirst " << firstDiff(golden, dump);
}

void
checkDesign(Design d)
{
    checkAgainstGolden(runAndDump(d), goldenPath(d),
                       std::string("design ") + designName(d));
}

void
checkServingDesign(Design d)
{
    checkAgainstGolden(runAndDumpServing(d), servingGoldenPath(d),
                       std::string("serving design ") + designName(d));
}

void
checkDdrDesign(Design d)
{
    checkAgainstGolden(runAndDumpDdr(d), ddrGoldenPath(d),
                       std::string("ddr design ") + designName(d));
}

} // namespace

TEST(GoldenMetrics, DesignB) { checkDesign(Design::B); }
TEST(GoldenMetrics, DesignSm) { checkDesign(Design::Sm); }
TEST(GoldenMetrics, DesignSl) { checkDesign(Design::Sl); }
TEST(GoldenMetrics, DesignSh) { checkDesign(Design::Sh); }
TEST(GoldenMetrics, DesignC) { checkDesign(Design::C); }
TEST(GoldenMetrics, DesignO) { checkDesign(Design::O); }

/**
 * Negative control: a single-counter perturbation of the dump must be
 * caught by the bit-exact comparison — this is what guarantees the
 * suite has no tolerance window a real regression could hide in.
 */
TEST(GoldenMetrics, CatchesOneCounterPerturbation)
{
    if (std::getenv("ABNDP_UPDATE_GOLDEN"))
        GTEST_SKIP() << "regenerating goldens";

    const std::string golden = readFile(goldenPath(Design::B));
    ASSERT_FALSE(golden.empty());

    // Bump the final digit of the first counter line ("system.epochs
    // <n>") by one, exactly what an off-by-one regression would do.
    std::string perturbed = golden;
    auto nl = perturbed.find('\n');
    ASSERT_NE(nl, std::string::npos);
    ASSERT_GT(nl, 0u);
    char &digit = perturbed[nl - 1];
    ASSERT_TRUE(digit >= '0' && digit <= '9') << "unexpected format";
    digit = digit == '9' ? '0' : static_cast<char>(digit + 1);

    EXPECT_NE(perturbed, golden);
    EXPECT_NE(perturbed, runAndDump(Design::B));
}

/**
 * Serving golden lock: the same geometry under a 1000-request Zipfian
 * kv stream, one dump per NDP design (H has no serving driver). Locks
 * the exact tail percentiles, goodput, SLO-miss counters, and
 * per-tenant vectors bit-for-bit — any change to the arrival process,
 * sampler, admission control, or completion accounting lands here as
 * a reviewable one-line diff.
 */
TEST(GoldenMetrics, ServingB) { checkServingDesign(Design::B); }
TEST(GoldenMetrics, ServingSm) { checkServingDesign(Design::Sm); }
TEST(GoldenMetrics, ServingSl) { checkServingDesign(Design::Sl); }
TEST(GoldenMetrics, ServingSh) { checkServingDesign(Design::Sh); }
TEST(GoldenMetrics, ServingC) { checkServingDesign(Design::C); }
TEST(GoldenMetrics, ServingO) { checkServingDesign(Design::O); }

/**
 * DDR golden lock: the same geometry and workload, every design, on
 * the bank-state backend (adaptive page policy, rcb interleave). The
 * MeterBackend goldens above prove the seam extraction is
 * bit-neutral; these lock the DDR state machine itself — page-policy
 * decisions, tFAW stalls, per-bank vectors — against silent drift.
 */
TEST(GoldenMetrics, DdrB) { checkDdrDesign(Design::B); }
TEST(GoldenMetrics, DdrSm) { checkDdrDesign(Design::Sm); }
TEST(GoldenMetrics, DdrSl) { checkDdrDesign(Design::Sl); }
TEST(GoldenMetrics, DdrSh) { checkDdrDesign(Design::Sh); }
TEST(GoldenMetrics, DdrC) { checkDdrDesign(Design::C); }
TEST(GoldenMetrics, DdrO) { checkDdrDesign(Design::O); }

/**
 * HLB golden locks: the hierarchical-balancer design points on the
 * same batch, serving, and DDR geometries. These pin the shed/migration
 * counters, the re-homed traffic and invalidation accounting, and —
 * because the lb engine runs inside the exchange windows — every
 * downstream scheduling stat the balancer perturbs. The classic
 * goldens above double as the feature-off control: they must stay
 * byte-identical without regeneration while HLB is unconfigured.
 */
TEST(GoldenMetrics, DesignHlb) { checkDesign(Design::Hlb); }
TEST(GoldenMetrics, DesignHlbM) { checkDesign(Design::HlbM); }
TEST(GoldenMetrics, ServingHlbM) { checkServingDesign(Design::HlbM); }
TEST(GoldenMetrics, DdrHlbM) { checkDdrDesign(Design::HlbM); }

/** Negative control for the HLB goldens: one flipped digit in a
 *  balancer-only counter must fail the bit-exact comparison. */
TEST(GoldenMetrics, HlbCatchesOneCounterPerturbation)
{
    if (std::getenv("ABNDP_UPDATE_GOLDEN"))
        GTEST_SKIP() << "regenerating goldens";

    const std::string golden = readFile(goldenPath(Design::HlbM));
    ASSERT_FALSE(golden.empty());

    // Perturb the last digit of the tasksShedIntra counter line — a
    // stat that only exists when the balancer is configured.
    auto pos = golden.find("tasksShedIntra");
    ASSERT_NE(pos, std::string::npos);
    auto nl = golden.find('\n', pos);
    ASSERT_NE(nl, std::string::npos);
    std::string perturbed = golden;
    char &digit = perturbed[nl - 1];
    ASSERT_TRUE(digit >= '0' && digit <= '9') << "unexpected format";
    digit = digit == '9' ? '0' : static_cast<char>(digit + 1);

    EXPECT_NE(perturbed, golden);
    EXPECT_NE(perturbed, runAndDump(Design::HlbM));
}

/** Negative control for the DDR goldens: one flipped digit in a
 *  backend-only counter must fail the bit-exact comparison. */
TEST(GoldenMetrics, DdrCatchesOneCounterPerturbation)
{
    if (std::getenv("ABNDP_UPDATE_GOLDEN"))
        GTEST_SKIP() << "regenerating goldens";

    const std::string golden = readFile(ddrGoldenPath(Design::O));
    ASSERT_FALSE(golden.empty());

    // Perturb the last digit of the first rowHits line — a counter
    // that only the bank-state backend produces.
    auto pos = golden.find("rowHits");
    ASSERT_NE(pos, std::string::npos);
    auto nl = golden.find('\n', pos);
    ASSERT_NE(nl, std::string::npos);
    std::string perturbed = golden;
    char &digit = perturbed[nl - 1];
    ASSERT_TRUE(digit >= '0' && digit <= '9') << "unexpected format";
    digit = digit == '9' ? '0' : static_cast<char>(digit + 1);

    EXPECT_NE(perturbed, golden);
    EXPECT_NE(perturbed, runAndDumpDdr(Design::O));
}

/** Negative control for the serving goldens, same recipe as above. */
TEST(GoldenMetrics, ServingCatchesOneCounterPerturbation)
{
    if (std::getenv("ABNDP_UPDATE_GOLDEN"))
        GTEST_SKIP() << "regenerating goldens";

    const std::string golden = readFile(servingGoldenPath(Design::O));
    ASSERT_FALSE(golden.empty());

    // Perturb the last digit of the serving.injected counter line —
    // the canonical off-by-one a lost or double-counted request would
    // produce.
    auto pos = golden.find("serving.injected");
    ASSERT_NE(pos, std::string::npos);
    auto nl = golden.find('\n', pos);
    ASSERT_NE(nl, std::string::npos);
    std::string perturbed = golden;
    char &digit = perturbed[nl - 1];
    ASSERT_TRUE(digit >= '0' && digit <= '9') << "unexpected format";
    digit = digit == '9' ? '0' : static_cast<char>(digit + 1);

    EXPECT_NE(perturbed, golden);
    EXPECT_NE(perturbed, runAndDumpServing(Design::O));
}

} // namespace abndp
