/** @file Tests for the FIFO prefetch buffer. */

#include <gtest/gtest.h>

#include "cache/prefetch_buffer.hh"

namespace abndp
{

TEST(PrefetchBuffer, MissReturnsNever)
{
    PrefetchBuffer pb(4);
    EXPECT_EQ(pb.lookup(0x40, 100), tickNever);
    EXPECT_EQ(pb.misses(), 1u);
}

TEST(PrefetchBuffer, HitReturnsReadyTick)
{
    PrefetchBuffer pb(4);
    pb.fill(0x40, 500);
    EXPECT_EQ(pb.lookup(0x40, 1000), 500u);
    EXPECT_EQ(pb.hits(), 1u);
}

TEST(PrefetchBuffer, InFlightHitCountsAsLate)
{
    PrefetchBuffer pb(4);
    pb.fill(0x40, 5000);
    EXPECT_EQ(pb.lookup(0x40, 1000), 5000u);
    EXPECT_EQ(pb.lateHits(), 1u);
    EXPECT_EQ(pb.hits(), 0u);
}

TEST(PrefetchBuffer, FifoEvictsOldest)
{
    PrefetchBuffer pb(2);
    pb.fill(0x40, 1);
    pb.fill(0x80, 2);
    pb.fill(0xc0, 3); // evicts 0x40
    EXPECT_FALSE(pb.peek(0x40));
    EXPECT_TRUE(pb.peek(0x80));
    EXPECT_TRUE(pb.peek(0xc0));
    EXPECT_EQ(pb.size(), 2u);
}

TEST(PrefetchBuffer, RefillKeepsEarlierReadyTime)
{
    PrefetchBuffer pb(4);
    pb.fill(0x40, 100);
    pb.fill(0x40, 900); // must not postpone availability
    EXPECT_EQ(pb.lookup(0x40, 2000), 100u);
    EXPECT_EQ(pb.size(), 1u);
}

TEST(PrefetchBuffer, InvalidateAllEmpties)
{
    PrefetchBuffer pb(4);
    pb.fill(0x40, 1);
    pb.fill(0x80, 1);
    pb.invalidateAll();
    EXPECT_EQ(pb.size(), 0u);
    EXPECT_EQ(pb.lookup(0x40, 10), tickNever);
}

TEST(PrefetchBuffer, PeekHasNoStatSideEffects)
{
    PrefetchBuffer pb(4);
    pb.fill(0x40, 1);
    pb.peek(0x40);
    pb.peek(0x80);
    EXPECT_EQ(pb.hits(), 0u);
    EXPECT_EQ(pb.misses(), 0u);
}

} // namespace abndp
