/** @file Tests for the Table-1 defaults and the Table-2 design matrix. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/config.hh"

namespace abndp
{

TEST(Config, Table1Defaults)
{
    SystemConfig cfg;
    EXPECT_EQ(cfg.numStacks(), 16u);
    EXPECT_EQ(cfg.numUnits(), 128u);
    EXPECT_EQ(cfg.numCores(), 256u);
    EXPECT_EQ(cfg.totalMemBytes(), 64ull << 30);
    EXPECT_EQ(cfg.memBytesPerUnit, 512ull << 20);
    EXPECT_EQ(cfg.l1d.sizeBytes, 64ull * 1024);
    EXPECT_EQ(cfg.l1d.assoc, 4u);
    EXPECT_EQ(cfg.l1i.sizeBytes, 32ull * 1024);
    EXPECT_EQ(cfg.prefetchBufBytes, 4ull * 1024);
    EXPECT_DOUBLE_EQ(cfg.dram.tCasNs, 17.0);
    EXPECT_DOUBLE_EQ(cfg.dram.pjPerBitRw, 5.0);
    EXPECT_DOUBLE_EQ(cfg.dram.pjActPre, 535.8);
    EXPECT_DOUBLE_EQ(cfg.net.intraHopNs, 1.5);
    EXPECT_DOUBLE_EQ(cfg.net.interHopNs, 10.0);
    EXPECT_DOUBLE_EQ(cfg.net.interGBs, 32.0);
    EXPECT_EQ(cfg.traveller.ratioDenom, 64u);
    EXPECT_EQ(cfg.traveller.assoc, 4u);
    EXPECT_EQ(cfg.traveller.campCount, 3u);
    EXPECT_DOUBLE_EQ(cfg.traveller.bypassProb, 0.4);
    EXPECT_EQ(cfg.sched.exchangeIntervalCycles, 100000u);
    EXPECT_EQ(cfg.meshDiameter(), 6u);
    EXPECT_EQ(cfg.ticksPerCycle(), 500u);
}

TEST(Config, DerivedTravellerGeometry)
{
    SystemConfig cfg;
    // 512MB / 64 / 64B / 4-way = 32768 sets (Section 4.3).
    EXPECT_EQ(cfg.travellerBytesPerUnit(), 8ull << 20);
    EXPECT_EQ(cfg.travellerSets(), 32768u);
}

TEST(Config, ApplyDesignMatrix)
{
    SystemConfig base;

    auto b = applyDesign(base, Design::B);
    EXPECT_EQ(b.sched.policy, SchedPolicy::Colocate);
    EXPECT_EQ(b.traveller.style, CacheStyle::None);
    EXPECT_FALSE(b.sched.workStealing);

    auto sm = applyDesign(base, Design::Sm);
    EXPECT_EQ(sm.sched.policy, SchedPolicy::LowestDistance);
    EXPECT_FALSE(sm.sched.workStealing);

    auto sl = applyDesign(base, Design::Sl);
    EXPECT_EQ(sl.sched.policy, SchedPolicy::LowestDistance);
    EXPECT_TRUE(sl.sched.workStealing);

    auto sh = applyDesign(base, Design::Sh);
    EXPECT_EQ(sh.sched.policy, SchedPolicy::Hybrid);
    EXPECT_EQ(sh.traveller.style, CacheStyle::None);

    auto c = applyDesign(base, Design::C);
    EXPECT_EQ(c.sched.policy, SchedPolicy::LowestDistance);
    EXPECT_EQ(c.traveller.style, CacheStyle::TravellerSramTags);

    auto o = applyDesign(base, Design::O);
    EXPECT_EQ(o.sched.policy, SchedPolicy::Hybrid);
    EXPECT_EQ(o.traveller.style, CacheStyle::TravellerSramTags);
}

TEST(Config, AutoAlphaTracksDiameter)
{
    SystemConfig base;
    base.meshX = base.meshY = 8;
    auto o = applyDesign(base, Design::O);
    // d = 14 for an 8x8 mesh; alpha = d / 2.
    EXPECT_DOUBLE_EQ(o.sched.hybridAlpha, 7.0);
}

TEST(Config, DesignNames)
{
    EXPECT_STREQ(designName(Design::H), "H");
    EXPECT_STREQ(designName(Design::B), "B");
    EXPECT_STREQ(designName(Design::Sm), "Sm");
    EXPECT_STREQ(designName(Design::Sl), "Sl");
    EXPECT_STREQ(designName(Design::Sh), "Sh");
    EXPECT_STREQ(designName(Design::C), "C");
    EXPECT_STREQ(designName(Design::O), "O");
}

TEST(Config, PrintMentionsKeyParameters)
{
    SystemConfig cfg = applyDesign(SystemConfig{}, Design::O);
    std::ostringstream oss;
    cfg.print(oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("4x4 stacks"), std::string::npos);
    EXPECT_NE(out.find("512MB per unit"), std::string::npos);
    EXPECT_NE(out.find("C=3 camp loc."), std::string::npos);
    EXPECT_NE(out.find("100000-cycle"), std::string::npos);
}

TEST(ConfigDeath, ValidateRejectsBadConfigs)
{
    SystemConfig cfg;
    cfg.memBytesPerUnit = 1000; // not a power of two
    EXPECT_DEATH(cfg.validate(), "power of two");

    SystemConfig cfg2;
    cfg2.traveller.style = CacheStyle::TravellerSramTags;
    cfg2.traveller.bypassProb = 1.5;
    EXPECT_DEATH(cfg2.validate(), "bypassProb");

    SystemConfig cfg3;
    cfg3.meshX = 0;
    EXPECT_DEATH(cfg3.validate(), "mesh");
}

} // namespace abndp
