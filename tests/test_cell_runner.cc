/** @file Unit tests for the parallel (design, workload) grid runner. */

#include <atomic>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "driver/cell_runner.hh"

namespace abndp
{

namespace
{

std::vector<CellSpec>
smallGrid()
{
    std::vector<CellSpec> cells;
    for (const char *wl : {"pr", "bfs"}) {
        for (Design d : {Design::B, Design::O}) {
            CellSpec cell;
            cell.design = d;
            cell.workload = WorkloadSpec::tiny(wl);
            cells.push_back(cell);
        }
    }
    return cells;
}

} // namespace

TEST(CellRunner, DefaultThreadsIsAtLeastOne)
{
    EXPECT_GE(defaultThreads(), 1u);
}

TEST(CellRunner, EmptyGridReturnsNoResults)
{
    EXPECT_TRUE(runCells(SystemConfig{}, {}, 4).empty());
}

// The per-cell simulations share nothing and are seeded purely by
// their own config, so every simulated metric must be bit-identical
// whether the grid runs sequentially or on a thread pool.
TEST(CellRunner, DeterministicAcrossThreads)
{
    SystemConfig base;
    std::vector<CellSpec> cells = smallGrid();
    std::vector<RunMetrics> seq = runCells(base, cells, 1);
    std::vector<RunMetrics> par = runCells(base, cells, 4);
    ASSERT_EQ(seq.size(), cells.size());
    ASSERT_EQ(par.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        EXPECT_EQ(seq[i].ticks, par[i].ticks) << "cell " << i;
        EXPECT_EQ(seq[i].tasks, par[i].tasks) << "cell " << i;
        EXPECT_EQ(seq[i].epochs, par[i].epochs) << "cell " << i;
        EXPECT_EQ(seq[i].interHops, par[i].interHops) << "cell " << i;
        EXPECT_EQ(seq[i].simEvents, par[i].simEvents) << "cell " << i;
        EXPECT_EQ(seq[i].stolenTasks, par[i].stolenTasks)
            << "cell " << i;
        EXPECT_EQ(seq[i].coreActiveTicks, par[i].coreActiveTicks)
            << "cell " << i;
    }
}

// Results land at their cell's index, matching a direct sequential
// runExperiment() of the same spec — completion order is irrelevant.
TEST(CellRunner, ResultsMatchDirectExperimentInCellOrder)
{
    SystemConfig base;
    std::vector<CellSpec> cells = smallGrid();
    std::vector<RunMetrics> results = runCells(base, cells, 2);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        RunMetrics direct = runExperiment(base, cells[i].design,
                                          cells[i].workload,
                                          cells[i].opts);
        EXPECT_EQ(results[i].ticks, direct.ticks) << "cell " << i;
        EXPECT_EQ(results[i].tasks, direct.tasks) << "cell " << i;
        EXPECT_EQ(results[i].interHops, direct.interHops)
            << "cell " << i;
    }
}

TEST(CellRunner, PerCellConfigOverridesBase)
{
    SystemConfig base;
    SystemConfig half = base;
    half.unitsPerStack = base.unitsPerStack / 2;

    CellSpec plain;
    plain.workload = WorkloadSpec::tiny("pr");
    CellSpec overridden = plain;
    overridden.config = half;

    std::vector<RunMetrics> results =
        runCells(base, {plain, overridden}, 2);
    // coreActiveTicks is sized numUnits * coresPerUnit, so the override
    // is visible structurally.
    EXPECT_EQ(results[0].coreActiveTicks.size(),
              std::size_t{base.numCores()});
    EXPECT_EQ(results[1].coreActiveTicks.size(),
              std::size_t{half.numCores()});
}

TEST(CellRunner, ProgressReportsEveryCellExactlyOnce)
{
    std::vector<CellSpec> cells = smallGrid();
    std::atomic<std::size_t> calls{0};
    std::vector<int> seen(cells.size(), 0);
    runCells(SystemConfig{}, cells, 4,
             [&](std::size_t done, std::size_t total, std::size_t idx) {
                 // Serialized under the runner's lock.
                 ++calls;
                 ASSERT_EQ(total, cells.size());
                 ASSERT_LE(done, total);
                 ASSERT_LT(idx, cells.size());
                 ++seen[idx];
             });
    EXPECT_EQ(calls.load(), cells.size());
    for (int count : seen)
        EXPECT_EQ(count, 1);
}

} // namespace abndp
