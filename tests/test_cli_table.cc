/** @file Tests for the CLI flag parser and the text table printer. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/cli.hh"
#include "common/table.hh"

namespace abndp
{

namespace
{

CliFlags
parse(std::initializer_list<const char *> args)
{
    std::vector<char *> argv;
    static char prog[] = "prog";
    argv.push_back(prog);
    std::vector<std::string> storage(args.begin(), args.end());
    for (auto &s : storage)
        argv.push_back(s.data());
    return CliFlags(static_cast<int>(argv.size()), argv.data());
}

} // namespace

TEST(Cli, ParsesEqualsForm)
{
    auto f = parse({"--scale=14", "--alpha=2.5", "--name=pr"});
    EXPECT_EQ(f.getUint("scale", 0), 14u);
    EXPECT_DOUBLE_EQ(f.getDouble("alpha", 0.0), 2.5);
    EXPECT_EQ(f.getString("name", ""), "pr");
}

TEST(Cli, ParsesSpaceForm)
{
    auto f = parse({"--scale", "15", "--flag"});
    EXPECT_EQ(f.getUint("scale", 0), 15u);
    EXPECT_TRUE(f.getBool("flag", false));
}

TEST(Cli, DefaultsWhenMissing)
{
    auto f = parse({});
    EXPECT_EQ(f.getInt("x", -7), -7);
    EXPECT_EQ(f.getString("y", "dflt"), "dflt");
    EXPECT_FALSE(f.has("x"));
}

TEST(Cli, BooleanSpellings)
{
    auto f = parse({"--a=true", "--b=0", "--c=yes", "--d=off"});
    EXPECT_TRUE(f.getBool("a", false));
    EXPECT_FALSE(f.getBool("b", true));
    EXPECT_TRUE(f.getBool("c", false));
    EXPECT_FALSE(f.getBool("d", true));
}

TEST(Cli, CollectsPositionals)
{
    auto f = parse({"file1", "--x=1", "file2"});
    ASSERT_EQ(f.positional().size(), 2u);
    EXPECT_EQ(f.positional()[0], "file1");
    EXPECT_EQ(f.positional()[1], "file2");
}

TEST(Table, AlignsColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "2.50"});
    std::ostringstream oss;
    t.print(oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("| name   | value |"), std::string::npos);
    EXPECT_NE(out.find("| longer | 2.50  |"), std::string::npos);
}

TEST(Table, FormatHelpers)
{
    EXPECT_EQ(TextTable::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::fmt(std::uint64_t{42}), "42");
}

TEST(TableDeath, RowWidthMismatchPanics)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width mismatch");
}

} // namespace abndp
