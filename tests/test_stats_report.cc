/** @file Tests for the statistics dump and JSON report. */

#include <gtest/gtest.h>

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "core/ndp_system.hh"
#include "core/stats_report.hh"
#include "workloads/factory.hh"

namespace abndp
{

namespace
{

struct ReportFixture
{
    ReportFixture()
        : cfg(applyDesign(SystemConfig{}, Design::O)), sys(cfg)
    {
        auto wl = makeWorkload(WorkloadSpec::tiny("bfs"));
        metrics = sys.run(*wl);
    }

    SystemConfig cfg;
    NdpSystem sys;
    RunMetrics metrics;
};

} // namespace

TEST(StatsReport, DumpContainsAllSections)
{
    ReportFixture f;
    std::ostringstream oss;
    dumpStats(oss, f.sys, f.metrics);
    std::string out = oss.str();
    for (const char *key :
         {"system.ticks", "system.tasks", "network.interHops",
          "sched.decisions", "prefetchBuffer.hits", "l1d.hits",
          "travellerCache.hitRate", "dram.reads", "dram.refreshes",
          "energy.totalPj"})
        EXPECT_NE(out.find(key), std::string::npos) << key;
}

TEST(StatsReport, NoTravellerSectionWithoutCache)
{
    SystemConfig cfg = applyDesign(SystemConfig{}, Design::B);
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("bfs"));
    RunMetrics m = sys.run(*wl);
    std::ostringstream oss;
    dumpStats(oss, sys, m);
    EXPECT_EQ(oss.str().find("travellerCache"), std::string::npos);
}

TEST(StatsReport, JsonIsWellFormedEnough)
{
    ReportFixture f;
    std::ostringstream oss;
    dumpJson(oss, f.cfg, f.metrics);
    std::string out = oss.str();
    EXPECT_EQ(out.front(), '{');
    EXPECT_EQ(out.back(), '}');
    // Balanced braces and the headline keys.
    EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
              std::count(out.begin(), out.end(), '}'));
    for (const char *key : {"\"ticks\":", "\"interHops\":",
                            "\"energyPj\":", "\"total\":"})
        EXPECT_NE(out.find(key), std::string::npos) << key;
}

TEST(StatsReport, DumpIsStableUnderAmbientStreamState)
{
    ReportFixture f;
    std::ostringstream pristine;
    dumpStats(pristine, f.sys, f.metrics);

    // A caller-perturbed stream (precision, scientific notation, odd
    // fill) must not change a single byte: every float goes through
    // obs::formatStatValue(), which carries its own explicit format.
    std::ostringstream perturbed;
    perturbed << std::scientific << std::setprecision(2)
              << std::setfill('*');
    std::string prefix = perturbed.str();
    dumpStats(perturbed, f.sys, f.metrics);
    EXPECT_EQ(pristine.str(), perturbed.str().substr(prefix.size()));
}

TEST(StatsReport, DumpFloatsUseFixedNotation)
{
    ReportFixture f;
    std::ostringstream oss;
    dumpStats(oss, f.sys, f.metrics);
    std::string out = oss.str();
    // Energy values are large enough that default formatting would
    // print scientific notation; the dump must never contain it.
    std::istringstream lines(out);
    std::string l;
    while (std::getline(lines, l))
        EXPECT_EQ(l.find("e+"), std::string::npos) << l;
    // utilization is a fraction formatted with fixed six digits.
    EXPECT_NE(out.find("0."), std::string::npos);
}

TEST(StatsReport, JsonValuesMatchMetrics)
{
    ReportFixture f;
    std::ostringstream oss;
    dumpJson(oss, f.cfg, f.metrics);
    std::string out = oss.str();
    EXPECT_NE(out.find("\"ticks\":" + std::to_string(f.metrics.ticks)),
              std::string::npos);
    EXPECT_NE(out.find("\"tasks\":" + std::to_string(f.metrics.tasks)),
              std::string::npos);
}

} // namespace abndp
