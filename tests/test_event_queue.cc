/** @file Unit tests for the discrete-event kernel. */

#include <gtest/gtest.h>

#include "sim/event_queue.hh"

namespace abndp
{

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.runAll();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 5)
            eq.scheduleIn(10, chain);
    };
    eq.schedule(0, chain);
    eq.runAll();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(30, [&] { ++fired; });
    eq.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 20u);
    eq.runAll();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueueDeath, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.runAll();
    EXPECT_DEATH(eq.schedule(50, [] {}), "scheduling into the past");
}

} // namespace abndp
