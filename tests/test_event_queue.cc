/** @file Unit tests for the discrete-event kernel. */

#include <memory>

#include <gtest/gtest.h>

#include "sim/event_queue.hh"

namespace abndp
{

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.runAll();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 5)
            eq.scheduleIn(10, chain);
    };
    eq.schedule(0, chain);
    eq.runAll();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(30, [&] { ++fired; });
    eq.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 20u);
    eq.runAll();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueueDeath, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.runAll();
    EXPECT_DEATH(eq.schedule(50, [] {}), "scheduling into the past");
}

namespace
{

/** A callable whose capture exceeds the inline slot. */
struct OversizedCallback
{
    unsigned char payload[EventQueue::callbackCapacity + 1] = {};
    void operator()() {}
};

/** A callable that fills the inline slot exactly. */
struct MaxSizeCallback
{
    unsigned char payload[EventQueue::callbackCapacity] = {};
    void operator()() {}
};

} // namespace

// Oversized captures must be rejected at compile time — there is
// deliberately no heap fallback in the kernel.
static_assert(!EventQueue::callbackFits<OversizedCallback>,
              "oversized capture must not be schedulable");
static_assert(EventQueue::callbackFits<MaxSizeCallback>,
              "captures up to callbackCapacity must be schedulable");
static_assert(!EventQueue::callbackFits<int>,
              "non-invocable types must not be schedulable");

TEST(EventQueue, ClearPendingKeepsCapacityAndDestroysCaptures)
{
    EventQueue eq;
    auto token = std::make_shared<int>(7);
    for (int i = 0; i < 100; ++i)
        eq.schedule(10 + i, [token] {});
    EXPECT_EQ(token.use_count(), 101);

    std::size_t heapCap = eq.heapCapacity();
    std::size_t arena = eq.arenaSlots();
    EXPECT_GE(heapCap, 100u);
    EXPECT_GE(arena, 100u);

    eq.clearPending();
    EXPECT_TRUE(eq.empty());
    // Dropped events release their captures immediately...
    EXPECT_EQ(token.use_count(), 1);
    // ...but both the heap vector and the slot arena keep their
    // storage, so the next epoch ramps up without reallocating.
    EXPECT_EQ(eq.heapCapacity(), heapCap);
    EXPECT_EQ(eq.arenaSlots(), arena);

    for (int i = 0; i < 100; ++i)
        eq.schedule(20 + i, [token] {});
    EXPECT_EQ(eq.heapCapacity(), heapCap);
    EXPECT_EQ(eq.arenaSlots(), arena);
    eq.runAll();
    EXPECT_EQ(token.use_count(), 1);
}

TEST(EventQueue, ResetRewindsClockCountersAndWatchdog)
{
    EventQueue eq;
    eq.setWatchdog(1000, 8);
    eq.armWatchdog();
    for (int i = 0; i < 32; ++i)
        eq.schedule(10 * (i + 1), [] {});
    std::size_t heapCap = eq.heapCapacity();
    std::size_t arena = eq.arenaSlots();
    eq.runAll();
    EXPECT_GT(eq.now(), 0u);
    EXPECT_EQ(eq.executed(), 32u);
    EXPECT_TRUE(eq.watchdogTripped());

    eq.reset();
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.executed(), 0u);
    // Watchdog baselines are rewound with the clock...
    EXPECT_EQ(eq.watchdogTicks(), 0u);
    EXPECT_EQ(eq.watchdogEvents(), 0u);
    EXPECT_FALSE(eq.watchdogTripped());
    // ...capacity survives...
    EXPECT_EQ(eq.heapCapacity(), heapCap);
    EXPECT_EQ(eq.arenaSlots(), arena);
    // ...and the configured budgets still apply to the next phase.
    int fired = 0;
    for (int i = 0; i < 16; ++i)
        eq.schedule(i, [&] { ++fired; });
    eq.runAll();
    EXPECT_EQ(fired, 16);
    EXPECT_TRUE(eq.watchdogTripped());
}

TEST(EventQueue, CallbacksMayClearPendingWhileRunning)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] {
        ++fired;
        eq.clearPending();
    });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(30, [&] { ++fired; });
    eq.runAll();
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.empty());
}

} // namespace abndp
