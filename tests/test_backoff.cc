/**
 * @file
 * Unit tests for the shared capped-exponential-backoff helper
 * (src/common/backoff.hh) and its two consumers: faulty-link
 * retransmission waits and unit-failure redispatch waits must both be
 * bit-identical to the helper (one arithmetic, two state machines).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "common/backoff.hh"
#include "common/config.hh"
#include "fault/fault_model.hh"

namespace abndp
{

TEST(CappedExpBackoff, DoublesPerAttempt)
{
    constexpr Tick base = 250 * ticksPerNs;
    EXPECT_EQ(cappedExpBackoff(base, 0), base);
    EXPECT_EQ(cappedExpBackoff(base, 1), 2 * base);
    EXPECT_EQ(cappedExpBackoff(base, 2), 4 * base);
    EXPECT_EQ(cappedExpBackoff(base, 10), base << 10);
}

TEST(CappedExpBackoff, ShiftSaturatesAtCap)
{
    constexpr Tick base = 100;
    EXPECT_EQ(cappedExpBackoff(base, 16), base << 16);
    // Past the cap the wait stays flat instead of overflowing.
    EXPECT_EQ(cappedExpBackoff(base, 17), base << 16);
    EXPECT_EQ(cappedExpBackoff(base, std::numeric_limits<
                  std::uint32_t>::max()), base << 16);
    // Custom cap.
    EXPECT_EQ(cappedExpBackoff(base, 9, 4), base << 4);
}

TEST(CappedExpBackoff, ZeroBaseStaysZero)
{
    EXPECT_EQ(cappedExpBackoff(0, 0), 0u);
    EXPECT_EQ(cappedExpBackoff(0, 40), 0u);
}

TEST(CappedExpBackoff, ConstexprUsable)
{
    static_assert(cappedExpBackoff(5, 3) == 40, "must fold at compile "
                  "time");
    SUCCEED();
}

TEST(CappedExpBackoff, MatchesLinkRetryBackoff)
{
    // The faulty-link retransmission timer delegates to the helper;
    // its waits must equal the helper applied to the configured base.
    SystemConfig cfg = applyDesign(SystemConfig{}, Design::B);
    cfg.fault.link.count = 1;
    cfg.fault.link.dropProb = 0.5;
    cfg.validate();
    FaultModel fm(cfg);
    const Tick base = static_cast<Tick>(cfg.fault.link.retryBackoffNs
                                        * ticksPerNs);
    for (std::uint32_t attempt = 0; attempt < 24; ++attempt)
        EXPECT_EQ(fm.retryBackoffTicks(attempt),
                  cappedExpBackoff(base, attempt))
            << "attempt " << attempt;
}

TEST(CappedExpBackoff, MatchesUnitRedispatchBackoff)
{
    SystemConfig cfg = applyDesign(SystemConfig{}, Design::B);
    cfg.fault.unitFailure.count = 1;
    cfg.fault.unitFailure.redispatchBackoffNs = 750.0;
    cfg.validate();
    FaultModel fm(cfg);
    const Tick base = static_cast<Tick>(
        cfg.fault.unitFailure.redispatchBackoffNs * ticksPerNs);
    for (std::uint32_t attempt = 0; attempt < 24; ++attempt)
        EXPECT_EQ(fm.redispatchBackoffTicks(attempt),
                  cappedExpBackoff(base, attempt))
            << "attempt " << attempt;
}

} // namespace abndp
