/**
 * @file
 * Online-serving driver tests (src/serve, NdpSystem::serveRun): the
 * deterministic open-loop arrival process, the exact latency
 * accumulator, the Zipfian key sampler, and full serving runs on
 * tiny systems — determinism, request conservation (injected ==
 * rejected + completed direct + completed recovered), admission
 * control, rate profiles, multi-tenant stats, failure tolerance, and
 * batch isolation (a batch dump carries no serving node).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "core/ndp_system.hh"
#include "serve/arrival.hh"
#include "serve/latency_recorder.hh"
#include "serve/zipf.hh"
#include "workloads/factory.hh"

namespace abndp
{

namespace
{

/** Tiny serving system: default geometry plus a short kv stream. */
SystemConfig
servingConfig(Design d, std::uint64_t requests = 2000)
{
    SystemConfig cfg;
    cfg = applyDesign(cfg, d);
    cfg.serving.requests = requests;
    cfg.serving.ratePerUs = 4.0;
    cfg.serving.zipfS = 0.99;
    cfg.serving.sloNs = 4000.0;
    return cfg;
}

/** Run @p spec as a served stream and return (metrics, verify()). */
RunMetrics
serveOnce(const SystemConfig &cfg, const WorkloadSpec &spec,
          bool *verified = nullptr)
{
    NdpSystem sys(cfg);
    auto wl = makeWorkload(spec);
    RunMetrics m = sys.run(*wl);
    bool ok = wl->verify();
    if (verified)
        *verified = ok;
    else
        EXPECT_TRUE(ok);
    return m;
}

/** The serving metamorphic relation (also enforced by src/check). */
void
expectConserved(const RunMetrics &m)
{
    EXPECT_EQ(m.servingInjected,
              m.servingRejected + m.servingCompletedDirect
                  + m.servingCompletedRecovered);
}

} // namespace

// ---- ArrivalProcess ---------------------------------------------------

TEST(ServingArrival, StrictlyIncreasingAndDeterministic)
{
    ServingConfig sc;
    sc.requests = 1;
    sc.ratePerUs = 8.0;
    serve::ArrivalProcess a(sc, 42), b(sc, 42), c(sc, 43);

    Tick ta = 0, tb = 0, tc = 0;
    bool diverged = false;
    for (int i = 0; i < 2000; ++i) {
        Tick na = a.nextArrival(ta), nb = b.nextArrival(tb),
             nc = c.nextArrival(tc);
        ASSERT_GT(na, ta) << "arrival " << i << " did not advance time";
        ASSERT_EQ(na, nb) << "same seed diverged at arrival " << i;
        diverged |= na != nc;
        ta = na;
        tb = nb;
        tc = nc;
    }
    EXPECT_TRUE(diverged) << "different seeds produced the same stream";

    // Open loop at 8 req/us: 2000 arrivals should take on the order of
    // 250 us of simulated time (loose 4x band either way).
    const double us = static_cast<double>(ta) / (1000.0 * ticksPerNs);
    EXPECT_GT(us, 250.0 / 4.0);
    EXPECT_LT(us, 250.0 * 4.0);
}

TEST(ServingArrival, RateProfilesMatchConfiguredShape)
{
    ServingConfig sc;
    sc.requests = 1;
    sc.ratePerUs = 4.0;
    const double mean = 4.0 / (1000.0 * ticksPerNs);

    serve::ArrivalProcess flat(sc, 1);
    EXPECT_DOUBLE_EQ(flat.rateAt(0), mean);
    EXPECT_DOUBLE_EQ(flat.rateAt(1234567), mean);

    sc.profile = RateProfile::Bursty;
    sc.burstFactor = 4.0;
    sc.burstFraction = 0.1;
    sc.burstPeriodUs = 50.0;
    serve::ArrivalProcess bursty(sc, 1);
    const Tick period = static_cast<Tick>(50.0 * 1000.0 * ticksPerNs);
    // Start of the period is the burst phase at burstFactor x mean;
    // past the burst fraction the baseline rate keeps the mean.
    EXPECT_DOUBLE_EQ(bursty.rateAt(0), 4.0 * mean);
    EXPECT_LT(bursty.rateAt(period / 2), mean);
    EXPECT_DOUBLE_EQ(bursty.rateAt(period), 4.0 * mean);

    sc.profile = RateProfile::Diurnal;
    sc.diurnalPeriodUs = 200.0;
    sc.diurnalDepth = 0.8;
    serve::ArrivalProcess diurnal(sc, 1);
    const Tick cycle = static_cast<Tick>(200.0 * 1000.0 * ticksPerNs);
    double lo = mean, hi = mean;
    for (Tick t = 0; t <= cycle; t += cycle / 64) {
        double r = diurnal.rateAt(t);
        EXPECT_GE(r, mean * (1.0 - 0.8) - 1e-18);
        EXPECT_LE(r, mean * (1.0 + 0.8) + 1e-18);
        lo = std::min(lo, r);
        hi = std::max(hi, r);
    }
    EXPECT_LT(lo, 0.5 * mean);
    EXPECT_GT(hi, 1.5 * mean);
}

// ---- LatencyRecorder --------------------------------------------------

TEST(ServingLatency, NearestRankPercentilesOnKnownSet)
{
    serve::LatencyRecorder rec(90);
    for (Tick v = 1; v <= 100; ++v)
        rec.record(v);
    EXPECT_EQ(rec.samples(), 100u);
    EXPECT_EQ(rec.percentile(0.50), 50u);
    EXPECT_EQ(rec.percentile(0.95), 95u);
    EXPECT_EQ(rec.percentile(0.99), 99u);
    EXPECT_EQ(rec.percentile(0.999), 100u);
    EXPECT_EQ(rec.percentile(1.0), 100u);
    EXPECT_DOUBLE_EQ(rec.meanTicks(), 50.5);
    EXPECT_EQ(rec.sloMisses(), 10u); // 91..100 exceed the SLO of 90
}

// ---- ZipfianSampler ---------------------------------------------------

TEST(ServingZipf, UniformDegenerateCaseAndSkewOrdering)
{
    serve::ZipfianSampler uniform(10, 0.0);
    EXPECT_EQ(uniform.numKeys(), 10u);
    for (std::uint64_t k = 0; k < 10; ++k)
        EXPECT_NEAR(uniform.probabilityOf(k), 0.1, 1e-12);
    EXPECT_EQ(uniform.keyFor(0.0), 0u);
    EXPECT_EQ(uniform.keyFor(0.55), 5u);

    serve::ZipfianSampler skewed(10, 0.99);
    double total = 0.0;
    for (std::uint64_t k = 0; k < 10; ++k) {
        total += skewed.probabilityOf(k);
        if (k > 0) {
            EXPECT_LT(skewed.probabilityOf(k),
                      skewed.probabilityOf(k - 1));
        }
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
}

// ---- Full serving runs ------------------------------------------------

TEST(Serving, KvStreamServesAndVerifies)
{
    auto cfg = servingConfig(Design::O);
    RunMetrics m = serveOnce(cfg, WorkloadSpec::tiny("kv"));

    EXPECT_EQ(m.servingInjected, cfg.serving.requests);
    expectConserved(m);
    EXPECT_GT(m.servingCompletedDirect, 0u);
    EXPECT_GT(m.servingWindows, 0u);
    EXPECT_EQ(m.epochs, m.servingWindows);
    EXPECT_GT(m.servingP50Ns, 0.0);
    EXPECT_GE(m.servingP95Ns, m.servingP50Ns);
    EXPECT_GE(m.servingP99Ns, m.servingP95Ns);
    EXPECT_GE(m.servingP999Ns, m.servingP99Ns);
    EXPECT_GT(m.servingMeanNs, 0.0);
    EXPECT_GT(m.servingGoodputQps, 0.0);
    EXPECT_GE(m.servingSloMissRate, 0.0);
    EXPECT_LE(m.servingSloMissRate, 1.0);
}

TEST(Serving, EveryQueryServiceWorkloadServes)
{
    // All four point-query services accept the open-loop stream and
    // still pass their own end-to-end answer verification.
    for (const char *name : {"kv", "knn", "sssp", "astar"}) {
        SCOPED_TRACE(name);
        auto cfg = servingConfig(Design::B, 300);
        RunMetrics m = serveOnce(cfg, WorkloadSpec::tiny(name));
        EXPECT_EQ(m.servingInjected, 300u);
        expectConserved(m);
        EXPECT_GT(m.servingCompletedDirect, 0u);
    }
}

TEST(Serving, DeterministicAcrossRuns)
{
    // Two independent simulator instances on the same serving config
    // must produce byte-identical full stats dumps — the serving
    // analogue of NdpSystem.DeterministicAcrossRuns.
    auto dump = [] {
        auto cfg = servingConfig(Design::Sl, 1500);
        cfg.serving.tenants = 3;
        NdpSystem sys(cfg);
        auto wl = makeWorkload(WorkloadSpec::tiny("kv"));
        sys.run(*wl);
        EXPECT_TRUE(wl->verify());
        std::ostringstream oss;
        sys.statsRegistry().dump(oss);
        return oss.str();
    };
    std::string a = dump(), b = dump();
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("serving"), std::string::npos);
}

TEST(Serving, AdmissionControlRejectsOnlyWhenBounded)
{
    // A one-slot admission window under a fast stream must reject;
    // the unbounded window must never reject and must complete all.
    auto bounded = servingConfig(Design::B, 800);
    bounded.serving.ratePerUs = 16.0;
    bounded.serving.maxOutstanding = 1;
    RunMetrics mb = serveOnce(bounded, WorkloadSpec::tiny("kv"));
    EXPECT_GT(mb.servingRejected, 0u);
    expectConserved(mb);

    auto unbounded = servingConfig(Design::B, 800);
    unbounded.serving.ratePerUs = 16.0;
    unbounded.serving.maxOutstanding = 0;
    RunMetrics mu = serveOnce(unbounded, WorkloadSpec::tiny("kv"));
    EXPECT_EQ(mu.servingRejected, 0u);
    EXPECT_EQ(mu.servingCompletedDirect + mu.servingCompletedRecovered,
              mu.servingInjected);
}

TEST(Serving, BurstyAndDiurnalProfilesConserve)
{
    for (RateProfile p : {RateProfile::Bursty, RateProfile::Diurnal}) {
        SCOPED_TRACE(static_cast<int>(p));
        auto cfg = servingConfig(Design::O, 1200);
        cfg.serving.profile = p;
        RunMetrics m = serveOnce(cfg, WorkloadSpec::tiny("kv"));
        EXPECT_EQ(m.servingInjected, 1200u);
        expectConserved(m);
        EXPECT_GT(m.servingCompletedDirect, 0u);
    }
}

TEST(Serving, MultiTenantWeightsShowUpInStats)
{
    auto cfg = servingConfig(Design::O, 1500);
    cfg.serving.tenants = 3;
    cfg.serving.tenantWeights = {8.0, 1.0, 1.0};
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("kv"));
    RunMetrics m = sys.run(*wl);
    EXPECT_TRUE(wl->verify());
    expectConserved(m);

    std::ostringstream oss;
    sys.statsRegistry().dump(oss);
    const std::string dump = oss.str();
    EXPECT_NE(dump.find("tenantCompleted"), std::string::npos);
    EXPECT_NE(dump.find("tenantP99Ns"), std::string::npos);
}

TEST(Serving, ConservationHoldsUnderUnitFailure)
{
    // A unit dies mid-stream: in-flight requests ride the recovery
    // path (redispatch) and the conservation relation must still
    // close — nothing lost, nothing double-counted.
    auto cfg = servingConfig(Design::Sl, 1500);
    cfg.fault.unitFailure.units = {1};
    cfg.fault.unitFailure.failAtNs = 2000.0;
    RunMetrics m = serveOnce(cfg, WorkloadSpec::tiny("kv"));
    EXPECT_EQ(m.servingInjected, 1500u);
    expectConserved(m);
    EXPECT_GT(m.servingCompletedDirect, 0u);
}

TEST(Serving, BatchRunDumpsNoServingNode)
{
    // Serving disabled: the stats tree must not even contain the
    // serving node (registration is gated, not zero-filled), and all
    // serving metrics stay zero.
    SystemConfig cfg;
    cfg = applyDesign(cfg, Design::O);
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("kv"));
    RunMetrics m = sys.run(*wl);
    EXPECT_TRUE(wl->verify());
    EXPECT_EQ(m.servingInjected, 0u);
    EXPECT_EQ(m.servingRejected, 0u);
    EXPECT_EQ(m.servingCompletedDirect, 0u);
    EXPECT_EQ(m.servingWindows, 0u);
    EXPECT_EQ(m.servingGoodputQps, 0.0);

    std::ostringstream oss;
    sys.statsRegistry().dump(oss);
    EXPECT_EQ(oss.str().find("serving"), std::string::npos);
}

} // namespace abndp
