/** @file Tests for the per-unit Traveller Cache storage. */

#include <gtest/gtest.h>

#include "cache/traveller_cache.hh"

namespace abndp
{

namespace
{

SystemConfig
smallCfg(double bypass = 0.0)
{
    SystemConfig cfg;
    cfg.traveller.style = CacheStyle::TravellerSramTags;
    cfg.traveller.bypassProb = bypass;
    return cfg;
}

} // namespace

TEST(TravellerCache, InsertThenLookup)
{
    auto cfg = smallCfg();
    TravellerCache tc(cfg, 1);
    EXPECT_FALSE(tc.lookup(0x1000));
    EXPECT_TRUE(tc.maybeInsert(0x1000));
    EXPECT_TRUE(tc.lookup(0x1000));
    EXPECT_EQ(tc.hits(), 1u);
    EXPECT_EQ(tc.misses(), 1u);
}

TEST(TravellerCache, BypassProbabilityRoughlyHolds)
{
    auto cfg = smallCfg(0.4);
    TravellerCache tc(cfg, 7);
    int bypassed = 0;
    const int trials = 10000;
    for (int i = 0; i < trials; ++i)
        bypassed += tc.maybeInsert(static_cast<Addr>(i) * 64) ? 0 : 1;
    EXPECT_NEAR(static_cast<double>(bypassed) / trials, 0.4, 0.03);
    EXPECT_EQ(tc.bypasses(), static_cast<std::uint64_t>(bypassed));
}

TEST(TravellerCache, BulkInvalidateClearsEverything)
{
    auto cfg = smallCfg();
    TravellerCache tc(cfg, 1);
    for (Addr a = 0; a < 100 * 64; a += 64)
        tc.maybeInsert(a);
    EXPECT_GT(tc.occupancy(), 0u);
    tc.bulkInvalidate();
    EXPECT_EQ(tc.occupancy(), 0u);
    EXPECT_FALSE(tc.contains(0));
}

TEST(TravellerCache, SetNeverExceedsAssociativity)
{
    auto cfg = smallCfg();
    cfg.traveller.assoc = 4;
    TravellerCache tc(cfg, 1);
    // Insert far more blocks than capacity; no set may overflow, so
    // occupancy stays bounded and evictions occur.
    std::uint64_t n = tc.numSets() / 16;
    for (Addr a = 0; a < n * 64 * 64; a += 64)
        tc.maybeInsert(a);
    EXPECT_LE(tc.occupancy(), tc.capacityBlocks());
}

TEST(TravellerCache, EvictionReplacesWithinSet)
{
    auto cfg = smallCfg();
    cfg.memBytesPerUnit = 1ull << 20; // tiny cache: 256 blocks
    cfg.traveller.ratioDenom = 64;
    cfg.traveller.assoc = 1;
    TravellerCache tc(cfg, 1);
    ASSERT_EQ(tc.numSets(), 256u);
    // Fill aggressively; with assoc 1, evictions must happen.
    for (Addr a = 0; a < 256 * 64 * 8; a += 64)
        tc.maybeInsert(a);
    EXPECT_GT(tc.evictions(), 0u);
    EXPECT_LE(tc.occupancy(), 256u);
}

TEST(TravellerCache, ReinsertIsIdempotent)
{
    auto cfg = smallCfg();
    TravellerCache tc(cfg, 1);
    tc.maybeInsert(0x40);
    tc.maybeInsert(0x40);
    EXPECT_EQ(tc.occupancy(), 1u);
}

TEST(TravellerCache, DeterministicAcrossInstances)
{
    auto cfg = smallCfg(0.4);
    TravellerCache a(cfg, 42), b(cfg, 42);
    for (int i = 0; i < 1000; ++i) {
        Addr addr = static_cast<Addr>(i) * 64;
        ASSERT_EQ(a.maybeInsert(addr), b.maybeInsert(addr));
    }
}

} // namespace abndp
