/** @file Unit tests for the deterministic RNG and the mix64 hash. */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hh"

namespace abndp
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 128ull, 1000000ull})
        for (int i = 0; i < 2000; ++i)
            ASSERT_LT(rng.below(bound), bound);
}

TEST(Rng, BelowCoversAllValues)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 5000; ++i)
        seen.insert(rng.below(16));
    EXPECT_EQ(seen.size(), 16u);
}

TEST(Rng, UniformIsInUnitInterval)
{
    Rng rng(3);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double v = rng.uniform();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(5);
    int hits = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        hits += rng.chance(0.4) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.4, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(9);
    const int n = 50000;
    double sum = 0.0, sumSq = 0.0;
    for (int i = 0; i < n; ++i) {
        double v = rng.gaussian();
        sum += v;
        sumSq += v * v;
    }
    double mean = sum / n;
    double var = sumSq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.03);
    EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Mix64, IsDeterministicAndSpreads)
{
    EXPECT_EQ(mix64(42), mix64(42));
    // Consecutive inputs should map to well-separated outputs: count
    // differing bits between neighbors.
    int low = 64;
    for (std::uint64_t i = 0; i < 100; ++i) {
        int bits = __builtin_popcountll(mix64(i) ^ mix64(i + 1));
        low = std::min(low, bits);
    }
    EXPECT_GT(low, 10);
}

TEST(Rng, ReseedResets)
{
    Rng rng(77);
    std::uint64_t first = rng.next();
    rng.next();
    rng.reseed(77);
    EXPECT_EQ(rng.next(), first);
}

} // namespace abndp
