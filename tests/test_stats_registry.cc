/**
 * @file
 * Unit tests for the hierarchical stats registry (src/obs): flattened
 * naming, value formatting, interval-delta semantics, and the stat-type
 * adapters (counter, scalar, distribution, histogram, vector, formula).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"
#include "obs/stats_registry.hh"

namespace
{

using namespace abndp;

std::string
dumpToString(const obs::StatsRegistry &reg)
{
    std::ostringstream oss;
    reg.dump(oss);
    return oss.str();
}

TEST(StatsRegistry, FormatIntegerValuesArePlainDecimal)
{
    EXPECT_EQ(obs::formatStatValue(0.0, true), "0");
    EXPECT_EQ(obs::formatStatValue(42.0, true), "42");
    EXPECT_EQ(obs::formatStatValue(1e15, true), "1000000000000000");
}

TEST(StatsRegistry, FormatFloatValuesAreFixedSixDigits)
{
    EXPECT_EQ(obs::formatStatValue(0.0, false), "0.000000");
    EXPECT_EQ(obs::formatStatValue(0.5, false), "0.500000");
    EXPECT_EQ(obs::formatStatValue(1234.5678901, false), "1234.567890");
    // Fixed notation even for values the default format would print in
    // scientific notation.
    EXPECT_EQ(obs::formatStatValue(1e-7, false), "0.000000");
}

TEST(StatsRegistry, FlattenedNamesFollowTheHierarchy)
{
    obs::StatsRegistry reg;
    stats::Counter c;
    reg.root().child("mem").child("dram").addCounter("reads", &c);
    ++c;

    std::string dump = dumpToString(reg);
    EXPECT_NE(dump.find("mem.dram.reads"), std::string::npos);
    EXPECT_NE(dump.find(" 1\n"), std::string::npos);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(StatsRegistry, ChildReturnsTheSameNodeForTheSameName)
{
    obs::StatsRegistry reg;
    obs::StatNode &a = reg.root().child("grp");
    obs::StatNode &b = reg.root().child("grp");
    EXPECT_EQ(&a, &b);
}

TEST(StatsRegistry, DistributionFlattensIntoFiveStats)
{
    obs::StatsRegistry reg;
    stats::Distribution d;
    d.sample(1.0);
    d.sample(3.0);
    reg.root().addDistribution("lat", &d);

    EXPECT_EQ(reg.size(), 5u);
    std::string dump = dumpToString(reg);
    EXPECT_NE(dump.find("lat.samples"), std::string::npos);
    EXPECT_NE(dump.find("lat.mean"), std::string::npos);
    EXPECT_NE(dump.find("lat.min"), std::string::npos);
    EXPECT_NE(dump.find("lat.max"), std::string::npos);
    EXPECT_NE(dump.find("lat.stddev"), std::string::npos);
    EXPECT_NE(dump.find("2.000000"), std::string::npos); // mean
}

TEST(StatsRegistry, HistogramFlattensIntoBucketsPlusOverflow)
{
    obs::StatsRegistry reg;
    stats::Histogram h(0.0, 10.0, 4);
    h.sample(1.0);  // bucket0
    h.sample(9.0);  // bucket3
    h.sample(-1.0); // underflow
    h.sample(11.0); // overflow
    reg.root().addHistogram("hist", &h);

    EXPECT_EQ(reg.size(), 6u);
    std::string dump = dumpToString(reg);
    EXPECT_NE(dump.find("hist.bucket0"), std::string::npos);
    EXPECT_NE(dump.find("hist.bucket3"), std::string::npos);
    EXPECT_NE(dump.find("hist.underflow"), std::string::npos);
    EXPECT_NE(dump.find("hist.overflow"), std::string::npos);
}

TEST(StatsRegistry, VectorFlattensPerElement)
{
    obs::StatsRegistry reg;
    double vals[3] = {1.0, 2.0, 3.0};
    reg.root().addVector(
        "perUnit", {"0", "1", "2"},
        [&vals](std::size_t i) { return vals[i]; },
        obs::StatKind::Gauge, false);

    EXPECT_EQ(reg.size(), 3u);
    std::string dump = dumpToString(reg);
    EXPECT_NE(dump.find("perUnit.0"), std::string::npos);
    EXPECT_NE(dump.find("perUnit.2"), std::string::npos);
}

TEST(StatsRegistry, FormulaEvaluatesAtDumpTime)
{
    obs::StatsRegistry reg;
    double v = 1.0;
    reg.root().addFormula("ratio", [&v] { return v; });

    EXPECT_NE(dumpToString(reg).find("1.000000"), std::string::npos);
    v = 0.25;
    EXPECT_NE(dumpToString(reg).find("0.250000"), std::string::npos);
}

TEST(StatsRegistry, IntervalCountersPrintDeltas)
{
    obs::StatsRegistry reg;
    stats::Counter c;
    stats::Scalar g;
    reg.root().addCounter("events", &c);
    reg.root().addScalar("level", &g);

    c += 10;
    g.set(5.0);
    reg.beginInterval();

    c += 7;
    g.set(9.0);
    std::ostringstream first;
    reg.dumpInterval(first, "interval 1");
    // Counter prints the delta since beginInterval; gauge the current.
    EXPECT_NE(first.str().find("interval 1"), std::string::npos);
    EXPECT_NE(first.str().find(" 7\n"), std::string::npos);
    EXPECT_NE(first.str().find("9.000000"), std::string::npos);

    // A second interval with no counter activity prints a zero delta.
    std::ostringstream second;
    reg.dumpInterval(second, "interval 2");
    EXPECT_NE(second.str().find(" 0\n"), std::string::npos);
    EXPECT_NE(second.str().find("9.000000"), std::string::npos);
}

TEST(StatsRegistry, DumpIsStableAcrossCalls)
{
    obs::StatsRegistry reg;
    stats::Counter c;
    reg.root().child("a").addCounter("x", &c);
    reg.root().child("b").addCounter("y", &c);
    EXPECT_EQ(dumpToString(reg), dumpToString(reg));
}

} // namespace
