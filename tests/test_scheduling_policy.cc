/**
 * @file
 * Unit tests for the SchedulingPolicy strategy objects: keep/forward
 * decisions on a fixed task stream, the window/stealing capability
 * flags each Table-2 composition advertises, and delegation through
 * the work-stealing decorator.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/camp_mapping.hh"
#include "mem/address_map.hh"
#include "net/topology.hh"
#include "sched/policies/local_policy.hh"
#include "sched/policies/mem_match_policy.hh"
#include "sched/policies/work_stealing_policy.hh"
#include "sched/scheduler.hh"

namespace abndp
{

namespace
{

struct PolicyFixture
{
    explicit PolicyFixture(SchedPolicy policy, bool stealing = false,
                           CacheStyle style = CacheStyle::None)
    {
        cfg.sched.policy = policy;
        cfg.sched.workStealing = stealing;
        cfg.traveller.style = style;
        cfg.sched.hybridAlpha = 3.0;
        cfg.sched.autoAlpha = false;
        topo = std::make_unique<Topology>(cfg);
        amap = std::make_unique<AddressMap>(cfg);
        camps = std::make_unique<CampMapping>(cfg, *topo, *amap);
        sched = std::make_unique<Scheduler>(cfg, *topo, *camps);
    }

    Task
    taskOn(UnitId home, std::initializer_list<UnitId> reads = {})
    {
        Task t;
        t.hint.data.push_back(amap->unitBase(home) + 64);
        t.mainHome = home;
        for (UnitId r : reads)
            t.hint.data.push_back(amap->unitBase(r) + 64);
        t.loadEstimate = sched->estimateLoad(t);
        return t;
    }

    SystemConfig cfg;
    std::unique_ptr<Topology> topo;
    std::unique_ptr<AddressMap> amap;
    std::unique_ptr<CampMapping> camps;
    std::unique_ptr<Scheduler> sched;
};

} // namespace

TEST(SchedulingPolicy, LocalAlwaysKeepsAtMainHome)
{
    PolicyFixture f(SchedPolicy::Colocate);
    LocalPolicy local;
    EXPECT_STREQ(local.name(), "local");
    EXPECT_FALSE(local.usesSchedulingWindow());
    EXPECT_FALSE(local.stealing());
    // A fixed stream of tasks from different creators: placement is
    // the main element's home every time, never the creator.
    for (UnitId home : {0u, 7u, 42u, 99u}) {
        Task t = f.taskOn(home, {1, 2});
        for (UnitId creator : {0u, 3u, 120u})
            EXPECT_EQ(local.choose(*f.sched, t, creator), home);
    }
}

TEST(SchedulingPolicy, MemMatchForwardsToDataMajority)
{
    PolicyFixture f(SchedPolicy::LowestDistance);
    MemMatchPolicy mm;
    EXPECT_STREQ(mm.name(), "memmatch");
    EXPECT_FALSE(mm.usesSchedulingWindow());
    // Main element at unit 0 but the bulk of the reads live in the far
    // corner stack: the policy forwards there instead of keeping.
    Task t = f.taskOn(0, {120, 121, 122, 123, 124});
    UnitId dst = mm.choose(*f.sched, t, 0);
    EXPECT_TRUE(f.topo->sameStack(dst, 120));
    // All data local to the creator: the task is kept.
    Task local = f.taskOn(5);
    EXPECT_EQ(mm.choose(*f.sched, local, 5), 5u);
}

TEST(SchedulingPolicy, ConfiguredPolicyMatchesEnum)
{
    PolicyFixture b(SchedPolicy::Colocate);
    EXPECT_STREQ(b.sched->policy().name(), "local");
    EXPECT_FALSE(b.sched->usesSchedulingWindow());
    EXPECT_FALSE(b.sched->stealingEnabled());

    PolicyFixture sm(SchedPolicy::LowestDistance);
    EXPECT_STREQ(sm.sched->policy().name(), "memmatch");
    EXPECT_FALSE(sm.sched->usesSchedulingWindow());

    PolicyFixture sh(SchedPolicy::Hybrid);
    EXPECT_STREQ(sh.sched->policy().name(), "hybrid");
    EXPECT_TRUE(sh.sched->usesSchedulingWindow());
    EXPECT_FALSE(sh.sched->stealingEnabled());
}

TEST(SchedulingPolicy, StealingDecoratorDelegatesPlacement)
{
    PolicyFixture f(SchedPolicy::LowestDistance, /*stealing=*/true);
    const SchedulingPolicy &p = f.sched->policy();
    EXPECT_STREQ(p.name(), "memmatch+steal");
    EXPECT_TRUE(f.sched->stealingEnabled());
    EXPECT_FALSE(f.sched->usesSchedulingWindow());
    ASSERT_NE(p.inner(), nullptr);
    EXPECT_STREQ(p.inner()->name(), "memmatch");

    // The decorator must not change placement: compare against a bare
    // memmatch scheduler on the same task stream.
    PolicyFixture bare(SchedPolicy::LowestDistance);
    for (UnitId home : {0u, 33u, 77u}) {
        Task td = f.taskOn(home, {home, 120, 121});
        Task tb = bare.taskOn(home, {home, 120, 121});
        EXPECT_EQ(f.sched->choose(td, 2), bare.sched->choose(tb, 2));
    }
}

TEST(SchedulingPolicy, HybridKeepsWhenBalancedForwardsWhenLoaded)
{
    PolicyFixture f(SchedPolicy::Hybrid);
    // Uniform load: data locality wins, the home keeps the task.
    for (UnitId u = 0; u < f.sched->unitCount(); ++u)
        f.sched->onEnqueued(u, 100.0, u);
    f.sched->exchangeSnapshot();
    Task local = f.taskOn(9);
    EXPECT_EQ(f.sched->choose(local, 9), 9u);

    // Overload the home massively: after a snapshot refresh the
    // costload term forwards a home-bound task created elsewhere.
    PolicyFixture g(SchedPolicy::Hybrid);
    for (UnitId u = 0; u < g.sched->unitCount(); ++u)
        g.sched->onEnqueued(u, u == 9 ? 100000.0 : 10.0, u);
    g.sched->exchangeSnapshot();
    Task t = g.taskOn(9);
    EXPECT_NE(g.sched->choose(t, 3), 9u);
}

} // namespace abndp
