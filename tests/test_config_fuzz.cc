/**
 * @file
 * The seeded config fuzzer module (src/check/config_fuzz.hh): sampler
 * validity over many draws, repro JSON round-trip, greedy minimizer
 * behaviour on a synthetic predicate, and a full runFuzzCase smoke.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "check/config_fuzz.hh"
#include "common/rng.hh"

namespace abndp
{

TEST(ConfigFuzz, BaselineIsValid)
{
    SystemConfig cfg = check::minimalFuzzBaseline();
    EXPECT_TRUE(check::fuzzConfigValid(cfg));
    cfg.validate(); // would fatal() on inconsistency
    EXPECT_TRUE(cfg.checkInvariants);
}

TEST(ConfigFuzz, SamplerProducesValidVariedConfigs)
{
    Rng rng(0xf022u);
    std::set<std::string> jsons;
    for (int i = 0; i < 200; ++i) {
        check::FuzzCase c = check::sampleFuzzCase(rng);
        ASSERT_TRUE(check::fuzzConfigValid(c.cfg)) << "draw " << i;
        c.cfg.validate(); // must never fatal(): validity by construction
        EXPECT_TRUE(c.cfg.checkInvariants);
        EXPECT_EQ(c.cfg.numUnits() % c.cfg.numGroups(), 0u);
        EXPECT_FALSE(c.workload.empty());
        jsons.insert(check::fuzzCaseToJson(c));
    }
    // The space is large; 200 draws collapsing to a handful of
    // distinct configs would mean the sampler is broken.
    EXPECT_GT(jsons.size(), 150u);
}

TEST(ConfigFuzz, SamplerIsDeterministic)
{
    Rng a(77), b(77);
    for (int i = 0; i < 20; ++i) {
        check::FuzzCase ca = check::sampleFuzzCase(a);
        check::FuzzCase cb = check::sampleFuzzCase(b);
        EXPECT_EQ(check::fuzzCaseToJson(ca), check::fuzzCaseToJson(cb));
        EXPECT_EQ(ca.workload, cb.workload);
    }
}

TEST(ConfigFuzz, JsonRoundTripsEveryKnob)
{
    Rng rng(0x10adu);
    for (int i = 0; i < 50; ++i) {
        check::FuzzCase c = check::sampleFuzzCase(rng);
        std::string json = check::fuzzCaseToJson(c);
        check::FuzzCase back = check::fuzzCaseFromJson(json);
        EXPECT_EQ(back.workload, c.workload);
        // Re-serialization canonicalizes: equality here means every
        // knob survived the trip (including hexfloat doubles).
        EXPECT_EQ(check::fuzzCaseToJson(back), json) << "draw " << i;
    }
}

TEST(ConfigFuzzDeath, JsonRejectsUnknownKeyAndGarbage)
{
    EXPECT_DEATH(check::fuzzCaseFromJson("{\"bogusKnob\": \"1\"}"),
                 "unknown key");
    EXPECT_DEATH(check::fuzzCaseFromJson("no pairs here"),
                 "no key/value pairs");
}

TEST(ConfigFuzz, MetricsFingerprintSeparatesFields)
{
    RunMetrics a;
    a.tasks = 10;
    RunMetrics b = a;
    EXPECT_EQ(check::metricsFingerprint(a), check::metricsFingerprint(b));
    b.hostSeconds = 123.0; // excluded: wall clock is never deterministic
    EXPECT_EQ(check::metricsFingerprint(a), check::metricsFingerprint(b));
    b.interHops = 1;
    EXPECT_NE(check::metricsFingerprint(a), check::metricsFingerprint(b));
}

TEST(ConfigFuzz, MinimizerReachesBaselineWhenEverythingFails)
{
    // If the predicate always fails, every knob resets and the
    // minimizer must land exactly on the minimal baseline.
    Rng rng(0x3333u);
    check::FuzzCase c = check::sampleFuzzCase(rng);
    SystemConfig minimized = check::minimizeConfig(
        c.cfg, [](const SystemConfig &) { return true; });
    check::FuzzCase base;
    base.cfg = check::minimalFuzzBaseline();
    base.workload = c.workload;
    check::FuzzCase got;
    got.cfg = minimized;
    got.workload = c.workload;
    EXPECT_EQ(check::fuzzCaseToJson(got), check::fuzzCaseToJson(base));
}

TEST(ConfigFuzz, MinimizerPreservesTheFailureTrigger)
{
    // Synthetic failure that depends on exactly two knobs; everything
    // else must reset, those two must survive.
    Rng rng(0x4444u);
    check::FuzzCase c;
    do {
        c = check::sampleFuzzCase(rng);
    } while (c.cfg.unitsPerStack == 2 ||
             c.cfg.net.intraTopology != IntraTopology::Ring);
    auto trigger = [](const SystemConfig &cfg) {
        return cfg.unitsPerStack == 4 &&
            cfg.net.intraTopology == IntraTopology::Ring;
    };
    ASSERT_TRUE(trigger(c.cfg));
    SystemConfig minimized = check::minimizeConfig(c.cfg, trigger);
    EXPECT_TRUE(trigger(minimized));
    // Every knob not implicated in the trigger resets to baseline.
    SystemConfig base = check::minimalFuzzBaseline();
    EXPECT_EQ(minimized.meshX, base.meshX);
    EXPECT_EQ(minimized.meshY, base.meshY);
    EXPECT_EQ(minimized.seed, base.seed);
    EXPECT_EQ(minimized.memBytesPerUnit, base.memBytesPerUnit);
    EXPECT_EQ(minimized.traveller.campCount, base.traveller.campCount);
}

TEST(ConfigFuzz, MinimizerSkipsInvalidIntermediates)
{
    // Start from a config whose group count equals its unit count
    // (>= 8): resetting a mesh dimension or unitsPerStack alone would
    // break the divisibility constraint, so the minimizer must reset
    // campCount first (fixpoint sweep) — and never hand the predicate
    // an invalid config.
    Rng rng(0x5555u);
    check::FuzzCase c;
    do {
        c = check::sampleFuzzCase(rng);
    } while (c.cfg.numGroups() != c.cfg.numUnits() ||
             c.cfg.numUnits() < 8);
    SystemConfig minimized = check::minimizeConfig(
        c.cfg, [](const SystemConfig &cfg) {
            EXPECT_TRUE(check::fuzzConfigValid(cfg));
            return true;
        });
    EXPECT_TRUE(check::fuzzConfigValid(minimized));
    EXPECT_EQ(minimized.numUnits() % minimized.numGroups(), 0u);
}

TEST(ConfigFuzz, PrunedScoringOnTinyMachineRegression)
{
    // Found by fuzz_configs --seed=1 (case 2): the pruned-scoring
    // most-idle hint sorted its nominal 8 entries past the end of the
    // unit list on machines with fewer than 8 units — heap overflow.
    check::FuzzCase c;
    c.cfg = check::minimalFuzzBaseline(); // 2 units, far below 8
    c.cfg.sched.exhaustiveScoring = false;
    c.workload = "gcn";
    check::FuzzReport rep = check::runFuzzCase(c, 1);
    EXPECT_TRUE(rep.ok) << rep.message;
}

TEST(ConfigFuzz, SamplerExercisesBothMemBackends)
{
    // The mem-backend axis fires for ~1 draw in 3; over 200 draws both
    // backends must appear, and every DDR draw must carry knobs that
    // survive validate() (checked in SamplerProducesValidVariedConfigs
    // via the shared loop — here we only pin the axis coverage).
    Rng rng(0xddc0u);
    int nDdr = 0, nMeter = 0;
    for (int i = 0; i < 200; ++i) {
        check::FuzzCase c = check::sampleFuzzCase(rng);
        if (c.cfg.dram.backend == MemBackendKind::Ddr) {
            ++nDdr;
            EXPECT_EQ(c.cfg.dram.banks % c.cfg.dram.bankGroups, 0u);
            EXPECT_EQ(c.cfg.dram.rowBytes % c.cfg.dram.burstBytes, 0u);
            EXPECT_GE(c.cfg.dram.tRasNs, c.cfg.dram.tRcdNs);
        } else {
            ++nMeter;
        }
    }
    EXPECT_GT(nDdr, 30);
    EXPECT_GT(nMeter, 60);
}

TEST(ConfigFuzz, RunFuzzCaseDdrSmoke)
{
    // One end-to-end DDR case through all six designs with checkers
    // armed: exercises the bank state machines, the tFAW ACT-window
    // audit, and the differential-visible counters under the full
    // metamorphic harness (determinism + thread invariance).
    check::FuzzCase c;
    c.cfg = check::minimalFuzzBaseline();
    c.cfg.dram.backend = MemBackendKind::Ddr;
    c.cfg.dram.pagePolicy = PagePolicy::Adaptive;
    c.cfg.dram.addrMap = DramAddrMapKind::RowColumnBank;
    c.workload = "pr";
    check::FuzzReport rep = check::runFuzzCase(c, 2);
    EXPECT_TRUE(rep.ok) << rep.message;
}

TEST(ConfigFuzz, RunFuzzCaseSmoke)
{
    // One real end-to-end case through all six NDP designs, twice
    // (sequential + 2-thread grid), with checkers armed.
    check::FuzzCase c;
    c.cfg = check::minimalFuzzBaseline();
    c.cfg.meshX = 2; // exercise inter-stack hops too
    c.workload = "pr";
    check::FuzzReport rep = check::runFuzzCase(c, 2);
    EXPECT_TRUE(rep.ok) << rep.message;
    EXPECT_TRUE(rep.message.empty());
}

} // namespace abndp
