/** @file Tests for the Traveller Cache camp-location mapping. */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cache/camp_mapping.hh"
#include "common/rng.hh"
#include "mem/address_map.hh"
#include "net/topology.hh"

namespace abndp
{

namespace
{

struct CampFixture
{
    explicit CampFixture(bool skewed = true, std::uint32_t camps = 3)
    {
        cfg.traveller.campCount = camps;
        cfg.traveller.skewedMapping = skewed;
        cfg.traveller.style = CacheStyle::TravellerSramTags;
        topo = std::make_unique<Topology>(cfg);
        amap = std::make_unique<AddressMap>(cfg);
        camps_ = std::make_unique<CampMapping>(cfg, *topo, *amap);
    }

    SystemConfig cfg;
    std::unique_ptr<Topology> topo;
    std::unique_ptr<AddressMap> amap;
    std::unique_ptr<CampMapping> camps_;
};

} // namespace

TEST(CampMapping, OneCandidatePerGroup)
{
    CampFixture f;
    CandidateList cl;
    f.camps_->candidates(0x12345678, cl);
    EXPECT_EQ(cl.n, 4u);
    std::set<GroupId> groups;
    for (std::uint32_t i = 0; i < cl.n; ++i)
        groups.insert(f.topo->groupOf(cl.loc[i]));
    EXPECT_EQ(groups.size(), 4u);
}

TEST(CampMapping, HomeGroupUsesTheHomeItself)
{
    CampFixture f;
    Addr addr = f.amap->unitBase(42) + 0x1000;
    UnitId home = f.camps_->homeOf(addr);
    EXPECT_EQ(home, 42u);
    GroupId hg = f.topo->groupOf(home);
    EXPECT_EQ(f.camps_->locationInGroup(addr, hg), home);
}

TEST(CampMapping, DeterministicPerAddress)
{
    CampFixture a, b;
    for (Addr addr = 0; addr < 100 * 64; addr += 64)
        for (GroupId g = 0; g < 4; ++g)
            EXPECT_EQ(a.camps_->locationInGroup(addr, g),
                      b.camps_->locationInGroup(addr, g));
}

TEST(CampMapping, BlocksInSameLineShareCamps)
{
    CampFixture f;
    for (GroupId g = 0; g < 4; ++g)
        EXPECT_EQ(f.camps_->locationInGroup(0x1000, g),
                  f.camps_->locationInGroup(0x1010, g));
}

TEST(CampMapping, SkewedGroupsMapDifferently)
{
    CampFixture f(true);
    // Over many blocks, the camp indices within different groups must
    // differ for most blocks (that is the point of skewing).
    int same = 0, total = 0;
    for (Addr a = 0; a < 2000 * 64; a += 64) {
        UnitId home = f.camps_->homeOf(a);
        GroupId hg = f.topo->groupOf(home);
        GroupId g1 = (hg + 1) % 4, g2 = (hg + 2) % 4;
        UnitId c1 = f.camps_->locationInGroup(a, g1);
        UnitId c2 = f.camps_->locationInGroup(a, g2);
        // Compare the position inside the group.
        std::uint32_t i1 = 0, i2 = 0;
        for (std::uint32_t i = 0; i < f.topo->unitsPerGroup(); ++i) {
            if (f.topo->unitInGroup(g1, i) == c1)
                i1 = i;
            if (f.topo->unitInGroup(g2, i) == c2)
                i2 = i;
        }
        same += i1 == i2 ? 1 : 0;
        ++total;
    }
    // Random agreement would be ~1/32; allow some slack.
    EXPECT_LT(static_cast<double>(same) / total, 0.1);
}

TEST(CampMapping, IdenticalMappingUsesSameIndexInEveryGroup)
{
    CampFixture f(false);
    for (Addr a = 0; a < 200 * 64; a += 64) {
        UnitId home = f.camps_->homeOf(a);
        GroupId hg = f.topo->groupOf(home);
        std::set<std::uint32_t> idx;
        for (GroupId g = 0; g < 4; ++g) {
            if (g == hg)
                continue;
            UnitId c = f.camps_->locationInGroup(a, g);
            for (std::uint32_t i = 0; i < f.topo->unitsPerGroup(); ++i)
                if (f.topo->unitInGroup(g, i) == c)
                    idx.insert(i);
        }
        EXPECT_EQ(idx.size(), 1u) << "address " << a;
    }
}

TEST(CampMapping, CampsAreUniformlyDistributed)
{
    CampFixture f;
    std::map<UnitId, std::uint32_t> counts;
    const int blocks = 32000;
    for (int i = 0; i < blocks; ++i) {
        // Spread the homes uniformly so camp (and home) candidates can
        // be compared against a uniform expectation.
        Addr a = f.amap->unitBase(i % 128)
            + static_cast<Addr>(i / 128) * 64;
        CandidateList cl;
        f.camps_->candidates(a, cl);
        for (std::uint32_t c = 0; c < cl.n; ++c)
            ++counts[cl.loc[c]];
    }
    // Each unit should receive about blocks * 4 / 128 candidates.
    double expected = blocks * 4.0 / 128.0;
    for (const auto &[u, n] : counts) {
        EXPECT_GT(n, expected * 0.6);
        EXPECT_LT(n, expected * 1.6);
    }
}

TEST(CampMapping, NearestCandidateIsActuallyNearest)
{
    CampFixture f;
    Rng rng(1);
    for (int i = 0; i < 200; ++i) {
        Addr a = rng.below(1ull << 30) & ~63ull;
        auto from = static_cast<UnitId>(rng.below(128));
        UnitId nearest = f.camps_->nearestCandidate(a, from);
        CandidateList cl;
        f.camps_->candidates(a, cl);
        double best = f.topo->distanceCost(from, nearest);
        for (std::uint32_t c = 0; c < cl.n; ++c)
            EXPECT_LE(best, f.topo->distanceCost(from, cl.loc[c]));
    }
}

TEST(CampMapping, TagBitsMatchPaperArithmetic)
{
    // Section 4.3: 64GB capacity, 32768 sets -> 15 tag bits without the
    // camp restriction; 32 units/group saves 5 bits -> 10 bits; total
    // SRAM tag storage = 128k blocks x 10 bits = 160 kB.
    CampFixture f;
    EXPECT_EQ(f.camps_->tagBitsUnrestricted(), 15u);
    EXPECT_EQ(f.camps_->tagBits(), 10u);
    EXPECT_EQ(f.camps_->tagStorageBytes(), 160u * 1024);
}

TEST(CampMapping, TagStorageConstantWhenSystemScales)
{
    // Section 4.3 scalability: growing the stack count with C fixed
    // keeps the per-unit tag size constant.
    CampFixture small;
    SystemConfig big_cfg;
    big_cfg.meshX = big_cfg.meshY = 8;
    big_cfg.traveller.style = CacheStyle::TravellerSramTags;
    Topology big_topo(big_cfg);
    AddressMap big_amap(big_cfg);
    CampMapping big(big_cfg, big_topo, big_amap);
    EXPECT_EQ(small.camps_->tagStorageBytes(), big.tagStorageBytes());
}

} // namespace abndp
