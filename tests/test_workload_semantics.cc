/**
 * @file
 * Deep semantic checks on workload results — properties that must hold
 * for the *algorithms*, beyond matching the reference implementation —
 * plus executor-equivalence: the functional results must be bit-identical
 * whether tasks run through the trivial in-order executor or through the
 * full out-of-order NDP simulation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <queue>

#include "core/ndp_system.hh"
#include "workloads/astar.hh"
#include "workloads/bfs.hh"
#include "workloads/graph_gen.hh"
#include "workloads/pagerank.hh"
#include "workloads/sssp.hh"
#include "workloads/factory.hh"

namespace abndp
{

namespace
{

Graph
testGraph(bool undirected, std::uint32_t scale = 9)
{
    RmatParams p;
    p.scale = scale;
    p.edgeFactor = 8;
    p.undirected = undirected;
    return makeRmatGraph(p);
}

void
runImmediate(Workload &wl)
{
    SystemConfig cfg;
    SimAllocator alloc(cfg);
    wl.setup(alloc);
    ImmediateExecutor exec(wl);
    wl.emitInitialTasks(exec);
    exec.runToCompletion();
}

} // namespace

TEST(Semantics, BfsDistancesAreLipschitzAcrossEdges)
{
    // |dist(u) - dist(v)| <= 1 for every edge of an undirected graph.
    Graph g = testGraph(true);
    BfsWorkload bfs(g, 0);
    runImmediate(bfs);
    const auto &dist = bfs.distances();
    for (std::uint32_t v = 0; v < g.numVertices(); ++v) {
        if (dist[v] == ~0u)
            continue;
        for (std::uint32_t n : g.neighbors(v)) {
            ASSERT_NE(dist[n], ~0u) << "reachable neighbor unreached";
            ASSERT_LE(dist[v] > dist[n] ? dist[v] - dist[n]
                                        : dist[n] - dist[v],
                      1u);
        }
    }
}

TEST(Semantics, SsspSatisfiesRelaxationOptimality)
{
    // dist(n) <= dist(v) + w(v, n) for every edge once converged.
    Graph g = testGraph(true);
    SsspWorkload sssp(g, 0);
    runImmediate(sssp);
    const auto &dist = sssp.distances();
    constexpr double inf = std::numeric_limits<double>::infinity();
    for (std::uint32_t v = 0; v < g.numVertices(); ++v) {
        if (dist[v] == inf)
            continue;
        EXPECT_GE(dist[v], 0.0);
    }
    EXPECT_DOUBLE_EQ(dist[0], 0.0);
}

TEST(Semantics, AstarGoalCostEqualsBfsDistance)
{
    // Unit edge costs: the A* result must equal the BFS distance.
    Graph g = testGraph(true);
    AstarWorkload astar(g, 6, 11);
    runImmediate(astar);
    ASSERT_TRUE(astar.verify());
    // Cross-check query 0 against plain BFS from its start: A* cost of
    // the goal must match the true shortest path length. (The start is
    // seeded internally, so recover it via a fresh instance's verify.)
    for (std::uint32_t q = 0; q < astar.numQueriesTotal(); ++q)
        EXPECT_NE(astar.goalCost(q), ~0u);
}

TEST(Semantics, PageRankMassOrderingFollowsInDegreeForStars)
{
    // A star graph: the hub must out-rank every leaf.
    std::vector<Graph::Edge> edges;
    for (std::uint32_t leaf = 1; leaf < 64; ++leaf)
        edges.push_back({leaf, 0});
    Graph star = Graph::fromEdges(64, edges, false);
    PageRankWorkload pr(star, 30);
    runImmediate(pr);
    for (std::uint32_t leaf = 1; leaf < 64; ++leaf)
        EXPECT_GT(pr.ranks()[0], pr.ranks()[leaf]);
}

/**
 * Executor equivalence: the functional output of a workload must be
 * identical under the ImmediateExecutor and under every NDP design,
 * because execution within a timestamp is order-independent.
 */
TEST(Semantics, ExecutorEquivalenceBitExactRanks)
{
    Graph g = testGraph(false);

    PageRankWorkload seq(g, 4);
    runImmediate(seq);

    for (Design d : {Design::B, Design::Sl, Design::O}) {
        SystemConfig cfg = applyDesign(SystemConfig{}, d);
        NdpSystem sys(cfg);
        PageRankWorkload sim(g, 4);
        sys.run(sim);
        ASSERT_EQ(seq.ranks().size(), sim.ranks().size());
        for (std::size_t v = 0; v < seq.ranks().size(); ++v)
            ASSERT_EQ(seq.ranks()[v], sim.ranks()[v])
                << "rank diverged under " << designName(d)
                << " at vertex " << v;
    }
}

TEST(Semantics, ExecutorEquivalenceBfsDistances)
{
    Graph g = testGraph(true);
    BfsWorkload seq(g, 3);
    runImmediate(seq);

    SystemConfig cfg = applyDesign(SystemConfig{}, Design::O);
    NdpSystem sys(cfg);
    BfsWorkload sim(g, 3);
    sys.run(sim);
    EXPECT_EQ(seq.distances(), sim.distances());
}

TEST(Semantics, KnnExecutorEquivalence)
{
    auto spec = WorkloadSpec::tiny("knn");
    auto seq = makeWorkload(spec);
    runImmediate(*seq);
    EXPECT_TRUE(seq->verify());

    auto sim = makeWorkload(spec);
    SystemConfig cfg = applyDesign(SystemConfig{}, Design::O);
    NdpSystem sys(cfg);
    sys.run(*sim);
    EXPECT_TRUE(sim->verify());
}

} // namespace abndp
