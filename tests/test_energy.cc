/** @file Tests for the energy accounting (Figure-7 breakdown). */

#include <gtest/gtest.h>

#include "energy/energy.hh"

namespace abndp
{

TEST(Energy, CoreInstructionsUseTable1Constant)
{
    SystemConfig cfg;
    EnergyAccount e(cfg);
    e.addCoreInstructions(100);
    EXPECT_DOUBLE_EQ(e.breakdown().coreSramPj, 100 * 371.0);
}

TEST(Energy, ComponentsAccumulateIndependently)
{
    SystemConfig cfg;
    EnergyAccount e(cfg);
    e.addL1Access();
    e.addPrefetchBufAccess();
    e.addTagAccess();
    e.addDramAccess(64, false, false);
    e.addDramAccess(64, true, true);
    e.addIntraTransfer(80);
    e.addInterTransfer(80, 3);

    const auto &bd = e.breakdown();
    EXPECT_GT(bd.coreSramPj, 0.0);
    EXPECT_DOUBLE_EQ(bd.dramMemPj, 64 * 8 * 5.0);
    EXPECT_DOUBLE_EQ(bd.dramCachePj, 64 * 8 * 5.0 + 535.8);
    EXPECT_DOUBLE_EQ(bd.netPj, 80 * 8 * 0.4 + 80 * 8 * 3 * 4.0);
    EXPECT_DOUBLE_EQ(bd.total(), bd.coreSramPj + bd.dram() + bd.netPj);
}

TEST(Energy, StaticScalesWithTime)
{
    SystemConfig cfg;
    EnergyAccount a(cfg), b(cfg);
    a.finalizeStatic(1000000);
    b.finalizeStatic(2000000);
    EXPECT_GT(a.breakdown().staticPj, 0.0);
    EXPECT_NEAR(b.breakdown().staticPj, 2 * a.breakdown().staticPj, 1e-6);
}

TEST(Energy, BreakdownAddition)
{
    EnergyBreakdown a, b;
    a.coreSramPj = 1;
    a.dramMemPj = 2;
    b.netPj = 3;
    b.staticPj = 4;
    a += b;
    EXPECT_DOUBLE_EQ(a.total(), 10.0);
}

TEST(Energy, ResetClears)
{
    SystemConfig cfg;
    EnergyAccount e(cfg);
    e.addCoreInstructions(5);
    e.reset();
    EXPECT_DOUBLE_EQ(e.breakdown().total(), 0.0);
}

} // namespace abndp
