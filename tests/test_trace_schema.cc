/**
 * @file
 * Trace round-trip and schema tests: export a Chrome trace-event JSON
 * file from a real run, parse it back with a minimal in-test JSON
 * parser, and validate the schema Perfetto relies on — event phases,
 * track metadata, per-track timestamp monotonicity — plus the event
 * counts reconciling exactly against the simulator's own statistics.
 * Also covers the tracer's ring-buffer overwrite path.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/ndp_system.hh"
#include "obs/trace.hh"
#include "workloads/factory.hh"

namespace abndp
{

namespace
{

/** Minimal JSON value for schema validation (no escapes beyond \"). */
struct Json
{
    enum class Type { Null, Bool, Number, String, Array, Object };
    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Json> arr;
    std::map<std::string, Json> obj;

    bool has(const std::string &key) const { return obj.count(key); }

    const Json &
    operator[](const std::string &key) const
    {
        static const Json nullValue;
        auto it = obj.find(key);
        return it == obj.end() ? nullValue : it->second;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(std::string text) : s(std::move(text)) {}

    Json
    parse()
    {
        Json v = parseValue();
        skipWs();
        EXPECT_EQ(pos, s.size()) << "trailing garbage at " << pos;
        return v;
    }

    bool failed() const { return fail; }

  private:
    void
    skipWs()
    {
        while (pos < s.size()
               && std::isspace(static_cast<unsigned char>(s[pos])))
            ++pos;
    }

    char
    peek()
    {
        skipWs();
        return pos < s.size() ? s[pos] : '\0';
    }

    bool
    consume(char c)
    {
        if (peek() != c) {
            fail = true;
            ADD_FAILURE() << "expected '" << c << "' at offset " << pos;
            return false;
        }
        ++pos;
        return true;
    }

    Json
    parseValue()
    {
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return parseString();
          case 't':
          case 'f':
            return parseBool();
          case 'n':
            pos += 4;
            return Json{};
          default:
            return parseNumber();
        }
    }

    Json
    parseObject()
    {
        Json v;
        v.type = Json::Type::Object;
        consume('{');
        if (peek() == '}') {
            ++pos;
            return v;
        }
        while (!fail) {
            Json key = parseString();
            consume(':');
            v.obj[key.str] = parseValue();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            consume('}');
            break;
        }
        return v;
    }

    Json
    parseArray()
    {
        Json v;
        v.type = Json::Type::Array;
        consume('[');
        if (peek() == ']') {
            ++pos;
            return v;
        }
        while (!fail) {
            v.arr.push_back(parseValue());
            if (peek() == ',') {
                ++pos;
                continue;
            }
            consume(']');
            break;
        }
        return v;
    }

    Json
    parseString()
    {
        Json v;
        v.type = Json::Type::String;
        if (!consume('"'))
            return v;
        while (pos < s.size() && s[pos] != '"') {
            if (s[pos] == '\\' && pos + 1 < s.size())
                ++pos;
            v.str += s[pos++];
        }
        consume('"');
        return v;
    }

    Json
    parseBool()
    {
        Json v;
        v.type = Json::Type::Bool;
        v.boolean = s[pos] == 't';
        pos += v.boolean ? 4 : 5;
        return v;
    }

    Json
    parseNumber()
    {
        Json v;
        v.type = Json::Type::Number;
        std::size_t end = pos;
        while (end < s.size()
               && (std::isdigit(static_cast<unsigned char>(s[end]))
                   || s[end] == '-' || s[end] == '+' || s[end] == '.'
                   || s[end] == 'e' || s[end] == 'E'))
            ++end;
        if (end == pos) {
            fail = true;
            ADD_FAILURE() << "expected number at offset " << pos;
            ++pos;
            return v;
        }
        v.number = std::stod(s.substr(pos, end - pos));
        pos = end;
        return v;
    }

    std::string s;
    std::size_t pos = 0;
    bool fail = false;
};

SystemConfig
smallConfig(Design d)
{
    SystemConfig cfg;
    cfg.meshX = cfg.meshY = 2;
    cfg.unitsPerStack = 2;
    cfg.coresPerUnit = 2;
    return applyDesign(cfg, d);
}

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

Json
parseFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    std::ostringstream oss;
    oss << in.rdbuf();
    JsonParser parser(oss.str());
    return parser.parse();
}

/** Events of @p name in the traceEvents array ("M" excluded). */
std::uint64_t
countEvents(const Json &trace, const std::string &name)
{
    std::uint64_t n = 0;
    for (const Json &e : trace["traceEvents"].arr)
        if (e["ph"].str != "M" && e["name"].str == name)
            ++n;
    return n;
}

} // namespace

TEST(TraceSchema, ExportReconcilesWithSimulatorStats)
{
    auto cfg = smallConfig(Design::O);
    cfg.traceOut = tmpPath("trace_schema_o.json");
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("pr"));
    RunMetrics m = sys.run(*wl);

    Json trace = parseFile(cfg.traceOut);
    ASSERT_EQ(trace.type, Json::Type::Object);
    ASSERT_TRUE(trace.has("traceEvents"));
    EXPECT_EQ(trace["displayTimeUnit"].str, "ns");
    EXPECT_EQ(trace["otherData"]["droppedEvents"].number, 0.0);
    EXPECT_GT(trace["traceEvents"].arr.size(), 0u);

    // Every traced count must reconcile exactly against the stats the
    // simulator reports through RunMetrics / component counters.
    EXPECT_EQ(countEvents(trace, "task"), m.tasks);
    EXPECT_EQ(countEvents(trace, "forward"), m.forwardedTasks);
    EXPECT_EQ(countEvents(trace, "hit"), m.campHits);
    EXPECT_EQ(countEvents(trace, "miss"), m.campMisses);
    EXPECT_EQ(countEvents(trace, "epoch"), m.epochs);
    EXPECT_EQ(countEvents(trace, "exchange"),
              sys.scheduler().exchanges());
    EXPECT_EQ(countEvents(trace, "pkt"),
              sys.memSystem().network().totalPackets());
    std::remove(cfg.traceOut.c_str());
}

TEST(TraceSchema, PhasesTracksAndTimestampsAreWellFormed)
{
    auto cfg = smallConfig(Design::O);
    cfg.traceOut = tmpPath("trace_schema_shape.json");
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("pr"));
    sys.run(*wl);

    Json trace = parseFile(cfg.traceOut);
    std::set<double> namedPids;
    std::set<std::pair<double, double>> namedTids;
    std::map<std::pair<double, double>, double> lastTs;
    std::uint64_t nonMonotone = 0;

    for (const Json &e : trace["traceEvents"].arr) {
        const std::string &ph = e["ph"].str;
        ASSERT_TRUE(ph == "M" || ph == "X" || ph == "i") << ph;
        ASSERT_EQ(e["pid"].type, Json::Type::Number);
        if (ph == "M") {
            if (e["name"].str == "process_name")
                namedPids.insert(e["pid"].number);
            else if (e["name"].str == "thread_name")
                namedTids.insert({e["pid"].number, e["tid"].number});
            continue;
        }
        ASSERT_EQ(e["tid"].type, Json::Type::Number);
        ASSERT_EQ(e["ts"].type, Json::Type::Number);
        if (ph == "X") {
            ASSERT_EQ(e["dur"].type, Json::Type::Number);
            EXPECT_GE(e["dur"].number, 0.0);
        }
        // Each event lands on a declared process and thread track.
        EXPECT_TRUE(namedPids.count(e["pid"].number)) << e["pid"].number;
        std::pair<double, double> track{e["pid"].number,
                                        e["tid"].number};
        EXPECT_TRUE(namedTids.count(track));
        auto it = lastTs.find(track);
        if (it != lastTs.end() && e["ts"].number < it->second)
            ++nonMonotone;
        lastTs[track] = e["ts"].number;
    }
    EXPECT_GT(lastTs.size(), 1u);
    EXPECT_EQ(nonMonotone, 0u)
        << "timestamps must be sorted within every track";
    std::remove(cfg.traceOut.c_str());
}

TEST(TraceSchema, StealEventArgsReconcileWithStolenTasks)
{
    auto cfg = smallConfig(Design::Sl);
    cfg.traceOut = tmpPath("trace_schema_sl.json");
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("pr"));
    RunMetrics m = sys.run(*wl);
    ASSERT_GT(m.stolenTasks, 0u);

    // Each steal event carries args.tasks; the per-event counts must
    // sum to the aggregate counter.
    std::uint64_t stolen = 0;
    const obs::Tracer &tracer = sys.eventTracer();
    EXPECT_EQ(tracer.dropped(), 0u);
    std::uint64_t steals = tracer.count(obs::TraceEvent::TaskSteal);
    EXPECT_GT(steals, 0u);

    Json trace = parseFile(cfg.traceOut);
    std::uint64_t stealEvents = 0;
    for (const Json &e : trace["traceEvents"].arr) {
        if (e["ph"].str == "M" || e["name"].str != "steal")
            continue;
        ++stealEvents;
        stolen +=
            static_cast<std::uint64_t>(e["args"]["tasks"].number);
    }
    EXPECT_EQ(stealEvents, steals);
    EXPECT_EQ(stolen, m.stolenTasks);
    std::remove(cfg.traceOut.c_str());
}

TEST(TraceSchema, TinyRingBufferOverwritesOldestAndCountsDrops)
{
    auto cfg = smallConfig(Design::O);
    cfg.traceOut = tmpPath("trace_schema_ring.json");
    cfg.traceBufferEvents = 64;
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("pr"));
    sys.run(*wl);

    const obs::Tracer &tracer = sys.eventTracer();
    EXPECT_EQ(tracer.size(), 64u);
    EXPECT_GT(tracer.dropped(), 0u);
    EXPECT_EQ(tracer.recorded(), tracer.dropped() + tracer.size());

    // The export must still be valid JSON and report the loss.
    Json trace = parseFile(cfg.traceOut);
    EXPECT_EQ(trace["otherData"]["droppedEvents"].number,
              static_cast<double>(tracer.dropped()));
    std::remove(cfg.traceOut.c_str());
}

TEST(TraceSchema, TracerRingBufferUnit)
{
    obs::Tracer tracer(true, 2);
    ASSERT_TRUE(tracer.enabled());
    tracer.record(obs::TraceEvent::EpochBegin, obs::Tracer::systemUnit,
                  0, 100);
    tracer.record(obs::TraceEvent::TaskRun, 0, 0, 200, 50, 7);
    tracer.record(obs::TraceEvent::TaskRun, 1, 1, 300, 50, 8);

    EXPECT_EQ(tracer.size(), 2u);
    EXPECT_EQ(tracer.recorded(), 3u);
    EXPECT_EQ(tracer.dropped(), 1u);
    // The epoch event was the oldest and has been overwritten.
    EXPECT_EQ(tracer.count(obs::TraceEvent::EpochBegin), 0u);
    EXPECT_EQ(tracer.count(obs::TraceEvent::TaskRun), 2u);

    std::ostringstream oss;
    tracer.exportChromeJson(oss);
    JsonParser parser(oss.str());
    Json trace = parser.parse();
    EXPECT_EQ(countEvents(trace, "task"), 2u);

    // A disabled tracer records nothing and costs no buffer.
    obs::Tracer off(false, 1 << 20);
    off.record(obs::TraceEvent::TaskRun, 0, 0, 1);
    EXPECT_EQ(off.size(), 0u);
    EXPECT_EQ(off.recorded(), 0u);
}

} // namespace abndp
