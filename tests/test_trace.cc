/** @file Tests for the per-epoch CSV trace. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/ndp_system.hh"
#include "workloads/factory.hh"

namespace abndp
{

TEST(Trace, WritesOneRowPerEpochPlusHeader)
{
    char tmpl[] = "/tmp/abndp_trace_XXXXXX";
    int fd = mkstemp(tmpl);
    ASSERT_GE(fd, 0);
    close(fd);
    std::string path = tmpl;

    SystemConfig cfg = applyDesign(SystemConfig{}, Design::O);
    cfg.traceFile = path;
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("pr"));
    RunMetrics m = sys.run(*wl);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    std::getline(in, line);
    EXPECT_NE(line.find("epoch,start_ns"), std::string::npos);
    std::uint64_t rows = 0;
    std::uint64_t totalTasks = 0;
    while (std::getline(in, line)) {
        ++rows;
        // Column 4 (0-based 3) is the epoch task count.
        std::istringstream iss(line);
        std::string cell;
        for (int c = 0; c <= 3; ++c)
            std::getline(iss, cell, ',');
        totalTasks += std::stoull(cell);
    }
    EXPECT_EQ(rows, m.epochs);
    EXPECT_EQ(totalTasks, m.tasks);
    std::remove(path.c_str());
}

TEST(TraceDeath, UnwritablePathIsFatal)
{
    SystemConfig cfg = applyDesign(SystemConfig{}, Design::B);
    cfg.traceFile = "/nonexistent-dir/trace.csv";
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("bfs"));
    EXPECT_DEATH(sys.run(*wl), "cannot open trace file");
}

} // namespace abndp
