/** @file Tests for the CSR graph and the synthetic generators. */

#include <gtest/gtest.h>

#include <numeric>

#include "workloads/graph.hh"
#include "workloads/graph_gen.hh"

namespace abndp
{

TEST(Graph, FromEdgesBuildsCsr)
{
    Graph g = Graph::fromEdges(4, {{0, 1}, {0, 2}, {2, 3}}, false);
    EXPECT_EQ(g.numVertices(), 4u);
    EXPECT_EQ(g.numEdges(), 3u);
    EXPECT_EQ(g.degree(0), 2u);
    EXPECT_EQ(g.degree(1), 0u);
    EXPECT_EQ(g.degree(2), 1u);
    EXPECT_EQ(g.neighbors(0)[0], 1u);
    EXPECT_EQ(g.neighbors(0)[1], 2u);
    EXPECT_EQ(g.neighbors(2)[0], 3u);
}

TEST(Graph, DropsSelfLoopsAndDuplicates)
{
    Graph g = Graph::fromEdges(3, {{0, 0}, {0, 1}, {0, 1}, {1, 2}}, false);
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_EQ(g.degree(0), 1u);
}

TEST(Graph, UndirectedStoresBothArcs)
{
    Graph g = Graph::fromEdges(3, {{0, 1}, {1, 2}}, true);
    EXPECT_EQ(g.numEdges(), 4u);
    EXPECT_EQ(g.degree(1), 2u);
    EXPECT_EQ(g.neighbors(1)[0], 0u);
    EXPECT_EQ(g.neighbors(1)[1], 2u);
}

TEST(Graph, MaxDegree)
{
    Graph g = Graph::fromEdges(5, {{0, 1}, {0, 2}, {0, 3}, {1, 2}}, false);
    EXPECT_EQ(g.maxDegree(), 3u);
}

TEST(GraphGen, RmatIsDeterministic)
{
    RmatParams p;
    p.scale = 10;
    p.edgeFactor = 8;
    Graph a = makeRmatGraph(p);
    Graph b = makeRmatGraph(p);
    EXPECT_EQ(a.numEdges(), b.numEdges());
    EXPECT_EQ(a.row(), b.row());
    EXPECT_EQ(a.col(), b.col());
}

TEST(GraphGen, RmatHasPowerLawSkew)
{
    RmatParams p;
    p.scale = 12;
    p.edgeFactor = 16;
    Graph g = makeRmatGraph(p);
    double mean =
        static_cast<double>(g.numEdges()) / g.numVertices();
    // Heavy-tailed: the hub degree dwarfs the mean degree.
    EXPECT_GT(g.maxDegree(), 20 * mean);
}

TEST(GraphGen, RmatSeedChangesGraph)
{
    RmatParams a, b;
    a.scale = b.scale = 10;
    b.seed = a.seed + 1;
    EXPECT_NE(makeRmatGraph(a).col(), makeRmatGraph(b).col());
}

TEST(GraphGen, UniformGraphHasLowSkew)
{
    Graph g = makeUniformGraph(4096, 65536, 3, false);
    double mean = static_cast<double>(g.numEdges()) / g.numVertices();
    EXPECT_LT(g.maxDegree(), 5 * mean);
}

TEST(GraphGen, GridGraphDegrees)
{
    Graph g = makeGridGraph(4, 3);
    EXPECT_EQ(g.numVertices(), 12u);
    // Corners have degree 2, edges 3, interior 4.
    EXPECT_EQ(g.degree(0), 2u);
    EXPECT_EQ(g.degree(1), 3u);
    EXPECT_EQ(g.degree(5), 4u);
    // Undirected handshake: sum of degrees = 2 * #undirected edges.
    std::uint64_t sum = 0;
    for (std::uint32_t v = 0; v < g.numVertices(); ++v)
        sum += g.degree(v);
    EXPECT_EQ(sum, g.numEdges());
    EXPECT_EQ(g.numEdges(), 2u * (3 * 3 + 2 * 4));
}

TEST(GraphGen, RowPointersAreMonotonic)
{
    RmatParams p;
    p.scale = 10;
    Graph g = makeRmatGraph(p);
    for (std::size_t i = 1; i < g.row().size(); ++i)
        EXPECT_LE(g.row()[i - 1], g.row()[i]);
    EXPECT_EQ(g.row().back(), g.numEdges());
}

} // namespace abndp
