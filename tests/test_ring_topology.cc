/** @file Tests for the ring intra-stack NoC option. */

#include <gtest/gtest.h>

#include "driver/experiment.hh"
#include "energy/energy.hh"
#include "net/network.hh"
#include "net/topology.hh"
#include "workloads/factory.hh"

namespace abndp
{

namespace
{

SystemConfig
ringCfg()
{
    SystemConfig cfg;
    cfg.net.intraTopology = IntraTopology::Ring;
    return cfg;
}

} // namespace

TEST(RingTopology, IntraHopsAreRingDistances)
{
    Topology topo(ringCfg());
    // Units 0..7 share stack 0 on an 8-ring.
    EXPECT_EQ(topo.intraHops(0, 0), 0u);
    EXPECT_EQ(topo.intraHops(0, 1), 1u);
    EXPECT_EQ(topo.intraHops(0, 4), 4u);
    EXPECT_EQ(topo.intraHops(0, 7), 1u); // wraps around
    EXPECT_EQ(topo.intraHops(1, 6), 3u);
}

TEST(RingTopology, CrossbarIntraHopsAreConstant)
{
    Topology topo{SystemConfig{}};
    for (UnitId b = 1; b < 8; ++b)
        EXPECT_EQ(topo.intraHops(0, b), 1u);
    EXPECT_DOUBLE_EQ(topo.meanIntraHops(), 1.0);
}

TEST(RingTopology, MeanIntraHopsMatchesClosedForm)
{
    Topology topo(ringCfg());
    // 8-ring distances from any unit: 1,2,3,4,3,2,1 -> mean 16/7.
    EXPECT_NEAR(topo.meanIntraHops(), 16.0 / 7.0, 1e-12);
}

TEST(RingTopology, DistanceCostScalesWithRingHops)
{
    Topology topo(ringCfg());
    EXPECT_DOUBLE_EQ(topo.distanceCost(0, 4), 4 * 1.5);
    EXPECT_DOUBLE_EQ(topo.distanceCost(0, 7), 1.5);
}

TEST(RingTopology, NetworkChargesPerHop)
{
    SystemConfig cfg = ringCfg();
    Topology topo(cfg);
    EnergyAccount energy(cfg);
    Network net(cfg, topo, energy);
    // Opposite side of the ring: 4 hops vs 1 crossbar traversal.
    auto far = net.transfer(0, 4, 80, 0);
    EXPECT_EQ(net.totalIntraTraversals(), 4u);

    SystemConfig xcfg;
    Topology xtopo(xcfg);
    EnergyAccount xenergy(xcfg);
    Network xnet(xcfg, xtopo, xenergy);
    auto xfar = xnet.transfer(0, 4, 80, 0);
    EXPECT_GT(far.latency, xfar.latency);
    EXPECT_GT(energy.breakdown().netPj, xenergy.breakdown().netPj);
}

TEST(RingTopology, FullSystemStillVerifies)
{
    SystemConfig base = ringCfg();
    WorkloadSpec spec = WorkloadSpec::tiny("pr");
    ExperimentOptions opts;
    opts.verify = true;
    for (Design d : {Design::B, Design::O}) {
        RunMetrics m = runExperiment(base, d, spec, opts);
        EXPECT_GT(m.tasks, 0u) << designName(d);
    }
}

TEST(RingTopology, Deterministic)
{
    SystemConfig base = ringCfg();
    WorkloadSpec spec = WorkloadSpec::tiny("bfs");
    ExperimentOptions opts;
    opts.verify = false;
    RunMetrics a = runExperiment(base, Design::O, spec, opts);
    RunMetrics b = runExperiment(base, Design::O, spec, opts);
    EXPECT_EQ(a.ticks, b.ticks);
}

} // namespace abndp
