/** @file Tests for the hierarchical topology and camp grouping. */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "net/topology.hh"

namespace abndp
{

namespace
{

SystemConfig
makeCfg(std::uint32_t meshX, std::uint32_t meshY, std::uint32_t camps)
{
    SystemConfig cfg;
    cfg.meshX = meshX;
    cfg.meshY = meshY;
    cfg.traveller.campCount = camps;
    return cfg;
}

} // namespace

TEST(Topology, DefaultDimensions)
{
    SystemConfig cfg;
    Topology topo(cfg);
    EXPECT_EQ(topo.numUnits(), 128u);
    EXPECT_EQ(topo.numStacks(), 16u);
    EXPECT_EQ(topo.numGroups(), 4u);
    EXPECT_EQ(topo.unitsPerGroup(), 32u);
    EXPECT_EQ(topo.diameter(), 6u);
}

TEST(Topology, UnitNumberingIsConsecutivePerStackAndGroup)
{
    SystemConfig cfg;
    Topology topo(cfg);
    // Units 0..7 share a stack; units 0..31 share a group.
    for (UnitId u = 1; u < 8; ++u)
        EXPECT_EQ(topo.stackOf(u), topo.stackOf(0));
    for (UnitId u = 0; u < 32; ++u)
        EXPECT_EQ(topo.groupOf(u), 0u);
    EXPECT_EQ(topo.groupOf(32), 1u);
    EXPECT_EQ(topo.groupOf(127), 3u);
}

TEST(Topology, GroupsAreSpatiallyLocalizedTiles)
{
    // Figure 5: the 4x4 mesh splits into four 2x2 quadrants.
    SystemConfig cfg;
    Topology topo(cfg);
    for (GroupId g = 0; g < topo.numGroups(); ++g) {
        std::set<std::pair<std::uint32_t, std::uint32_t>> coords;
        for (UnitId u : topo.unitsOfGroup(g))
            coords.insert(topo.stackCoord(topo.stackOf(u)));
        EXPECT_EQ(coords.size(), 4u); // 4 stacks per group
        // Bounding box of a 2x2 tile spans exactly 2 in each dimension.
        std::uint32_t minX = ~0u, maxX = 0, minY = ~0u, maxY = 0;
        for (auto [x, y] : coords) {
            minX = std::min(minX, x);
            maxX = std::max(maxX, x);
            minY = std::min(minY, y);
            maxY = std::max(maxY, y);
        }
        EXPECT_EQ(maxX - minX, 1u);
        EXPECT_EQ(maxY - minY, 1u);
    }
}

TEST(Topology, InterHopsIsAMetric)
{
    SystemConfig cfg;
    Topology topo(cfg);
    for (UnitId a = 0; a < topo.numUnits(); a += 7) {
        EXPECT_EQ(topo.interHops(a, a), 0u);
        for (UnitId b = 0; b < topo.numUnits(); b += 11) {
            EXPECT_EQ(topo.interHops(a, b), topo.interHops(b, a));
            for (UnitId c = 0; c < topo.numUnits(); c += 13) {
                EXPECT_LE(topo.interHops(a, c),
                          topo.interHops(a, b) + topo.interHops(b, c));
            }
        }
    }
}

TEST(Topology, DistanceCostOrdering)
{
    SystemConfig cfg;
    Topology topo(cfg);
    // local < intra-stack < inter-stack.
    EXPECT_DOUBLE_EQ(topo.distanceCost(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(topo.distanceCost(0, 1), 1.5);
    EXPECT_GE(topo.distanceCost(0, 127), 10.0);
    // One mesh hop costs Dinter.
    UnitId right = invalidUnit;
    for (UnitId u = 0; u < topo.numUnits(); ++u)
        if (topo.interHops(0, u) == 1) {
            right = u;
            break;
        }
    ASSERT_NE(right, invalidUnit);
    EXPECT_DOUBLE_EQ(topo.distanceCost(0, right), 10.0);
}

TEST(Topology, HopsNeverExceedDiameter)
{
    SystemConfig cfg;
    Topology topo(cfg);
    for (UnitId a = 0; a < topo.numUnits(); a += 3)
        for (UnitId b = 0; b < topo.numUnits(); b += 5)
            EXPECT_LE(topo.interHops(a, b), topo.diameter());
}

/** Property sweep over mesh sizes and camp counts. */
class TopologyParam
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>>
{
};

TEST_P(TopologyParam, GroupPartitionInvariants)
{
    auto [mx, my, camps] = GetParam();
    SystemConfig cfg = makeCfg(mx, my, camps);
    Topology topo(cfg);

    // Every unit belongs to exactly one group; groups have equal size.
    std::map<GroupId, std::uint32_t> sizes;
    for (UnitId u = 0; u < topo.numUnits(); ++u)
        ++sizes[topo.groupOf(u)];
    EXPECT_EQ(sizes.size(), topo.numGroups());
    for (const auto &[g, n] : sizes)
        EXPECT_EQ(n, topo.unitsPerGroup());

    // unitInGroup is the inverse of the numbering.
    for (GroupId g = 0; g < topo.numGroups(); ++g)
        for (std::uint32_t i = 0; i < topo.unitsPerGroup(); ++i)
            EXPECT_EQ(topo.groupOf(topo.unitInGroup(g, i)), g);

    // Stacks are never split across groups when groups >= stacks.
    if (topo.numGroups() <= topo.numStacks()) {
        for (UnitId a = 0; a < topo.numUnits(); ++a)
            for (UnitId b = a + 1; b < topo.numUnits(); ++b)
                if (topo.stackOf(a) == topo.stackOf(b))
                    EXPECT_EQ(topo.groupOf(a), topo.groupOf(b));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Meshes, TopologyParam,
    ::testing::Values(std::make_tuple(2u, 2u, 3u),
                      std::make_tuple(4u, 4u, 1u),
                      std::make_tuple(4u, 4u, 3u),
                      std::make_tuple(4u, 4u, 7u),
                      std::make_tuple(4u, 4u, 15u),
                      std::make_tuple(8u, 8u, 3u),
                      std::make_tuple(4u, 2u, 1u),
                      std::make_tuple(2u, 4u, 3u)));

} // namespace abndp
