/** @file Unit tests for the statistics framework. */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/stats.hh"

namespace abndp
{
namespace stats
{

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Scalar, AccumulatesDoubles)
{
    Scalar s;
    s += 1.5;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 4.0);
    s.set(7.0);
    EXPECT_DOUBLE_EQ(s.value(), 7.0);
}

TEST(Distribution, TracksMoments)
{
    Distribution d;
    for (double v : {2.0, 4.0, 6.0, 8.0})
        d.sample(v);
    EXPECT_EQ(d.samples(), 4u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 8.0);
    EXPECT_DOUBLE_EQ(d.total(), 20.0);
    EXPECT_NEAR(d.stddev(), std::sqrt(5.0), 1e-9);
}

TEST(Distribution, EmptyIsSafe)
{
    Distribution d;
    EXPECT_EQ(d.samples(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(0.0, 10.0, 5);
    h.sample(-1.0);
    h.sample(0.0);
    h.sample(3.0);
    h.sample(9.99);
    h.sample(10.0);
    h.sample(100.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[4], 1u);
}

TEST(StatGroup, DumpsTree)
{
    StatGroup root("sys");
    StatGroup child("core");
    Counter c;
    c += 3;
    Scalar s;
    s += 1.25;
    root.addCounter("events", &c);
    child.addScalar("energy", &s);
    root.addChild(&child);

    std::ostringstream oss;
    root.dump(oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("sys.events 3"), std::string::npos);
    EXPECT_NE(out.find("sys.core.energy 1.25"), std::string::npos);
}

TEST(StatGroupDeath, DuplicateNamePanics)
{
    StatGroup g("g");
    Counter c;
    g.addCounter("x", &c);
    EXPECT_DEATH(g.addCounter("x", &c), "duplicate");
}

} // namespace stats
} // namespace abndp
