/**
 * @file
 * Slow-tier determinism locks at benchmark scale.
 *
 * The tier1 determinism tests run tiny workloads; the data-oriented
 * hot paths (task arenas, SoA scheduler scoring, bandwidth-meter fast
 * path, cache tag arrays) only reach their steady-state regimes on
 * graphs large enough to overflow the small-size-inlined spans and the
 * meter's single-bucket fast path. These tests re-prove bit-exactness
 * at scale 16 (~65k vertices, ~1M edges — the perf-smoke grid size):
 * the same config must produce a byte-identical full stats dump run
 * twice, and identical per-cell metrics whether the grid runs inline
 * or on a cell_runner thread pool.
 *
 * Labeled `slow` (tests/CMakeLists.txt): each run takes seconds, so
 * they are excluded from the tier1 push gate and run in the full
 * suite / nightly.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/ndp_system.hh"
#include "driver/cell_runner.hh"
#include "driver/experiment.hh"
#include "workloads/factory.hh"

namespace abndp
{

namespace
{

/** The perf-smoke cell: default geometry, scale-16 R-MAT PageRank. */
WorkloadSpec
scale16Spec(const std::string &name)
{
    WorkloadSpec spec;
    spec.name = name;
    spec.scale = 16;
    return spec;
}

/** Run @p spec under design @p d and return the full registry dump. */
std::string
runAndDump(Design d, const WorkloadSpec &spec)
{
    SystemConfig cfg;
    cfg = applyDesign(cfg, d);
    NdpSystem sys(cfg);
    auto wl = makeWorkload(spec);
    sys.run(*wl);
    EXPECT_TRUE(wl->verify());
    std::ostringstream oss;
    sys.statsRegistry().dump(oss);
    return oss.str();
}

} // namespace

TEST(ScaleDeterminism, Scale16RunTwiceBitExact)
{
    // Two independent simulator instances on the same scale-16 config:
    // every counter, distribution moment, and histogram bucket in the
    // full stats dump must match byte-for-byte (hostSeconds and other
    // wall-clock self-measurement are not part of the registry).
    std::string a = runAndDump(Design::O, scale16Spec("pr"));
    std::string b = runAndDump(Design::O, scale16Spec("pr"));
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(ScaleDeterminism, Scale16CellRunnerThreadCountInvariant)
{
    // The same two-cell grid through cell_runner inline (threads=1)
    // and on a pool (threads=4): each cell is seeded purely by its own
    // config, so per-cell metrics must be bit-identical regardless of
    // host thread count or completion order.
    SystemConfig base;
    std::vector<CellSpec> cells;
    for (Design d : {Design::B, Design::O}) {
        CellSpec cell;
        cell.design = d;
        cell.workload = scale16Spec("pr");
        cells.push_back(cell);
    }

    std::vector<RunMetrics> seq = runCells(base, cells, 1);
    std::vector<RunMetrics> par = runCells(base, cells, 4);
    ASSERT_EQ(seq.size(), cells.size());
    ASSERT_EQ(par.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        SCOPED_TRACE(designName(cells[i].design));
        EXPECT_EQ(seq[i].ticks, par[i].ticks);
        EXPECT_EQ(seq[i].tasks, par[i].tasks);
        EXPECT_EQ(seq[i].epochs, par[i].epochs);
        EXPECT_EQ(seq[i].interHops, par[i].interHops);
        EXPECT_EQ(seq[i].intraTraversals, par[i].intraTraversals);
        EXPECT_EQ(seq[i].simEvents, par[i].simEvents);
        EXPECT_EQ(seq[i].coreActiveTicks, par[i].coreActiveTicks);
        EXPECT_EQ(seq[i].epochTicks, par[i].epochTicks);
        EXPECT_EQ(seq[i].epochTasks, par[i].epochTasks);
        EXPECT_EQ(seq[i].campHits, par[i].campHits);
        EXPECT_EQ(seq[i].campMisses, par[i].campMisses);
        EXPECT_EQ(seq[i].stolenTasks, par[i].stolenTasks);
        EXPECT_EQ(seq[i].forwardedTasks, par[i].forwardedTasks);
        EXPECT_EQ(seq[i].dramReads, par[i].dramReads);
        EXPECT_EQ(seq[i].dramWrites, par[i].dramWrites);
        EXPECT_EQ(seq[i].dramRowMisses, par[i].dramRowMisses);
    }
}

namespace
{

/** Scale-16 config on the bank-state DDR backend (adaptive/rcb). */
SystemConfig
ddrScaleConfig(Design d)
{
    SystemConfig cfg;
    cfg = applyDesign(cfg, d);
    cfg.dram.backend = MemBackendKind::Ddr;
    cfg.dram.pagePolicy = PagePolicy::Adaptive;
    cfg.dram.addrMap = DramAddrMapKind::RowColumnBank;
    return cfg;
}

} // namespace

TEST(ScaleDeterminism, DdrScale16RunTwiceBitExact)
{
    // The DDR backend's extra state (bank machines, ACT-window meter,
    // adaptive scores) must be just as bit-deterministic as the meter
    // path at steady-state scale: two independent instances, one
    // byte-identical dump.
    auto dump = [] {
        auto cfg = ddrScaleConfig(Design::O);
        NdpSystem sys(cfg);
        auto wl = makeWorkload(scale16Spec("pr"));
        sys.run(*wl);
        EXPECT_TRUE(wl->verify());
        std::ostringstream oss;
        sys.statsRegistry().dump(oss);
        return oss.str();
    };
    std::string a = dump(), b = dump();
    EXPECT_FALSE(a.empty());
    EXPECT_NE(a.find("actStalls"), std::string::npos);
    EXPECT_EQ(a, b);
}

TEST(ScaleDeterminism, DdrCellRunnerThreadCountInvariant)
{
    // DDR cells inline vs on a 4-thread pool: every backend instance
    // is owned by one simulator instance, so per-cell metrics —
    // including the DDR-only rowHits/actStalls — must be identical
    // regardless of host thread count.
    SystemConfig base;
    base.dram.backend = MemBackendKind::Ddr;
    base.dram.pagePolicy = PagePolicy::Adaptive;
    std::vector<CellSpec> cells;
    for (Design d : {Design::B, Design::O}) {
        CellSpec cell;
        cell.design = d;
        cell.workload = scale16Spec("pr");
        cells.push_back(cell);
    }

    std::vector<RunMetrics> seq = runCells(base, cells, 1);
    std::vector<RunMetrics> par = runCells(base, cells, 4);
    ASSERT_EQ(seq.size(), cells.size());
    ASSERT_EQ(par.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        SCOPED_TRACE(designName(cells[i].design));
        EXPECT_EQ(seq[i].ticks, par[i].ticks);
        EXPECT_EQ(seq[i].tasks, par[i].tasks);
        EXPECT_EQ(seq[i].dramReads, par[i].dramReads);
        EXPECT_EQ(seq[i].dramWrites, par[i].dramWrites);
        EXPECT_EQ(seq[i].dramRowMisses, par[i].dramRowMisses);
        EXPECT_EQ(seq[i].dramRowHits, par[i].dramRowHits);
        EXPECT_EQ(seq[i].dramActStalls, par[i].dramActStalls);
        EXPECT_GT(seq[i].dramRowHits, 0u);
    }
}

TEST(ScaleDeterminism, HlbRunTwiceBitExact)
{
    // The hierarchical balancer + data re-homing at steady-state
    // scale: shed commands and migration plans are pure functions of
    // exchange snapshots (no Rng draws), so two independent HLB-mig
    // instances must dump byte-identical stats — including the shed
    // and migration counters the lb node adds.
    std::string a = runAndDump(Design::HlbM, scale16Spec("pr"));
    std::string b = runAndDump(Design::HlbM, scale16Spec("pr"));
    EXPECT_FALSE(a.empty());
    EXPECT_NE(a.find("tasksShedIntra"), std::string::npos);
    EXPECT_EQ(a, b);
}

TEST(ScaleDeterminism, HlbCellRunnerThreadCountInvariant)
{
    // HLB cells inline vs on a 4-thread pool: the balancer state
    // (hotness banks, indirection table, cooldown windows) is owned by
    // one simulator instance, so per-cell metrics — including the
    // lb-only shed/migration counters — must be identical regardless
    // of host thread count.
    SystemConfig base;
    std::vector<CellSpec> cells;
    for (Design d : {Design::Hlb, Design::HlbM}) {
        CellSpec cell;
        cell.design = d;
        cell.workload = scale16Spec("pr");
        cells.push_back(cell);
    }

    std::vector<RunMetrics> seq = runCells(base, cells, 1);
    std::vector<RunMetrics> par = runCells(base, cells, 4);
    ASSERT_EQ(seq.size(), cells.size());
    ASSERT_EQ(par.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        SCOPED_TRACE(designName(cells[i].design));
        EXPECT_EQ(seq[i].ticks, par[i].ticks);
        EXPECT_EQ(seq[i].tasks, par[i].tasks);
        EXPECT_EQ(seq[i].epochs, par[i].epochs);
        EXPECT_EQ(seq[i].interHops, par[i].interHops);
        EXPECT_EQ(seq[i].stolenTasks, par[i].stolenTasks);
        EXPECT_EQ(seq[i].tasksShedIntra, par[i].tasksShedIntra);
        EXPECT_EQ(seq[i].tasksShedInter, par[i].tasksShedInter);
        EXPECT_EQ(seq[i].blocksMigrated, par[i].blocksMigrated);
        EXPECT_EQ(seq[i].migrationInvalidations,
                  par[i].migrationInvalidations);
        EXPECT_EQ(seq[i].migrationTrafficBytes,
                  par[i].migrationTrafficBytes);
        EXPECT_EQ(seq[i].dramReads, par[i].dramReads);
        EXPECT_EQ(seq[i].dramWrites, par[i].dramWrites);
    }
}

namespace
{

/** Default-size kv store (64k keys) as the served workload. */
WorkloadSpec
kvSpec()
{
    WorkloadSpec spec;
    spec.name = "kv";
    return spec;
}

/** Default geometry plus a 20k-request Zipfian kv serving stream. */
SystemConfig
servingScaleConfig(Design d)
{
    SystemConfig cfg;
    cfg = applyDesign(cfg, d);
    cfg.serving.requests = 20000;
    cfg.serving.ratePerUs = 8.0;
    cfg.serving.zipfS = 0.99;
    cfg.serving.tenants = 2;
    return cfg;
}

} // namespace

TEST(ScaleDeterminism, ServingRunTwiceBitExact)
{
    // The serving determinism lock at stream scale: 20k open-loop
    // arrivals (default-size kv store) through two independent
    // instances must dump byte-identical stats — every latency
    // percentile, every per-tenant counter, every arrival draw.
    auto dump = [] {
        auto cfg = servingScaleConfig(Design::O);
        NdpSystem sys(cfg);
        auto wl = makeWorkload(kvSpec());
        sys.run(*wl);
        EXPECT_TRUE(wl->verify());
        std::ostringstream oss;
        sys.statsRegistry().dump(oss);
        return oss.str();
    };
    std::string a = dump(), b = dump();
    EXPECT_FALSE(a.empty());
    EXPECT_NE(a.find("serving"), std::string::npos);
    EXPECT_EQ(a, b);
}

TEST(ScaleDeterminism, ServingCellRunnerThreadCountInvariant)
{
    // Serving cells through cell_runner inline vs on a 4-thread pool:
    // the arrival stream is seeded purely by each cell's config, so
    // per-cell serving metrics (counts AND exact percentiles) must be
    // bit-identical regardless of host thread count.
    SystemConfig base;
    base.serving.requests = 8000;
    base.serving.ratePerUs = 8.0;
    std::vector<CellSpec> cells;
    for (Design d : {Design::B, Design::Sl, Design::O}) {
        CellSpec cell;
        cell.design = d;
        cell.workload = kvSpec();
        cells.push_back(cell);
    }

    std::vector<RunMetrics> seq = runCells(base, cells, 1);
    std::vector<RunMetrics> par = runCells(base, cells, 4);
    ASSERT_EQ(seq.size(), cells.size());
    ASSERT_EQ(par.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        SCOPED_TRACE(designName(cells[i].design));
        EXPECT_EQ(seq[i].ticks, par[i].ticks);
        EXPECT_EQ(seq[i].tasks, par[i].tasks);
        EXPECT_EQ(seq[i].servingInjected, par[i].servingInjected);
        EXPECT_EQ(seq[i].servingRejected, par[i].servingRejected);
        EXPECT_EQ(seq[i].servingCompletedDirect,
                  par[i].servingCompletedDirect);
        EXPECT_EQ(seq[i].servingCompletedRecovered,
                  par[i].servingCompletedRecovered);
        EXPECT_EQ(seq[i].servingSloMisses, par[i].servingSloMisses);
        EXPECT_EQ(seq[i].servingWindows, par[i].servingWindows);
        EXPECT_EQ(seq[i].servingP50Ns, par[i].servingP50Ns);
        EXPECT_EQ(seq[i].servingP95Ns, par[i].servingP95Ns);
        EXPECT_EQ(seq[i].servingP99Ns, par[i].servingP99Ns);
        EXPECT_EQ(seq[i].servingP999Ns, par[i].servingP999Ns);
        EXPECT_EQ(seq[i].servingMeanNs, par[i].servingMeanNs);
        EXPECT_EQ(seq[i].servingGoodputQps, par[i].servingGoodputQps);
        EXPECT_EQ(seq[i].servingSloMissRate, par[i].servingSloMissRate);
    }
}

} // namespace abndp
