/** @file Tests for address-range task hints (Section 3.1). */

#include <gtest/gtest.h>

#include "core/ndp_system.hh"
#include "driver/experiment.hh"
#include "sched/scheduler.hh"
#include "workloads/factory.hh"

namespace abndp
{

TEST(AddrRange, LineCounting)
{
    EXPECT_EQ((AddrRange{0, 0}).lines(), 0u);
    EXPECT_EQ((AddrRange{0, 1}).lines(), 1u);
    EXPECT_EQ((AddrRange{0, 64}).lines(), 1u);
    EXPECT_EQ((AddrRange{0, 65}).lines(), 2u);
    // Unaligned start spanning a boundary.
    EXPECT_EQ((AddrRange{60, 8}).lines(), 2u);
    EXPECT_EQ((AddrRange{64, 128}).lines(), 2u);
}

TEST(AddrRange, HintTotalLines)
{
    TaskHint hint;
    hint.data = {0, 64, 128};
    hint.ranges.push_back({1024, 256}); // 4 lines
    EXPECT_EQ(hint.totalLines(), 7u);
}

TEST(AddrRange, LoadEstimateCountsRangeLines)
{
    SystemConfig cfg;
    Topology topo(cfg);
    AddressMap amap(cfg);
    CampMapping camps(cfg, topo, amap);
    Scheduler sched(cfg, topo, camps);

    Task flat;
    flat.hint.data = {0, 64, 128, 192};
    Task ranged;
    ranged.hint.data = {0};
    ranged.hint.ranges.push_back({64, 3 * 64});
    EXPECT_DOUBLE_EQ(sched.estimateLoad(flat),
                     sched.estimateLoad(ranged));
}

TEST(AddrRange, EquivalentTimingToExplicitLines)
{
    // A task hinting a 16-line range must execute identically to one
    // listing the 16 lines explicitly (same blocks fetched).
    SystemConfig cfg = applyDesign(SystemConfig{}, Design::B);

    struct OneTask : Workload
    {
        bool useRange;
        Addr base = 0;
        explicit OneTask(bool r) : useRange(r) {}
        std::string name() const override { return "one"; }
        void
        setup(SimAllocator &alloc) override
        {
            base = alloc.allocate(1024, 5, cachelineBytes);
        }
        void
        emitInitialTasks(TaskSink &sink) override
        {
            Task t;
            t.timestamp = 0;
            t.hint.data.push_back(base);
            if (useRange) {
                t.hint.ranges.push_back({base, 1024});
            } else {
                for (Addr a = base; a < base + 1024; a += cachelineBytes)
                    t.hint.data.push_back(a);
            }
            t.computeInstrs = 100;
            sink.enqueueTask(std::move(t));
        }
        void executeTask(const Task &, TaskSink &) override {}
        bool verify() const override { return true; }
    };

    OneTask ranged(true), flat(false);
    NdpSystem a(cfg), b(cfg);
    RunMetrics ma = a.run(ranged);
    RunMetrics mb = b.run(flat);
    EXPECT_EQ(ma.ticks, mb.ticks);
    EXPECT_EQ(ma.dramReads, mb.dramReads);
}

TEST(AddrRange, GraphWorkloadsUseRanges)
{
    // Hub tasks carry their adjacency as one range, not thousands of
    // addresses (hint compression the paper's API provides).
    auto wl = makeWorkload(WorkloadSpec::tiny("pr"));
    SystemConfig cfg;
    SimAllocator alloc(cfg);
    wl->setup(alloc);

    struct Probe : TaskSink
    {
        std::uint64_t withRanges = 0, total = 0;
        void
        enqueueTask(Task &&t) override
        {
            ++total;
            withRanges += t.hint.ranges.empty() ? 0 : 1;
        }
    } probe;
    wl->emitInitialTasks(probe);
    EXPECT_GT(probe.total, 0u);
    EXPECT_GT(probe.withRanges, probe.total / 2);
}

} // namespace abndp
