/** @file Integration tests of the full NDP system simulation. */

#include <gtest/gtest.h>

#include "core/ndp_system.hh"
#include "driver/experiment.hh"
#include "workloads/factory.hh"

namespace abndp
{

namespace
{

SystemConfig
tinySystem(Design d)
{
    SystemConfig cfg;
    return applyDesign(cfg, d);
}

} // namespace

TEST(NdpSystem, RunsPageRankAndVerifies)
{
    auto cfg = tinySystem(Design::B);
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("pr"));
    RunMetrics m = sys.run(*wl);
    EXPECT_TRUE(wl->verify());
    EXPECT_GT(m.ticks, 0u);
    EXPECT_GT(m.tasks, 0u);
    EXPECT_GT(m.epochs, 0u);
    EXPECT_EQ(m.coreActiveTicks.size(), cfg.numCores());
}

TEST(NdpSystem, DeterministicAcrossRuns)
{
    for (Design d : {Design::B, Design::Sl, Design::O}) {
        auto cfg = tinySystem(d);
        NdpSystem a(cfg), b(cfg);
        auto wa = makeWorkload(WorkloadSpec::tiny("pr"));
        auto wb = makeWorkload(WorkloadSpec::tiny("pr"));
        RunMetrics ma = a.run(*wa);
        RunMetrics mb = b.run(*wb);
        EXPECT_EQ(ma.ticks, mb.ticks) << designName(d);
        EXPECT_EQ(ma.interHops, mb.interHops) << designName(d);
        EXPECT_EQ(ma.tasks, mb.tasks) << designName(d);
        EXPECT_EQ(ma.coreActiveTicks, mb.coreActiveTicks) << designName(d);
    }
}

TEST(NdpSystem, TaskCountIndependentOfDesign)
{
    std::uint64_t tasks_b = 0;
    for (Design d : {Design::B, Design::Sm, Design::Sl, Design::Sh,
                     Design::C, Design::O}) {
        auto cfg = tinySystem(d);
        NdpSystem sys(cfg);
        auto wl = makeWorkload(WorkloadSpec::tiny("bfs"));
        RunMetrics m = sys.run(*wl);
        if (d == Design::B)
            tasks_b = m.tasks;
        else
            EXPECT_EQ(m.tasks, tasks_b) << designName(d);
        EXPECT_TRUE(wl->verify()) << designName(d);
    }
}

TEST(NdpSystem, MaxEpochsCapsExecution)
{
    auto cfg = tinySystem(Design::B);
    cfg.maxEpochs = 2;
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("pr"));
    RunMetrics m = sys.run(*wl);
    EXPECT_EQ(m.epochs, 2u);
    EXPECT_TRUE(wl->verify());
}

TEST(NdpSystem, WorkStealingActuallySteals)
{
    auto cfg = tinySystem(Design::Sl);
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("pr"));
    RunMetrics m = sys.run(*wl);
    EXPECT_GT(m.stealAttempts, 0u);
    EXPECT_GT(m.stolenTasks, 0u);
    EXPECT_TRUE(wl->verify());
}

TEST(NdpSystem, HybridForwardsThroughSchedulingWindow)
{
    auto cfg = tinySystem(Design::O);
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("pr"));
    RunMetrics m = sys.run(*wl);
    EXPECT_GT(m.forwardedTasks, 0u);
    EXPECT_GT(m.schedDecisions, 0u);
    EXPECT_TRUE(wl->verify());
}

TEST(NdpSystem, TravellerCacheGetsHits)
{
    auto cfg = tinySystem(Design::O);
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("pr"));
    RunMetrics m = sys.run(*wl);
    EXPECT_GT(m.campHits, 0u);
    EXPECT_GT(m.cacheInserts, 0u);
    EXPECT_GT(m.campHitRate(), 0.1);
}

TEST(NdpSystem, NoCampActivityWithoutCache)
{
    auto cfg = tinySystem(Design::B);
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("pr"));
    RunMetrics m = sys.run(*wl);
    EXPECT_EQ(m.campHits + m.campMisses, 0u);
}

TEST(NdpSystem, EnergyBreakdownIsPositiveAndConsistent)
{
    auto cfg = tinySystem(Design::O);
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("pr"));
    RunMetrics m = sys.run(*wl);
    EXPECT_GT(m.energy.coreSramPj, 0.0);
    EXPECT_GT(m.energy.dramMemPj, 0.0);
    EXPECT_GT(m.energy.dramCachePj, 0.0);
    EXPECT_GT(m.energy.netPj, 0.0);
    EXPECT_GT(m.energy.staticPj, 0.0);
    EXPECT_NEAR(m.energy.total(),
                m.energy.coreSramPj + m.energy.dram() + m.energy.netPj
                    + m.energy.staticPj,
                1e-6);
}

TEST(NdpSystem, EpochDurationsSumBelowTotal)
{
    auto cfg = tinySystem(Design::B);
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("bfs"));
    RunMetrics m = sys.run(*wl);
    Tick sum = 0;
    for (Tick t : m.epochTicks)
        sum += t;
    EXPECT_EQ(m.epochTicks.size(), m.epochs);
    EXPECT_LE(m.ticks, sum + m.epochs); // epochs tile the run
}

TEST(NdpSystem, CoreActivityNeverExceedsRunLength)
{
    auto cfg = tinySystem(Design::Sl);
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("pr"));
    RunMetrics m = sys.run(*wl);
    for (Tick t : m.coreActiveTicks)
        EXPECT_LE(t, m.ticks);
    EXPECT_LE(m.utilization(), 1.0);
    EXPECT_GE(m.imbalance(), 1.0);
}

TEST(NdpSystemDeath, RunTwiceIsAnError)
{
    auto cfg = tinySystem(Design::B);
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("bfs"));
    sys.run(*wl);
    auto wl2 = makeWorkload(WorkloadSpec::tiny("bfs"));
    EXPECT_DEATH(sys.run(*wl2), "once");
}

} // namespace abndp
