/**
 * @file
 * Tests for the scheduling-policy / design-point registries: builtin
 * seeding, name-based construction, and — the point of the exercise —
 * that a brand-new policy registered from this translation unit
 * composes into a runnable design without touching any core file.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/ndp_system.hh"
#include "driver/experiment.hh"
#include "sched/policy_registry.hh"
#include "sched/scheduler.hh"
#include "workloads/factory.hh"

namespace abndp
{

namespace
{

/**
 * Toy window policy that never keeps a task: every scheduling-window
 * decision sends it to the next unit. The per-task forward-hop budget
 * bounds the resulting descriptor ping-pong, so runs still terminate.
 */
class AlwaysForwardPolicy : public SchedulingPolicy
{
  public:
    const char *name() const override { return "always-forward"; }

    UnitId
    choose(Scheduler &sched, const Task &task, UnitId creator) override
    {
        (void)task;
        return static_cast<UnitId>((creator + 1) % sched.unitCount());
    }

    bool usesSchedulingWindow() const override { return true; }
};

bool
contains(const std::vector<std::string> &names, const std::string &name)
{
    return std::find(names.begin(), names.end(), name) != names.end();
}

} // namespace

TEST(PolicyRegistry, BuiltinsAreSeeded)
{
    auto policies = registeredPolicyNames();
    EXPECT_TRUE(contains(policies, "local"));
    EXPECT_TRUE(contains(policies, "memmatch"));
    EXPECT_TRUE(contains(policies, "hybrid"));

    auto designs = registeredDesignPoints();
    for (const char *d : {"H", "B", "Sm", "Sl", "Sh", "C", "O"})
        EXPECT_TRUE(contains(designs, d)) << d;
}

TEST(PolicyRegistry, MakeByNameAndBuiltinMapping)
{
    SystemConfig cfg;
    auto p = makeSchedulingPolicy("memmatch", cfg);
    ASSERT_NE(p, nullptr);
    EXPECT_STREQ(p->name(), "memmatch");

    EXPECT_STREQ(builtinPolicyName(SchedPolicy::Colocate), "local");
    EXPECT_STREQ(builtinPolicyName(SchedPolicy::LowestDistance),
                 "memmatch");
    EXPECT_STREQ(builtinPolicyName(SchedPolicy::Hybrid), "hybrid");
}

TEST(PolicyRegistryDeathTest, UnknownNamesAreFatal)
{
    SystemConfig cfg;
    EXPECT_DEATH((void)makeSchedulingPolicy("no-such-policy", cfg),
                 "unknown scheduling policy");
    EXPECT_DEATH((void)composeDesign(cfg, "no-such-design"),
                 "unknown design point");
}

TEST(PolicyRegistry, ComposeDesignMatchesApplyDesign)
{
    SystemConfig base;
    for (const char *name : {"B", "Sm", "Sl", "Sh", "C", "O"}) {
        SystemConfig byName = composeDesign(base, name);
        SystemConfig byEnum = applyDesign(base, designFromName(name));
        EXPECT_EQ(byName.sched.workStealing, byEnum.sched.workStealing)
            << name;
        EXPECT_EQ(byName.traveller.style, byEnum.traveller.style) << name;
        EXPECT_DOUBLE_EQ(byName.sched.hybridAlpha,
                         byEnum.sched.hybridAlpha) << name;
        // The name route sets policyName; both must build the same
        // policy object.
        EXPECT_STREQ(makeConfiguredPolicy(byName)->name(),
                     makeConfiguredPolicy(byEnum)->name()) << name;
    }
}

TEST(PolicyRegistry, NewPolicyComposesIntoRunnableDesign)
{
    // Register a policy and a design point from this file only — no
    // edits to the scheduler, config, or epoch engine — and run a
    // workload under it.
    registerSchedulingPolicy("always-forward", [](const SystemConfig &) {
        return std::make_unique<AlwaysForwardPolicy>();
    });
    registerDesignPoint("AF",
                        {"always-forward", false, CacheStyle::None});
    EXPECT_TRUE(contains(registeredPolicyNames(), "always-forward"));
    EXPECT_TRUE(contains(registeredDesignPoints(), "AF"));

    SystemConfig cfg = composeDesign(SystemConfig{}, "AF");
    NdpSystem sys(cfg);
    EXPECT_STREQ(sys.scheduler().policy().name(), "always-forward");
    EXPECT_TRUE(sys.scheduler().usesSchedulingWindow());

    auto wl = makeWorkload(WorkloadSpec::tiny("bfs"));
    RunMetrics m = sys.run(*wl);
    EXPECT_TRUE(wl->verify());
    EXPECT_GT(m.tasks, 0u);
    // Every scheduling-window decision forwarded its task.
    EXPECT_GT(m.forwardedTasks, 0u);
}

} // namespace abndp
