/** @file Tests for the task scheduling policies (Eq. 1-3). */

#include <gtest/gtest.h>

#include <memory>

#include "cache/camp_mapping.hh"
#include "mem/address_map.hh"
#include "net/topology.hh"
#include "sched/scheduler.hh"

namespace abndp
{

namespace
{

struct SchedFixture
{
    explicit SchedFixture(SchedPolicy policy,
                          CacheStyle style = CacheStyle::None)
    {
        cfg.sched.policy = policy;
        cfg.traveller.style = style;
        cfg.sched.hybridAlpha = 3.0;
        cfg.sched.autoAlpha = false;
        topo = std::make_unique<Topology>(cfg);
        amap = std::make_unique<AddressMap>(cfg);
        camps = std::make_unique<CampMapping>(cfg, *topo, *amap);
        sched = std::make_unique<Scheduler>(cfg, *topo, *camps);
    }

    Task
    taskOn(UnitId home, std::initializer_list<UnitId> reads = {})
    {
        Task t;
        t.hint.data.push_back(amap->unitBase(home) + 64);
        t.mainHome = home;
        for (UnitId r : reads)
            t.hint.data.push_back(amap->unitBase(r) + 64);
        t.loadEstimate = sched->estimateLoad(t);
        return t;
    }

    SystemConfig cfg;
    std::unique_ptr<Topology> topo;
    std::unique_ptr<AddressMap> amap;
    std::unique_ptr<CampMapping> camps;
    std::unique_ptr<Scheduler> sched;
};

} // namespace

TEST(Scheduler, ColocatePicksMainHome)
{
    SchedFixture f(SchedPolicy::Colocate);
    Task t = f.taskOn(77, {1, 2, 3});
    EXPECT_EQ(f.sched->choose(t, 5), 77u);
}

TEST(Scheduler, LowestDistanceSingleAddressPicksHome)
{
    SchedFixture f(SchedPolicy::LowestDistance);
    Task t = f.taskOn(42);
    EXPECT_EQ(f.sched->choose(t, 0), 42u);
}

TEST(Scheduler, LowestDistancePrefersMajorityStack)
{
    SchedFixture f(SchedPolicy::LowestDistance);
    // Main element on unit 0 but most reads live in units 120..122
    // (far corner stack); the lowest-distance unit is one of those.
    Task t = f.taskOn(0, {120, 121, 122, 123, 124});
    UnitId dst = f.sched->choose(t, 0);
    EXPECT_TRUE(f.topo->sameStack(dst, 120));
}

TEST(Scheduler, HybridStaysHomeWhenBalanced)
{
    SchedFixture f(SchedPolicy::Hybrid);
    // Uniform load everywhere.
    for (UnitId u = 0; u < 128; ++u)
        f.sched->onEnqueued(u, 100.0, u);
    f.sched->exchangeSnapshot();
    Task t = f.taskOn(42);
    EXPECT_EQ(f.sched->choose(t, 42), 42u);
}

TEST(Scheduler, HybridAvoidsOverloadedHome)
{
    SchedFixture f(SchedPolicy::Hybrid);
    // Home unit 42 is massively overloaded; everyone else idle-ish.
    for (UnitId u = 0; u < 128; ++u)
        f.sched->onEnqueued(u, u == 42 ? 100000.0 : 10.0, u);
    f.sched->exchangeSnapshot();
    Task t = f.taskOn(42);
    UnitId dst = f.sched->choose(t, 7);
    EXPECT_NE(dst, 42u);
}

TEST(Scheduler, HybridWeightBalancesDistanceAndLoad)
{
    // With B = 3 * Dinter, an idle unit can be up to ~3 hops more
    // distant and still win over a fully loaded unit (Section 5.2).
    SchedFixture f(SchedPolicy::Hybrid);
    EXPECT_DOUBLE_EQ(f.sched->hybridWeight(), 30.0);
}

TEST(Scheduler, EstimateLoadUsesWorkloadHintWhenPresent)
{
    SchedFixture f(SchedPolicy::Hybrid);
    Task t = f.taskOn(0);
    t.hint.workload = 777;
    EXPECT_DOUBLE_EQ(f.sched->estimateLoad(t), 777.0);
}

TEST(Scheduler, EstimateLoadGrowsWithHintSize)
{
    SchedFixture f(SchedPolicy::Hybrid);
    Task small = f.taskOn(0);
    Task big = f.taskOn(0, {1, 2, 3, 4, 5, 6, 7});
    EXPECT_GT(f.sched->estimateLoad(big), f.sched->estimateLoad(small));
}

TEST(Scheduler, WBookkeepingRoundTrips)
{
    SchedFixture f(SchedPolicy::Hybrid);
    f.sched->onEnqueued(3, 50.0, 3);
    EXPECT_DOUBLE_EQ(f.sched->trueW(3), 50.0);
    f.sched->onDequeued(3, 50.0);
    EXPECT_DOUBLE_EQ(f.sched->trueW(3), 0.0);
    // Underflow clamps at zero.
    f.sched->onDequeued(3, 10.0);
    EXPECT_DOUBLE_EQ(f.sched->trueW(3), 0.0);
}

TEST(Scheduler, StealMovesW)
{
    SchedFixture f(SchedPolicy::LowestDistance);
    f.sched->onEnqueued(1, 80.0, 1);
    f.sched->onStolen(1, 2, 30.0);
    EXPECT_DOUBLE_EQ(f.sched->trueW(1), 50.0);
    EXPECT_DOUBLE_EQ(f.sched->trueW(2), 30.0);
}

TEST(Scheduler, SnapshotIsStaleUntilExchange)
{
    SchedFixture f(SchedPolicy::Hybrid);
    f.sched->onEnqueued(9, 500.0, 9);
    EXPECT_DOUBLE_EQ(f.sched->snapshotW(9), 0.0);
    f.sched->exchangeSnapshot();
    EXPECT_DOUBLE_EQ(f.sched->snapshotW(9), 500.0);
}

TEST(Scheduler, CampAwareHybridCanPickACampLocation)
{
    SchedFixture f(SchedPolicy::Hybrid, CacheStyle::TravellerSramTags);
    // Overload the home so the task must move; with camp-aware costmem
    // the destination should be (or sit near) one of the candidates.
    Addr addr = f.amap->unitBase(0) + 64;
    for (UnitId u = 0; u < 128; ++u)
        f.sched->onEnqueued(u, u == 0 ? 100000.0 : 10.0, u);
    f.sched->exchangeSnapshot();

    Task t;
    t.hint.data.push_back(addr);
    t.mainHome = 0;
    t.loadEstimate = f.sched->estimateLoad(t);
    UnitId dst = f.sched->choose(t, 0);
    EXPECT_NE(dst, 0u);

    CandidateList cl;
    f.camps->candidates(addr, cl);
    double d_best = 1e18;
    for (std::uint32_t c = 0; c < cl.n; ++c)
        d_best = std::min(d_best, f.topo->distanceCost(dst, cl.loc[c]));
    // The chosen unit is close to some candidate caching location
    // (within the same stack), not an arbitrary far unit.
    EXPECT_LE(d_best, f.topo->intraCost());
}

TEST(Scheduler, ForwardedUpdatesViewsAndTrueW)
{
    SchedFixture f(SchedPolicy::Hybrid);
    f.sched->onEnqueued(4, 60.0, 4);
    f.sched->onForwarded(4, 9, 60.0, 4);
    EXPECT_DOUBLE_EQ(f.sched->trueW(4), 0.0);
    EXPECT_DOUBLE_EQ(f.sched->trueW(9), 60.0);
}

TEST(Scheduler, DecisionCounterIncrements)
{
    SchedFixture f(SchedPolicy::Colocate);
    Task t = f.taskOn(1);
    f.sched->choose(t, 0);
    f.sched->choose(t, 0);
    EXPECT_EQ(f.sched->decisions(), 2u);
}

} // namespace abndp
