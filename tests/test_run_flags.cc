/**
 * @file
 * The shared run-output flag helper (driver/run_flags.hh): parsing,
 * config wiring with per-cell tagging, and the parallel-grid
 * stats-interval guard.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/cli.hh"
#include "driver/cell_runner.hh"
#include "driver/run_flags.hh"

namespace abndp
{

namespace
{

/** Build CliFlags from a literal argv (argv[0] is the program name). */
CliFlags
makeFlags(std::vector<std::string> argv)
{
    argv.insert(argv.begin(), "test");
    std::vector<char *> raw;
    for (auto &a : argv)
        raw.push_back(a.data());
    return CliFlags(static_cast<int>(raw.size()), raw.data());
}

} // namespace

TEST(RunFlags, DefaultsAreQuiet)
{
    CliFlags flags = makeFlags({});
    RunFlags rf = parseRunFlags(flags);
    EXPECT_EQ(rf.threads, defaultThreads());
    EXPECT_TRUE(rf.traceOut.empty());
    EXPECT_TRUE(rf.statsOut.empty());
    EXPECT_EQ(rf.statsInterval, 0u);
    EXPECT_FALSE(rf.anyOutput());
}

TEST(RunFlags, ThreadsDefaultOverride)
{
    CliFlags flags = makeFlags({});
    EXPECT_EQ(parseRunFlags(flags, 1).threads, 1u);
    CliFlags withFlag = makeFlags({"--threads=7"});
    // An explicit --threads always wins over the caller's default.
    EXPECT_EQ(parseRunFlags(withFlag, 1).threads, 7u);
}

TEST(RunFlags, ParsesAllFourFlags)
{
    CliFlags flags = makeFlags({"--threads=3", "--trace-out=t.json",
                                "--stats-out=s.txt",
                                "--stats-interval=5"});
    RunFlags rf = parseRunFlags(flags);
    EXPECT_EQ(rf.threads, 3u);
    EXPECT_EQ(rf.traceOut, "t.json");
    EXPECT_EQ(rf.statsOut, "s.txt");
    EXPECT_EQ(rf.statsInterval, 5u);
    EXPECT_TRUE(rf.anyOutput());
}

TEST(RunFlags, ApplyWiresConfigAndTagsPaths)
{
    RunFlags rf;
    rf.traceOut = "out/trace.json";
    rf.statsOut = "stats.txt";
    rf.statsInterval = 2;
    SystemConfig cfg;
    applyRunFlags(rf, cfg, "pr.O");
    EXPECT_EQ(cfg.traceOut, "out/trace.pr.O.json");
    EXPECT_EQ(cfg.statsOut, "stats.pr.O.txt");
    EXPECT_EQ(cfg.statsInterval, 2u);

    SystemConfig untagged;
    applyRunFlags(rf, untagged);
    EXPECT_EQ(untagged.traceOut, "out/trace.json");
    EXPECT_EQ(untagged.statsOut, "stats.txt");
}

TEST(RunFlags, ApplyLeavesUnsetFieldsAlone)
{
    RunFlags rf; // nothing requested
    SystemConfig cfg;
    cfg.traceOut = "preset.json";
    applyRunFlags(rf, cfg, "tag");
    EXPECT_EQ(cfg.traceOut, "preset.json"); // not clobbered by ""
    EXPECT_EQ(cfg.statsInterval, 0u);
}

TEST(RunFlags, MemBackendParsesAndApplies)
{
    CliFlags flags = makeFlags({"--mem-backend=ddr"});
    RunFlags rf = parseRunFlags(flags);
    EXPECT_EQ(rf.memBackend, "ddr");
    SystemConfig cfg;
    applyRunFlags(rf, cfg);
    EXPECT_EQ(cfg.dram.backend, MemBackendKind::Ddr);

    // Unset leaves the config's choice alone (including a non-default
    // one baked into a preset).
    RunFlags quiet;
    SystemConfig preset;
    preset.dram.backend = MemBackendKind::Ddr;
    applyRunFlags(quiet, preset);
    EXPECT_EQ(preset.dram.backend, MemBackendKind::Ddr);

    // Explicit meter overrides a DDR preset.
    CliFlags meterFlags = makeFlags({"--mem-backend=meter"});
    SystemConfig back;
    back.dram.backend = MemBackendKind::Ddr;
    applyRunFlags(parseRunFlags(meterFlags), back);
    EXPECT_EQ(back.dram.backend, MemBackendKind::Meter);
}

TEST(RunFlagsDeath, UnknownMemBackendNameIsFatal)
{
    RunFlags rf;
    rf.memBackend = "hbm3";
    SystemConfig cfg;
    EXPECT_DEATH(applyRunFlags(rf, cfg), "unknown memory backend");
}

TEST(RunFlagsDeath, MultiCellIntervalStatsRequireFile)
{
    RunFlags rf;
    rf.statsInterval = 3; // interval dumps but no --stats-out
    SystemConfig cfg;
    EXPECT_DEATH(applyRunFlags(rf, cfg, "pr.O", /*multiCell=*/true),
                 "stats-interval under a parallel grid requires");
}

} // namespace abndp
