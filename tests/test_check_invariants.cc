/**
 * @file
 * The machine invariant checkers (src/check): every conservation law
 * holds on real runs under every NDP design, checkers are purely
 * observational (stats dumps stay byte-identical on/off), and — via
 * perturbation — every checker provably fires on inconsistent state.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "check/check_context.hh"
#include "check/machine_checker.hh"
#include "core/ndp_system.hh"
#include "driver/experiment.hh"
#include "workloads/factory.hh"

namespace abndp
{

namespace
{

SystemConfig
smallConfig(Design d, bool check)
{
    SystemConfig cfg;
    cfg.meshX = cfg.meshY = 2;
    cfg.unitsPerStack = 2;
    cfg.coresPerUnit = 2;
    cfg = applyDesign(cfg, d);
    cfg.checkInvariants = check;
    return cfg;
}

/** Run pr-tiny under @p d and return the full registry dump. */
std::string
runAndDump(Design d, bool check, const char *wlname = "pr")
{
    auto cfg = smallConfig(d, check);
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny(wlname));
    sys.run(*wl);
    EXPECT_TRUE(wl->verify()) << designName(d);
    std::ostringstream oss;
    sys.statsRegistry().dump(oss);
    return oss.str();
}

} // namespace

// ---- CheckContext mechanics -------------------------------------------

TEST(CheckContext, CollectsAndClearsViolations)
{
    check::CheckContext ctx;
    EXPECT_TRUE(ctx.enabled());
    EXPECT_TRUE(ctx.clean());
    ctx.require(1 + 1 == 2, "arithmetic broke");
    EXPECT_TRUE(ctx.clean());
    ctx.require(false, "first: ", 42);
    ctx.fail("second");
    ASSERT_EQ(ctx.violations().size(), 2u);
    EXPECT_EQ(ctx.violations()[0], "first: 42");
    EXPECT_EQ(ctx.violations()[1], "second");
    ctx.clearViolations();
    EXPECT_TRUE(ctx.clean());
}

TEST(CheckContext, CollectModeSuppressesRaise)
{
    check::CheckContext ctx;
    ctx.setCollect(true);
    ctx.fail("kept for inspection");
    ctx.raiseIfAny("test phase"); // must not abort
    EXPECT_EQ(ctx.violations().size(), 1u);
}

TEST(CheckContextDeath, RaisePanicsWithAllViolations)
{
    check::CheckContext ctx;
    ctx.fail("broken conservation law");
    EXPECT_DEATH(ctx.raiseIfAny("epoch end"),
                 "machine invariant violation.*epoch end.*broken "
                 "conservation law");
}

// ---- Perturbation: every primitive checker fires ----------------------

TEST(CheckerPerturbation, TaskConservationFires)
{
    check::CheckContext ctx;
    check::MachineChecker::checkTaskConservation(ctx, 3, 100, 100);
    EXPECT_TRUE(ctx.clean());
    check::MachineChecker::checkTaskConservation(ctx, 3, 100, 99);
    ASSERT_FALSE(ctx.clean());
    EXPECT_NE(ctx.violations()[0].find("task conservation"),
              std::string::npos);
}

TEST(CheckerPerturbation, OccupancyReconciliationFires)
{
    check::CheckContext ctx;
    check::MachineChecker::checkOccupancy(ctx, "traveller cache", 0,
                                          7, 10, 3, 64);
    EXPECT_TRUE(ctx.clean());
    // Occupancy disagrees with the insert/evict delta.
    check::MachineChecker::checkOccupancy(ctx, "traveller cache", 0,
                                          6, 10, 3, 64);
    ASSERT_EQ(ctx.violations().size(), 1u);
    EXPECT_NE(ctx.violations()[0].find("occupancy 6"),
              std::string::npos);
    ctx.clearViolations();
    // Occupancy exceeds capacity (and the delta, separately).
    check::MachineChecker::checkOccupancy(ctx, "prefetch buffer", 2,
                                          65, 70, 5, 64);
    ASSERT_EQ(ctx.violations().size(), 1u);
    EXPECT_NE(ctx.violations()[0].find("exceeds capacity"),
              std::string::npos);
}

TEST(CheckerPerturbation, HitMissTotalsFire)
{
    check::CheckContext ctx;
    check::MachineChecker::checkHitMissTotals(ctx, "traveller cache",
                                              10, 20, 10, 20);
    EXPECT_TRUE(ctx.clean());
    check::MachineChecker::checkHitMissTotals(ctx, "traveller cache",
                                              10, 20, 11, 19);
    EXPECT_EQ(ctx.violations().size(), 2u);
}

TEST(CheckerPerturbation, HopAccountingFires)
{
    check::CheckContext ctx;
    check::MachineChecker::checkHopAccounting(ctx, 42, 42);
    EXPECT_TRUE(ctx.clean());
    check::MachineChecker::checkHopAccounting(ctx, 43, 42);
    ASSERT_FALSE(ctx.clean());
    EXPECT_NE(ctx.violations()[0].find("hop accounting"),
              std::string::npos);
}

TEST(CheckerPerturbation, EnergyAdditivityFires)
{
    check::CheckContext ctx;
    EnergyBreakdown bd;
    bd.coreSramPj = 10.0;
    bd.netPj = 5.0;
    check::MachineChecker::checkEnergyAdditivity(ctx, bd);
    EXPECT_TRUE(ctx.clean());
    bd.dramMemPj = -1.0; // negative component
    check::MachineChecker::checkEnergyAdditivity(ctx, bd);
    ASSERT_FALSE(ctx.clean());
    EXPECT_NE(ctx.violations()[0].find("non-negative"),
              std::string::npos);
}

TEST(CheckerPerturbation, EnergyMonotonicityFires)
{
    check::CheckContext ctx;
    EnergyBreakdown prev, cur;
    prev.netPj = 10.0;
    cur.netPj = 9.0; // accumulated energy decreased
    check::MachineChecker::checkEnergyMonotone(ctx, prev, cur);
    ASSERT_FALSE(ctx.clean());
    EXPECT_NE(ctx.violations()[0].find("backwards"), std::string::npos);
}

TEST(CheckerPerturbation, BucketFillFires)
{
    check::CheckContext ctx;
    check::checkBucketFill<Tick>(ctx, "dram bank", 3, 1000, 1000);
    EXPECT_TRUE(ctx.clean());
    check::checkBucketFill<Tick>(ctx, "dram bank", 3, 1001, 1000);
    ASSERT_FALSE(ctx.clean());
    EXPECT_NE(ctx.violations()[0].find("overbooked"), std::string::npos);
}

TEST(CheckerPerturbation, TaskConservationUnderFailureFires)
{
    // The failure-mode split law: staged == direct + recovered. A lost
    // task, a double-run, or a dropped recovery marker all surface as
    // an imbalance between the three counters.
    check::CheckContext ctx;
    check::MachineChecker::checkTaskConservationUnderFailure(ctx, 2, 10,
                                                             7, 3);
    EXPECT_TRUE(ctx.clean());
    check::MachineChecker::checkTaskConservationUnderFailure(ctx, 2, 10,
                                                             7, 2);
    ASSERT_FALSE(ctx.clean());
    EXPECT_NE(ctx.violations()[0].find("task conservation under failure"),
              std::string::npos);
}

TEST(CheckerPerturbation, MigrationConservationFires)
{
    // Re-homing law: with camp caching on, sweeps == migrations; with
    // caching off, sweeps == 0. A missed sweep (stale Traveller entry
    // left behind) and a phantom sweep both surface as an imbalance.
    check::CheckContext ctx;
    check::MachineChecker::checkMigrationConservation(ctx, 5, 5, true);
    check::MachineChecker::checkMigrationConservation(ctx, 5, 0, false);
    check::MachineChecker::checkMigrationConservation(ctx, 0, 0, true);
    EXPECT_TRUE(ctx.clean());
    check::MachineChecker::checkMigrationConservation(ctx, 5, 4, true);
    ASSERT_FALSE(ctx.clean());
    EXPECT_NE(ctx.violations()[0].find("migration conservation"),
              std::string::npos);
    ctx.clearViolations();
    // A sweep without caching means phantom invalidation work.
    check::MachineChecker::checkMigrationConservation(ctx, 5, 5, false);
    ASSERT_FALSE(ctx.clean());
}

TEST(CheckerPerturbation, EpochHookDetectsLostTask)
{
    // End-to-end through the hook: a freshly built machine whose epoch
    // engine claims 5 staged but only 3 executed tasks must record a
    // conservation violation (collect mode keeps it inspectable).
    auto cfg = smallConfig(Design::O, true);
    NdpSystem sys(cfg);
    auto *checker = sys.invariantChecker();
    ASSERT_NE(checker, nullptr);
    checker->context().setCollect(true);
    checker->onEpochStart(0, 5);
    checker->onEpochEnd(0, 3, 0, 0);
    bool found = false;
    for (const auto &v : checker->context().violations())
        found |= v.find("task conservation") != std::string::npos;
    EXPECT_TRUE(found);
}

// ---- Positive: real runs satisfy every invariant ----------------------

class CheckedDesignRun : public ::testing::TestWithParam<Design>
{
};

TEST_P(CheckedDesignRun, AllInvariantsHoldEndToEnd)
{
    // A violation would panic inside run(); reaching the end cleanly is
    // the assertion. Cover a stealing design, a forwarding design, and
    // the full O machine via the parameter.
    auto cfg = smallConfig(GetParam(), true);
    NdpSystem sys(cfg);
    ASSERT_NE(sys.invariantChecker(), nullptr);
    auto wl = makeWorkload(WorkloadSpec::tiny("pr"));
    RunMetrics m = sys.run(*wl);
    EXPECT_TRUE(wl->verify());
    EXPECT_GT(m.tasks, 0u);
    EXPECT_TRUE(sys.invariantChecker()->context().clean());
}

INSTANTIATE_TEST_SUITE_P(AllNdpDesigns, CheckedDesignRun,
                         ::testing::ValuesIn(ndpDesigns()),
                         [](const auto &info) {
                             return designToken(info.param);
                         });

TEST(CheckedDesignRun, SecondWorkloadUnderO)
{
    auto cfg = smallConfig(Design::O, true);
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("kmeans"));
    sys.run(*wl);
    EXPECT_TRUE(wl->verify());
}

// ---- Observational-only: checkers never perturb the machine -----------

TEST(CheckerDeterminism, StatsDumpIdenticalWithCheckersArmed)
{
    // The check layer follows the obs:: rule: arming it must not change
    // a single stat (no timing or Rng feedback). Byte-compare the full
    // registry dump of checked vs unchecked runs for every NDP design.
    for (Design d : ndpDesigns()) {
        std::string off = runAndDump(d, false);
        std::string on = runAndDump(d, true);
        EXPECT_EQ(off, on) << "checkers perturbed design "
                           << designName(d);
    }
}

} // namespace abndp
