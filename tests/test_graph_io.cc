/** @file Tests for the SNAP edge-list loader. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "workloads/factory.hh"
#include "workloads/graph_gen.hh"
#include "workloads/graph_io.hh"

namespace abndp
{

namespace
{

/** RAII temp file. */
struct TempFile
{
    TempFile()
    {
        char tmpl[] = "/tmp/abndp_graph_XXXXXX";
        int fd = mkstemp(tmpl);
        EXPECT_GE(fd, 0);
        close(fd);
        path = tmpl;
    }
    ~TempFile() { std::remove(path.c_str()); }
    std::string path;
};

} // namespace

TEST(GraphIo, LoadsSnapStyleEdgeList)
{
    TempFile f;
    {
        std::ofstream out(f.path);
        out << "# Directed graph: example\n"
               "# FromNodeId\tToNodeId\n"
               "0\t1\n"
               "0\t2\n"
               "2\t3\n";
    }
    Graph g = loadEdgeList(f.path, false);
    EXPECT_EQ(g.numVertices(), 4u);
    EXPECT_EQ(g.numEdges(), 3u);
    EXPECT_EQ(g.degree(0), 2u);
    EXPECT_EQ(g.neighbors(2)[0], 3u);
}

TEST(GraphIo, UndirectedLoadStoresBothArcs)
{
    TempFile f;
    {
        std::ofstream out(f.path);
        out << "0 1\n1 2\n";
    }
    Graph g = loadEdgeList(f.path, true);
    EXPECT_EQ(g.numEdges(), 4u);
    EXPECT_EQ(g.degree(1), 2u);
}

TEST(GraphIo, RoundTripPreservesGraph)
{
    RmatParams p;
    p.scale = 8;
    p.edgeFactor = 4;
    Graph g = makeRmatGraph(p);
    TempFile f;
    saveEdgeList(g, f.path);
    Graph g2 = loadEdgeList(f.path, false);
    // Trailing isolated vertices are not representable in an edge list,
    // so the loaded vertex count may shrink; everything else matches.
    EXPECT_EQ(g2.numEdges(), g.numEdges());
    ASSERT_LE(g2.numVertices(), g.numVertices());
    for (std::uint32_t v = 0; v < g2.numVertices(); ++v) {
        ASSERT_EQ(g2.degree(v), g.degree(v)) << v;
        for (std::uint32_t i = 0; i < g2.degree(v); ++i)
            ASSERT_EQ(g2.neighbors(v)[i], g.neighbors(v)[i]);
    }
    for (std::uint32_t v = g2.numVertices(); v < g.numVertices(); ++v)
        EXPECT_EQ(g.degree(v), 0u);
}

TEST(GraphIo, FactoryUsesGraphFile)
{
    TempFile f;
    {
        std::ofstream out(f.path);
        for (int v = 0; v < 64; ++v)
            out << v << " " << (v + 1) % 64 << "\n";
    }
    WorkloadSpec spec = WorkloadSpec::tiny("bfs");
    spec.graphFile = f.path;
    auto wl = makeWorkload(spec);
    EXPECT_EQ(wl->name(), "bfs");
    // Runs end-to-end on the loaded ring graph.
    SystemConfig cfg;
    SimAllocator alloc(cfg);
    wl->setup(alloc);
    ImmediateExecutor exec(*wl);
    wl->emitInitialTasks(exec);
    exec.runToCompletion();
    EXPECT_TRUE(wl->verify());
}

TEST(GraphIoDeath, MissingFileIsFatal)
{
    EXPECT_DEATH(loadEdgeList("/nonexistent/abndp.graph", false),
                 "cannot open");
}

TEST(GraphIoDeath, MalformedLineIsFatal)
{
    TempFile f;
    {
        std::ofstream out(f.path);
        out << "0 1\nnot an edge\n";
    }
    EXPECT_DEATH(loadEdgeList(f.path, false), "malformed");
}

} // namespace abndp
