/**
 * @file
 * Unit and small-integration tests of the hierarchical load balancer
 * (src/sched/lb): per-tier balancer plans, the hotness tracker and
 * home-indirection contracts the differential suite locks at scale,
 * the two-tier engine's shed/migration planning, and the end-to-end
 * HLB design points — including the gating rule that an unconfigured
 * balancer leaves the stats tree (and therefore every pre-HLB golden)
 * untouched.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "cache/camp_mapping.hh"
#include "core/ndp_system.hh"
#include "mem/address_map.hh"
#include "net/topology.hh"
#include "sched/lb/balancers.hh"
#include "sched/lb/data_hotness.hh"
#include "sched/lb/home_indirection.hh"
#include "sched/lb/lb_engine.hh"
#include "workloads/factory.hh"

namespace abndp
{

namespace
{

LbConfig
lbKnobs()
{
    LbConfig cfg;
    cfg.enabled = true;
    cfg.idleThreshold = 2;
    cfg.chunkSize = 4;
    cfg.reserveFrac = 0.5;
    return cfg;
}

} // namespace

// ---- Per-tier balancers (src/sched/lb/balancers) ----------------------

TEST(LbBalancers, StealingPullsFromMostLoadedDonor)
{
    // Thief 0 is idle (0 <= idleThreshold); donor 1 has excess 8 above
    // the threshold, so the steal-half rule takes min(chunk, 8/2) = 4.
    auto moves = planTier(LbTierKind::Stealing, lbKnobs(), {0, 10}, {});
    ASSERT_EQ(moves.size(), 1u);
    EXPECT_EQ(moves[0].from, 1u);
    EXPECT_EQ(moves[0].to, 0u);
    EXPECT_EQ(moves[0].count, 4u);
}

TEST(LbBalancers, StealingLeavesIdleDonorsAlone)
{
    // Everyone at or below the idle threshold: nothing worth shedding.
    EXPECT_TRUE(
        planTier(LbTierKind::Stealing, lbKnobs(), {0, 2}, {}).empty());
}

TEST(LbBalancers, AverageLevelsTowardIntegerMean)
{
    // Mean of {8, 0, 4} is 4: member 0 sheds its surplus of 4 into
    // member 1's deficit; member 2 is already on target.
    auto moves = planTier(LbTierKind::Average, lbKnobs(), {8, 0, 4}, {});
    ASSERT_EQ(moves.size(), 1u);
    EXPECT_EQ(moves[0].from, 0u);
    EXPECT_EQ(moves[0].to, 1u);
    EXPECT_EQ(moves[0].count, 4u);
}

TEST(LbBalancers, AverageSkipsDegenerateMeans)
{
    // Integer mean 0: levelling toward it would drain every member.
    EXPECT_TRUE(
        planTier(LbTierKind::Average, lbKnobs(), {1, 0}, {}).empty());
}

TEST(LbBalancers, ReserveShrinksHotOwnersTarget)
{
    // Mean of {6, 2} is 4. Member 0 owns all tracked hotness, so its
    // target shrinks to floor(4 * (1 - 0.5)) = 2 and it sheds down to
    // it — but only into member 1's deficit of 2 (targets cap intake).
    auto moves =
        planTier(LbTierKind::Reserve, lbKnobs(), {6, 2}, {1.0, 0.0});
    ASSERT_EQ(moves.size(), 1u);
    EXPECT_EQ(moves[0].from, 0u);
    EXPECT_EQ(moves[0].to, 1u);
    EXPECT_EQ(moves[0].count, 2u);
}

TEST(LbBalancers, ReserveWithoutHotnessDegeneratesToAverage)
{
    auto reserve =
        planTier(LbTierKind::Reserve, lbKnobs(), {8, 0, 4}, {});
    auto average =
        planTier(LbTierKind::Average, lbKnobs(), {8, 0, 4}, {});
    ASSERT_EQ(reserve.size(), average.size());
    for (std::size_t i = 0; i < reserve.size(); ++i) {
        EXPECT_EQ(reserve[i].from, average[i].from);
        EXPECT_EQ(reserve[i].to, average[i].to);
        EXPECT_EQ(reserve[i].count, average[i].count);
    }
}

TEST(LbBalancers, DegenerateMembershipsPlanNothing)
{
    EXPECT_TRUE(planTier(LbTierKind::Stealing, lbKnobs(), {5}, {}).empty());
    EXPECT_TRUE(planTier(LbTierKind::None, lbKnobs(), {9, 0}, {}).empty());
}

// ---- DataHotness (differential suite covers the full op mix) ----------

TEST(DataHotness, TopKOrdersByCountThenBlock)
{
    DataHotness hot(1, 4, 1);
    for (int i = 0; i < 3; ++i)
        hot.record(0, 0x1000, 1);
    hot.record(0, 0x2000, 2);
    hot.record(0, 0x0800, 3);
    auto top = hot.topK(0);
    ASSERT_EQ(top.size(), 3u);
    EXPECT_EQ(top[0].block, 0x1000u);
    EXPECT_EQ(top[0].cnt, 3u);
    // Equal counts break ties toward the lower block address.
    EXPECT_EQ(top[1].block, 0x0800u);
    EXPECT_EQ(top[2].block, 0x2000u);
}

TEST(DataHotness, MajorityVoteTracksDominantRequester)
{
    DataHotness hot(1, 2, 1);
    hot.record(0, 0x40, 5);
    hot.record(0, 0x40, 7);
    hot.record(0, 0x40, 7);
    hot.record(0, 0x40, 7);
    auto top = hot.topK(0);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0].reqId, 7u);
}

TEST(DataHotness, DecayHalvesAndFreesSlots)
{
    DataHotness hot(1, 2, 1);
    for (int i = 0; i < 4; ++i)
        hot.record(0, 0x40, 1);
    hot.record(0, 0x80, 2);
    hot.decayAll();     // 4 -> 2, 1 -> 0 (slot freed)
    auto top = hot.topK(0);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0].block, 0x40u);
    EXPECT_EQ(top[0].cnt, 2u);
    EXPECT_EQ(hot.totalCount(0), 2u);
}

// ---- HomeIndirection --------------------------------------------------

TEST(HomeIndirection, ResolvesOverlayAndErasesOnBaseRestore)
{
    HomeIndirection indir;
    EXPECT_FALSE(indir.active());
    EXPECT_EQ(indir.resolve(0x1000, 3), 3u);

    indir.set(0x1000, 7, 3);
    EXPECT_TRUE(indir.active());
    EXPECT_EQ(indir.resolve(0x1000, 3), 7u);
    EXPECT_EQ(indir.resolve(0x2000, 3), 3u);

    // Re-homing back to the base erases the entry outright.
    indir.set(0x1000, 3, 3);
    EXPECT_FALSE(indir.active());
    EXPECT_EQ(indir.entries(), 0u);
}

// ---- LbEngine: two-tier planning and migration ------------------------

namespace
{

/** 2x1 mesh, 2 units/stack: stacks {0,1} and {2,3}. */
SystemConfig
engineConfig()
{
    SystemConfig cfg;
    cfg.meshX = 2;
    cfg.meshY = 1;
    cfg.unitsPerStack = 2;
    cfg.coresPerUnit = 1;
    cfg.traveller.campCount = 1;
    cfg.lb = lbKnobs();
    return cfg;
}

} // namespace

TEST(LbEngine, PlansIntraThenInterOverSnapshots)
{
    auto cfg = engineConfig();
    Topology topo(cfg);
    LbEngine engine(cfg.lb, topo);

    // Stack 0 holds {10, 0}: the intra stealing tier moves 4 to the
    // idle unit. Stack totals are {10, 6}; the inter average tier
    // levels stack 1 up to the mean of 8 with 2 tasks, pinned to the
    // pre-shed most loaded donor (unit 0) and least loaded receiver
    // (unit 2, lowest id among the tied pair).
    auto cmds = engine.planSheds({10, 0, 3, 3});
    ASSERT_EQ(cmds.size(), 2u);
    EXPECT_FALSE(cmds[0].inter);
    EXPECT_EQ(cmds[0].victim, 0u);
    EXPECT_EQ(cmds[0].thief, 1u);
    EXPECT_EQ(cmds[0].count, 4u);
    EXPECT_TRUE(cmds[1].inter);
    EXPECT_EQ(cmds[1].victim, 0u);
    EXPECT_EQ(cmds[1].thief, 2u);
    EXPECT_EQ(cmds[1].count, 2u);
}

TEST(LbEngine, MigrationHonorsThresholdCooldownAndCap)
{
    auto cfg = engineConfig();
    cfg.lb.decayShift = 0;      // isolate the cooldown from decay
    cfg.lb.migration.enabled = true;
    cfg.lb.migration.threshold = 3;
    cfg.lb.migration.cooldownWindows = 2;
    cfg.lb.migration.maxPerExchange = 8;
    Topology topo(cfg);
    AddressMap amap(cfg);
    CampMapping camps(cfg, topo, amap);
    LbEngine engine(cfg.lb, topo);

    // Find a block the static map homes at unit 0 and heat it from a
    // remote requester until it crosses the migration threshold.
    Addr hotBlock = 0;
    bool found = false;
    for (Addr a = 0; a < (1ull << 22) && !found; a += cachelineBytes) {
        if (camps.homeOf(a) == 0) {
            hotBlock = a;
            found = true;
        }
    }
    ASSERT_TRUE(found);
    engine.hotness().record(0, hotBlock, 2);
    engine.hotness().record(0, hotBlock, 2);
    EXPECT_TRUE(engine.planMigrations(camps).empty()) << "below threshold";

    engine.hotness().record(0, hotBlock, 2);
    auto cmds = engine.planMigrations(camps);
    ASSERT_EQ(cmds.size(), 1u);
    EXPECT_EQ(cmds[0].block, hotBlock);
    EXPECT_EQ(cmds[0].from, 0u);
    EXPECT_EQ(cmds[0].to, 2u);

    // Planning dropped the hotness entry and armed the cooldown: even
    // re-heated past the threshold, the block must rest two windows.
    for (int i = 0; i < 5; ++i)
        engine.hotness().record(0, hotBlock, 2);
    EXPECT_TRUE(engine.planMigrations(camps).empty()) << "cooldown";
    engine.onWindow();
    engine.onWindow();
    EXPECT_EQ(engine.planMigrations(camps).size(), 1u);
}

TEST(LbEngine, MigrationSkipsSelfAndUnknownRequesters)
{
    auto cfg = engineConfig();
    cfg.lb.migration.enabled = true;
    cfg.lb.migration.threshold = 1;
    Topology topo(cfg);
    AddressMap amap(cfg);
    CampMapping camps(cfg, topo, amap);
    LbEngine engine(cfg.lb, topo);

    // The address space is range-partitioned: stride by unit-region
    // fractions to land in unit 1's range.
    Addr block = 0;
    bool found = false;
    const Addr total =
        static_cast<Addr>(cfg.memBytesPerUnit) * cfg.numUnits();
    for (Addr a = 0; a < total && !found; a += cfg.memBytesPerUnit / 4) {
        if (camps.homeOf(a) == 1) {
            block = a;
            found = true;
        }
    }
    ASSERT_TRUE(found);
    // Majority requester == home: moving it nowhere is not a plan.
    engine.hotness().record(1, block, 1);
    engine.hotness().record(1, block, 1);
    EXPECT_TRUE(engine.planMigrations(camps).empty());
}

// ---- End-to-end: the HLB design points --------------------------------

namespace
{

SystemConfig
smallConfig(Design d)
{
    SystemConfig cfg;
    cfg.meshX = cfg.meshY = 2;
    cfg.unitsPerStack = 2;
    cfg.coresPerUnit = 2;
    return applyDesign(cfg, d);
}

/** Run pr-tiny under @p d and return (metrics, full stats dump). */
std::pair<RunMetrics, std::string>
runSmall(Design d)
{
    auto cfg = smallConfig(d);
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("pr"));
    RunMetrics m = sys.run(*wl);
    EXPECT_TRUE(wl->verify()) << designName(d);
    std::ostringstream oss;
    sys.statsRegistry().dump(oss);
    return {m, oss.str()};
}

} // namespace

TEST(HlbEndToEnd, HlbRunsShedsAndVerifies)
{
    auto [m, dump] = runSmall(Design::Hlb);
    EXPECT_GT(m.tasks, 0u);
    // The balancer's stats node exists and the migration counters stay
    // zero without the migration engine.
    EXPECT_NE(dump.find("tasksShedIntra"), std::string::npos);
    EXPECT_EQ(m.blocksMigrated, 0u);
    EXPECT_EQ(m.migrationInvalidations, 0u);
    EXPECT_EQ(m.migrationTrafficBytes, 0u);
}

TEST(HlbEndToEnd, HlbMigMaintainsMigrationConservation)
{
    auto [m, dump] = runSmall(Design::HlbM);
    EXPECT_GT(m.tasks, 0u);
    EXPECT_NE(dump.find("blocksMigrated"), std::string::npos);
    // HLB-mig caches camps (Traveller on), so the conservation law the
    // machine checker enforces per run holds in the reported metrics:
    // one stale-camp invalidation sweep per re-homed block.
    EXPECT_EQ(m.migrationInvalidations, m.blocksMigrated);
}

TEST(HlbEndToEnd, UnconfiguredBalancerLeavesStatsTreeUntouched)
{
    // The gating rule behind the feature-off golden guarantee: no lb
    // node, no shed counters, no migration counters anywhere in a
    // classic design's dump.
    auto [m, dump] = runSmall(Design::O);
    EXPECT_EQ(dump.find("tasksShedIntra"), std::string::npos);
    EXPECT_EQ(dump.find("blocksMigrated"), std::string::npos);
    EXPECT_EQ(m.tasksShedIntra, 0u);
    EXPECT_EQ(m.tasksShedInter, 0u);
    EXPECT_EQ(m.blocksMigrated, 0u);
}

} // namespace abndp
