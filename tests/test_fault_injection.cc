/**
 * @file
 * Tests of the deterministic fault & straggler injection subsystem:
 * bit-determinism under every injector, exact no-op at zero rates,
 * workload correctness under degradation, graceful-degradation steering,
 * the epoch watchdog, and FaultConfig validation.
 */

#include <gtest/gtest.h>

#include "core/ndp_system.hh"
#include "driver/experiment.hh"
#include "fault/fault_model.hh"
#include "workloads/factory.hh"

namespace abndp
{

namespace
{

SystemConfig
tinySystem(Design d)
{
    SystemConfig cfg;
    return applyDesign(cfg, d);
}

/** Run a tiny workload under @p cfg and return its metrics. */
RunMetrics
runTiny(const SystemConfig &cfg, const std::string &wl = "pr")
{
    NdpSystem sys(cfg);
    auto workload = makeWorkload(WorkloadSpec::tiny(wl));
    return sys.run(*workload);
}

FaultConfig
stragglerFaults(std::uint32_t count, double derate)
{
    FaultConfig f;
    f.straggler.count = count;
    f.straggler.computeDerate = derate;
    f.straggler.bandwidthDerate = derate;
    return f;
}

void
expectIdentical(const RunMetrics &a, const RunMetrics &b,
                const std::string &what)
{
    EXPECT_EQ(a.ticks, b.ticks) << what;
    EXPECT_EQ(a.tasks, b.tasks) << what;
    EXPECT_EQ(a.epochs, b.epochs) << what;
    EXPECT_EQ(a.interHops, b.interHops) << what;
    EXPECT_EQ(a.intraTraversals, b.intraTraversals) << what;
    EXPECT_EQ(a.coreActiveTicks, b.coreActiveTicks) << what;
    EXPECT_EQ(a.stolenTasks, b.stolenTasks) << what;
    EXPECT_EQ(a.forwardedTasks, b.forwardedTasks) << what;
    EXPECT_EQ(a.dramReads, b.dramReads) << what;
    EXPECT_EQ(a.netDropped, b.netDropped) << what;
    EXPECT_EQ(a.netRetries, b.netRetries) << what;
    EXPECT_EQ(a.dramEccRetries, b.dramEccRetries) << what;
}

} // namespace

TEST(FaultModel, ResolvesStragglerSetDeterministically)
{
    auto cfg = tinySystem(Design::O);
    cfg.fault.straggler.count = 5;
    cfg.fault.straggler.computeDerate = 0.5;
    FaultModel a(cfg), b(cfg);
    ASSERT_EQ(a.stragglers().size(), 5u);
    EXPECT_EQ(a.stragglers(), b.stragglers());
    for (UnitId u : a.stragglers()) {
        EXPECT_LT(u, cfg.numUnits());
        EXPECT_TRUE(a.isStraggler(u));
    }

    // A different seed picks a different set (with near certainty for
    // 5 out of 128 units; this seed pair is known-good).
    auto cfg2 = cfg;
    cfg2.seed = cfg.seed + 1;
    FaultModel c(cfg2);
    EXPECT_NE(a.stragglers(), c.stragglers());
}

TEST(FaultModel, ExplicitUnitListTakesPrecedence)
{
    auto cfg = tinySystem(Design::O);
    cfg.fault.straggler.units = {7, 3, 3, 11};
    cfg.fault.straggler.count = 99; // ignored
    cfg.fault.straggler.computeDerate = 0.25;
    FaultModel fm(cfg);
    EXPECT_EQ(fm.stragglers(), (std::vector<UnitId>{3, 7, 11}));
    EXPECT_TRUE(fm.isStraggler(3));
    EXPECT_FALSE(fm.isStraggler(4));
    EXPECT_DOUBLE_EQ(fm.computeSlowdown(3, 0), 4.0);
    EXPECT_DOUBLE_EQ(fm.computeSlowdown(4, 0), 1.0);
    EXPECT_DOUBLE_EQ(fm.speedFactor(3, 0), 0.25);
}

TEST(FaultModel, ActivityWindowGatesDerating)
{
    auto cfg = tinySystem(Design::O);
    cfg.fault.straggler.units = {0};
    cfg.fault.straggler.computeDerate = 0.5;
    cfg.fault.straggler.windowStartNs = 100.0;
    cfg.fault.straggler.windowEndNs = 200.0;
    FaultModel fm(cfg);
    const Tick ns = ticksPerNs;
    EXPECT_DOUBLE_EQ(fm.computeSlowdown(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(fm.computeSlowdown(0, 100 * ns), 2.0);
    EXPECT_DOUBLE_EQ(fm.computeSlowdown(0, 199 * ns), 2.0);
    EXPECT_DOUBLE_EQ(fm.computeSlowdown(0, 200 * ns), 1.0);
}

TEST(FaultInjection, DeterministicUnderEveryInjector)
{
    std::vector<std::pair<std::string, FaultConfig>> points;
    points.emplace_back("straggler", stragglerFaults(4, 0.5));
    {
        FaultConfig f;
        f.link.count = 6;
        f.link.dropProb = 0.05;
        f.link.extraLatencyNs = 20.0;
        points.emplace_back("link", f);
    }
    {
        FaultConfig f;
        f.dram.eccRetryProb = 0.01;
        points.emplace_back("dram", f);
    }
    {
        FaultConfig f = stragglerFaults(4, 0.5);
        f.link.count = 6;
        f.link.dropProb = 0.05;
        f.dram.eccRetryProb = 0.01;
        points.emplace_back("combined", f);
    }

    for (Design d : {Design::B, Design::O}) {
        for (const auto &[name, f] : points) {
            auto cfg = tinySystem(d);
            cfg.fault = f;
            RunMetrics a = runTiny(cfg);
            RunMetrics b = runTiny(cfg);
            expectIdentical(a, b,
                            std::string(designName(d)) + "/" + name);
        }
    }
}

TEST(FaultInjection, ZeroRateFaultsMatchNoFaultRunExactly)
{
    for (Design d : {Design::B, Design::O}) {
        auto base = tinySystem(d);
        RunMetrics clean = runTiny(base);

        // Every knob touched, every rate at its no-op value: derates
        // 1.0, dropProb 0, eccRetryProb 0, plus a watchdog budget far
        // above the epoch cost. Must be bit-identical to no faults.
        auto cfg = base;
        cfg.fault.straggler.count = 8;
        cfg.fault.straggler.computeDerate = 1.0;
        cfg.fault.straggler.bandwidthDerate = 1.0;
        cfg.fault.link.count = 8;
        cfg.fault.link.dropProb = 0.0;
        cfg.fault.link.extraLatencyNs = 0.0;
        cfg.fault.dram.eccRetryProb = 0.0;
        cfg.fault.watchdog.maxEpochTicks = Tick(1) << 60;
        cfg.fault.watchdog.maxEpochEvents = 1ull << 60;
        RunMetrics zeroed = runTiny(cfg);
        expectIdentical(clean, zeroed, designName(d));
        EXPECT_EQ(zeroed.netDropped, 0u);
        EXPECT_EQ(zeroed.netRetries, 0u);
        EXPECT_EQ(zeroed.dramEccRetries, 0u);
    }
}

TEST(FaultInjection, AllWorkloadsVerifyUnderStragglers)
{
    for (const auto &name : allWorkloadNames()) {
        auto cfg = tinySystem(Design::O);
        cfg.fault = stragglerFaults(6, 0.4);
        NdpSystem sys(cfg);
        auto wl = makeWorkload(WorkloadSpec::tiny(name));
        RunMetrics m = sys.run(*wl);
        EXPECT_TRUE(wl->verify()) << name;
        EXPECT_GT(m.tasks, 0u) << name;
    }
}

TEST(FaultInjection, StragglersSlowTheSystemDown)
{
    auto base = tinySystem(Design::B);
    RunMetrics clean = runTiny(base);

    auto cfg = base;
    cfg.fault = stragglerFaults(8, 0.25);
    RunMetrics degraded = runTiny(cfg);
    EXPECT_GT(degraded.ticks, clean.ticks);
    EXPECT_EQ(degraded.tasks, clean.tasks);
}

TEST(FaultInjection, HybridSchedulerSteersAwayFromStragglers)
{
    // Graceful degradation: under the load-aware hybrid policy the
    // derated units' effective load is scaled by 1/speed, so costload
    // steers tasks away and the straggler hit shrinks relative to the
    // locality-only placement that keeps feeding slow units.
    auto mk = [](Design d, bool faulty) {
        auto cfg = tinySystem(d);
        if (faulty)
            cfg.fault = stragglerFaults(8, 0.25);
        return runTiny(cfg);
    };
    const double slowSm = static_cast<double>(mk(Design::Sm, true).ticks)
        / static_cast<double>(mk(Design::Sm, false).ticks);
    const double slowO = static_cast<double>(mk(Design::O, true).ticks)
        / static_cast<double>(mk(Design::O, false).ticks);
    EXPECT_LT(slowO, slowSm);
}

TEST(FaultInjection, LinkFaultsCountRetriesAndStillVerify)
{
    auto cfg = tinySystem(Design::O);
    cfg.fault.link.count = 16;
    cfg.fault.link.dropProb = 0.2;
    cfg.fault.link.extraLatencyNs = 10.0;
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny("bfs"));
    RunMetrics m = sys.run(*wl);
    EXPECT_TRUE(wl->verify());
    EXPECT_GT(m.netDropped, 0u);
    EXPECT_GE(m.netRetries, m.netDropped);
}

TEST(FaultInjection, DramEccRetriesAreCountedAndSlowAccesses)
{
    auto base = tinySystem(Design::B);
    RunMetrics clean = runTiny(base);

    auto cfg = base;
    cfg.fault.dram.eccRetryProb = 0.05;
    cfg.fault.dram.eccRetryNs = 200.0;
    RunMetrics m = runTiny(cfg);
    EXPECT_GT(m.dramEccRetries, 0u);
    EXPECT_GT(m.ticks, clean.ticks);
}

TEST(FaultInjection, WatchdogFiresOnTinyBudgetWithDiagnostics)
{
    auto cfg = tinySystem(Design::B);
    cfg.fault.watchdog.maxEpochTicks = 10; // far below one real epoch
    EXPECT_DEATH(runTiny(cfg), "watchdog");

    auto cfg2 = tinySystem(Design::B);
    cfg2.fault.watchdog.maxEpochEvents = 3;
    EXPECT_DEATH(runTiny(cfg2), "watchdog");
}

TEST(FaultInjection, WatchdogQuietWithGenerousBudget)
{
    auto base = tinySystem(Design::O);
    RunMetrics clean = runTiny(base);
    auto cfg = base;
    cfg.fault.watchdog.maxEpochTicks = Tick(1) << 60;
    RunMetrics m = runTiny(cfg);
    expectIdentical(clean, m, "watchdog-armed");
}

TEST(FaultConfigValidate, RejectsOutOfRangeValues)
{
    {
        auto cfg = tinySystem(Design::B);
        cfg.fault.straggler.count = 1;
        cfg.fault.straggler.computeDerate = 0.0;
        EXPECT_DEATH(cfg.validate(), "computeDerate");
    }
    {
        auto cfg = tinySystem(Design::B);
        cfg.fault.straggler.count = 1;
        cfg.fault.straggler.bandwidthDerate = 1.5;
        EXPECT_DEATH(cfg.validate(), "bandwidthDerate");
    }
    {
        auto cfg = tinySystem(Design::B);
        cfg.fault.straggler.count = cfg.numUnits() + 1;
        EXPECT_DEATH(cfg.validate(), "exceeds the unit count");
    }
    {
        auto cfg = tinySystem(Design::B);
        cfg.fault.straggler.units = {cfg.numUnits()};
        EXPECT_DEATH(cfg.validate(), "out of range");
    }
    {
        auto cfg = tinySystem(Design::B);
        cfg.fault.straggler.units = {0};
        cfg.fault.straggler.windowStartNs = 50.0;
        cfg.fault.straggler.windowEndNs = 50.0;
        EXPECT_DEATH(cfg.validate(), "window is empty");
    }
    {
        auto cfg = tinySystem(Design::B);
        cfg.fault.link.count = 1;
        cfg.fault.link.dropProb = 1.0;
        EXPECT_DEATH(cfg.validate(), "dropProb");
    }
    {
        auto cfg = tinySystem(Design::B);
        cfg.fault.link.links = {cfg.numStacks() * 4};
        EXPECT_DEATH(cfg.validate(), "out of range");
    }
    {
        auto cfg = tinySystem(Design::B);
        cfg.fault.link.count = 1;
        cfg.fault.link.dropProb = 0.1;
        cfg.fault.link.maxRetries = 0;
        EXPECT_DEATH(cfg.validate(), "maxRetries");
    }
    {
        auto cfg = tinySystem(Design::B);
        cfg.fault.dram.eccRetryProb = -0.1;
        EXPECT_DEATH(cfg.validate(), "eccRetryProb");
    }
    {
        auto cfg = tinySystem(Design::B);
        cfg.fault.dram.eccRetryProb = 0.5;
        cfg.fault.dram.eccRetryNs = -1.0;
        EXPECT_DEATH(cfg.validate(), "eccRetryNs");
    }
}

TEST(FaultInjection, ExperimentOptionsOverrideAppliesFaults)
{
    ExperimentOptions opts;
    opts.verify = true;
    opts.fault = stragglerFaults(4, 0.5);
    SystemConfig base;
    WorkloadSpec spec = WorkloadSpec::tiny("pr");
    RunMetrics faulty = runExperiment(base, Design::O, spec, opts);

    ExperimentOptions cleanOpts;
    cleanOpts.verify = true;
    RunMetrics clean = runExperiment(base, Design::O, spec, cleanOpts);
    // O partly schedules around the stragglers, so don't demand a
    // slowdown here — only that the override took effect.
    EXPECT_NE(faulty.ticks, clean.ticks);
    EXPECT_NE(faulty.coreActiveTicks, clean.coreActiveTicks);
}

} // namespace abndp
