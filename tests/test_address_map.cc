/**
 * @file
 * Tests for the shared address-decode arithmetic (mem/address_map.hh):
 * Pow2Split against plain division, and the three DramAddrMap
 * interleave orders against hand-computed coordinates.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/rng.hh"
#include "mem/address_map.hh"

namespace abndp
{

// ---- Pow2Split ---------------------------------------------------------

TEST(Pow2Split, MatchesPlainDivisionForPow2AndNot)
{
    Rng gen(0x9a11u);
    for (std::uint64_t d : {1ull, 2ull, 8ull, 64ull, 2048ull,
                            1ull << 32, 3ull, 7ull, 24ull, 1000ull}) {
        Pow2Split split(d);
        EXPECT_EQ(split.divisor(), d);
        EXPECT_EQ(split.isPow2(), (d & (d - 1)) == 0);
        for (int i = 0; i < 200; ++i) {
            std::uint64_t v = gen.next();
            ASSERT_EQ(split.div(v), v / d) << "d=" << d << " v=" << v;
            ASSERT_EQ(split.mod(v), v % d) << "d=" << d << " v=" << v;
        }
        EXPECT_EQ(split.div(0), 0u);
        EXPECT_EQ(split.mod(0), 0u);
    }
}

TEST(Pow2Split, DefaultActsAsDivisorOne)
{
    Pow2Split split;
    EXPECT_EQ(split.div(12345), 12345u);
    EXPECT_EQ(split.mod(12345), 0u);
}

// ---- DramAddrMap -------------------------------------------------------

namespace
{

DramConfig
geom(DramAddrMapKind kind)
{
    DramConfig d;
    d.addrMap = kind;
    d.banks = 8;
    d.bankGroups = 4;
    d.rowBytes = 2048;
    d.burstBytes = 64;
    return d;
}

constexpr std::uint64_t kUnitBytes = 1ull << 20;

} // namespace

TEST(DramAddrMap, RowBankColumnOrder)
{
    // column : bank : row — consecutive rows rotate across banks.
    DramAddrMap m(geom(DramAddrMapKind::RowBankColumn), kUnitBytes);
    DramCoord c = m.decode(0);
    EXPECT_EQ(c.row, 0u);
    EXPECT_EQ(c.bank, 0u);
    EXPECT_EQ(c.column, 0u);

    c = m.decode(100); // inside the first row
    EXPECT_EQ(c.row, 0u);
    EXPECT_EQ(c.bank, 0u);
    EXPECT_EQ(c.column, 100u);

    c = m.decode(2048); // next row chunk -> next bank
    EXPECT_EQ(c.bank, 1u);
    EXPECT_EQ(c.row, 0u);

    c = m.decode(2048ull * 8); // one full rotation -> row 1, bank 0
    EXPECT_EQ(c.bank, 0u);
    EXPECT_EQ(c.row, 1u);
}

TEST(DramAddrMap, RowColumnBankOrder)
{
    // burst : bank : column : row — bursts rotate across banks.
    DramAddrMap m(geom(DramAddrMapKind::RowColumnBank), kUnitBytes);
    DramCoord c = m.decode(0);
    EXPECT_EQ(c.bank, 0u);
    EXPECT_EQ(c.row, 0u);

    c = m.decode(64); // next burst -> next bank, same row/column
    EXPECT_EQ(c.bank, 1u);
    EXPECT_EQ(c.column, 0u);
    EXPECT_EQ(c.row, 0u);

    c = m.decode(64ull * 8); // full bank rotation -> column 1
    EXPECT_EQ(c.bank, 0u);
    EXPECT_EQ(c.column, 1u);
    EXPECT_EQ(c.row, 0u);

    // 2048/64 = 32 columns; a full row of every bank -> row 1.
    c = m.decode(64ull * 8 * 32);
    EXPECT_EQ(c.bank, 0u);
    EXPECT_EQ(c.column, 0u);
    EXPECT_EQ(c.row, 1u);
}

TEST(DramAddrMap, BankRowColumnOrder)
{
    // Each bank owns a contiguous 128 KB slice of the 1 MB unit.
    DramAddrMap m(geom(DramAddrMapKind::BankRowColumn), kUnitBytes);
    constexpr std::uint64_t slice = kUnitBytes / 8;
    DramCoord c = m.decode(0);
    EXPECT_EQ(c.bank, 0u);
    EXPECT_EQ(c.row, 0u);

    c = m.decode(slice - 1); // last byte of bank 0's slice
    EXPECT_EQ(c.bank, 0u);
    EXPECT_EQ(c.row, slice / 2048 - 1);

    c = m.decode(slice); // first byte of bank 1's slice
    EXPECT_EQ(c.bank, 1u);
    EXPECT_EQ(c.row, 0u);
    EXPECT_EQ(c.column, 0u);

    // Addresses wrap modulo the unit region (range partitioning puts
    // the unit offset in the high bits).
    c = m.decode(kUnitBytes + 100);
    EXPECT_EQ(c.bank, 0u);
    EXPECT_EQ(c.column, 100u);
}

TEST(DramAddrMap, BankGroupsDealRoundRobin)
{
    DramAddrMap m(geom(DramAddrMapKind::RowBankColumn), kUnitBytes);
    for (std::uint64_t r = 0; r < 16; ++r) {
        DramCoord c = m.decode(r * 2048);
        EXPECT_EQ(c.bankGroup, c.bank % 4) << "row chunk " << r;
    }
}

TEST(DramAddrMap, AllOrdersCoverAllBanks)
{
    // A linear sweep of the unit region must touch every bank under
    // every interleave order (no decode dead zones).
    for (auto kind : {DramAddrMapKind::RowBankColumn,
                      DramAddrMapKind::RowColumnBank,
                      DramAddrMapKind::BankRowColumn}) {
        DramAddrMap m(geom(kind), kUnitBytes);
        std::uint64_t seen = 0;
        for (Addr a = 0; a < kUnitBytes; a += 64) {
            DramCoord c = m.decode(a);
            ASSERT_LT(c.bank, 8u);
            seen |= 1ull << c.bank;
        }
        EXPECT_EQ(seen, 0xffull) << dramAddrMapName(kind);
    }
}

} // namespace abndp
