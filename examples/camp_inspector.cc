/**
 * @file
 * Camp-location inspector: the Figure-5 picture as a tool. For any
 * simulated address, draw the stack mesh and mark the home unit and the
 * camp locations in every group, under the skewed or identical mapping.
 *
 * Usage: camp_inspector [--addr=0x...] [--camps=3] [--identical]
 */

#include <iomanip>
#include <iostream>

#include "cache/camp_mapping.hh"
#include "common/cli.hh"
#include "common/config.hh"
#include "mem/address_map.hh"
#include "net/topology.hh"

int
main(int argc, char **argv)
{
    using namespace abndp;

    CliFlags flags(argc, argv);
    SystemConfig cfg;
    cfg.traveller.style = CacheStyle::TravellerSramTags;
    cfg.traveller.campCount =
        static_cast<std::uint32_t>(flags.getUint("camps", 3));
    cfg.traveller.skewedMapping = !flags.getBool("identical", false);
    cfg.validate();

    Topology topo(cfg);
    AddressMap amap(cfg);
    CampMapping camps(cfg, topo, amap);

    Addr addr = flags.getUint("addr", 0x96012ec0ull);
    addr = blockAlign(addr);

    CandidateList cl;
    camps.candidates(addr, cl);
    UnitId home = camps.homeOf(addr);

    std::cout << "Block 0x" << std::hex << addr << std::dec
              << "  home = unit " << home << " (stack "
              << topo.stackOf(home) << ", group " << topo.groupOf(home)
              << "), set " << camps.setIndex(addr) << "\n";
    std::cout << "Candidates per group:";
    for (GroupId g = 0; g < cl.n; ++g)
        std::cout << "  g" << g << "->unit " << cl.loc[g]
                  << (cl.loc[g] == home ? " (home)" : "");
    std::cout << "\n\nStack mesh (" << cfg.meshX << "x" << cfg.meshY
              << ", " << cfg.unitsPerStack
              << " units per stack; H = home, C = camp):\n\n";

    for (std::uint32_t y = 0; y < cfg.meshY; ++y) {
        for (std::uint32_t x = 0; x < cfg.meshX; ++x) {
            StackId s = y * cfg.meshX + x;
            std::cout << " [";
            for (UnitId u = 0; u < topo.numUnits(); ++u) {
                if (topo.stackOf(u) != s)
                    continue;
                char mark = '.';
                if (u == home)
                    mark = 'H';
                else
                    for (GroupId g = 0; g < cl.n; ++g)
                        if (cl.loc[g] == u)
                            mark = 'C';
                std::cout << mark;
            }
            std::cout << "]";
        }
        std::cout << "\n";
    }
    std::cout << "\nEach bracket is one stack; each character one NDP "
                 "unit.\nGroups are the 2x2 stack quadrants (Figure 5); "
                 "every group holds exactly one\ncandidate copy of the "
                 "block, so any requester has a nearby location.\n";
    return 0;
}
