/**
 * @file
 * A sparse recommendation pipeline on an ABNDP system.
 *
 * Two NDP-friendly kernels back a toy recommender: iterated SpMV over a
 * user-item interaction matrix (collaborative-filtering score
 * propagation) and a GCN forward pass over the item-similarity graph
 * (content embeddings). Popular items make both kernels heavily skewed —
 * exactly the hotspot pattern ABNDP targets.
 *
 * Usage: sparse_recommender [--scale=13] [--layers=2]
 */

#include <iostream>

#include "common/cli.hh"
#include "common/config.hh"
#include "common/table.hh"
#include "core/ndp_system.hh"
#include "workloads/gcn.hh"
#include "workloads/graph_gen.hh"
#include "workloads/spmv.hh"

namespace
{

/** Run one kernel under one design, returning headline metrics. */
template <typename MakeWorkload>
abndp::RunMetrics
runKernel(const abndp::SystemConfig &base, abndp::Design d,
          MakeWorkload &&make)
{
    using namespace abndp;
    NdpSystem sys(applyDesign(base, d));
    auto wl = make();
    RunMetrics m = sys.run(*wl);
    if (!wl->verify())
        fatal("kernel verification failed");
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace abndp;

    CliFlags flags(argc, argv);
    std::uint32_t scale =
        static_cast<std::uint32_t>(flags.getUint("scale", 13));
    std::uint32_t layers =
        static_cast<std::uint32_t>(flags.getUint("layers", 2));

    RmatParams interactions;
    interactions.scale = scale;
    interactions.edgeFactor = 16;
    interactions.seed = 7;
    interactions.undirected = false;

    RmatParams similarity = interactions;
    similarity.seed = 8;
    similarity.undirected = true;

    std::cout << "Recommendation pipeline over a 2^" << scale
              << "-item catalog (power-law popularity)\n\n";

    SystemConfig base;
    TextTable table({"kernel", "system", "sim time (ms)", "hops (k)",
                     "energy (mJ)", "camp hit rate"});

    for (Design d : {Design::B, Design::O}) {
        const char *name = d == Design::B ? "baseline (B)" : "ABNDP (O)";
        RunMetrics spmv = runKernel(base, d, [&] {
            return std::make_unique<SpmvWorkload>(
                makeRmatGraph(interactions), 3);
        });
        table.addRow({"score propagation (spmv)", name,
                      TextTable::fmt(spmv.seconds() * 1e3),
                      TextTable::fmt(spmv.interHops / 1000.0, 1),
                      TextTable::fmt(spmv.energy.total() / 1e9),
                      TextTable::fmt(spmv.campHitRate())});
        RunMetrics gcn = runKernel(base, d, [&] {
            return std::make_unique<GcnWorkload>(
                makeRmatGraph(similarity), layers);
        });
        table.addRow({"item embeddings (gcn)", name,
                      TextTable::fmt(gcn.seconds() * 1e3),
                      TextTable::fmt(gcn.interHops / 1000.0, 1),
                      TextTable::fmt(gcn.energy.total() / 1e9),
                      TextTable::fmt(gcn.campHitRate())});
    }
    table.print(std::cout);

    std::cout << "\nABNDP keeps the popular items' rows/features cached "
                 "at camp locations, so\nhot-item tasks spread across "
                 "units without losing data locality.\n";
    return 0;
}
