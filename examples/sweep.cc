/**
 * @file
 * sweep — run a (workload x design) grid of independent simulations in
 * parallel and emit one JSON line per cell. Simulator instances share
 * nothing, so cells parallelize perfectly across host threads.
 *
 * Usage:
 *   sweep --workloads=pr,bfs,gcn --designs=B,Sl,O --scale=13 \
 *         --threads=8 [--verify] [--out=results.jsonl]
 */

#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hh"
#include "common/config.hh"
#include "common/logging.hh"
#include "core/ndp_system.hh"
#include "core/stats_report.hh"
#include "host/host_system.hh"
#include "workloads/factory.hh"

namespace
{

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::istringstream iss(csv);
    std::string item;
    while (std::getline(iss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

abndp::Design
parseDesign(const std::string &name)
{
    using abndp::Design;
    for (Design d : {Design::H, Design::B, Design::Sm, Design::Sl,
                     Design::Sh, Design::C, Design::O})
        if (name == abndp::designName(d))
            return d;
    abndp::fatal("unknown design '", name, "'");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace abndp;

    CliFlags flags(argc, argv);
    auto workloads =
        splitList(flags.getString("workloads", "pr,bfs,gcn,spmv"));
    auto designNames = splitList(flags.getString("designs", "B,Sl,O"));
    auto threads = static_cast<std::uint32_t>(flags.getUint(
        "threads", std::max(1u, std::thread::hardware_concurrency())));
    bool verify = flags.getBool("verify", false);
    std::string outPath = flags.getString("out", "");

    WorkloadSpec baseSpec;
    baseSpec.scale =
        static_cast<std::uint32_t>(flags.getUint("scale", 13));
    baseSpec.edgeFactor =
        static_cast<std::uint32_t>(flags.getUint("edge-factor", 16));
    baseSpec.seed = flags.getUint("seed", 42);

    struct Cell
    {
        std::string workload;
        Design design;
        std::string json;
    };
    std::vector<Cell> cells;
    for (const auto &wl : workloads)
        for (const auto &dn : designNames)
            cells.push_back({wl, parseDesign(dn), {}});

    std::mutex progressLock;
    std::size_t nextCell = 0;
    std::size_t doneCells = 0;

    auto worker = [&] {
        while (true) {
            std::size_t idx;
            {
                std::lock_guard<std::mutex> lock(progressLock);
                if (nextCell >= cells.size())
                    return;
                idx = nextCell++;
            }
            Cell &cell = cells[idx];
            WorkloadSpec spec = baseSpec;
            spec.name = cell.workload;
            SystemConfig cfg = applyDesign(SystemConfig{}, cell.design);
            auto wl = makeWorkload(spec);
            RunMetrics m;
            if (cell.design == Design::H) {
                HostSystem host(cfg);
                m = host.run(*wl);
            } else {
                NdpSystem sys(cfg);
                m = sys.run(*wl);
            }
            if (verify && !wl->verify())
                fatal("verification failed: ", cell.workload, " under ",
                      designName(cell.design));
            std::ostringstream oss;
            oss << "{\"workload\":\"" << cell.workload << "\",\"design\":\""
                << designName(cell.design) << "\",\"metrics\":";
            dumpJson(oss, cfg, m);
            oss << "}";
            {
                std::lock_guard<std::mutex> lock(progressLock);
                cell.json = oss.str();
                ++doneCells;
                std::cerr << "[" << doneCells << "/" << cells.size()
                          << "] " << cell.workload << "/"
                          << designName(cell.design) << "\n";
            }
        }
    };

    std::vector<std::thread> pool;
    for (std::uint32_t i = 0; i < std::min<std::size_t>(threads,
                                                        cells.size());
         ++i)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();

    std::ofstream file;
    std::ostream *os = &std::cout;
    if (!outPath.empty()) {
        file.open(outPath);
        if (!file)
            fatal("cannot open ", outPath);
        os = &file;
    }
    for (const auto &cell : cells)
        *os << cell.json << "\n";
    return 0;
}
