/**
 * @file
 * sweep — run a (workload x design) grid of independent simulations in
 * parallel and emit one JSON line per cell. Cells run on the shared
 * grid runner (driver/cell_runner.hh): simulator instances share
 * nothing, results land in cell order, and per-cell metrics are
 * bit-identical for any --threads value.
 *
 * Usage:
 *   sweep --workloads=pr,bfs,gcn --designs=B,Sl,O --scale=13 \
 *         --threads=8 [--verify] [--out=results.jsonl] \
 *         [--trace-out=trace.json] [--stats-interval=N] \
 *         [--stats-out=stats.txt] [--mem-backend=meter|ddr]
 *
 * With --trace-out / --stats-out every cell writes its own file, the
 * workload and design tags inserted before the extension
 * (trace.json -> trace.pr.O.json).
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/config.hh"
#include "common/logging.hh"
#include "core/stats_report.hh"
#include "driver/cell_runner.hh"
#include "driver/experiment.hh"
#include "driver/run_flags.hh"
#include "workloads/factory.hh"

namespace
{

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::istringstream iss(csv);
    std::string item;
    while (std::getline(iss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace abndp;

    CliFlags flags(argc, argv);
    auto workloads =
        splitList(flags.getString("workloads", "pr,bfs,gcn,spmv"));
    auto designNames = splitList(flags.getString("designs", "B,Sl,O"));
    RunFlags run = parseRunFlags(flags);
    bool verify = flags.getBool("verify", false);
    std::string outPath = flags.getString("out", "");

    WorkloadSpec baseSpec;
    baseSpec.scale =
        static_cast<std::uint32_t>(flags.getUint("scale", 13));
    baseSpec.edgeFactor =
        static_cast<std::uint32_t>(flags.getUint("edge-factor", 16));
    baseSpec.seed = flags.getUint("seed", 42);

    std::vector<CellSpec> cells;
    for (const auto &wl : workloads) {
        for (const auto &dn : designNames) {
            CellSpec cell;
            cell.design = abndp::designFromName(dn);
            cell.workload = baseSpec;
            cell.workload.name = wl;
            cell.opts.verify = verify;
            cell.opts.fatalOnVerifyFailure = true;
            if (run.anyOutput()) {
                // Per-cell output files via the config-override path.
                SystemConfig cfg;
                applyRunFlags(run, cfg, wl + "." + dn,
                              /*multiCell=*/true);
                cell.config = cfg;
            }
            cells.push_back(cell);
        }
    }

    auto progress = [&](std::size_t done, std::size_t total,
                        std::size_t idx) {
        std::cerr << "[" << done << "/" << total << "] "
                  << cells[idx].workload.name << "/"
                  << designName(cells[idx].design) << "\n";
    };
    std::vector<RunMetrics> results =
        runCells(SystemConfig{}, cells, run.threads, progress);

    std::ofstream file;
    std::ostream *os = &std::cout;
    if (!outPath.empty()) {
        file.open(outPath);
        if (!file)
            fatal("cannot open ", outPath);
        os = &file;
    }
    for (std::size_t i = 0; i < cells.size(); ++i) {
        SystemConfig cfg = applyDesign(SystemConfig{}, cells[i].design);
        *os << "{\"workload\":\"" << cells[i].workload.name
            << "\",\"design\":\"" << designName(cells[i].design)
            << "\",\"metrics\":";
        dumpJson(*os, cfg, results[i]);
        *os << "}\n";
    }
    return 0;
}
