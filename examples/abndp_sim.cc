/**
 * @file
 * abndp_sim — the command-line simulator front end.
 *
 * Runs any workload under any Table-2 design on any system geometry and
 * prints a summary, a gem5-style statistics dump (--stats), or machine-
 * readable JSON (--json). This is the binary a user scripts sweeps with.
 *
 * Examples:
 *   abndp_sim --workload=pr --design=O --scale=14
 *   abndp_sim --workload=knn --design=Sl --mesh=8 --stats
 *   abndp_sim --workload=gcn --design=O --camps=7 --bypass=0.2 --json
 */

#include <iostream>
#include <string>

#include "common/cli.hh"
#include "common/config.hh"
#include "common/logging.hh"
#include "core/ndp_system.hh"
#include "core/stats_report.hh"
#include "driver/experiment.hh"
#include "driver/run_flags.hh"
#include "host/host_system.hh"
#include "workloads/factory.hh"

namespace
{

void
printUsage()
{
    std::cout <<
        "abndp_sim — ABNDP system simulator\n"
        "\n"
        "Workload:   --workload=pr|bfs|sssp|astar|gcn|kmeans|knn|spmv\n"
        "            --scale=N (graph: 2^N vertices) --edge-factor=N\n"
        "            --seed=N --max-epochs=N --verify\n"
        "Design:     --design=H|B|Sm|Sl|Sh|C|O (Table 2)\n"
        "System:     --mesh=N (NxN stacks) --units-per-stack=N\n"
        "            --cores-per-unit=N --mem-mb=N\n"
        "Traveller:  --camps=C --ratio=R (cache = 1/R of local DRAM)\n"
        "            --assoc=N --bypass=P --skewed=0|1\n"
        "Scheduler:  --alpha=A (B = A*Dinter) --exchange-interval=CYCLES\n"
        "            --pruned-scoring\n"
        "            --intra-noc=crossbar|ring\n"
        "Inputs:     --graph-file=PATH (SNAP edge list)\n"
        "            --points/--knn-points/--queries/--astar-queries\n"
        "            --explicit-hints (programmer hint.workload)\n"
        "Output:     --stats (full dump) --json --print-config\n"
        "            --trace=FILE (per-epoch CSV) --heatmap\n"
        "            --stats-registry (hierarchical registry dump)\n"
        "            --stats-interval=N (dump deltas every N epochs)\n"
        "            --stats-out=FILE (interval dump target)\n"
        "            --trace-out=FILE (Chrome/Perfetto trace JSON)\n"
        "            --trace-buffer-events=N (tracer ring capacity)\n"
        "Memory:     --mem-backend=meter|ddr (timing backend)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace abndp;

    CliFlags flags(argc, argv);
    if (flags.has("help")) {
        printUsage();
        return 0;
    }

    WorkloadSpec spec;
    spec.name = flags.getString("workload", "pr");
    spec.scale = static_cast<std::uint32_t>(flags.getUint("scale", 13));
    spec.edgeFactor =
        static_cast<std::uint32_t>(flags.getUint("edge-factor", 16));
    spec.seed = flags.getUint("seed", 42);
    spec.graphFile = flags.getString("graph-file", "");
    spec.explicitLoadHints = flags.getBool("explicit-hints", false);
    spec.kmeansPoints = flags.getUint("points", spec.kmeansPoints);
    spec.knnPoints = static_cast<std::uint32_t>(
        flags.getUint("knn-points", spec.knnPoints));
    spec.knnQueries = static_cast<std::uint32_t>(
        flags.getUint("queries", spec.knnQueries));
    spec.astarQueries = static_cast<std::uint32_t>(
        flags.getUint("astar-queries", spec.astarQueries));

    SystemConfig cfg;
    auto mesh = static_cast<std::uint32_t>(flags.getUint("mesh", 4));
    cfg.meshX = cfg.meshY = mesh;
    cfg.unitsPerStack = static_cast<std::uint32_t>(
        flags.getUint("units-per-stack", cfg.unitsPerStack));
    cfg.coresPerUnit = static_cast<std::uint32_t>(
        flags.getUint("cores-per-unit", cfg.coresPerUnit));
    if (flags.has("mem-mb"))
        cfg.memBytesPerUnit = flags.getUint("mem-mb", 512) << 20;
    cfg.traveller.campCount =
        static_cast<std::uint32_t>(flags.getUint("camps", 3));
    cfg.traveller.ratioDenom = flags.getUint("ratio", 64);
    cfg.traveller.assoc =
        static_cast<std::uint32_t>(flags.getUint("assoc", 4));
    cfg.traveller.bypassProb = flags.getDouble("bypass", 0.4);
    cfg.traveller.skewedMapping = flags.getBool("skewed", true);
    if (flags.has("alpha")) {
        cfg.sched.autoAlpha = false;
        cfg.sched.hybridAlpha = flags.getDouble("alpha", 3.0);
    }
    cfg.sched.exchangeIntervalCycles =
        flags.getUint("exchange-interval", 100000);
    if (flags.getString("intra-noc", "crossbar") == "ring")
        cfg.net.intraTopology = IntraTopology::Ring;
    if (flags.getBool("pruned-scoring", false))
        cfg.sched.exhaustiveScoring = false;
    cfg.maxEpochs = flags.getUint("max-epochs", 0);
    cfg.seed = flags.getUint("sim-seed", 1);
    cfg.traceFile = flags.getString("trace", "");
    cfg.traceBufferEvents =
        flags.getUint("trace-buffer-events", cfg.traceBufferEvents);
    applyRunFlags(parseRunFlags(flags, /*threadsDefault=*/1), cfg);

    Design design = designFromName(flags.getString("design", "O"));
    cfg = applyDesign(cfg, design);

    if (flags.getBool("print-config", false)) {
        cfg.print(std::cout);
        std::cout << "\n";
    }

    auto wl = makeWorkload(spec);
    RunMetrics m;
    if (design == Design::H) {
        HostSystem host(cfg);
        m = host.run(*wl);
        if (flags.getBool("verify", false) && !wl->verify())
            fatal("verification failed");
        if (flags.getBool("json", false)) {
            dumpJson(std::cout, cfg, m);
            std::cout << "\n";
            return 0;
        }
    } else {
        NdpSystem sys(cfg);
        m = sys.run(*wl);
        if (flags.getBool("verify", false) && !wl->verify())
            fatal("verification failed");
        if (flags.getBool("json", false)) {
            dumpJson(std::cout, cfg, m);
            std::cout << "\n";
            return 0;
        }
        if (flags.getBool("stats-registry", false)) {
            sys.statsRegistry().dump(std::cout);
            return 0;
        }
        if (flags.getBool("stats", false)) {
            dumpStats(std::cout, sys, m);
            if (flags.getBool("heatmap", false))
                dumpHeatmap(std::cout, cfg, m);
            return 0;
        }
        if (flags.getBool("heatmap", false))
            dumpHeatmap(std::cout, cfg, m);
    }

    std::cout << spec.name << " under " << designName(design) << ": "
              << m.tasks << " tasks in " << m.seconds() * 1e3
              << " ms simulated (" << m.epochs << " epochs), "
              << m.interHops << " inter-stack hops, "
              << m.energy.total() / 1e9 << " mJ, utilization "
              << m.utilization() << ", imbalance x" << m.imbalance()
              << "\n";
    return 0;
}
