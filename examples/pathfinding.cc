/**
 * @file
 * Batched goal-directed pathfinding on an ABNDP system.
 *
 * A batch of concurrent shortest-path queries runs ALT-A* (A* with
 * landmark heuristics) over a scale-free network. The landmark distance
 * tables are shared, read-only and extremely hot — a showcase for the
 * Traveller Cache — while the per-query wavefronts create bursty load
 * that the hybrid scheduler balances.
 *
 * Usage: pathfinding [--scale=13] [--queries=16]
 */

#include <iostream>

#include "common/cli.hh"
#include "common/config.hh"
#include "common/table.hh"
#include "core/ndp_system.hh"
#include "workloads/astar.hh"
#include "workloads/graph_gen.hh"

int
main(int argc, char **argv)
{
    using namespace abndp;

    CliFlags flags(argc, argv);
    RmatParams params;
    params.scale =
        static_cast<std::uint32_t>(flags.getUint("scale", 13));
    params.edgeFactor = 16;
    params.undirected = true;
    auto queries =
        static_cast<std::uint32_t>(flags.getUint("queries", 16));

    std::cout << "Batch pathfinding: " << queries
              << " concurrent ALT-A* queries over a 2^" << params.scale
              << "-vertex network\n\n";

    SystemConfig base;
    TextTable table({"system", "sim time (ms)", "hops (M)", "energy (mJ)",
                     "busiest/mean core"});

    std::vector<std::uint32_t> costs;
    for (Design d : {Design::B, Design::Sl, Design::O}) {
        NdpSystem sys(applyDesign(base, d));
        AstarWorkload astar(makeRmatGraph(params), queries, 11);
        RunMetrics m = sys.run(astar);
        if (!astar.verify())
            fatal("A* verification failed");
        if (d == Design::O) {
            costs.clear();
            for (std::uint32_t q = 0; q < astar.numQueriesTotal(); ++q)
                costs.push_back(astar.goalCost(q));
        }
        const char *name = d == Design::B ? "baseline (B)"
            : d == Design::Sl             ? "work stealing (Sl)"
                                          : "ABNDP (O)";
        table.addRow({name, TextTable::fmt(m.seconds() * 1e3),
                      TextTable::fmt(m.interHops / 1e6),
                      TextTable::fmt(m.energy.total() / 1e9),
                      TextTable::fmt(m.imbalance())});
    }
    table.print(std::cout);

    std::cout << "\nPath costs found (hops): ";
    for (std::size_t q = 0; q < costs.size() && q < 12; ++q)
        std::cout << costs[q] << " ";
    std::cout << "\nAll designs return identical exact shortest paths; "
                 "ABNDP just finds them fastest.\n";
    return 0;
}
