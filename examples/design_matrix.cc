/**
 * @file
 * Design-matrix walkthrough: run one workload under every Table-2 system
 * design and print the full metric row for each — a compact view of the
 * remote-access/load-balance tradeoff the paper studies.
 *
 * Usage: design_matrix [--workload=pr] [--scale=13] [--verify=true]
 *                      [--design=H|B|Sm|Sl|Sh|C|O]
 *                      [--trace-out=trace.json] [--stats-interval=N]
 *                      [--stats-out=stats.txt] [--mem-backend=meter|ddr]
 *                      [--assert-shape]
 *
 * --design restricts the matrix to one Table-2 row (quick iteration on
 * a single design); the speedup column needs the B baseline and prints
 * "-" when B is filtered out.
 *
 * --assert-shape exits nonzero unless the paper's Table-2 ordering
 * holds: O fastest of the classic NDP designs, the load-balanced
 * designs Sl/Sh above B, and the pure data-access designs Sm/C below
 * B. The extension rows (HLB, HLB-mig) must be present but carry no
 * ordering constraint — they are new design points, not paper rows.
 *
 * With --trace-out / --stats-out the design name is inserted before the
 * extension (trace.json -> trace.O.json), one file per Table-2 design.
 */

#include <iostream>
#include <map>

#include "common/cli.hh"
#include "common/config.hh"
#include "common/table.hh"
#include "driver/experiment.hh"
#include "driver/run_flags.hh"

int
main(int argc, char **argv)
{
    using namespace abndp;

    CliFlags flags(argc, argv);
    WorkloadSpec spec;
    spec.name = flags.getString("workload", "pr");
    spec.scale = static_cast<std::uint32_t>(flags.getUint("scale", 13));
    spec.edgeFactor =
        static_cast<std::uint32_t>(flags.getUint("edge-factor", 16));

    SystemConfig base;
    base.seed = flags.getUint("seed", 1);

    RunFlags run = parseRunFlags(flags, /*threadsDefault=*/1);

    ExperimentOptions opts;
    opts.verify = flags.getBool("verify", true);

    bool assertShape = flags.getBool("assert-shape", false);

    std::vector<Design> designs = ndpDesigns();
    std::string only = flags.getString("design", "");
    if (!only.empty()) {
        if (assertShape)
            fatal("--assert-shape needs the full matrix; drop "
                  "--design=", only);
        designs = {designFromName(only)};
    }

    std::cout << "Workload: " << spec.name << " (scale " << spec.scale
              << ", edge factor " << spec.edgeFactor << ")\n\n";

    TextTable table({"design", "time(ms)", "speedup", "hops(k)",
                     "energy(mJ)", "imbalance", "campHit", "forwards",
                     "steals", "pbHit%", "rdLat(ns)", "rdMax(us)",
                     "util"});

    double baseTicks = 0.0;
    std::map<Design, std::uint64_t> ticksOf;
    for (Design d : designs) {
        SystemConfig cellBase = base;
        applyRunFlags(run, cellBase, designName(d));
        RunMetrics m = runExperiment(cellBase, d, spec, opts);
        ticksOf[d] = m.ticks;
        if (d == Design::B)
            baseTicks = static_cast<double>(m.ticks);
        double pbTotal =
            static_cast<double>(m.pbHits + m.pbLateHits + m.pbMisses);
        table.addRow({designName(d),
                      TextTable::fmt(m.seconds() * 1e3),
                      baseTicks > 0.0
                          ? TextTable::fmt(baseTicks / m.ticks)
                          : "-",
                      TextTable::fmt(m.interHops / 1000.0, 1),
                      TextTable::fmt(m.energy.total() / 1e9),
                      TextTable::fmt(m.imbalance()),
                      TextTable::fmt(m.campHitRate()),
                      TextTable::fmt(static_cast<std::uint64_t>(
                          m.forwardedTasks)),
                      TextTable::fmt(static_cast<std::uint64_t>(
                          m.stolenTasks)),
                      TextTable::fmt(pbTotal > 0
                          ? 100.0 * m.pbHits / pbTotal : 0.0, 1),
                      TextTable::fmt(m.readLatMeanNs, 0),
                      TextTable::fmt(m.readLatMaxNs / 1000.0, 1),
                      TextTable::fmt(m.utilization())});
    }
    table.print(std::cout);

    if (assertShape) {
        // The paper's Table-2 ordering (DESIGN.md): O combines both
        // optimizations and wins; load balancing alone (Sl/Sh) beats
        // B; data-access alone (Sm/C) trades time for hop count and
        // loses to B. The extension rows only need to exist.
        const std::vector<Design> classic = {Design::B, Design::Sm,
                                             Design::Sl, Design::Sh,
                                             Design::C, Design::O};
        for (Design d : classic) {
            if (!ticksOf.count(d))
                fatal("--assert-shape: design ", designName(d),
                      " missing from the matrix");
        }
        for (Design d : {Design::Hlb, Design::HlbM}) {
            if (!ticksOf.count(d))
                fatal("--assert-shape: extension design ",
                      designName(d), " missing from the matrix");
        }
        int violations = 0;
        auto expect = [&](bool ok, const char *law, Design a,
                          Design b) {
            if (ok)
                return;
            std::cerr << "shape violation: expected " << designName(a)
                      << " " << law << " " << designName(b) << " but "
                      << designName(a) << "=" << ticksOf[a]
                      << " ticks, " << designName(b) << "="
                      << ticksOf[b] << " ticks\n";
            ++violations;
        };
        for (Design d : classic) {
            if (d != Design::O)
                expect(ticksOf[Design::O] <= ticksOf[d],
                       "no slower than", Design::O, d);
        }
        expect(ticksOf[Design::Sl] < ticksOf[Design::B],
               "faster than", Design::Sl, Design::B);
        expect(ticksOf[Design::Sh] < ticksOf[Design::B],
               "faster than", Design::Sh, Design::B);
        expect(ticksOf[Design::Sm] > ticksOf[Design::B],
               "slower than", Design::Sm, Design::B);
        expect(ticksOf[Design::C] > ticksOf[Design::B],
               "slower than", Design::C, Design::B);
        if (violations > 0) {
            std::cerr << "design matrix lost the paper shape ("
                      << violations << " violation"
                      << (violations == 1 ? "" : "s") << ")\n";
            return 1;
        }
        std::cout << "\nshape: OK (O fastest; Sl/Sh above B; Sm/C "
                  << "below B; HLB rows present)\n";
    }
    return 0;
}
