/**
 * @file
 * Design-matrix walkthrough: run one workload under every Table-2 system
 * design and print the full metric row for each — a compact view of the
 * remote-access/load-balance tradeoff the paper studies.
 *
 * Usage: design_matrix [--workload=pr] [--scale=13] [--verify=true]
 *                      [--design=H|B|Sm|Sl|Sh|C|O]
 *                      [--trace-out=trace.json] [--stats-interval=N]
 *                      [--stats-out=stats.txt] [--mem-backend=meter|ddr]
 *
 * --design restricts the matrix to one Table-2 row (quick iteration on
 * a single design); the speedup column needs the B baseline and prints
 * "-" when B is filtered out.
 *
 * With --trace-out / --stats-out the design name is inserted before the
 * extension (trace.json -> trace.O.json), one file per Table-2 design.
 */

#include <iostream>

#include "common/cli.hh"
#include "common/config.hh"
#include "common/table.hh"
#include "driver/experiment.hh"
#include "driver/run_flags.hh"

int
main(int argc, char **argv)
{
    using namespace abndp;

    CliFlags flags(argc, argv);
    WorkloadSpec spec;
    spec.name = flags.getString("workload", "pr");
    spec.scale = static_cast<std::uint32_t>(flags.getUint("scale", 13));
    spec.edgeFactor =
        static_cast<std::uint32_t>(flags.getUint("edge-factor", 16));

    SystemConfig base;
    base.seed = flags.getUint("seed", 1);

    RunFlags run = parseRunFlags(flags, /*threadsDefault=*/1);

    ExperimentOptions opts;
    opts.verify = flags.getBool("verify", true);

    std::vector<Design> designs = ndpDesigns();
    std::string only = flags.getString("design", "");
    if (!only.empty())
        designs = {designFromName(only)};

    std::cout << "Workload: " << spec.name << " (scale " << spec.scale
              << ", edge factor " << spec.edgeFactor << ")\n\n";

    TextTable table({"design", "time(ms)", "speedup", "hops(k)",
                     "energy(mJ)", "imbalance", "campHit", "forwards",
                     "steals", "pbHit%", "rdLat(ns)", "rdMax(us)",
                     "util"});

    double baseTicks = 0.0;
    for (Design d : designs) {
        SystemConfig cellBase = base;
        applyRunFlags(run, cellBase, designName(d));
        RunMetrics m = runExperiment(cellBase, d, spec, opts);
        if (d == Design::B)
            baseTicks = static_cast<double>(m.ticks);
        double pbTotal =
            static_cast<double>(m.pbHits + m.pbLateHits + m.pbMisses);
        table.addRow({designName(d),
                      TextTable::fmt(m.seconds() * 1e3),
                      baseTicks > 0.0
                          ? TextTable::fmt(baseTicks / m.ticks)
                          : "-",
                      TextTable::fmt(m.interHops / 1000.0, 1),
                      TextTable::fmt(m.energy.total() / 1e9),
                      TextTable::fmt(m.imbalance()),
                      TextTable::fmt(m.campHitRate()),
                      TextTable::fmt(static_cast<std::uint64_t>(
                          m.forwardedTasks)),
                      TextTable::fmt(static_cast<std::uint64_t>(
                          m.stolenTasks)),
                      TextTable::fmt(pbTotal > 0
                          ? 100.0 * m.pbHits / pbTotal : 0.0, 1),
                      TextTable::fmt(m.readLatMeanNs, 0),
                      TextTable::fmt(m.readLatMaxNs / 1000.0, 1),
                      TextTable::fmt(m.utilization())});
    }
    table.print(std::cout);
    return 0;
}
