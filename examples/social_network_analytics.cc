/**
 * @file
 * Social-network analytics on an ABNDP system.
 *
 * The motivating scenario of the paper: graph analytics over power-law
 * social graphs, where a few celebrity vertices are referenced by huge
 * numbers of tasks. This example builds a synthetic social graph, finds
 * the influencers with Page Rank, measures reachability with BFS, and
 * shows how the baseline NDP system and full ABNDP behave on each.
 *
 * Usage: social_network_analytics [--scale=13] [--edge-factor=16]
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "common/cli.hh"
#include "common/config.hh"
#include "common/table.hh"
#include "core/ndp_system.hh"
#include "workloads/bfs.hh"
#include "workloads/graph_gen.hh"
#include "workloads/pagerank.hh"

int
main(int argc, char **argv)
{
    using namespace abndp;

    CliFlags flags(argc, argv);
    RmatParams params;
    params.scale =
        static_cast<std::uint32_t>(flags.getUint("scale", 13));
    params.edgeFactor =
        static_cast<std::uint32_t>(flags.getUint("edge-factor", 16));
    params.seed = flags.getUint("seed", 2026);
    params.undirected = false;

    std::cout << "Generating a power-law social graph (2^" << params.scale
              << " users)...\n";
    Graph follows = makeRmatGraph(params);
    std::cout << "  " << follows.numVertices() << " users, "
              << follows.numEdges() << " follow edges, max out-degree "
              << follows.maxDegree() << "\n\n";

    SystemConfig base;

    // ---- Influencer ranking via Page Rank ----
    std::cout << "=== Page Rank: who are the influencers? ===\n";
    TextTable prTable({"system", "sim time (ms)", "inter-stack hops",
                       "energy (mJ)", "busiest/mean core"});
    std::vector<double> ranks;
    for (Design d : {Design::B, Design::O}) {
        NdpSystem sys(applyDesign(base, d));
        PageRankWorkload pr(follows, 6);
        RunMetrics m = sys.run(pr);
        if (!pr.verify())
            fatal("Page Rank verification failed");
        if (d == Design::O)
            ranks = pr.ranks();
        prTable.addRow({d == Design::B ? "baseline NDP (B)" : "ABNDP (O)",
                        TextTable::fmt(m.seconds() * 1e3),
                        TextTable::fmt(static_cast<double>(m.interHops),
                                       0),
                        TextTable::fmt(m.energy.total() / 1e9),
                        TextTable::fmt(m.imbalance())});
    }
    prTable.print(std::cout);

    // Top influencers.
    std::vector<std::uint32_t> order(follows.numVertices());
    for (std::uint32_t v = 0; v < order.size(); ++v)
        order[v] = v;
    std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                      [&](std::uint32_t a, std::uint32_t b) {
                          return ranks[a] > ranks[b];
                      });
    std::cout << "\nTop influencers: ";
    for (int i = 0; i < 5; ++i)
        std::cout << "user" << order[i] << " (pr="
                  << TextTable::fmt(ranks[order[i]] * 1000, 3) << "m) ";
    std::cout << "\n\n";

    // ---- Reachability via BFS from the top influencer ----
    std::cout << "=== BFS: how far does user" << order[0]
              << "'s reach extend? ===\n";
    Graph social = makeRmatGraph([&] {
        auto p = params;
        p.undirected = true;
        return p;
    }());
    TextTable bfsTable({"system", "sim time (ms)", "inter-stack hops",
                        "reached users"});
    for (Design d : {Design::B, Design::O}) {
        NdpSystem sys(applyDesign(base, d));
        BfsWorkload bfs(social, order[0]);
        RunMetrics m = sys.run(bfs);
        if (!bfs.verify())
            fatal("BFS verification failed");
        std::uint64_t reached = 0;
        for (std::uint32_t dist : bfs.distances())
            reached += dist != ~0u ? 1 : 0;
        bfsTable.addRow({d == Design::B ? "baseline NDP (B)" : "ABNDP (O)",
                         TextTable::fmt(m.seconds() * 1e3),
                         TextTable::fmt(static_cast<double>(m.interHops),
                                        0),
                         TextTable::fmt(static_cast<std::uint64_t>(
                             reached))});
    }
    bfsTable.print(std::cout);
    return 0;
}
