/**
 * @file
 * Quickstart: build the default ABNDP system (Table 1), run Page Rank on
 * a small power-law graph under the baseline B and the full ABNDP design
 * O, and print the headline metrics.
 */

#include <iostream>

#include "common/config.hh"
#include "driver/experiment.hh"

int
main()
{
    using namespace abndp;

    SystemConfig base; // Table-1 defaults: 4x4 stacks, 128 NDP units
    base.print(std::cout);
    std::cout << "\n";

    WorkloadSpec spec;
    spec.name = "pr";
    spec.scale = 12; // 4096-vertex power-law graph, quick to simulate
    spec.prIters = 3;

    std::cout << "Running Page Rank under baseline B..." << std::endl;
    RunMetrics b = runExperiment(base, Design::B, spec);
    std::cout << "Running Page Rank under ABNDP (O)..." << std::endl;
    RunMetrics o = runExperiment(base, Design::O, spec);

    auto report = [](const char *name, const RunMetrics &m) {
        std::cout << name << ": " << m.tasks << " tasks, "
                  << m.seconds() * 1e3 << " ms simulated, "
                  << m.interHops << " inter-stack hops, "
                  << m.energy.total() / 1e9 << " mJ, imbalance x"
                  << m.imbalance() << ", camp hit rate "
                  << m.campHitRate() << ", forwards " << m.forwardedTasks
                  << "\n";
    };
    report("B (baseline)", b);
    report("O (ABNDP)   ", o);
    std::cout << "ABNDP speedup over baseline: "
              << static_cast<double>(b.ticks) / o.ticks << "x\n";
    return 0;
}
