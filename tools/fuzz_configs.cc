/**
 * @file
 * Seeded configuration fuzzer front end (src/check/config_fuzz.hh).
 *
 * Samples valid SystemConfigs from a seeded Rng and runs each under
 * every Table-2 NDP design with the machine invariant checkers armed,
 * checking workload verification plus the metamorphic relations
 * (run-to-run and thread-count determinism, design-invariant
 * task/epoch counts). The first failing case is greedily minimized
 * and written as replayable JSON plus a full stats dump.
 *
 * Usage: fuzz_configs [--count=N] [--seed=S] [--threads=T]
 *                     [--time-box-s=S] [--repro-out=FILE]
 *                     [--replay=FILE] [--verbose]
 *
 * Exit status: 0 = all cases clean, 1 = a violation was found (or a
 * replayed repro still fails). Invariant violations detected *inside*
 * a run panic() with a full diagnostic instead of returning, so a
 * crash is also a failure signal for CI.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "check/config_fuzz.hh"
#include "common/cli.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "core/ndp_system.hh"
#include "driver/cell_runner.hh"
#include "driver/run_flags.hh"
#include "workloads/factory.hh"

using namespace abndp;

namespace
{

/** Re-run the minimized case once under O and dump the full registry. */
void
dumpStats(const check::FuzzCase &c, const std::string &path)
{
    SystemConfig cfg = applyDesign(c.cfg, Design::O);
    NdpSystem sys(cfg);
    auto wl = makeWorkload(WorkloadSpec::tiny(c.workload));
    sys.run(*wl);
    std::ofstream ofs(path);
    if (!ofs)
        fatal("cannot open stats dump file '", path, "'");
    sys.statsRegistry().dump(ofs);
}

/** Minimize, write the repro artifacts, and report the failure. */
int
reportFailure(const check::FuzzCase &c, const check::FuzzReport &rep,
              std::uint32_t threads, const std::string &reproOut)
{
    std::cout << "FAIL: " << rep.message << "\n";
    std::cout << "minimizing (greedy per-knob reset)...\n";
    check::FuzzCase minimized = c;
    minimized.cfg = check::minimizeConfig(
        c.cfg, [&](const SystemConfig &candidate) {
            check::FuzzCase probe;
            probe.cfg = candidate;
            probe.workload = c.workload;
            return !check::runFuzzCase(probe, threads).ok;
        });

    std::ofstream ofs(reproOut);
    if (!ofs)
        fatal("cannot open repro file '", reproOut, "'");
    ofs << check::fuzzCaseToJson(minimized);
    ofs.close();
    dumpStats(minimized, reproOut + ".stats");

    std::cout << "repro written to " << reproOut << " (stats dump: "
              << reproOut << ".stats)\n"
              << "replay with: fuzz_configs --replay=" << reproOut
              << "\n";
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    CliFlags flags(argc, argv);
    const auto count = flags.getUint("count", 25);
    const auto seed = flags.getUint("seed", Rng::defaultSeed);
    const std::uint32_t threads = parseRunFlags(flags).threads;
    const auto timeBoxS = flags.getUint("time-box-s", 0);
    const std::string reproOut =
        flags.getString("repro-out", "fuzz_repro.json");
    const std::string replay = flags.getString("replay", "");
    const bool verbose = flags.getBool("verbose", false);

    if (!replay.empty()) {
        std::ifstream ifs(replay);
        if (!ifs)
            fatal("cannot open repro file '", replay, "'");
        std::ostringstream buf;
        buf << ifs.rdbuf();
        check::FuzzCase c = check::fuzzCaseFromJson(buf.str());
        if (!check::fuzzConfigValid(c.cfg))
            fatal("repro config fails validity checks");
        c.cfg.validate();
        std::cout << "replaying " << replay << " (workload "
                  << c.workload << ", " << c.cfg.numUnits()
                  << " units)\n";
        check::FuzzReport rep = check::runFuzzCase(c, threads);
        if (!rep.ok) {
            std::cout << "FAIL: " << rep.message << "\n";
            return 1;
        }
        std::cout << "repro passes: all invariants and metamorphic "
                     "relations hold\n";
        return 0;
    }

    Rng rng(seed);
    const auto start = std::chrono::steady_clock::now();
    std::uint64_t ran = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        if (timeBoxS > 0) {
            const auto elapsed =
                std::chrono::duration_cast<std::chrono::seconds>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            if (static_cast<std::uint64_t>(elapsed) >= timeBoxS) {
                std::cout << "time box (" << timeBoxS
                          << " s) reached after " << ran << " cases\n";
                break;
            }
        }
        check::FuzzCase c = check::sampleFuzzCase(rng);
        c.cfg.validate(); // belt and braces: sampler is valid by design
        if (verbose)
            std::cout << "case " << i << ": workload=" << c.workload
                      << " units=" << c.cfg.numUnits()
                      << " groups=" << c.cfg.numGroups()
                      << " seed=" << c.cfg.seed << "\n";
        check::FuzzReport rep = check::runFuzzCase(c, threads);
        ++ran;
        if (!rep.ok)
            return reportFailure(c, rep, threads, reproOut);
    }
    std::cout << "fuzz_configs: " << ran
              << " cases clean (seed=" << seed << ", threads=" << threads
              << ")\n";
    return 0;
}
