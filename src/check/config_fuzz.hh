/**
 * @file
 * Seeded configuration fuzzer (the third leg of the correctness
 * harness; see docs/TESTING.md): samples valid SystemConfigs from a
 * seeded Rng, runs each under every NDP design of Table 2 with the
 * machine invariant checkers armed, and verifies workload results plus
 * metamorphic relations (identical metrics across repeated runs and
 * across --threads; design-invariant task/epoch counts). On failure it
 * emits a replayable, greedily minimized repro as flat JSON.
 *
 * Everything here is host tooling (tools/fuzz_configs.cc, CI nightly
 * job): nothing links back into simulator timing.
 */

#ifndef ABNDP_CHECK_CONFIG_FUZZ_HH
#define ABNDP_CHECK_CONFIG_FUZZ_HH

#include <cstdint>
#include <functional>
#include <string>

#include "common/config.hh"
#include "common/rng.hh"
#include "core/metrics.hh"

namespace abndp
{
namespace check
{

/** One fuzz case: a sampled machine and the workload to run on it. */
struct FuzzCase
{
    SystemConfig cfg;
    /** Workload name, run at WorkloadSpec::tiny() scale. */
    std::string workload = "pr";
};

/** Outcome of one fuzz case. */
struct FuzzReport
{
    bool ok = true;
    /** Human-readable description of the first divergence. */
    std::string message;
};

/**
 * Smallest machine every fuzz knob minimizes towards (1 stack, 2
 * units, tiny memories); also the implicit default of repro JSON keys
 * that are absent.
 */
SystemConfig minimalFuzzBaseline();

/**
 * Draw a valid configuration + workload from @p rng. Validity is by
 * construction (e.g. the camp-group count is drawn from the divisors
 * of the sampled unit count), so SystemConfig::validate() always
 * passes; checkInvariants is set on every sample.
 */
FuzzCase sampleFuzzCase(Rng &rng);

/**
 * Cheap non-fatal validity predicate over the knobs the fuzzer
 * mutates (validate() itself calls fatal(), which a fuzz driver must
 * never trigger while *searching* for a smaller repro).
 */
bool fuzzConfigValid(const SystemConfig &cfg);

/**
 * Deterministic digest of a run: every RunMetrics field except the
 * host-side self-measurement. Two runs of the same config must match
 * byte-for-byte.
 */
std::string metricsFingerprint(const RunMetrics &m);

/**
 * Run @p c under every NDP design with checkers armed: workload
 * verification, run-to-run determinism, thread-count independence
 * (sequential vs a runCells pool of @p threads), and design-invariant
 * task/epoch counts.
 */
FuzzReport runFuzzCase(const FuzzCase &c, std::uint32_t threads);

/** Serialize a fuzz case as flat dotted-key JSON (replayable). */
std::string fuzzCaseToJson(const FuzzCase &c);

/** Parse JSON produced by fuzzCaseToJson(); fatal() on bad input. */
FuzzCase fuzzCaseFromJson(const std::string &json);

/**
 * Greedy minimization: walk every knob and try resetting it to the
 * minimal baseline; keep each reset for which @p stillFails holds
 * (invalid intermediate configs are skipped, not run). The predicate
 * receives candidate configs that already passed fuzzConfigValid().
 */
SystemConfig
minimizeConfig(const SystemConfig &failing,
               const std::function<bool(const SystemConfig &)> &stillFails);

} // namespace check
} // namespace abndp

#endif // ABNDP_CHECK_CONFIG_FUZZ_HH
