/**
 * @file
 * Seeded configuration fuzzer implementation: knob table (the single
 * source of truth for sampling bounds, JSON round-trip, and greedy
 * minimization), the metamorphic run harness, and the repro format.
 */

#include "check/config_fuzz.hh"

#include <cstddef>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "core/ndp_system.hh"
#include "driver/cell_runner.hh"
#include "workloads/factory.hh"

namespace abndp
{
namespace check
{

namespace
{

bool
isPow2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

std::string
fmtU64(std::uint64_t v)
{
    return std::to_string(v);
}

std::uint64_t
parseU64(const std::string &v)
{
    return std::stoull(v);
}

std::string
fmtDouble(double v)
{
    // Hexfloat round-trips exactly; a lossy repro would replay a
    // different machine than the one that failed.
    std::ostringstream oss;
    oss << std::hexfloat << v;
    return oss.str();
}

double
parseDouble(const std::string &v)
{
    return std::strtod(v.c_str(), nullptr);
}

std::string
fmtBool(bool v)
{
    return v ? "true" : "false";
}

bool
parseBool(const std::string &v)
{
    if (v == "true")
        return true;
    if (v == "false")
        return false;
    fatal("fuzz repro: bad bool value '", v, "'");
    return false;
}

const char *
replName(ReplPolicy p)
{
    switch (p) {
      case ReplPolicy::Lru: return "lru";
      case ReplPolicy::Random: return "random";
      case ReplPolicy::Fifo: return "fifo";
    }
    return "lru";
}

ReplPolicy
replFromName(const std::string &v)
{
    if (v == "lru")
        return ReplPolicy::Lru;
    if (v == "random")
        return ReplPolicy::Random;
    if (v == "fifo")
        return ReplPolicy::Fifo;
    fatal("fuzz repro: bad replacement policy '", v, "'");
    return ReplPolicy::Lru;
}

const char *
topoName(IntraTopology t)
{
    return t == IntraTopology::Ring ? "ring" : "crossbar";
}

IntraTopology
topoFromName(const std::string &v)
{
    if (v == "crossbar")
        return IntraTopology::Crossbar;
    if (v == "ring")
        return IntraTopology::Ring;
    fatal("fuzz repro: bad intra topology '", v, "'");
    return IntraTopology::Crossbar;
}

const char *
profileName(RateProfile p)
{
    switch (p) {
      case RateProfile::Constant: return "constant";
      case RateProfile::Bursty: return "bursty";
      case RateProfile::Diurnal: return "diurnal";
    }
    return "constant";
}

RateProfile
profileFromName(const std::string &v)
{
    if (v == "constant")
        return RateProfile::Constant;
    if (v == "bursty")
        return RateProfile::Bursty;
    if (v == "diurnal")
        return RateProfile::Diurnal;
    fatal("fuzz repro: bad rate profile '", v, "'");
    return RateProfile::Constant;
}

/**
 * One mutable configuration knob: a dotted JSON key plus string
 * accessors. The table drives serialization and minimization, so a
 * knob added to the sampler but not here would silently fall out of
 * repro files — keep them in sync.
 */
struct Knob
{
    const char *key;
    std::string (*get)(const SystemConfig &);
    void (*set)(SystemConfig &, const std::string &);
};

#define ABNDP_UINT_KNOB(key, field)                                     \
    { key,                                                              \
      [](const SystemConfig &c) {                                       \
          return fmtU64(static_cast<std::uint64_t>(c.field));           \
      },                                                                \
      [](SystemConfig &c, const std::string &v) {                       \
          c.field = static_cast<decltype(c.field)>(parseU64(v));        \
      } }

#define ABNDP_DOUBLE_KNOB(key, field)                                   \
    { key,                                                              \
      [](const SystemConfig &c) { return fmtDouble(c.field); },         \
      [](SystemConfig &c, const std::string &v) {                       \
          c.field = parseDouble(v);                                     \
      } }

#define ABNDP_BOOL_KNOB(key, field)                                     \
    { key,                                                              \
      [](const SystemConfig &c) { return fmtBool(c.field); },           \
      [](SystemConfig &c, const std::string &v) {                       \
          c.field = parseBool(v);                                       \
      } }

#define ABNDP_REPL_KNOB(key, field)                                     \
    { key,                                                              \
      [](const SystemConfig &c) {                                       \
          return std::string(replName(c.field));                        \
      },                                                                \
      [](SystemConfig &c, const std::string &v) {                       \
          c.field = replFromName(v);                                    \
      } }

const std::vector<Knob> &
knobTable()
{
    static const std::vector<Knob> table = {
        ABNDP_UINT_KNOB("meshX", meshX),
        ABNDP_UINT_KNOB("meshY", meshY),
        ABNDP_UINT_KNOB("unitsPerStack", unitsPerStack),
        ABNDP_UINT_KNOB("coresPerUnit", coresPerUnit),
        ABNDP_DOUBLE_KNOB("coreFreqGHz", coreFreqGHz),
        ABNDP_UINT_KNOB("memBytesPerUnit", memBytesPerUnit),
        ABNDP_UINT_KNOB("l1d.sizeBytes", l1d.sizeBytes),
        ABNDP_UINT_KNOB("l1d.assoc", l1d.assoc),
        ABNDP_REPL_KNOB("l1d.repl", l1d.repl),
        ABNDP_UINT_KNOB("prefetchBufBytes", prefetchBufBytes),
        ABNDP_UINT_KNOB("tlb.entries", tlb.entries),
        ABNDP_BOOL_KNOB("tlb.enabled", tlb.enabled),
        ABNDP_UINT_KNOB("dram.busBits", dram.busBits),
        ABNDP_UINT_KNOB("dram.banks", dram.banks),
        ABNDP_UINT_KNOB("dram.rowBytes", dram.rowBytes),
        ABNDP_DOUBLE_KNOB("dram.busGHz", dram.busGHz),
        ABNDP_DOUBLE_KNOB("dram.tCasNs", dram.tCasNs),
        ABNDP_DOUBLE_KNOB("dram.tRcdNs", dram.tRcdNs),
        ABNDP_DOUBLE_KNOB("dram.tRpNs", dram.tRpNs),
        ABNDP_BOOL_KNOB("dram.refreshEnabled", dram.refreshEnabled),
        { "dram.backend",
          [](const SystemConfig &c) {
              return std::string(memBackendName(c.dram.backend));
          },
          [](SystemConfig &c, const std::string &v) {
              c.dram.backend = memBackendFromName(v);
          } },
        { "dram.pagePolicy",
          [](const SystemConfig &c) {
              return std::string(pagePolicyName(c.dram.pagePolicy));
          },
          [](SystemConfig &c, const std::string &v) {
              c.dram.pagePolicy = pagePolicyFromName(v);
          } },
        { "dram.addrMap",
          [](const SystemConfig &c) {
              return std::string(dramAddrMapName(c.dram.addrMap));
          },
          [](SystemConfig &c, const std::string &v) {
              c.dram.addrMap = dramAddrMapFromName(v);
          } },
        ABNDP_UINT_KNOB("dram.bankGroups", dram.bankGroups),
        ABNDP_UINT_KNOB("dram.burstBytes", dram.burstBytes),
        ABNDP_DOUBLE_KNOB("dram.tRasNs", dram.tRasNs),
        ABNDP_DOUBLE_KNOB("dram.tWrNs", dram.tWrNs),
        ABNDP_DOUBLE_KNOB("dram.tFawNs", dram.tFawNs),
        { "net.intraTopology",
          [](const SystemConfig &c) {
              return std::string(topoName(c.net.intraTopology));
          },
          [](SystemConfig &c, const std::string &v) {
              c.net.intraTopology = topoFromName(v);
          } },
        ABNDP_UINT_KNOB("traveller.ratioDenom", traveller.ratioDenom),
        ABNDP_UINT_KNOB("traveller.assoc", traveller.assoc),
        ABNDP_UINT_KNOB("traveller.campCount", traveller.campCount),
        ABNDP_DOUBLE_KNOB("traveller.bypassProb", traveller.bypassProb),
        ABNDP_REPL_KNOB("traveller.repl", traveller.repl),
        ABNDP_BOOL_KNOB("traveller.skewedMapping",
                        traveller.skewedMapping),
        ABNDP_UINT_KNOB("sched.prefetchWindow", sched.prefetchWindow),
        ABNDP_UINT_KNOB("sched.schedulingWindow",
                        sched.schedulingWindow),
        ABNDP_UINT_KNOB("sched.stealBatch", sched.stealBatch),
        ABNDP_UINT_KNOB("sched.missPipelineDepth",
                        sched.missPipelineDepth),
        ABNDP_UINT_KNOB("sched.exchangeIntervalCycles",
                        sched.exchangeIntervalCycles),
        ABNDP_BOOL_KNOB("sched.exhaustiveScoring",
                        sched.exhaustiveScoring),
        { "lb.intraTier",
          [](const SystemConfig &c) {
              return std::string(lbTierName(c.lb.intraTier));
          },
          [](SystemConfig &c, const std::string &v) {
              c.lb.intraTier = lbTierFromName(v);
          } },
        { "lb.interTier",
          [](const SystemConfig &c) {
              return std::string(lbTierName(c.lb.interTier));
          },
          [](SystemConfig &c, const std::string &v) {
              c.lb.interTier = lbTierFromName(v);
          } },
        ABNDP_UINT_KNOB("lb.hotK", lb.hotK),
        ABNDP_UINT_KNOB("lb.decayShift", lb.decayShift),
        ABNDP_UINT_KNOB("lb.idleThreshold", lb.idleThreshold),
        ABNDP_UINT_KNOB("lb.chunkSize", lb.chunkSize),
        ABNDP_DOUBLE_KNOB("lb.reserveFrac", lb.reserveFrac),
        ABNDP_UINT_KNOB("lb.migration.threshold",
                        lb.migration.threshold),
        ABNDP_UINT_KNOB("lb.migration.cooldownWindows",
                        lb.migration.cooldownWindows),
        ABNDP_UINT_KNOB("lb.migration.maxPerExchange",
                        lb.migration.maxPerExchange),
        ABNDP_UINT_KNOB("fault.unitFailure.count",
                        fault.unitFailure.count),
        ABNDP_DOUBLE_KNOB("fault.unitFailure.failAtNs",
                          fault.unitFailure.failAtNs),
        ABNDP_DOUBLE_KNOB("fault.unitFailure.recoverAtNs",
                          fault.unitFailure.recoverAtNs),
        ABNDP_DOUBLE_KNOB("fault.unitFailure.ackTimeoutNs",
                          fault.unitFailure.ackTimeoutNs),
        ABNDP_DOUBLE_KNOB("fault.unitFailure.redispatchBackoffNs",
                          fault.unitFailure.redispatchBackoffNs),
        ABNDP_UINT_KNOB("fault.unitFailure.maxRedispatch",
                        fault.unitFailure.maxRedispatch),
        ABNDP_UINT_KNOB("serving.requests", serving.requests),
        ABNDP_DOUBLE_KNOB("serving.ratePerUs", serving.ratePerUs),
        { "serving.profile",
          [](const SystemConfig &c) {
              return std::string(profileName(c.serving.profile));
          },
          [](SystemConfig &c, const std::string &v) {
              c.serving.profile = profileFromName(v);
          } },
        ABNDP_DOUBLE_KNOB("serving.burstFactor", serving.burstFactor),
        ABNDP_DOUBLE_KNOB("serving.burstFraction",
                          serving.burstFraction),
        ABNDP_DOUBLE_KNOB("serving.burstPeriodUs",
                          serving.burstPeriodUs),
        ABNDP_DOUBLE_KNOB("serving.diurnalPeriodUs",
                          serving.diurnalPeriodUs),
        ABNDP_DOUBLE_KNOB("serving.diurnalDepth",
                          serving.diurnalDepth),
        ABNDP_DOUBLE_KNOB("serving.zipfS", serving.zipfS),
        ABNDP_UINT_KNOB("serving.tenants", serving.tenants),
        ABNDP_DOUBLE_KNOB("serving.sloNs", serving.sloNs),
        ABNDP_UINT_KNOB("serving.maxOutstanding",
                        serving.maxOutstanding),
        ABNDP_UINT_KNOB("seed", seed),
    };
    return table;
}

#undef ABNDP_UINT_KNOB
#undef ABNDP_DOUBLE_KNOB
#undef ABNDP_BOOL_KNOB
#undef ABNDP_REPL_KNOB

ReplPolicy
drawRepl(Rng &rng)
{
    switch (rng.below(3)) {
      case 0: return ReplPolicy::Lru;
      case 1: return ReplPolicy::Random;
      default: return ReplPolicy::Fifo;
    }
}

void
appendJsonPair(std::ostringstream &oss, const char *key,
               const std::string &value, bool last)
{
    oss << "  \"" << key << "\": \"" << value << '"'
        << (last ? "\n" : ",\n");
}

} // namespace

SystemConfig
minimalFuzzBaseline()
{
    SystemConfig cfg;
    cfg.meshX = cfg.meshY = 1;
    cfg.unitsPerStack = 2;
    cfg.coresPerUnit = 1;
    cfg.memBytesPerUnit = 1ull << 22;
    // groups = campCount + 1 = 2 divides the 2 units.
    cfg.traveller.campCount = 1;
    cfg.checkInvariants = true;
    return cfg;
}

FuzzCase
sampleFuzzCase(Rng &rng)
{
    FuzzCase c;
    SystemConfig &cfg = c.cfg;
    cfg = minimalFuzzBaseline();

    cfg.meshX = 1 + static_cast<std::uint32_t>(rng.below(2));
    cfg.meshY = 1 + static_cast<std::uint32_t>(rng.below(2));
    cfg.unitsPerStack = 2u << rng.below(2); // 2 or 4
    cfg.coresPerUnit = 1 + static_cast<std::uint32_t>(rng.below(2));
    cfg.coreFreqGHz = rng.below(2) ? 2.0 : 1.0;
    cfg.memBytesPerUnit = 1ull << (22 + rng.below(2)); // 4 or 8 MB

    cfg.l1d.sizeBytes = 1ull << (14 + rng.below(3)); // 16..64 KB
    cfg.l1d.assoc = 2u << rng.below(2);
    cfg.l1d.repl = drawRepl(rng);
    cfg.prefetchBufBytes = 1ull << (10 + rng.below(3)); // 1..4 KB
    cfg.tlb.entries = 32u << rng.below(2);
    cfg.tlb.enabled = rng.below(4) != 0;

    cfg.dram = rng.below(2) ? DramConfig::hmc() : DramConfig::hbm();

    // Memory-backend axis (~1 case in 3): the bank-state DDR model
    // with randomized page policy, address map, bank grouping, and
    // the DDR-only timings. Validity is by construction: bankGroups
    // is drawn from the divisors of the organization's bank count,
    // burstBytes (32..128) divides every sampled rowBytes, tRAS
    // always covers tRCD, and the brc divisibility constraint holds
    // because both bank counts are powers of two dividing the
    // power-of-two memBytesPerUnit.
    if (rng.below(3) == 0) {
        auto &d = cfg.dram;
        d.backend = MemBackendKind::Ddr;
        switch (rng.below(3)) {
          case 0: d.pagePolicy = PagePolicy::Open; break;
          case 1: d.pagePolicy = PagePolicy::Close; break;
          default: d.pagePolicy = PagePolicy::Adaptive; break;
        }
        switch (rng.below(3)) {
          case 0: d.addrMap = DramAddrMapKind::RowBankColumn; break;
          case 1: d.addrMap = DramAddrMapKind::RowColumnBank; break;
          default: d.addrMap = DramAddrMapKind::BankRowColumn; break;
        }
        std::vector<std::uint32_t> groupDivisors;
        for (std::uint32_t g = 1; g <= d.banks; ++g)
            if (d.banks % g == 0)
                groupDivisors.push_back(g);
        d.bankGroups = groupDivisors[rng.below(groupDivisors.size())];
        d.burstBytes = 32u << rng.below(3);
        d.tRasNs = d.tRcdNs + 7.0 * static_cast<double>(rng.below(4));
        d.tWrNs = 5.0 * static_cast<double>(rng.below(4));
        d.tFawNs = 10.0 * static_cast<double>(rng.below(5)); // 0 = off
    }

    cfg.net.intraTopology = rng.below(2) ? IntraTopology::Ring
                                         : IntraTopology::Crossbar;

    cfg.traveller.ratioDenom = 1ull << (5 + rng.below(2)); // 32 or 64
    cfg.traveller.assoc = 2u << rng.below(2);
    // Draw the group count from the divisors >= 2 of the sampled unit
    // count, so validate()'s divisibility constraint holds by
    // construction.
    std::vector<std::uint32_t> groupChoices;
    for (std::uint32_t g = 2; g <= cfg.numUnits(); ++g)
        if (cfg.numUnits() % g == 0)
            groupChoices.push_back(g);
    cfg.traveller.campCount =
        groupChoices[rng.below(groupChoices.size())] - 1;
    cfg.traveller.bypassProb = 0.2 * static_cast<double>(rng.below(4));
    cfg.traveller.repl = drawRepl(rng);
    cfg.traveller.skewedMapping = rng.below(2) != 0;

    cfg.sched.prefetchWindow = 1 + static_cast<std::uint32_t>(rng.below(4));
    cfg.sched.schedulingWindow = 4u << rng.below(2);
    cfg.sched.stealBatch = 1 + static_cast<std::uint32_t>(rng.below(8));
    cfg.sched.missPipelineDepth =
        1 + static_cast<std::uint32_t>(rng.below(4));
    cfg.sched.exchangeIntervalCycles = 50000ull << rng.below(3);
    cfg.sched.exhaustiveScoring = rng.below(2) != 0;

    // Hierarchical-lb axis (~1 case in 3): diversify the balancer
    // composition and re-homing knobs. The enabled flags stay
    // design-controlled (runFuzzCase applies the HLB designs over
    // every case, which switches the balancer on regardless of the
    // sampled base), so this axis varies *which* machine the HLB
    // designs build, not *whether* one is built. At most one tier may
    // be none; every other combination is valid by construction
    // (mirrored in fuzzConfigValid below).
    if (rng.below(3) == 0) {
        auto &lb = cfg.lb;
        auto draw_tier = [&rng](bool allow_none) {
            switch (rng.below(allow_none ? 4 : 3)) {
              case 0: return LbTierKind::Stealing;
              case 1: return LbTierKind::Average;
              case 2: return LbTierKind::Reserve;
              default: return LbTierKind::None;
            }
        };
        lb.intraTier = draw_tier(true);
        lb.interTier = draw_tier(lb.intraTier != LbTierKind::None);
        lb.hotK = 4u << rng.below(4); // 4..32
        lb.decayShift = static_cast<std::uint32_t>(rng.below(4));
        lb.idleThreshold = static_cast<std::uint32_t>(rng.below(4));
        lb.chunkSize = 1 + static_cast<std::uint32_t>(rng.below(8));
        lb.reserveFrac = 0.25 * static_cast<double>(rng.below(5));
        lb.migration.threshold =
            1 + static_cast<std::uint32_t>(rng.below(16));
        lb.migration.cooldownWindows =
            static_cast<std::uint32_t>(rng.below(8));
        lb.migration.maxPerExchange =
            1 + static_cast<std::uint32_t>(rng.below(16));
    }

    // Unit-failure axis (~1 case in 3): kill a strict minority of
    // units at a seeded time, half the time with a transient recovery
    // window. Leg 3 (design invariance) keeps holding because the
    // functional execution is placement-independent, and the armed
    // checkers enforce task conservation under failure.
    if (rng.below(3) == 0) {
        auto &uf = cfg.fault.unitFailure;
        uf.count = 1
            + static_cast<std::uint32_t>(rng.below(cfg.numUnits() / 2));
        uf.failAtNs = 100.0 * static_cast<double>(rng.below(20));
        if (rng.below(2) != 0)
            uf.recoverAtNs = uf.failAtNs
                + 200.0 * (1.0 + static_cast<double>(rng.below(10)));
        uf.ackTimeoutNs =
            500.0 * (1.0 + static_cast<double>(rng.below(8)));
        uf.redispatchBackoffNs =
            100.0 * static_cast<double>(rng.below(8));
        uf.maxRedispatch = 1 + static_cast<std::uint32_t>(rng.below(8));
    }

    cfg.seed = 1 + rng.below(1ull << 20);
    cfg.checkInvariants = true;

    const auto &names = allWorkloadNames();
    c.workload = names[rng.below(names.size())];

    // Serving axis (~1 case in 3): a short open-loop stream over one
    // of the point-query services. Rates stay modest and streams
    // short: the sampled machines are tiny (1-2 cores), and an
    // unsustainable rate is a watchdog fatal(), not a bug. Every
    // sampled combination satisfies validate() by construction
    // (mirrored in fuzzConfigValid below).
    if (rng.below(3) == 0) {
        auto &sv = cfg.serving;
        sv.requests = 100ull << rng.below(3); // 100..400
        sv.ratePerUs = 1.0 + static_cast<double>(rng.below(4)); // 1..4
        switch (rng.below(3)) {
          case 0: sv.profile = RateProfile::Constant; break;
          case 1: sv.profile = RateProfile::Bursty; break;
          default: sv.profile = RateProfile::Diurnal; break;
        }
        sv.burstFactor = 2.0 * (1.0 + static_cast<double>(rng.below(2)));
        sv.burstFraction = 0.1 * (1.0 + static_cast<double>(rng.below(2)));
        sv.burstPeriodUs = 10.0 * (1.0 + static_cast<double>(rng.below(8)));
        sv.diurnalPeriodUs =
            50.0 * (1.0 + static_cast<double>(rng.below(8)));
        sv.diurnalDepth = 0.2 * static_cast<double>(rng.below(5));
        sv.zipfS = 0.33 * static_cast<double>(rng.below(4));
        sv.tenants = 1 + static_cast<std::uint32_t>(rng.below(4));
        sv.sloNs = 1000.0 * (1.0 + static_cast<double>(rng.below(8)));
        sv.maxOutstanding = rng.below(3) == 0 ? 0 : 32ull << rng.below(4);
        // Serving requires a QueryService workload (see serveRun).
        static const char *const served[] = {"kv", "knn", "sssp",
                                             "astar"};
        c.workload = served[rng.below(4)];
    }
    return c;
}

bool
fuzzConfigValid(const SystemConfig &cfg)
{
    if (cfg.meshX == 0 || cfg.meshY == 0 || cfg.unitsPerStack == 0 ||
        cfg.coresPerUnit == 0)
        return false;
    if (!isPow2(cfg.memBytesPerUnit))
        return false;
    if (cfg.coreFreqGHz <= 0.0)
        return false;
    if (cfg.l1d.sizeBytes == 0 || cfg.l1d.assoc == 0 ||
        cfg.l1d.lineBytes == 0 ||
        cfg.l1d.sizeBytes % cfg.l1d.lineBytes != 0 ||
        cfg.l1d.numSets() == 0)
        return false;
    if (cfg.prefetchBufBytes < cachelineBytes)
        return false;
    if (cfg.tlb.entries == 0 || cfg.tlb.assoc == 0 ||
        cfg.tlb.entries % cfg.tlb.assoc != 0 ||
        !isPow2(cfg.tlb.pageBytes))
        return false;
    if (cfg.dram.busBits == 0 || cfg.dram.banks == 0 ||
        cfg.dram.rowBytes == 0 || cfg.dram.busGHz <= 0.0)
        return false;
    if (cfg.dram.tCasNs < 0.0 || cfg.dram.tRcdNs < 0.0 ||
        cfg.dram.tRpNs < 0.0)
        return false;
    if (cfg.dram.refreshEnabled &&
        (cfg.dram.tRefiNs <= 0.0 || cfg.dram.tRfcNs < 0.0 ||
         cfg.dram.refreshCatchupMax == 0))
        return false;
    if (cfg.dram.backend == MemBackendKind::Ddr) {
        // Mirror of the DDR-only section of SystemConfig::validate().
        if (!isPow2(cfg.dram.burstBytes) ||
            cfg.dram.rowBytes % cfg.dram.burstBytes != 0)
            return false;
        if (cfg.dram.bankGroups == 0 ||
            cfg.dram.banks % cfg.dram.bankGroups != 0)
            return false;
        if (cfg.dram.tRasNs < cfg.dram.tRcdNs)
            return false;
        if (cfg.dram.tWrNs < 0.0 || cfg.dram.tFawNs < 0.0)
            return false;
        if (cfg.dram.addrMap == DramAddrMapKind::BankRowColumn &&
            cfg.memBytesPerUnit % cfg.dram.banks != 0)
            return false;
    }
    if (!isPow2(cfg.traveller.ratioDenom) || cfg.traveller.assoc == 0 ||
        cfg.travellerSets() == 0)
        return false;
    if (cfg.traveller.campCount == 0 ||
        cfg.numUnits() % cfg.numGroups() != 0)
        return false;
    if (cfg.traveller.bypassProb < 0.0 || cfg.traveller.bypassProb > 1.0)
        return false;
    if (cfg.sched.prefetchWindow == 0 || cfg.sched.schedulingWindow == 0 ||
        cfg.sched.stealBatch == 0 ||
        cfg.sched.exchangeIntervalCycles == 0)
        return false;
    if (cfg.sched.missPipelineDepth == 0 ||
        cfg.sched.missPipelineDepth > 64)
        return false;
    // Hierarchical-lb knobs are mirrored *unconditionally* (validate()
    // only checks them under lb.enabled): runFuzzCase applies every
    // NDP design over the case, and the HLB designs enable the
    // balancer whatever the sampled base says, so a knob combination
    // validate() would reject under HLB must not survive minimization.
    if (cfg.lb.intraTier == LbTierKind::None
        && cfg.lb.interTier == LbTierKind::None)
        return false;
    if (cfg.lb.hotK == 0 || cfg.lb.decayShift > 63)
        return false;
    if (cfg.lb.chunkSize == 0
        && (cfg.lb.intraTier == LbTierKind::Stealing
            || cfg.lb.interTier == LbTierKind::Stealing))
        return false;
    if ((cfg.lb.reserveFrac < 0.0 || cfg.lb.reserveFrac > 1.0)
        && (cfg.lb.intraTier == LbTierKind::Reserve
            || cfg.lb.interTier == LbTierKind::Reserve))
        return false;
    if (cfg.lb.migration.threshold == 0
        || cfg.lb.migration.maxPerExchange == 0)
        return false;
    const auto &uf = cfg.fault.unitFailure;
    for (std::uint32_t u : uf.units)
        if (u >= cfg.numUnits())
            return false;
    if (uf.enabled()) {
        // Conservative mirror of validate(): explicit ids are counted
        // without dedup (the sampler only ever draws count).
        std::uint32_t nFailed = !uf.units.empty()
            ? static_cast<std::uint32_t>(uf.units.size())
            : uf.count;
        if (nFailed >= cfg.numUnits())
            return false;
        if (uf.failAtNs < 0.0 || uf.recoverAtNs < 0.0)
            return false;
        if (uf.recoverAtNs != 0.0 && uf.recoverAtNs <= uf.failAtNs)
            return false;
        if (uf.ackTimeoutNs <= 0.0 || uf.redispatchBackoffNs < 0.0)
            return false;
        if (uf.maxRedispatch == 0)
            return false;
    }
    const auto &sv = cfg.serving;
    if (sv.enabled()) {
        // Mirror of the serving section of SystemConfig::validate().
        if (sv.ratePerUs <= 0.0 || sv.burstFactor < 1.0)
            return false;
        if (sv.burstFraction < 0.0 || sv.burstFraction >= 1.0)
            return false;
        if (sv.profile == RateProfile::Bursty
            && sv.burstFactor * sv.burstFraction >= 1.0)
            return false;
        if (sv.burstPeriodUs <= 0.0 || sv.diurnalPeriodUs <= 0.0)
            return false;
        if (sv.diurnalDepth < 0.0 || sv.diurnalDepth >= 1.0)
            return false;
        if (sv.zipfS < 0.0)
            return false;
        if (sv.tenants == 0 || sv.tenants > 64)
            return false;
        if (!sv.tenantWeights.empty()
            && sv.tenantWeights.size() != sv.tenants)
            return false;
        for (double w : sv.tenantWeights)
            if (w <= 0.0)
                return false;
        if (sv.sloNs <= 0.0)
            return false;
    }
    return true;
}

std::string
metricsFingerprint(const RunMetrics &m)
{
    std::ostringstream oss;
    oss << std::hexfloat;
    auto field = [&oss](const auto &v) { oss << v << ';'; };
    auto vec = [&oss](const auto &vs) {
        oss << vs.size() << '[';
        for (const auto &v : vs)
            oss << v << ',';
        oss << "];";
    };
    field(m.ticks);
    field(m.epochs);
    field(m.tasks);
    field(m.interHops);
    field(m.intraTraversals);
    field(m.energy.coreSramPj);
    field(m.energy.dramMemPj);
    field(m.energy.dramCachePj);
    field(m.energy.netPj);
    field(m.energy.staticPj);
    vec(m.coreActiveTicks);
    vec(m.epochTicks);
    vec(m.epochBusyTicks);
    vec(m.epochTasks);
    field(m.campHits);
    field(m.campMisses);
    field(m.cacheInserts);
    field(m.pbHits);
    field(m.pbLateHits);
    field(m.pbMisses);
    field(m.l1Hits);
    field(m.l1Misses);
    field(m.stealAttempts);
    field(m.stolenTasks);
    field(m.forwardedTasks);
    field(m.schedDecisions);
    field(m.dramReads);
    field(m.dramWrites);
    field(m.dramRowMisses);
    field(m.dramRowHits);
    field(m.dramActStalls);
    field(m.netDropped);
    field(m.netRetries);
    field(m.dramEccRetries);
    field(m.unitsFailed);
    field(m.tasksRecovered);
    field(m.tasksRedispatched);
    field(m.recoveryTrafficBytes);
    field(m.servingInjected);
    field(m.servingRejected);
    field(m.servingCompletedDirect);
    field(m.servingCompletedRecovered);
    field(m.servingSloMisses);
    field(m.servingWindows);
    field(m.servingP50Ns);
    field(m.servingP95Ns);
    field(m.servingP99Ns);
    field(m.servingP999Ns);
    field(m.servingMeanNs);
    field(m.servingGoodputQps);
    field(m.servingSloMissRate);
    field(m.tasksShedIntra);
    field(m.tasksShedInter);
    field(m.blocksMigrated);
    field(m.migrationInvalidations);
    field(m.migrationTrafficBytes);
    field(m.readLatMeanNs);
    field(m.readLatMaxNs);
    field(m.simEvents);
    // hostSeconds deliberately excluded: it is the one sanctioned
    // wall-clock measurement and never deterministic.
    return oss.str();
}

FuzzReport
runFuzzCase(const FuzzCase &c, std::uint32_t threads)
{
    FuzzReport r;
    const auto &designs = ndpDesigns();
    const WorkloadSpec spec = WorkloadSpec::tiny(c.workload);

    // Leg 1: one sequential run per Table-2 NDP design, invariant
    // checkers armed (any conservation-law violation panics inside
    // run()), workload results checked against the sequential
    // reference.
    std::vector<std::string> fp(designs.size());
    std::vector<std::uint64_t> tasks(designs.size());
    std::vector<std::uint64_t> epochs(designs.size());
    for (std::size_t i = 0; i < designs.size(); ++i) {
        SystemConfig cfg = applyDesign(c.cfg, designs[i]);
        cfg.validate();
        NdpSystem sys(cfg);
        auto wl = makeWorkload(spec);
        RunMetrics m = sys.run(*wl);
        if (!wl->verify()) {
            r.ok = false;
            r.message = std::string("workload '") + c.workload +
                "' failed verify() under design " +
                designName(designs[i]);
            return r;
        }
        fp[i] = metricsFingerprint(m);
        tasks[i] = m.tasks;
        epochs[i] = m.epochs;

        // Serving metamorphic relation: every injected request is
        // accounted for exactly once — rejected at admission, served
        // directly, or served through the recovery path.
        if (cfg.serving.enabled()) {
            if (m.servingInjected != cfg.serving.requests) {
                r.ok = false;
                r.message = std::string("serving injected ") +
                    std::to_string(m.servingInjected) + " of " +
                    std::to_string(cfg.serving.requests) +
                    " configured requests under design " +
                    designName(designs[i]);
                return r;
            }
            if (m.servingInjected != m.servingRejected
                    + m.servingCompletedDirect
                    + m.servingCompletedRecovered) {
                r.ok = false;
                r.message = std::string("serving conservation broken "
                    "under design ") + designName(designs[i]) + ": " +
                    std::to_string(m.servingInjected) + " injected != " +
                    std::to_string(m.servingRejected) + " rejected + " +
                    std::to_string(m.servingCompletedDirect) +
                    " direct + " +
                    std::to_string(m.servingCompletedRecovered) +
                    " recovered";
                return r;
            }
        }
    }

    // Leg 2 (metamorphic): the same configs rerun through the parallel
    // grid runner must reproduce every metric bit-exactly — this pins
    // both run-to-run determinism and thread-count independence at
    // once (threads <= 1 degrades to a sequential rerun).
    std::vector<CellSpec> cells(designs.size());
    for (std::size_t i = 0; i < designs.size(); ++i) {
        cells[i].design = designs[i];
        cells[i].workload = spec;
        cells[i].opts.verify = false;
    }
    std::vector<RunMetrics> rerun = runCells(c.cfg, cells, threads);
    for (std::size_t i = 0; i < designs.size(); ++i) {
        if (metricsFingerprint(rerun[i]) != fp[i]) {
            r.ok = false;
            r.message = std::string("metrics diverge between "
                                    "sequential and ") +
                std::to_string(threads) + "-thread reruns under design " +
                designName(designs[i]) + " (broken determinism)";
            return r;
        }
    }

    // Leg 3 (metamorphic): scheduling and caching are performance
    // features; the functional execution — tasks spawned, epochs run —
    // must be identical across every NDP design. Serving runs are
    // exempt: admission (hence the task count) and the window count
    // depend on each design's latency, by design.
    if (c.cfg.serving.enabled())
        return r;
    for (std::size_t i = 1; i < designs.size(); ++i) {
        if (tasks[i] != tasks[0] || epochs[i] != epochs[0]) {
            r.ok = false;
            r.message = std::string("design ") + designName(designs[i]) +
                " ran " + std::to_string(tasks[i]) + " tasks / " +
                std::to_string(epochs[i]) + " epochs but design " +
                designName(designs[0]) + " ran " +
                std::to_string(tasks[0]) + " / " +
                std::to_string(epochs[0]) +
                " (functional execution must be design-invariant)";
            return r;
        }
    }
    return r;
}

std::string
fuzzCaseToJson(const FuzzCase &c)
{
    std::ostringstream oss;
    oss << "{\n";
    appendJsonPair(oss, "workload", c.workload, false);
    const auto &table = knobTable();
    for (std::size_t i = 0; i < table.size(); ++i)
        appendJsonPair(oss, table[i].key, table[i].get(c.cfg),
                       i + 1 == table.size());
    oss << "}\n";
    return oss.str();
}

FuzzCase
fuzzCaseFromJson(const std::string &json)
{
    FuzzCase c;
    c.cfg = minimalFuzzBaseline();

    // The repro format is flat string pairs ("key": "value"), so a
    // hand-rolled scanner suffices; anything else is a malformed repro.
    std::size_t pos = 0;
    bool sawAny = false;
    while (true) {
        std::size_t k0 = json.find('"', pos);
        if (k0 == std::string::npos)
            break;
        std::size_t k1 = json.find('"', k0 + 1);
        if (k1 == std::string::npos)
            fatal("fuzz repro: unterminated key at offset ", k0);
        std::string key = json.substr(k0 + 1, k1 - k0 - 1);
        std::size_t colon = json.find(':', k1 + 1);
        if (colon == std::string::npos)
            fatal("fuzz repro: missing ':' after key '", key, "'");
        std::size_t v0 = json.find('"', colon + 1);
        if (v0 == std::string::npos)
            fatal("fuzz repro: missing value for key '", key, "'");
        std::size_t v1 = json.find('"', v0 + 1);
        if (v1 == std::string::npos)
            fatal("fuzz repro: unterminated value for key '", key, "'");
        std::string value = json.substr(v0 + 1, v1 - v0 - 1);
        pos = v1 + 1;
        sawAny = true;

        if (key == "workload") {
            c.workload = value;
            continue;
        }
        bool matched = false;
        for (const Knob &k : knobTable()) {
            if (key == k.key) {
                k.set(c.cfg, value);
                matched = true;
                break;
            }
        }
        if (!matched)
            fatal("fuzz repro: unknown key '", key, "'");
    }
    if (!sawAny)
        fatal("fuzz repro: no key/value pairs found");
    c.cfg.checkInvariants = true;
    return c;
}

SystemConfig
minimizeConfig(const SystemConfig &failing,
               const std::function<bool(const SystemConfig &)> &stillFails)
{
    const SystemConfig baseline = minimalFuzzBaseline();
    SystemConfig cur = failing;
    // Greedy fixpoint: resetting one knob can unlock another (e.g. a
    // smaller mesh makes more campCounts resettable), so sweep until a
    // full pass keeps everything.
    bool changed = true;
    while (changed) {
        changed = false;
        for (const Knob &k : knobTable()) {
            const std::string want = k.get(baseline);
            if (k.get(cur) == want)
                continue;
            SystemConfig candidate = cur;
            k.set(candidate, want);
            if (!fuzzConfigValid(candidate))
                continue;
            if (stillFails(candidate)) {
                cur = candidate;
                changed = true;
            }
        }
    }
    return cur;
}

} // namespace check
} // namespace abndp
