/**
 * @file
 * Violation collector of the machine invariant checkers (src/check).
 *
 * The check layer mirrors the obs:: conventions: it is observational
 * only — nothing it records may feed back into simulated timing or an
 * Rng stream — and it is zero-overhead when off (every hook site is
 * guarded by a null-pointer or enabled() test, and the simulator
 * constructs no checker unless SystemConfig::checkInvariants is set).
 *
 * Violations are *collected* rather than panicking at the failure
 * site: the perturbation tests (tests/test_check_invariants.cc) feed
 * deliberately inconsistent state through each checker and inspect the
 * recorded violations, which would be impossible with immediate
 * aborts. Production call sites end each checking pass with
 * raiseIfAny(), which panic()s with every collected message — an
 * invariant violation is by definition a simulator bug.
 */

#ifndef ABNDP_CHECK_CHECK_CONTEXT_HH
#define ABNDP_CHECK_CHECK_CONTEXT_HH

#include <string>
#include <vector>

#include "common/logging.hh"

namespace abndp
{
namespace check
{

/** Collects machine-invariant violations; see file comment. */
class CheckContext
{
  public:
    explicit CheckContext(bool enabled = true) : on(enabled) {}

    /** Are the invariant checkers armed? */
    bool enabled() const { return on; }

    void setEnabled(bool enabled) { on = enabled; }

    /**
     * In collect mode raiseIfAny() keeps violations instead of
     * panicking; the perturbation tests flip this on to inspect them.
     */
    void setCollect(bool collect) { collecting = collect; }

    /** Record one violation (concatenates its arguments gem5-style). */
    template <typename... Args>
    void
    fail(Args &&...args)
    {
        recorded.push_back(
            logging_detail::concat(std::forward<Args>(args)...));
    }

    /** Assert a condition, recording @p args as the violation if false. */
    template <typename... Args>
    void
    require(bool cond, Args &&...args)
    {
        if (!cond)
            fail(std::forward<Args>(args)...);
    }

    const std::vector<std::string> &violations() const { return recorded; }

    bool clean() const { return recorded.empty(); }

    void clearViolations() { recorded.clear(); }

    /**
     * panic() with every collected violation (simulator-bug semantics),
     * unless collect mode is on or nothing was recorded.
     */
    void
    raiseIfAny(const char *phase)
    {
        if (collecting || recorded.empty())
            return;
        std::string msg = logging_detail::concat(
            "machine invariant violation(s) at ", phase, ":");
        for (const std::string &v : recorded)
            msg += logging_detail::concat("\n  - ", v);
        panic(msg);
    }

  private:
    bool on;
    bool collecting = false;
    std::vector<std::string> recorded;
};

/**
 * Bandwidth-conservation predicate shared by every meter audit
 * (mesh links, crossbar ports, ring links, DRAM banks): a bucketed
 * meter may never admit more than capacity x window, i.e. no bucket's
 * fill may exceed the bucket width.
 */
template <typename TickT>
void
checkBucketFill(CheckContext &ctx, const char *what, std::size_t idx,
                TickT fill, TickT width)
{
    ctx.require(fill <= width, what, " meter ", idx,
                " overbooked: bucket fill ", fill, " exceeds width ",
                width, " (capacity x window violated)");
}

} // namespace check
} // namespace abndp

#endif // ABNDP_CHECK_CHECK_CONTEXT_HH
