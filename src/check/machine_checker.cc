#include "check/machine_checker.hh"

#include "core/metrics.hh"
#include "core/ndp_system.hh"

namespace abndp
{
namespace check
{

MachineChecker::MachineChecker(NdpSystem &sys)
    : sys(sys), base(sys.numUnits())
{
}

void
MachineChecker::onEpochStart(std::uint64_t epoch,
                             std::uint64_t stagedTasks)
{
    startStaged = stagedTasks;
    MemSystem &mem = sys.memSystem();
    for (UnitId u = 0; u < sys.numUnits(); ++u) {
        NdpUnit &unit = sys.unit(u);
        UnitBase &b = base[u];
        b.pbFills = unit.pb->fills();
        b.pbEvicts = unit.pb->evictions();
        ctx.require(unit.pb->size() == 0, "prefetch buffer of unit ", u,
                    " holds ", unit.pb->size(), " blocks entering epoch ",
                    epoch, " (missed timestamp invalidation)");
        if (mem.cachingEnabled()) {
            const TravellerCache &tc = mem.traveller(u);
            b.travInserts = tc.insertions();
            b.travEvicts = tc.evictions();
            ctx.require(tc.occupancy() == 0, "traveller cache of unit ",
                        u, " holds ", tc.occupancy(),
                        " blocks entering epoch ", epoch,
                        " (missed bulk invalidation)");
        }
        for (const CoreState &core : unit.cores)
            ctx.require(core.l1d->occupancy() == 0, "L1-D of unit ", u,
                        " holds ", core.l1d->occupancy(),
                        " blocks entering epoch ", epoch,
                        " (missed timestamp invalidation)");
    }
    ctx.raiseIfAny("epoch start");
}

void
MachineChecker::onEpochEnd(std::uint64_t epoch,
                           std::uint64_t executedDirect,
                           std::uint64_t executedRecovered,
                           std::uint64_t stagedTasks)
{
    MemSystem &mem = sys.memSystem();

    checkTaskConservation(ctx, epoch, startStaged,
                          executedDirect + executedRecovered);
    checkTaskConservationUnderFailure(ctx, epoch, startStaged,
                                      executedDirect, executedRecovered);

    std::uint64_t staged_sum = 0;
    std::uint64_t trav_hits = 0, trav_misses = 0, trav_inserts = 0;
    for (UnitId u = 0; u < sys.numUnits(); ++u) {
        NdpUnit &unit = sys.unit(u);
        const UnitBase &b = base[u];

        // Epoch drain: with zero live tasks there can be no queued or
        // running work anywhere (a task sitting in a queue, riding a
        // steal, or running on a core is live by definition).
        ctx.require(unit.pending.empty() && unit.ready.empty(),
                    "unit ", u, " still queues ", unit.pending.size(),
                    " pending + ", unit.ready.size(),
                    " ready tasks after epoch ", epoch, " drained");
        ctx.require(unit.busyCores() == 0, "unit ", u, " still has ",
                    unit.busyCores(), " busy cores after epoch ", epoch,
                    " drained");
        ctx.require(!unit.schedBusy, "unit ", u, " scheduler busy with "
                    "an empty pending queue after epoch ", epoch,
                    " drained");
        ctx.require(unit.prefetchedCount == 0, "unit ", u,
                    " prefetch window covers ", unit.prefetchedCount,
                    " tasks of an empty ready queue after epoch ",
                    epoch, " drained");
        staged_sum += unit.stagedPending.size() + unit.stagedReady.size();

        // Cache occupancy reconciles with the counter deltas since the
        // last bulk invalidation (snapshotted at epoch start).
        checkOccupancy(ctx, "prefetch buffer", u, unit.pb->size(),
                       unit.pb->fills() - b.pbFills,
                       unit.pb->evictions() - b.pbEvicts,
                       unit.pb->capacityBlocks());
        if (mem.cachingEnabled()) {
            const TravellerCache &tc = mem.traveller(u);
            checkOccupancy(ctx, "traveller cache", u, tc.occupancy(),
                           tc.insertions() - b.travInserts,
                           tc.evictions() - b.travEvicts,
                           tc.capacityBlocks());
            trav_hits += tc.hits();
            trav_misses += tc.misses();
            trav_inserts += tc.insertions();
        }
        for (const CoreState &core : unit.cores) {
            ctx.require(core.l1d->occupancy()
                            <= core.l1d->numSets()
                                * core.l1d->associativity(),
                        "L1-D of unit ", u, " over-full: ",
                        core.l1d->occupancy(), " blocks in ",
                        core.l1d->numSets() * core.l1d->associativity(),
                        " ways");
            ctx.require(core.tlb->occupancy()
                            <= core.tlb->numSets()
                                * core.tlb->associativity(),
                        "TLB of unit ", u, " over-full: ",
                        core.tlb->occupancy(), " entries in ",
                        core.tlb->numSets() * core.tlb->associativity(),
                        " ways");
        }
    }

    ctx.require(staged_sum == stagedTasks, "staged-task accounting: "
                "the staging queues hold ", staged_sum,
                " tasks but the epoch engine counted ", stagedTasks);

    if (mem.cachingEnabled()) {
        checkHitMissTotals(ctx, "traveller cache", trav_hits,
                           trav_misses, mem.campHits(),
                           mem.campMisses());
        // The per-unit insertion counters skip the raced re-insert of
        // an already-present block; the machine-level counter does not.
        ctx.require(trav_inserts <= mem.cacheInsertions(),
                    "traveller cache: per-unit insertions sum to ",
                    trav_inserts, " which exceeds the machine-level "
                    "count of ", mem.cacheInsertions());
    }

    checkHopAccounting(ctx, mem.network().totalInterHops(),
                       mem.network().expectedInterHops());

    const EnergyBreakdown &bd = sys.energyAccount().breakdown();
    checkEnergyAdditivity(ctx, bd);
    checkEnergyMonotone(ctx, prevEnergy, bd);
    ctx.require(bd.staticPj == 0.0, "static energy ", bd.staticPj,
                " pJ accrued mid-run (finalizeStatic must only run at "
                "the end of the run)");
    prevEnergy = bd;

    ctx.raiseIfAny("epoch end");
}

void
MachineChecker::onRunEnd(const RunMetrics &m)
{
    MemSystem &mem = sys.memSystem();

    std::uint64_t tasks_run = 0;
    for (UnitId u = 0; u < sys.numUnits(); ++u)
        tasks_run += sys.unit(u).tasksRun();
    ctx.require(tasks_run == m.tasks, "task accounting: per-core "
                "tasksRun counters sum to ", tasks_run,
                " but the run executed ", m.tasks, " tasks");

    checkHopAccounting(ctx, m.interHops,
                       mem.network().expectedInterHops());

    checkServingConservation(ctx, m.servingInjected, m.servingRejected,
                             m.servingCompletedDirect,
                             m.servingCompletedRecovered);

    checkMigrationConservation(ctx, m.blocksMigrated,
                               m.migrationInvalidations,
                               mem.cachingEnabled());

    // The reported breakdown is additive and identical to the live
    // account (RunMetrics copies, it must not recompute).
    checkEnergyAdditivity(ctx, m.energy);
    const EnergyBreakdown &bd = sys.energyAccount().breakdown();
    ctx.require(m.energy.coreSramPj == bd.coreSramPj
                    && m.energy.dramMemPj == bd.dramMemPj
                    && m.energy.dramCachePj == bd.dramCachePj
                    && m.energy.netPj == bd.netPj
                    && m.energy.staticPj == bd.staticPj,
                "reported energy breakdown (", m.energy.total(),
                " pJ) diverges from the live account (", bd.total(),
                " pJ)");

    // Bandwidth conservation: no meter bucket anywhere in the machine
    // may have admitted more than capacity x window.
    mem.network().auditBandwidth(ctx);
    for (UnitId u = 0; u < sys.numUnits(); ++u) {
        mem.dram(u).auditBandwidth(ctx);
        // Backend-specific timing invariants (the DDR backend checks
        // its tFAW ACT-window bound; the meter backend has none).
        mem.dram(u).auditTiming(ctx);
    }

    ctx.raiseIfAny("run end");
}

} // namespace check
} // namespace abndp
