/**
 * @file
 * Machine-level invariant checkers (the first leg of the correctness
 * harness; see docs/TESTING.md): conservation laws the simulated
 * machine must satisfy at every epoch boundary and at the end of a
 * run, asserted against the live NdpSystem state.
 *
 * The checker is armed by SystemConfig::checkInvariants and follows
 * the obs:: conventions: purely observational (it never feeds timing
 * or an Rng stream — GoldenMetrics stays bit-identical with checkers
 * on), and zero-overhead when off (NdpSystem constructs no checker
 * and every hook site is a null test).
 *
 * Each conservation law is factored into a static predicate taking
 * raw values, so the perturbation tests (tests/test_check_invariants.cc)
 * can feed deliberately inconsistent numbers and prove that every
 * checker actually fires; the epoch/run hooks merely gather the values
 * from the machine and delegate.
 */

#ifndef ABNDP_CHECK_MACHINE_CHECKER_HH
#define ABNDP_CHECK_MACHINE_CHECKER_HH

#include <cstdint>
#include <vector>

#include "check/check_context.hh"
#include "energy/energy.hh"

namespace abndp
{

class NdpSystem;
struct RunMetrics;

namespace check
{

/** Asserts machine conservation laws at epoch and run boundaries. */
class MachineChecker
{
  public:
    explicit MachineChecker(NdpSystem &sys);

    /** The violation collector (shared with the Network hop checks). */
    CheckContext &context() { return ctx; }

    /**
     * Epoch-boundary hook, called *before* startEpoch() dispatches any
     * task: snapshots per-unit counter bases and requires every
     * timestamp-invalidated structure to be empty.
     *
     * @param epoch the bulk-synchronous timestamp about to start
     * @param stagedTasks tasks staged for this epoch (they must all
     *                    complete exactly once by onEpochEnd)
     */
    void onEpochStart(std::uint64_t epoch, std::uint64_t stagedTasks);

    /**
     * Epoch-drain hook, called when activeRemaining hit zero (before
     * pending bookkeeping events are cancelled): task conservation,
     * queue drain, cache occupancy/hit-miss reconciliation, NoC hop
     * accounting, and energy monotonicity.
     *
     * @param executedDirect tasks executed on their assigned unit
     * @param executedRecovered tasks executed after the unit-failure
     *                          recovery protocol touched them (queue
     *                          drain or delivery-ack redispatch); zero
     *                          whenever no unit failure is configured
     * @param stagedTasks tasks staged for the next epoch so far
     */
    void onEpochEnd(std::uint64_t epoch, std::uint64_t executedDirect,
                    std::uint64_t executedRecovered,
                    std::uint64_t stagedTasks);

    /** Run-end hook: metrics reconciliation and bandwidth audits. */
    void onRunEnd(const RunMetrics &m);

    // ---- Primitive conservation predicates (perturbation-testable) ----

    /** Every task spawned for an epoch completes exactly once. */
    static void
    checkTaskConservation(CheckContext &ctx, std::uint64_t epoch,
                          std::uint64_t staged, std::uint64_t executed)
    {
        ctx.require(staged == executed, "task conservation: epoch ",
                    epoch, " staged ", staged, " tasks but executed ",
                    executed,
                    " (a task was lost or ran twice across "
                    "forward/steal)");
    }

    /**
     * Task conservation under unit failures: every staged task still
     * executes exactly once — either directly on its assigned unit or
     * after the recovery protocol re-injected it (queue drain or
     * delivery-ack redispatch) — and the two splits are disjoint.
     */
    static void
    checkTaskConservationUnderFailure(CheckContext &ctx,
                                      std::uint64_t epoch,
                                      std::uint64_t staged,
                                      std::uint64_t direct,
                                      std::uint64_t recovered)
    {
        ctx.require(staged == direct + recovered,
                    "task conservation under failure: epoch ", epoch,
                    " staged ", staged, " tasks but executed ", direct,
                    " directly + ", recovered, " recovered (a task was "
                    "lost, ran twice, or lost its recovery marker)");
    }

    /**
     * Serving-mode request conservation: every generated arrival is
     * accounted for exactly once — rejected by admission control,
     * completed directly, or completed after the recovery protocol
     * touched its task. Trivially holds (all zeros) in batch runs.
     */
    static void
    checkServingConservation(CheckContext &ctx, std::uint64_t injected,
                             std::uint64_t rejected,
                             std::uint64_t direct,
                             std::uint64_t recovered)
    {
        ctx.require(injected == rejected + direct + recovered,
                    "serving request conservation: ", injected,
                    " arrivals != ", rejected, " rejected + ", direct,
                    " completed direct + ", recovered,
                    " completed recovered (a request was lost, served "
                    "twice, or mis-classified)");
    }

    /**
     * Data re-homing conservation: with camp caching on, every block
     * migration runs exactly one stale-camp invalidation sweep;
     * without a camp cache there is nothing to invalidate and the
     * sweep count must stay zero. A missed sweep would leave a
     * Traveller entry serving reads for a block its home no longer
     * owns.
     */
    static void
    checkMigrationConservation(CheckContext &ctx, std::uint64_t migrated,
                               std::uint64_t invalidationSweeps,
                               bool cachingEnabled)
    {
        std::uint64_t want = cachingEnabled ? migrated : 0;
        ctx.require(invalidationSweeps == want,
                    "migration conservation: ", migrated,
                    " blocks re-homed but ", invalidationSweeps,
                    " stale-camp invalidation sweeps ran (expected ",
                    want, "; a missed sweep leaves a stale Traveller "
                    "entry serving a moved block)");
    }

    /**
     * A cache's occupancy equals insertions minus evictions since its
     * last bulk invalidation and never exceeds its capacity.
     */
    static void
    checkOccupancy(CheckContext &ctx, const char *what, std::uint32_t u,
                   std::uint64_t occupancy, std::uint64_t inserts,
                   std::uint64_t evicts, std::uint64_t capacity)
    {
        ctx.require(inserts >= evicts && occupancy == inserts - evicts,
                    what, " unit ", u, " occupancy ", occupancy,
                    " != insertions ", inserts, " - evictions ", evicts,
                    " since bulk invalidation");
        ctx.require(occupancy <= capacity, what, " unit ", u,
                    " occupancy ", occupancy, " exceeds capacity ",
                    capacity, " blocks");
    }

    /**
     * Per-unit hit/miss counters sum to the machine-level totals
     * (every probe is counted exactly once, at exactly one unit).
     */
    static void
    checkHitMissTotals(CheckContext &ctx, const char *what,
                       std::uint64_t unitHits, std::uint64_t unitMisses,
                       std::uint64_t totalHits, std::uint64_t totalMisses)
    {
        ctx.require(unitHits == totalHits, what,
                    ": per-unit hits sum to ", unitHits,
                    " but the machine counted ", totalHits);
        ctx.require(unitMisses == totalMisses, what,
                    ": per-unit misses sum to ", unitMisses,
                    " but the machine counted ", totalMisses);
    }

    /**
     * NoC hop accounting: the hops every packet actually walked must
     * sum to the topology (Manhattan) distances of their endpoints.
     */
    static void
    checkHopAccounting(CheckContext &ctx, std::uint64_t walked,
                       std::uint64_t expected)
    {
        ctx.require(walked == expected, "NoC hop accounting: packets "
                    "walked ", walked, " inter-stack hops but the "
                    "topology distances of their endpoints sum to ",
                    expected);
    }

    /** The energy total equals the sum of the per-component terms. */
    static void
    checkEnergyAdditivity(CheckContext &ctx, const EnergyBreakdown &bd)
    {
        double manual = bd.coreSramPj + bd.dramMemPj + bd.dramCachePj
            + bd.netPj + bd.staticPj;
        ctx.require(bd.total() == manual, "energy additivity: total() ",
                    bd.total(), " pJ != component sum ", manual, " pJ");
        ctx.require(bd.coreSramPj >= 0.0 && bd.dramMemPj >= 0.0
                        && bd.dramCachePj >= 0.0 && bd.netPj >= 0.0
                        && bd.staticPj >= 0.0,
                    "energy components must be non-negative (core ",
                    bd.coreSramPj, ", dramMem ", bd.dramMemPj,
                    ", dramCache ", bd.dramCachePj, ", net ", bd.netPj,
                    ", static ", bd.staticPj, ")");
    }

    /** Accumulated energy never decreases across epochs. */
    static void
    checkEnergyMonotone(CheckContext &ctx, const EnergyBreakdown &prev,
                        const EnergyBreakdown &cur)
    {
        ctx.require(cur.coreSramPj >= prev.coreSramPj
                        && cur.dramMemPj >= prev.dramMemPj
                        && cur.dramCachePj >= prev.dramCachePj
                        && cur.netPj >= prev.netPj,
                    "energy accumulation went backwards across an epoch "
                    "(", prev.total(), " pJ -> ", cur.total(), " pJ)");
    }

  private:
    /** Counter bases snapshot at epoch start (deltas reconcile). */
    struct UnitBase
    {
        std::uint64_t travInserts = 0;
        std::uint64_t travEvicts = 0;
        std::uint64_t pbFills = 0;
        std::uint64_t pbEvicts = 0;
    };

    NdpSystem &sys;
    CheckContext ctx;
    std::vector<UnitBase> base;
    std::uint64_t startStaged = 0;
    EnergyBreakdown prevEnergy;
};

} // namespace check
} // namespace abndp

#endif // ABNDP_CHECK_MACHINE_CHECKER_HH
