/**
 * @file
 * Slow, obviously-correct reference models of the optimized core data
 * structures (the second leg of the correctness harness; see
 * docs/TESTING.md). Each Ref* class re-implements the *contract* of
 * its production counterpart with the most transparent data layout
 * available — vectors of vectors instead of flat arrays, a std::map
 * instead of paged buckets, linear scans instead of open addressing,
 * eager clears instead of generation stamps — so that a divergence
 * under the seeded operation generators (tests/test_differential.cc)
 * indicts the optimization, not the oracle.
 *
 * Where the production structure consumes randomness (replacement
 * victims, insertion bypass), the reference draws from its own Rng
 * seeded identically and in the same order, so both sides see the same
 * stream and outputs must match bit-exactly.
 */

#ifndef ABNDP_CHECK_REF_MODELS_HH
#define ABNDP_CHECK_REF_MODELS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "sched/lb/data_hotness.hh"

namespace abndp
{
namespace check
{

/** Reference set-associative cache: vector-of-vectors, no mask trick. */
class RefSetAssocCache
{
  public:
    RefSetAssocCache(std::uint64_t numSets, std::uint32_t assoc,
                     ReplPolicy repl, std::uint64_t seed = Rng::defaultSeed,
                     bool hashedIndex = true)
        : assoc(assoc), repl(repl), hashed(hashedIndex), rng(seed),
          sets(numSets)
    {
        for (auto &set : sets)
            set.assign(assoc, Way{invalidAddr, 0});
    }

    bool
    access(Addr blockAddr)
    {
        Way *way = find(blockAddr);
        if (way) {
            if (repl == ReplPolicy::Lru)
                way->stamp = ++tick;
            ++nHits;
            return true;
        }
        ++nMisses;
        return false;
    }

    bool contains(Addr blockAddr) const
    {
        return const_cast<RefSetAssocCache *>(this)->find(blockAddr)
            != nullptr;
    }

    Addr
    insert(Addr blockAddr)
    {
        if (Way *way = find(blockAddr)) {
            if (repl == ReplPolicy::Lru)
                way->stamp = ++tick;
            return invalidAddr;
        }
        auto &set = sets[setIndex(blockAddr)];
        // Prefer an invalid way; otherwise ask the policy for a victim.
        std::uint32_t victim = assoc;
        for (std::uint32_t w = 0; w < assoc; ++w) {
            if (set[w].block == invalidAddr) {
                victim = w;
                break;
            }
        }
        if (victim == assoc) {
            if (repl == ReplPolicy::Random) {
                victim = static_cast<std::uint32_t>(rng.below(assoc));
            } else {
                victim = 0;
                for (std::uint32_t w = 1; w < assoc; ++w)
                    if (set[w].stamp < set[victim].stamp)
                        victim = w;
            }
        }
        Addr evicted = set[victim].block;
        if (evicted != invalidAddr)
            ++nEvicts;
        set[victim] = Way{blockAddr, ++tick};
        ++nInserts;
        return evicted;
    }

    bool
    invalidate(Addr blockAddr)
    {
        if (Way *way = find(blockAddr)) {
            way->block = invalidAddr;
            return true;
        }
        return false;
    }

    void
    invalidateAll()
    {
        for (auto &set : sets)
            for (Way &way : set)
                way.block = invalidAddr;
    }

    std::uint64_t hits() const { return nHits; }
    std::uint64_t misses() const { return nMisses; }
    std::uint64_t insertions() const { return nInserts; }
    std::uint64_t evictions() const { return nEvicts; }

    std::uint64_t
    occupancy() const
    {
        std::uint64_t n = 0;
        for (const auto &set : sets)
            for (const Way &way : set)
                n += way.block != invalidAddr ? 1 : 0;
        return n;
    }

  private:
    struct Way
    {
        Addr block;
        std::uint64_t stamp;
    };

    std::size_t
    setIndex(Addr blockAddr) const
    {
        std::uint64_t block = blockNumber(blockAddr);
        std::uint64_t h = hashed ? mix64(block) : block;
        return static_cast<std::size_t>(h % sets.size());
    }

    Way *
    find(Addr blockAddr)
    {
        for (Way &way : sets[setIndex(blockAddr)])
            if (way.block == blockAddr)
                return &way;
        return nullptr;
    }

    std::uint32_t assoc;
    ReplPolicy repl;
    bool hashed;
    Rng rng;
    std::uint64_t tick = 0;
    std::vector<std::vector<Way>> sets;
    std::uint64_t nHits = 0;
    std::uint64_t nMisses = 0;
    std::uint64_t nInserts = 0;
    std::uint64_t nEvicts = 0;
};

/**
 * Reference Traveller Cache: eager bulk invalidation (clear every set)
 * instead of generation stamps; same probabilistic-insertion contract
 * and Rng stream as the production cache (bypass draw first, victim
 * draw only on a full set under Random replacement).
 */
class RefTravellerCache
{
  public:
    /** @param seed the *raw* system seed, mixed exactly like the real
     *  cache so both sides share one stream. */
    RefTravellerCache(std::uint64_t nSets, std::uint32_t assoc,
                      ReplPolicy repl, double bypassProb,
                      std::uint64_t seed)
        : assoc(assoc), repl(repl), bypassProb(bypassProb),
          rng(mix64(seed ^ 0x7261764c6c657243ULL)), sets(nSets)
    {
    }

    bool
    lookup(Addr blockAddr)
    {
        for (Way &way : sets[setOf(blockAddr)]) {
            if (way.block == blockAddr) {
                if (repl == ReplPolicy::Lru)
                    way.stamp = ++tick;
                ++nHits;
                return true;
            }
        }
        ++nMisses;
        return false;
    }

    bool
    contains(Addr blockAddr) const
    {
        for (const Way &way : sets[setOf(blockAddr)])
            if (way.block == blockAddr)
                return true;
        return false;
    }

    bool
    maybeInsert(Addr blockAddr)
    {
        if (rng.chance(bypassProb)) {
            ++nBypasses;
            return false;
        }
        auto &set = sets[setOf(blockAddr)];
        for (Way &way : set) {
            if (way.block == blockAddr) {
                if (repl == ReplPolicy::Lru)
                    way.stamp = ++tick;
                return true; // raced insert of an already-present block
            }
        }
        if (set.size() < assoc) {
            set.push_back(Way{blockAddr, ++tick});
        } else {
            std::uint32_t victim = 0;
            if (repl == ReplPolicy::Random) {
                victim = static_cast<std::uint32_t>(rng.below(assoc));
            } else {
                for (std::uint32_t w = 1; w < assoc; ++w)
                    if (set[w].stamp < set[victim].stamp)
                        victim = w;
            }
            set[victim] = Way{blockAddr, ++tick};
            ++nEvicts;
        }
        ++nInserts;
        return true;
    }

    void
    bulkInvalidate()
    {
        for (auto &set : sets)
            set.clear();
    }

    std::uint64_t hits() const { return nHits; }
    std::uint64_t misses() const { return nMisses; }
    std::uint64_t insertions() const { return nInserts; }
    std::uint64_t evictions() const { return nEvicts; }
    std::uint64_t bypasses() const { return nBypasses; }

    std::uint64_t
    occupancy() const
    {
        std::uint64_t n = 0;
        for (const auto &set : sets)
            n += set.size();
        return n;
    }

  private:
    struct Way
    {
        Addr block;
        std::uint64_t stamp;
    };

    /** Low-bit index, like the real Traveller (DESIGN.md). */
    std::size_t
    setOf(Addr blockAddr) const
    {
        return static_cast<std::size_t>(blockNumber(blockAddr)
                                        % sets.size());
    }

    std::uint32_t assoc;
    ReplPolicy repl;
    double bypassProb;
    Rng rng;
    std::uint64_t tick = 0;
    std::vector<std::vector<Way>> sets;
    std::uint64_t nHits = 0;
    std::uint64_t nMisses = 0;
    std::uint64_t nInserts = 0;
    std::uint64_t nEvicts = 0;
    std::uint64_t nBypasses = 0;
};

/**
 * Reference bandwidth meter: one std::map entry per touched bucket
 * instead of paged flat storage with a last-page cache.
 */
class RefBandwidthMeter
{
  public:
    explicit RefBandwidthMeter(Tick bucketTicks = 256 * ticksPerNs)
        : width(bucketTicks)
    {
        abndp_assert(width > 0);
    }

    Tick
    reserve(Tick t, Tick service)
    {
        if (service == 0)
            return t;
        std::uint64_t b = t / width;
        while (fill[b] >= width)
            ++b;
        Tick begin = b * width + fill[b];
        if (begin < t)
            begin = t;
        Tick remaining = service;
        while (remaining > 0) {
            Tick free = width - fill[b];
            Tick take = remaining < free ? remaining : free;
            fill[b] += take;
            remaining -= take;
            ++b;
        }
        return begin;
    }

    void reset() { fill.clear(); }

    std::size_t
    bucketsInUse() const
    {
        std::size_t n = 0;
        for (const auto &[b, f] : fill)
            n += f > 0 ? 1 : 0;
        return n;
    }

    Tick bucketWidth() const { return width; }

    Tick
    maxBucketFill() const
    {
        Tick mx = 0;
        for (const auto &[b, f] : fill)
            mx = f > mx ? f : mx;
        return mx;
    }

  private:
    Tick width;
    std::map<std::uint64_t, Tick> fill;
};

/**
 * Reference DDR backend: re-implements DdrBackend's bank-state timing
 * (src/mem/ddr_backend.hh) with the most transparent machinery
 * available — plain %/ / address decode instead of Pow2Split,
 * RefBandwidthMeter (std::map buckets) for both the per-bank meters
 * and the channel ACT-window meter, and straight-line state updates.
 * Fault injection is out of scope (drive the production side with
 * faults == nullptr); everything else — refresh catch-up, page
 * policies, tRAS/tWR recovery with the out-of-order cap, and the
 * quarter-window tFAW accounting — must match latency-for-latency.
 */
class RefDdrBackend
{
  public:
    explicit RefDdrBackend(const SystemConfig &cfg)
        : dram(cfg.dram), bytesPerUnit(cfg.memBytesPerUnit),
          tCas(static_cast<Tick>(dram.tCasNs * ticksPerNs)),
          tRcd(static_cast<Tick>(dram.tRcdNs * ticksPerNs)),
          tRp(static_cast<Tick>(dram.tRpNs * ticksPerNs)),
          tRas(static_cast<Tick>(dram.tRasNs * ticksPerNs)),
          tWr(static_cast<Tick>(dram.tWrNs * ticksPerNs)),
          tRefi(static_cast<Tick>(dram.tRefiNs * ticksPerNs)),
          tRfc(static_cast<Tick>(dram.tRfcNs * ticksPerNs)),
          ticksPerByte(8.0 * 1000.0
                       / (dram.busBits * 2.0 * dram.busGHz)),
          actQuarter(
              (static_cast<Tick>(dram.tFawNs * ticksPerNs) + 3) / 4),
          actMeter(std::max<Tick>(4 * actQuarter, 1)),
          banks(dram.banks)
    {
        for (std::size_t b = 0; b < banks.size(); ++b)
            banks[b].nextRefresh = tRefi * (b + 1) / banks.size();
    }

    Tick
    access(Addr addr, std::uint32_t bytes, bool isWrite, Tick start)
    {
        auto [row, bankIdx] = decode(addr);
        Bank &bank = banks[bankIdx];

        if (dram.refreshEnabled && bank.nextRefresh <= start) {
            std::uint32_t catchup = 0;
            while (bank.nextRefresh <= start
                   && catchup < dram.refreshCatchupMax) {
                bank.meter.reserve(bank.nextRefresh, tRfc);
                bank.nextRefresh += tRefi;
                ++nRefreshes;
                ++catchup;
            }
            if (bank.nextRefresh <= start)
                bank.nextRefresh = start + tRefi;
            bank.rowOpen = false;
            bank.openRow = ~0ull;
        }

        Tick core;
        Tick extra = 0;
        std::uint32_t keepScore;
        bool row_miss = !(bank.rowOpen && bank.openRow == row);
        if (row_miss) {
            ++nRowMisses;
            Tick pre;
            Tick recovery;
            keepScore = bank.openScore; // pre-miss score decides
            if (bank.rowOpen) {
                pre = tRp;
                Tick r1 = bank.lastActAt + tRas;
                Tick r2 = bank.writeEnd + tWr;
                recovery = std::max(r1 > start ? r1 - start : 0,
                                    r2 > start ? r2 - start : 0);
                if (bank.openScore > 0)
                    --bank.openScore;
            } else {
                pre = 0;
                recovery = bank.bankReadyAt > start
                    ? bank.bankReadyAt - start : 0;
                if (row == bank.lastClosedRow) {
                    if (bank.openScore < 3)
                        ++bank.openScore; // wasted close: credit
                } else if (bank.openScore > 0) {
                    --bank.openScore;
                }
            }
            recovery = std::min(recovery, tRas + tWr + tRp);

            Tick actReady = start + recovery + pre;
            Tick actAt = actReady;
            if (actQuarter > 0)
                actAt = actMeter.reserve(actReady, actQuarter);
            if (actAt > actReady)
                ++nActStalls;
            extra = recovery + (actAt - actReady);
            bank.lastActAt = std::max(bank.lastActAt, actAt);
            bank.openRow = row;
            bank.rowOpen = true;
            core = pre + tRcd + tCas;
        } else {
            core = tCas;
            if (bank.openScore < 3)
                ++bank.openScore; // post-hit score decides
            keepScore = bank.openScore;
        }

        auto burst = static_cast<Tick>(ticksPerByte * bytes);
        Tick begin = bank.meter.reserve(start, core + burst);
        Tick queue = begin - start;
        Tick end = begin + core + burst + extra;

        if (isWrite) {
            ++nWrites;
            bank.writeEnd = std::max(bank.writeEnd, end);
        } else {
            ++nReads;
        }

        bool leave_open = dram.pagePolicy == PagePolicy::Open
            || (dram.pagePolicy == PagePolicy::Adaptive
                && keepScore >= 2);
        if (!leave_open) {
            bank.lastClosedRow = bank.openRow;
            bank.rowOpen = false;
            bank.openRow = ~0ull;
            bank.bankReadyAt = std::max(
                bank.bankReadyAt, end + (isWrite ? tWr : 0) + tRp);
        }
        return queue + core + burst + extra;
    }

    std::uint64_t reads() const { return nReads; }
    std::uint64_t writes() const { return nWrites; }
    std::uint64_t rowMisses() const { return nRowMisses; }
    std::uint64_t refreshes() const { return nRefreshes; }
    std::uint64_t actStalls() const { return nActStalls; }

    std::uint64_t
    rowHits() const
    {
        return nReads + nWrites - nRowMisses;
    }

    /** Largest ACT-window bucket fill (tFAW audit cross-check). */
    Tick actWindowPeak() const { return actMeter.maxBucketFill(); }
    Tick actWindowWidth() const { return actMeter.bucketWidth(); }

  private:
    struct Bank
    {
        RefBandwidthMeter meter;
        std::uint64_t openRow = ~0ull;
        bool rowOpen = false;
        Tick nextRefresh = 0;
        Tick lastActAt = 0;
        Tick writeEnd = 0;
        Tick bankReadyAt = 0;
        std::uint32_t openScore = 2;
        std::uint64_t lastClosedRow = ~0ull;
    };

    /** Naive {row, bank} decode; mirrors DramAddrMap::decode. */
    std::pair<std::uint64_t, std::uint32_t>
    decode(Addr addr) const
    {
        std::uint64_t row;
        std::uint64_t bank;
        switch (dram.addrMap) {
          case DramAddrMapKind::RowColumnBank: {
            std::uint64_t x = addr / dram.burstBytes;
            bank = x % dram.banks;
            row = (x / dram.banks)
                / (dram.rowBytes / dram.burstBytes);
            break;
          }
          case DramAddrMapKind::BankRowColumn: {
            std::uint64_t off = addr % bytesPerUnit;
            std::uint64_t slice = bytesPerUnit / dram.banks;
            bank = off / slice;
            row = (off % slice) / dram.rowBytes;
            break;
          }
          case DramAddrMapKind::RowBankColumn:
          default: {
            std::uint64_t x = addr / dram.rowBytes;
            bank = x % dram.banks;
            row = x / dram.banks;
            break;
          }
        }
        return {row, static_cast<std::uint32_t>(bank)};
    }

    DramConfig dram;
    std::uint64_t bytesPerUnit;
    Tick tCas;
    Tick tRcd;
    Tick tRp;
    Tick tRas;
    Tick tWr;
    Tick tRefi;
    Tick tRfc;
    double ticksPerByte;
    Tick actQuarter;
    RefBandwidthMeter actMeter;
    std::vector<Bank> banks;
    std::uint64_t nReads = 0;
    std::uint64_t nWrites = 0;
    std::uint64_t nRowMisses = 0;
    std::uint64_t nRefreshes = 0;
    std::uint64_t nActStalls = 0;
};

/**
 * Reference prefetch buffer: a plain deque scanned linearly instead of
 * a ring plus an open-addressed index with backward-shift deletion.
 */
class RefPrefetchBuffer
{
  public:
    explicit RefPrefetchBuffer(std::uint64_t capacityBlocks)
        : capacity(capacityBlocks)
    {
        abndp_assert(capacity > 0);
    }

    void
    fill(Addr blockAddr, Tick readyTick)
    {
        for (Entry &e : fifo) {
            if (e.block == blockAddr) {
                if (readyTick < e.ready)
                    e.ready = readyTick;
                return;
            }
        }
        if (fifo.size() == capacity) {
            fifo.pop_front();
            ++nEvicts;
        }
        fifo.push_back(Entry{blockAddr, readyTick});
        ++nFills;
    }

    bool
    peek(Addr blockAddr) const
    {
        for (const Entry &e : fifo)
            if (e.block == blockAddr)
                return true;
        return false;
    }

    Tick
    lookup(Addr blockAddr, Tick now)
    {
        for (const Entry &e : fifo) {
            if (e.block == blockAddr) {
                if (e.ready <= now)
                    ++nHits;
                else
                    ++nLateHits;
                return e.ready;
            }
        }
        ++nMisses;
        return tickNever;
    }

    void invalidateAll() { fifo.clear(); }

    std::uint64_t hits() const { return nHits; }
    std::uint64_t lateHits() const { return nLateHits; }
    std::uint64_t misses() const { return nMisses; }
    std::uint64_t fills() const { return nFills; }
    std::uint64_t evictions() const { return nEvicts; }
    std::size_t size() const { return fifo.size(); }

  private:
    struct Entry
    {
        Addr block;
        Tick ready;
    };

    std::uint64_t capacity;
    std::deque<Entry> fifo;
    std::uint64_t nHits = 0;
    std::uint64_t nLateHits = 0;
    std::uint64_t nMisses = 0;
    std::uint64_t nFills = 0;
    std::uint64_t nEvicts = 0;
};

/**
 * Reference event queue: an unsorted vector searched for the earliest
 * (tick, seq) pair at every step, with std::function callbacks — no
 * binary heap, no inline-slot arena. Mirrors the EventQueue contract:
 * ties broken by insertion order, no scheduling into the past,
 * clearPending() drops events but keeps the clock.
 */
class RefEventQueue
{
  public:
    Tick now() const { return curTick; }
    std::size_t size() const { return events.size(); }
    bool empty() const { return events.empty(); }
    std::uint64_t executed() const { return numExecuted; }

    void
    schedule(Tick when, std::function<void()> cb)
    {
        abndp_assert(when >= curTick, "scheduling into the past: ", when,
                     " < ", curTick);
        events.push_back(Event{when, nextSeq++, std::move(cb)});
    }

    void
    scheduleIn(Tick delta, std::function<void()> cb)
    {
        schedule(curTick + delta, std::move(cb));
    }

    bool
    runOne()
    {
        if (events.empty())
            return false;
        std::size_t best = 0;
        for (std::size_t i = 1; i < events.size(); ++i) {
            if (events[i].when < events[best].when
                || (events[i].when == events[best].when
                    && events[i].seq < events[best].seq))
                best = i;
        }
        Event ev = std::move(events[best]);
        events.erase(events.begin()
                     + static_cast<std::ptrdiff_t>(best));
        curTick = ev.when;
        ++numExecuted;
        ev.cb();
        return true;
    }

    void
    runUntil(Tick limit)
    {
        while (!events.empty()) {
            std::size_t best = 0;
            for (std::size_t i = 1; i < events.size(); ++i)
                if (events[i].when < events[best].when
                    || (events[i].when == events[best].when
                        && events[i].seq < events[best].seq))
                    best = i;
            if (events[best].when > limit)
                break;
            runOne();
        }
        if (curTick < limit)
            curTick = limit;
    }

    void clearPending() { events.clear(); }

    void
    reset()
    {
        events.clear();
        curTick = 0;
        nextSeq = 0;
        numExecuted = 0;
    }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        std::function<void()> cb;
    };

    std::vector<Event> events;
    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t numExecuted = 0;
};

/**
 * Reference latency accumulator: quantiles from a full std::sort over
 * the stored samples instead of nth_element on a scratch copy. Same
 * nearest-rank contract as serve::LatencyRecorder — sorted[ceil(q*n)]
 * (1-based) — so percentiles must match bit-exactly over any stream.
 */
class RefLatencyRecorder
{
  public:
    explicit RefLatencyRecorder(Tick sloTicks = 0) : slo(sloTicks) {}

    void
    record(Tick latency)
    {
        lat.push_back(latency);
        sum += latency;
        if (slo > 0 && latency > slo)
            ++nSloMisses;
    }

    std::uint64_t samples() const { return lat.size(); }
    std::uint64_t sloMisses() const { return nSloMisses; }

    double
    meanTicks() const
    {
        return lat.empty() ? 0.0
            : static_cast<double>(sum) / static_cast<double>(lat.size());
    }

    Tick
    percentile(double q) const
    {
        abndp_assert(q > 0.0 && q <= 1.0);
        if (lat.empty())
            return 0;
        std::vector<Tick> sorted = lat;
        std::sort(sorted.begin(), sorted.end());
        auto rank = static_cast<std::uint64_t>(
            std::ceil(q * static_cast<double>(sorted.size())));
        rank = std::max<std::uint64_t>(
            1, std::min<std::uint64_t>(rank, sorted.size()));
        return sorted[rank - 1];
    }

  private:
    std::vector<Tick> lat;
    Tick slo;
    std::uint64_t nSloMisses = 0;
    std::uint64_t sum = 0;
};

/**
 * Reference Zipfian sampler: the same sequentially-accumulated CDF
 * table as serve::ZipfianSampler (bit-identical construction order),
 * inverted by a linear scan instead of binary search. Identical
 * uniform draws must yield identical keys, bit for bit.
 */
class RefZipfSampler
{
  public:
    RefZipfSampler(std::uint64_t n, double s)
    {
        abndp_assert(n > 0);
        cdf.resize(n);
        double total = 0.0;
        for (std::uint64_t k = 0; k < n; ++k) {
            total += std::pow(static_cast<double>(k + 1), -s);
            cdf[k] = total;
        }
        for (std::uint64_t k = 0; k < n; ++k)
            cdf[k] /= total;
        cdf[n - 1] = 1.0;
    }

    std::uint64_t
    keyFor(double u) const
    {
        // Linear scan with the same predicate upper_bound uses: the
        // first key whose cumulative probability exceeds u.
        for (std::uint64_t k = 0; k < cdf.size(); ++k)
            if (cdf[k] > u)
                return k;
        return cdf.size() - 1;
    }

    std::uint64_t operator()(Rng &rng) const { return keyFor(rng.uniform()); }

    double
    probabilityOf(std::uint64_t k) const
    {
        abndp_assert(k < cdf.size());
        return k == 0 ? cdf[0] : cdf[k] - cdf[k - 1];
    }

  private:
    std::vector<double> cdf;
};

/**
 * Reference hot-block tracker: one std::map of live entries per home
 * unit instead of DataHotness's flat slot banks. Exploits the bank
 * invariant that zero-count slots never carry a block, so "live
 * entries, at most K per home" is the whole state; lossy-counting
 * charges the minimum by an explicit full scan with the same
 * (count, block) tie-break, and topK() sorts a copy with std::sort
 * instead of insertion into a running vector.
 */
class RefDataHotness
{
  public:
    RefDataHotness(std::uint32_t num_units, std::uint32_t k,
                   std::uint32_t decay_shift)
        : k(k), decayShift(decay_shift), banks(num_units)
    {
        abndp_assert(k > 0);
    }

    void
    record(UnitId home, Addr block, UnitId requester)
    {
        auto &bank = banks[home];
        auto it = bank.find(block);
        if (it != bank.end()) {
            ++it->second.cnt;
            vote(it->second, requester);
            return;
        }
        if (bank.size() < k) {
            bank.emplace(block, Entry{1, requester, 1});
            return;
        }
        // Lossy counting: charge the miss to the (count, block)-minimal
        // live entry; its slot turns over once it drains to zero.
        auto min_it = bank.begin();
        for (auto e = std::next(bank.begin()); e != bank.end(); ++e) {
            if (e->second.cnt < min_it->second.cnt
                || (e->second.cnt == min_it->second.cnt
                    && e->first < min_it->first))
                min_it = e;
        }
        if (--min_it->second.cnt == 0) {
            bank.erase(min_it);
            bank.emplace(block, Entry{1, requester, 1});
        }
    }

    void
    decayAll()
    {
        for (auto &bank : banks) {
            for (auto it = bank.begin(); it != bank.end();) {
                it->second.cnt >>= decayShift;
                it = it->second.cnt == 0 ? bank.erase(it)
                                         : std::next(it);
            }
        }
    }

    std::vector<HotEntry>
    topK(UnitId home) const
    {
        std::vector<HotEntry> out;
        for (const auto &[block, e] : banks[home])
            out.push_back(HotEntry{block, e.cnt, e.reqId, e.reqCnt});
        std::sort(out.begin(), out.end(),
                  [](const HotEntry &a, const HotEntry &b) {
                      return a.cnt != b.cnt ? a.cnt > b.cnt
                                            : a.block < b.block;
                  });
        return out;
    }

    std::uint64_t
    totalCount(UnitId home) const
    {
        std::uint64_t sum = 0;
        for (const auto &[block, e] : banks[home])
            sum += e.cnt;
        return sum;
    }

    void erase(UnitId home, Addr block) { banks[home].erase(block); }

  private:
    struct Entry
    {
        std::uint64_t cnt;
        UnitId reqId;
        std::uint64_t reqCnt;
    };

    static void
    vote(Entry &e, UnitId requester)
    {
        if (e.reqCnt == 0) {
            e.reqId = requester;
            e.reqCnt = 1;
        } else if (e.reqId == requester) {
            ++e.reqCnt;
        } else {
            --e.reqCnt;
        }
    }

    std::uint32_t k;
    std::uint32_t decayShift;
    std::vector<std::map<Addr, Entry>> banks;
};

/**
 * Reference re-homing overlay: an ordered std::map instead of the
 * production unordered_map — same point-query contract, so every
 * resolve()/set()/entries() answer must match exactly.
 */
class RefHomeIndirection
{
  public:
    bool active() const { return !map.empty(); }

    UnitId
    resolve(Addr block, UnitId base_home) const
    {
        auto it = map.find(block);
        return it == map.end() ? base_home : it->second;
    }

    void
    set(Addr block, UnitId home, UnitId base_home)
    {
        if (home == base_home)
            map.erase(block);
        else
            map[block] = home;
    }

    std::size_t entries() const { return map.size(); }

    void clear() { map.clear(); }

  private:
    std::map<Addr, UnitId> map;
};

} // namespace check
} // namespace abndp

#endif // ABNDP_CHECK_REF_MODELS_HH
