#include "serve/arrival.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace abndp
{
namespace serve
{

namespace
{

constexpr double ticksPerUs = 1000.0 * ticksPerNs;

/** Two distinct streams inside the serving seed domain. */
std::uint64_t
servingSeed(std::uint64_t systemSeed, std::uint64_t stream)
{
    return mix64(systemSeed ^ arrivalSeedSalt ^ (stream * 0x9e37ULL));
}

} // namespace

ArrivalProcess::ArrivalProcess(const ServingConfig &cfg_,
                               std::uint64_t systemSeed)
    : cfg(cfg_),
      meanPerTick(cfg_.ratePerUs / ticksPerUs),
      gaps(servingSeed(systemSeed, 1)),
      keys(servingSeed(systemSeed, 2))
{
    switch (cfg.profile) {
      case RateProfile::Constant:
        peakPerTick = meanPerTick;
        break;
      case RateProfile::Bursty:
        peakPerTick = meanPerTick * cfg.burstFactor;
        break;
      case RateProfile::Diurnal:
        peakPerTick = meanPerTick * (1.0 + cfg.diurnalDepth);
        break;
      default:
        panic("unknown rate profile");
    }
}

double
ArrivalProcess::rateAt(Tick t) const
{
    switch (cfg.profile) {
      case RateProfile::Constant:
        return meanPerTick;
      case RateProfile::Bursty: {
        // Square wave preserving the configured mean: the first
        // burstFraction of every period runs at burstFactor x, the
        // remainder at the (validated-positive) complement rate.
        double period = cfg.burstPeriodUs * ticksPerUs;
        double phase = std::fmod(static_cast<double>(t), period) / period;
        if (phase < cfg.burstFraction)
            return meanPerTick * cfg.burstFactor;
        return meanPerTick
            * (1.0 - cfg.burstFactor * cfg.burstFraction)
            / (1.0 - cfg.burstFraction);
      }
      case RateProfile::Diurnal: {
        double period = cfg.diurnalPeriodUs * ticksPerUs;
        double angle = 2.0 * M_PI * static_cast<double>(t) / period;
        return meanPerTick * (1.0 + cfg.diurnalDepth * std::sin(angle));
      }
    }
    panic("unknown rate profile");
}

Tick
ArrivalProcess::nextArrival(Tick now)
{
    // Lewis-Shedler thinning at the peak rate; for the constant
    // profile every candidate is accepted (rate == peak), so this is
    // plain exponential-gap sampling.
    Tick t = now;
    for (;;) {
        double u = gaps.uniform();
        double gap = -std::log1p(-u) / peakPerTick;
        // Every arrival advances time: quantization to ticks must not
        // produce two arrivals on one tick in zero-gap corner cases.
        t += std::max<Tick>(1, static_cast<Tick>(gap));
        if (gaps.uniform() * peakPerTick <= rateAt(t))
            return t;
    }
}

} // namespace serve
} // namespace abndp
