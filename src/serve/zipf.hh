/**
 * @file
 * Exact inverse-CDF Zipfian key sampler for the serving driver.
 *
 * Unlike the closed-form approximations common in YCSB-style load
 * generators, this sampler precomputes the full cumulative
 * distribution over the key space once (sequential accumulation, so
 * the table is bit-identical on every host) and inverts one uniform
 * draw by binary search. The contract is exactly reproducible by a
 * linear scan over the same table, which is what the differential
 * test (tests/test_differential.cc, check::RefZipfSampler) exploits:
 * identical uniform draws must yield identical keys, bit for bit.
 *
 * s = 0 degenerates to a uniform sampler; larger s concentrates mass
 * on low-numbered keys (P(k) proportional to 1 / (k+1)^s).
 */

#ifndef ABNDP_SERVE_ZIPF_HH
#define ABNDP_SERVE_ZIPF_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace abndp
{
namespace serve
{

/** Seeded Zipfian sampler over keys [0, n) with exponent s. */
class ZipfianSampler
{
  public:
    /** Precompute the CDF table for @p n keys and exponent @p s. */
    ZipfianSampler(std::uint64_t n, double s);

    /** Draw one key using exactly one uniform draw from @p rng. */
    std::uint64_t operator()(Rng &rng) const;

    /** Invert one uniform value in [0, 1) (shared with the tests). */
    std::uint64_t keyFor(double u) const;

    /** Exact probability of key @p k (empirical-frequency tests). */
    double probabilityOf(std::uint64_t k) const;

    std::uint64_t numKeys() const { return cdf.size(); }

  private:
    /** cdf[k] = P(key <= k); cdf.back() == 1.0 by construction. */
    std::vector<double> cdf;
};

} // namespace serve
} // namespace abndp

#endif // ABNDP_SERVE_ZIPF_HH
