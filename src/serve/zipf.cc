#include "serve/zipf.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace abndp
{
namespace serve
{

ZipfianSampler::ZipfianSampler(std::uint64_t n, double s)
{
    abndp_assert(n > 0, "Zipfian sampler needs a nonempty key space");
    abndp_assert(s >= 0.0, "Zipfian exponent must be non-negative");
    cdf.resize(n);
    // Sequential accumulation in a fixed order keeps the table (and
    // therefore every sampled key) bit-identical across hosts; the
    // reference sampler rebuilds it the same way.
    double total = 0.0;
    for (std::uint64_t k = 0; k < n; ++k) {
        total += std::pow(static_cast<double>(k + 1), -s);
        cdf[k] = total;
    }
    for (std::uint64_t k = 0; k < n; ++k)
        cdf[k] /= total;
    // Guard against rounding leaving the last bucket unreachable.
    cdf[n - 1] = 1.0;
}

std::uint64_t
ZipfianSampler::keyFor(double u) const
{
    // First key whose cumulative probability exceeds u — the same
    // predicate a linear scan uses, so both agree on every draw.
    auto it = std::upper_bound(cdf.begin(), cdf.end(), u);
    if (it == cdf.end())
        --it;
    return static_cast<std::uint64_t>(it - cdf.begin());
}

std::uint64_t
ZipfianSampler::operator()(Rng &rng) const
{
    return keyFor(rng.uniform());
}

double
ZipfianSampler::probabilityOf(std::uint64_t k) const
{
    abndp_assert(k < cdf.size());
    return k == 0 ? cdf[0] : cdf[k] - cdf[k - 1];
}

} // namespace serve
} // namespace abndp
