/**
 * @file
 * Deterministic open-loop arrival process for the serving driver.
 *
 * Inter-arrival gaps are exponential (Poisson stream) at a
 * time-varying rate given by the configured profile. Non-constant
 * profiles use Lewis-Shedler thinning: candidate gaps are drawn at the
 * profile's peak rate and accepted with probability rate(t)/peak, so
 * the accepted stream follows the instantaneous rate exactly while
 * staying a pure function of the seeded Rng stream.
 *
 * The process owns its Rng, constructed from its own seed domain
 * (mix64 of the system seed and a serving-only salt): a batch run
 * never draws from it, and a serving run never touches the batch
 * streams, so enabling serving cannot perturb batch-mode goldens.
 */

#ifndef ABNDP_SERVE_ARRIVAL_HH
#define ABNDP_SERVE_ARRIVAL_HH

#include <cstdint>

#include "common/rng.hh"
#include "common/types.hh"
#include "serve/serving_config.hh"

namespace abndp
{
namespace serve
{

/** Seed-domain salt of the arrival/key stream (see file comment). */
constexpr std::uint64_t arrivalSeedSalt = 0x5e21a11f00d5eedULL;

/** Open-loop arrival-time generator (one instance per serving run). */
class ArrivalProcess
{
  public:
    /** @p systemSeed is SystemConfig::seed; the salt is mixed in. */
    ArrivalProcess(const ServingConfig &cfg, std::uint64_t systemSeed);

    /** Absolute tick of the next arrival strictly after @p now. */
    Tick nextArrival(Tick now);

    /** Instantaneous rate in requests per tick (tests/profiles). */
    double rateAt(Tick t) const;

    /**
     * The request-key/tenant Rng stream, sharing the serving seed
     * domain (distinct from the arrival-time draws only by use
     * order; both live outside every batch stream).
     */
    Rng &keyRng() { return keys; }

  private:
    const ServingConfig cfg;
    /** Peak instantaneous rate of the profile, requests per tick. */
    double peakPerTick;
    /** Mean rate in requests per tick. */
    double meanPerTick;
    Rng gaps;
    Rng keys;
};

} // namespace serve
} // namespace abndp

#endif // ABNDP_SERVE_ARRIVAL_HH
