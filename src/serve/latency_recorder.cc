#include "serve/latency_recorder.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace abndp
{
namespace serve
{

Tick
LatencyRecorder::percentile(double q) const
{
    abndp_assert(q > 0.0 && q <= 1.0, "percentile rank out of (0, 1]: ",
                 q);
    if (lat.empty())
        return 0;
    // Nearest-rank definition: rank ceil(q * n), 1-based.
    auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(lat.size())));
    rank = std::max<std::uint64_t>(1, std::min<std::uint64_t>(
        rank, lat.size()));
    scratch = lat;
    auto nth = scratch.begin() + static_cast<std::ptrdiff_t>(rank - 1);
    std::nth_element(scratch.begin(), nth, scratch.end());
    return *nth;
}

} // namespace serve
} // namespace abndp
