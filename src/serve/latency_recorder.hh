/**
 * @file
 * Exact per-request latency accumulator for the serving driver.
 *
 * Every completed request's latency is stored (no sketch, no bucket
 * approximation), so the reported tail percentiles are the exact
 * nearest-rank order statistics: percentile(q) returns
 * sorted[ceil(q * n) - 1]. Selection uses nth_element on a scratch
 * copy; the differential test compares against a full-sort reference
 * (check::RefLatencyRecorder) over the same streams.
 *
 * The recorder is observational only (obs:: conventions): it is fed
 * from completion events but never feeds back into timing or any Rng
 * stream. Storage is ~8 MB per million requests, which is the price
 * of exact p99.9 at the stream sizes bench_serving runs.
 */

#ifndef ABNDP_SERVE_LATENCY_RECORDER_HH
#define ABNDP_SERVE_LATENCY_RECORDER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace abndp
{
namespace serve
{

/** Stores every request latency; exact nearest-rank percentiles. */
class LatencyRecorder
{
  public:
    /** @p sloTicks classifies each sample at record time. */
    explicit LatencyRecorder(Tick sloTicks = 0) : slo(sloTicks) {}

    /** Reserve for an expected request count (avoids regrowth). */
    void reserve(std::uint64_t n) { lat.reserve(n); }

    /** Record one completed request's latency in ticks. */
    void
    record(Tick latency)
    {
        lat.push_back(latency);
        sum += latency;
        if (slo > 0 && latency > slo)
            ++nSloMisses;
    }

    std::uint64_t samples() const { return lat.size(); }

    /** Samples that exceeded the SLO (0 when no SLO configured). */
    std::uint64_t sloMisses() const { return nSloMisses; }

    /** Mean latency in ticks (0 with no samples). */
    double
    meanTicks() const
    {
        return lat.empty() ? 0.0
            : static_cast<double>(sum) / static_cast<double>(lat.size());
    }

    /**
     * Exact nearest-rank percentile: the smallest recorded latency
     * such that at least q of all samples are <= it. @p q in (0, 1];
     * returns 0 with no samples.
     */
    Tick percentile(double q) const;

  private:
    std::vector<Tick> lat;
    /** Scratch for nth_element; mutable so percentile() stays const. */
    mutable std::vector<Tick> scratch;
    Tick slo;
    std::uint64_t nSloMisses = 0;
    std::uint64_t sum = 0;
};

} // namespace serve
} // namespace abndp

#endif // ABNDP_SERVE_LATENCY_RECORDER_HH
