/**
 * @file
 * Online-serving configuration: the knobs of the open-loop request
 * stream the serving driver (src/serve, NdpSystem::serve()) injects
 * into the scheduler — arrival rate and rate profile, Zipfian key
 * skew, multi-tenant mix, the tail-latency SLO, and admission control.
 *
 * Serving is off by default (requests == 0); a batch run never reads
 * any field here, and the arrival stream draws from its own seed
 * domain, so enabling serving can never perturb batch-mode goldens.
 */

#ifndef ABNDP_SERVE_SERVING_CONFIG_HH
#define ABNDP_SERVE_SERVING_CONFIG_HH

#include <cstdint>
#include <vector>

namespace abndp
{

/** Shape of the open-loop arrival rate over time. */
enum class RateProfile
{
    /** Stationary Poisson stream at ratePerUs. */
    Constant,
    /** Square wave: burstFraction of each period at burstFactor x. */
    Bursty,
    /** Sinusoidal modulation with diurnalDepth around the mean. */
    Diurnal,
};

/** Open-loop request-stream parameters (see docs/ARCHITECTURE.md). */
struct ServingConfig
{
    /** Requests in the stream; 0 disables serving mode entirely. */
    std::uint64_t requests = 0;
    /** Mean arrival rate in requests per microsecond (open loop). */
    double ratePerUs = 4.0;
    RateProfile profile = RateProfile::Constant;
    /** Bursty: peak/mean rate multiplier during the burst phase. */
    double burstFactor = 4.0;
    /** Bursty: fraction of each period spent in the burst phase. */
    double burstFraction = 0.1;
    /** Bursty: square-wave period in microseconds. */
    double burstPeriodUs = 50.0;
    /** Diurnal: one full rate cycle in microseconds. */
    double diurnalPeriodUs = 200.0;
    /** Diurnal: modulation depth in [0, 1). */
    double diurnalDepth = 0.8;
    /** Zipfian skew exponent over the key space (0 = uniform). */
    double zipfS = 0.99;
    /** Independent tenants sharing the machine (stats per tenant). */
    std::uint32_t tenants = 1;
    /**
     * Relative arrival weight per tenant; empty means equal shares.
     * When nonempty it must have exactly @ref tenants entries, each
     * positive (weights are normalized internally).
     */
    std::vector<double> tenantWeights;
    /** Tail-latency SLO per request, in nanoseconds. */
    double sloNs = 4000.0;
    /**
     * Admission control: arrivals beyond this many outstanding
     * requests are rejected (counted, never queued). 0 = unbounded.
     */
    std::uint64_t maxOutstanding = 4096;

    /** Serving mode is requested iff the stream is nonempty. */
    bool enabled() const { return requests > 0; }
};

} // namespace abndp

#endif // ABNDP_SERVE_SERVING_CONFIG_HH
