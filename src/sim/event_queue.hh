/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global event queue per simulation orders callbacks by tick,
 * with insertion order breaking ties so runs are fully deterministic.
 *
 * The kernel is allocation-free on the hot path: callbacks are stored
 * in fixed-size inline slots of a pooled, chunked arena (no per-event
 * malloc/free), and the binary heap itself holds only trivially
 * copyable (tick, seq, slot) entries, so sift operations are plain
 * memcpys. Oversized captures are rejected at compile time — there is
 * deliberately no heap fallback.
 */

#ifndef ABNDP_SIM_EVENT_QUEUE_HH
#define ABNDP_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace abndp
{

/** Event-queue based simulation clock and dispatcher. */
class EventQueue
{
  public:
    /**
     * Inline storage per event callback, in bytes. Sized for the
     * largest capture in the simulator core (NdpSystem's forward path:
     * this + UnitId + shared_ptr<Task> + bool) with headroom for a
     * std::function-sized closure; callbackFits<F> rejects anything
     * larger at compile time instead of silently heap-allocating.
     */
    static constexpr std::size_t callbackCapacity = 48;
    static constexpr std::size_t callbackAlign = alignof(std::max_align_t);

    /** Can @p F be scheduled (fits inline, invocable, nothrow-movable)? */
    template <typename F>
    static constexpr bool callbackFits =
        std::is_invocable_r_v<void, std::decay_t<F> &>
        && sizeof(std::decay_t<F>) <= callbackCapacity
        && alignof(std::decay_t<F>) <= callbackAlign
        && std::is_nothrow_move_constructible_v<std::decay_t<F>>;

    /** Current simulated time. */
    Tick now() const { return curTick; }

    /** Number of pending events. */
    std::size_t size() const { return heap.size(); }

    bool empty() const { return heap.empty(); }

    /** Total events executed so far. */
    std::uint64_t executed() const { return numExecuted; }

    /**
     * Schedule a callback at an absolute tick; must not be in the past.
     * The capture is placement-constructed into a pooled inline slot;
     * captures above callbackCapacity bytes fail to compile.
     */
    template <typename F>
        requires callbackFits<F>
    void
    schedule(Tick when, F &&cb)
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= callbackCapacity,
                      "event capture exceeds the inline slot; enlarge "
                      "callbackCapacity or shrink the capture");
        abndp_assert(when >= curTick, "scheduling into the past: ", when,
                     " < ", curTick);
        std::uint32_t idx = allocSlot();
        Slot &slot = slotAt(idx);
        ::new (static_cast<void *>(slot.store)) Fn(std::forward<F>(cb));
        slot.invoke = [](void *p) { (*static_cast<Fn *>(p))(); };
        slot.destroy = [](void *p) { static_cast<Fn *>(p)->~Fn(); };
        heap.push_back(HeapEntry{when, nextSeq++, idx});
        std::push_heap(heap.begin(), heap.end(), Later{});
    }

    /** Schedule a callback delta ticks from now. */
    template <typename F>
        requires callbackFits<F>
    void
    scheduleIn(Tick delta, F &&cb)
    {
        schedule(curTick + delta, std::forward<F>(cb));
    }

    /**
     * Execute the earliest pending event.
     * @return false if the queue was empty.
     */
    bool
    runOne()
    {
        if (heap.empty())
            return false;
        std::pop_heap(heap.begin(), heap.end(), Later{});
        HeapEntry ev = heap.back();
        heap.pop_back();
        curTick = ev.when;
        ++numExecuted;
        // Slot addresses are stable (chunked arena), so the callback may
        // freely schedule further events while it runs; its own slot is
        // released only after it returns.
        Slot &slot = slotAt(ev.slot);
        slot.invoke(slot.store);
        releaseSlot(ev.slot);
        return true;
    }

    /** Run until the queue drains. */
    void
    runAll()
    {
        while (runOne()) {}
    }

    /** Run events with tick <= limit (inclusive). */
    void
    runUntil(Tick limit)
    {
        while (!heap.empty() && heap.front().when <= limit)
            runOne();
        if (curTick < limit)
            curTick = limit;
    }

    /**
     * Drop all pending events without running them; the clock keeps its
     * current value. Used at bulk-synchronous barriers to cancel
     * periodic bookkeeping events (exchange ticks, steal backoffs) that
     * must not stretch the epoch. Clears in place: both the heap's
     * vector capacity and the slot arena survive, so the next epoch
     * ramps up without reallocating.
     */
    void
    clearPending()
    {
        for (const HeapEntry &ev : heap)
            releaseSlot(ev.slot);
        heap.clear();
    }

    /**
     * Reset to an empty queue at tick 0. Keeps the heap capacity and
     * the callback arena (capacity-preserving, like clearPending()) as
     * well as the configured watchdog budgets; only the watchdog
     * baselines are rewound.
     */
    void
    reset()
    {
        clearPending();
        curTick = 0;
        nextSeq = 0;
        numExecuted = 0;
        wdBaseTick = 0;
        wdBaseEvents = 0;
    }

    // ---- Capacity introspection (tests / self-measurement) ----

    /** Current capacity of the pending-event heap, in events. */
    std::size_t heapCapacity() const { return heap.capacity(); }

    /** Callback slots allocated in the arena (high-water mark). */
    std::size_t arenaSlots() const { return slotsUsed; }

    // ---- Watchdog ----
    //
    // Guard against silent hangs/livelocks: the driver sets budgets for
    // one drain phase (a bulk-synchronous epoch), re-arms the baseline
    // at each phase start, and polls watchdogTripped() while draining.
    // The queue itself stays policy-free: the caller decides how to
    // report (NdpSystem dumps per-unit queue depths and calls fatal()).

    /** Set the per-phase budgets; 0 disables the respective check. */
    void
    setWatchdog(Tick maxTicks, std::uint64_t maxEvents)
    {
        wdMaxTicks = maxTicks;
        wdMaxEvents = maxEvents;
    }

    /** Restart the watchdog budgets from the current time/event count. */
    void
    armWatchdog()
    {
        wdBaseTick = curTick;
        wdBaseEvents = numExecuted;
    }

    /** Has the current phase exceeded a configured budget? */
    bool
    watchdogTripped() const
    {
        if (wdMaxTicks > 0 && curTick - wdBaseTick > wdMaxTicks)
            return true;
        if (wdMaxEvents > 0 && numExecuted - wdBaseEvents > wdMaxEvents)
            return true;
        return false;
    }

    /** Ticks elapsed in the current watchdog phase. */
    Tick watchdogTicks() const { return curTick - wdBaseTick; }

    /** Events executed in the current watchdog phase. */
    std::uint64_t
    watchdogEvents() const
    {
        return numExecuted - wdBaseEvents;
    }

    ~EventQueue() { clearPending(); }

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

  private:
    /**
     * One pooled callback slot: inline capture storage plus its type's
     * invoke/destroy thunks. Slots live in fixed chunks so their
     * addresses never move while the arena grows.
     */
    struct Slot
    {
        alignas(callbackAlign) unsigned char store[callbackCapacity];
        void (*invoke)(void *) = nullptr;
        void (*destroy)(void *) = nullptr;
        std::uint32_t nextFree = noSlot;
    };

    /** Trivially copyable heap element; sifts are plain memcpys. */
    struct HeapEntry
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    struct Later
    {
        bool
        operator()(const HeapEntry &a, const HeapEntry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    static constexpr std::uint32_t chunkSlots = 256;
    static constexpr std::uint32_t noSlot =
        std::numeric_limits<std::uint32_t>::max();

    Slot &
    slotAt(std::uint32_t idx)
    {
        return chunks[idx / chunkSlots][idx % chunkSlots];
    }

    std::uint32_t
    allocSlot()
    {
        if (freeHead != noSlot) {
            std::uint32_t idx = freeHead;
            freeHead = slotAt(idx).nextFree;
            return idx;
        }
        if (slotsUsed == chunks.size() * chunkSlots)
            chunks.push_back(std::make_unique<Slot[]>(chunkSlots));
        return slotsUsed++;
    }

    void
    releaseSlot(std::uint32_t idx)
    {
        Slot &slot = slotAt(idx);
        slot.destroy(slot.store);
        slot.nextFree = freeHead;
        freeHead = idx;
    }

    std::vector<HeapEntry> heap;
    std::vector<std::unique_ptr<Slot[]>> chunks;
    std::uint32_t freeHead = noSlot;
    std::uint32_t slotsUsed = 0;

    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t numExecuted = 0;

    Tick wdMaxTicks = 0;
    std::uint64_t wdMaxEvents = 0;
    Tick wdBaseTick = 0;
    std::uint64_t wdBaseEvents = 0;
};

} // namespace abndp

#endif // ABNDP_SIM_EVENT_QUEUE_HH
