/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global event queue per simulation orders callbacks by tick,
 * with insertion order breaking ties so runs are fully deterministic.
 */

#ifndef ABNDP_SIM_EVENT_QUEUE_HH
#define ABNDP_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace abndp
{

/** Event-queue based simulation clock and dispatcher. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick now() const { return curTick; }

    /** Number of pending events. */
    std::size_t size() const { return heap.size(); }

    bool empty() const { return heap.empty(); }

    /** Total events executed so far. */
    std::uint64_t executed() const { return numExecuted; }

    /**
     * Schedule a callback at an absolute tick; must not be in the past.
     */
    void
    schedule(Tick when, Callback cb)
    {
        abndp_assert(when >= curTick, "scheduling into the past: ", when,
                     " < ", curTick);
        heap.push(Event{when, nextSeq++, std::move(cb)});
    }

    /** Schedule a callback delta ticks from now. */
    void
    scheduleIn(Tick delta, Callback cb)
    {
        schedule(curTick + delta, std::move(cb));
    }

    /**
     * Execute the earliest pending event.
     * @return false if the queue was empty.
     */
    bool
    runOne()
    {
        if (heap.empty())
            return false;
        // Moving out of the priority queue top is safe: pop() follows
        // immediately and never inspects the moved-from callback.
        Event ev = std::move(const_cast<Event &>(heap.top()));
        heap.pop();
        curTick = ev.when;
        ++numExecuted;
        ev.cb();
        return true;
    }

    /** Run until the queue drains. */
    void
    runAll()
    {
        while (runOne()) {}
    }

    /** Run events with tick <= limit (inclusive). */
    void
    runUntil(Tick limit)
    {
        while (!heap.empty() && heap.top().when <= limit)
            runOne();
        if (curTick < limit)
            curTick = limit;
    }

    /**
     * Drop all pending events without running them; the clock keeps its
     * current value. Used at bulk-synchronous barriers to cancel
     * periodic bookkeeping events (exchange ticks, steal backoffs) that
     * must not stretch the epoch.
     */
    void
    clearPending()
    {
        heap = {};
    }

    /** Reset to an empty queue at tick 0. */
    void
    reset()
    {
        heap = {};
        curTick = 0;
        nextSeq = 0;
        numExecuted = 0;
        wdBaseTick = 0;
        wdBaseEvents = 0;
    }

    // ---- Watchdog ----
    //
    // Guard against silent hangs/livelocks: the driver sets budgets for
    // one drain phase (a bulk-synchronous epoch), re-arms the baseline
    // at each phase start, and polls watchdogTripped() while draining.
    // The queue itself stays policy-free: the caller decides how to
    // report (NdpSystem dumps per-unit queue depths and calls fatal()).

    /** Set the per-phase budgets; 0 disables the respective check. */
    void
    setWatchdog(Tick maxTicks, std::uint64_t maxEvents)
    {
        wdMaxTicks = maxTicks;
        wdMaxEvents = maxEvents;
    }

    /** Restart the watchdog budgets from the current time/event count. */
    void
    armWatchdog()
    {
        wdBaseTick = curTick;
        wdBaseEvents = numExecuted;
    }

    /** Has the current phase exceeded a configured budget? */
    bool
    watchdogTripped() const
    {
        if (wdMaxTicks > 0 && curTick - wdBaseTick > wdMaxTicks)
            return true;
        if (wdMaxEvents > 0 && numExecuted - wdBaseEvents > wdMaxEvents)
            return true;
        return false;
    }

    /** Ticks elapsed in the current watchdog phase. */
    Tick watchdogTicks() const { return curTick - wdBaseTick; }

    /** Events executed in the current watchdog phase. */
    std::uint64_t
    watchdogEvents() const
    {
        return numExecuted - wdBaseEvents;
    }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap;
    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t numExecuted = 0;

    Tick wdMaxTicks = 0;
    std::uint64_t wdMaxEvents = 0;
    Tick wdBaseTick = 0;
    std::uint64_t wdBaseEvents = 0;
};

} // namespace abndp

#endif // ABNDP_SIM_EVENT_QUEUE_HH
