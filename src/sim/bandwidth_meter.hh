/**
 * @file
 * Bucketed bandwidth accounting for contended resources (DRAM banks,
 * crossbar ports, mesh links).
 *
 * A naive per-resource next-free-time is unstable under the simulator's
 * task-granularity timing (reservations arrive out of time order): one
 * reservation far in the future blocks every later-processed request with
 * an earlier start time, and the backlog feeds on itself. The meter
 * instead divides time into fixed buckets of service capacity and lets
 * requests backfill the earliest bucket with room, which converges to the
 * same steady-state queueing delay as a FIFO server without the runaway.
 *
 * reserve() is the single hottest call in the simulator (every DRAM
 * access and every mesh hop reserves a bucket), so buckets live in flat
 * fixed-size pages found through a last-page cache — no hashing and no
 * per-reservation allocation — while time-sparse use (a bank idle for a
 * simulated hour) still costs one page, not a dense array.
 */

#ifndef ABNDP_SIM_BANDWIDTH_METER_HH
#define ABNDP_SIM_BANDWIDTH_METER_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace abndp
{

/** Earliest-fit bucketed reservation of a serially shared resource. */
class BandwidthMeter
{
  public:
    /**
     * @param bucketTicks bucket width; must be >= the largest single
     *        service time reserved on this resource
     */
    explicit BandwidthMeter(Tick bucketTicks = 256 * ticksPerNs)
        : width(bucketTicks)
    {
        abndp_assert(width > 0);
    }

    /**
     * Reserve @p service ticks of the resource at or after @p t; large
     * services span consecutive buckets.
     * @return the tick at which service begins (>= @p t).
     */
    Tick
    reserve(Tick t, Tick service)
    {
        if (service == 0)
            return t;
        std::uint64_t b = t / width;
        while (fillOf(b) >= width)
            ++b;
        // Requests landing mid-bucket start no earlier than t; the
        // bucket's fill level approximates the queue ahead of them.
        Tick begin = b * width + fillOf(b);
        if (begin < t)
            begin = t;
        Tick remaining = service;
        while (true) {
            Tick &used = slot(b);
            Tick free = width - used;
            Tick take = remaining < free ? remaining : free;
            if (take > 0 && used == 0)
                ++nTouched;
            used += take;
            remaining -= take;
            if (remaining == 0)
                break;
            ++b;
        }
        return begin;
    }

    /**
     * Drop all reservations (e.g., between independent runs); pages
     * are zeroed in place, so the next run allocates nothing.
     */
    void
    reset()
    {
        for (Page &p : pages)
            std::fill(p.fill.begin(), p.fill.end(), Tick{0});
        nTouched = 0;
    }

    /** Buckets holding at least one reservation. */
    std::size_t bucketsInUse() const { return nTouched; }

    // ---- Audit accessors (src/check invariant: fill <= width) ----

    /** Configured bucket width in ticks. */
    Tick bucketWidth() const { return width; }

    /**
     * Largest fill level of any bucket. The reserve() loop caps every
     * bucket at the width by construction; the invariant checkers
     * audit it anyway so a future fast path cannot silently overbook
     * the resource. Walks every page — audit-time only, never on the
     * reservation hot path.
     */
    Tick
    maxBucketFill() const
    {
        Tick mx = 0;
        for (const Page &p : pages)
            for (Tick f : p.fill)
                mx = std::max(mx, f);
        return mx;
    }

  private:
    /** Buckets per page; a power of two. */
    static constexpr std::uint64_t pageBuckets = 1024;

    struct Page
    {
        std::uint64_t first;     // bucket number of fill[0]
        std::vector<Tick> fill;  // pageBuckets entries
    };

    /** Fill level of bucket @p b; absent pages read as empty. */
    Tick
    fillOf(std::uint64_t b) const
    {
        std::uint64_t first = b & ~(pageBuckets - 1);
        if (lastIdx < pages.size() && pages[lastIdx].first == first)
            return pages[lastIdx].fill[b - first];
        const Page *p = findPage(first);
        if (!p)
            return 0;
        lastIdx = static_cast<std::size_t>(p - pages.data());
        return p->fill[b - first];
    }

    /** Writable fill slot of bucket @p b, creating its page if needed. */
    Tick &
    slot(std::uint64_t b)
    {
        std::uint64_t first = b & ~(pageBuckets - 1);
        if (lastIdx < pages.size() && pages[lastIdx].first == first)
            return pages[lastIdx].fill[b - first];
        auto it = std::lower_bound(
            pages.begin(), pages.end(), first,
            [](const Page &p, std::uint64_t f) { return p.first < f; });
        if (it == pages.end() || it->first != first)
            it = pages.insert(it, Page{first,
                                       std::vector<Tick>(pageBuckets, 0)});
        lastIdx = static_cast<std::size_t>(it - pages.begin());
        return it->fill[b - first];
    }

    const Page *
    findPage(std::uint64_t first) const
    {
        auto it = std::lower_bound(
            pages.begin(), pages.end(), first,
            [](const Page &p, std::uint64_t f) { return p.first < f; });
        return it != pages.end() && it->first == first ? &*it : nullptr;
    }

    Tick width;
    /** Pages sorted by first bucket; benchmarks touch a handful. */
    std::vector<Page> pages;
    /** Index of the most recently touched page (almost always hits). */
    mutable std::size_t lastIdx = 0;
    std::size_t nTouched = 0;
};

} // namespace abndp

#endif // ABNDP_SIM_BANDWIDTH_METER_HH
