/**
 * @file
 * Bucketed bandwidth accounting for contended resources (DRAM banks,
 * crossbar ports, mesh links).
 *
 * A naive per-resource next-free-time is unstable under the simulator's
 * task-granularity timing (reservations arrive out of time order): one
 * reservation far in the future blocks every later-processed request with
 * an earlier start time, and the backlog feeds on itself. The meter
 * instead divides time into fixed buckets of service capacity and lets
 * requests backfill the earliest bucket with room, which converges to the
 * same steady-state queueing delay as a FIFO server without the runaway.
 */

#ifndef ABNDP_SIM_BANDWIDTH_METER_HH
#define ABNDP_SIM_BANDWIDTH_METER_HH

#include <cstdint>
#include <unordered_map>

#include "common/logging.hh"
#include "common/types.hh"

namespace abndp
{

/** Earliest-fit bucketed reservation of a serially shared resource. */
class BandwidthMeter
{
  public:
    /**
     * @param bucketTicks bucket width; must be >= the largest single
     *        service time reserved on this resource
     */
    explicit BandwidthMeter(Tick bucketTicks = 256 * ticksPerNs)
        : width(bucketTicks)
    {
        abndp_assert(width > 0);
    }

    /**
     * Reserve @p service ticks of the resource at or after @p t; large
     * services span consecutive buckets.
     * @return the tick at which service begins (>= @p t).
     */
    Tick
    reserve(Tick t, Tick service)
    {
        if (service == 0)
            return t;
        std::uint64_t b = t / width;
        while (used[b] >= width)
            ++b;
        // Requests landing mid-bucket start no earlier than t; the
        // bucket's fill level approximates the queue ahead of them.
        Tick begin = b * width + used[b];
        if (begin < t)
            begin = t;
        Tick remaining = service;
        while (remaining > 0) {
            Tick &used_in = used[b];
            Tick free = width - used_in;
            Tick take = remaining < free ? remaining : free;
            used_in += take;
            remaining -= take;
            if (remaining > 0)
                ++b;
        }
        return begin;
    }

    /** Drop all reservations (e.g., between independent runs). */
    void
    reset()
    {
        used.clear();
    }

    std::size_t bucketsInUse() const { return used.size(); }

  private:
    Tick width;
    std::unordered_map<std::uint64_t, Tick> used;
};

} // namespace abndp

#endif // ABNDP_SIM_BANDWIDTH_METER_HH
