/**
 * @file
 * Bucketed bandwidth accounting for contended resources (DRAM banks,
 * crossbar ports, mesh links).
 *
 * A naive per-resource next-free-time is unstable under the simulator's
 * task-granularity timing (reservations arrive out of time order): one
 * reservation far in the future blocks every later-processed request with
 * an earlier start time, and the backlog feeds on itself. The meter
 * instead divides time into fixed buckets of service capacity and lets
 * requests backfill the earliest bucket with room, which converges to the
 * same steady-state queueing delay as a FIFO server without the runaway.
 *
 * reserve() is the single hottest call in the simulator (every DRAM
 * access and every mesh hop reserves a bucket), so buckets live in flat
 * fixed-size pages found through a last-page cache — no hashing and no
 * per-reservation allocation — while time-sparse use (a bank idle for a
 * simulated hour) still costs one page, not a dense array.
 */

#ifndef ABNDP_SIM_BANDWIDTH_METER_HH
#define ABNDP_SIM_BANDWIDTH_METER_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace abndp
{

/** Earliest-fit bucketed reservation of a serially shared resource. */
class BandwidthMeter
{
  public:
    /**
     * @param bucketTicks bucket width; must be >= the largest single
     *        service time reserved on this resource
     */
    explicit BandwidthMeter(Tick bucketTicks = 256 * ticksPerNs)
        : width(bucketTicks)
    {
        abndp_assert(width > 0);
    }

    /**
     * Reserve @p service ticks of the resource at or after @p t; large
     * services span consecutive buckets.
     * @return the tick at which service begins (>= @p t).
     */
    Tick
    reserve(Tick t, Tick service)
    {
        if (service == 0)
            return t;

        // Resolve t's bucket number without the 64-bit division when t
        // falls in the same bucket as the previous reservation — on a
        // hot meter nearly every time.
        std::uint64_t b;
        if (t >= lastBucketStart && t - lastBucketStart < width) {
            b = lastBucket;
        } else {
            b = t / width;
            lastBucket = b;
            lastBucketStart = b * width;
        }

        // Congestion cursor: fills only grow between resets, so every
        // bucket below minFreeBucket is known full and the skip loop
        // would walk straight across it — jump over the whole run. On
        // a saturated meter this turns the O(backlog) scan per
        // reservation into O(1).
        if (b < minFreeBucket)
            b = minFreeBucket;

        // Fast path covering almost every reservation: the bucket lives
        // in the most recently touched page and has room for the whole
        // service, so the skip loop would stop right here and the pour
        // loop would drain in one take.
        const std::uint64_t first = b & ~(pageBuckets - 1);
        if (lastIdx < pages.size() && pages[lastIdx].first == first) {
            Tick &used = pages[lastIdx].fill[b - first];
            if (used + service <= width) {
                if (used == 0)
                    ++nTouched;
                Tick begin = b * width + used;
                used += service;
                return begin < t ? t : begin;
            }
        }
        return reserveSlow(t, b, service);
    }

  private:
    /** reserve() continuation past the single-bucket fast path. */
    Tick
    reserveSlow(Tick t, std::uint64_t b, Tick service)
    {
        const std::uint64_t scanStart = b;

        // Skip full buckets, scanning each page's flat fill row in
        // place — the page is resolved once per page, not once per
        // bucket. An absent page is all-empty, so the scan stops at
        // its first bucket.
        //
        // Full buckets additionally carry a skip pointer (skip[i] > i
        // means buckets [i, skip[i]) are all full). A bucket's fill
        // only grows between resets, so a recorded fact never expires
        // and jumping the run lands exactly where the linear scan
        // would. Entry-point compression plus path halving keep the
        // chains short, so a reservation behind a deep backlog (a hub
        // bank under design B) costs amortized O(1) instead of
        // O(backlog) — without this the scan is quadratic in the
        // backlog length over a congested run.
        // Pages carry a second, cross-page fact: fullUpTo > 0 means
        // every bucket in [page.first, fullUpTo) is full — fullUpTo
        // may point far beyond the page, so a scan entering anywhere
        // under it jumps straight to the proven frontier in one hop.
        // Pages the scan proves full (contiguously from their start)
        // are collected and stamped with the landing bucket, so the
        // frontier fact compresses toward O(1) hops per scan even
        // when the backlog spans hundreds of pages.
        Tick beginFill = 0;
        Page *proven[maxProven];
        std::uint32_t nProven = 0;
        while (true) {
            const std::uint64_t first = b & ~(pageBuckets - 1);
            Page *p = findPageCachedMut(first);
            if (!p)
                break;
            if (p->fullUpTo > b) {
                // [first, fullUpTo) is full and stays so; contiguity
                // with the walk lets the landing extend this fact.
                if (nProven < maxProven)
                    proven[nProven++] = p;
                b = p->fullUpTo;
                continue;
            }
            const Tick *fill = p->fill.data();
            std::uint16_t *skip = p->skip.data();
            std::uint64_t idx = b - first;
            const std::uint64_t entry = idx;
            while (idx < pageBuckets) {
                const std::uint32_t nxt = skip[idx];
                if (nxt > idx) {
                    // Path halving: point at the jump target's own
                    // target so the next walker takes one hop fewer.
                    const std::uint32_t nn =
                        nxt < pageBuckets ? skip[nxt] : 0;
                    if (nn > nxt)
                        skip[idx] = static_cast<std::uint16_t>(nn);
                    idx = nxt;
                    continue;
                }
                if (fill[idx] >= width) {
                    skip[idx] = static_cast<std::uint16_t>(idx + 1);
                    ++idx;
                    continue;
                }
                break;
            }
            if (idx > entry)
                skip[entry] = static_cast<std::uint16_t>(idx);
            if (idx < pageBuckets) {
                b = first + idx;
                beginFill = fill[idx];
                break;
            }
            // The page is full from the entry on; it qualifies for a
            // fullUpTo stamp only when also full from its start
            // (entered at offset 0, or the existing fact covers the
            // prefix), keeping the [first, fullUpTo) meaning exact.
            if ((entry == 0 || p->fullUpTo >= first + entry)
                && nProven < maxProven)
                proven[nProven++] = p;
            b = first + pageBuckets;
        }

        // Stamp before the pour loop: ensurePage() may insert into the
        // pages vector and invalidate the collected pointers.
        for (std::uint32_t i = 0; i < nProven; ++i)
            if (b > proven[i]->fullUpTo)
                proven[i]->fullUpTo = b;

        // Every bucket in [scanStart, b) was full; if the scan began
        // at the known-full prefix's end, the prefix now extends to b.
        // Pages wholly under the advanced cursor self-retire on the
        // spot: reserve() clamps every start bucket up to
        // minFreeBucket, so nothing can ever scan or pour below it —
        // no barrier needed, and a saturated meter keeps O(1) live
        // pages instead of accreting one per ~quarter-millisecond of
        // simulated congestion. (Runs after the proven[] stamps above;
        // retirement invalidates page pointers.)
        if (scanStart <= minFreeBucket && b > minFreeBucket) {
            minFreeBucket = b;
            retirePagesBelow(minFreeBucket);
        }

        // Requests landing mid-bucket start no earlier than t; the
        // bucket's fill level approximates the queue ahead of them.
        Tick begin = b * width + beginFill;
        if (begin < t)
            begin = t;

        // Pour the service into consecutive buckets page by page. A
        // page entered with work remaining gets created exactly as the
        // bucket-at-a-time loop would have: its first bucket is empty,
        // so the first take there is positive.
        Tick remaining = service;
        while (true) {
            const std::uint64_t first = b & ~(pageBuckets - 1);
            Page &pg = ensurePage(first);
            Tick *fill = pg.fill.data();
            std::uint16_t *skip = pg.skip.data();
            for (std::uint64_t idx = b - first; idx < pageBuckets;
                 ++idx) {
                Tick &used = fill[idx];
                Tick free = width - used;
                Tick take = remaining < free ? remaining : free;
                if (take > 0 && used == 0)
                    ++nTouched;
                used += take;
                remaining -= take;
                if (used >= width)
                    skip[idx] = static_cast<std::uint16_t>(idx + 1);
                if (remaining == 0)
                    return begin;
            }
            b = first + pageBuckets;
        }
    }

  public:
    /**
     * Drop all reservations (e.g., between independent runs); pages
     * are zeroed in place, so the next run allocates nothing.
     */
    void
    reset()
    {
        for (Page &p : pages) {
            std::fill(p.fill.begin(), p.fill.end(), Tick{0});
            std::fill(p.skip.begin(), p.skip.end(),
                      std::uint16_t{0});
            p.fullUpTo = 0;
        }
        nTouched = 0;
        minFreeBucket = 0;
        retiredMaxFill = 0;
    }

    /**
     * Retire pages that end strictly before @p t's bucket. Sound only
     * when the caller guarantees every future reserve() on this meter
     * uses a start tick >= @p t: reservations only scan and pour
     * forward from their start bucket, so buckets wholly below it are
     * unreachable and their storage can be reclaimed. Called from the
     * bulk-synchronous barrier (a global time fence), this bounds live
     * pages to the current epoch's backlog window instead of the whole
     * simulated timeline — the difference between ~100 MB and ~10 GB
     * resident at scale 20. Retired storage is stashed and recycled by
     * ensurePage(), so steady-state epochs allocate nothing.
     *
     * Observational state is preserved exactly: retired pages' peak
     * fill folds into maxBucketFill() and bucketsInUse() keeps its
     * count, so audits and stats cannot tell a discard happened.
     */
    void
    discardBefore(Tick t)
    {
        retirePagesBelow(t / width);
    }

    /** Buckets holding at least one reservation. */
    std::size_t bucketsInUse() const { return nTouched; }

    // ---- Audit accessors (src/check invariant: fill <= width) ----

    /** Configured bucket width in ticks. */
    Tick bucketWidth() const { return width; }

    /**
     * Largest fill level of any bucket. The reserve() loop caps every
     * bucket at the width by construction; the invariant checkers
     * audit it anyway so a future fast path cannot silently overbook
     * the resource. Walks every page — audit-time only, never on the
     * reservation hot path.
     */
    Tick
    maxBucketFill() const
    {
        Tick mx = retiredMaxFill;
        for (const Page &p : pages)
            for (Tick f : p.fill)
                mx = std::max(mx, f);
        return mx;
    }

  private:
    /** Buckets per page; a power of two. */
    static constexpr std::uint64_t pageBuckets = 1024;
    /** Pages stampable with the frontier fact per scan (the rest
     *  compress over subsequent scans). */
    static constexpr std::uint32_t maxProven = 8;

    struct Page
    {
        std::uint64_t first;     // bucket number of fill[0]
        std::vector<Tick> fill;  // pageBuckets entries
        /**
         * Next-maybe-free pointers over full buckets: skip[i] > i
         * means buckets [i, skip[i]) are all full (0 = no knowledge).
         * Facts never expire between resets because fills only grow.
         */
        std::vector<std::uint16_t> skip;
        /**
         * Cross-page frontier fact: every bucket in [first, fullUpTo)
         * is full (0 = none). May point beyond the page; a scan
         * entering under it jumps to the frontier in one hop.
         */
        std::uint64_t fullUpTo = 0;
    };
    static_assert(pageBuckets < 65535, "skip pointers are uint16");

    /** The page starting at bucket @p first, or nullptr if absent. */
    const Page *
    findPageCached(std::uint64_t first) const
    {
        if (lastIdx < pages.size() && pages[lastIdx].first == first)
            return &pages[lastIdx];
        auto it = std::lower_bound(
            pages.begin(), pages.end(), first,
            [](const Page &p, std::uint64_t f) { return p.first < f; });
        if (it == pages.end() || it->first != first)
            return nullptr;
        lastIdx = static_cast<std::size_t>(it - pages.begin());
        return &*it;
    }

    /** Mutable lookup (skip-pointer maintenance in reserveSlow). */
    Page *
    findPageCachedMut(std::uint64_t first)
    {
        return const_cast<Page *>(findPageCached(first));
    }

    /**
     * Retire every page that ends at or below bucket @p floorBucket
     * (shared by discardBefore() and the minFreeBucket self-retire;
     * both callers guarantee no future scan or pour reaches below it).
     * Folds retired peaks into retiredMaxFill, stashes the storage
     * for ensurePage() reuse, and resets the page cache index.
     */
    void
    retirePagesBelow(std::uint64_t floorBucket)
    {
        std::size_t n = 0;
        while (n < pages.size()
               && pages[n].first + pageBuckets <= floorBucket)
            ++n;
        if (n == 0)
            return;
        for (std::size_t i = 0; i < n; ++i) {
            for (Tick f : pages[i].fill)
                retiredMaxFill = std::max(retiredMaxFill, f);
            if (spares.size() < maxSpares)
                spares.push_back(std::move(pages[i]));
        }
        pages.erase(pages.begin(),
                    pages.begin() + static_cast<std::ptrdiff_t>(n));
        lastIdx = 0;
    }

    /** The page starting at bucket @p first, created if absent. */
    Page &
    ensurePage(std::uint64_t first)
    {
        if (lastIdx < pages.size() && pages[lastIdx].first == first)
            return pages[lastIdx];
        auto it = std::lower_bound(
            pages.begin(), pages.end(), first,
            [](const Page &p, std::uint64_t f) { return p.first < f; });
        if (it == pages.end() || it->first != first) {
            // Prefer storage retired by discardBefore(): zeroing a
            // stashed page in place reuses warm, already-faulted
            // memory instead of taking a fresh 10 KB allocation (and
            // its kernel zero-page faults) per created page.
            if (!spares.empty()) {
                Page pg = std::move(spares.back());
                spares.pop_back();
                pg.first = first;
                std::fill(pg.fill.begin(), pg.fill.end(), Tick{0});
                std::fill(pg.skip.begin(), pg.skip.end(),
                          std::uint16_t{0});
                pg.fullUpTo = 0;
                it = pages.insert(it, std::move(pg));
            } else {
                it = pages.insert(
                    it, Page{first, std::vector<Tick>(pageBuckets, 0),
                             std::vector<std::uint16_t>(pageBuckets, 0)});
            }
        }
        lastIdx = static_cast<std::size_t>(it - pages.begin());
        return *it;
    }

    Tick width;
    /** Pages sorted by first bucket; benchmarks touch a handful. */
    std::vector<Page> pages;
    /** Index of the most recently touched page (almost always hits). */
    mutable std::size_t lastIdx = 0;
    /**
     * Bucket of the previous reservation's t and its start tick; the
     * t -> bucket mapping is time-invariant, so the cache survives
     * reset() and never needs invalidation.
     */
    std::uint64_t lastBucket = 0;
    Tick lastBucketStart = 0;
    /** All buckets below this are full (fills are monotone between
     *  resets); lets reserve() jump the saturated backlog in O(1). */
    std::uint64_t minFreeBucket = 0;
    std::size_t nTouched = 0;
    /** Peak fill among pages retired by discardBefore(), so the
     *  bucket-overbooking audit still sees the whole timeline. */
    Tick retiredMaxFill = 0;
    /** Retired page storage awaiting reuse (bounded stash). */
    static constexpr std::size_t maxSpares = 8;
    std::vector<Page> spares;
};

} // namespace abndp

#endif // ABNDP_SIM_BANDWIDTH_METER_HH
