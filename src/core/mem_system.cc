#include "core/mem_system.hh"

#include <cstdlib>

namespace abndp
{

MemSystem::MemSystem(const SystemConfig &cfg, const Topology &topo,
                     const AddressMap &amap, EnergyAccount &energy,
                     FaultModel *faults, obs::Tracer *tracer)
    : cfg(cfg), topo(topo), amap(amap), energy(energy), faults(faults),
      net(cfg, topo, energy, faults, tracer),
      camps(cfg, topo, amap),
      style(cfg.traveller.style),
      tracer(tracer),
      tagCheckTicks(static_cast<Tick>(cfg.traveller.tagCheckNs
                                      * ticksPerNs)),
      sramDataTicks(static_cast<Tick>(cfg.traveller.sramDataNs
                                      * ticksPerNs)),
      latencyHist(0.0, 4096.0, 64)
{
    drams.reserve(cfg.numUnits());
    for (UnitId u = 0; u < cfg.numUnits(); ++u)
        drams.push_back(makeMemBackend(cfg, energy, u, faults));

    traceReads = std::getenv("ABNDP_READ_HIST") != nullptr;

    // Classic designs keep a null indirection pointer in the mapping,
    // so their homeOf() stays the bare static partition.
    if (cfg.lb.migration.enabled)
        camps.setHomeIndirection(&indirection);

    if (style != CacheStyle::None) {
        campCaches.reserve(cfg.numUnits());
        for (UnitId u = 0; u < cfg.numUnits(); ++u)
            campCaches.push_back(std::make_unique<TravellerCache>(
                cfg, mix64(cfg.seed ^ (0x1000ull + u))));
    }
}

Tick
MemSystem::homeRead(UnitId u, UnitId home, Addr addr, Tick start)
{
    ++nHomeDirect;
    if (home == u)
        return drams[home]->access(addr, cachelineBytes, false, false,
                                   start);
    // Request to the home, DRAM access, data back.
    Tick t = start;
    t += net.transfer(u, home, PacketSizes::request, t).latency;
    t += drams[home]->access(addr, cachelineBytes, false, false, t);
    t += net.transfer(home, u, PacketSizes::data, t).latency;
    return t - start;
}

AccessResult
MemSystem::read(const AccessRequest &req)
{
    AccessResult res;
    res.latency = readBlockImpl(req.unit, req.addr, req.start,
                                res.served);
    latencyNs.sample(static_cast<double>(res.latency) / ticksPerNs);
    latencyHist.sample(static_cast<double>(res.latency) / ticksPerNs);
    // Debug histogram: opt-in via ABNDP_READ_HIST=1 (checked once at
    // construction); benchmark runs never touch the hash map.
    if (traceReads) [[unlikely]]
        ++debugReadHist[blockAlign(req.addr)];
    return res;
}

Tick
MemSystem::readBlock(UnitId u, Addr addr, Tick start)
{
    return read(AccessRequest{u, 0, addr, start, false}).latency;
}

Tick
MemSystem::readBlockImpl(UnitId u, Addr addr, Tick start,
                         AccessLevel &served)
{
    addr = blockAlign(addr);
    // Degraded mode: a down home unit's range is served by its live
    // buddy (replica semantics); identical to homeOf() with no unit
    // failure active.
    UnitId home = liveHomeOf(addr);
    served = AccessLevel::HomeDram;

    // Hotness evidence for the lb migration engine: only remote
    // demand argues for re-homing. Recording is observational — it
    // feeds no timing and no Rng stream.
    if (hotness && u != home) [[unlikely]]
        hotness->record(home, addr, u);

    if (style == CacheStyle::None)
        return homeRead(u, home, addr, start);

    // Probe only the nearest candidate location (Section 4.3).
    UnitId camp = camps.nearestCandidate(addr, u);
    if (camp == home)
        return homeRead(u, home, addr, start);
    // A down camp cannot be probed (or filled): fall through to the
    // effective home directly.
    if (faults && faults->anyUnitDown() && !faults->isLive(camp))
        return homeRead(u, home, addr, start);

    Tick t = start;
    if (camp != u)
        t += net.transfer(u, camp, PacketSizes::request, t).latency;

    // Tag check at the camp.
    bool hit;
    switch (style) {
      case CacheStyle::TravellerSramTags:
      case CacheStyle::SramData:
        energy.addTagAccess();
        t += tagCheckTicks;
        hit = campCaches[camp]->lookup(addr);
        break;
      case CacheStyle::DramTags:
        // Tags live in DRAM with the data: every probe pays a DRAM
        // access to read the tag (Figure 13).
        t += drams[camp]->access(camps.cacheSlotAddr(addr) ^ 0x20,
                                 PacketSizes::request, false, true, t);
        hit = campCaches[camp]->lookup(addr);
        break;
      default:
        panic("unreachable cache style");
    }

    if (hit) {
        served = AccessLevel::TravellerCamp;
        ++nCampHits;
        if (tracer && tracer->enabled())
            tracer->record(obs::TraceEvent::TravellerHit, camp,
                           obs::Tracer::laneCache, t, 0, addr);
        if (style == CacheStyle::SramData) {
            energy.addSramDataCacheAccess();
            t += sramDataTicks;
        } else {
            t += drams[camp]->access(camps.cacheSlotAddr(addr),
                                     cachelineBytes, false, true, t);
        }
        if (camp != u)
            t += net.transfer(camp, u, PacketSizes::data, t).latency;
        return t - start;
    }

    // Camp miss: forward to home, read memory, return data to requester.
    ++nCampMisses;
    if (tracer && tracer->enabled())
        tracer->record(obs::TraceEvent::TravellerMiss, camp,
                       obs::Tracer::laneCache, t, 0, addr);
    Tick th = t;
    if (camp != home)
        th += net.transfer(camp, home, PacketSizes::request, th).latency;
    th += drams[home]->access(addr, cachelineBytes, false, false, th);
    Tick done = th;
    if (home != u)
        done += net.transfer(home, u, PacketSizes::data, done).latency;

    // Off the critical path: try to insert into the probed camp.
    if (campCaches[camp]->maybeInsert(addr)) {
        ++nInserts;
        Tick ti = th;
        if (home != camp)
            ti += net.transfer(home, camp, PacketSizes::data, ti).latency;
        if (style == CacheStyle::SramData) {
            energy.addSramDataCacheAccess();
        } else {
            drams[camp]->access(camps.cacheSlotAddr(addr), cachelineBytes,
                                true, true, ti);
        }
        if (style == CacheStyle::DramTags)
            drams[camp]->access(camps.cacheSlotAddr(addr) ^ 0x20,
                                PacketSizes::request, true, true, ti);
        else
            energy.addTagAccess();
    }

    return done - start;
}

void
MemSystem::writeBlock(UnitId u, Addr addr, Tick start)
{
    addr = blockAlign(addr);
    UnitId home = liveHomeOf(addr);
    Tick t = start;
    if (home != u)
        t += net.transfer(u, home, PacketSizes::data, t).latency;
    drams[home]->access(addr, cachelineBytes, true, false, t);
}

std::uint64_t
MemSystem::invalidateHomedOn(UnitId dead)
{
    std::uint64_t dropped = 0;
    for (auto &cc : campCaches)
        dropped += cc->invalidateMatching([this, dead](Addr block) {
            return camps.homeOf(block) == dead;
        });
    return dropped;
}

void
MemSystem::migrateBlock(Addr block, UnitId to, Tick now)
{
    block = blockAlign(block);
    UnitId from = camps.homeOf(block);
    if (from == to)
        return;
    // Ship the block: read at the old home, one data packet across
    // the NoC, write at the new home.
    drams[from]->access(block, cachelineBytes, false, false, now);
    net.transfer(from, to, PacketSizes::data, now);
    drams[to]->access(block, cachelineBytes, true, false, now);
    nMigrationTraffic += PacketSizes::data;
    // The camp locations of a block derive from its home unit, so
    // every cached copy placed under the old home is stale: sweep all
    // camps. Dropped blocks count as evictions inside the Traveller,
    // preserving the occupancy conservation law.
    if (cachingEnabled()) {
        for (auto &cc : campCaches)
            cc->invalidateMatching(
                [block](Addr b) { return b == block; });
        ++nMigrationInvalidations;
    }
    indirection.set(block, to, amap.homeOf(block));
    ++nMigrated;
}

void
MemSystem::regStats(obs::StatNode &node) const
{
    node.addCounter("campHits", &nCampHits);
    node.addCounter("campMisses", &nCampMisses);
    node.addCounter("homeDirectReads", &nHomeDirect);
    node.addCounter("cacheInsertions", &nInserts);
    node.addDistribution("readLatencyNs", &latencyNs);
    node.addHistogram("readLatencyHistNs", &latencyHist);
    node.addFormula("campHitRate", [this]() {
        double total = static_cast<double>(nCampHits.value())
            + static_cast<double>(nCampMisses.value());
        return total > 0.0 ? nCampHits.value() / total : 0.0;
    });
}

void
MemSystem::regLbStats(obs::StatNode &node) const
{
    node.addCounter("blocksMigrated", &nMigrated);
    node.addCounter("migrationInvalidations", &nMigrationInvalidations);
    node.addCounter("migrationTrafficBytes", &nMigrationTraffic);
}

void
MemSystem::bulkInvalidate()
{
    for (auto &cc : campCaches)
        cc->bulkInvalidate();
}

} // namespace abndp
