#include "core/ndp_system.hh"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "check/machine_checker.hh"
#include "common/logging.hh"
#include "sched/lb/lb_engine.hh"
#include "serve/arrival.hh"
#include "serve/zipf.hh"
#include "workloads/query_service.hh"

namespace abndp
{

/**
 * Serving stream generator state: the seeded arrival process, the
 * Zipfian key sampler, the tenant mix, and the QueryService face of
 * the workload. Out of line so the header needs no serve/ generator
 * includes; exists only for the duration of a serving run.
 */
struct NdpSystem::ServeState
{
    serve::ArrivalProcess arrivals;
    serve::ZipfianSampler zipf;
    QueryService *svc;
    /** Cumulative normalized tenant-weight distribution. */
    std::vector<double> tenantCdf;
    /** Dense sequence numbers handed to admitted requests. */
    std::uint64_t admitted = 0;

    ServeState(const ServingConfig &sc, std::uint64_t systemSeed,
               std::uint64_t keys, QueryService *svc_)
        : arrivals(sc, systemSeed), zipf(keys, sc.zipfS), svc(svc_)
    {
        std::vector<double> w = sc.tenantWeights;
        if (w.empty())
            w.assign(sc.tenants, 1.0);
        double total = 0.0;
        for (double x : w)
            total += x;
        double cum = 0.0;
        tenantCdf.reserve(w.size());
        for (double x : w) {
            cum += x;
            tenantCdf.push_back(cum / total);
        }
    }

    /** Map one uniform draw in [0, 1) to a tenant id. */
    std::uint8_t
    tenantFor(double u) const
    {
        std::size_t t = static_cast<std::size_t>(
            std::upper_bound(tenantCdf.begin(), tenantCdf.end(), u)
            - tenantCdf.begin());
        return static_cast<std::uint8_t>(
            std::min(t, tenantCdf.size() - 1));
    }
};

NdpSystem::~NdpSystem() = default;

NdpSystem::NdpSystem(const SystemConfig &cfg_)
    : cfg(cfg_),
      topo((cfg.validate(), cfg)),
      faults(cfg),
      energy(cfg),
      alloc(cfg),
      tracer(!cfg.traceOut.empty(),
             static_cast<std::size_t>(cfg.traceBufferEvents)),
      mem(cfg, topo, alloc.map(), energy, &faults, &tracer),
      sched(cfg, topo, mem.campMapping(), &faults, &tracer),
      path(cfg, mem, energy, faults),
      units(cfg.numUnits()),
      windowPolicy(sched.usesSchedulingWindow()),
      schedDecisionTicks(static_cast<Tick>(cfg_.sched.decisionNs
                                           * ticksPerNs))
{
    eq.setWatchdog(cfg.fault.watchdog.maxEpochTicks,
                   cfg.fault.watchdog.maxEpochEvents);

    for (UnitId u = 0; u < cfg.numUnits(); ++u)
        units[u].init(cfg, u);

    failuresOn = faults.unitFailuresEnabled();
    acksOutstanding.assign(units.size(), 0);

    if (cfg.serving.enabled()) {
        // Construct the recorders here (not in serveRun) so the stats
        // lambdas built below never see an unsized tenant vector.
        auto slo = static_cast<Tick>(cfg.serving.sloNs * ticksPerNs);
        servingLat = serve::LatencyRecorder(slo);
        servingTenantLat.assign(cfg.serving.tenants,
                                serve::LatencyRecorder(slo));
    }

    lbOn = cfg.lb.enabled;
    if (lbOn) {
        lbEngine = std::make_unique<LbEngine>(cfg.lb, topo);
        mem.setHotnessTracker(&lbEngine->hotness());
        lbQlen.assign(units.size(), 0);
    }

    if (cfg.checkInvariants) {
        checker = std::make_unique<check::MachineChecker>(*this);
        mem.network().setCheckContext(&checker->context());
    }

    buildStats();
}

void
NdpSystem::buildStats()
{
    obs::StatNode &root = statsReg.root();

    obs::StatNode &sys = root.child("system");
    sys.addValue("epochs",
                 [this]() { return static_cast<double>(epochsDone); },
                 obs::StatKind::Counter, true);
    sys.addValue("tasks",
                 [this]() { return static_cast<double>(totalTasks); },
                 obs::StatKind::Counter, true);
    sys.addValue("forwardedTasks",
                 [this]() { return static_cast<double>(forwardedTasks); },
                 obs::StatKind::Counter, true);
    sys.addValue("stolenTasks",
                 [this]() { return static_cast<double>(stolenTasks); },
                 obs::StatKind::Counter, true);
    sys.addValue("stealAttempts",
                 [this]() { return static_cast<double>(stealAttempts); },
                 obs::StatKind::Counter, true);
    sys.addValue("finalTick",
                 [this]() {
                     return static_cast<double>(lastCompletionTick);
                 },
                 obs::StatKind::Gauge, true);
    sys.addValue("simEvents",
                 [this]() { return static_cast<double>(eq.executed()); },
                 obs::StatKind::Counter, true);
    sys.addFormula("coreUtilization", [this]() {
        // Mean busy fraction over all cores up to the last completion.
        if (lastCompletionTick == 0)
            return 0.0;
        double busy = 0.0;
        for (const auto &unit : units)
            for (const auto &core : unit.cores)
                busy += static_cast<double>(core.activeTicks);
        return busy
            / (static_cast<double>(lastCompletionTick)
               * static_cast<double>(cfg.numCores()));
    });
    sys.addFormula("loadImbalance", [this]() {
        // max / mean of per-unit executed-task counts (1.0 = balanced).
        double sum = 0.0, mx = 0.0;
        for (const auto &unit : units) {
            double n = 0.0;
            for (const auto &core : unit.cores)
                n += static_cast<double>(core.tasksRun);
            sum += n;
            mx = std::max(mx, n);
        }
        double mean = sum / static_cast<double>(units.size());
        return mean > 0.0 ? mx / mean : 0.0;
    });
    std::vector<std::string> unitNames;
    unitNames.reserve(units.size());
    for (UnitId u = 0; u < units.size(); ++u)
        unitNames.push_back(std::to_string(u));
    sys.addVector("unitTasksRun", unitNames,
                  [this](std::size_t u) {
                      double n = 0.0;
                      for (const auto &core : units[u].cores)
                          n += static_cast<double>(core.tasksRun);
                      return n;
                  },
                  obs::StatKind::Counter, true);

    // Recovery stats exist only when a unit failure is configured, so
    // failure-free stat dumps (and the golden suite) are unchanged.
    if (cfg.fault.unitFailure.enabled()) {
        obs::StatNode &rec = root.child("recovery");
        rec.addValue("unitsDown",
                     [this]() {
                         return static_cast<double>(faults.downCount());
                     },
                     obs::StatKind::Gauge, true);
        rec.addValue("tasksRecovered",
                     [this]() {
                         return static_cast<double>(tasksRecovered);
                     },
                     obs::StatKind::Counter, true);
        rec.addValue("tasksRedispatched",
                     [this]() {
                         return static_cast<double>(tasksRedispatched);
                     },
                     obs::StatKind::Counter, true);
        rec.addValue("recoveryTrafficBytes",
                     [this]() {
                         return static_cast<double>(recoveryTrafficBytes);
                     },
                     obs::StatKind::Counter, true);
    }

    // Serving stats exist only when a request stream is configured, so
    // batch stat dumps (and the batch golden suite) are unchanged.
    // Percentiles select at dump time from the full latency log —
    // O(n), observational only.
    if (cfg.serving.enabled()) {
        obs::StatNode &sv = root.child("serving");
        sv.addValue("injected",
                    [this]() {
                        return static_cast<double>(servingInjected);
                    },
                    obs::StatKind::Counter, true);
        sv.addValue("rejected",
                    [this]() {
                        return static_cast<double>(servingRejected);
                    },
                    obs::StatKind::Counter, true);
        sv.addValue("completedDirect",
                    [this]() {
                        return static_cast<double>(servingCompletedDirect);
                    },
                    obs::StatKind::Counter, true);
        sv.addValue("completedRecovered",
                    [this]() {
                        return static_cast<double>(
                            servingCompletedRecovered);
                    },
                    obs::StatKind::Counter, true);
        sv.addValue("sloMisses",
                    [this]() {
                        return static_cast<double>(
                            servingLat.sloMisses());
                    },
                    obs::StatKind::Counter, true);
        sv.addValue("windows",
                    [this]() {
                        return static_cast<double>(servingWindows);
                    },
                    obs::StatKind::Counter, true);
        sv.addFormula("meanNs", [this]() {
            return servingLat.meanTicks() / ticksPerNs;
        });
        sv.addFormula("p50Ns", [this]() {
            return static_cast<double>(servingLat.percentile(0.50))
                / ticksPerNs;
        });
        sv.addFormula("p95Ns", [this]() {
            return static_cast<double>(servingLat.percentile(0.95))
                / ticksPerNs;
        });
        sv.addFormula("p99Ns", [this]() {
            return static_cast<double>(servingLat.percentile(0.99))
                / ticksPerNs;
        });
        sv.addFormula("p999Ns", [this]() {
            return static_cast<double>(servingLat.percentile(0.999))
                / ticksPerNs;
        });
        sv.addFormula("goodputQps", [this]() {
            // Completed-within-SLO requests per simulated second.
            if (lastCompletionTick == 0)
                return 0.0;
            double ok = static_cast<double>(
                servingLat.samples() - servingLat.sloMisses());
            return ok / (static_cast<double>(lastCompletionTick) * 1e-12);
        });
        sv.addFormula("sloMissRate", [this]() {
            // Rejections count as misses: open-loop load shed is load
            // the tenant offered and the machine did not serve in time.
            if (servingInjected == 0)
                return 0.0;
            return static_cast<double>(servingRejected
                                       + servingLat.sloMisses())
                / static_cast<double>(servingInjected);
        });
        std::vector<std::string> tenantNames;
        tenantNames.reserve(cfg.serving.tenants);
        for (std::uint32_t t = 0; t < cfg.serving.tenants; ++t)
            tenantNames.push_back(std::to_string(t));
        sv.addVector("tenantCompleted", tenantNames,
                     [this](std::size_t t) {
                         return static_cast<double>(
                             servingTenantLat[t].samples());
                     },
                     obs::StatKind::Counter, true);
        sv.addVector("tenantP99Ns", tenantNames,
                     [this](std::size_t t) {
                         return static_cast<double>(
                                    servingTenantLat[t].percentile(0.99))
                             / ticksPerNs;
                     },
                     obs::StatKind::Gauge, false);
    }

    // Lb stats exist only when the hierarchical balancer is
    // configured, so classic stat dumps (and every pre-existing
    // golden family) are unchanged.
    if (cfg.lb.enabled) {
        obs::StatNode &lb = root.child("lb");
        lb.addValue("tasksShedIntra",
                    [this]() {
                        return static_cast<double>(tasksShedIntra);
                    },
                    obs::StatKind::Counter, true);
        lb.addValue("tasksShedInter",
                    [this]() {
                        return static_cast<double>(tasksShedInter);
                    },
                    obs::StatKind::Counter, true);
        mem.regLbStats(lb);
    }

    sched.regStats(root.child("sched"));
    mem.network().regStats(root.child("net"));
    mem.regStats(root.child("mem"));

    obs::StatNode &en = root.child("energy");
    const EnergyAccount &ea = energy;
    en.addValue("coreSramPj",
                [&ea]() { return ea.breakdown().coreSramPj; },
                obs::StatKind::Gauge, false);
    en.addValue("dramMemPj",
                [&ea]() { return ea.breakdown().dramMemPj; },
                obs::StatKind::Gauge, false);
    en.addValue("dramCachePj",
                [&ea]() { return ea.breakdown().dramCachePj; },
                obs::StatKind::Gauge, false);
    en.addValue("netPj",
                [&ea]() { return ea.breakdown().netPj; },
                obs::StatKind::Gauge, false);
    en.addValue("staticPj",
                [&ea]() { return ea.breakdown().staticPj; },
                obs::StatKind::Gauge, false);
    en.addValue("totalPj",
                [&ea]() { return ea.breakdown().total(); },
                obs::StatKind::Gauge, false);

    for (UnitId u = 0; u < units.size(); ++u) {
        obs::StatNode &un =
            root.child("unit" + std::to_string(u));
        units[u].regStats(un);
        mem.dram(u).regStats(un.child("dram"));
        if (mem.cachingEnabled())
            mem.traveller(u).regStats(un.child("traveller"));
    }
}

void
NdpSystem::enqueueTask(Task &&task)
{
    abndp_assert(workload != nullptr, "enqueue outside a run");
    // The serving driver injects every task itself (emitInitialTasks
    // is never called), so any enqueue here is a child enqueue from
    // executeTask — and query tasks must be independent: there is no
    // next timestamp for a child to run in.
    if (servingMode)
        panic("serving mode forbids child enqueues: workload ",
              workload->name(), " enqueued a task with func ",
              task.func, " from inside a query execution");
    if (creatorCtx == invalidUnit) {
        abndp_assert(task.timestamp == curEpoch,
                     "initial tasks must carry the current timestamp");
    } else {
        abndp_assert(task.timestamp == curEpoch + 1,
                     "child tasks must carry timestamp + 1");
    }

    Addr main_addr = !task.hint.data.empty() ? task.hint.data[0]
        : (!task.writes.empty() ? task.writes[0] : invalidAddr);
    // Affinity follows the migration-aware mapping (identical to the
    // static map for every design without re-homing).
    task.mainHome = main_addr != invalidAddr
        ? mem.campMapping().homeOf(main_addr)
        : (creatorCtx != invalidUnit ? creatorCtx : 0);
    task.finalizeBlocks(workload->taskArena());
    task.loadEstimate = sched.estimateLoad(task);

    UnitId creator = creatorCtx != invalidUnit ? creatorCtx : task.mainHome;

    if (windowPolicy) {
        // Figure 4: generated tasks enter the creating unit's queue; the
        // scheduling window decides their final placement later, with
        // fresher workload information. Initial tasks have no creating
        // unit: the runtime injects them round-robin so no single unit's
        // scheduler serializes the whole initial batch.
        if (creatorCtx == invalidUnit)
            creator = static_cast<UnitId>(initialSpread++ % units.size());
        sched.onEnqueued(creator, task.loadEstimate, creator);
        units[creator].stagedPending.push_back(std::move(task));
    } else {
        UnitId dst = sched.choose(task, creator);
        sched.onEnqueued(dst, task.loadEstimate, creator);
        units[dst].stagedReady.push_back(std::move(task));
    }
    ++stagedCount;
}

std::uint32_t
NdpSystem::grabFwdSlot(Task &&task)
{
    if (fwdPoolFree.empty()) {
        fwdPool.push_back(std::move(task));
        return static_cast<std::uint32_t>(fwdPool.size() - 1);
    }
    std::uint32_t idx = fwdPoolFree.back();
    fwdPoolFree.pop_back();
    fwdPool[idx] = std::move(task);
    return idx;
}

std::uint32_t
NdpSystem::grabBatchSlot()
{
    if (batchPoolFree.empty()) {
        batchPool.emplace_back();
        return static_cast<std::uint32_t>(batchPool.size() - 1);
    }
    std::uint32_t idx = batchPoolFree.back();
    batchPoolFree.pop_back();
    return idx;
}

void
NdpSystem::pumpScheduler(UnitId u)
{
    auto &unit = units[u];
    if (failuresOn && !faults.isLive(u))
        return;
    if (unit.schedBusy || unit.pending.empty())
        return;
    unit.schedBusy = true;
    // A straggler unit's hardware scorer is clocked down with its cores.
    auto decision = static_cast<Tick>(
        schedDecisionTicks * faults.computeSlowdown(u, eq.now()));
    eq.scheduleIn(decision, [this, u] {
        auto &unit = units[u];
        unit.schedBusy = false;
        // The unit may have died while the decision was in flight; its
        // pending queue was drained by the recovery protocol.
        if (failuresOn && !faults.isLive(u))
            return;
        if (unit.pending.empty())
            return;
        Task task = std::move(unit.pending.front());
        unit.pending.pop_front();

        UnitId dst = sched.choose(task, u);
        if (dst == u) {
            unit.ready.push_back(std::move(task));
            tryDispatch(u);
        } else {
            sched.onForwarded(u, dst, task.loadEstimate, u);
            ++forwardedTasks;
            if (tracer.enabled())
                tracer.record(obs::TraceEvent::TaskForward, u,
                              obs::Tracer::laneSched, eq.now(), 0, dst);
            ++task.forwardHops;
            // Ship the task descriptor to its execution unit. A receiver
            // that knows (from its true local queue) that it was a stale
            // choice may re-forward, up to a small hop budget; this
            // breaks the dogpiles a shared stale snapshot causes.
            bool reexamine = task.forwardHops < maxForwardHops;
            Tick t = eq.now();
            t += mem.network().transfer(u, dst, 32, t).latency;
            if (failuresOn) {
                // Failure-tolerant path: the delivery carries an ack
                // with a timeout; expiry redispatches the task to a
                // live unit (docs/ARCHITECTURE.md).
                auto tr = std::make_shared<TaskTransit>();
                tr->task = std::move(task);
                tr->from = u;
                tr->dst = dst;
                tr->reexamine = reexamine;
                trackDelivery(tr, t);
            } else {
                const std::uint32_t idx = grabFwdSlot(std::move(task));
                auto deliver = [this, idx, dst, reexamine] {
                    Task moved = std::move(fwdPool[idx]);
                    fwdPoolFree.push_back(idx);
                    if (reexamine) {
                        units[dst].pending.push_back(std::move(moved));
                        pumpScheduler(dst);
                    } else {
                        units[dst].ready.push_back(std::move(moved));
                        tryDispatch(dst);
                    }
                };
                // The event kernel stores captures inline with no heap
                // fallback; this forwarding closure (this + pool index
                // + UnitId + bool) is the largest one this file
                // schedules and must fit the fixed slot.
                static_assert(
                    EventQueue::callbackFits<decltype(deliver)>,
                    "NdpSystem forwarding capture no longer fits "
                    "the event kernel's inline slot; grow "
                    "EventQueue::callbackCapacity");
                eq.schedule(t, std::move(deliver));
            }
        }
        pumpScheduler(u);
    });
}

void
NdpSystem::issuePrefetches(UnitId u)
{
    auto &unit = units[u];
    std::uint32_t window = std::min<std::uint32_t>(
        cfg.sched.prefetchWindow,
        static_cast<std::uint32_t>(unit.ready.size()));
    Tick now = eq.now();
    while (unit.prefetchedCount < window) {
        Task &task = unit.ready[unit.prefetchedCount];
        if (!task.prefetched)
            path.prefetchTask(unit, task, now);
        ++unit.prefetchedCount;
    }
}

void
NdpSystem::tryDispatch(UnitId u)
{
    auto &unit = units[u];
    // A down unit dispatches nothing (fail-stop at task granularity:
    // tasks already issued to cores complete, new work is refused).
    if (failuresOn && !faults.isLive(u))
        return;
    for (std::uint32_t c = 0; c < unit.cores.size(); ++c) {
        auto &core = unit.cores[c];
        if (core.busy)
            continue;
        if (unit.ready.empty())
            break;

        issuePrefetches(u);
        Task task = std::move(unit.ready.front());
        unit.ready.pop_front();
        if (unit.prefetchedCount > 0)
            --unit.prefetchedCount;
        sched.onDequeued(u, task.loadEstimate);

        // Functional execution: real computation + child enqueues.
        creatorCtx = u;
        workload->executeTask(task, *this);
        creatorCtx = invalidUnit;

        Tick now = eq.now();
        Tick end = path.executeTask(unit, c, task, now);
        if (end == now)
            end = now + 1; // every task takes at least one tick
        core.busy = true;
        core.activeTicks += end - now;
        epochBusy += end - now;
        ++epochTaskCount;
        if (task.recovered)
            ++epochRecoveredCount;
        ++core.tasksRun;
        ++totalTasks;
        if (tracer.enabled())
            tracer.record(obs::TraceEvent::TaskRun, u,
                          static_cast<std::uint16_t>(c), now, end - now,
                          task.func);

        if (servingMode) {
            // Stash the request identity on the core so the completion
            // event below can record its latency without growing the
            // capture (the task dies with this scope).
            core.servingArrival = task.servingArrival;
            core.servingTenant = task.tenant;
            core.servingRecovered = task.recovered;
        }

        eq.schedule(end, [this, u, c] {
            units[u].cores[c].busy = false;
            abndp_assert(activeRemaining > 0);
            --activeRemaining;
            lastCompletionTick = eq.now();
            if (servingMode)
                recordServedCompletion(u, c);
            tryDispatch(u);
        });
    }

    if (unit.ready.empty() && unit.pending.empty()
        && sched.stealingEnabled() && !unit.stealInFlight
        && activeRemaining > 0) {
        if (unit.anyIdleCore())
            attemptSteal(u);
    }
}

void
NdpSystem::attemptSteal(UnitId u)
{
    auto &unit = units[u];
    ++stealAttempts;

    // Probe a few random victims and steal from the one with the longest
    // queue (work stealing from busier units, Section 2.3).
    constexpr std::uint32_t probes = 4;
    UnitId victim = invalidUnit;
    std::size_t best_len = 0;
    for (std::uint32_t i = 0; i < probes; ++i) {
        auto v = static_cast<UnitId>(unit.rng.below(units.size()));
        if (v == u)
            continue;
        // Never steal from a down unit: its queues were drained by the
        // recovery protocol and it cannot answer the probe.
        if (failuresOn && !faults.isLive(v))
            continue;
        std::size_t len = units[v].ready.size();
        if (len > best_len) {
            best_len = len;
            victim = v;
        }
    }

    if (victim == invalidUnit) {
        // Nothing to steal right now: back off exponentially and retry
        // while the epoch still has work in flight.
        unit.stealBackoff = std::min<Tick>(
            std::max<Tick>(unit.stealBackoff * 2, 500 * ticksPerNs),
            16000 * ticksPerNs);
        unit.stealInFlight = true;
        eq.scheduleIn(unit.stealBackoff, [this, u] {
            units[u].stealInFlight = false;
            if (activeRemaining > 0)
                tryDispatch(u);
        });
        return;
    }

    unit.stealBackoff = 0;
    auto &vic = units[victim];
    std::uint32_t batch = std::min<std::uint32_t>(
        cfg.sched.stealBatch,
        static_cast<std::uint32_t>((best_len + 1) / 2));
    abndp_assert(batch > 0);

    // The batch is built in place: directly in the tracked transit on
    // the failure-tolerant path, or in a recycled pool slot (keeping
    // its vector capacity) on the common path.
    std::shared_ptr<StealTransit> tr;
    std::uint32_t slotIdx = 0;
    if (failuresOn)
        tr = std::make_shared<StealTransit>();
    else
        slotIdx = grabBatchSlot();
    std::vector<Task> &stolen = failuresOn ? tr->batch
                                           : batchPool[slotIdx];
    double load = 0.0;
    for (std::uint32_t i = 0; i < batch && !vic.ready.empty(); ++i) {
        Task t = std::move(vic.ready.back());
        vic.ready.pop_back();
        t.prefetched = false;
        load += t.loadEstimate;
        stolen.push_back(std::move(t));
    }
    vic.prefetchedCount = std::min<std::uint32_t>(
        vic.prefetchedCount, static_cast<std::uint32_t>(vic.ready.size()));
    sched.onStolen(victim, u, load);
    stolenTasks += stolen.size();
    if (tracer.enabled())
        tracer.record(obs::TraceEvent::TaskSteal, u,
                      obs::Tracer::laneSched, eq.now(), 0,
                      (static_cast<std::uint64_t>(victim) << 32)
                          | stolen.size());

    // Round trip: steal request + task descriptors back.
    Tick t = eq.now();
    t += mem.network().transfer(u, victim, PacketSizes::request, t).latency;
    auto desc_bytes = static_cast<std::uint32_t>(16 + 32 * stolen.size());
    t += mem.network().transfer(victim, u, desc_bytes, t).latency;

    unit.stealInFlight = true;
    if (failuresOn) {
        // Tracked delivery: the batch carries an ack with a timeout so
        // a thief that dies with the batch in flight cannot lose it.
        tr->victim = victim;
        tr->thief = u;
        ++acksOutstanding[u];
        eq.schedule(t, [this, tr] {
            if (tr->abandoned)
                return;
            tr->delivered = true;
            --acksOutstanding[tr->thief];
            units[tr->thief].stealInFlight = false;
            if (!faults.isLive(tr->thief)) {
                reinjectStealBatch(tr, false);
                return;
            }
            auto &thief = units[tr->thief];
            for (auto &task : tr->batch)
                thief.ready.push_back(std::move(task));
            tr->batch.clear();
            tryDispatch(tr->thief);
        });
        eq.scheduleIn(faults.ackTimeoutTicks(), [this, tr] {
            if (tr->delivered || tr->abandoned)
                return;
            tr->abandoned = true;
            --acksOutstanding[tr->thief];
            units[tr->thief].stealInFlight = false;
            reinjectStealBatch(tr, true);
        });
        return;
    }
    eq.schedule(t, [this, u, slotIdx] {
        auto &thief = units[u];
        thief.stealInFlight = false;
        auto &delivered = batchPool[slotIdx];
        for (auto &task : delivered)
            thief.ready.push_back(std::move(task));
        delivered.clear();
        batchPoolFree.push_back(slotIdx);
        tryDispatch(u);
    });
}

void
NdpSystem::armFailureTransitions()
{
    Tick now = eq.now();
    Tick fail = faults.failAtTick();
    Tick recover = faults.recoverAtTick();
    if (!unitsDown && (recover == 0 || now < recover)) {
        if (now >= fail) {
            applyUnitFailures();
        } else {
            eq.schedule(fail, [this] {
                if (!unitsDown)
                    applyUnitFailures();
            });
        }
    }
    if (recover != 0) {
        if (unitsDown && now >= recover) {
            applyUnitRecovery();
        } else if (now < recover) {
            eq.schedule(recover, [this] {
                if (unitsDown)
                    applyUnitRecovery();
            });
        }
    }
}

void
NdpSystem::applyUnitFailures()
{
    unitsDown = true;
    everFailed = true;
    for (UnitId dead : faults.failedUnits())
        faults.markDown(dead);
    // Copies homed on a down unit can no longer be kept coherent with
    // its re-homed range: purge them from every camp cache and
    // prefetch buffer. The purges count as evictions, so the occupancy
    // conservation law (src/check) keeps holding mid-epoch.
    if (mem.cachingEnabled())
        for (UnitId dead : faults.failedUnits())
            mem.invalidateHomedOn(dead);
    for (auto &unit : units)
        unit.pb->invalidateMatching([this](Addr block) {
            return !faults.isLive(mem.campMapping().homeOf(block));
        });
    // Drain every dead unit's queues and re-inject the tasks so no
    // work is lost (task conservation under failure).
    for (UnitId dead : faults.failedUnits())
        recoverUnitTasks(dead);
}

void
NdpSystem::applyUnitRecovery()
{
    unitsDown = false;
    for (UnitId dead : faults.failedUnits())
        faults.markUp(dead);
    // The recovered units come back with empty queues; scheduling
    // decisions, steals, and the next exchange snapshot repopulate
    // them. Kick their dispatch loop so they can start stealing now.
    for (UnitId u : faults.failedUnits())
        tryDispatch(u);
}

void
NdpSystem::recoverUnitTasks(UnitId dead)
{
    auto &unit = units[dead];
    unit.prefetchedCount = 0;
    while (!unit.pending.empty()) {
        Task task = std::move(unit.pending.front());
        unit.pending.pop_front();
        reinjectLiveTask(dead, std::move(task));
    }
    while (!unit.ready.empty()) {
        Task task = std::move(unit.ready.front());
        unit.ready.pop_front();
        reinjectLiveTask(dead, std::move(task));
    }
    // Staged (next-epoch) tasks re-stage onto live units keeping their
    // queue kind; staging is bookkeeping, so no delivery events — only
    // the descriptor traffic is modelled.
    UnitId buddy = faults.rehomeOf(dead);
    while (!unit.stagedPending.empty()) {
        Task task = std::move(unit.stagedPending.front());
        unit.stagedPending.pop_front();
        task.recovered = true;
        ++tasksRecovered;
        recoveryTrafficBytes += 32;
        mem.network().transfer(dead, buddy, 32, eq.now());
        sched.onStolen(dead, buddy, task.loadEstimate);
        units[buddy].stagedPending.push_back(std::move(task));
    }
    while (!unit.stagedReady.empty()) {
        Task task = std::move(unit.stagedReady.front());
        unit.stagedReady.pop_front();
        task.recovered = true;
        task.prefetched = false;
        ++tasksRecovered;
        UnitId dst = sched.choose(task, buddy);
        recoveryTrafficBytes += 32;
        mem.network().transfer(dead, dst, 32, eq.now());
        sched.onStolen(dead, dst, task.loadEstimate);
        units[dst].stagedReady.push_back(std::move(task));
    }
}

void
NdpSystem::reinjectLiveTask(UnitId dead, Task task)
{
    task.recovered = true;
    task.prefetched = false;
    ++tasksRecovered;
    UnitId buddy = faults.rehomeOf(dead);
    UnitId dst = sched.choose(task, buddy);
    sched.onStolen(dead, dst, task.loadEstimate);
    recoveryTrafficBytes += 32;
    Tick t = eq.now();
    t += mem.network().transfer(dead, dst, 32, t).latency;
    auto moved = std::make_shared<Task>(std::move(task));
    eq.schedule(t, [this, dst, moved] {
        UnitId target = faults.isLive(dst) ? dst : faults.rehomeOf(dst);
        units[target].ready.push_back(std::move(*moved));
        tryDispatch(target);
    });
}

void
NdpSystem::trackDelivery(std::shared_ptr<TaskTransit> tr, Tick deliverAt)
{
    ++acksOutstanding[tr->dst];
    auto deliver = [this, tr] {
        // A dead receiver never acks; the timeout event recovers.
        if (tr->abandoned || !faults.isLive(tr->dst))
            return;
        tr->delivered = true;
        --acksOutstanding[tr->dst];
        auto &unit = units[tr->dst];
        if (tr->reexamine) {
            unit.pending.push_back(std::move(tr->task));
            pumpScheduler(tr->dst);
        } else {
            unit.ready.push_back(std::move(tr->task));
            tryDispatch(tr->dst);
        }
    };
    static_assert(EventQueue::callbackFits<decltype(deliver)>,
                  "tracked-delivery capture no longer fits the event "
                  "kernel's inline slot");
    eq.schedule(deliverAt, std::move(deliver));
    eq.scheduleIn(faults.ackTimeoutTicks(), [this, tr] {
        if (tr->delivered || tr->abandoned)
            return;
        tr->abandoned = true;
        --acksOutstanding[tr->dst];
        redispatchTask(tr);
    });
}

void
NdpSystem::redispatchTask(std::shared_ptr<TaskTransit> tr)
{
    Task &task = tr->task;
    task.recovered = true;
    if (task.redispatchCount < faults.maxRedispatch())
        ++task.redispatchCount;
    ++tasksRedispatched;
    // Exponential backoff (capped shift) before the resend; the
    // creator's live buddy acts for it if the creator itself is down.
    Tick wait = faults.redispatchBackoffTicks(task.redispatchCount - 1);
    UnitId from = faults.isLive(tr->from) ? tr->from
        : faults.rehomeOf(tr->from);
    eq.scheduleIn(wait, [this, tr, from] {
        auto nt = std::make_shared<TaskTransit>();
        nt->task = std::move(tr->task);
        nt->from = from;
        nt->reexamine = false;
        UnitId dst = sched.choose(nt->task, from);
        sched.onStolen(tr->dst, dst, nt->task.loadEstimate);
        nt->dst = dst;
        recoveryTrafficBytes += 32;
        Tick t = eq.now();
        t += mem.network().transfer(from, dst, 32, t).latency;
        if (nt->task.redispatchCount >= faults.maxRedispatch())
            deliverDirect(nt, t);
        else
            trackDelivery(nt, t);
    });
}

void
NdpSystem::deliverDirect(std::shared_ptr<TaskTransit> tr, Tick deliverAt)
{
    // Unconditional delivery with a live fallback applied at arrival,
    // so a task whose redispatch budget is burnt cannot strand on a
    // unit that died while it was in flight.
    eq.schedule(deliverAt, [this, tr] {
        UnitId dst = tr->dst;
        if (!faults.isLive(dst)) {
            UnitId live = faults.rehomeOf(dst);
            sched.onStolen(dst, live, tr->task.loadEstimate);
            dst = live;
        }
        units[dst].ready.push_back(std::move(tr->task));
        tryDispatch(dst);
    });
}

void
NdpSystem::reinjectStealBatch(std::shared_ptr<StealTransit> tr,
                              bool timedOut)
{
    UnitId from = faults.isLive(tr->thief) ? tr->thief
        : faults.rehomeOf(tr->thief);
    for (auto &task : tr->batch) {
        task.recovered = true;
        task.prefetched = false;
        if (timedOut)
            ++tasksRedispatched;
        else
            ++tasksRecovered;
        UnitId dst = sched.choose(task, from);
        sched.onStolen(tr->thief, dst, task.loadEstimate);
        recoveryTrafficBytes += 32;
        Tick t = eq.now();
        t += mem.network().transfer(from, dst, 32, t).latency;
        auto moved = std::make_shared<Task>(std::move(task));
        eq.schedule(t, [this, dst, moved] {
            UnitId target = faults.isLive(dst) ? dst
                : faults.rehomeOf(dst);
            units[target].ready.push_back(std::move(*moved));
            tryDispatch(target);
        });
    }
    tr->batch.clear();
}

void
NdpSystem::scheduleExchange()
{
    if (exchangeScheduled)
        return;
    exchangeScheduled = true;
    Tick interval = cfg.sched.exchangeIntervalCycles * cfg.ticksPerCycle();
    // Self-rescheduling chain: refresh the snapshot every interval while
    // the current epoch still has live tasks.
    struct Chain
    {
        static void
        arm(NdpSystem &sys, Tick interval)
        {
            sys.eq.scheduleIn(interval, [&sys, interval] {
                sys.sched.exchangeSnapshot(sys.eq.now());
                if (sys.lbOn)
                    sys.runLbExchange();
                if (sys.activeRemaining > 0) {
                    arm(sys, interval);
                } else {
                    sys.exchangeScheduled = false;
                }
            });
        }
    };
    Chain::arm(*this, interval);
}

void
NdpSystem::runLbExchange()
{
    // Snapshot the ready-queue depths — the same information the
    // exchange protocol broadcasts, so consulting it here adds no
    // extra communication beyond the shed commands themselves.
    for (UnitId u = 0; u < units.size(); ++u)
        lbQlen[u] = failuresOn && !faults.isLive(u)
            ? 0
            : static_cast<std::uint32_t>(units[u].ready.size());
    for (const ShedCmd &cmd : lbEngine->planSheds(lbQlen))
        executeShed(cmd);

    // Re-homing rides the same window. Skipped while units are down:
    // a dead home's range is buddy-served, and migrating out of it
    // would race the recovery re-homing (documented simplification).
    if (cfg.lb.migration.enabled && !(failuresOn && unitsDown)) {
        for (const MigrationCmd &m :
                 lbEngine->planMigrations(mem.campMapping()))
            mem.migrateBlock(m.block, m.to, eq.now());
    }
    lbEngine->onWindow();
}

void
NdpSystem::executeShed(const ShedCmd &cmd)
{
    // Mirrors the steal transfer (attemptSteal): pop from the back of
    // the victim's ready queue, one request packet out, descriptors
    // back, pooled batch slot in flight.
    if (failuresOn
        && (!faults.isLive(cmd.victim) || !faults.isLive(cmd.thief)))
        return;
    auto &vic = units[cmd.victim];
    auto count = std::min<std::uint32_t>(
        cmd.count, static_cast<std::uint32_t>(vic.ready.size()));
    if (count == 0)
        return;

    const std::uint32_t slotIdx = grabBatchSlot();
    std::vector<Task> &shed = batchPool[slotIdx];
    double load = 0.0;
    for (std::uint32_t i = 0; i < count; ++i) {
        Task t = std::move(vic.ready.back());
        vic.ready.pop_back();
        t.prefetched = false;
        load += t.loadEstimate;
        shed.push_back(std::move(t));
    }
    vic.prefetchedCount = std::min<std::uint32_t>(
        vic.prefetchedCount,
        static_cast<std::uint32_t>(vic.ready.size()));
    sched.onStolen(cmd.victim, cmd.thief, load);
    (cmd.inter ? tasksShedInter : tasksShedIntra) += count;
    if (tracer.enabled())
        tracer.record(obs::TraceEvent::TaskSteal, cmd.thief,
                      obs::Tracer::laneSched, eq.now(), 0,
                      (static_cast<std::uint64_t>(cmd.victim) << 32)
                          | count);

    Tick t = eq.now();
    t += mem.network().transfer(cmd.thief, cmd.victim,
                                PacketSizes::request, t).latency;
    auto desc_bytes = static_cast<std::uint32_t>(16 + 32 * count);
    t += mem.network().transfer(cmd.victim, cmd.thief, desc_bytes,
                                t).latency;

    const UnitId dst = cmd.thief;
    eq.schedule(t, [this, dst, slotIdx] {
        // The thief may have died with the batch in flight; its live
        // buddy takes the work (same fallback deliverDirect applies).
        UnitId target = failuresOn && !faults.isLive(dst)
            ? faults.rehomeOf(dst) : dst;
        auto &delivered = batchPool[slotIdx];
        for (auto &task : delivered)
            units[target].ready.push_back(std::move(task));
        delivered.clear();
        batchPoolFree.push_back(slotIdx);
        tryDispatch(target);
    });
}

void
NdpSystem::startEpoch(std::uint64_t ts)
{
    curEpoch = ts;
    activeRemaining = 0;
    if (tracer.enabled())
        tracer.record(obs::TraceEvent::EpochBegin,
                      obs::Tracer::systemUnit, 0, eq.now(), 0, ts);
    for (auto &unit : units)
        activeRemaining += unit.beginEpoch();
    stagedCount = 0;

    // Failure/recovery transitions must be re-armed every epoch: the
    // barrier cancelled all pending events. Runs before the exchange
    // snapshot so the first snapshot already sees the liveness mask.
    if (failuresOn)
        armFailureTransitions();

    if (windowPolicy || sched.stealingEnabled() || lbOn) {
        // The barrier is already a global synchronization point, so the
        // workload information exchange piggybacks on it; further
        // exchanges follow every interval within the epoch.
        sched.exchangeSnapshot(eq.now());
        if (lbOn)
            runLbExchange();
        scheduleExchange();
    }

    for (UnitId u = 0; u < units.size(); ++u) {
        pumpScheduler(u);
        tryDispatch(u);
    }
}

void
NdpSystem::dumpStallDiagnostics(const std::string &reason,
                                bool simulatorBug)
{
    std::ostringstream oss;
    oss << reason << "\n";
    oss << "  tick " << eq.now() << " (" << eq.now() / 1000.0
        << " ns), epoch " << curEpoch << ", " << activeRemaining
        << " tasks live, " << eq.size() << " events pending, "
        << eq.executed() << " executed\n";
    if (failuresOn) {
        std::uint32_t unacked = 0;
        for (std::uint32_t a : acksOutstanding)
            unacked += a;
        oss << "  liveness: " << units.size() - faults.downCount()
            << "/" << units.size() << " units live, " << unacked
            << " un-acked deliveries, " << tasksRecovered
            << " tasks recovered, " << tasksRedispatched
            << " redispatched\n";
    }
    oss << "  per-unit queue depths (units with work or busy cores):\n";
    std::uint32_t listed = 0;
    constexpr std::uint32_t maxListed = 32;
    for (UnitId u = 0; u < units.size(); ++u) {
        const auto &unit = units[u];
        std::uint32_t busy = unit.busyCores();
        std::uint32_t unacked = failuresOn ? acksOutstanding[u] : 0;
        bool down = failuresOn && !faults.isLive(u);
        if (unit.pending.empty() && unit.ready.empty() && busy == 0
            && unacked == 0 && !down)
            continue;
        if (++listed > maxListed) {
            oss << "    ... (further units elided)\n";
            break;
        }
        oss << "    unit " << u << ": pending=" << unit.pending.size()
            << " ready=" << unit.ready.size() << " busyCores=" << busy;
        if (unit.schedBusy)
            oss << " schedBusy";
        if (unit.stealInFlight)
            oss << " stealInFlight";
        if (unacked > 0)
            oss << " unackedDeliveries=" << unacked;
        if (down)
            oss << " [down]";
        if (faults.isStraggler(u))
            oss << " [straggler]";
        oss << "\n";
    }
    if (listed == 0)
        oss << "    (none: all queues empty and all cores idle)\n";
    if (simulatorBug)
        panic(oss.str());
    fatal(oss.str());
}

RunMetrics
NdpSystem::run(Workload &wl)
{
    abndp_assert(workload == nullptr,
                 "NdpSystem::run() may be called once");
    return cfg.serving.enabled() ? serveRun(wl) : batchRun(wl);
}

RunMetrics
NdpSystem::batchRun(Workload &wl)
{
    // Host-side self-measurement (simulator throughput). Wall-clock is
    // reporting only and never feeds back into simulation state.
    const auto hostStart = std::chrono::steady_clock::now();
    workload = &wl;
    wl.setup(alloc);

    curEpoch = 0;
    wl.emitInitialTasks(*this);

    std::uint64_t ts = 0;
    std::vector<Tick> epoch_ticks;
    std::vector<Tick> epoch_busy;
    std::vector<std::uint64_t> epoch_tasks;

    // Optional per-epoch trace for offline plotting/debugging.
    std::ofstream trace;
    if (!cfg.traceFile.empty()) {
        trace.open(cfg.traceFile);
        if (!trace)
            fatal("cannot open trace file: ", cfg.traceFile);
        trace << "epoch,start_ns,duration_ns,tasks,busy_ns,interHops,"
                 "campHits,campMisses,forwards,steals\n";
    }
    std::uint64_t prevHops = 0, prevCampHits = 0, prevCampMisses = 0;
    std::uint64_t prevForwards = 0, prevSteals = 0;

    // Per-interval stats dumping (--stats-interval): every N epochs the
    // registry prints the counter deltas since the previous dump.
    std::ofstream statsFile;
    std::ostream *statsOs = nullptr;
    if (cfg.statsInterval > 0) {
        if (!cfg.statsOut.empty()) {
            statsFile.open(cfg.statsOut);
            if (!statsFile)
                fatal("cannot open stats output file: ", cfg.statsOut);
            statsOs = &statsFile;
        } else {
            statsOs = &std::cout;
        }
        statsReg.beginInterval();
    }
    std::uint64_t lastDumpEpoch = 0;
    auto dumpIntervalNow = [&](std::uint64_t upto) {
        statsReg.dumpInterval(
            *statsOs,
            logging_detail::concat("interval epochs [", lastDumpEpoch,
                                   ", ", upto, ") tick ", eq.now()));
        lastDumpEpoch = upto;
    };

    while (stagedCount > 0 && (cfg.maxEpochs == 0 || ts < cfg.maxEpochs)) {
        // Epoch boundary: this epoch's staged hints live in the arena
        // generation children must not share; the generation freed here
        // held epoch ts-2's hints, whose tasks have all completed.
        wl.taskArena().rotate();
        Tick epoch_begin = eq.now();
        eq.armWatchdog();
        // Epoch-start invariants run before startEpoch() dispatches
        // anything (dispatch already touches the caches).
        if (checker)
            checker->onEpochStart(ts, stagedCount);
        startEpoch(ts);
        // Drain the epoch: stop as soon as every task completed so that
        // periodic bookkeeping events (exchange ticks, steal backoffs)
        // cannot stretch the barrier, then cancel them.
        while (activeRemaining > 0) {
            if (!eq.runOne())
                dumpStallDiagnostics(
                    "deadlock: live tasks but no events", true);
            if (eq.watchdogTripped())
                dumpStallDiagnostics(
                    logging_detail::concat(
                        "watchdog: epoch ", ts, " exceeded its budget (",
                        eq.watchdogEvents(), " events, ",
                        eq.watchdogTicks() / 1000, " ns simulated; "
                        "limits: maxEpochEvents=",
                        cfg.fault.watchdog.maxEpochEvents,
                        ", maxEpochTicks=",
                        cfg.fault.watchdog.maxEpochTicks, ")"),
                    false);
        }
        if (checker)
            checker->onEpochEnd(ts, epochTaskCount - epochRecoveredCount,
                                epochRecoveredCount, stagedCount);
        eq.clearPending();
        exchangeScheduled = false;
        for (auto &unit : units)
            unit.resetTransient();
        epoch_ticks.push_back(lastCompletionTick - epoch_begin);
        epoch_busy.push_back(epochBusy);
        epoch_tasks.push_back(epochTaskCount);
        if (trace.is_open()) {
            std::uint64_t hops = mem.network().totalInterHops();
            std::uint64_t chits = mem.campHits();
            std::uint64_t cmiss = mem.campMisses();
            trace << ts << "," << epoch_begin / 1000.0 << ","
                  << (lastCompletionTick - epoch_begin) / 1000.0 << ","
                  << epochTaskCount << "," << epochBusy / 1000.0 << ","
                  << hops - prevHops << "," << chits - prevCampHits
                  << "," << cmiss - prevCampMisses << ","
                  << forwardedTasks - prevForwards << ","
                  << stolenTasks - prevSteals << "\n";
            prevHops = hops;
            prevCampHits = chits;
            prevCampMisses = cmiss;
            prevForwards = forwardedTasks;
            prevSteals = stolenTasks;
        }
        epochBusy = 0;
        epochTaskCount = 0;
        epochRecoveredCount = 0;

        // Bulk-synchronous timestamp boundary: invalidate all cached
        // primary data (tag clear; no writebacks) and apply updates.
        mem.bulkInvalidate();
        for (auto &unit : units)
            unit.invalidatePrimaryData();
        // The barrier is also a time fence: every event of the next
        // epoch is scheduled at or after now(), so meter pages wholly
        // below it are unreachable and their storage can be reclaimed
        // (bounds resident pages to one epoch's backlog window).
        mem.discardBefore(eq.now());
        wl.endEpoch(ts);
        ++ts;
        epochsDone = ts;
        if (cfg.statsInterval > 0 && ts % cfg.statsInterval == 0)
            dumpIntervalNow(ts);
    }

    // Final partial interval, so every epoch is covered by some dump.
    if (cfg.statsInterval > 0 && ts > lastDumpEpoch)
        dumpIntervalNow(ts);

    if (ts == 0)
        warn("workload ", wl.name(), " emitted no initial tasks; zero "
             "epochs were simulated and every metric is zero");

    energy.finalizeStatic(lastCompletionTick);

    RunMetrics m;
    m.ticks = lastCompletionTick;
    m.epochs = ts;
    m.tasks = totalTasks;
    m.epochTicks = std::move(epoch_ticks);
    m.epochBusyTicks = std::move(epoch_busy);
    m.epochTasks = std::move(epoch_tasks);
    m.interHops = mem.network().totalInterHops();
    m.intraTraversals = mem.network().totalIntraTraversals();
    m.energy = energy.breakdown();
    m.campHits = mem.campHits();
    m.campMisses = mem.campMisses();
    m.cacheInserts = mem.cacheInsertions();
    m.readLatMeanNs = mem.readLatencyNs().mean();
    m.readLatMaxNs = mem.readLatencyNs().max();
    m.stealAttempts = stealAttempts;
    m.stolenTasks = stolenTasks;
    m.forwardedTasks = forwardedTasks;
    m.schedDecisions = sched.decisions();
    for (UnitId u = 0; u < units.size(); ++u) {
        const auto &unit = units[u];
        m.pbHits += unit.pb->hits();
        m.pbLateHits += unit.pb->lateHits();
        m.pbMisses += unit.pb->misses();
        for (const auto &core : unit.cores) {
            m.coreActiveTicks.push_back(core.activeTicks);
            m.l1Hits += core.l1d->hits();
            m.l1Misses += core.l1d->misses();
        }
        m.dramReads += mem.dram(u).reads();
        m.dramWrites += mem.dram(u).writes();
        m.dramRowMisses += mem.dram(u).rowMisses();
        m.dramRowHits += mem.dram(u).rowHits();
        m.dramActStalls += mem.dram(u).actStalls();
        m.dramEccRetries += mem.dram(u).eccRetries();
    }
    m.netDropped = mem.network().totalDropped();
    m.netRetries = mem.network().totalRetries();
    m.unitsFailed = everFailed
        ? static_cast<std::uint64_t>(faults.failedUnits().size())
        : 0;
    m.tasksRecovered = tasksRecovered;
    m.tasksRedispatched = tasksRedispatched;
    m.recoveryTrafficBytes = recoveryTrafficBytes;
    m.tasksShedIntra = tasksShedIntra;
    m.tasksShedInter = tasksShedInter;
    m.blocksMigrated = mem.blocksMigrated();
    m.migrationInvalidations = mem.migrationInvalidations();
    m.migrationTrafficBytes = mem.migrationTrafficBytes();
    m.simEvents = eq.executed();

    if (checker)
        checker->onRunEnd(m);

    if (!cfg.traceOut.empty()) {
        std::ofstream tf(cfg.traceOut);
        if (!tf)
            fatal("cannot open trace output file: ", cfg.traceOut);
        tracer.exportChromeJson(tf);
    }

    m.hostSeconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - hostStart).count();
    return m;
}

void
NdpSystem::injectServingTask(Task &&task)
{
    Addr main_addr = !task.hint.data.empty() ? task.hint.data[0]
        : (!task.writes.empty() ? task.writes[0] : invalidAddr);
    task.mainHome = main_addr != invalidAddr
        ? mem.campMapping().homeOf(main_addr) : 0;
    // No finalizeBlocks(): serving tasks outlive every epoch-arena
    // generation, so blocks stays empty (the access path derives the
    // block list from the hint) and only hintLines is memoized.
    task.hintLines = task.hint.totalLines();
    task.loadEstimate = sched.estimateLoad(task);
    ++activeRemaining;

    if (windowPolicy) {
        // Figure-4 path, without the staging detour: arrivals have no
        // creating unit, so they spread round-robin into live pending
        // queues and the scheduling window places them from there.
        auto creator =
            static_cast<UnitId>(initialSpread++ % units.size());
        if (failuresOn && !faults.isLive(creator))
            creator = faults.rehomeOf(creator);
        sched.onEnqueued(creator, task.loadEstimate, creator);
        units[creator].pending.push_back(std::move(task));
        pumpScheduler(creator);
    } else {
        UnitId dst = sched.choose(task, task.mainHome);
        if (failuresOn && !faults.isLive(dst))
            dst = faults.rehomeOf(dst);
        sched.onEnqueued(dst, task.loadEstimate, task.mainHome);
        units[dst].ready.push_back(std::move(task));
        tryDispatch(dst);
    }
}

void
NdpSystem::serveArrival()
{
    const ServingConfig &sc = cfg.serving;
    // Tenant and key are drawn for every arrival, admitted or not, so
    // admission decisions can never shift the stream's draw sequence.
    Rng &krng = srv->arrivals.keyRng();
    std::uint8_t tenant = sc.tenants > 1 ? srv->tenantFor(krng.uniform())
                                         : 0;
    std::uint64_t key = srv->zipf(krng);
    ++servingInjected;

    if (sc.maxOutstanding == 0 || activeRemaining < sc.maxOutstanding) {
        Task task = srv->svc->makeQueryTask(key, srv->admitted++);
        task.servingArrival = eq.now();
        task.tenant = tenant;
        injectServingTask(std::move(task));
    } else {
        ++servingRejected;
    }

    if (servingInjected < sc.requests)
        eq.schedule(srv->arrivals.nextArrival(eq.now()),
                    [this] { serveArrival(); });
}

void
NdpSystem::armServingWindow(Tick interval)
{
    // The serving analogue of the epoch boundary, minus the barrier:
    // the watchdog budget re-arms, the schedulers refresh their
    // exchange snapshot, and wholly-past meter pages are reclaimed
    // (every future event books bandwidth at t >= now, so pages below
    // now are unreachable — the same argument the batch barrier uses).
    // Nothing drains, and no cache is invalidated: primary data is
    // read-only under serving, so there is no timestamp boundary.
    eq.scheduleIn(interval, [this, interval] {
        ++servingWindows;
        eq.armWatchdog();
        if (windowPolicy || sched.stealingEnabled())
            sched.exchangeSnapshot(eq.now());
        if (lbOn)
            runLbExchange();
        mem.discardBefore(eq.now());
        armServingWindow(interval);
    });
}

void
NdpSystem::recordServedCompletion(UnitId u, std::uint32_t c)
{
    const CoreState &core = units[u].cores[c];
    Tick latency = eq.now() - core.servingArrival;
    servingLat.record(latency);
    servingTenantLat[core.servingTenant].record(latency);
    if (core.servingRecovered)
        ++servingCompletedRecovered;
    else
        ++servingCompletedDirect;
}

RunMetrics
NdpSystem::serveRun(Workload &wl)
{
    const auto hostStart = std::chrono::steady_clock::now();
    workload = &wl;
    auto *svc = dynamic_cast<QueryService *>(&wl);
    if (svc == nullptr)
        fatal("workload ", wl.name(), " cannot be served: it does not "
              "implement QueryService (point-query serving needs kv, "
              "knn, sssp, or astar)");
    servingMode = true;

    wl.setup(alloc);
    const ServingConfig &sc = cfg.serving;
    abndp_assert(svc->keySpace() > 0, "empty key space after setup");
    svc->beginServing(sc.requests);
    srv = std::make_unique<ServeState>(sc, cfg.seed, svc->keySpace(),
                                       svc);
    servingLat.reserve(sc.requests);

    curEpoch = 0;
    eq.armWatchdog();
    if (failuresOn)
        armFailureTransitions();
    if (windowPolicy || sched.stealingEnabled())
        sched.exchangeSnapshot(eq.now());
    // No lb exchange here: the queues are empty until the first
    // arrival, so the first useful window is the armed one below.
    armServingWindow(cfg.sched.exchangeIntervalCycles
                     * cfg.ticksPerCycle());
    eq.schedule(srv->arrivals.nextArrival(eq.now()),
                [this] { serveArrival(); });

    // Drive the open loop: run until the stream is exhausted and every
    // admitted request completed. There is no drain barrier in between
    // — new arrivals keep injecting while earlier requests execute.
    while (activeRemaining > 0 || servingInjected < sc.requests) {
        if (!eq.runOne())
            dumpStallDiagnostics(
                "deadlock: serving stream live but no events", true);
        if (eq.watchdogTripped())
            dumpStallDiagnostics(
                logging_detail::concat(
                    "watchdog: serving window exceeded its budget (",
                    eq.watchdogEvents(), " events, ",
                    eq.watchdogTicks() / 1000, " ns simulated; limits: "
                    "maxEpochEvents=",
                    cfg.fault.watchdog.maxEpochEvents,
                    ", maxEpochTicks=",
                    cfg.fault.watchdog.maxEpochTicks,
                    "); the open-loop arrival rate may exceed what "
                    "this design can sustain"),
                false);
    }
    // Only bookkeeping chains remain (windows, steal backoffs).
    eq.clearPending();

    energy.finalizeStatic(lastCompletionTick);

    RunMetrics m;
    m.ticks = lastCompletionTick;
    m.epochs = servingWindows;
    m.tasks = totalTasks;
    m.interHops = mem.network().totalInterHops();
    m.intraTraversals = mem.network().totalIntraTraversals();
    m.energy = energy.breakdown();
    m.campHits = mem.campHits();
    m.campMisses = mem.campMisses();
    m.cacheInserts = mem.cacheInsertions();
    m.readLatMeanNs = mem.readLatencyNs().mean();
    m.readLatMaxNs = mem.readLatencyNs().max();
    m.stealAttempts = stealAttempts;
    m.stolenTasks = stolenTasks;
    m.forwardedTasks = forwardedTasks;
    m.schedDecisions = sched.decisions();
    for (UnitId u = 0; u < units.size(); ++u) {
        const auto &unit = units[u];
        m.pbHits += unit.pb->hits();
        m.pbLateHits += unit.pb->lateHits();
        m.pbMisses += unit.pb->misses();
        for (const auto &core : unit.cores) {
            m.coreActiveTicks.push_back(core.activeTicks);
            m.l1Hits += core.l1d->hits();
            m.l1Misses += core.l1d->misses();
        }
        m.dramReads += mem.dram(u).reads();
        m.dramWrites += mem.dram(u).writes();
        m.dramRowMisses += mem.dram(u).rowMisses();
        m.dramRowHits += mem.dram(u).rowHits();
        m.dramActStalls += mem.dram(u).actStalls();
        m.dramEccRetries += mem.dram(u).eccRetries();
    }
    m.netDropped = mem.network().totalDropped();
    m.netRetries = mem.network().totalRetries();
    m.unitsFailed = everFailed
        ? static_cast<std::uint64_t>(faults.failedUnits().size())
        : 0;
    m.tasksRecovered = tasksRecovered;
    m.tasksRedispatched = tasksRedispatched;
    m.recoveryTrafficBytes = recoveryTrafficBytes;
    m.tasksShedIntra = tasksShedIntra;
    m.tasksShedInter = tasksShedInter;
    m.blocksMigrated = mem.blocksMigrated();
    m.migrationInvalidations = mem.migrationInvalidations();
    m.migrationTrafficBytes = mem.migrationTrafficBytes();
    m.simEvents = eq.executed();

    m.servingInjected = servingInjected;
    m.servingRejected = servingRejected;
    m.servingCompletedDirect = servingCompletedDirect;
    m.servingCompletedRecovered = servingCompletedRecovered;
    m.servingSloMisses = servingLat.sloMisses();
    m.servingWindows = servingWindows;
    m.servingP50Ns =
        static_cast<double>(servingLat.percentile(0.50)) / ticksPerNs;
    m.servingP95Ns =
        static_cast<double>(servingLat.percentile(0.95)) / ticksPerNs;
    m.servingP99Ns =
        static_cast<double>(servingLat.percentile(0.99)) / ticksPerNs;
    m.servingP999Ns =
        static_cast<double>(servingLat.percentile(0.999)) / ticksPerNs;
    m.servingMeanNs = servingLat.meanTicks() / ticksPerNs;
    if (lastCompletionTick > 0) {
        double ok = static_cast<double>(servingLat.samples()
                                        - servingLat.sloMisses());
        m.servingGoodputQps =
            ok / (static_cast<double>(lastCompletionTick) * 1e-12);
    }
    if (servingInjected > 0)
        m.servingSloMissRate =
            static_cast<double>(servingRejected + servingLat.sloMisses())
            / static_cast<double>(servingInjected);

    if (checker)
        checker->onRunEnd(m);

    if (!cfg.traceOut.empty()) {
        std::ofstream tf(cfg.traceOut);
        if (!tf)
            fatal("cannot open trace output file: ", cfg.traceOut);
        tracer.exportChromeJson(tf);
    }

    m.hostSeconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - hostStart).count();
    return m;
}

} // namespace abndp
