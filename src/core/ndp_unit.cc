#include "core/ndp_unit.hh"

#include <string>

#include "common/logging.hh"

namespace abndp
{

void
NdpUnit::init(const SystemConfig &cfg, UnitId id)
{
    unitId = id;
    std::uint64_t pb_blocks = cfg.prefetchBufBytes / cachelineBytes;
    pb = std::make_unique<PrefetchBuffer>(pb_blocks);
    rng.reseed(mix64(cfg.seed ^ (0x2000ull + id)));
    cores.resize(cfg.coresPerUnit);
    for (std::uint32_t c = 0; c < cfg.coresPerUnit; ++c) {
        cores[c].l1d = std::make_unique<SetAssocCache>(
            cfg.l1d, mix64(cfg.seed ^ (0x3000ull + id * 16 + c)));
        cores[c].l1i = std::make_unique<SetAssocCache>(
            cfg.l1i, mix64(cfg.seed ^ (0x5000ull + id * 16 + c)));
        cores[c].tlb = std::make_unique<SetAssocCache>(
            cfg.tlb.entries / cfg.tlb.assoc, cfg.tlb.assoc,
            ReplPolicy::Lru);
    }
}

std::uint64_t
NdpUnit::beginEpoch()
{
    abndp_assert(ready.empty() && pending.empty(),
                 "previous epoch not drained");
    // Swap, don't move: the drained live queues hand their buffers
    // to the staging side, so steady-state epochs allocate nothing.
    pending.swap(stagedPending);
    ready.swap(stagedReady);
    stagedPending.clear();
    stagedReady.clear();
    // The scheduling window drains pending into ready over the epoch.
    ready.reserve(ready.size() + pending.size());
    prefetchedCount = 0;
    stealBackoff = 0;
    return pending.size() + ready.size();
}

void
NdpUnit::resetTransient()
{
    stealInFlight = false;
    schedBusy = false;
    stealBackoff = 0;
}

void
NdpUnit::invalidatePrimaryData()
{
    pb->invalidateAll();
    for (auto &core : cores)
        core.l1d->invalidateAll();
}

bool
NdpUnit::anyIdleCore() const
{
    bool any_idle = false;
    for (const auto &core : cores)
        any_idle |= !core.busy;
    return any_idle;
}

std::uint32_t
NdpUnit::busyCores() const
{
    std::uint32_t busy = 0;
    for (const auto &core : cores)
        busy += core.busy ? 1 : 0;
    return busy;
}

std::uint64_t
NdpUnit::tasksRun() const
{
    std::uint64_t n = 0;
    for (const auto &core : cores)
        n += core.tasksRun;
    return n;
}

void
NdpUnit::regStats(obs::StatNode &node) const
{
    for (std::uint32_t c = 0; c < cores.size(); ++c) {
        obs::StatNode &cn = node.child("core" + std::to_string(c));
        const CoreState &core = cores[c];
        cn.addValue("tasksRun",
                    [&core]() {
                        return static_cast<double>(core.tasksRun);
                    },
                    obs::StatKind::Counter, true);
        cn.addValue("activeTicks",
                    [&core]() {
                        return static_cast<double>(core.activeTicks);
                    },
                    obs::StatKind::Counter, true);
        core.l1d->regStats(cn.child("l1d"));
        core.l1i->regStats(cn.child("l1i"));
        core.tlb->regStats(cn.child("tlb"));
    }
    pb->regStats(node.child("pb"));
}

} // namespace abndp
