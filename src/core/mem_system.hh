/**
 * @file
 * The NDP memory system: per-unit DRAM channels (each a pluggable
 * MemBackend — meter or bank-state DDR timing), the distributed
 * Traveller Cache (or its Figure-13 alternatives), and the interconnect,
 * glued together by the end-to-end access flow of paper Section 4.4.
 * The access flow and servedLevel semantics are backend-independent;
 * only the per-access latency model changes with cfg.dram.backend.
 */

#ifndef ABNDP_CORE_MEM_SYSTEM_HH
#define ABNDP_CORE_MEM_SYSTEM_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/camp_mapping.hh"
#include "cache/traveller_cache.hh"
#include "common/config.hh"
#include "core/access_types.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "energy/energy.hh"
#include "fault/fault_model.hh"
#include "mem/address_map.hh"
#include "mem/mem_backend.hh"
#include "net/network.hh"
#include "net/topology.hh"
#include "obs/stats_registry.hh"
#include "obs/trace.hh"
#include "sched/lb/data_hotness.hh"
#include "sched/lb/home_indirection.hh"

namespace abndp
{

/** Distributed memory + camp cache + interconnect access engine. */
class MemSystem
{
  public:
    /**
     * @param faults optional fault-injection engine, forwarded to the
     *               interconnect (link faults) and the DRAM channels
     *               (ECC retries, straggler bandwidth derating).
     * @param tracer optional event tracer, forwarded to the interconnect
     *               and used for camp hit/miss events.
     */
    MemSystem(const SystemConfig &cfg, const Topology &topo,
              const AddressMap &amap, EnergyAccount &energy,
              FaultModel *faults = nullptr,
              obs::Tracer *tracer = nullptr);

    /**
     * Serve one block-read descriptor, following the Traveller access
     * flow: probe the nearest camp (if caching is on), fall through to
     * the home on a miss, and probabilistically insert. The result
     * carries the latency until the data arrives back at the requester
     * and which level served it.
     */
    AccessResult read(const AccessRequest &req);

    /**
     * Latency-only convenience wrapper around read() for callers that
     * do not care which level served the block.
     */
    Tick readBlock(UnitId u, Addr addr, Tick start);

    /**
     * Posted write of one block from unit @p u: bypasses all caches and
     * goes straight to the home memory (Section 4.4). Reserves resources
     * and accounts energy; the issuing core does not stall.
     */
    void writeBlock(UnitId u, Addr addr, Tick start);

    /** Bulk-invalidate every unit's camp cache (end of timestamp). */
    void bulkInvalidate();

    /**
     * Hotness-driven re-homing (src/sched/lb): move ownership of
     * @p block to unit @p to. Ships one data packet from the current
     * home, pays a DRAM read there and a write at the new home,
     * sweeps every camp cache for stale copies of the block (the
     * Traveller's camp locations are derived from the home), and
     * records the move in the indirection overlay consulted by
     * CampMapping::homeOf(). Traffic and energy are charged to the
     * meters; no task blocks on the move (re-homing rides the
     * exchange window).
     */
    void migrateBlock(Addr block, UnitId to, Tick now);

    /**
     * Barrier-time storage reclamation: retire bandwidth-meter pages
     * that no reservation can reach anymore. Called with the barrier
     * tick (every post-barrier access starts at or after it); forwards
     * to every DRAM channel (per-bank refresh floor applies there) and
     * the interconnect. Purely a memory-footprint optimization — the
     * timing and stats of every subsequent reservation are identical.
     */
    void
    discardBefore(Tick tb)
    {
        for (auto &d : drams)
            d->discardBefore(tb);
        net.discardBefore(tb);
    }

    /**
     * Unit-failure support: drop every camp-cache block whose home is
     * @p dead (its copies can no longer be revalidated once the home
     * range is re-homed onto a buddy).
     * @return the total number of blocks dropped across all camps.
     */
    std::uint64_t invalidateHomedOn(UnitId dead);

    Network &network() { return net; }
    const Network &network() const { return net; }
    const CampMapping &campMapping() const { return camps; }
    MemBackend &dram(UnitId u) { return *drams[u]; }
    TravellerCache &traveller(UnitId u) { return *campCaches[u]; }
    bool cachingEnabled() const { return style != CacheStyle::None; }

    std::uint64_t campHits() const { return nCampHits.value(); }
    std::uint64_t campMisses() const { return nCampMisses.value(); }
    std::uint64_t homeDirectReads() const { return nHomeDirect.value(); }
    std::uint64_t cacheInsertions() const { return nInserts.value(); }

    // Migration accounting (all zero when lb is unconfigured).
    std::uint64_t blocksMigrated() const { return nMigrated.value(); }
    std::uint64_t migrationInvalidations() const
    {
        return nMigrationInvalidations.value();
    }
    std::uint64_t migrationTrafficBytes() const
    {
        return nMigrationTraffic.value();
    }
    const HomeIndirection &homeIndirection() const { return indirection; }

    /**
     * Attach the lb engine's hot-block tracker: remote reads start
     * recording (home, block, requester) evidence. Null (the default)
     * keeps the read path free of any hotness work.
     */
    void setHotnessTracker(DataHotness *h) { hotness = h; }

    /** Distribution of end-to-end block read latencies (ns). */
    const stats::Distribution &readLatencyNs() const { return latencyNs; }

    /** Histogram of end-to-end block read latencies (ns). */
    const stats::Histogram &readLatencyHistNs() const { return latencyHist; }

    /** Register memory-system-level stats under @p node. */
    void regStats(obs::StatNode &node) const;

    /**
     * Register migration stats under @p node. Separate from
     * regStats() so NdpSystem only adds these lines under designs
     * that configure the lb — classic stats dumps stay byte-
     * identical.
     */
    void regLbStats(obs::StatNode &node) const;

    /** Debug: per-block read counts (populated when ABNDP_READ_HIST=1). */
    const std::unordered_map<Addr, std::uint64_t> &readHist() const
    {
        return debugReadHist;
    }

  private:
    /** Plain home access without any camp involvement. */
    Tick homeRead(UnitId u, UnitId home, Addr addr, Tick start);

    /**
     * read() body; the public wrapper samples latency stats.
     * @p served reports the serving level (observational only).
     */
    Tick readBlockImpl(UnitId u, Addr addr, Tick start,
                       AccessLevel &served);

    /**
     * Effective home of @p addr: the mapped home while it is live, its
     * live buddy (FaultModel::rehomeOf) while the home unit is down.
     * Exact identity whenever no unit failure is active.
     */
    UnitId
    liveHomeOf(Addr addr) const
    {
        UnitId home = camps.homeOf(addr);
        if (faults && faults->anyUnitDown() && !faults->isLive(home))
            return faults->rehomeOf(home);
        return home;
    }

    const SystemConfig &cfg;
    const Topology &topo;
    const AddressMap &amap;
    EnergyAccount &energy;
    FaultModel *faults;

    Network net;
    CampMapping camps;
    CacheStyle style;
    obs::Tracer *tracer;

    /** Re-homing overlay (migration); empty unless blocks moved. */
    HomeIndirection indirection;
    /** Hot-block tracker owned by the lb engine; null without lb. */
    DataHotness *hotness = nullptr;

    std::vector<std::unique_ptr<MemBackend>> drams;
    std::vector<std::unique_ptr<TravellerCache>> campCaches;

    /** SRAM tag-check latency at a camp location. */
    Tick tagCheckTicks;
    /** Pure-SRAM data cache access latency (Figure 13 variant). */
    Tick sramDataTicks;

    stats::Counter nCampHits;
    stats::Counter nCampMisses;
    stats::Counter nHomeDirect;
    stats::Counter nInserts;
    stats::Counter nMigrated;
    stats::Counter nMigrationInvalidations;
    stats::Counter nMigrationTraffic;
    stats::Distribution latencyNs;
    stats::Histogram latencyHist;
    bool traceReads = false;
    std::unordered_map<Addr, std::uint64_t> debugReadHist;
};

} // namespace abndp

#endif // ABNDP_CORE_MEM_SYSTEM_HH
