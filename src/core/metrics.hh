/**
 * @file
 * Metrics collected from one simulated run; the raw material for every
 * table and figure of the evaluation.
 */

#ifndef ABNDP_CORE_METRICS_HH
#define ABNDP_CORE_METRICS_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "energy/energy.hh"

namespace abndp
{

/** Everything measured during one workload run on one system design. */
struct RunMetrics
{
    /** End-to-end execution time in ticks (1 tick = 1 ps). */
    Tick ticks = 0;
    std::uint64_t epochs = 0;
    std::uint64_t tasks = 0;

    /** Figure-8 metric: total inter-stack mesh hops of all packets. */
    std::uint64_t interHops = 0;
    std::uint64_t intraTraversals = 0;

    EnergyBreakdown energy;

    /** Figure-9 metric: busy ticks of every core. */
    std::vector<Tick> coreActiveTicks;

    /** Duration of each bulk-synchronous epoch. */
    std::vector<Tick> epochTicks;
    /** Total core-busy ticks accumulated in each epoch. */
    std::vector<Tick> epochBusyTicks;
    /** Tasks executed in each epoch. */
    std::vector<std::uint64_t> epochTasks;

    // Cache behaviour.
    std::uint64_t campHits = 0;
    std::uint64_t campMisses = 0;
    std::uint64_t cacheInserts = 0;
    std::uint64_t pbHits = 0;
    std::uint64_t pbLateHits = 0;
    std::uint64_t pbMisses = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;

    // Scheduling behaviour.
    std::uint64_t stealAttempts = 0;
    std::uint64_t stolenTasks = 0;
    std::uint64_t forwardedTasks = 0;
    std::uint64_t schedDecisions = 0;

    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    std::uint64_t dramRowMisses = 0;
    /** Accesses served out of an already-open row. */
    std::uint64_t dramRowHits = 0;
    /** ACTs delayed by the channel tFAW window (DdrBackend only). */
    std::uint64_t dramActStalls = 0;

    // Fault injection (all zero when no faults are configured).
    /** Transmission attempts lost on injected faulty mesh links. */
    std::uint64_t netDropped = 0;
    /** Retransmissions issued to repair faulty-link drops. */
    std::uint64_t netRetries = 0;
    /** DRAM accesses that paid an injected ECC-retry cycle. */
    std::uint64_t dramEccRetries = 0;

    // Unit-failure recovery (all zero when no unit failure is
    // configured; see docs/ARCHITECTURE.md).
    /** Units that went down at least once during the run. */
    std::uint64_t unitsFailed = 0;
    /** Tasks drained from failing units' queues and re-injected. */
    std::uint64_t tasksRecovered = 0;
    /** Forward/steal deliveries redispatched after an ack timeout. */
    std::uint64_t tasksRedispatched = 0;
    /** Bytes shipped by the recovery protocol (drains + redispatch). */
    std::uint64_t recoveryTrafficBytes = 0;

    // Online serving (all zero in batch runs; see docs/ARCHITECTURE.md).
    /** Requests the open-loop arrival process generated. */
    std::uint64_t servingInjected = 0;
    /** Arrivals refused by admission control (maxOutstanding). */
    std::uint64_t servingRejected = 0;
    /** Admitted requests completed without recovery involvement. */
    std::uint64_t servingCompletedDirect = 0;
    /** Admitted requests completed after the recovery protocol. */
    std::uint64_t servingCompletedRecovered = 0;
    /** Completed requests whose latency exceeded the SLO. */
    std::uint64_t servingSloMisses = 0;
    /** Stats/exchange windows elapsed (the serving "epochs"). */
    std::uint64_t servingWindows = 0;
    /** Exact nearest-rank latency percentiles, in nanoseconds. */
    double servingP50Ns = 0.0;
    double servingP95Ns = 0.0;
    double servingP99Ns = 0.0;
    double servingP999Ns = 0.0;
    double servingMeanNs = 0.0;
    /** Completed-within-SLO requests per second of simulated time. */
    double servingGoodputQps = 0.0;
    /** (rejected + SLO misses) / injected. */
    double servingSloMissRate = 0.0;

    // Hierarchical load balancing + migration (all zero when lb is
    // unconfigured; see docs/ARCHITECTURE.md).
    /** Tasks shed by the intra-stack (crossbar) balancer tier. */
    std::uint64_t tasksShedIntra = 0;
    /** Tasks shed by the inter-stack (mesh) balancer tier. */
    std::uint64_t tasksShedInter = 0;
    /** Blocks re-homed by the migration engine. */
    std::uint64_t blocksMigrated = 0;
    /** Stale-location Traveller sweeps issued by migrations. */
    std::uint64_t migrationInvalidations = 0;
    /** Bytes shipped moving re-homed blocks between units. */
    std::uint64_t migrationTrafficBytes = 0;

    /** End-to-end block read latency (ns) seen below the L1/buffers. */
    double readLatMeanNs = 0.0;
    double readLatMaxNs = 0.0;

    // ---- Simulator self-measurement ----
    /** Kernel events executed during the run (deterministic). */
    std::uint64_t simEvents = 0;
    /**
     * Host wall-clock seconds spent inside run(). Reporting only — the
     * one sanctioned use of wall time; it never feeds simulation state
     * and is excluded from determinism comparisons.
     */
    double hostSeconds = 0.0;

    /** Simulator throughput: kernel events per host second. */
    double
    eventsPerSec() const
    {
        return hostSeconds > 0.0 ? simEvents / hostSeconds : 0.0;
    }

    /** Fraction of core-time spent busy (mean over cores). */
    double
    utilization() const
    {
        return ticks > 0 && !coreActiveTicks.empty()
            ? meanCoreActive() / static_cast<double>(ticks)
            : 0.0;
    }

    double seconds() const { return static_cast<double>(ticks) * 1e-12; }

    /** Busy ticks of the busiest core (load imbalance indicator). */
    Tick
    maxCoreActive() const
    {
        Tick m = 0;
        for (Tick t : coreActiveTicks)
            m = std::max(m, t);
        return m;
    }

    /** Mean busy ticks over all cores. */
    double
    meanCoreActive() const
    {
        if (coreActiveTicks.empty())
            return 0.0;
        double s = 0.0;
        for (Tick t : coreActiveTicks)
            s += static_cast<double>(t);
        return s / coreActiveTicks.size();
    }

    /** Ratio busiest/mean; 1.0 means perfectly balanced. */
    double
    imbalance() const
    {
        double mean = meanCoreActive();
        return mean > 0.0 ? maxCoreActive() / mean : 0.0;
    }

    double
    campHitRate() const
    {
        auto total = campHits + campMisses;
        return total ? static_cast<double>(campHits) / total : 0.0;
    }
};

} // namespace abndp

#endif // ABNDP_CORE_METRICS_HH
