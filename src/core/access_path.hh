/**
 * @file
 * The unified access path: every block a task touches flows through
 * the same chain — prefetch buffer, private L1-D, TLB translation,
 * then the Traveller/DRAM memory system — driven by one
 * AccessRequest descriptor per block (Section 4.4).
 *
 * AccessPath owns the task-granularity timing walk (instruction
 * fetch, translation, demand misses with a bounded miss pipeline) and
 * the hint-prefetch issue path, which previously lived hand-threaded
 * inside the epoch engine. An optional per-level completion observer
 * reports which level served each block; like everything under obs::,
 * it is observational only — nothing it computes may feed back into
 * timing or an Rng stream.
 */

#ifndef ABNDP_CORE_ACCESS_PATH_HH
#define ABNDP_CORE_ACCESS_PATH_HH

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/config.hh"
#include "core/access_types.hh"
#include "core/mem_system.hh"
#include "core/ndp_unit.hh"
#include "energy/energy.hh"
#include "fault/fault_model.hh"
#include "tasking/task.hh"

namespace abndp
{

/** Core-to-DRAM access chain shared by all units. */
class AccessPath
{
  public:
    /**
     * Called when a level completes a request: the descriptor, the
     * level that served it, and the completion tick. Observational
     * only (see file comment).
     */
    using LevelObserver =
        std::function<void(const AccessRequest &, AccessLevel, Tick)>;

    AccessPath(const SystemConfig &cfg, MemSystem &mem,
               EnergyAccount &energy, const FaultModel &faults);

    /**
     * The task's sorted deduplicated block addresses: the list memoized
     * by Task::finalizeBlocks() when present, otherwise derived into
     * scratch (hand-built test tasks bypass the enqueue path). The span
     * is valid until the next taskBlocks() call.
     */
    std::span<const Addr> taskBlocks(const Task &task);

    /** Per-task prefetch quota in blocks (buffer size / window). */
    std::uint32_t prefetchQuota() const { return quota; }

    /**
     * Issue hint prefetches for @p task on @p unit: fetch every hint
     * block not already buffered or resident in a core's L1, up to
     * the quota; larger hints finish on demand.
     */
    void prefetchTask(NdpUnit &unit, Task &task, Tick now);

    /**
     * Timing model for @p task executing on @p unit's core
     * @p coreIdx from @p start.
     * @return the completion tick.
     */
    Tick executeTask(NdpUnit &unit, std::uint32_t coreIdx,
                     const Task &task, Tick start);

    /** Install (or clear, with nullptr) the per-level observer. */
    void setLevelObserver(LevelObserver obs) { observer = std::move(obs); }

  private:
    void
    notify(const AccessRequest &req, AccessLevel level, Tick done) const
    {
        if (observer)
            observer(req, level, done);
    }

    const SystemConfig &cfg;
    MemSystem &mem;
    EnergyAccount &energy;
    const FaultModel &faults;

    /** Per-task prefetch quota in blocks. */
    std::uint32_t quota;
    Tick pbHitTicks;
    Tick l1HitTicks;
    Tick tlbMissTicks;
    Tick l1iMissTicks;
    std::uint32_t pageShift;

    /** Scratch for per-task block deduplication. */
    std::vector<Addr> blockScratch;

    LevelObserver observer;
};

} // namespace abndp

#endif // ABNDP_CORE_ACCESS_PATH_HH
