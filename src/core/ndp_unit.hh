/**
 * @file
 * One NDP unit as a first-class simulated component: its in-order
 * cores (each with private L1-D/L1-I/TLB), the Figure-4 task queues
 * with their scheduling and prefetch windows, and the per-unit
 * prefetch buffer.
 *
 * The queue fields are deliberately public: the epoch engine
 * (NdpSystem), the scheduling-window pump, and the stealing mechanics
 * all manipulate them directly, and the queues *are* the unit's
 * architectural interface (Figure 4). NdpUnit owns the lifecycle —
 * construction, the per-epoch barrier swap, timestamp invalidation,
 * and stats registration — so the epoch engine no longer needs to
 * know what a unit is made of.
 */

#ifndef ABNDP_CORE_NDP_UNIT_HH
#define ABNDP_CORE_NDP_UNIT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/prefetch_buffer.hh"
#include "cache/set_assoc_cache.hh"
#include "common/config.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "obs/stats_registry.hh"
#include "tasking/task.hh"
#include "tasking/task_deque.hh"

namespace abndp
{

/** One in-order core with its private cache hierarchy. */
struct CoreState
{
    bool busy = false;
    Tick activeTicks = 0;
    std::uint64_t tasksRun = 0;
    /**
     * Serving mode only: arrival tick, tenant, and recovery mark of
     * the request this core is executing, stashed at dispatch so the
     * completion event can record its latency without carrying the
     * task (the completion capture must stay [this, u, c] to keep
     * batch runs byte-identical). Untouched in batch mode.
     */
    Tick servingArrival = 0;
    std::uint8_t servingTenant = 0;
    bool servingRecovered = false;
    std::unique_ptr<SetAssocCache> l1d;
    std::unique_ptr<SetAssocCache> l1i;
    /** Local TLB (Section 3.2); keys are page numbers. */
    std::unique_ptr<SetAssocCache> tlb;
};

/** One NDP unit: cores, task queues, and the prefetch buffer. */
class NdpUnit
{
  public:
    NdpUnit() = default;

    /** Build the cores, caches, and buffers for unit @p id. */
    void init(const SystemConfig &cfg, UnitId id);

    UnitId id() const { return unitId; }

    /**
     * Barrier swap at the start of an epoch: staged tasks become live,
     * the drained live queues hand their buffers to the staging side
     * (steady-state epochs allocate nothing), and the per-epoch window
     * state resets.
     * @return the number of live tasks this unit starts the epoch with.
     */
    std::uint64_t beginEpoch();

    /** Clear in-flight scheduling/stealing state (end of epoch). */
    void resetTransient();

    /** Timestamp boundary: drop all cached primary data (tag clear). */
    void invalidatePrimaryData();

    bool anyIdleCore() const;

    std::uint32_t busyCores() const;

    /** Total tasks executed across this unit's cores. */
    std::uint64_t tasksRun() const;

    /** Register per-core and prefetch-buffer stats under @p node. */
    void regStats(obs::StatNode &node) const;

    /** Tasks awaiting a scheduling decision (scheduling-window only). */
    SlidingDeque<Task> pending;
    /** Tasks placed on this unit, awaiting execution. */
    SlidingDeque<Task> ready;
    /** Next-epoch tasks (swapped into pending/ready at the barrier). */
    SlidingDeque<Task> stagedPending;
    SlidingDeque<Task> stagedReady;

    std::vector<CoreState> cores;
    std::unique_ptr<PrefetchBuffer> pb;
    /** Leading tasks of `ready` whose prefetches were issued. */
    std::uint32_t prefetchedCount = 0;
    /** The unit's task scheduler is processing a decision. */
    bool schedBusy = false;
    bool stealInFlight = false;
    Tick stealBackoff = 0;
    Rng rng{0};

  private:
    UnitId unitId = invalidUnit;
};

} // namespace abndp

#endif // ABNDP_CORE_NDP_UNIT_HH
