/**
 * @file
 * The epoch engine of the ABNDP machine: it owns the array of NdpUnit
 * components, the global services (memory system, scheduler, unified
 * access path, fault/energy models), and the discrete-event loop
 * executing bulk-synchronous epochs.
 *
 * Per-unit structure — cores, task queues with scheduling and prefetch
 * windows (Figure 4), the prefetch buffer — lives in NdpUnit; the
 * core-to-DRAM timing walk lives in AccessPath; placement decisions
 * are delegated to the Scheduler's SchedulingPolicy object. What
 * remains here is the epoch barrier, the dispatch/steal/forward event
 * choreography, and run-wide bookkeeping.
 *
 * Queue organization per unit (Figure 4): newly created tasks enter the
 * creating unit's *pending* queue; the unit's task scheduler — operating
 * in parallel with the cores — examines the scheduling window at the
 * pending queue's head and either keeps each task locally or forwards it
 * to the chosen unit's *ready* queue. The prefetch window covers the head
 * of the ready queue; cores dispatch from it. Policies without a
 * scheduling window place tasks directly into the target ready queue at
 * creation.
 */

#ifndef ABNDP_CORE_NDP_SYSTEM_HH
#define ABNDP_CORE_NDP_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "common/config.hh"
#include "core/access_path.hh"
#include "core/mem_system.hh"
#include "core/metrics.hh"
#include "core/ndp_unit.hh"
#include "energy/energy.hh"
#include "fault/fault_model.hh"
#include "mem/allocator.hh"
#include "net/topology.hh"
#include "obs/stats_registry.hh"
#include "obs/trace.hh"
#include "sched/scheduler.hh"
#include "serve/latency_recorder.hh"
#include "sim/event_queue.hh"
#include "tasking/task.hh"
#include "workloads/workload.hh"

namespace abndp
{

namespace check
{
class MachineChecker;
} // namespace check

class LbEngine;
struct ShedCmd;

/** A complete simulated ABNDP machine. */
class NdpSystem : public TaskSink
{
  public:
    explicit NdpSystem(const SystemConfig &cfg);

    /** Out of line: unique_ptr member of a forward-declared type. */
    ~NdpSystem();

    /** Simulated allocator for workload setup. */
    SimAllocator &allocator() { return alloc; }

    /**
     * Run a workload to completion (or cfg.maxEpochs) and return the
     * collected metrics. A system instance runs one workload once.
     * With cfg.serving enabled this dispatches to the open-loop
     * serving driver instead of the epoch engine; the workload must
     * then implement QueryService.
     */
    RunMetrics run(Workload &wl);

    // ---- TaskSink ----
    void enqueueTask(Task &&task) override;

    // ---- Introspection for tests ----
    const SystemConfig &config() const { return cfg; }
    const Topology &topology() const { return topo; }
    MemSystem &memSystem() { return mem; }
    Scheduler &scheduler() { return sched; }
    EventQueue &eventQueue() { return eq; }
    const FaultModel &faultModel() const { return faults; }
    const EnergyAccount &energyAccount() const { return energy; }

    /**
     * The machine invariant checker, non-null iff
     * cfg.checkInvariants is set (tests flip its collect mode).
     */
    check::MachineChecker *invariantChecker() { return checker.get(); }

    /** The per-unit components (tests may inspect queue state). */
    NdpUnit &unit(UnitId u) { return units[u]; }
    std::size_t numUnits() const { return units.size(); }

    /** The unified core-to-DRAM access chain. */
    AccessPath &accessPath() { return path; }

    /** The hierarchical stats registry (populated at construction). */
    obs::StatsRegistry &statsRegistry() { return statsReg; }
    const obs::StatsRegistry &statsRegistry() const { return statsReg; }

    /** The event tracer (enabled iff cfg.traceOut is nonempty). */
    obs::Tracer &eventTracer() { return tracer; }
    const obs::Tracer &eventTracer() const { return tracer; }

  private:
    /** The batch epoch engine (run() body when serving is off). */
    RunMetrics batchRun(Workload &wl);

    // ---- Online serving driver (docs/ARCHITECTURE.md) ----

    /**
     * The open-loop serving driver: injects cfg.serving.requests
     * independent query tasks at seeded stochastic arrival times and
     * drives the event loop without epoch drain barriers. Exchange
     * snapshots, watchdog re-arms, and meter reclamation ride on a
     * periodic *window* chain instead of the epoch barrier.
     */
    RunMetrics serveRun(Workload &wl);

    /**
     * One arrival: draw tenant and key, apply admission control, and
     * inject the query task; then self-schedule the next arrival.
     */
    void serveArrival();

    /** Place one admitted query task into the live queues. */
    void injectServingTask(Task &&task);

    /** Self-rescheduling serving window (exchange/watchdog/reclaim). */
    void armServingWindow(Tick interval);

    /** Completion-side latency/conservation accounting (serving). */
    void recordServedCompletion(UnitId u, std::uint32_t c);

    /** Move staged tasks into the live queues and start everything. */
    void startEpoch(std::uint64_t ts);

    /** Give idle cores work (and trigger stealing when empty). */
    void tryDispatch(UnitId u);

    /** Scheduling-window pump for unit @p u (one decision). */
    void pumpScheduler(UnitId u);

    /** Issue hint prefetches for tasks entering the prefetch window. */
    void issuePrefetches(UnitId u);

    /** Attempt to steal work for idle unit @p u. */
    void attemptSteal(UnitId u);

    /** Periodic workload information exchange chain. */
    void scheduleExchange();

    // ---- Hierarchical load balancing (src/sched/lb) ----

    /**
     * One lb exchange window: snapshot ready-queue depths, execute
     * the tier balancers' shed commands, run the migration planner
     * (batch of MemSystem::migrateBlock calls), and close the
     * engine's window (hotness decay). Rides every exchange-snapshot
     * site — epoch start, the in-epoch exchange chain, and the
     * serving window.
     */
    void runLbExchange();

    /** Execute one shed command through the steal transfer path. */
    void executeShed(const ShedCmd &cmd);

    /**
     * Abort with a diagnostic dump — simulated tick, epoch, and
     * per-unit pending/ready queue depths — instead of hanging or
     * dying bare. @p simulatorBug picks panic() (deadlock = internal
     * invariant broken) vs fatal() (watchdog = user-set budget hit).
     */
    [[noreturn]] void dumpStallDiagnostics(const std::string &reason,
                                           bool simulatorBug);

    // ---- Unit-failure tolerance (docs/ARCHITECTURE.md) ----

    /** A tracked task delivery awaiting its ack. */
    struct TaskTransit
    {
        Task task;
        UnitId from = invalidUnit;
        UnitId dst = invalidUnit;
        /** Receiver may re-forward (scheduling-window path). */
        bool reexamine = false;
        bool delivered = false;
        /** Set on ack timeout: a late delivery event must drop it. */
        bool abandoned = false;
    };

    /** A tracked steal-batch delivery awaiting its ack. */
    struct StealTransit
    {
        std::vector<Task> batch;
        UnitId victim = invalidUnit;
        UnitId thief = invalidUnit;
        bool delivered = false;
        bool abandoned = false;
    };

    /**
     * Re-arm this epoch's failure/recovery transitions. The barrier
     * clears the event queue, so transitions still in the future must
     * be rescheduled every epoch; past ones apply immediately (guarded
     * by unitsDown so the application is idempotent).
     */
    void armFailureTransitions();

    /** Take the configured unit set down and recover its queued work. */
    void applyUnitFailures();

    /** Bring the failed unit set back up (transient window end). */
    void applyUnitRecovery();

    /** Drain a dead unit's live and staged queues, re-injecting all. */
    void recoverUnitTasks(UnitId dead);

    /** Re-inject one live-queue task drained from a dead unit. */
    void reinjectLiveTask(UnitId dead, Task task);

    /** Ship a forwarded task with delivery-ack tracking. */
    void trackDelivery(std::shared_ptr<TaskTransit> tr, Tick deliverAt);

    /** Ack timeout expired: redispatch to a live unit after backoff. */
    void redispatchTask(std::shared_ptr<TaskTransit> tr);

    /** Redispatch budget burnt: deliver with a live-unit fallback. */
    void deliverDirect(std::shared_ptr<TaskTransit> tr, Tick deliverAt);

    /** Re-inject a steal batch whose thief died or whose ack expired. */
    void reinjectStealBatch(std::shared_ptr<StealTransit> tr,
                            bool timedOut);

    /** Populate the stats registry from every modelled unit. */
    void buildStats();

    /**
     * Pooled payloads for the non-failure forward/steal transits: the
     * event kernel stores captures inline, so a forward ships a pool
     * index (trivially copyable) instead of heap-allocating a
     * shared_ptr<Task> (or a task vector) per hop. Slots recycle
     * through free lists and batch slots keep their vector capacity,
     * so steady-state forwarding and stealing allocate nothing. An
     * in-flight slot always carries not-yet-executed tasks, which hold
     * activeRemaining > 0 — the epoch barrier (which clears pending
     * events) cannot fire while a slot is live.
     */
    std::uint32_t grabFwdSlot(Task &&task);
    std::uint32_t grabBatchSlot();
    std::vector<Task> fwdPool;
    std::vector<std::uint32_t> fwdPoolFree;
    std::vector<std::vector<Task>> batchPool;
    std::vector<std::uint32_t> batchPoolFree;

    SystemConfig cfg;
    Topology topo;
    FaultModel faults;
    EnergyAccount energy;
    SimAllocator alloc;
    /** Event tracer; constructed before mem/sched which hold pointers. */
    obs::Tracer tracer;
    MemSystem mem;
    Scheduler sched;
    EventQueue eq;
    obs::StatsRegistry statsReg;
    AccessPath path;
    /** Armed iff cfg.checkInvariants (src/check; observational only). */
    std::unique_ptr<check::MachineChecker> checker;

    std::vector<NdpUnit> units;
    Workload *workload = nullptr;

    std::uint64_t curEpoch = 0;
    /** Tasks of the current epoch not yet completed. */
    std::uint64_t activeRemaining = 0;
    /** Tasks staged for the next epoch across all units. */
    std::uint64_t stagedCount = 0;
    /** Unit whose task is currently being functionally executed. */
    UnitId creatorCtx = invalidUnit;
    bool exchangeScheduled = false;
    /** Tick of the most recent task completion (end-to-end time). */
    Tick lastCompletionTick = 0;
    /** The active policy routes tasks through the scheduling window. */
    bool windowPolicy = false;

    /** Re-forward budget per task between scheduling windows. */
    static constexpr std::uint8_t maxForwardHops = 2;

    Tick schedDecisionTicks;

    // Run-wide counters.
    std::uint64_t initialSpread = 0;
    std::uint64_t totalTasks = 0;
    std::uint64_t epochsDone = 0;
    Tick epochBusy = 0;
    std::uint64_t epochTaskCount = 0;
    std::uint64_t stealAttempts = 0;
    std::uint64_t stolenTasks = 0;
    std::uint64_t forwardedTasks = 0;

    // Unit-failure recovery state. All of it stays untouched (and all
    // recovery code paths unreachable) unless failuresOn, so runs
    // without a configured unit failure remain bit-identical.
    /** Unit failures configured; gates every recovery path. */
    bool failuresOn = false;
    /** The configured failure set is currently applied. */
    bool unitsDown = false;
    /** The failure transition fired at least once this run. */
    bool everFailed = false;
    /** Per-destination deliveries sent but not yet acked. */
    std::vector<std::uint32_t> acksOutstanding;
    /** Tasks executed this epoch that the recovery protocol touched. */
    std::uint64_t epochRecoveredCount = 0;
    std::uint64_t tasksRecovered = 0;
    std::uint64_t tasksRedispatched = 0;
    std::uint64_t recoveryTrafficBytes = 0;

    // Online serving state. All of it stays untouched (and the
    // serving branches in the shared dispatch path unreachable)
    // unless servingMode, so batch runs remain bit-identical.
    /** Serving driver active; gates the shared-path branches. */
    bool servingMode = false;
    /** Stream generator state (arrival process, sampler, service). */
    struct ServeState;
    std::unique_ptr<ServeState> srv;
    /** Per-request latency log (exact percentiles at dump time). */
    serve::LatencyRecorder servingLat;
    /** Per-tenant latency logs (tenant id indexes the vector). */
    std::vector<serve::LatencyRecorder> servingTenantLat;
    std::uint64_t servingInjected = 0;
    std::uint64_t servingRejected = 0;
    std::uint64_t servingCompletedDirect = 0;
    std::uint64_t servingCompletedRecovered = 0;
    std::uint64_t servingWindows = 0;

    // Hierarchical load-balancing state. All of it stays untouched
    // (and runLbExchange unreachable) unless lbOn, so runs without a
    // configured balancer remain bit-identical.
    /** Hierarchical lb configured; gates the exchange-window hook. */
    bool lbOn = false;
    /** Tier balancers + hotness tracker + migration planner. */
    std::unique_ptr<LbEngine> lbEngine;
    /** Scratch queue-depth snapshot, reused every lb exchange. */
    std::vector<std::uint32_t> lbQlen;
    /** Tasks shed by the intra-stack (crossbar) tier. */
    std::uint64_t tasksShedIntra = 0;
    /** Tasks shed by the inter-stack (mesh) tier. */
    std::uint64_t tasksShedInter = 0;
};

} // namespace abndp

#endif // ABNDP_CORE_NDP_SYSTEM_HH
