/**
 * @file
 * The full NDP system: NDP units with in-order cores, task queues with
 * scheduling and prefetch windows (Figure 4), the distributed Traveller
 * Cache, the hierarchical interconnect, and the task scheduler —
 * orchestrated by a discrete-event engine executing bulk-synchronous
 * epochs.
 *
 * Queue organization per unit (Figure 4): newly created tasks enter the
 * creating unit's *pending* queue; the unit's task scheduler — operating
 * in parallel with the cores — examines the scheduling window at the
 * pending queue's head and either keeps each task locally or forwards it
 * to the chosen unit's *ready* queue. The prefetch window covers the head
 * of the ready queue; cores dispatch from it. Non-hybrid policies place
 * tasks directly into the target ready queue at creation.
 */

#ifndef ABNDP_CORE_NDP_SYSTEM_HH
#define ABNDP_CORE_NDP_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "cache/prefetch_buffer.hh"
#include "cache/set_assoc_cache.hh"
#include "common/config.hh"
#include "common/rng.hh"
#include "core/mem_system.hh"
#include "core/metrics.hh"
#include "energy/energy.hh"
#include "fault/fault_model.hh"
#include "mem/allocator.hh"
#include "net/topology.hh"
#include "obs/stats_registry.hh"
#include "obs/trace.hh"
#include "sched/scheduler.hh"
#include "sim/event_queue.hh"
#include "tasking/task.hh"
#include "tasking/task_deque.hh"
#include "workloads/workload.hh"

namespace abndp
{

/** A complete simulated ABNDP machine. */
class NdpSystem : public TaskSink
{
  public:
    explicit NdpSystem(const SystemConfig &cfg);

    /** Simulated allocator for workload setup. */
    SimAllocator &allocator() { return alloc; }

    /**
     * Run a workload to completion (or cfg.maxEpochs) and return the
     * collected metrics. A system instance runs one workload once.
     */
    RunMetrics run(Workload &wl);

    // ---- TaskSink ----
    void enqueueTask(Task &&task) override;

    // ---- Introspection for tests ----
    const SystemConfig &config() const { return cfg; }
    const Topology &topology() const { return topo; }
    MemSystem &memSystem() { return mem; }
    Scheduler &scheduler() { return sched; }
    EventQueue &eventQueue() { return eq; }
    const FaultModel &faultModel() const { return faults; }

    /** The hierarchical stats registry (populated at construction). */
    obs::StatsRegistry &statsRegistry() { return statsReg; }
    const obs::StatsRegistry &statsRegistry() const { return statsReg; }

    /** The event tracer (enabled iff cfg.traceOut is nonempty). */
    obs::Tracer &eventTracer() { return tracer; }
    const obs::Tracer &eventTracer() const { return tracer; }

  private:
    struct CoreState
    {
        bool busy = false;
        Tick activeTicks = 0;
        std::uint64_t tasksRun = 0;
        std::unique_ptr<SetAssocCache> l1d;
        std::unique_ptr<SetAssocCache> l1i;
        /** Local TLB (Section 3.2); keys are page numbers. */
        std::unique_ptr<SetAssocCache> tlb;
    };

    struct UnitState
    {
        /** Tasks awaiting a scheduling decision (hybrid policy only). */
        SlidingDeque<Task> pending;
        /** Tasks placed on this unit, awaiting execution. */
        SlidingDeque<Task> ready;
        /** Next-epoch tasks (swapped into pending/ready at the barrier;
         *  the barrier swap recycles the drained queues' buffers). */
        SlidingDeque<Task> stagedPending;
        SlidingDeque<Task> stagedReady;

        std::vector<CoreState> cores;
        std::unique_ptr<PrefetchBuffer> pb;
        /** Leading tasks of `ready` whose prefetches were issued. */
        std::uint32_t prefetchedCount = 0;
        /** The unit's task scheduler is processing a decision. */
        bool schedBusy = false;
        bool stealInFlight = false;
        Tick stealBackoff = 0;
        Rng rng{0};
    };

    /** Move staged tasks into the live queues and start everything. */
    void startEpoch(std::uint64_t ts);

    /** Give idle cores work (and trigger stealing when empty). */
    void tryDispatch(UnitId u);

    /** Hybrid scheduling-window pump for unit @p u (one decision). */
    void pumpScheduler(UnitId u);

    /** Issue hint prefetches for tasks entering the prefetch window. */
    void issuePrefetches(UnitId u);

    /** Timing model for one task executing on unit @p u from @p start. */
    Tick executeTiming(UnitId u, std::uint32_t coreIdx, const Task &task,
                       Tick start);

    /** Attempt to steal work for idle unit @p u. */
    void attemptSteal(UnitId u);

    /** Periodic workload information exchange chain. */
    void scheduleExchange();

    /** Dedup a task's hint into block addresses (into blockScratch). */
    void collectBlocks(const Task &task);

    /**
     * Abort with a diagnostic dump — simulated tick, epoch, and
     * per-unit pending/ready queue depths — instead of hanging or
     * dying bare. @p simulatorBug picks panic() (deadlock = internal
     * invariant broken) vs fatal() (watchdog = user-set budget hit).
     */
    [[noreturn]] void dumpStallDiagnostics(const std::string &reason,
                                           bool simulatorBug);

    /** Populate the stats registry from every modelled unit. */
    void buildStats();

    SystemConfig cfg;
    Topology topo;
    FaultModel faults;
    EnergyAccount energy;
    SimAllocator alloc;
    /** Event tracer; constructed before mem/sched which hold pointers. */
    obs::Tracer tracer;
    MemSystem mem;
    Scheduler sched;
    EventQueue eq;
    obs::StatsRegistry statsReg;

    std::vector<UnitState> units;
    Workload *workload = nullptr;

    std::uint64_t curEpoch = 0;
    /** Tasks of the current epoch not yet completed. */
    std::uint64_t activeRemaining = 0;
    /** Tasks staged for the next epoch across all units. */
    std::uint64_t stagedCount = 0;
    /** Unit whose task is currently being functionally executed. */
    UnitId creatorCtx = invalidUnit;
    bool exchangeScheduled = false;
    /** Tick of the most recent task completion (end-to-end time). */
    Tick lastCompletionTick = 0;
    bool hybridPolicy = false;

    /** Re-forward budget per task between scheduling windows. */
    static constexpr std::uint8_t maxForwardHops = 2;

    /** Per-task prefetch quota in blocks (buffer size / window). */
    std::uint32_t prefetchQuota;
    Tick pbHitTicks;
    Tick l1HitTicks;
    Tick schedDecisionTicks;
    Tick tlbMissTicks;
    Tick l1iMissTicks;
    std::uint32_t pageShift;

    // Run-wide counters.
    std::uint64_t initialSpread = 0;
    std::uint64_t totalTasks = 0;
    std::uint64_t epochsDone = 0;
    Tick epochBusy = 0;
    std::uint64_t epochTaskCount = 0;
    std::uint64_t stealAttempts = 0;
    std::uint64_t stolenTasks = 0;
    std::uint64_t forwardedTasks = 0;

    /** Scratch for per-task block deduplication. */
    std::vector<Addr> blockScratch;
};

} // namespace abndp

#endif // ABNDP_CORE_NDP_SYSTEM_HH
