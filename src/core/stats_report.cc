#include "core/stats_report.hh"

#include <iomanip>

#include "core/ndp_system.hh"
#include "net/topology.hh"
#include "obs/stats_registry.hh"

namespace abndp
{

namespace
{

/** Pad @p name to the value column without touching stream state. */
std::string
padName(const char *name)
{
    std::string s(name);
    if (s.size() < 40)
        s.resize(40, ' ');
    return s;
}

void
line(std::ostream &os, const char *name, double value)
{
    // Explicit fixed formatting via formatStatValue() and explicit
    // padding: the default stream precision/fill depend on the ambient
    // stream state and round differently across platforms, which made
    // dumps unstable.
    os << padName(name) << " "
       << obs::formatStatValue(value, /*integer=*/false) << "\n";
}

void
line(std::ostream &os, const char *name, std::uint64_t value)
{
    os << padName(name) << " " << value << "\n";
}

} // namespace

void
dumpStats(std::ostream &os, NdpSystem &sys, const RunMetrics &m)
{
    const SystemConfig &cfg = sys.config();
    os << "---------- Begin Simulation Statistics ----------\n";
    line(os, "system.ticks", m.ticks);
    line(os, "system.seconds", m.seconds());
    line(os, "system.epochs", m.epochs);
    line(os, "system.tasks", m.tasks);
    line(os, "system.units", std::uint64_t{cfg.numUnits()});
    line(os, "system.cores", std::uint64_t{cfg.numCores()});
    line(os, "system.utilization", m.utilization());
    line(os, "system.imbalance", m.imbalance());

    line(os, "network.interHops", m.interHops);
    line(os, "network.intraTraversals", m.intraTraversals);
    line(os, "network.packets",
         sys.memSystem().network().totalPackets());

    line(os, "sched.decisions", m.schedDecisions);
    line(os, "sched.forwardedTasks", m.forwardedTasks);
    line(os, "sched.stealAttempts", m.stealAttempts);
    line(os, "sched.stolenTasks", m.stolenTasks);

    line(os, "prefetchBuffer.hits", m.pbHits);
    line(os, "prefetchBuffer.lateHits", m.pbLateHits);
    line(os, "prefetchBuffer.misses", m.pbMisses);
    line(os, "l1d.hits", m.l1Hits);
    line(os, "l1d.misses", m.l1Misses);

    if (sys.memSystem().cachingEnabled()) {
        line(os, "travellerCache.hits", m.campHits);
        line(os, "travellerCache.misses", m.campMisses);
        line(os, "travellerCache.hitRate", m.campHitRate());
        line(os, "travellerCache.insertions", m.cacheInserts);
        std::uint64_t occupancy = 0;
        for (UnitId u = 0; u < cfg.numUnits(); ++u)
            occupancy += sys.memSystem().traveller(u).occupancy();
        line(os, "travellerCache.occupancyBlocks", occupancy);
    }

    std::uint64_t refreshes = 0;
    for (UnitId u = 0; u < cfg.numUnits(); ++u)
        refreshes += sys.memSystem().dram(u).refreshes();
    line(os, "dram.reads", m.dramReads);
    line(os, "dram.writes", m.dramWrites);
    line(os, "dram.rowMisses", m.dramRowMisses);
    line(os, "dram.rowHits", m.dramRowHits);
    line(os, "dram.actStalls", m.dramActStalls);
    line(os, "dram.refreshes", refreshes);
    line(os, "mem.readLatencyAvgNs", m.readLatMeanNs);
    line(os, "mem.readLatencyMaxNs", m.readLatMaxNs);

    line(os, "sim.events", m.simEvents);
    // Host-side throughput: wall-clock, so these two lines (alone) vary
    // between otherwise identical runs.
    line(os, "sim.hostSeconds", m.hostSeconds);
    line(os, "sim.eventsPerSec", m.eventsPerSec());

    line(os, "energy.coreSramPj", m.energy.coreSramPj);
    line(os, "energy.dramMemPj", m.energy.dramMemPj);
    line(os, "energy.dramCachePj", m.energy.dramCachePj);
    line(os, "energy.netPj", m.energy.netPj);
    line(os, "energy.staticPj", m.energy.staticPj);
    line(os, "energy.totalPj", m.energy.total());
    os << "---------- End Simulation Statistics   ----------\n";
}

void
dumpJson(std::ostream &os, const SystemConfig &cfg, const RunMetrics &m)
{
    os << "{";
    os << "\"ticks\":" << m.ticks;
    os << ",\"seconds\":" << m.seconds();
    os << ",\"epochs\":" << m.epochs;
    os << ",\"tasks\":" << m.tasks;
    os << ",\"units\":" << cfg.numUnits();
    os << ",\"interHops\":" << m.interHops;
    os << ",\"utilization\":" << m.utilization();
    os << ",\"imbalance\":" << m.imbalance();
    os << ",\"campHitRate\":" << m.campHitRate();
    os << ",\"forwardedTasks\":" << m.forwardedTasks;
    os << ",\"stolenTasks\":" << m.stolenTasks;
    os << ",\"energyPj\":{";
    os << "\"coreSram\":" << m.energy.coreSramPj;
    os << ",\"dramMem\":" << m.energy.dramMemPj;
    os << ",\"dramCache\":" << m.energy.dramCachePj;
    os << ",\"net\":" << m.energy.netPj;
    os << ",\"static\":" << m.energy.staticPj;
    os << ",\"total\":" << m.energy.total();
    os << "}}";
}

void
dumpHeatmap(std::ostream &os, const SystemConfig &cfg,
            const RunMetrics &m)
{
    if (m.ticks == 0 || m.coreActiveTicks.empty())
        return;
    // Unit numbering is group-major (Section 4.2), so map units to
    // stacks through the topology before drawing mesh coordinates.
    Topology topo(cfg);
    std::vector<double> stackBusy(cfg.numStacks(), 0.0);
    for (UnitId u = 0; u < cfg.numUnits(); ++u)
        for (std::uint32_t c = 0; c < cfg.coresPerUnit; ++c)
            stackBusy[topo.stackOf(u)] += static_cast<double>(
                m.coreActiveTicks[u * cfg.coresPerUnit + c]);

    std::uint32_t coresPerStack = cfg.unitsPerStack * cfg.coresPerUnit;
    os << "Per-stack mean core utilization (0-9; rows = mesh Y):\n";
    for (std::uint32_t y = 0; y < cfg.meshY; ++y) {
        os << "  ";
        for (std::uint32_t x = 0; x < cfg.meshX; ++x) {
            StackId s = y * cfg.meshX + x;
            double util = stackBusy[s]
                / (static_cast<double>(m.ticks) * coresPerStack);
            int level = std::min(9, static_cast<int>(util * 10.0));
            os << level << " ";
        }
        os << "\n";
    }
}

} // namespace abndp
