#include "core/access_path.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace abndp
{

AccessPath::AccessPath(const SystemConfig &cfg, MemSystem &mem,
                       EnergyAccount &energy, const FaultModel &faults)
    : cfg(cfg), mem(mem), energy(energy), faults(faults),
      pbHitTicks(static_cast<Tick>(cfg.pbHitNs * ticksPerNs)),
      l1HitTicks(cfg.ticksPerCycle()),
      tlbMissTicks(static_cast<Tick>(cfg.tlb.missNs * ticksPerNs)),
      l1iMissTicks(static_cast<Tick>(cfg.l1iMissNs * ticksPerNs)),
      pageShift(static_cast<std::uint32_t>(
          std::countr_zero(static_cast<std::uint64_t>(
              cfg.tlb.pageBytes))))
{
    // The prefetch unit fetches every hint address of window tasks, up
    // to the buffer capacity per task (larger hints finish on demand).
    std::uint64_t pb_blocks = cfg.prefetchBufBytes / cachelineBytes;
    quota = static_cast<std::uint32_t>(pb_blocks);
}

std::span<const Addr>
AccessPath::taskBlocks(const Task &task)
{
    if (!task.blocks.empty())
        return {task.blocks.data(), task.blocks.size()};
    blockScratch.clear();
    for (Addr a : task.hint.data)
        blockScratch.push_back(blockAlign(a));
    for (const auto &r : task.hint.ranges)
        for (Addr a = blockAlign(r.start); a < r.start + r.bytes;
             a += cachelineBytes)
            blockScratch.push_back(a);
    std::sort(blockScratch.begin(), blockScratch.end());
    blockScratch.erase(
        std::unique(blockScratch.begin(), blockScratch.end()),
        blockScratch.end());
    return {blockScratch.data(), blockScratch.size()};
}

void
AccessPath::prefetchTask(NdpUnit &unit, Task &task, Tick now)
{
    task.prefetched = true;
    const auto blocks = taskBlocks(task);
    std::uint32_t issued = 0;
    for (Addr block : blocks) {
        if (issued >= quota)
            break;
        if (unit.pb->peek(block))
            continue; // already buffered or in flight
        bool in_l1 = false;
        for (const auto &core : unit.cores) {
            if (core.l1d->contains(block)) {
                in_l1 = true;
                break;
            }
        }
        if (in_l1)
            continue; // a core already holds the line
        AccessRequest req{unit.id(), 0, block, now, true};
        AccessResult res = mem.read(req);
        notify(req, res.served, now + res.latency);
        unit.pb->fill(block, now + res.latency);
        ++issued;
    }
}

Tick
AccessPath::executeTask(NdpUnit &unit, std::uint32_t coreIdx,
                        const Task &task, Tick start)
{
    const UnitId u = unit.id();
    auto &core = unit.cores[coreIdx];
    Tick t = start;

    const auto blocks = taskBlocks(task);

    // Straggler compute derating stretches every core-local latency
    // (instruction fetch, TLB walks, L1/buffer hits, compute cycles);
    // remote-memory latencies are derated at their own subsystems. The
    // default slowdown of 1.0 leaves every term bit-identical.
    const double slow = faults.computeSlowdown(u, start);
    auto stretch = [slow](Tick ticks) {
        return static_cast<Tick>(ticks * slow);
    };

    // Instruction fetch: the task handler's code streams through the
    // L1-I; only cold/capacity misses cost latency (local code fill).
    if (cfg.taskCodeBytes > 0) {
        Addr code_base = (1ull << 40)
            + static_cast<Addr>(task.func) * cfg.taskCodeBytes;
        for (Addr a = code_base; a < code_base + cfg.taskCodeBytes;
             a += cachelineBytes) {
            if (!core.l1i->access(a)) {
                t += stretch(l1iMissTicks);
                core.l1i->insert(a);
            }
            energy.addL1Access();
        }
    }

    // Address translation: one TLB lookup per distinct page touched
    // (Section 3.2: per-core local TLBs).
    if (cfg.tlb.enabled) {
        Addr last_page = invalidAddr;
        for (Addr block : blocks) {
            Addr page = block >> pageShift;
            if (page == last_page)
                continue;
            last_page = page;
            energy.addTlbAccess();
            if (!core.tlb->access(page << cachelineBits)) {
                t += stretch(tlbMissTicks);
                core.tlb->insert(page << cachelineBits);
                notify({u, coreIdx, block, t, false},
                       AccessLevel::Tlb, t);
            }
        }
    }

    // Demand misses of the executing task may overlap up to
    // missPipelineDepth outstanding requests (1 = a strictly in-order
    // core that stalls on every miss).
    const std::uint32_t depth = cfg.sched.missPipelineDepth;
    abndp_assert(depth >= 1 && depth <= 64);
    Tick inflight[64] = {};
    std::uint32_t slot = 0;
    for (Addr block : blocks) {
        Tick ready = unit.pb->lookup(block, t);
        if (ready != tickNever) {
            if (ready > t)
                t = ready; // prefetch still in flight
            t += stretch(pbHitTicks);
            energy.addPrefetchBufAccess();
            notify({u, coreIdx, block, t, false},
                   AccessLevel::PrefetchBuf, t);
            // Consumed prefetches are installed into the core's L1 so a
            // block fetched once serves every later task on this core
            // within the timestamp (the FIFO buffer itself is tiny).
            core.l1d->insert(block);
        } else if (core.l1d->access(block)) {
            t += stretch(l1HitTicks);
            energy.addL1Access();
            notify({u, coreIdx, block, t, false}, AccessLevel::L1, t);
        } else {
            energy.addL1Access(); // the miss probe
            Tick issue = t > inflight[slot] ? t : inflight[slot];
            AccessRequest req{u, coreIdx, block, issue, false};
            AccessResult res = mem.read(req);
            Tick done = issue + res.latency;
            notify(req, res.served, done);
            inflight[slot] = done;
            slot = (slot + 1) % depth;
            t = done;
            core.l1d->insert(block);
        }
    }

    t += stretch(task.computeInstrs * cfg.ticksPerCycle());
    energy.addCoreInstructions(task.computeInstrs + blocks.size());

    for (Addr w : task.writes)
        mem.writeBlock(u, w, t);

    return t;
}

} // namespace abndp
