/**
 * @file
 * The request/result descriptor shared by every level of the unified
 * access path (core -> prefetch buffer -> L1 -> TLB -> Traveller ->
 * DRAM). One descriptor travels the chain; each level either serves
 * it or hands it down, and the result records who served it.
 */

#ifndef ABNDP_CORE_ACCESS_TYPES_HH
#define ABNDP_CORE_ACCESS_TYPES_HH

#include <cstdint>

#include "common/types.hh"

namespace abndp
{

/** Which level of the access path served (or completed) a request. */
enum class AccessLevel : std::uint8_t
{
    PrefetchBuf, ///< hit in the unit's prefetch buffer
    L1,          ///< hit in the core's private L1-D
    Tlb,         ///< translation miss serviced by the page-walk path
    TravellerCamp, ///< hit in a Traveller camp cache
    HomeDram,    ///< served by the home unit's DRAM channel
};

/** Printable name of @p level (diagnostics and traces). */
inline const char *
accessLevelName(AccessLevel level)
{
    switch (level) {
      case AccessLevel::PrefetchBuf: return "pb";
      case AccessLevel::L1: return "l1";
      case AccessLevel::Tlb: return "tlb";
      case AccessLevel::TravellerCamp: return "camp";
      case AccessLevel::HomeDram: return "dram";
    }
    return "?";
}

/** One block request descriptor entering the access path. */
struct AccessRequest
{
    /** Requesting unit. */
    UnitId unit = invalidUnit;
    /** Requesting core within the unit (0 for the prefetch engine). */
    std::uint32_t core = 0;
    /** Block-aligned (or to-be-aligned) address. */
    Addr addr = invalidAddr;
    /** Tick the request is issued at. */
    Tick start = 0;
    /** Issued by the prefetch engine rather than a demand miss. */
    bool prefetch = false;
};

/** Completion record for one request. */
struct AccessResult
{
    /** Latency until the data is back at the requesting unit. */
    Tick latency = 0;
    /** Deepest level that served the request. */
    AccessLevel served = AccessLevel::HomeDram;
};

} // namespace abndp

#endif // ABNDP_CORE_ACCESS_TYPES_HH
