/**
 * @file
 * gem5-style end-of-run statistics report for a simulated NDP system:
 * a hierarchical dump of every component's counters, suitable for diffing
 * between runs and for scripts that post-process results.
 */

#ifndef ABNDP_CORE_STATS_REPORT_HH
#define ABNDP_CORE_STATS_REPORT_HH

#include <ostream>

#include "common/config.hh"
#include "core/metrics.hh"

namespace abndp
{

class NdpSystem;

/**
 * Write the full statistics tree of a finished run:
 * system.{time,tasks,epochs}, per-category totals, network, scheduler,
 * caches, DRAM, and the energy breakdown.
 */
void dumpStats(std::ostream &os, NdpSystem &sys,
               const RunMetrics &metrics);

/** Write the headline metrics of a run as a single JSON object. */
void dumpJson(std::ostream &os, const SystemConfig &cfg,
              const RunMetrics &metrics);

/**
 * Draw an ASCII utilization heatmap of the stack mesh: per stack, the
 * mean core-busy fraction, 0-9 scaled (a Figure-9 style view of where
 * the hotspots sit).
 */
void dumpHeatmap(std::ostream &os, const SystemConfig &cfg,
                 const RunMetrics &metrics);

} // namespace abndp

#endif // ABNDP_CORE_STATS_REPORT_HH
