#include "fault/fault_model.hh"

#include <algorithm>
#include <numeric>

#include "common/backoff.hh"

namespace abndp
{

namespace
{

/**
 * Resolve an injection target set: the explicit list when given,
 * otherwise @p count ids drawn without replacement from [0, space) via
 * a seeded partial Fisher-Yates shuffle (deterministic per seed).
 */
std::vector<std::uint32_t>
resolveSet(const std::vector<std::uint32_t> &explicitIds,
           std::uint32_t count, std::uint32_t space, std::uint64_t seed)
{
    if (!explicitIds.empty()) {
        auto ids = explicitIds;
        std::sort(ids.begin(), ids.end());
        ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
        return ids;
    }
    std::vector<std::uint32_t> ids(space);
    std::iota(ids.begin(), ids.end(), 0u);
    Rng pick(mix64(seed));
    std::uint32_t n = std::min(count, space);
    for (std::uint32_t i = 0; i < n; ++i) {
        auto j = i + static_cast<std::uint32_t>(pick.below(space - i));
        std::swap(ids[i], ids[j]);
    }
    ids.resize(n);
    std::sort(ids.begin(), ids.end());
    return ids;
}

} // namespace

FaultModel::FaultModel(const SystemConfig &sysCfg)
    : cfg(sysCfg.fault),
      injectorsOn(sysCfg.fault.anyInjector()),
      stragglerMask(sysCfg.numUnits(), 0),
      computeStretch(1.0 / cfg.straggler.computeDerate),
      bandwidthStretch(1.0 / cfg.straggler.bandwidthDerate),
      minDerate(std::min(cfg.straggler.computeDerate,
                         cfg.straggler.bandwidthDerate)),
      windowStart(static_cast<Tick>(cfg.straggler.windowStartNs
                                    * ticksPerNs)),
      windowEnd(static_cast<Tick>(cfg.straggler.windowEndNs * ticksPerNs)),
      extraTicks(static_cast<Tick>(cfg.link.extraLatencyNs * ticksPerNs)),
      backoffTicks(static_cast<Tick>(cfg.link.retryBackoffNs * ticksPerNs)),
      eccTicks(static_cast<Tick>(cfg.dram.eccRetryNs * ticksPerNs)),
      liveMask(sysCfg.numUnits(), 1),
      rehome(sysCfg.numUnits()),
      failTick(static_cast<Tick>(cfg.unitFailure.failAtNs * ticksPerNs)),
      recoverTick(static_cast<Tick>(cfg.unitFailure.recoverAtNs
                                    * ticksPerNs)),
      ackTicks(static_cast<Tick>(cfg.unitFailure.ackTimeoutNs
                                 * ticksPerNs)),
      redispatchTicks(static_cast<Tick>(cfg.unitFailure.redispatchBackoffNs
                                        * ticksPerNs)),
      linkRng(mix64(sysCfg.seed ^ 0xFA177001ull))
{
    stragglerIds = resolveSet(cfg.straggler.units, cfg.straggler.count,
                              sysCfg.numUnits(),
                              sysCfg.seed ^ 0xFA177002ull);
    for (UnitId u : stragglerIds)
        stragglerMask[u] = 1;

    std::uint32_t nLinks = sysCfg.numStacks() * 4;
    auto faulty = resolveSet(cfg.link.links, cfg.link.count, nLinks,
                             sysCfg.seed ^ 0xFA177003ull);
    if (!faulty.empty()) {
        linkMask.assign(nLinks, 0);
        for (std::uint32_t l : faulty)
            linkMask[l] = 1;
    }

    if (cfg.unitFailure.enabled())
        failedIds = resolveSet(cfg.unitFailure.units,
                               cfg.unitFailure.count, sysCfg.numUnits(),
                               sysCfg.seed ^ 0xFA177004ull);
    recomputeRehome();
}

Tick
FaultModel::retryBackoffTicks(std::uint32_t attempt) const
{
    return cappedExpBackoff(backoffTicks, attempt);
}

Tick
FaultModel::redispatchBackoffTicks(std::uint32_t attempt) const
{
    return cappedExpBackoff(redispatchTicks, attempt);
}

void
FaultModel::markDown(UnitId u)
{
    if (liveMask[u] == 0)
        return;
    liveMask[u] = 0;
    ++nDown;
    recomputeRehome();
}

void
FaultModel::markUp(UnitId u)
{
    if (liveMask[u] != 0)
        return;
    liveMask[u] = 1;
    --nDown;
    recomputeRehome();
}

void
FaultModel::recomputeRehome()
{
    // Buddy re-homing rule: a down unit is stood in for by the next
    // live unit in id order (wrapping) — deterministic, stateless, and
    // identical on every consumer. Live units stand in for themselves.
    const auto n = static_cast<UnitId>(liveMask.size());
    for (UnitId u = 0; u < n; ++u) {
        UnitId cand = u;
        for (UnitId step = 0; step < n; ++step) {
            if (liveMask[cand] != 0)
                break;
            cand = cand + 1 == n ? 0 : cand + 1;
        }
        rehome[u] = cand;
    }
}

} // namespace abndp
