/**
 * @file
 * Configuration of the deterministic fault & straggler injection
 * subsystem. The paper studies skew that originates in the *workload*
 * (power-law degree distributions); these knobs inject skew that
 * originates in the *hardware* — slow NDP units, flaky mesh links, and
 * DRAM banks stuck in error-retry — so the resilience of each Table-2
 * design can be measured (bench_resilience).
 *
 * Every stochastic draw is taken from Rng instances seeded from
 * SystemConfig::seed, so the usual bit-determinism guarantee (same
 * config => same metrics) holds under any fault configuration.
 */

#ifndef ABNDP_FAULT_FAULT_CONFIG_HH
#define ABNDP_FAULT_FAULT_CONFIG_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace abndp
{

/**
 * Straggler NDP units: a chosen subset of units runs derated, modeling
 * a slow vault (thermal throttling, a marginal die, a failing sensor).
 */
struct StragglerFaultConfig
{
    /** Explicit straggler unit ids; takes precedence over @ref count. */
    std::vector<std::uint32_t> units;
    /** Number of stragglers picked deterministically from the seed. */
    std::uint32_t count = 0;
    /**
     * Core-speed factor of a straggler in (0, 1]: compute cycles and
     * core-local latencies (L1/TLB/prefetch-buffer hits, scheduling
     * decisions) are stretched by 1/computeDerate.
     */
    double computeDerate = 1.0;
    /**
     * Local-memory speed factor in (0, 1]: the straggler's DRAM channel
     * core latency and burst are stretched by 1/bandwidthDerate.
     */
    double bandwidthDerate = 1.0;
    /**
     * Optional activity window [windowStartNs, windowEndNs) of simulated
     * time; both zero means the derating is permanent.
     */
    double windowStartNs = 0.0;
    double windowEndNs = 0.0;

    bool
    enabled() const
    {
        return (count > 0 || !units.empty())
            && (computeDerate < 1.0 || bandwidthDerate < 1.0);
    }
};

/**
 * Faulty inter-stack mesh links: selected directed hop edges add fixed
 * latency and/or drop packets transiently. A drop is repaired by bounded
 * retry with exponential backoff, modeled as re-reservations of the link
 * at backed-off times; retries/drops are counted (netRetries/netDropped).
 */
struct LinkFaultConfig
{
    /**
     * Explicit directed mesh-link indices (stack * 4 + dir, with dir
     * 0=east 1=west 2=south 3=north); takes precedence over @ref count.
     */
    std::vector<std::uint32_t> links;
    /** Number of faulty links picked deterministically from the seed. */
    std::uint32_t count = 0;
    /** Per-traversal transient drop probability in [0, 1). */
    double dropProb = 0.0;
    /** Fixed extra one-way latency on every faulty-link traversal. */
    double extraLatencyNs = 0.0;
    /** Retry budget per packet; delivery succeeds after at most this. */
    std::uint32_t maxRetries = 4;
    /** Base retransmission timeout; doubles on every further attempt. */
    double retryBackoffNs = 50.0;

    bool
    enabled() const
    {
        return (count > 0 || !links.empty())
            && (dropProb > 0.0 || extraLatencyNs > 0.0);
    }
};

/**
 * DRAM error-retry: with a configurable probability an access hits an
 * ECC correction/retry cycle and pays an additional latency adder
 * (per-bank, since the draw happens on the accessed bank's channel).
 */
struct DramFaultConfig
{
    /** Per-access probability of an ECC retry in [0, 1). */
    double eccRetryProb = 0.0;
    /** Latency adder of one ECC retry cycle. */
    double eccRetryNs = 100.0;

    bool enabled() const { return eccRetryProb > 0.0; }
};

/**
 * Failed NDP units: a chosen subset of units stops accepting work at a
 * configured point in simulated time — permanently (a dead vault) or
 * for a transient down-window (a unit-level reset). Unlike the latency
 * deratings above, this is a *loss* fault: the recovery protocol
 * (docs/ARCHITECTURE.md) drains the failing unit's queues, re-homes
 * its address range onto a live buddy, and redispatches undelivered
 * forwarded/stolen tasks after an ack timeout with capped exponential
 * backoff, so every staged task still executes exactly once.
 */
struct UnitFailureConfig
{
    /** Explicit failed unit ids; takes precedence over @ref count. */
    std::vector<std::uint32_t> units;
    /** Number of failed units picked deterministically from the seed. */
    std::uint32_t count = 0;
    /** Simulated time at which the set goes down (may be mid-epoch). */
    double failAtNs = 0.0;
    /** Time the units come back up; 0 means a permanent kill. */
    double recoverAtNs = 0.0;
    /**
     * Base delivery-ack timeout for forwarded/stolen tasks: a send not
     * acknowledged within this window (doubled per redispatch attempt,
     * see common/backoff.hh) is redispatched to a live unit.
     */
    double ackTimeoutNs = 2000.0;
    /** Base backoff added before each redispatch attempt. */
    double redispatchBackoffNs = 500.0;
    /** Redispatch budget per task before delivery is forced direct. */
    std::uint32_t maxRedispatch = 8;

    bool enabled() const { return count > 0 || !units.empty(); }
};

/**
 * Epoch watchdog: abort with a diagnostic dump of per-unit queue depths
 * instead of hanging silently when one bulk-synchronous epoch exceeds
 * the configured simulated-time or event budget (0 = unlimited).
 */
struct WatchdogConfig
{
    /** Max simulated ticks a single epoch may span (0 = unlimited). */
    Tick maxEpochTicks = 0;
    /** Max events a single epoch may execute (0 = unlimited). */
    std::uint64_t maxEpochEvents = 0;

    bool enabled() const { return maxEpochTicks > 0 || maxEpochEvents > 0; }
};

/** All fault-injection knobs (SystemConfig::fault). */
struct FaultConfig
{
    StragglerFaultConfig straggler;
    LinkFaultConfig link;
    DramFaultConfig dram;
    UnitFailureConfig unitFailure;
    WatchdogConfig watchdog;

    /** Any injector (not the watchdog) active? */
    bool
    anyInjector() const
    {
        return straggler.enabled() || link.enabled() || dram.enabled()
            || unitFailure.enabled();
    }
};

} // namespace abndp

#endif // ABNDP_FAULT_FAULT_CONFIG_HH
