/**
 * @file
 * Runtime interpreter of FaultConfig: resolves the straggler-unit and
 * faulty-link sets deterministically from the system seed and answers
 * the per-access queries of the core, network, DRAM, and scheduler
 * models. One instance per NdpSystem.
 */

#ifndef ABNDP_FAULT_FAULT_MODEL_HH
#define ABNDP_FAULT_FAULT_MODEL_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace abndp
{

/** Deterministic fault & straggler injection engine. */
class FaultModel
{
  public:
    explicit FaultModel(const SystemConfig &cfg);

    /** Any injector configured at all (fast no-fault path check). */
    bool anyInjector() const { return injectorsOn; }

    // ---- Straggler units ----

    /** Is unit @p u in the straggler set (regardless of the window)? */
    bool isStraggler(UnitId u) const { return stragglerMask[u] != 0; }

    /** The resolved straggler set, in unit-id order. */
    const std::vector<UnitId> &stragglers() const { return stragglerIds; }

    /**
     * Core-time stretch factor (>= 1) of unit @p u at tick @p now:
     * 1 / computeDerate inside the activity window, 1 outside.
     */
    double
    computeSlowdown(UnitId u, Tick now) const
    {
        if (stragglerMask[u] == 0 || !windowActive(now))
            return 1.0;
        return computeStretch;
    }

    /** Local-DRAM stretch factor (>= 1) of unit @p u at tick @p now. */
    double
    bandwidthSlowdown(UnitId u, Tick now) const
    {
        if (stragglerMask[u] == 0 || !windowActive(now))
            return 1.0;
        return bandwidthStretch;
    }

    /**
     * Effective service speed (<= 1) the scheduler's load snapshot sees
     * for unit @p u: the worse of the two deratings inside the window.
     * Dividing a unit's queued work W by this makes costload steer tasks
     * away from derated units proportionally to how slow they are.
     */
    double
    speedFactor(UnitId u, Tick now) const
    {
        if (stragglerMask[u] == 0 || !windowActive(now))
            return 1.0;
        return minDerate;
    }

    // ---- Link faults ----

    /** Is directed mesh link @p linkIdx (stack * 4 + dir) faulty? */
    bool
    linkFaulty(std::size_t linkIdx) const
    {
        return !linkMask.empty() && linkMask[linkIdx] != 0;
    }

    /**
     * Any faulty mesh link at all? Lets the network hoist the per-hop
     * linkFaulty() query out of its hot loop on fault-free machines.
     */
    bool
    anyLinkFault() const
    {
        for (std::uint8_t m : linkMask)
            if (m)
                return true;
        return false;
    }

    /** Fixed extra latency of one faulty-link traversal. */
    Tick linkExtraTicks() const { return extraTicks; }

    /**
     * Draw the number of consecutive transient drops a packet suffers on
     * a faulty link before getting through (bounded by maxRetries, so
     * delivery always succeeds and the simulation stays live).
     */
    std::uint32_t
    drawLinkDrops()
    {
        std::uint32_t drops = 0;
        while (drops < cfg.link.maxRetries && linkRng.chance(cfg.link.dropProb))
            ++drops;
        return drops;
    }

    /** Sender timeout before retransmission @p attempt (exponential). */
    Tick retryBackoffTicks(std::uint32_t attempt) const;

    // ---- DRAM error-retry ----

    double eccRetryProb() const { return cfg.dram.eccRetryProb; }
    Tick eccRetryTicks() const { return eccTicks; }

    // ---- Unit failures (fail-stop; see docs/ARCHITECTURE.md) ----
    //
    // The FaultModel owns the liveness mask and the deterministic
    // re-home map; the epoch engine drives the down/up transitions
    // (markDown/markUp) at the configured simulated times, and every
    // consumer — scheduler, memory system, steal probes — consults
    // isLive()/rehomeOf() instead of keeping private copies.

    /** Is the unit-failure injector configured at all? */
    bool unitFailuresEnabled() const { return cfg.unitFailure.enabled(); }

    /** The resolved failure set, in unit-id order. */
    const std::vector<UnitId> &failedUnits() const { return failedIds; }

    /** Is unit @p u currently accepting work? */
    bool isLive(UnitId u) const { return liveMask[u] != 0; }

    /** Any unit currently down (fast no-failure path check)? */
    bool anyUnitDown() const { return nDown > 0; }

    /** Units currently down. */
    std::uint32_t downCount() const { return nDown; }

    /**
     * The live unit serving unit @p u's role while @p u is down: the
     * next live unit in id order (wrapping), i.e. @p u itself while it
     * is live. validate() guarantees at least one live unit exists.
     */
    UnitId rehomeOf(UnitId u) const { return rehome[u]; }

    /** Take unit @p u down (idempotent); recomputes the re-home map. */
    void markDown(UnitId u);

    /** Bring unit @p u back up (idempotent). */
    void markUp(UnitId u);

    /** Tick at which the failure set goes down. */
    Tick failAtTick() const { return failTick; }

    /** Tick of recovery; 0 means the kill is permanent. */
    Tick recoverAtTick() const { return recoverTick; }

    /** Base delivery-ack timeout for forwarded/stolen tasks. */
    Tick ackTimeoutTicks() const { return ackTicks; }

    /** Backoff before redispatch @p attempt (capped exponential). */
    Tick redispatchBackoffTicks(std::uint32_t attempt) const;

    /** Redispatch budget per task. */
    std::uint32_t
    maxRedispatch() const
    {
        return cfg.unitFailure.maxRedispatch;
    }

  private:
    void recomputeRehome();

    bool
    windowActive(Tick now) const
    {
        if (windowEnd == 0)
            return true;
        return now >= windowStart && now < windowEnd;
    }

    const FaultConfig cfg;
    bool injectorsOn;

    std::vector<std::uint8_t> stragglerMask; // unit -> straggler?
    std::vector<UnitId> stragglerIds;
    std::vector<std::uint8_t> linkMask;      // directed link -> faulty?
    double computeStretch;
    double bandwidthStretch;
    double minDerate;
    Tick windowStart;
    Tick windowEnd;
    Tick extraTicks;
    Tick backoffTicks;
    Tick eccTicks;

    std::vector<UnitId> failedIds;
    std::vector<std::uint8_t> liveMask;  // unit -> currently live?
    std::vector<UnitId> rehome;          // unit -> live stand-in
    std::uint32_t nDown = 0;
    Tick failTick;
    Tick recoverTick;
    Tick ackTicks;
    Tick redispatchTicks;

    Rng linkRng;
};

} // namespace abndp

#endif // ABNDP_FAULT_FAULT_MODEL_HH
