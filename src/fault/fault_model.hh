/**
 * @file
 * Runtime interpreter of FaultConfig: resolves the straggler-unit and
 * faulty-link sets deterministically from the system seed and answers
 * the per-access queries of the core, network, DRAM, and scheduler
 * models. One instance per NdpSystem.
 */

#ifndef ABNDP_FAULT_FAULT_MODEL_HH
#define ABNDP_FAULT_FAULT_MODEL_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace abndp
{

/** Deterministic fault & straggler injection engine. */
class FaultModel
{
  public:
    explicit FaultModel(const SystemConfig &cfg);

    /** Any injector configured at all (fast no-fault path check). */
    bool anyInjector() const { return injectorsOn; }

    // ---- Straggler units ----

    /** Is unit @p u in the straggler set (regardless of the window)? */
    bool isStraggler(UnitId u) const { return stragglerMask[u] != 0; }

    /** The resolved straggler set, in unit-id order. */
    const std::vector<UnitId> &stragglers() const { return stragglerIds; }

    /**
     * Core-time stretch factor (>= 1) of unit @p u at tick @p now:
     * 1 / computeDerate inside the activity window, 1 outside.
     */
    double
    computeSlowdown(UnitId u, Tick now) const
    {
        if (stragglerMask[u] == 0 || !windowActive(now))
            return 1.0;
        return computeStretch;
    }

    /** Local-DRAM stretch factor (>= 1) of unit @p u at tick @p now. */
    double
    bandwidthSlowdown(UnitId u, Tick now) const
    {
        if (stragglerMask[u] == 0 || !windowActive(now))
            return 1.0;
        return bandwidthStretch;
    }

    /**
     * Effective service speed (<= 1) the scheduler's load snapshot sees
     * for unit @p u: the worse of the two deratings inside the window.
     * Dividing a unit's queued work W by this makes costload steer tasks
     * away from derated units proportionally to how slow they are.
     */
    double
    speedFactor(UnitId u, Tick now) const
    {
        if (stragglerMask[u] == 0 || !windowActive(now))
            return 1.0;
        return minDerate;
    }

    // ---- Link faults ----

    /** Is directed mesh link @p linkIdx (stack * 4 + dir) faulty? */
    bool
    linkFaulty(std::size_t linkIdx) const
    {
        return !linkMask.empty() && linkMask[linkIdx] != 0;
    }

    /** Fixed extra latency of one faulty-link traversal. */
    Tick linkExtraTicks() const { return extraTicks; }

    /**
     * Draw the number of consecutive transient drops a packet suffers on
     * a faulty link before getting through (bounded by maxRetries, so
     * delivery always succeeds and the simulation stays live).
     */
    std::uint32_t
    drawLinkDrops()
    {
        std::uint32_t drops = 0;
        while (drops < cfg.link.maxRetries && linkRng.chance(cfg.link.dropProb))
            ++drops;
        return drops;
    }

    /** Sender timeout before retransmission @p attempt (exponential). */
    Tick
    retryBackoffTicks(std::uint32_t attempt) const
    {
        return backoffTicks << (attempt < 16 ? attempt : 16);
    }

    // ---- DRAM error-retry ----

    double eccRetryProb() const { return cfg.dram.eccRetryProb; }
    Tick eccRetryTicks() const { return eccTicks; }

  private:
    bool
    windowActive(Tick now) const
    {
        if (windowEnd == 0)
            return true;
        return now >= windowStart && now < windowEnd;
    }

    const FaultConfig cfg;
    bool injectorsOn;

    std::vector<std::uint8_t> stragglerMask; // unit -> straggler?
    std::vector<UnitId> stragglerIds;
    std::vector<std::uint8_t> linkMask;      // directed link -> faulty?
    double computeStretch;
    double bandwidthStretch;
    double minDerate;
    Tick windowStart;
    Tick windowEnd;
    Tick extraTicks;
    Tick backoffTicks;
    Tick eccTicks;

    Rng linkRng;
};

} // namespace abndp

#endif // ABNDP_FAULT_FAULT_MODEL_HH
