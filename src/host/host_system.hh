/**
 * @file
 * Host-only baseline H (paper Section 6): the same task-based workloads
 * executed on a server-class CPU with 16 out-of-order cores at 2.6 GHz, a
 * 20 MB shared LLC, and 4 channels of DDR4-2400. Modeled analytically:
 * out-of-order overlap is captured by dividing memory stall time by an
 * effective memory-level-parallelism factor.
 */

#ifndef ABNDP_HOST_HOST_SYSTEM_HH
#define ABNDP_HOST_HOST_SYSTEM_HH

#include <memory>
#include <vector>

#include "cache/set_assoc_cache.hh"
#include "common/config.hh"
#include "core/metrics.hh"
#include "mem/allocator.hh"
#include "sim/bandwidth_meter.hh"
#include "sim/event_queue.hh"
#include "tasking/task.hh"
#include "tasking/task_deque.hh"
#include "workloads/workload.hh"

namespace abndp
{

/** Non-NDP reference machine running the same bulk-synchronous tasks. */
class HostSystem : public TaskSink
{
  public:
    explicit HostSystem(const SystemConfig &cfg);

    SimAllocator &allocator() { return alloc; }

    /** Run a workload to completion (or cfg.maxEpochs). */
    RunMetrics run(Workload &wl);

    void enqueueTask(Task &&task) override;

  private:
    struct CoreState
    {
        bool busy = false;
        Tick activeTicks = 0;
    };

    void tryDispatch();
    Tick executeTiming(const Task &task, Tick start);

    SystemConfig cfg;
    SimAllocator alloc;
    EventQueue eq;
    SetAssocCache llc;
    std::vector<BandwidthMeter> channelMeter;
    std::vector<CoreState> cores;

    SlidingDeque<Task> active;
    SlidingDeque<Task> staged;
    Workload *workload = nullptr;
    std::uint64_t curEpoch = 0;
    std::uint64_t activeRemaining = 0;
    std::uint64_t totalTasks = 0;
    Tick lastCompletionTick = 0;
    bool inExecute = false;

    Tick llcHitTicks;
    Tick ddrLatencyTicks;
    double ddrTicksPerByte;
    double cycleTicks;
};

} // namespace abndp

#endif // ABNDP_HOST_HOST_SYSTEM_HH
