#include "host/host_system.hh"

#include <algorithm>
#include <chrono>

#include "common/logging.hh"
#include "common/rng.hh"

namespace abndp
{

HostSystem::HostSystem(const SystemConfig &cfg_)
    : cfg(cfg_),
      alloc(cfg),
      llc(cfg.host.llc, mix64(cfg.seed ^ 0x4000ull)),
      channelMeter(cfg.host.ddrChannels),
      cores(cfg.host.cores),
      llcHitTicks(static_cast<Tick>(cfg.host.llcHitNs * ticksPerNs)),
      ddrLatencyTicks(static_cast<Tick>(cfg.host.ddrLatencyNs * ticksPerNs)),
      ddrTicksPerByte(1000.0 / cfg.host.ddrGBsPerChannel),
      cycleTicks(1000.0 / cfg.host.freqGHz)
{
}

void
HostSystem::enqueueTask(Task &&task)
{
    abndp_assert(workload != nullptr);
    if (inExecute)
        abndp_assert(task.timestamp == curEpoch + 1);
    else
        abndp_assert(task.timestamp == curEpoch);
    task.finalizeBlocks(workload->taskArena());
    staged.push_back(std::move(task));
}

Tick
HostSystem::executeTiming(const Task &task, Tick start)
{
    Tick t = start;

    // Blocks were memoized at enqueue (Task::finalizeBlocks); an empty
    // list means an empty hint.
    double stall = 0.0;
    for (Addr block : task.blocks) {
        if (llc.access(block)) {
            stall += static_cast<double>(llcHitTicks);
        } else {
            auto ch = blockNumber(block) % channelMeter.size();
            auto burst = static_cast<Tick>(ddrTicksPerByte
                                           * cachelineBytes);
            Tick begin = channelMeter[ch].reserve(t, burst);
            stall += static_cast<double>((begin - t) + ddrLatencyTicks
                                         + burst);
            llc.insert(block);
        }
    }

    // Out-of-order cores overlap independent misses: effective stall is
    // the serial latency divided by the MLP factor.
    t += static_cast<Tick>(stall / cfg.host.mlp);
    t += static_cast<Tick>(static_cast<double>(task.computeInstrs)
                           / cfg.host.ipc * cycleTicks);

    // Writes: LLC write-allocate, cost folded into compute.
    for (Addr w : task.writes)
        llc.insert(blockAlign(w));

    if (t == start)
        t = start + 1;
    return t;
}

void
HostSystem::tryDispatch()
{
    for (std::size_t c = 0; c < cores.size(); ++c) {
        auto &core = cores[c];
        if (core.busy)
            continue;
        if (active.empty())
            break;
        Task task = std::move(active.front());
        active.pop_front();

        inExecute = true;
        workload->executeTask(task, *this);
        inExecute = false;

        Tick now = eq.now();
        Tick end = executeTiming(task, now);
        core.busy = true;
        core.activeTicks += end - now;
        ++totalTasks;
        eq.schedule(end, [this, c] {
            cores[c].busy = false;
            abndp_assert(activeRemaining > 0);
            --activeRemaining;
            lastCompletionTick = eq.now();
            tryDispatch();
        });
    }
}

RunMetrics
HostSystem::run(Workload &wl)
{
    abndp_assert(workload == nullptr, "HostSystem::run() may be called once");
    const auto hostStart = std::chrono::steady_clock::now();
    workload = &wl;
    wl.setup(alloc);

    curEpoch = 0;
    wl.emitInitialTasks(*this);

    std::uint64_t ts = 0;
    while (!staged.empty() && (cfg.maxEpochs == 0 || ts < cfg.maxEpochs)) {
        // Epoch boundary (see NdpSystem::run): free the generation two
        // epochs back, keep this epoch's staged hints alive.
        wl.taskArena().rotate();
        curEpoch = ts;
        active.swap(staged);
        staged.clear();
        activeRemaining = active.size();
        tryDispatch();
        eq.runAll();
        abndp_assert(activeRemaining == 0);
        // Bulk boundary: the LLC may keep data (hardware-coherent host),
        // but primary data changed, so invalidate for conservatism.
        llc.invalidateAll();
        wl.endEpoch(ts);
        ++ts;
    }

    RunMetrics m;
    m.ticks = lastCompletionTick;
    m.epochs = ts;
    m.tasks = totalTasks;
    for (const auto &core : cores)
        m.coreActiveTicks.push_back(core.activeTicks);
    m.l1Hits = llc.hits();
    m.l1Misses = llc.misses();
    m.simEvents = eq.executed();
    m.hostSeconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - hostStart).count();
    return m;
}

} // namespace abndp
