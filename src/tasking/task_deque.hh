/**
 * @file
 * Vector-backed FIFO for per-unit task queues.
 *
 * std::deque allocates and frees a fixed-size segment roughly every few
 * tasks and releases them all at every bulk-synchronous barrier, which
 * shows up as steady-state allocator traffic in the epoch staging path.
 * This container keeps one contiguous buffer with a sliding head index:
 * pops are an index bump, clears keep capacity, and swap() lets the
 * barrier recycle the previous epoch's buffers for the next epoch's
 * staged tasks, so the hot path is allocation-free after warm-up.
 */

#ifndef ABNDP_TASKING_TASK_DEQUE_HH
#define ABNDP_TASKING_TASK_DEQUE_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace abndp
{

/** FIFO queue over a reusable contiguous buffer (see file comment). */
template <typename T>
class SlidingDeque
{
  public:
    bool empty() const { return headIdx == buf.size(); }
    std::size_t size() const { return buf.size() - headIdx; }

    /** Ensure room for @p n live elements without reallocation. */
    void reserve(std::size_t n) { buf.reserve(headIdx + n); }

    T &front() { return buf[headIdx]; }
    const T &front() const { return buf[headIdx]; }
    T &back() { return buf.back(); }
    const T &back() const { return buf.back(); }

    /** i-th live element from the front. */
    T &operator[](std::size_t i) { return buf[headIdx + i]; }
    const T &operator[](std::size_t i) const { return buf[headIdx + i]; }

    void push_back(const T &v) { buf.push_back(v); }
    void push_back(T &&v) { buf.push_back(std::move(v)); }

    /**
     * Drop the front element. The slot is compacted away only once the
     * queue drains (popped-from fronts are moved-from shells, so the
     * deferred destruction holds no meaningful resources).
     */
    void
    pop_front()
    {
        abndp_assert(!empty());
        ++headIdx;
        if (headIdx == buf.size())
            clear();
    }

    /** Drop the back element (work stealing takes from the tail). */
    void
    pop_back()
    {
        abndp_assert(!empty());
        buf.pop_back();
        if (headIdx == buf.size())
            clear();
    }

    /** Remove all elements; the buffer's capacity is retained. */
    void
    clear()
    {
        buf.clear();
        headIdx = 0;
    }

    /** Exchange buffers (epoch staging recycles drained queues). */
    void
    swap(SlidingDeque &other)
    {
        buf.swap(other.buf);
        std::swap(headIdx, other.headIdx);
    }

    /** Capacity of the underlying buffer (tests / tuning). */
    std::size_t capacity() const { return buf.capacity(); }

  private:
    std::vector<T> buf;
    std::size_t headIdx = 0;
};

} // namespace abndp

#endif // ABNDP_TASKING_TASK_DEQUE_HH
