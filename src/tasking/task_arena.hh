/**
 * @file
 * Two-generation bump arena for task-hint storage.
 *
 * Every task of a bulk-synchronous epoch carries a hint (address list,
 * ranges, write set, memoized block list) whose lifetime is exactly one
 * epoch: tasks for timestamp ts+1 are created while ts executes and die
 * when ts+1's barrier completes. Allocating those spans individually
 * (one std::vector per task per member) dominated the allocator profile
 * at scale; the arena replaces them with pointer bumps into two
 * alternating generations:
 *
 *   - during epoch ts, new allocations (hints of epoch ts+1's tasks) go
 *     to the *active* generation;
 *   - the epoch engine calls rotate() at every epoch boundary, flipping
 *     the active generation and resetting it. The generation being
 *     reset held epoch ts-1's hints, which are dead by construction.
 *
 * The arena is owned by the workload generator (Workload base class):
 * hints are built by workload code, and each simulator instance owns
 * its workload, so the arena inherits the simulator's no-shared-state
 * threading model (the sweep tool runs instances on threads).
 *
 * Chunks grow geometrically and are coalesced into one block on reset,
 * so a steady-state epoch performs zero allocations. Addresses are
 * stable until the owning generation is reset.
 */

#ifndef ABNDP_TASKING_TASK_ARENA_HH
#define ABNDP_TASKING_TASK_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace abndp
{

/** Epoch-scoped bump allocator with two alternating generations. */
class TaskArena
{
  public:
    /**
     * Allocate uninitialized storage for @p n objects of type @p T in
     * the active generation. The storage lives until the generation is
     * reset (two rotate() calls later at the earliest).
     */
    template <typename T>
    T *
    alloc(std::size_t n)
    {
        return static_cast<T *>(
            regions[active].alloc(n * sizeof(T), alignof(T)));
    }

    /**
     * Epoch boundary: flip the active generation and reset the new one
     * (it held the hints of the epoch before last, now dead). Called by
     * the epoch engine before each epoch starts.
     */
    void
    rotate()
    {
        active ^= 1u;
        regions[active].reset();
    }

    /** Bytes currently reserved across both generations (tests). */
    std::size_t
    capacityBytes() const
    {
        return regions[0].capacity() + regions[1].capacity();
    }

  private:
    struct Chunk
    {
        std::unique_ptr<std::byte[]> mem;
        std::size_t size = 0;
    };

    struct Region
    {
        /** First chunk size; later chunks double. */
        static constexpr std::size_t minChunkBytes = std::size_t{1} << 16;

        std::vector<Chunk> chunks;
        std::size_t cur = 0;  // chunk being bump-allocated
        std::size_t used = 0; // bytes consumed in chunks[cur]

        void *
        alloc(std::size_t bytes, std::size_t align)
        {
            if (bytes == 0)
                bytes = align; // distinct non-null pointers, keep simple
            std::size_t at = (used + align - 1) & ~(align - 1);
            if (chunks.empty() || at + bytes > chunks[cur].size) {
                grow(bytes);
                at = 0;
            }
            used = at + bytes;
            return chunks[cur].mem.get() + at;
        }

        void
        grow(std::size_t bytes)
        {
            // Advance to an already-reserved chunk when one fits (the
            // post-reset single chunk), else append a doubled one.
            if (!chunks.empty() && cur + 1 < chunks.size()
                && chunks[cur + 1].size >= bytes) {
                ++cur;
                used = 0;
                return;
            }
            std::size_t sz = chunks.empty()
                ? minChunkBytes
                : chunks.back().size * 2;
            if (sz < bytes)
                sz = bytes;
            chunks.push_back(
                Chunk{std::make_unique<std::byte[]>(sz), sz});
            cur = chunks.size() - 1;
            used = 0;
        }

        void
        reset()
        {
            // Coalesce: replace a fragmented chunk list with one block
            // of the combined size, so the next generation bump-fills a
            // single allocation (and later resets allocate nothing).
            if (chunks.size() > 1) {
                std::size_t total = 0;
                for (const Chunk &c : chunks)
                    total += c.size;
                chunks.clear();
                chunks.push_back(
                    Chunk{std::make_unique<std::byte[]>(total), total});
            }
            cur = 0;
            used = 0;
        }

        std::size_t
        capacity() const
        {
            std::size_t total = 0;
            for (const Chunk &c : chunks)
                total += c.size;
            return total;
        }
    };

    Region regions[2];
    unsigned active = 0;
};

} // namespace abndp

#endif // ABNDP_TASKING_TASK_ARENA_HH
