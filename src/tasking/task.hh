/**
 * @file
 * Swarm-like task abstraction (paper Section 3.1).
 *
 * A task carries a function opcode, a timestamp (bulk-synchronous epoch),
 * a hint with the addresses of all primary data it will read plus an
 * optional workload estimate, and an argument. Tasks with equal
 * timestamps run in parallel; updates become visible when the timestamp
 * ends. By convention hint.data[0] is the address of the task's main
 * (to-be-updated) element, which defines its "home" for co-location.
 *
 * The hint spans (data, ranges, writes, and the runtime-memoized block
 * list) are SmallVec spans: small hints live inline in the task object
 * and larger ones spill into the per-epoch TaskArena owned by the
 * workload generator, so task creation performs no per-member heap
 * allocation and task movement (steals, forwards, queue shuffles) is a
 * pointer transfer. Tasks are therefore move-only; the rare test or
 * tool that needs a duplicate calls clone().
 */

#ifndef ABNDP_TASKING_TASK_HH
#define ABNDP_TASKING_TASK_HH

#include <algorithm>
#include <cstdint>

#include "common/types.hh"
#include "tasking/small_vec.hh"
#include "tasking/task_arena.hh"

namespace abndp
{

/** A contiguous range of primary data read by a task. */
struct AddrRange
{
    Addr start = 0;
    std::uint32_t bytes = 0;

    /** Number of cache lines the range touches. */
    std::uint32_t
    lines() const
    {
        if (bytes == 0)
            return 0;
        Addr first = blockAlign(start);
        Addr last = blockAlign(start + bytes - 1);
        return static_cast<std::uint32_t>((last - first) / cachelineBytes
                                          + 1);
    }
};

/** Scheduler-visible information attached to each task. */
struct TaskHint
{
    /** Primary-data read addresses; data[0] is the main element. */
    SmallVec<Addr, 2> data;
    /**
     * Contiguous primary-data ranges (Section 3.1 allows "single
     * cacheline addresses or address ranges"); e.g., adjacency lists.
     */
    SmallVec<AddrRange, 1> ranges;
    /**
     * Optional programmer-supplied computation load. 0 means unset, in
     * which case the scheduler estimates the load from the memory access
     * cost of the hint addresses (Section 3.1).
     */
    std::uint64_t workload = 0;

    /** Total cache lines referenced by the hint. */
    std::uint64_t
    totalLines() const
    {
        std::uint64_t n = data.size();
        for (const auto &r : ranges)
            n += r.lines();
        return n;
    }
};

/** One unit of data-centric work. */
struct Task
{
    /** Workload-defined function opcode. */
    std::uint32_t func = 0;
    /** Bulk-synchronous timestamp (epoch number). */
    std::uint64_t timestamp = 0;
    /** Workload-defined argument (e.g., vertex id, row id, query id). */
    std::uint64_t arg = 0;
    /** Scheduler hint: read addresses + optional load. */
    TaskHint hint;
    /** Addresses written at task completion (bypass caches, to home). */
    SmallVec<Addr, 2> writes;
    /** Non-memory instruction estimate for timing/energy. */
    std::uint64_t computeInstrs = 0;

    // ---- Fields managed by the runtime, not the workload ----
    /**
     * Memoized sorted, deduplicated block addresses of the hint, filled
     * by finalizeBlocks() at enqueue so neither the prefetcher nor the
     * execution walk re-derives (and re-sorts) them per visit. Empty
     * means "not memoized": consumers fall back to deriving the list,
     * which is exact because an empty hint also derives an empty list.
     */
    SmallVec<Addr, 2> blocks;
    /** Memoized hint.totalLines(), set alongside blocks. 0 = unset. */
    std::uint64_t hintLines = 0;
    /** Home unit of the main element (set on enqueue). */
    UnitId mainHome = invalidUnit;
    /** Scheduler load estimate used for the W counters. */
    double loadEstimate = 0.0;
    /** True once the prefetch unit issued this task's hint prefetches. */
    bool prefetched = false;
    /** Times this task was forwarded between scheduling windows. */
    std::uint8_t forwardHops = 0;
    /**
     * True once the unit-failure recovery protocol touched this task:
     * drained from a failing unit's queues, or redispatched after a
     * delivery-ack timeout. Feeds the task-conservation-under-failure
     * law (staged == executed-direct + executed-recovered, src/check).
     */
    bool recovered = false;
    /** Delivery-ack redispatch attempts consumed (capped backoff). */
    std::uint8_t redispatchCount = 0;
    /**
     * Serving mode only: the tick this request arrived at the driver
     * (latency = completion - arrival) and its tenant. Both stay zero
     * in batch runs.
     */
    Tick servingArrival = 0;
    std::uint8_t tenant = 0;

    // Move-only: every runtime path (staging, forwards, steals,
    // recovery transits) transfers ownership of the hint spans; an
    // accidental copy would silently re-heap them per hop.
    Task() = default;
    Task(Task &&) noexcept = default;
    Task &operator=(Task &&) noexcept = default;
    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    /** Explicit deep copy for tests/tools (heap-backed spans). */
    Task
    clone() const
    {
        Task t;
        t.func = func;
        t.timestamp = timestamp;
        t.arg = arg;
        t.hint = hint;
        t.writes = writes;
        t.computeInstrs = computeInstrs;
        t.blocks = blocks;
        t.hintLines = hintLines;
        t.mainHome = mainHome;
        t.loadEstimate = loadEstimate;
        t.prefetched = prefetched;
        t.forwardHops = forwardHops;
        t.recovered = recovered;
        t.redispatchCount = redispatchCount;
        t.servingArrival = servingArrival;
        t.tenant = tenant;
        return t;
    }

    /**
     * Memoize the hint-derived per-task state: totalLines() for the
     * load estimate and the sorted deduplicated block list for the
     * access path. Called once at enqueue by the runtime that owns
     * @p arena (the workload generator's epoch arena).
     */
    void
    finalizeBlocks(TaskArena &arena)
    {
        hintLines = hint.totalLines();
        blocks.clear();
        std::size_t cnt = hint.data.size();
        for (const auto &r : hint.ranges)
            cnt += r.lines();
        if (cnt == 0)
            return;
        blocks.reserveIn(arena, cnt);
        for (Addr a : hint.data)
            blocks.push_back(blockAlign(a));
        for (const auto &r : hint.ranges)
            for (Addr a = blockAlign(r.start); a < r.start + r.bytes;
                 a += cachelineBytes)
                blocks.push_back(a);
        std::sort(blocks.begin(), blocks.end());
        blocks.truncate(static_cast<std::size_t>(
            std::unique(blocks.begin(), blocks.end()) - blocks.begin()));
    }
};

/**
 * Destination for enqueue_task(): the NDP runtime (which schedules the
 * task) or a test collector.
 */
class TaskSink
{
  public:
    virtual ~TaskSink() = default;

    /**
     * Enqueue a child task (the enqueue_task API). Called both for the
     * initial task set and from inside executeTask(); children must carry
     * timestamp = parent.timestamp + 1.
     */
    virtual void enqueueTask(Task &&task) = 0;
};

} // namespace abndp

#endif // ABNDP_TASKING_TASK_HH
