/**
 * @file
 * Small-size-inlined span container for task hints.
 *
 * Behaves like a minimal std::vector for trivially copyable elements,
 * with three storage tiers chosen to keep the task hot path free of
 * per-task heap traffic:
 *
 *   1. inline: up to N elements live inside the object (the common
 *      case for writes and low-degree hint lists);
 *   2. arena: reserveIn(TaskArena) places the exact-sized spill in the
 *      epoch bump arena — no ownership, freed wholesale at rotation;
 *   3. heap: growth beyond a reserved capacity (tests, standalone
 *      hints built without an arena) falls back to an owned buffer.
 *
 * Moves transfer the pointer (or memcpy the inline prefix); copies are
 * deep and always land inline or on the heap, never aliasing an arena
 * generation the copy does not control.
 */

#ifndef ABNDP_TASKING_SMALL_VEC_HH
#define ABNDP_TASKING_SMALL_VEC_HH

#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <type_traits>

#include "common/logging.hh"
#include "tasking/task_arena.hh"

namespace abndp
{

/** Vector-like container with inline/arena/heap storage (see above). */
template <typename T, std::uint32_t N>
class SmallVec
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "SmallVec is memcpy-based");
    static_assert(N > 0, "inline capacity must be nonzero");

  public:
    SmallVec() = default;

    SmallVec(std::initializer_list<T> il) { assign(il.begin(), il.size()); }

    SmallVec(const SmallVec &o) { assign(o.ptr, o.len); }

    SmallVec(SmallVec &&o) noexcept { steal(o); }

    SmallVec &
    operator=(const SmallVec &o)
    {
        if (this != &o)
            assign(o.ptr, o.len);
        return *this;
    }

    SmallVec &
    operator=(SmallVec &&o) noexcept
    {
        if (this != &o) {
            releaseHeap();
            steal(o);
        }
        return *this;
    }

    SmallVec &
    operator=(std::initializer_list<T> il)
    {
        assign(il.begin(), il.size());
        return *this;
    }

    ~SmallVec() { releaseHeap(); }

    std::size_t size() const { return len; }
    bool empty() const { return len == 0; }
    std::size_t capacity() const { return cap; }

    T *data() { return ptr; }
    const T *data() const { return ptr; }
    T *begin() { return ptr; }
    const T *begin() const { return ptr; }
    T *end() { return ptr + len; }
    const T *end() const { return ptr + len; }

    T &operator[](std::size_t i) { return ptr[i]; }
    const T &operator[](std::size_t i) const { return ptr[i]; }
    T &front() { return ptr[0]; }
    const T &front() const { return ptr[0]; }
    T &back() { return ptr[len - 1]; }
    const T &back() const { return ptr[len - 1]; }

    /** Drop all elements; storage (inline, arena, or heap) is kept. */
    void clear() { len = 0; }

    /** Drop elements past @p n (sort+unique tail trim). */
    void
    truncate(std::size_t n)
    {
        abndp_assert(n <= len);
        len = static_cast<std::uint32_t>(n);
    }

    /**
     * Reserve exact capacity for an empty container, spilling to the
     * epoch arena when @p n exceeds the inline capacity. Callers know
     * the final size (hint builders walk degree counts), so the arena
     * block never needs to grow; should a later push_back overflow it
     * anyway, growth falls back to the heap and the arena block is
     * simply abandoned until rotation.
     */
    void
    reserveIn(TaskArena &arena, std::size_t n)
    {
        abndp_assert(len == 0, "reserveIn on a non-empty SmallVec");
        releaseHeap();
        if (n <= N) {
            ptr = inlineBuf;
            cap = N;
        } else {
            ptr = arena.alloc<T>(n);
            cap = static_cast<std::uint32_t>(n);
        }
    }

    void
    push_back(const T &v)
    {
        if (len == cap)
            growHeap();
        ptr[len++] = v;
    }

  private:
    void
    assign(const T *src, std::size_t n)
    {
        releaseHeap();
        if (n <= N) {
            ptr = inlineBuf;
            cap = N;
        } else {
            ptr = new T[n];
            cap = static_cast<std::uint32_t>(n);
            heapOwned = true;
        }
        if (n > 0)
            std::memcpy(ptr, src, n * sizeof(T));
        len = static_cast<std::uint32_t>(n);
    }

    void
    steal(SmallVec &o) noexcept
    {
        len = o.len;
        if (o.ptr == o.inlineBuf) {
            ptr = inlineBuf;
            cap = N;
            heapOwned = false;
            if (len > 0)
                std::memcpy(inlineBuf, o.inlineBuf, len * sizeof(T));
        } else {
            ptr = o.ptr;
            cap = o.cap;
            heapOwned = o.heapOwned;
        }
        o.ptr = o.inlineBuf;
        o.len = 0;
        o.cap = N;
        o.heapOwned = false;
    }

    void
    growHeap()
    {
        std::uint32_t newCap = cap < 4 ? 8 : cap * 2;
        T *np = new T[newCap];
        if (len > 0)
            std::memcpy(np, ptr, len * sizeof(T));
        releaseHeap();
        ptr = np;
        cap = newCap;
        heapOwned = true;
    }

    void
    releaseHeap()
    {
        if (heapOwned) {
            delete[] ptr;
            heapOwned = false;
        }
        ptr = inlineBuf;
        cap = N;
    }

    T *ptr = inlineBuf;
    std::uint32_t len = 0;
    std::uint32_t cap = N;
    bool heapOwned = false;
    T inlineBuf[N];
};

} // namespace abndp

#endif // ABNDP_TASKING_SMALL_VEC_HH
