/**
 * @file
 * Per-unit Traveller Cache storage (paper Section 4.4): a set-associative
 * DRAM cache region with SRAM tags, probabilistic (bypassing) insertion,
 * random replacement by default, and bulk invalidation at the end of each
 * bulk-synchronous timestamp. Only read-only primary data are cached, so
 * no writebacks ever occur.
 *
 * Tags and recency stamps are contiguous preallocated [numSets * assoc]
 * parallel arrays (the set count is fixed at construction), so the
 * hottest loop of the memory system scans a flat 8-byte tag row instead
 * of probing a hash map and chasing a heap-allocated per-set vector. Bulk invalidation stays O(1)
 * through per-set generation stamps: a set whose stamp is stale is
 * logically empty and is lazily re-initialized on its first insertion of
 * the new timestamp, so untouched sets never even fault their pages in.
 */

#ifndef ABNDP_CACHE_TRAVELLER_CACHE_HH
#define ABNDP_CACHE_TRAVELLER_CACHE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/address_map.hh"
#include "obs/stats_registry.hh"

namespace abndp
{

/** One NDP unit's camp cache storage. */
class TravellerCache
{
  public:
    TravellerCache(const SystemConfig &cfg, std::uint64_t seed)
        : nSets(cfg.travellerSets()),
          setSplit(cfg.travellerSets()),
          hashedIdx(cfg.traveller.hashedIndex),
          assoc(cfg.traveller.assoc),
          repl(cfg.traveller.repl),
          rng(mix64(seed ^ 0x7261764c6c657243ULL)),
          bypassProb(cfg.traveller.bypassProb),
          // Default-initialized on purpose: ways of a set are written
          // before first use (lazy clear below), so the untouched bulk
          // of both arrays stays in never-faulted zero pages. Tags and
          // stamps are split (struct-of-arrays) so the hit probe scans
          // contiguous 8-byte tags — vectorizable, and one cacheline
          // covers 8 ways instead of 4.
          tags(new Addr[nSets * assoc]),
          stamps(new std::uint64_t[nSets * assoc]),
          setGen(nSets, 0)
    {
    }

    /** Probe the tags for a block; counts hit/miss and updates recency. */
    bool
    lookup(Addr blockAddr)
    {
        std::uint64_t s = setOf(blockAddr);
        if (setGen[s] == curGen) {
            const std::uint64_t base = s * assoc;
            const Addr *tag = &tags[base];
            // Occupied ways form a contiguous prefix (insertions fill
            // the first free slot, evictions replace in place).
            for (std::uint32_t w = 0;
                 w < assoc && tag[w] != invalidAddr; ++w) {
                if (tag[w] == blockAddr) {
                    if (repl == ReplPolicy::Lru)
                        stamps[base + w] = ++tick;
                    ++nHits;
                    return true;
                }
            }
        }
        ++nMisses;
        return false;
    }

    /** Presence check without stats/recency side effects. */
    bool
    contains(Addr blockAddr) const
    {
        std::uint64_t s = setOf(blockAddr);
        if (setGen[s] != curGen)
            return false;
        const Addr *tag = &tags[s * assoc];
        for (std::uint32_t w = 0; w < assoc && tag[w] != invalidAddr;
             ++w)
            if (tag[w] == blockAddr)
                return true;
        return false;
    }

    /**
     * Try to insert a block subject to the probabilistic insertion
     * policy. @return true if the block was actually inserted.
     */
    bool
    maybeInsert(Addr blockAddr)
    {
        if (rng.chance(bypassProb)) {
            ++nBypasses;
            return false;
        }
        std::uint64_t s = setOf(blockAddr);
        const std::uint64_t base = s * assoc;
        Addr *tag = &tags[base];
        std::uint64_t *stamp = &stamps[base];
        if (setGen[s] != curGen) {
            for (std::uint32_t w = 0; w < assoc; ++w) {
                tag[w] = invalidAddr;
                stamp[w] = 0;
            }
            setGen[s] = curGen;
        }
        std::uint32_t size = 0;
        for (; size < assoc && tag[size] != invalidAddr; ++size) {
            if (tag[size] == blockAddr) {
                if (repl == ReplPolicy::Lru)
                    stamp[size] = ++tick;
                return true; // raced insert of an already-present block
            }
        }
        if (size < assoc) {
            tag[size] = blockAddr;
            stamp[size] = ++tick;
            ++nOccupied;
        } else {
            std::uint32_t victim = 0;
            if (repl == ReplPolicy::Random) {
                victim = static_cast<std::uint32_t>(rng.below(assoc));
            } else {
                for (std::uint32_t w = 1; w < assoc; ++w)
                    if (stamp[w] < stamp[victim])
                        victim = w;
            }
            tag[victim] = blockAddr;
            stamp[victim] = ++tick;
            ++nEvicts;
        }
        ++nInserts;
        return true;
    }

    /**
     * Targeted invalidation: drop every cached block for which @p pred
     * (Addr -> bool) returns true — used to purge blocks homed on a
     * failed unit, whose copies can no longer be revalidated. Removals
     * count as evictions so the occupancy conservation law (occupancy
     * == insertions - evictions since bulk invalidation, src/check)
     * keeps holding; surviving ways are compacted so occupied ways
     * remain a contiguous prefix, as the lookup fast path requires.
     * @return the number of blocks dropped.
     */
    template <typename Pred>
    std::uint64_t
    invalidateMatching(Pred pred)
    {
        std::uint64_t dropped = 0;
        for (std::uint64_t s = 0; s < nSets; ++s) {
            if (setGen[s] != curGen)
                continue; // logically empty since the last bulk clear
            const std::uint64_t base = s * assoc;
            Addr *tag = &tags[base];
            std::uint64_t *stamp = &stamps[base];
            std::uint32_t keep = 0;
            std::uint32_t w = 0;
            for (; w < assoc && tag[w] != invalidAddr; ++w) {
                if (pred(tag[w])) {
                    ++dropped;
                } else {
                    tag[keep] = tag[w];
                    stamp[keep] = stamp[w];
                    ++keep;
                }
            }
            for (; keep < w; ++keep) {
                tag[keep] = invalidAddr;
                stamp[keep] = 0;
            }
        }
        nOccupied -= dropped;
        nEvicts += dropped;
        return dropped;
    }

    /** Clear all tags at the end of a timestamp (no writeback needed). */
    void
    bulkInvalidate()
    {
        ++curGen; // every set's stamp is now stale: logically empty
        nOccupied = 0;
        ++nBulkInvalidations;
    }

    std::uint64_t hits() const { return nHits.value(); }
    std::uint64_t misses() const { return nMisses.value(); }
    std::uint64_t insertions() const { return nInserts.value(); }
    std::uint64_t evictions() const { return nEvicts.value(); }
    std::uint64_t bypasses() const { return nBypasses.value(); }
    std::uint64_t occupancy() const { return nOccupied; }
    std::uint64_t capacityBlocks() const { return nSets * assoc; }
    std::uint64_t numSets() const { return nSets; }
    std::uint32_t associativity() const { return assoc; }

    /** Register this camp cache's stats under @p node. */
    void
    regStats(obs::StatNode &node) const
    {
        node.addCounter("hits", &nHits);
        node.addCounter("misses", &nMisses);
        node.addCounter("insertions", &nInserts);
        node.addCounter("evictions", &nEvicts);
        node.addCounter("bypasses", &nBypasses);
        node.addCounter("bulkInvalidations", &nBulkInvalidations);
        node.addValue("occupancyBlocks",
                      [this]() {
                          return static_cast<double>(nOccupied);
                      },
                      obs::StatKind::Gauge, true);
    }

  private:
    /**
     * Low-bit set index by default (paper Section 4.2: "the cache set
     * mapping follows traditional caches, using the lower bits in the
     * address"). Consecutive blocks therefore occupy consecutive sets,
     * which keeps DRAM row locality inside the cache data region.
     * traveller.hashedIndex switches to a mixed index — the knob that
     * measures the row-locality claim under the DDR backend; it must
     * agree with CampMapping::setIndex, which lays out the slots.
     */
    std::uint64_t setOf(Addr blockAddr) const
    {
        std::uint64_t block = blockNumber(blockAddr);
        return setSplit.mod(hashedIdx ? mix64(block) : block);
    }

    std::uint64_t nSets;
    Pow2Split setSplit;
    bool hashedIdx;
    std::uint32_t assoc;
    ReplPolicy repl;
    Rng rng;
    double bypassProb;
    std::uint64_t tick = 0;
    std::uint64_t nOccupied = 0;
    std::uint64_t curGen = 1;
    std::unique_ptr<Addr[]> tags;          // way tags, set-major
    std::unique_ptr<std::uint64_t[]> stamps; // parallel recency stamps
    std::vector<std::uint64_t> setGen;

    stats::Counter nHits;
    stats::Counter nMisses;
    stats::Counter nInserts;
    stats::Counter nEvicts;
    stats::Counter nBypasses;
    stats::Counter nBulkInvalidations;
};

} // namespace abndp

#endif // ABNDP_CACHE_TRAVELLER_CACHE_HH
