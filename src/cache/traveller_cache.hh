/**
 * @file
 * Per-unit Traveller Cache storage (paper Section 4.4): a set-associative
 * DRAM cache region with SRAM tags, probabilistic (bypassing) insertion,
 * random replacement by default, and bulk invalidation at the end of each
 * bulk-synchronous timestamp. Only read-only primary data are cached, so
 * no writebacks ever occur.
 *
 * The tag array is stored sparsely (hash map of occupied sets): a unit's
 * cache has up to 128k blocks but short runs touch a small fraction, and
 * bulk invalidation becomes O(occupancy) instead of O(capacity).
 */

#ifndef ABNDP_CACHE_TRAVELLER_CACHE_HH
#define ABNDP_CACHE_TRAVELLER_CACHE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/config.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace abndp
{

/** One NDP unit's camp cache storage. */
class TravellerCache
{
  public:
    TravellerCache(const SystemConfig &cfg, std::uint64_t seed)
        : nSets(cfg.travellerSets()),
          assoc(cfg.traveller.assoc),
          repl(cfg.traveller.repl),
          rng(mix64(seed ^ 0x7261764c6c657243ULL)),
          bypassProb(cfg.traveller.bypassProb)
    {
    }

    /** Probe the tags for a block; counts hit/miss and updates recency. */
    bool
    lookup(Addr blockAddr)
    {
        auto it = sets.find(setOf(blockAddr));
        if (it != sets.end()) {
            for (auto &way : it->second) {
                if (way.block == blockAddr) {
                    if (repl == ReplPolicy::Lru)
                        way.stamp = ++tick;
                    ++nHits;
                    return true;
                }
            }
        }
        ++nMisses;
        return false;
    }

    /** Presence check without stats/recency side effects. */
    bool
    contains(Addr blockAddr) const
    {
        auto it = sets.find(setOf(blockAddr));
        if (it == sets.end())
            return false;
        for (const auto &way : it->second)
            if (way.block == blockAddr)
                return true;
        return false;
    }

    /**
     * Try to insert a block subject to the probabilistic insertion
     * policy. @return true if the block was actually inserted.
     */
    bool
    maybeInsert(Addr blockAddr)
    {
        if (rng.chance(bypassProb)) {
            ++nBypasses;
            return false;
        }
        auto &set = sets[setOf(blockAddr)];
        for (auto &way : set) {
            if (way.block == blockAddr) {
                if (repl == ReplPolicy::Lru)
                    way.stamp = ++tick;
                return true; // raced insert of an already-present block
            }
        }
        if (set.size() < assoc) {
            set.push_back({blockAddr, ++tick});
            ++nOccupied;
        } else {
            std::size_t victim = 0;
            if (repl == ReplPolicy::Random) {
                victim = static_cast<std::size_t>(rng.below(set.size()));
            } else {
                for (std::size_t w = 1; w < set.size(); ++w)
                    if (set[w].stamp < set[victim].stamp)
                        victim = w;
            }
            set[victim] = {blockAddr, ++tick};
            ++nEvicts;
        }
        ++nInserts;
        return true;
    }

    /** Clear all tags at the end of a timestamp (no writeback needed). */
    void
    bulkInvalidate()
    {
        sets.clear();
        nOccupied = 0;
        ++nBulkInvalidations;
    }

    std::uint64_t hits() const { return nHits.value(); }
    std::uint64_t misses() const { return nMisses.value(); }
    std::uint64_t insertions() const { return nInserts.value(); }
    std::uint64_t evictions() const { return nEvicts.value(); }
    std::uint64_t bypasses() const { return nBypasses.value(); }
    std::uint64_t occupancy() const { return nOccupied; }
    std::uint64_t capacityBlocks() const { return nSets * assoc; }
    std::uint64_t numSets() const { return nSets; }
    std::uint32_t associativity() const { return assoc; }

  private:
    struct Way
    {
        Addr block;
        std::uint64_t stamp; // recency for LRU / FIFO order otherwise
    };

    /**
     * Low-bit set index (paper Section 4.2: "the cache set mapping
     * follows traditional caches, using the lower bits in the address").
     * Consecutive blocks therefore occupy consecutive sets, which keeps
     * DRAM row locality inside the cache data region.
     */
    std::uint64_t setOf(Addr blockAddr) const
    {
        return blockNumber(blockAddr) % nSets;
    }

    std::uint64_t nSets;
    std::uint32_t assoc;
    ReplPolicy repl;
    Rng rng;
    double bypassProb;
    std::uint64_t tick = 0;
    std::uint64_t nOccupied = 0;
    std::unordered_map<std::uint64_t, std::vector<Way>> sets;

    stats::Counter nHits;
    stats::Counter nMisses;
    stats::Counter nInserts;
    stats::Counter nEvicts;
    stats::Counter nBypasses;
    stats::Counter nBulkInvalidations;
};

} // namespace abndp

#endif // ABNDP_CACHE_TRAVELLER_CACHE_HH
