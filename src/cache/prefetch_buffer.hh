/**
 * @file
 * SRAM prefetch buffer (Section 3.2, Table 1): a small FIFO of cache
 * blocks prefetched according to task hints. Hits bypass the L1 caches.
 */

#ifndef ABNDP_CACHE_PREFETCH_BUFFER_HH
#define ABNDP_CACHE_PREFETCH_BUFFER_HH

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace abndp
{

/** FIFO prefetch buffer; tracks the tick each block becomes ready. */
class PrefetchBuffer
{
  public:
    explicit PrefetchBuffer(std::uint64_t capacityBlocks)
        : capacity(capacityBlocks)
    {
        abndp_assert(capacity > 0);
    }

    /**
     * Record a prefetched block that becomes available at @p readyTick;
     * evicts the oldest entry when full. Re-prefetching an existing block
     * keeps the earlier ready tick.
     */
    void
    fill(Addr blockAddr, Tick readyTick)
    {
        auto it = entries.find(blockAddr);
        if (it != entries.end()) {
            if (readyTick < it->second)
                it->second = readyTick;
            return;
        }
        if (entries.size() >= capacity) {
            entries.erase(fifo.front());
            fifo.pop_front();
            ++nEvicts;
        }
        entries.emplace(blockAddr, readyTick);
        fifo.push_back(blockAddr);
        ++nFills;
    }

    /** Presence check without stats (used by the prefetch unit). */
    bool peek(Addr blockAddr) const { return entries.count(blockAddr) > 0; }

    /**
     * Look up a block at time @p now.
     * @return the ready tick if present (may be in the future: the
     *         prefetch is still in flight), or tickNever on a miss.
     */
    Tick
    lookup(Addr blockAddr, Tick now)
    {
        auto it = entries.find(blockAddr);
        if (it == entries.end()) {
            ++nMisses;
            return tickNever;
        }
        if (it->second <= now)
            ++nHits;
        else
            ++nLateHits;
        return it->second;
    }

    /** Drop everything (bulk invalidation at epoch end). */
    void
    invalidateAll()
    {
        entries.clear();
        fifo.clear();
    }

    std::uint64_t hits() const { return nHits.value(); }
    std::uint64_t lateHits() const { return nLateHits.value(); }
    std::uint64_t misses() const { return nMisses.value(); }
    std::uint64_t fills() const { return nFills.value(); }
    std::size_t size() const { return entries.size(); }

  private:
    std::uint64_t capacity;
    std::unordered_map<Addr, Tick> entries;
    std::deque<Addr> fifo;

    stats::Counter nHits;
    stats::Counter nLateHits;
    stats::Counter nMisses;
    stats::Counter nFills;
    stats::Counter nEvicts;
};

} // namespace abndp

#endif // ABNDP_CACHE_PREFETCH_BUFFER_HH
