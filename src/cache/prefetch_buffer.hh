/**
 * @file
 * SRAM prefetch buffer (Section 3.2, Table 1): a small FIFO of cache
 * blocks prefetched according to task hints. Hits bypass the L1 caches.
 *
 * Backed by a preallocated ring of entries plus an open-addressed index
 * (linear probing, backward-shift deletion), so the per-access path of
 * the core model performs no hashing-container allocation: lookups are
 * a mix, a masked probe, and one ring read.
 */

#ifndef ABNDP_CACHE_PREFETCH_BUFFER_HH
#define ABNDP_CACHE_PREFETCH_BUFFER_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "obs/stats_registry.hh"

namespace abndp
{

/** FIFO prefetch buffer; tracks the tick each block becomes ready. */
class PrefetchBuffer
{
  public:
    explicit PrefetchBuffer(std::uint64_t capacityBlocks)
        : capacity(capacityBlocks), ring(capacityBlocks)
    {
        abndp_assert(capacity > 0);
        // Index at most half full so probe chains stay short.
        std::size_t slots = 16;
        while (slots < 2 * capacity)
            slots *= 2;
        index.assign(slots, 0);
        indexMask = slots - 1;
    }

    /**
     * Record a prefetched block that becomes available at @p readyTick;
     * evicts the oldest entry when full. Re-prefetching an existing block
     * keeps the earlier ready tick.
     */
    void
    fill(Addr blockAddr, Tick readyTick)
    {
        std::size_t pos = findIndex(blockAddr);
        if (index[pos] != 0) {
            Entry &e = ring[index[pos] - 1];
            if (readyTick < e.ready)
                e.ready = readyTick;
            return;
        }
        std::size_t slot;
        if (count == capacity) {
            eraseIndex(ring[head].block);
            slot = head;
            head = head + 1 == capacity ? 0 : head + 1;
            ++nEvicts;
        } else {
            slot = head + count >= capacity ? head + count - capacity
                                            : head + count;
            ++count;
        }
        ring[slot] = {blockAddr, readyTick};
        // The probe position may have shifted if the eviction above
        // backward-shifted entries through it; re-find.
        index[findIndex(blockAddr)] =
            static_cast<std::uint32_t>(slot + 1);
        ++nFills;
    }

    /** Presence check without stats (used by the prefetch unit). */
    bool
    peek(Addr blockAddr) const
    {
        return index[findIndex(blockAddr)] != 0;
    }

    /**
     * Look up a block at time @p now.
     * @return the ready tick if present (may be in the future: the
     *         prefetch is still in flight), or tickNever on a miss.
     */
    Tick
    lookup(Addr blockAddr, Tick now)
    {
        std::size_t pos = findIndex(blockAddr);
        if (index[pos] == 0) {
            ++nMisses;
            return tickNever;
        }
        Tick ready = ring[index[pos] - 1].ready;
        if (ready <= now)
            ++nHits;
        else
            ++nLateHits;
        return ready;
    }

    /**
     * Targeted invalidation: drop every buffered block for which
     * @p pred (Addr -> bool) returns true — used to purge prefetches
     * homed on a failed unit. Survivors keep their FIFO order and
     * ready ticks; removals count as evictions so the occupancy
     * reconciliation (size == fills - evictions, src/check) keeps
     * holding. Allocates a scratch vector; only called on the rare
     * failure-transition path, never per access.
     * @return the number of blocks dropped.
     */
    template <typename Pred>
    std::uint64_t
    invalidateMatching(Pred pred)
    {
        if (count == 0)
            return 0;
        std::vector<Entry> kept;
        kept.reserve(count);
        std::uint64_t dropped = 0;
        for (std::size_t i = 0; i < count; ++i) {
            std::size_t slot = head + i >= capacity ? head + i - capacity
                                                    : head + i;
            if (pred(ring[slot].block)) {
                ++dropped;
                ++nEvicts;
            } else {
                kept.push_back(ring[slot]);
            }
        }
        if (dropped == 0)
            return 0;
        std::fill(index.begin(), index.end(), 0);
        head = 0;
        count = kept.size();
        for (std::size_t i = 0; i < kept.size(); ++i) {
            ring[i] = kept[i];
            index[findIndex(kept[i].block)] =
                static_cast<std::uint32_t>(i + 1);
        }
        return dropped;
    }

    /** Drop everything (bulk invalidation at epoch end). */
    void
    invalidateAll()
    {
        std::fill(index.begin(), index.end(), 0);
        head = 0;
        count = 0;
    }

    std::uint64_t hits() const { return nHits.value(); }
    std::uint64_t lateHits() const { return nLateHits.value(); }
    std::uint64_t misses() const { return nMisses.value(); }
    std::uint64_t fills() const { return nFills.value(); }
    std::uint64_t evictions() const { return nEvicts.value(); }
    std::size_t size() const { return count; }
    std::uint64_t capacityBlocks() const { return capacity; }

    /** Register this buffer's stats under @p node. */
    void
    regStats(obs::StatNode &node) const
    {
        node.addCounter("hits", &nHits);
        node.addCounter("lateHits", &nLateHits);
        node.addCounter("misses", &nMisses);
        node.addCounter("fills", &nFills);
        node.addCounter("evictions", &nEvicts);
    }

  private:
    struct Entry
    {
        Addr block;
        Tick ready;
    };

    static std::size_t hashOf(Addr block)
    {
        return static_cast<std::size_t>(mix64(blockNumber(block)));
    }

    /**
     * Probe position of @p block: the slot holding it, or the first
     * empty slot of its probe chain if absent.
     */
    std::size_t
    findIndex(Addr block) const
    {
        std::size_t pos = hashOf(block) & indexMask;
        while (index[pos] != 0 && ring[index[pos] - 1].block != block)
            pos = (pos + 1) & indexMask;
        return pos;
    }

    /** Remove @p block from the index (backward-shift deletion). */
    void
    eraseIndex(Addr block)
    {
        std::size_t hole = findIndex(block);
        abndp_assert(index[hole] != 0, "evicting unindexed block");
        std::size_t next = (hole + 1) & indexMask;
        while (index[next] != 0) {
            std::size_t home =
                hashOf(ring[index[next] - 1].block) & indexMask;
            // The entry at `next` may move into the hole iff the hole
            // lies on its probe path (cyclic home <= hole < next).
            if (((next - home) & indexMask) >= ((next - hole) & indexMask)) {
                index[hole] = index[next];
                hole = next;
            }
            next = (next + 1) & indexMask;
        }
        index[hole] = 0;
    }

    std::uint64_t capacity;
    std::vector<Entry> ring;
    /** Open-addressed map block -> ring slot + 1 (0 = empty). */
    std::vector<std::uint32_t> index;
    std::size_t indexMask = 0;
    std::size_t head = 0;
    std::size_t count = 0;

    stats::Counter nHits;
    stats::Counter nLateHits;
    stats::Counter nMisses;
    stats::Counter nFills;
    stats::Counter nEvicts;
};

} // namespace abndp

#endif // ABNDP_CACHE_PREFETCH_BUFFER_HH
