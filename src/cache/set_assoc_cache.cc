#include "cache/set_assoc_cache.hh"

namespace abndp
{

SetAssocCache::SetAssocCache(std::uint64_t numSets, std::uint32_t assoc,
                             ReplPolicy repl, std::uint64_t seed,
                             bool hashedIndex)
    : sets(numSets), ways(assoc), repl(repl), hashed(hashedIndex),
      rng(seed),
      store(static_cast<std::size_t>(numSets) * assoc)
{
    abndp_assert(numSets > 0 && assoc > 0, "degenerate cache geometry");
}

SetAssocCache::Way *
SetAssocCache::findWay(Addr blockAddr)
{
    auto *base = &store[setIndex(blockAddr) * ways];
    for (std::uint32_t w = 0; w < ways; ++w)
        if (base[w].valid && base[w].block == blockAddr)
            return &base[w];
    return nullptr;
}

const SetAssocCache::Way *
SetAssocCache::findWay(Addr blockAddr) const
{
    const auto *base = &store[setIndex(blockAddr) * ways];
    for (std::uint32_t w = 0; w < ways; ++w)
        if (base[w].valid && base[w].block == blockAddr)
            return &base[w];
    return nullptr;
}

bool
SetAssocCache::access(Addr blockAddr)
{
    if (auto *way = findWay(blockAddr)) {
        if (repl == ReplPolicy::Lru)
            way->stamp = ++tick;
        ++nHits;
        return true;
    }
    ++nMisses;
    return false;
}

bool
SetAssocCache::contains(Addr blockAddr) const
{
    return findWay(blockAddr) != nullptr;
}

std::uint32_t
SetAssocCache::victimWay(std::size_t set)
{
    const auto *base = &store[set * ways];
    // Prefer an invalid way.
    for (std::uint32_t w = 0; w < ways; ++w)
        if (!base[w].valid)
            return w;
    if (repl == ReplPolicy::Random)
        return static_cast<std::uint32_t>(rng.below(ways));
    // LRU and FIFO both evict the smallest stamp.
    std::uint32_t victim = 0;
    for (std::uint32_t w = 1; w < ways; ++w)
        if (base[w].stamp < base[victim].stamp)
            victim = w;
    return victim;
}

Addr
SetAssocCache::insert(Addr blockAddr)
{
    std::size_t set = setIndex(blockAddr);
    if (auto *way = findWay(blockAddr)) {
        // Already present: refresh recency only.
        if (repl == ReplPolicy::Lru)
            way->stamp = ++tick;
        return invalidAddr;
    }
    std::uint32_t w = victimWay(set);
    Way &way = store[set * ways + w];
    Addr evicted = way.valid ? way.block : invalidAddr;
    if (way.valid)
        ++nEvicts;
    way.valid = true;
    way.block = blockAddr;
    way.stamp = ++tick;
    ++nInserts;
    return evicted;
}

bool
SetAssocCache::invalidate(Addr blockAddr)
{
    if (auto *way = findWay(blockAddr)) {
        way->valid = false;
        way->block = invalidAddr;
        return true;
    }
    return false;
}

void
SetAssocCache::invalidateAll()
{
    for (auto &way : store) {
        way.valid = false;
        way.block = invalidAddr;
    }
}

std::uint64_t
SetAssocCache::occupancy() const
{
    std::uint64_t n = 0;
    for (const auto &way : store)
        n += way.valid ? 1 : 0;
    return n;
}

} // namespace abndp
