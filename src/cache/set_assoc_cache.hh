/**
 * @file
 * Generic set-associative cache model storing block presence only (the
 * simulator never stores data contents; workloads keep real data in host
 * memory). Used for L1-D/L1-I, the host LLC, and as the storage engine of
 * the Traveller Cache variants.
 *
 * The lookup path is one of the hottest in the simulator (every modelled
 * memory reference probes an L1), so it is defined inline here: tags and
 * recency stamps live in separate parallel arrays (struct-of-arrays) so
 * the probe is a contiguous, vectorizable scan over 8-byte tags — a set
 * of 8 ways spans one cacheline instead of two — and power-of-two set
 * counts index with a mask instead of a 64-bit division.
 */

#ifndef ABNDP_CACHE_SET_ASSOC_CACHE_HH
#define ABNDP_CACHE_SET_ASSOC_CACHE_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "obs/stats_registry.hh"

namespace abndp
{

/** Set-associative block cache with pluggable replacement. */
class SetAssocCache
{
  public:
    /**
     * @param numSets number of sets (power of two not required)
     * @param assoc ways per set
     * @param repl replacement policy
     * @param seed RNG seed for random replacement
     */
    SetAssocCache(std::uint64_t numSets, std::uint32_t assoc,
                  ReplPolicy repl, std::uint64_t seed = Rng::defaultSeed,
                  bool hashedIndex = true)
        : sets(numSets), ways(assoc), repl(repl), hashed(hashedIndex),
          pow2(numSets > 0 && (numSets & (numSets - 1)) == 0),
          rng(seed),
          tags(static_cast<std::size_t>(numSets) * assoc, invalidAddr),
          stamps(static_cast<std::size_t>(numSets) * assoc, 0)
    {
        abndp_assert(numSets > 0 && assoc > 0,
                     "degenerate cache geometry");
    }

    /** Build from a CacheGeometry. */
    SetAssocCache(const CacheGeometry &geom,
                  std::uint64_t seed = Rng::defaultSeed)
        : SetAssocCache(geom.numSets(), geom.assoc, geom.repl, seed,
                        geom.hashedIndex)
    {
    }

    /**
     * Look up a block; updates recency on hit, counts hit/miss stats.
     * Does NOT allocate on miss (see insert()).
     */
    bool
    access(Addr blockAddr)
    {
        const std::size_t base = setIndex(blockAddr) * ways;
        const Addr *tag = tags.data() + base;
        for (std::uint32_t w = 0; w < ways; ++w) {
            if (tag[w] == blockAddr) {
                if (repl == ReplPolicy::Lru)
                    stamps[base + w] = ++tick;
                ++nHits;
                return true;
            }
        }
        ++nMisses;
        return false;
    }

    /** Presence check without stats or recency side effects. */
    bool
    contains(Addr blockAddr) const
    {
        const Addr *tag = tags.data() + setIndex(blockAddr) * ways;
        for (std::uint32_t w = 0; w < ways; ++w)
            if (tag[w] == blockAddr)
                return true;
        return false;
    }

    /**
     * Insert a block, evicting per the replacement policy if needed.
     * @return the evicted block address, or invalidAddr if none.
     */
    Addr
    insert(Addr blockAddr)
    {
        const std::size_t base = setIndex(blockAddr) * ways;
        const Addr *tag = tags.data() + base;
        for (std::uint32_t w = 0; w < ways; ++w) {
            if (tag[w] == blockAddr) {
                // Already present: refresh recency only.
                if (repl == ReplPolicy::Lru)
                    stamps[base + w] = ++tick;
                return invalidAddr;
            }
        }
        const std::size_t slot = base + victimWay(base);
        Addr evicted = tags[slot];
        if (evicted != invalidAddr)
            ++nEvicts;
        tags[slot] = blockAddr;
        stamps[slot] = ++tick;
        ++nInserts;
        return evicted;
    }

    /** Invalidate one block if present. @return true if it was present. */
    bool
    invalidate(Addr blockAddr)
    {
        const std::size_t base = setIndex(blockAddr) * ways;
        for (std::uint32_t w = 0; w < ways; ++w) {
            if (tags[base + w] == blockAddr) {
                tags[base + w] = invalidAddr;
                return true;
            }
        }
        return false;
    }

    /** Drop all blocks (bulk invalidation; tag clear). */
    void
    invalidateAll()
    {
        std::fill(tags.begin(), tags.end(), invalidAddr);
    }

    std::uint64_t hits() const { return nHits.value(); }
    std::uint64_t misses() const { return nMisses.value(); }
    std::uint64_t insertions() const { return nInserts.value(); }
    std::uint64_t evictions() const { return nEvicts.value(); }
    std::uint64_t numSets() const { return sets; }
    std::uint32_t associativity() const { return ways; }

    /** Number of valid blocks currently cached. */
    std::uint64_t
    occupancy() const
    {
        std::uint64_t n = 0;
        for (Addr t : tags)
            n += t != invalidAddr ? 1 : 0;
        return n;
    }

    void
    resetStats()
    {
        nHits.reset();
        nMisses.reset();
        nInserts.reset();
        nEvicts.reset();
    }

    /** Register this cache's stats under @p node. */
    void
    regStats(obs::StatNode &node) const
    {
        node.addCounter("hits", &nHits);
        node.addCounter("misses", &nMisses);
        node.addCounter("insertions", &nInserts);
        node.addCounter("evictions", &nEvicts);
    }

  private:
    /**
     * Set indexing. Hashed by default: the range-partitioned address
     * space aligns every unit's data at large power-of-two bases, so
     * plain low-bit indexing would alias all units' hot records into a
     * few sets. Sequential-access caches (L1-I) use low-bit indexing so
     * consecutive blocks occupy distinct sets.
     */
    std::size_t
    setIndex(Addr blockAddr) const
    {
        std::uint64_t block = blockNumber(blockAddr);
        std::uint64_t h = hashed ? mix64(block) : block;
        return pow2 ? (h & (sets - 1)) : (h % sets);
    }

    /** Victim choice within the set starting at flat index @p base. */
    std::uint32_t
    victimWay(std::size_t base)
    {
        const Addr *tag = tags.data() + base;
        // Prefer an invalid way.
        for (std::uint32_t w = 0; w < ways; ++w)
            if (tag[w] == invalidAddr)
                return w;
        if (repl == ReplPolicy::Random)
            return static_cast<std::uint32_t>(rng.below(ways));
        // LRU and FIFO both evict the smallest stamp.
        const std::uint64_t *stamp = stamps.data() + base;
        std::uint32_t victim = 0;
        for (std::uint32_t w = 1; w < ways; ++w)
            if (stamp[w] < stamp[victim])
                victim = w;
        return victim;
    }

    std::uint64_t sets;
    std::uint32_t ways;
    ReplPolicy repl;
    bool hashed;
    bool pow2;
    Rng rng;
    std::uint64_t tick = 0;
    std::vector<Addr> tags;         // way tags (invalidAddr = empty)
    std::vector<std::uint64_t> stamps; // recency (LRU) / insertion (FIFO)

    stats::Counter nHits;
    stats::Counter nMisses;
    stats::Counter nInserts;
    stats::Counter nEvicts;
};

} // namespace abndp

#endif // ABNDP_CACHE_SET_ASSOC_CACHE_HH
