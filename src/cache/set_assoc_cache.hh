/**
 * @file
 * Generic set-associative cache model storing block presence only (the
 * simulator never stores data contents; workloads keep real data in host
 * memory). Used for L1-D/L1-I, the host LLC, and as the storage engine of
 * the Traveller Cache variants.
 */

#ifndef ABNDP_CACHE_SET_ASSOC_CACHE_HH
#define ABNDP_CACHE_SET_ASSOC_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace abndp
{

/** Set-associative block cache with pluggable replacement. */
class SetAssocCache
{
  public:
    /**
     * @param numSets number of sets (power of two not required)
     * @param assoc ways per set
     * @param repl replacement policy
     * @param seed RNG seed for random replacement
     */
    SetAssocCache(std::uint64_t numSets, std::uint32_t assoc,
                  ReplPolicy repl, std::uint64_t seed = Rng::defaultSeed,
                  bool hashedIndex = true);

    /** Build from a CacheGeometry. */
    SetAssocCache(const CacheGeometry &geom,
                  std::uint64_t seed = Rng::defaultSeed)
        : SetAssocCache(geom.numSets(), geom.assoc, geom.repl, seed,
                        geom.hashedIndex)
    {
    }

    /**
     * Look up a block; updates recency on hit, counts hit/miss stats.
     * Does NOT allocate on miss (see insert()).
     */
    bool access(Addr blockAddr);

    /** Presence check without stats or recency side effects. */
    bool contains(Addr blockAddr) const;

    /**
     * Insert a block, evicting per the replacement policy if needed.
     * @return the evicted block address, or invalidAddr if none.
     */
    Addr insert(Addr blockAddr);

    /** Invalidate one block if present. @return true if it was present. */
    bool invalidate(Addr blockAddr);

    /** Drop all blocks (bulk invalidation; tag clear). */
    void invalidateAll();

    std::uint64_t hits() const { return nHits.value(); }
    std::uint64_t misses() const { return nMisses.value(); }
    std::uint64_t insertions() const { return nInserts.value(); }
    std::uint64_t evictions() const { return nEvicts.value(); }
    std::uint64_t numSets() const { return sets; }
    std::uint32_t associativity() const { return ways; }

    /** Number of valid blocks currently cached. */
    std::uint64_t occupancy() const;

    void
    resetStats()
    {
        nHits.reset();
        nMisses.reset();
        nInserts.reset();
        nEvicts.reset();
    }

  private:
    struct Way
    {
        Addr block = invalidAddr;
        std::uint64_t stamp = 0; // recency (LRU) or insertion order (FIFO)
        bool valid = false;
    };

    /**
     * Set indexing. Hashed by default: the range-partitioned address
     * space aligns every unit's data at large power-of-two bases, so
     * plain low-bit indexing would alias all units' hot records into a
     * few sets. Sequential-access caches (L1-I) use low-bit indexing so
     * consecutive blocks occupy distinct sets.
     */
    std::size_t setIndex(Addr blockAddr) const
    {
        std::uint64_t block = blockNumber(blockAddr);
        return (hashed ? mix64(block) : block) % sets;
    }
    Way *findWay(Addr blockAddr);
    const Way *findWay(Addr blockAddr) const;
    std::uint32_t victimWay(std::size_t set);

    std::uint64_t sets;
    std::uint32_t ways;
    ReplPolicy repl;
    bool hashed;
    Rng rng;
    std::uint64_t tick = 0;
    std::vector<Way> store;

    stats::Counter nHits;
    stats::Counter nMisses;
    stats::Counter nInserts;
    stats::Counter nEvicts;
};

} // namespace abndp

#endif // ABNDP_CACHE_SET_ASSOC_CACHE_HH
