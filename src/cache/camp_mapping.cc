#include "cache/camp_mapping.hh"

#include <bit>

#include "common/logging.hh"

namespace abndp
{

namespace
{

/** Per-group salt for the skewed camp-unit mapping. */
constexpr std::uint64_t
groupSalt(GroupId g)
{
    return 0x5851f42d4c957f2dULL * (g + 1);
}

} // namespace

CampMapping::CampMapping(const SystemConfig &cfg, const Topology &topo,
                         const AddressMap &amap)
    : topo(topo), amap(amap), nSets(cfg.travellerSets()),
      assoc(cfg.traveller.assoc), useSkew(cfg.traveller.skewedMapping),
      setSplit(cfg.travellerSets()), assocSplit(cfg.traveller.assoc),
      hashedIdx(cfg.traveller.hashedIndex)
{
    abndp_assert(topo.numGroups() <= CandidateList::maxGroups,
                 "too many camp groups for CandidateList");

    // Paper Section 4.3: full tag = log2(total capacity) - block offset -
    // set bits; the camp restriction saves the log2(units per group)
    // unit-ID bits.
    auto log2u64 = [](std::uint64_t v) {
        return static_cast<std::uint32_t>(std::bit_width(v) - 1);
    };
    std::uint32_t cap_bits = log2u64(cfg.totalMemBytes());
    std::uint32_t set_bits = log2u64(nSets);
    nTagBitsFree = cap_bits - cachelineBits - set_bits;
    std::uint32_t unit_bits = log2u64(topo.unitsPerGroup());
    nTagBits = nTagBitsFree >= unit_bits ? nTagBitsFree - unit_bits : 0;

    // Flatten the per-group unit lists and salts for the per-access
    // loops below; power-of-two group sizes index with a mask instead
    // of a 64-bit modulo.
    upg = topo.unitsPerGroup();
    groupSplit = Pow2Split(upg);
    const GroupId ngroups = topo.numGroups();
    groupUnitsFlat.resize(static_cast<std::size_t>(ngroups) * upg);
    salts.resize(ngroups);
    for (GroupId g = 0; g < ngroups; ++g) {
        salts[g] = groupSalt(g);
        for (std::uint32_t i = 0; i < upg; ++i)
            groupUnitsFlat[static_cast<std::size_t>(g) * upg + i] =
                topo.unitInGroup(g, i);
    }
}

UnitId
CampMapping::campOf(std::uint64_t block, GroupId g) const
{
    std::uint64_t h = useSkew ? mix64(block ^ salts[g]) : mix64(block);
    auto idx = static_cast<std::uint32_t>(groupSplit.mod(h));
    return groupUnitsFlat[static_cast<std::size_t>(g) * upg + idx];
}

UnitId
CampMapping::locationInGroup(Addr addr, GroupId g) const
{
    UnitId home = homeOf(addr);
    if (topo.groupOf(home) == g)
        return home;
    return campOf(blockNumber(addr), g);
}

void
CampMapping::candidates(Addr addr, CandidateList &out) const
{
    const UnitId home = homeOf(addr);
    const GroupId hg = topo.groupOf(home);
    const std::uint64_t block = blockNumber(addr);
    out.n = topo.numGroups();
    for (GroupId g = 0; g < out.n; ++g)
        out.loc[g] = g == hg ? home : campOf(block, g);
}

UnitId
CampMapping::nearestCandidate(Addr addr, UnitId from) const
{
    const UnitId home = homeOf(addr);
    const GroupId hg = topo.groupOf(home);
    const std::uint64_t block = blockNumber(addr);
    const double *row = topo.distanceRow(from);
    UnitId best = invalidUnit;
    double bestCost = 0.0;
    for (GroupId g = 0; g < topo.numGroups(); ++g) {
        UnitId cand = g == hg ? home : campOf(block, g);
        double cost = row ? row[cand] : topo.distanceCost(from, cand);
        if (best == invalidUnit || cost < bestCost) {
            best = cand;
            bestCost = cost;
        }
    }
    return best;
}

std::uint64_t
CampMapping::tagStorageBytes() const
{
    return nSets * assoc * nTagBits / 8;
}

} // namespace abndp
