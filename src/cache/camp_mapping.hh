/**
 * @file
 * Camp-location mapping for the Traveller Cache (paper Section 4.2).
 *
 * Every cache block has one home (its memory location) plus C camp
 * locations, one in each localized group other than the home's group.
 * Camp unit IDs are deterministic functions of the block address; with
 * skewed mapping each group uses a different function (a la skewed
 * associative caches), with identical mapping all groups use the same one.
 *
 * Implementation note (documented divergence): the paper derives the camp
 * unit index from distinct physical-address bit slices. We derive it from
 * group-salted mixes of the block number instead, which preserves the
 * properties that matter (determinism, per-group diversity, uniformity,
 * no per-block metadata) while staying uniform under any allocator
 * layout. The tag-size accounting below still follows the paper's
 * bit-slice arithmetic, since a hardware implementation would use slices.
 */

#ifndef ABNDP_CACHE_CAMP_MAPPING_HH
#define ABNDP_CACHE_CAMP_MAPPING_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "mem/address_map.hh"
#include "net/topology.hh"
#include "sched/lb/home_indirection.hh"

namespace abndp
{

/** Fixed-capacity list of candidate locations (home + camps). */
struct CandidateList
{
    static constexpr std::uint32_t maxGroups = 16;
    std::array<UnitId, maxGroups> loc;
    std::uint32_t n = 0;
};

/** Deterministic home/camp location mapping. */
class CampMapping
{
  public:
    CampMapping(const SystemConfig &cfg, const Topology &topo,
                const AddressMap &amap);

    /**
     * Home unit of an address: the static range partition, overlaid
     * by the re-homing indirection when migration has moved the
     * block. With no indirection attached (every classic design) or
     * an empty table, this is exactly the static map plus one branch.
     */
    UnitId
    homeOf(Addr addr) const
    {
        UnitId h = amap.homeOf(addr);
        if (indir && indir->active()) [[unlikely]]
            h = indir->resolve(blockAlign(addr), h);
        return h;
    }

    /** Attach the migration indirection table (MemSystem owns it). */
    void setHomeIndirection(const HomeIndirection *p) { indir = p; }

    /**
     * Candidate location of @p addr in group @p g: the home unit if the
     * home lies in @p g, otherwise the camp unit of that group.
     */
    UnitId locationInGroup(Addr addr, GroupId g) const;

    /** All candidate locations, one per group, in group order. */
    void candidates(Addr addr, CandidateList &out) const;

    /**
     * Candidate location nearest to @p from (the "always probe only the
     * nearest camp location" rule of Section 4.3).
     */
    UnitId nearestCandidate(Addr addr, UnitId from) const;

    /**
     * Cache set index of a block: low bits by default (paper Section
     * 4.2 — keeps a set's ways row-adjacent in the cache region), or a
     * hashed index when traveller.hashedIndex is set (the comparison
     * knob for the row-locality claim; see EXPERIMENTS.md).
     */
    std::uint64_t
    setIndex(Addr addr) const
    {
        std::uint64_t block = blockNumber(addr);
        return setSplit.mod(hashedIdx ? mix64(block) : block);
    }

    /**
     * Physical address of a block's slot inside a camp's DRAM cache
     * region (used so camp accesses derive DRAM rows from the cache
     * layout: neighboring sets share rows).
     */
    Addr
    cacheSlotAddr(Addr addr) const
    {
        std::uint64_t way = assocSplit.mod(mix64(blockNumber(addr)));
        return (setIndex(addr) * assoc + way) * cachelineBytes;
    }

    /** Tag bits per block with the camp restriction (Section 4.3). */
    std::uint32_t tagBits() const { return nTagBits; }

    /** Tag bits per block without the camp restriction, for comparison. */
    std::uint32_t tagBitsUnrestricted() const { return nTagBitsFree; }

    /** Total SRAM tag storage per NDP unit in bytes. */
    std::uint64_t tagStorageBytes() const;

    bool skewed() const { return useSkew; }
    std::uint32_t numGroups() const { return topo.numGroups(); }

  private:
    /**
     * Camp unit of block @p block in group @p g (the non-home case of
     * locationInGroup); callers hoist homeOf/blockNumber so the per-
     * group loops of candidates()/nearestCandidate() resolve them once.
     */
    UnitId campOf(std::uint64_t block, GroupId g) const;

    const Topology &topo;
    const AddressMap &amap;
    /** Re-homing overlay; null unless migration is configured. */
    const HomeIndirection *indir = nullptr;
    std::uint64_t nSets;
    std::uint32_t assoc;
    std::uint32_t nTagBits;
    std::uint32_t nTagBitsFree;
    bool useSkew;

    // Hot-path precomputation (all derived from the topology, which is
    // immutable after construction). Division/modulo goes through the
    // shared Pow2Split decoder (src/mem/address_map.hh) — the same
    // shift/mask arithmetic the memory backends use.
    std::uint32_t upg = 0;       // units per group
    Pow2Split groupSplit;        // mod units-per-group
    Pow2Split setSplit;          // mod nSets
    Pow2Split assocSplit;        // mod assoc
    bool hashedIdx = false;
    /** groupUnits flattened to [g * upg + idx] (one indirection). */
    std::vector<UnitId> groupUnitsFlat;
    /** Per-group mapping salts (groupSalt(g)). */
    std::vector<std::uint64_t> salts;
};

} // namespace abndp

#endif // ABNDP_CACHE_CAMP_MAPPING_HH
