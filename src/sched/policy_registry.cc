#include "sched/policy_registry.hh"

#include <map>
#include <sstream>
#include <utility>

#include "common/logging.hh"
#include "sched/policies/hybrid_policy.hh"
#include "sched/policies/local_policy.hh"
#include "sched/policies/mem_match_policy.hh"
#include "sched/policies/work_stealing_policy.hh"

namespace abndp
{

namespace
{

// Function-local statics: the registries are usable from static
// initializers of other translation units regardless of link order.
// The simulator itself is single-threaded per instance and policies
// are registered at startup, so no locking is needed.

std::map<std::string, PolicyFactory> &
policyMap()
{
    static std::map<std::string, PolicyFactory> m;
    return m;
}

std::map<std::string, DesignSpec> &
designMap()
{
    static std::map<std::string, DesignSpec> m;
    return m;
}

template <typename P>
PolicyFactory
simpleFactory()
{
    return [](const SystemConfig &) { return std::make_unique<P>(); };
}

/** Seed the built-in policies and Table-2 design points exactly once. */
void
ensureBuiltins()
{
    static const bool seeded = [] {
        policyMap().emplace("local", simpleFactory<LocalPolicy>());
        policyMap().emplace("memmatch", simpleFactory<MemMatchPolicy>());
        policyMap().emplace("hybrid", simpleFactory<HybridPolicy>());

        const CacheStyle trav = CacheStyle::TravellerSramTags;
        designMap().emplace("H", DesignSpec{"local", false,
                                            CacheStyle::None});
        designMap().emplace("B", DesignSpec{"local", false,
                                            CacheStyle::None});
        designMap().emplace("Sm", DesignSpec{"memmatch", false,
                                             CacheStyle::None});
        designMap().emplace("Sl", DesignSpec{"memmatch", true,
                                             CacheStyle::None});
        designMap().emplace("Sh", DesignSpec{"hybrid", false,
                                             CacheStyle::None});
        designMap().emplace("C", DesignSpec{"memmatch", false, trav});
        designMap().emplace("O", DesignSpec{"hybrid", false, trav});
        designMap().emplace("HLB", DesignSpec{"hybrid", false, trav,
                                              true, false});
        designMap().emplace("HLB-mig", DesignSpec{"hybrid", false, trav,
                                                  true, true});
        return true;
    }();
    (void)seeded;
}

template <typename Map>
std::string
knownNames(const Map &m)
{
    std::ostringstream oss;
    bool first = true;
    for (const auto &[name, value] : m) {
        oss << (first ? "" : ", ") << name;
        first = false;
    }
    return oss.str();
}

} // namespace

bool
registerSchedulingPolicy(const std::string &name, PolicyFactory factory)
{
    ensureBuiltins();
    abndp_assert(factory != nullptr,
                 "null factory for scheduling policy ", name);
    bool replaced = policyMap().count(name) > 0;
    policyMap()[name] = std::move(factory);
    return replaced;
}

std::unique_ptr<SchedulingPolicy>
makeSchedulingPolicy(const std::string &name, const SystemConfig &cfg)
{
    ensureBuiltins();
    auto it = policyMap().find(name);
    if (it == policyMap().end())
        fatal("unknown scheduling policy '", name, "' (registered: ",
              knownNames(policyMap()), ")");
    auto policy = it->second(cfg);
    abndp_assert(policy != nullptr,
                 "factory for scheduling policy ", name, " returned null");
    return policy;
}

std::unique_ptr<SchedulingPolicy>
makeConfiguredPolicy(const SystemConfig &cfg)
{
    const std::string &name = cfg.sched.policyName.empty()
        ? builtinPolicyName(cfg.sched.policy)
        : cfg.sched.policyName;
    auto policy = makeSchedulingPolicy(name, cfg);
    if (cfg.sched.workStealing)
        policy = std::make_unique<WorkStealingPolicy>(std::move(policy));
    return policy;
}

std::vector<std::string>
registeredPolicyNames()
{
    ensureBuiltins();
    std::vector<std::string> names;
    names.reserve(policyMap().size());
    for (const auto &[name, factory] : policyMap())
        names.push_back(name);
    return names;
}

const char *
builtinPolicyName(SchedPolicy policy)
{
    switch (policy) {
      case SchedPolicy::Colocate: return "local";
      case SchedPolicy::LowestDistance: return "memmatch";
      case SchedPolicy::Hybrid: return "hybrid";
    }
    panic("unknown SchedPolicy enumerator");
}

bool
registerDesignPoint(const std::string &name, DesignSpec spec)
{
    ensureBuiltins();
    bool replaced = designMap().count(name) > 0;
    designMap()[name] = std::move(spec);
    return replaced;
}

SystemConfig
composeDesign(SystemConfig base, const std::string &name)
{
    ensureBuiltins();
    auto it = designMap().find(name);
    if (it == designMap().end())
        fatal("unknown design point '", name, "' (registered: ",
              knownNames(designMap()), ")");
    const DesignSpec &spec = it->second;
    base.sched.policyName = spec.schedPolicy;
    base.sched.workStealing = spec.workStealing;
    base.traveller.style = spec.cache;
    base.lb.enabled = spec.lb;
    base.lb.migration.enabled = spec.lb && spec.migrate;
    if (base.sched.autoAlpha)
        base.sched.hybridAlpha = base.meshDiameter() / 2.0;
    return base;
}

std::vector<std::string>
registeredDesignPoints()
{
    ensureBuiltins();
    std::vector<std::string> names;
    names.reserve(designMap().size());
    for (const auto &[name, spec] : designMap())
        names.push_back(name);
    return names;
}

} // namespace abndp
