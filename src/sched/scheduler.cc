#include "sched/scheduler.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sched/policy_registry.hh"

namespace abndp
{

Scheduler::Scheduler(const SystemConfig &cfg, const Topology &topo,
                     const CampMapping &camps, const FaultModel *faults,
                     obs::Tracer *tracer)
    : cfg(cfg), topo(topo), camps(camps), faults(faults), tracer(tracer),
      policyObj(makeConfiguredPolicy(cfg)),
      campAware(cfg.traveller.style != CacheStyle::None),
      exhaustiveScoring(cfg.sched.exhaustiveScoring),
      weightB(cfg.sched.hybridAlpha * topo.interCost()),
      forwardPenalty(cfg.sched.forwardPenaltyFrac),
      deadband(cfg.sched.costloadDeadband),
      nUnits(topo.numUnits()),
      nStacks(topo.numStacks()),
      wTrue(nUnits, 0.0),
      wSnap(nUnits, 0.0),
      wDelta(static_cast<std::size_t>(nUnits) * nUnits, 0.0),
      deltaDirty(nUnits, 0),
      speed(nUnits, 1.0),
      stackOfUnit(nUnits, 0),
      stackBase(nStacks, 0.0),
      stackMin(nStacks, 0.0),
      unitBonus(nUnits, 0.0),
      unitScore(nUnits, 0.0)
{
    // Eq. 2 stack-pair costs, precomputed with the exact expressions
    // scoreCostMem() used to evaluate inline (bit-equal by operand
    // identity): the diagonal is the intra-stack estimate, off-diagonal
    // entries are Dinter * XY-mesh hops.
    const double d_intra = topo.intraCost() * topo.meanIntraHops();
    const double d_inter = topo.interCost();
    stackPairCost.resize(static_cast<std::size_t>(nStacks) * nStacks);
    for (StackId cs = 0; cs < nStacks; ++cs) {
        for (StackId s = 0; s < nStacks; ++s) {
            double cost;
            if (cs == s) {
                cost = d_intra;
            } else {
                auto [x1, y1] = topo.stackCoord(s);
                auto [x2, y2] = topo.stackCoord(cs);
                std::uint32_t hops = (x1 > x2 ? x1 - x2 : x2 - x1)
                    + (y1 > y2 ? y1 - y2 : y2 - y1);
                cost = d_inter * hops;
            }
            stackPairCost[static_cast<std::size_t>(cs) * nStacks + s] =
                cost;
        }
    }
    for (UnitId u = 0; u < nUnits; ++u)
        stackOfUnit[u] = topo.stackOf(u);
    if (forwardPenalty > 0.0 && nUnits <= fwdPenMaxUnits) {
        fwdPen.resize(static_cast<std::size_t>(nUnits) * nUnits);
        for (UnitId c = 0; c < nUnits; ++c)
            for (UnitId u = 0; u < nUnits; ++u)
                fwdPen[static_cast<std::size_t>(c) * nUnits + u] =
                    forwardPenalty * topo.distanceCost(c, u);
    }
}

double
Scheduler::estimateLoad(const Task &task) const
{
    if (task.hint.workload != 0)
        return static_cast<double>(task.hint.workload);
    // Section 3.1: estimate from the total memory access cost of the
    // primary-data addresses. One nominal DRAM access per hint address
    // plus a fixed task overhead; only relative magnitudes matter.
    constexpr double nominal_access = 51.0; // ~tRP + tRCD + tCAS, ns
    constexpr double task_overhead = 20.0;
    std::uint64_t lines =
        task.hintLines != 0 ? task.hintLines : task.hint.totalLines();
    return task_overhead + nominal_access * static_cast<double>(lines);
}

void
Scheduler::scoreCostMem(const Task &task, bool withCamps)
{
    // With the crossbar NoC Dintra is constant (the paper's setting);
    // for the ring option the stack-level term uses the mean ring
    // distance as an estimate (placement within the stack is then a
    // second-order effect). Both terms live premultiplied in
    // stackPairCost (see the constructor).
    const double d_intra = topo.intraCost() * topo.meanIntraHops();

    std::fill(stackBase.begin(), stackBase.end(), 0.0);
    for (UnitId u : bonusDirty)
        unitBonus[u] = 0.0;
    bonusDirty.clear();

    // Gather the addresses to score: the explicit list plus a few
    // sample lines per range (ranges are contiguous allocations, so
    // sampling preserves their distance profile).
    sampleScratch.clear();
    for (Addr a : task.hint.data)
        sampleScratch.push_back(a);
    for (const auto &r : task.hint.ranges) {
        sampleScratch.push_back(r.start);
        if (r.lines() > 2)
            sampleScratch.push_back(r.start + r.bytes / 2);
        if (r.lines() > 1)
            sampleScratch.push_back(r.start + r.bytes - 1);
    }
    const auto &data = sampleScratch;
    if (data.empty()) {
        std::fill(unitScore.begin(), unitScore.end(), 0.0);
        return;
    }

    // Sample at most sampleCap addresses for huge hints (a hardware
    // scheduler would summarize long address lists the same way).
    std::size_t step = data.size() <= sampleCap
        ? 1
        : (data.size() + sampleCap - 1) / sampleCap;

    std::uint32_t sampled = 0;
    CandidateList cl;
    for (std::size_t i = 0; i < data.size(); i += step, ++sampled) {
        Addr a = data[i];
        if (withCamps) {
            camps.candidates(a, cl);
        } else {
            cl.loc[0] = camps.homeOf(a);
            cl.n = 1;
        }

        // Per-stack nearest-candidate cost: streaming add of one
        // contiguous stackPairCost row per candidate (min across rows
        // keeps the first minimum, matching the original candidate-
        // order scan).
        const double *row0 = stackPairCost.data()
            + static_cast<std::size_t>(topo.stackOf(cl.loc[0])) * nStacks;
        if (cl.n == 1) {
            for (StackId s = 0; s < nStacks; ++s)
                stackBase[s] += row0[s];
        } else {
            for (StackId s = 0; s < nStacks; ++s)
                stackMin[s] = row0[s];
            for (std::uint32_t c = 1; c < cl.n; ++c) {
                const double *row = stackPairCost.data()
                    + static_cast<std::size_t>(topo.stackOf(cl.loc[c]))
                        * nStacks;
                for (StackId s = 0; s < nStacks; ++s)
                    stackMin[s] =
                        row[s] < stackMin[s] ? row[s] : stackMin[s];
            }
            for (StackId s = 0; s < nStacks; ++s)
                stackBase[s] += stackMin[s];
        }

        // A unit equal to a candidate saves (Dintra - Dlocal) for this
        // address relative to the stack-level bound.
        for (std::uint32_t c = 0; c < cl.n; ++c) {
            UnitId cand = cl.loc[c];
            if (unitBonus[cand] == 0.0)
                bonusDirty.push_back(cand);
            unitBonus[cand] += d_intra; // Dlocal == 0
        }
    }

    abndp_assert(sampled > 0);
    const double inv = 1.0 / sampled;
    const double *sb = stackBase.data();
    const StackId *sou = stackOfUnit.data();
    const double *ub = unitBonus.data();
    for (UnitId u = 0; u < nUnits; ++u)
        unitScore[u] = (sb[sou[u]] - ub[u]) * inv;
}

UnitId
Scheduler::choose(const Task &task, UnitId creator)
{
    ++nDecisions;
    return policyObj->choose(*this, task, creator);
}

void
Scheduler::addForwardPenalty(UnitId creator)
{
    // Moving the task itself ships its descriptor to the target: a
    // real (if small) cost that keeps tiny tasks from migrating for
    // negligible gains. The premultiplied row makes this a streaming
    // add over contiguous doubles.
    if (forwardPenalty > 0.0) {
        if (!fwdPen.empty()) {
            const double *row = fwdPen.data()
                + static_cast<std::size_t>(creator) * nUnits;
            for (UnitId u = 0; u < nUnits; ++u)
                unitScore[u] += row[u];
        } else {
            for (UnitId u = 0; u < nUnits; ++u)
                unitScore[u] +=
                    forwardPenalty * topo.distanceCost(creator, u);
        }
    }
}

void
Scheduler::addCostLoad(UnitId creator)
{
    // costload from the stale snapshot plus this creator's local
    // adjustments since the last exchange (Eq. 3). The loop runs the
    // uniform snapshot expression for every unit (branchless, over
    // contiguous rows) and then patches the creator, whose own queue
    // it always knows exactly — the terms are per-unit independent,
    // so the reordering is bit-exact. Clean viewers (no forwards
    // since the last exchange) skip the all-zero delta row: adding
    // 0.0 to a non-negative W is an exact no-op. Likewise the speed
    // division is skipped while every factor is exactly 1.0.
    const double avg = wAvg; // forwards are sum-preserving
    if (avg > 0.0) {
        const double b = weightB;
        const double dead = deadband;
        const double *snap = wSnap.data();
        const double *spd = speed.data();
        const double *delta = wDelta.data()
            + static_cast<std::size_t>(creator) * nUnits;
        const bool dirty = deltaDirty[creator] != 0;
        const double creatorBase = unitScore[creator];
        for (UnitId u = 0; u < nUnits; ++u) {
            double w = dirty ? snap[u] + delta[u] : snap[u];
            if (!speedsUniform)
                w /= spd[u];
            double r = w / avg - 1.0;
            // Small deviations are measurement noise on shallow
            // queues, not imbalance worth moving tasks for.
            r = r > dead ? r - dead : (r < -dead ? r + dead : 0.0);
            unitScore[u] += b * r;
        }
        double w = wTrue[creator];
        if (!speedsUniform)
            w /= spd[creator];
        double r = w / avg - 1.0;
        r = r > dead ? r - dead : (r < -dead ? r + dead : 0.0);
        unitScore[creator] = creatorBase + b * r;
    }
}

UnitId
Scheduler::argminAllUnits() const
{
    // Degraded mode: a down unit must never win a placement decision.
    // The mask is consulted only while a failure is active, so the
    // no-fault argmin (and with it every golden run) is untouched.
    if (faults && faults->anyUnitDown()) {
        UnitId best = invalidUnit;
        for (UnitId u = 0; u < nUnits; ++u) {
            if (!faults->isLive(u))
                continue;
            if (best == invalidUnit || unitScore[u] < unitScore[best])
                best = u;
        }
        return best;
    }
    // Branchless first-min-wins scan over the contiguous score row
    // (strict < keeps the lowest-numbered unit on ties, exactly like
    // the branching loop it replaces).
    const double *score = unitScore.data();
    UnitId best = 0;
    double bestV = score[0];
    for (UnitId u = 1; u < nUnits; ++u) {
        const bool lt = score[u] < bestV;
        best = lt ? u : best;
        bestV = lt ? score[u] : bestV;
    }
    return best;
}

UnitId
Scheduler::argminPruned(const Task &task, UnitId creator)
{
    // Pruned mode: a hardware scheduler scores only the plausible
    // targets — the creating unit, the main home, the camp/home
    // candidates of a few hint addresses, and the most idle units
    // from the last exchange.
    auto &set = prunedScratch;
    set.clear();
    set.push_back(creator);
    if (task.mainHome < nUnits)
        set.push_back(task.mainHome);
    const auto &data = task.hint.data; // pruned set: list part only
    std::size_t step = data.size() <= 16
        ? 1
        : (data.size() + 15) / 16;
    CandidateList cl;
    for (std::size_t i = 0; i < data.size(); i += step) {
        camps.candidates(data[i], cl);
        for (std::uint32_t c = 0; c < cl.n; ++c)
            set.push_back(cl.loc[c]);
    }
    for (UnitId u : idleHint)
        set.push_back(u);
    // set.front() is the creator: the only caller guaranteed live even
    // in degraded mode (dead units make no placement decisions).
    const bool masked = faults && faults->anyUnitDown();
    UnitId best = set.front();
    for (UnitId u : set) {
        if (masked && !faults->isLive(u))
            continue;
        if (unitScore[u] < unitScore[best])
            best = u;
    }
    return best;
}

UnitId
Scheduler::resolveTies(const Task &task, UnitId creator, UnitId best) const
{
    // Ties (e.g., a cold camp scoring like the home) must not move the
    // task: prefer the creating unit, then the main element's home —
    // but never a down unit while a failure is active.
    constexpr double eps = 1e-9;
    const bool masked = faults && faults->anyUnitDown();
    if ((!masked || faults->isLive(creator))
        && unitScore[creator] <= unitScore[best] + eps)
        return creator;
    if (task.mainHome < nUnits
        && (!masked || faults->isLive(task.mainHome))
        && unitScore[task.mainHome] <= unitScore[best] + eps)
        return task.mainHome;
    return best;
}

void
Scheduler::onEnqueued(UnitId u, double load, UnitId creatorView)
{
    // Only the true W changes: task creation (staging children for the
    // next timestamp) happens at a similar rate on every unit, so units
    // reconcile it at the next exchange. Local view adjustments are
    // reserved for this unit's own placement decisions (onForwarded),
    // which would otherwise dogpile within an exchange interval.
    (void)creatorView;
    wTrue[u] += load;
}

void
Scheduler::onDequeued(UnitId u, double load)
{
    wTrue[u] -= load;
    if (wTrue[u] < 0.0)
        wTrue[u] = 0.0;
}

void
Scheduler::onStolen(UnitId victim, UnitId thief, double load)
{
    wTrue[victim] -= load;
    if (wTrue[victim] < 0.0)
        wTrue[victim] = 0.0;
    wTrue[thief] += load;
}

void
Scheduler::onForwarded(UnitId from, UnitId to, double load, UnitId viewer)
{
    wTrue[from] -= load;
    if (wTrue[from] < 0.0)
        wTrue[from] = 0.0;
    wTrue[to] += load;
    // The forwarding unit immediately reflects its own decision in its
    // local view; other units learn at the next exchange.
    double *row = wDelta.data() + static_cast<std::size_t>(viewer) * nUnits;
    row[from] -= load;
    row[to] += load;
    if (!deltaDirty[viewer]) {
        deltaDirty[viewer] = 1;
        dirtyViewers.push_back(viewer);
    }
}

void
Scheduler::exchangeSnapshot(Tick now)
{
    ++nExchanges;
    if (tracer && tracer->enabled())
        tracer->record(obs::TraceEvent::CampExchange,
                       obs::Tracer::systemUnit, 1, now, 0,
                       nExchanges.value());
    wSnap = wTrue;
    if (faults && faults->anyInjector()) {
        speedsUniform = true;
        for (UnitId u = 0; u < nUnits; ++u) {
            speed[u] = faults->speedFactor(u, now);
            speedsUniform = speedsUniform && speed[u] == 1.0;
        }
    }
    // The average uses the same effective (speed-scaled) W values the
    // per-unit costload terms see.
    wSnapSum = 0.0;
    for (UnitId u = 0; u < nUnits; ++u)
        wSnapSum += wSnap[u] / speed[u];
    wAvg = wSnapSum / nUnits;
    // Refresh the most-idle hint used by the pruned scoring mode. The
    // hint depth is capped by the unit count: machines smaller than
    // the nominal 8-entry hint must not sort past the end.
    if (!exhaustiveScoring) {
        // Down units are excluded from the idle hint: an "idle" dead
        // unit would otherwise look like the perfect steal/forward
        // target. With no failure active the candidate list is the
        // full 0..nUnits-1 sequence as before.
        const bool masked = faults && faults->anyUnitDown();
        idleHint.clear();
        for (UnitId u = 0; u < nUnits; ++u)
            if (!masked || faults->isLive(u))
                idleHint.push_back(u);
        const std::size_t hintDepth =
            std::min<std::size_t>(8, idleHint.size());
        std::partial_sort(idleHint.begin(),
                          idleHint.begin() + hintDepth,
                          idleHint.end(), [this](UnitId a, UnitId b) {
                              return wSnap[a] < wSnap[b];
                          });
        idleHint.resize(hintDepth);
    }
    // Clear only the rows of viewers that actually forwarded since the
    // last exchange: O(active viewers * units) instead of O(units^2).
    // Clean rows are already all-zero by the deltaDirty invariant.
    for (UnitId v : dirtyViewers) {
        auto *row = wDelta.data() + static_cast<std::size_t>(v) * nUnits;
        std::fill(row, row + nUnits, 0.0);
        deltaDirty[v] = 0;
    }
    dirtyViewers.clear();
}

} // namespace abndp
