#include "sched/scheduler.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sched/policy_registry.hh"

namespace abndp
{

Scheduler::Scheduler(const SystemConfig &cfg, const Topology &topo,
                     const CampMapping &camps, const FaultModel *faults,
                     obs::Tracer *tracer)
    : cfg(cfg), topo(topo), camps(camps), faults(faults), tracer(tracer),
      policyObj(makeConfiguredPolicy(cfg)),
      campAware(cfg.traveller.style != CacheStyle::None),
      exhaustiveScoring(cfg.sched.exhaustiveScoring),
      weightB(cfg.sched.hybridAlpha * topo.interCost()),
      forwardPenalty(cfg.sched.forwardPenaltyFrac),
      deadband(cfg.sched.costloadDeadband),
      nUnits(topo.numUnits()),
      nStacks(topo.numStacks()),
      wTrue(nUnits, 0.0),
      wSnap(nUnits, 0.0),
      wDelta(nUnits, std::vector<double>(nUnits, 0.0)),
      speed(nUnits, 1.0),
      stackBase(nStacks, 0.0),
      unitBonus(nUnits, 0.0),
      unitScore(nUnits, 0.0)
{
}

double
Scheduler::estimateLoad(const Task &task) const
{
    if (task.hint.workload != 0)
        return static_cast<double>(task.hint.workload);
    // Section 3.1: estimate from the total memory access cost of the
    // primary-data addresses. One nominal DRAM access per hint address
    // plus a fixed task overhead; only relative magnitudes matter.
    constexpr double nominal_access = 51.0; // ~tRP + tRCD + tCAS, ns
    constexpr double task_overhead = 20.0;
    return task_overhead
        + nominal_access
        * static_cast<double>(task.hint.totalLines());
}

void
Scheduler::scoreCostMem(const Task &task, bool withCamps)
{
    // With the crossbar NoC Dintra is constant (the paper's setting);
    // for the ring option the stack-level term uses the mean ring
    // distance as an estimate (placement within the stack is then a
    // second-order effect).
    const double d_intra = topo.intraCost() * topo.meanIntraHops();
    const double d_inter = topo.interCost();

    std::fill(stackBase.begin(), stackBase.end(), 0.0);
    for (UnitId u : bonusDirty)
        unitBonus[u] = 0.0;
    bonusDirty.clear();

    // Gather the addresses to score: the explicit list plus a few
    // sample lines per range (ranges are contiguous allocations, so
    // sampling preserves their distance profile).
    sampleScratch.clear();
    for (Addr a : task.hint.data)
        sampleScratch.push_back(a);
    for (const auto &r : task.hint.ranges) {
        sampleScratch.push_back(r.start);
        if (r.lines() > 2)
            sampleScratch.push_back(r.start + r.bytes / 2);
        if (r.lines() > 1)
            sampleScratch.push_back(r.start + r.bytes - 1);
    }
    const auto &data = sampleScratch;
    if (data.empty()) {
        std::fill(unitScore.begin(), unitScore.end(), 0.0);
        return;
    }

    // Sample at most sampleCap addresses for huge hints (a hardware
    // scheduler would summarize long address lists the same way).
    std::size_t step = data.size() <= sampleCap
        ? 1
        : (data.size() + sampleCap - 1) / sampleCap;

    std::uint32_t sampled = 0;
    CandidateList cl;
    for (std::size_t i = 0; i < data.size(); i += step, ++sampled) {
        Addr a = data[i];
        if (withCamps) {
            camps.candidates(a, cl);
        } else {
            cl.loc[0] = camps.homeOf(a);
            cl.n = 1;
        }

        for (StackId s = 0; s < nStacks; ++s) {
            double cmin = -1.0;
            for (std::uint32_t c = 0; c < cl.n; ++c) {
                StackId cs = topo.stackOf(cl.loc[c]);
                double cost;
                if (cs == s) {
                    cost = d_intra;
                } else {
                    UnitId rep0 = cl.loc[c];
                    // Hop count only depends on the stacks.
                    auto [x1, y1] = topo.stackCoord(s);
                    auto [x2, y2] = topo.stackCoord(cs);
                    std::uint32_t hops = (x1 > x2 ? x1 - x2 : x2 - x1)
                        + (y1 > y2 ? y1 - y2 : y2 - y1);
                    cost = d_inter * hops;
                    (void)rep0;
                }
                if (cmin < 0.0 || cost < cmin)
                    cmin = cost;
            }
            stackBase[s] += cmin;
        }

        // A unit equal to a candidate saves (Dintra - Dlocal) for this
        // address relative to the stack-level bound.
        for (std::uint32_t c = 0; c < cl.n; ++c) {
            UnitId cand = cl.loc[c];
            if (unitBonus[cand] == 0.0)
                bonusDirty.push_back(cand);
            unitBonus[cand] += d_intra; // Dlocal == 0
        }
    }

    abndp_assert(sampled > 0);
    const double inv = 1.0 / sampled;
    for (UnitId u = 0; u < nUnits; ++u)
        unitScore[u] = (stackBase[topo.stackOf(u)] - unitBonus[u]) * inv;
}

UnitId
Scheduler::choose(const Task &task, UnitId creator)
{
    ++nDecisions;
    return policyObj->choose(*this, task, creator);
}

void
Scheduler::addForwardPenalty(UnitId creator)
{
    // Moving the task itself ships its descriptor to the target: a
    // real (if small) cost that keeps tiny tasks from migrating for
    // negligible gains.
    if (forwardPenalty > 0.0) {
        for (UnitId u = 0; u < nUnits; ++u)
            unitScore[u] += forwardPenalty * topo.distanceCost(creator, u);
    }
}

void
Scheduler::addCostLoad(UnitId creator)
{
    // costload from the stale snapshot plus this creator's local
    // adjustments since the last exchange (Eq. 3).
    const auto &delta = wDelta[creator];
    double avg = wSnapSum / nUnits; // forwards are sum-preserving
    if (avg > 0.0) {
        for (UnitId u = 0; u < nUnits; ++u) {
            // A unit always knows its own queue exactly; everyone
            // else is seen through the snapshot + local adjustments.
            // Dividing by the service speed sampled at the last
            // exchange makes derated (straggler) units look
            // proportionally busier (exact no-op at speed 1.0).
            double w = u == creator ? wTrue[u]
                                    : wSnap[u] + delta[u];
            w /= speed[u];
            double r = w / avg - 1.0;
            // Small deviations are measurement noise on shallow
            // queues, not imbalance worth moving tasks for.
            if (r > deadband)
                r -= deadband;
            else if (r < -deadband)
                r += deadband;
            else
                r = 0.0;
            unitScore[u] += weightB * r;
        }
    }
}

UnitId
Scheduler::argminAllUnits() const
{
    // Degraded mode: a down unit must never win a placement decision.
    // The mask is consulted only while a failure is active, so the
    // no-fault argmin (and with it every golden run) is untouched.
    if (faults && faults->anyUnitDown()) {
        UnitId best = invalidUnit;
        for (UnitId u = 0; u < nUnits; ++u) {
            if (!faults->isLive(u))
                continue;
            if (best == invalidUnit || unitScore[u] < unitScore[best])
                best = u;
        }
        return best;
    }
    UnitId best = 0;
    for (UnitId u = 1; u < nUnits; ++u)
        if (unitScore[u] < unitScore[best])
            best = u;
    return best;
}

UnitId
Scheduler::argminPruned(const Task &task, UnitId creator)
{
    // Pruned mode: a hardware scheduler scores only the plausible
    // targets — the creating unit, the main home, the camp/home
    // candidates of a few hint addresses, and the most idle units
    // from the last exchange.
    auto &set = prunedScratch;
    set.clear();
    set.push_back(creator);
    if (task.mainHome < nUnits)
        set.push_back(task.mainHome);
    const auto &data = task.hint.data; // pruned set: list part only
    std::size_t step = data.size() <= 16
        ? 1
        : (data.size() + 15) / 16;
    CandidateList cl;
    for (std::size_t i = 0; i < data.size(); i += step) {
        camps.candidates(data[i], cl);
        for (std::uint32_t c = 0; c < cl.n; ++c)
            set.push_back(cl.loc[c]);
    }
    for (UnitId u : idleHint)
        set.push_back(u);
    // set.front() is the creator: the only caller guaranteed live even
    // in degraded mode (dead units make no placement decisions).
    const bool masked = faults && faults->anyUnitDown();
    UnitId best = set.front();
    for (UnitId u : set) {
        if (masked && !faults->isLive(u))
            continue;
        if (unitScore[u] < unitScore[best])
            best = u;
    }
    return best;
}

UnitId
Scheduler::resolveTies(const Task &task, UnitId creator, UnitId best) const
{
    // Ties (e.g., a cold camp scoring like the home) must not move the
    // task: prefer the creating unit, then the main element's home —
    // but never a down unit while a failure is active.
    constexpr double eps = 1e-9;
    const bool masked = faults && faults->anyUnitDown();
    if ((!masked || faults->isLive(creator))
        && unitScore[creator] <= unitScore[best] + eps)
        return creator;
    if (task.mainHome < nUnits
        && (!masked || faults->isLive(task.mainHome))
        && unitScore[task.mainHome] <= unitScore[best] + eps)
        return task.mainHome;
    return best;
}

void
Scheduler::onEnqueued(UnitId u, double load, UnitId creatorView)
{
    // Only the true W changes: task creation (staging children for the
    // next timestamp) happens at a similar rate on every unit, so units
    // reconcile it at the next exchange. Local view adjustments are
    // reserved for this unit's own placement decisions (onForwarded),
    // which would otherwise dogpile within an exchange interval.
    (void)creatorView;
    wTrue[u] += load;
}

void
Scheduler::onDequeued(UnitId u, double load)
{
    wTrue[u] -= load;
    if (wTrue[u] < 0.0)
        wTrue[u] = 0.0;
}

void
Scheduler::onStolen(UnitId victim, UnitId thief, double load)
{
    wTrue[victim] -= load;
    if (wTrue[victim] < 0.0)
        wTrue[victim] = 0.0;
    wTrue[thief] += load;
}

void
Scheduler::onForwarded(UnitId from, UnitId to, double load, UnitId viewer)
{
    wTrue[from] -= load;
    if (wTrue[from] < 0.0)
        wTrue[from] = 0.0;
    wTrue[to] += load;
    // The forwarding unit immediately reflects its own decision in its
    // local view; other units learn at the next exchange.
    wDelta[viewer][from] -= load;
    wDelta[viewer][to] += load;
}

void
Scheduler::exchangeSnapshot(Tick now)
{
    ++nExchanges;
    if (tracer && tracer->enabled())
        tracer->record(obs::TraceEvent::CampExchange,
                       obs::Tracer::systemUnit, 1, now, 0,
                       nExchanges.value());
    wSnap = wTrue;
    if (faults && faults->anyInjector())
        for (UnitId u = 0; u < nUnits; ++u)
            speed[u] = faults->speedFactor(u, now);
    // The average uses the same effective (speed-scaled) W values the
    // per-unit costload terms see.
    wSnapSum = 0.0;
    for (UnitId u = 0; u < nUnits; ++u)
        wSnapSum += wSnap[u] / speed[u];
    // Refresh the most-idle hint used by the pruned scoring mode. The
    // hint depth is capped by the unit count: machines smaller than
    // the nominal 8-entry hint must not sort past the end.
    if (!exhaustiveScoring) {
        // Down units are excluded from the idle hint: an "idle" dead
        // unit would otherwise look like the perfect steal/forward
        // target. With no failure active the candidate list is the
        // full 0..nUnits-1 sequence as before.
        const bool masked = faults && faults->anyUnitDown();
        idleHint.clear();
        for (UnitId u = 0; u < nUnits; ++u)
            if (!masked || faults->isLive(u))
                idleHint.push_back(u);
        const std::size_t hintDepth =
            std::min<std::size_t>(8, idleHint.size());
        std::partial_sort(idleHint.begin(),
                          idleHint.begin() + hintDepth,
                          idleHint.end(), [this](UnitId a, UnitId b) {
                              return wSnap[a] < wSnap[b];
                          });
        idleHint.resize(hintDepth);
    }
    for (auto &d : wDelta)
        std::fill(d.begin(), d.end(), 0.0);
}

} // namespace abndp
