/**
 * @file
 * Configuration of the hierarchical load-balancer family
 * (src/sched/lb; ROADMAP item 2): a two-tier structure — an
 * intra-stack crossbar tier and an inter-stack mesh tier — where each
 * tier runs one of the pluggable balancers ported from the authors'
 * later zsim-ndp code (stealing / average / reserve), plus the
 * hotness-driven migration engine that re-homes persistently hot
 * blocks.  Off by default: the `HLB` / `HLB-mig` design points
 * (common/config.cc) are what turn it on, so every classic Table-2
 * run stays bit-identical.
 */

#ifndef ABNDP_SCHED_LB_LB_CONFIG_HH
#define ABNDP_SCHED_LB_LB_CONFIG_HH

#include <cstdint>
#include <string>

namespace abndp
{

/** Balancer run by one tier of the hierarchical load balancer. */
enum class LbTierKind
{
    /** Tier disabled: no commands are exchanged at this level. */
    None,
    /** Idle members pull work from the most loaded member. */
    Stealing,
    /** Surplus above the tier mean flows greedily to deficits. */
    Average,
    /** Average with per-member targets shrunk by data hotness, so
     *  owners of hot blocks keep queue headroom for local work. */
    Reserve,
};

/** Display name of a tier balancer ("none" / "stealing" / ...). */
const char *lbTierName(LbTierKind k);
/** Parse a tier balancer name; fatal() on anything unknown. */
LbTierKind lbTierFromName(const std::string &name);

/** Hotness-driven data re-homing (the `HLB-mig` design point). */
struct LbMigrationConfig
{
    /** Master switch; requires the load balancer itself to be on. */
    bool enabled = false;
    /** Decayed hotness count a block needs before it may re-home. */
    std::uint32_t threshold = 8;
    /** Exchange windows a block must rest between two re-homes. */
    std::uint32_t cooldownWindows = 4;
    /** Cap on blocks migrated per exchange window (whole machine). */
    std::uint32_t maxPerExchange = 8;
};

/** The hierarchical load balancer (off unless a design enables it). */
struct LbConfig
{
    /**
     * Master switch, set by applyDesign()/composeDesign() for the
     * `HLB` family. When false, NdpSystem constructs no engine and
     * every hook site is a single bool test, so classic designs stay
     * bit-identical to their pre-HLB goldens.
     */
    bool enabled = false;
    /** Balancer of the intra-stack (crossbar) tier. */
    LbTierKind intraTier = LbTierKind::Stealing;
    /** Balancer of the inter-stack (mesh) tier. */
    LbTierKind interTier = LbTierKind::Average;
    /** Hot-block counters tracked per home unit (top-K). */
    std::uint32_t hotK = 16;
    /** Per-window decay: every count ages as cnt >>= decayShift. */
    std::uint32_t decayShift = 1;
    /** Ready-queue length at or below which a member counts as idle
     *  (stealing tier) / is never chosen as a donor. */
    std::uint32_t idleThreshold = 2;
    /** Max tasks moved per shed command. */
    std::uint32_t chunkSize = 4;
    /** Reserve tier: fraction of a member's fair share withheld in
     *  proportion to its share of tracked hotness, within [0, 1]. */
    double reserveFrac = 0.5;
    /** Data re-homing on top of the balancer. */
    LbMigrationConfig migration;
};

} // namespace abndp

#endif // ABNDP_SCHED_LB_LB_CONFIG_HH
