#include "sched/lb/lb_config.hh"

#include "common/logging.hh"

namespace abndp
{

const char *
lbTierName(LbTierKind k)
{
    switch (k) {
      case LbTierKind::None:
        return "none";
      case LbTierKind::Stealing:
        return "stealing";
      case LbTierKind::Average:
        return "average";
      case LbTierKind::Reserve:
        return "reserve";
    }
    panic("unreachable lb tier kind");
}

LbTierKind
lbTierFromName(const std::string &name)
{
    if (name == "none")
        return LbTierKind::None;
    if (name == "stealing")
        return LbTierKind::Stealing;
    if (name == "average")
        return LbTierKind::Average;
    if (name == "reserve")
        return LbTierKind::Reserve;
    fatal("unknown lb tier '", name,
          "' (expected none|stealing|average|reserve)");
}

} // namespace abndp
