/**
 * @file
 * Per-home-unit top-K hot-block tracking for the hierarchical load
 * balancer, after the per-address DataHotness of the authors' later
 * zsim-ndp code (SNIPPETS.md §1).
 *
 * Each home unit keeps a fixed array of K counter slots. A remote
 * read of a block bumps its slot (inserting on a free slot, or —
 * lossy-counting style — decrementing the current minimum and
 * replacing it once it reaches zero) and feeds a Boyer-Moore majority
 * vote over the requesting units, so the migration engine knows both
 * *which* blocks are hot and *who* keeps asking for them. Counts
 * decay geometrically once per exchange window.
 *
 * Purely observational until the reserve balancer or the migration
 * engine consults it: recording never touches timing, an Rng stream,
 * or any stat, so arming the tracker alone cannot perturb a run.
 * Differentially tested against check::RefDataHotness
 * (tests/test_differential.cc).
 */

#ifndef ABNDP_SCHED_LB_DATA_HOTNESS_HH
#define ABNDP_SCHED_LB_DATA_HOTNESS_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace abndp
{

/** One tracked hot block: count plus a majority vote of requesters. */
struct HotEntry
{
    Addr block = invalidAddr;       ///< block-aligned address
    std::uint64_t cnt = 0;          ///< decayed access count
    UnitId reqId = invalidUnit;     ///< Boyer-Moore majority candidate
    std::uint64_t reqCnt = 0;       ///< Boyer-Moore vote balance
};

/** Fixed-K hot-block counters, one bank of slots per home unit. */
class DataHotness
{
  public:
    /**
     * @param num_units home units tracked (one slot bank each)
     * @param k counter slots per unit (cfg.lb.hotK)
     * @param decay_shift per-window aging: cnt >>= decay_shift
     */
    DataHotness(std::uint32_t num_units, std::uint32_t k,
                std::uint32_t decay_shift)
        : k(k), decayShift(decay_shift), slots(std::size_t{num_units} * k)
    {}

    /**
     * Record one remote access to @p block homed on @p home, asked
     * for by @p requester. The caller filters local accesses: only
     * remote demand is evidence for re-homing.
     */
    void
    record(UnitId home, Addr block, UnitId requester)
    {
        HotEntry *bank = bankOf(home);
        HotEntry *free_slot = nullptr;
        HotEntry *min_slot = nullptr;
        for (std::uint32_t i = 0; i < k; ++i) {
            HotEntry &e = bank[i];
            if (e.block == block) {
                ++e.cnt;
                vote(e, requester);
                return;
            }
            if (e.cnt == 0) {
                if (!free_slot)
                    free_slot = &e;
            } else if (!min_slot || e.cnt < min_slot->cnt
                       || (e.cnt == min_slot->cnt
                           && e.block < min_slot->block)) {
                min_slot = &e;
            }
        }
        if (free_slot) {
            *free_slot = HotEntry{block, 1, requester, 1};
            return;
        }
        // Bank full: lossy counting — charge the miss to the current
        // minimum (smallest block breaks count ties) and take its
        // slot once it drains to zero.
        if (--min_slot->cnt == 0)
            *min_slot = HotEntry{block, 1, requester, 1};
    }

    /** Age every counter one exchange window; zeroed slots free up. */
    void
    decayAll()
    {
        for (HotEntry &e : slots) {
            e.cnt >>= decayShift;
            if (e.cnt == 0)
                e = HotEntry{};
        }
    }

    /**
     * Live entries of @p home, hottest first (count desc, block asc —
     * a total order, so consumers iterate deterministically).
     */
    std::vector<HotEntry>
    topK(UnitId home) const
    {
        std::vector<HotEntry> out;
        const HotEntry *bank = bankOf(home);
        for (std::uint32_t i = 0; i < k; ++i)
            if (bank[i].cnt > 0)
                insertSorted(out, bank[i]);
        return out;
    }

    /** Sum of live counts on @p home (reserve-tier hotness share). */
    std::uint64_t
    totalCount(UnitId home) const
    {
        std::uint64_t sum = 0;
        const HotEntry *bank = bankOf(home);
        for (std::uint32_t i = 0; i < k; ++i)
            sum += bank[i].cnt;
        return sum;
    }

    /** Drop every tracked counter (a migrated block restarts cold). */
    void
    erase(UnitId home, Addr block)
    {
        HotEntry *bank = bankOf(home);
        for (std::uint32_t i = 0; i < k; ++i)
            if (bank[i].block == block)
                bank[i] = HotEntry{};
    }

  private:
    /** Boyer-Moore majority step for the requester vote. */
    static void
    vote(HotEntry &e, UnitId requester)
    {
        if (e.reqCnt == 0) {
            e.reqId = requester;
            e.reqCnt = 1;
        } else if (e.reqId == requester) {
            ++e.reqCnt;
        } else {
            --e.reqCnt;
        }
    }

    /** Insertion keeping (cnt desc, block asc) order; K is small. */
    static void
    insertSorted(std::vector<HotEntry> &out, const HotEntry &e)
    {
        auto it = out.begin();
        while (it != out.end()
               && (it->cnt > e.cnt
                   || (it->cnt == e.cnt && it->block < e.block)))
            ++it;
        out.insert(it, e);
    }

    HotEntry *bankOf(UnitId home) { return &slots[std::size_t{home} * k]; }

    const HotEntry *
    bankOf(UnitId home) const
    {
        return &slots[std::size_t{home} * k];
    }

    const std::uint32_t k;
    const std::uint32_t decayShift;
    std::vector<HotEntry> slots;    ///< num_units banks of k, flat
};

} // namespace abndp

#endif // ABNDP_SCHED_LB_DATA_HOTNESS_HH
