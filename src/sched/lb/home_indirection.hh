/**
 * @file
 * Home-unit indirection for hotness-driven data re-homing.
 *
 * The static range partition (mem/address_map.hh) stays untouched;
 * re-homing overlays it with a sparse block → unit map consulted by
 * CampMapping::homeOf(). The table is empty unless the migration
 * engine has actually moved something, and the empty case is a single
 * branch, so designs without migration pay (and change) nothing.
 *
 * Lookup order never depends on map iteration order — only point
 * queries — so the unordered_map cannot leak nondeterminism into
 * timing. Differentially tested against check::RefHomeIndirection.
 */

#ifndef ABNDP_SCHED_LB_HOME_INDIRECTION_HH
#define ABNDP_SCHED_LB_HOME_INDIRECTION_HH

#include <cstddef>
#include <unordered_map>

#include "common/types.hh"

namespace abndp
{

/** Sparse overlay mapping re-homed blocks to their current owner. */
class HomeIndirection
{
  public:
    /** Any re-homed blocks at all? The hot-path early-out. */
    bool active() const { return !map.empty(); }

    /** Current home of @p block whose static home is @p base_home. */
    UnitId
    resolve(Addr block, UnitId base_home) const
    {
        auto it = map.find(block);
        return it == map.end() ? base_home : it->second;
    }

    /**
     * Re-home @p block to @p home. Moving a block back to its static
     * home @p base_home erases the entry instead, keeping the table
     * minimal (and active() meaningful).
     */
    void
    set(Addr block, UnitId home, UnitId base_home)
    {
        if (home == base_home)
            map.erase(block);
        else
            map[block] = home;
    }

    /** Number of blocks currently living away from home. */
    std::size_t entries() const { return map.size(); }

    /** Forget every re-homing (blocks revert to the static map). */
    void clear() { map.clear(); }

  private:
    std::unordered_map<Addr, UnitId> map;
};

} // namespace abndp

#endif // ABNDP_SCHED_LB_HOME_INDIRECTION_HH
