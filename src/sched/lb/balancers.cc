#include "sched/lb/balancers.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace abndp
{

namespace
{

/**
 * Record a move, folding repeats of the same (from, to) pair so a
 * command stream stays compact.
 */
void
addMove(std::vector<LbMove> &moves, std::uint32_t from, std::uint32_t to,
        std::uint32_t count)
{
    if (count == 0 || from == to)
        return;
    if (!moves.empty() && moves.back().from == from
        && moves.back().to == to) {
        moves.back().count += count;
        return;
    }
    moves.push_back({from, to, count});
}

/**
 * Stealing tier: each idle member (load <= idleThreshold) pulls up to
 * chunkSize tasks from the currently most loaded member, never taking
 * more than half the donor's surplus above the idle threshold —
 * zsim-ndp's steal-half rule, which keeps a single hot donor from
 * being drained below its own demand.
 */
std::vector<LbMove>
planStealing(const LbConfig &cfg, std::vector<std::uint32_t> work)
{
    std::vector<LbMove> moves;
    const std::uint32_t n = static_cast<std::uint32_t>(work.size());
    for (std::uint32_t thief = 0; thief < n; ++thief) {
        if (work[thief] > cfg.idleThreshold)
            continue;
        std::uint32_t donor = 0;
        for (std::uint32_t i = 1; i < n; ++i)
            if (work[i] > work[donor])
                donor = i;
        if (donor == thief || work[donor] <= cfg.idleThreshold)
            continue;
        std::uint32_t excess = work[donor] - cfg.idleThreshold;
        std::uint32_t take =
            std::min(cfg.chunkSize, std::max<std::uint32_t>(excess / 2, 1));
        addMove(moves, donor, thief, take);
        work[donor] -= take;
        work[thief] += take;
    }
    return moves;
}

/**
 * Greedy surplus → deficit levelling toward per-member targets, used
 * by both the average and reserve balancers. Donors and receivers are
 * visited in index order; the lowest-index surplus feeds the
 * lowest-index deficit first.
 */
std::vector<LbMove>
planToTargets(std::vector<std::uint32_t> work,
              const std::vector<std::uint32_t> &target)
{
    std::vector<LbMove> moves;
    const std::uint32_t n = static_cast<std::uint32_t>(work.size());
    std::uint32_t recv = 0;
    for (std::uint32_t donor = 0; donor < n; ++donor) {
        while (work[donor] > target[donor]) {
            while (recv < n && work[recv] >= target[recv])
                ++recv;
            if (recv >= n)
                return moves;
            std::uint32_t give = std::min(work[donor] - target[donor],
                                          target[recv] - work[recv]);
            addMove(moves, donor, recv, give);
            work[donor] -= give;
            work[recv] += give;
        }
    }
    return moves;
}

/** Average tier: every member levels toward the integer mean. */
std::vector<LbMove>
planAverage(const std::vector<std::uint32_t> &loads)
{
    std::uint64_t total = 0;
    for (std::uint32_t l : loads)
        total += l;
    std::uint32_t mean = static_cast<std::uint32_t>(total / loads.size());
    if (mean == 0)
        return {};
    std::vector<std::uint32_t> target(loads.size(), mean);
    return planToTargets(loads, target);
}

/**
 * Reserve tier: like average, but a member's target shrinks in
 * proportion to its share of tracked data hotness — owners of hot
 * blocks reserve queue headroom for the local work those blocks keep
 * attracting. With no tracked hotness this degenerates to average.
 */
std::vector<LbMove>
planReserve(const LbConfig &cfg, const std::vector<std::uint32_t> &loads,
            const std::vector<double> &hot_frac)
{
    std::uint64_t total = 0;
    for (std::uint32_t l : loads)
        total += l;
    double mean = static_cast<double>(total)
        / static_cast<double>(loads.size());
    if (total == 0)
        return {};
    std::vector<std::uint32_t> target(loads.size());
    for (std::size_t i = 0; i < loads.size(); ++i) {
        double frac = i < hot_frac.size() ? hot_frac[i] : 0.0;
        double t = mean * (1.0 - cfg.reserveFrac * frac);
        target[i] = static_cast<std::uint32_t>(std::floor(t));
    }
    return planToTargets(loads, target);
}

} // namespace

std::vector<LbMove>
planTier(LbTierKind kind, const LbConfig &cfg,
         const std::vector<std::uint32_t> &loads,
         const std::vector<double> &hot_frac)
{
    if (loads.size() < 2)
        return {};
    switch (kind) {
      case LbTierKind::None:
        return {};
      case LbTierKind::Stealing:
        return planStealing(cfg, loads);
      case LbTierKind::Average:
        return planAverage(loads);
      case LbTierKind::Reserve:
        return planReserve(cfg, loads, hot_frac);
    }
    panic("unreachable lb tier kind");
}

} // namespace abndp
