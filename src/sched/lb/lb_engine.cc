#include "sched/lb/lb_engine.hh"

#include <algorithm>

#include "sched/lb/balancers.hh"

namespace abndp
{

LbEngine::LbEngine(const LbConfig &cfg, const Topology &topo)
    : cfg(cfg), topo(topo),
      hot(topo.numUnits(), cfg.hotK, cfg.decayShift),
      stackUnits(topo.numStacks())
{
    for (UnitId u = 0; u < topo.numUnits(); ++u)
        stackUnits[topo.stackOf(u)].push_back(u);
}

namespace
{

/**
 * Per-member hotness shares for a reserve tier ({} for the others —
 * the tracker is only consulted when a balancer will actually use it).
 */
std::vector<double>
hotShares(LbTierKind kind, const DataHotness &hot,
          const std::vector<std::uint64_t> &counts)
{
    if (kind != LbTierKind::Reserve)
        return {};
    std::uint64_t total = 0;
    for (std::uint64_t c : counts)
        total += c;
    std::vector<double> frac(counts.size(), 0.0);
    if (total == 0)
        return frac;
    for (std::size_t i = 0; i < counts.size(); ++i)
        frac[i] = static_cast<double>(counts[i])
            / static_cast<double>(total);
    return frac;
}

} // namespace

std::vector<ShedCmd>
LbEngine::planSheds(const std::vector<std::uint32_t> &qlen) const
{
    std::vector<ShedCmd> cmds;

    // Intra tier: balance the units of every stack over the crossbar.
    if (cfg.intraTier != LbTierKind::None) {
        for (const std::vector<UnitId> &members : stackUnits) {
            std::vector<std::uint32_t> loads(members.size());
            std::vector<std::uint64_t> counts(members.size());
            for (std::size_t i = 0; i < members.size(); ++i) {
                loads[i] = qlen[members[i]];
                counts[i] = hot.totalCount(members[i]);
            }
            std::vector<double> frac =
                hotShares(cfg.intraTier, hot, counts);
            for (const LbMove &mv :
                 planTier(cfg.intraTier, cfg, loads, frac))
                cmds.push_back({members[mv.from], members[mv.to],
                                mv.count, false});
        }
    }

    // Inter tier: balance per-stack totals over the mesh. Intra moves
    // never change a stack's total, so the pre-shed snapshot is still
    // exact here.
    if (cfg.interTier != LbTierKind::None && stackUnits.size() > 1) {
        std::vector<std::uint32_t> loads(stackUnits.size());
        std::vector<std::uint64_t> counts(stackUnits.size());
        for (std::size_t s = 0; s < stackUnits.size(); ++s) {
            for (UnitId u : stackUnits[s]) {
                loads[s] += qlen[u];
                counts[s] += hot.totalCount(u);
            }
        }
        std::vector<double> frac = hotShares(cfg.interTier, hot, counts);
        for (const LbMove &mv : planTier(cfg.interTier, cfg, loads, frac)) {
            // Pin the stack-to-stack move to the most loaded unit of
            // the donor stack and the least loaded unit of the
            // receiver stack (lowest unit id breaks ties).
            UnitId victim = stackUnits[mv.from][0];
            for (UnitId u : stackUnits[mv.from])
                if (qlen[u] > qlen[victim])
                    victim = u;
            UnitId thief = stackUnits[mv.to][0];
            for (UnitId u : stackUnits[mv.to])
                if (qlen[u] < qlen[thief])
                    thief = u;
            cmds.push_back({victim, thief, mv.count, true});
        }
    }
    return cmds;
}

std::vector<MigrationCmd>
LbEngine::planMigrations(const CampMapping &camps)
{
    std::vector<MigrationCmd> cmds;
    const std::uint32_t cap = cfg.migration.maxPerExchange;
    for (UnitId home = 0; home < topo.numUnits(); ++home) {
        for (const HotEntry &e : hot.topK(home)) {
            if (cmds.size() >= cap)
                return cmds;
            if (e.cnt < cfg.migration.threshold)
                break;      // topK is count-descending: rest is colder
            // The tracker is keyed by the home at record time; skip
            // stale banks where the block has since moved on.
            if (camps.homeOf(e.block) != home || e.reqId == home
                || e.reqId == invalidUnit)
                continue;
            auto it = lastMigrated.find(e.block);
            if (it != lastMigrated.end()
                && window < it->second + cfg.migration.cooldownWindows)
                continue;
            cmds.push_back({e.block, home, e.reqId});
            lastMigrated[e.block] = window;
            hot.erase(home, e.block);   // restart cold at the new home
        }
    }
    return cmds;
}

void
LbEngine::onWindow()
{
    hot.decayAll();
    ++window;
}

} // namespace abndp
