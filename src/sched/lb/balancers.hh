/**
 * @file
 * The pluggable per-tier balancers of the hierarchical load balancer:
 * ports of the stealing / average / reserve family from the authors'
 * later zsim-ndp code (SNIPPETS.md §1), reduced to pure planning.
 *
 * A tier sees only a vector of member loads (ready-queue lengths, or
 * per-stack sums at the mesh tier) plus, for the reserve balancer, a
 * per-member hotness share, and returns shed commands. Planning draws
 * from no Rng and iterates members in index order with lowest-index
 * tie-breaks, so a plan is a pure function of its snapshot — the
 * determinism contract the ScaleDeterminism.Hlb* locks enforce.
 */

#ifndef ABNDP_SCHED_LB_BALANCERS_HH
#define ABNDP_SCHED_LB_BALANCERS_HH

#include <cstdint>
#include <vector>

#include "sched/lb/lb_config.hh"

namespace abndp
{

/** One planned shed: move @c count tasks from member to member. */
struct LbMove
{
    std::uint32_t from;
    std::uint32_t to;
    std::uint32_t count;
};

/**
 * Plan one tier's sheds over a load snapshot.
 *
 * @param kind which balancer this tier runs
 * @param cfg the lb knobs (idleThreshold, chunkSize, reserveFrac)
 * @param loads per-member load snapshot (tasks ready)
 * @param hot_frac per-member share of tracked hotness in [0,1]
 *        (reserve tier only; pass {} otherwise)
 * @return moves in deterministic order; members keep >= 0 load
 */
std::vector<LbMove> planTier(LbTierKind kind, const LbConfig &cfg,
                             const std::vector<std::uint32_t> &loads,
                             const std::vector<double> &hot_frac);

} // namespace abndp

#endif // ABNDP_SCHED_LB_BALANCERS_HH
