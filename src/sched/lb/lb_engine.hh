/**
 * @file
 * The hierarchical load-balancing engine: two balancer tiers planned
 * at exchange-snapshot time, plus hotness-driven migration planning.
 *
 * The engine is a pure planner over snapshots — NdpSystem gathers
 * ready-queue lengths, asks for shed commands, and executes them
 * through its own (meter-charged, event-driven) shed path; likewise
 * migration commands are executed by MemSystem::migrateBlock(). The
 * engine itself never touches timing state and draws from no Rng, so
 * plans are pure functions of the snapshot and the window history.
 */

#ifndef ABNDP_SCHED_LB_LB_ENGINE_HH
#define ABNDP_SCHED_LB_LB_ENGINE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cache/camp_mapping.hh"
#include "common/types.hh"
#include "net/topology.hh"
#include "sched/lb/data_hotness.hh"
#include "sched/lb/lb_config.hh"

namespace abndp
{

/** One task-shed command: victim sheds @c count tasks to thief. */
struct ShedCmd
{
    UnitId victim;
    UnitId thief;
    std::uint32_t count;
    bool inter;     ///< crossed stacks (inter tier) vs intra tier
};

/** One re-homing command: move ownership of a block between units. */
struct MigrationCmd
{
    Addr block;     ///< block-aligned address
    UnitId from;    ///< current home
    UnitId to;      ///< new home (the majority requester)
};

/** Two-tier balancer + migration planner; one per NdpSystem. */
class LbEngine
{
  public:
    LbEngine(const LbConfig &cfg, const Topology &topo);

    /** The hot-block tracker MemSystem feeds on remote reads. */
    DataHotness &hotness() { return hot; }
    const DataHotness &hotness() const { return hot; }

    /**
     * Plan both tiers over a per-unit ready-queue-length snapshot:
     * first the intra tier inside every stack, then the inter tier
     * over per-stack totals (unchanged by intra moves), with each
     * stack-to-stack move pinned to its most loaded donor unit and
     * least loaded receiver unit. Deterministic order throughout.
     */
    std::vector<ShedCmd>
    planSheds(const std::vector<std::uint32_t> &qlen) const;

    /**
     * Plan re-homings: blocks whose decayed count reached
     * migration.threshold move to their majority requester, subject
     * to the per-block cooldown and the per-window machine-wide cap.
     * Planned blocks enter cooldown and drop their hotness entry
     * (the caller executes every returned command).
     */
    std::vector<MigrationCmd> planMigrations(const CampMapping &camps);

    /** Close an exchange window: decay counters, advance the clock. */
    void onWindow();

  private:
    const LbConfig cfg;
    const Topology &topo;
    DataHotness hot;
    /** Units of each stack, in unit-id order (tier membership). */
    std::vector<std::vector<UnitId>> stackUnits;
    /** Window in which a block last re-homed (cooldown state). */
    std::unordered_map<Addr, std::uint64_t> lastMigrated;
    std::uint64_t window = 0;
};

} // namespace abndp

#endif // ABNDP_SCHED_LB_LB_ENGINE_HH
