/**
 * @file
 * Hybrid policy (Table 2 designs Sh/O, paper Section 5): score every
 * unit with Eq. 1 (costmem + B * costload, plus the task-descriptor
 * shipping penalty) and place the task on the argmin. Tasks pass
 * through the creating unit's scheduling window (Figure 4) so the
 * decision sees fresher workload information.
 */

#ifndef ABNDP_SCHED_POLICIES_HYBRID_POLICY_HH
#define ABNDP_SCHED_POLICIES_HYBRID_POLICY_HH

#include "sched/scheduling_policy.hh"

namespace abndp
{

/** Eq.-1 scoring policy balancing data affinity against load. */
class HybridPolicy : public SchedulingPolicy
{
  public:
    const char *name() const override { return "hybrid"; }

    UnitId choose(Scheduler &sched, const Task &task,
                  UnitId creator) override;

    bool usesSchedulingWindow() const override { return true; }
};

} // namespace abndp

#endif // ABNDP_SCHED_POLICIES_HYBRID_POLICY_HH
