#include "sched/policies/mem_match_policy.hh"

#include "sched/scheduler.hh"

namespace abndp
{

UnitId
MemMatchPolicy::choose(Scheduler &sched, const Task &task, UnitId creator)
{
    // Pure data-affinity scoring: camp copies are not consulted even
    // when a cache layer is present (design C matches the paper's
    // lowest-distance baseline, which is cache-oblivious). Under an
    // active unit failure argminAllUnits/resolveTies score live units
    // only, so the lowest-distance choice degrades to the nearest
    // live unit.
    sched.scoreCostMem(task, false);
    return sched.resolveTies(task, creator, sched.argminAllUnits());
}

} // namespace abndp
