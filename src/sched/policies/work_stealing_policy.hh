/**
 * @file
 * Work-stealing decorator (Table 2 design Sl = memmatch + stealing):
 * wraps any inner placement policy and additionally lets idle units
 * steal queued tasks from busier ones (Section 2.3). Placement
 * decisions are delegated unchanged; the stealing mechanics themselves
 * (victim probing, batch sizing, descriptor round trips) live in the
 * epoch engine, which queries SchedulingPolicy::stealing().
 */

#ifndef ABNDP_SCHED_POLICIES_WORK_STEALING_POLICY_HH
#define ABNDP_SCHED_POLICIES_WORK_STEALING_POLICY_HH

#include <memory>
#include <string>

#include "sched/scheduling_policy.hh"

namespace abndp
{

/** Adds dynamic stealing on top of any placement policy. */
class WorkStealingPolicy : public SchedulingPolicy
{
  public:
    explicit WorkStealingPolicy(std::unique_ptr<SchedulingPolicy> inner_);

    const char *name() const override { return composedName.c_str(); }

    UnitId choose(Scheduler &sched, const Task &task,
                  UnitId creator) override;

    bool usesSchedulingWindow() const override;

    bool stealing() const override { return true; }

    const SchedulingPolicy *inner() const override { return wrapped.get(); }

  private:
    std::unique_ptr<SchedulingPolicy> wrapped;
    std::string composedName;
};

} // namespace abndp

#endif // ABNDP_SCHED_POLICIES_WORK_STEALING_POLICY_HH
