#include "sched/policies/local_policy.hh"

#include "sched/scheduler.hh"
#include "tasking/task.hh"

namespace abndp
{

UnitId
LocalPolicy::choose(Scheduler &sched, const Task &task, UnitId creator)
{
    (void)creator;
    // Degraded mode: when the main home is down, fall back to the live
    // buddy now serving its address range (exact identity otherwise).
    return sched.liveTarget(task.mainHome);
}

} // namespace abndp
