#include "sched/policies/local_policy.hh"

#include "tasking/task.hh"

namespace abndp
{

UnitId
LocalPolicy::choose(Scheduler &sched, const Task &task, UnitId creator)
{
    (void)sched;
    (void)creator;
    return task.mainHome;
}

} // namespace abndp
