/**
 * @file
 * Co-location policy (Table 2 design B): every task executes on the
 * home unit of its main (first hint) data element. No scoring, no
 * workload exchange — the static NDP baseline.
 */

#ifndef ABNDP_SCHED_POLICIES_LOCAL_POLICY_HH
#define ABNDP_SCHED_POLICIES_LOCAL_POLICY_HH

#include "sched/scheduling_policy.hh"

namespace abndp
{

/** Co-locate each task with its main data element. */
class LocalPolicy : public SchedulingPolicy
{
  public:
    const char *name() const override { return "local"; }

    UnitId choose(Scheduler &sched, const Task &task,
                  UnitId creator) override;
};

} // namespace abndp

#endif // ABNDP_SCHED_POLICIES_LOCAL_POLICY_HH
