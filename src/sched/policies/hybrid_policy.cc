#include "sched/policies/hybrid_policy.hh"

#include "sched/scheduler.hh"

namespace abndp
{

UnitId
HybridPolicy::choose(Scheduler &sched, const Task &task, UnitId creator)
{
    // Eq. 1: costmem (camp-aware when a cache layer holds copies),
    // plus the descriptor shipping cost, plus B * costload from the
    // creator's (possibly stale) view of the system. Both argmin
    // variants and the tie resolution consult the liveness mask while
    // a unit failure is active, so a down unit never wins Eq. 1.
    sched.scoreCostMem(task, sched.campAwareScoring());
    sched.addForwardPenalty(creator);
    sched.addCostLoad(creator);
    UnitId best = sched.exhaustive() ? sched.argminAllUnits()
                                     : sched.argminPruned(task, creator);
    return sched.resolveTies(task, creator, best);
}

} // namespace abndp
