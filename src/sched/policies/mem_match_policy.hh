/**
 * @file
 * Lowest-distance (memory-match) policy (Table 2 designs Sm/Sl/C):
 * place each task on the unit with the lowest total memory distance
 * over its hint addresses (Eq. 2), ignoring load entirely.
 */

#ifndef ABNDP_SCHED_POLICIES_MEM_MATCH_POLICY_HH
#define ABNDP_SCHED_POLICIES_MEM_MATCH_POLICY_HH

#include "sched/scheduling_policy.hh"

namespace abndp
{

/** Pick the argmin-costmem unit for each task. */
class MemMatchPolicy : public SchedulingPolicy
{
  public:
    const char *name() const override { return "memmatch"; }

    UnitId choose(Scheduler &sched, const Task &task,
                  UnitId creator) override;
};

} // namespace abndp

#endif // ABNDP_SCHED_POLICIES_MEM_MATCH_POLICY_HH
