#include "sched/policies/work_stealing_policy.hh"

#include "common/logging.hh"

namespace abndp
{

WorkStealingPolicy::WorkStealingPolicy(
        std::unique_ptr<SchedulingPolicy> inner_)
    : wrapped(std::move(inner_))
{
    abndp_assert(wrapped != nullptr,
                 "WorkStealingPolicy needs an inner policy");
    composedName = std::string(wrapped->name()) + "+steal";
}

UnitId
WorkStealingPolicy::choose(Scheduler &sched, const Task &task,
                           UnitId creator)
{
    // Placement delegates to the inner policy (which is liveness-
    // masked through the scheduler's scoring services); the stealing
    // side of degraded mode — never probing a down victim, recovering
    // a batch whose thief died in flight — lives in the epoch engine
    // (NdpSystem::attemptSteal).
    return wrapped->choose(sched, task, creator);
}

bool
WorkStealingPolicy::usesSchedulingWindow() const
{
    return wrapped->usesSchedulingWindow();
}

} // namespace abndp
