/**
 * @file
 * Registries for scheduling policies and design points.
 *
 * A scheduling policy registers under a name; a *design point* is a
 * named (policy, work stealing, cache layer) composition — exactly the
 * axes Table 2 varies. Registering both from one translation unit is
 * all it takes to make a new design runnable:
 *
 *     registerSchedulingPolicy("mine", [](const SystemConfig &) {
 *         return std::make_unique<MyPolicy>();
 *     });
 *     registerDesignPoint("M", {"mine", false, CacheStyle::None});
 *     SystemConfig cfg = composeDesign(SystemConfig{}, "M");
 *
 * The built-in policies ("local", "memmatch", "hybrid") and the Table-2
 * design points (B, Sm, Sl, Sh, C, O, plus the host-only H) are seeded
 * on first use, so composeDesign() also understands the paper's names.
 */

#ifndef ABNDP_SCHED_POLICY_REGISTRY_HH
#define ABNDP_SCHED_POLICY_REGISTRY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hh"
#include "sched/scheduling_policy.hh"

namespace abndp
{

/** Factory building a policy instance for one system configuration. */
using PolicyFactory =
    std::function<std::unique_ptr<SchedulingPolicy>(const SystemConfig &)>;

/**
 * Register (or replace) a policy factory under @p name.
 * @return true if a previous registration was replaced.
 */
bool registerSchedulingPolicy(const std::string &name,
                              PolicyFactory factory);

/** Instantiate the policy registered as @p name; fatal() if unknown. */
std::unique_ptr<SchedulingPolicy>
makeSchedulingPolicy(const std::string &name, const SystemConfig &cfg);

/**
 * Build the policy object @p cfg asks for: the registered
 * cfg.sched.policyName if set, otherwise the built-in policy matching
 * cfg.sched.policy, wrapped in the work-stealing decorator when
 * cfg.sched.workStealing is on.
 */
std::unique_ptr<SchedulingPolicy>
makeConfiguredPolicy(const SystemConfig &cfg);

/** Registered policy names, sorted (diagnostics and tests). */
std::vector<std::string> registeredPolicyNames();

/** Name of the built-in policy implementing @p policy. */
const char *builtinPolicyName(SchedPolicy policy);

/** One named composition of the (extended) Table-2 axes. */
struct DesignSpec
{
    /** Registered scheduling-policy name. */
    std::string schedPolicy = "local";
    /** Compose the work-stealing decorator around the policy. */
    bool workStealing = false;
    /** Cache layer between the units and their DRAM homes. */
    CacheStyle cache = CacheStyle::None;
    /** Arm the hierarchical load balancer (src/sched/lb). */
    bool lb = false;
    /** Arm hotness-driven data re-homing (requires @ref lb). */
    bool migrate = false;
};

/**
 * Register (or replace) a design point under @p name.
 * @return true if a previous registration was replaced.
 */
bool registerDesignPoint(const std::string &name, DesignSpec spec);

/**
 * Apply the design point registered as @p name on top of @p base —
 * the string-keyed analogue of applyDesign(); fatal() if unknown.
 */
SystemConfig composeDesign(SystemConfig base, const std::string &name);

/** Registered design-point names, sorted (diagnostics and tests). */
std::vector<std::string> registeredDesignPoints();

} // namespace abndp

#endif // ABNDP_SCHED_POLICY_REGISTRY_HH
