/**
 * @file
 * Strategy interface for task-placement policies (paper Table 2).
 *
 * A SchedulingPolicy decides, per task, which unit executes it. The
 * Scheduler owns the scoring machinery (costmem / costload, Eq. 1-3)
 * and exposes it as services; policies compose those services into a
 * decision, so a new design point is a class plus a registry entry
 * (src/sched/policy_registry.hh), not a branch in the epoch loop.
 *
 * Concrete policies live in src/sched/policies/: LocalPolicy (B),
 * MemMatchPolicy (Sm/Sl/C), HybridPolicy (Sh/O), plus the
 * WorkStealingPolicy decorator that adds dynamic stealing (Sl) around
 * any inner policy.
 */

#ifndef ABNDP_SCHED_SCHEDULING_POLICY_HH
#define ABNDP_SCHED_SCHEDULING_POLICY_HH

#include "common/types.hh"

namespace abndp
{

class Scheduler;
struct Task;

/** Per-task placement strategy; stateless unless a subclass adds state. */
class SchedulingPolicy
{
  public:
    virtual ~SchedulingPolicy() = default;

    /** Registry name of this policy ("local", "hybrid", ...). */
    virtual const char *name() const = 0;

    /**
     * Pick the execution unit for @p task created at unit @p creator,
     * using @p sched's scoring services. Must be deterministic: equal
     * inputs (including scheduler bookkeeping state) must yield equal
     * decisions, or runs lose bit-determinism.
     */
    virtual UnitId choose(Scheduler &sched, const Task &task,
                          UnitId creator) = 0;

    /**
     * Whether tasks pass through the creating unit's pending queue and
     * scheduling window (Figure 4) instead of being placed directly
     * into a ready queue at creation. Window policies decide with
     * fresher workload information at a per-decision hardware latency.
     */
    virtual bool usesSchedulingWindow() const { return false; }

    /** Whether idle units dynamically steal work (Sl-style). */
    virtual bool stealing() const { return false; }

    /** Decorators return the wrapped policy; leaf policies null. */
    virtual const SchedulingPolicy *inner() const { return nullptr; }
};

} // namespace abndp

#endif // ABNDP_SCHED_SCHEDULING_POLICY_HH
