/**
 * @file
 * Task scheduling policies (paper Sections 2.3 and 5).
 *
 * One Scheduler instance serves the whole system but models the paper's
 * distributed decision making: every creating unit scores with the shared
 * periodic workload snapshot plus its own local adjustments, never with
 * other units' true instantaneous state.
 *
 * score(t, u) = costmem(t, u) + B * costload(t, u)        (Eq. 1)
 * costmem     = avg over hint addrs of the distance from u to the
 *               nearest candidate location of that address  (Eq. 2)
 * costload    = W_u / W_avg - 1                             (Eq. 3)
 */

#ifndef ABNDP_SCHED_SCHEDULER_HH
#define ABNDP_SCHED_SCHEDULER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/camp_mapping.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "fault/fault_model.hh"
#include "net/topology.hh"
#include "obs/stats_registry.hh"
#include "obs/trace.hh"
#include "sched/scheduling_policy.hh"
#include "tasking/task.hh"

namespace abndp
{

/**
 * Score-based task placement. The placement decision itself is
 * delegated to a SchedulingPolicy object (built from the configured
 * policy name or enum via the policy registry); this class owns the
 * shared scoring machinery and the W bookkeeping every policy uses.
 */
class Scheduler
{
  public:
    /**
     * @param faults optional fault-injection engine: the periodic load
     *               snapshot divides each unit's W by its service-speed
     *               factor, so costload sees derated (straggler) units
     *               as proportionally busier and steers tasks away.
     * @param tracer optional event tracer: every snapshot exchange
     *               records one CampExchange instant on the system track.
     */
    Scheduler(const SystemConfig &cfg, const Topology &topo,
              const CampMapping &camps,
              const FaultModel *faults = nullptr,
              obs::Tracer *tracer = nullptr);

    /**
     * Scheduler-visible load estimate of a task: the programmer-supplied
     * hint.workload if present, otherwise the total memory access cost of
     * the hint addresses (Section 3.1).
     */
    double estimateLoad(const Task &task) const;

    /**
     * Pick the execution unit for @p task created at unit @p creator.
     * Does not mutate W bookkeeping; callers pair this with onEnqueued().
     */
    UnitId choose(const Task &task, UnitId creator);

    /** Account a task (with loadEstimate set) entering unit @p u. */
    void onEnqueued(UnitId u, double load, UnitId creatorView);

    /** Account a task leaving unit @p u (dequeued for execution). */
    void onDequeued(UnitId u, double load);

    /** Move @p load of queued work from @p victim to @p thief (steal). */
    void onStolen(UnitId victim, UnitId thief, double load);

    /**
     * Account a scheduling-window forward of @p load from @p from to
     * @p to, visible immediately in @p viewer's local W adjustments.
     */
    void onForwarded(UnitId from, UnitId to, double load, UnitId viewer);

    /**
     * Periodic hierarchical workload information exchange: refresh the
     * global snapshot from true per-unit W values and clear all local
     * adjustment deltas. @p now (the exchange tick) samples the
     * straggler service speeds the snapshot observes.
     */
    void exchangeSnapshot(Tick now = 0);

    /** Snapshot W value of a unit (used for steal victim choice too). */
    double snapshotW(UnitId u) const { return wSnap[u]; }

    /** True instantaneous W (for stats/tests; not used for decisions). */
    double trueW(UnitId u) const { return wTrue[u]; }

    /** The hybrid weight B in the units of costmem (ns). */
    double hybridWeight() const { return weightB; }

    /** Whether choose() considers every unit (paper) or a pruned set. */
    bool exhaustive() const { return exhaustiveScoring; }

    /** The active placement policy object. */
    const SchedulingPolicy &policy() const { return *policyObj; }

    /** Whether tasks pass through pending queues (Figure 4 windows). */
    bool usesSchedulingWindow() const
    {
        return policyObj->usesSchedulingWindow();
    }

    /** Whether idle units dynamically steal work. */
    bool stealingEnabled() const { return policyObj->stealing(); }

    std::uint64_t decisions() const { return nDecisions; }

    // ---- Scoring services for SchedulingPolicy implementations ----
    //
    // A policy composes these into a decision; the arithmetic lives
    // here so every policy scores with identical, bit-reproducible
    // math. All of them operate on the shared unitScore scratch.

    std::uint32_t unitCount() const { return nUnits; }

    /** Whether camp locations count as data copies in costmem (§4.3). */
    bool campAwareScoring() const { return campAware; }

    /**
     * Graceful-degradation service: @p u itself while it is live, its
     * deterministic live stand-in (FaultModel::rehomeOf buddy) while it
     * is down. Exact identity whenever no unit failure is active, so
     * the no-fault decision stream is untouched.
     */
    UnitId
    liveTarget(UnitId u) const
    {
        if (faults && faults->anyUnitDown() && !faults->isLive(u))
            return faults->rehomeOf(u);
        return u;
    }

    /** Fill unitScore with costmem for all units (Eq. 2). */
    void scoreCostMem(const Task &task, bool withCamps);

    /** Add the task-descriptor shipping cost from @p creator (Eq. 1). */
    void addForwardPenalty(UnitId creator);

    /**
     * Add B * costload from @p creator's view: the stale snapshot plus
     * its own forwarding adjustments, its true local queue for itself,
     * straggler speed derating, and the deadband (Eq. 3).
     */
    void addCostLoad(UnitId creator);

    /** Argmin of unitScore over every unit (paper behaviour). */
    UnitId argminAllUnits() const;

    /** Argmin over the pruned candidate set (hardware-scorer mode). */
    UnitId argminPruned(const Task &task, UnitId creator);

    /**
     * Tie resolution: prefer the creating unit, then the main home,
     * whenever they score within epsilon of @p best (a cold camp must
     * not move the task).
     */
    UnitId resolveTies(const Task &task, UnitId creator, UnitId best) const;

    /** Snapshot exchanges performed so far. */
    std::uint64_t exchanges() const { return nExchanges.value(); }

    /** Register the scheduler stats under @p node. */
    void
    regStats(obs::StatNode &node) const
    {
        node.addValue("decisions",
                      [this]() {
                          return static_cast<double>(nDecisions);
                      },
                      obs::StatKind::Counter, true);
        node.addCounter("exchanges", &nExchanges);
    }

  private:
    const SystemConfig &cfg;
    const Topology &topo;
    const CampMapping &camps;
    const FaultModel *faults;
    obs::Tracer *tracer;
    std::unique_ptr<SchedulingPolicy> policyObj;
    bool campAware;
    bool exhaustiveScoring;
    double weightB;
    double forwardPenalty;
    double deadband;
    std::uint32_t nUnits;
    std::uint32_t nStacks;

    /** Max hint addresses sampled when scoring huge tasks. */
    static constexpr std::uint32_t sampleCap = 64;

    // True queued work per unit, and the periodically exchanged snapshot.
    std::vector<double> wTrue;
    std::vector<double> wSnap;
    double wSnapSum = 0.0;
    /** wSnapSum / nUnits, refreshed at each exchange (costload's W_avg). */
    double wAvg = 0.0;
    /**
     * Per-unit local adjustments since the last exchange (tracking only
     * that unit's own forwarding decisions). Stored as one flat
     * nUnits x nUnits row-major array; rows are touched lazily — a
     * viewer that never forwarded since the last exchange has an
     * all-zero row, marked clean in deltaDirty so both the exchange
     * refill and addCostLoad() skip it entirely.
     */
    std::vector<double> wDelta;
    std::vector<std::uint8_t> deltaDirty;
    std::vector<UnitId> dirtyViewers;
    /**
     * Service-speed factor of each unit as of the last exchange (1.0
     * healthy, the straggler derating otherwise). costload divides W by
     * it, so a half-speed unit with the same queue looks twice as
     * loaded.
     */
    std::vector<double> speed;
    /** True while every sampled speed factor is exactly 1.0 (the
     *  common no-straggler case): lets costload skip the division. */
    bool speedsUniform = true;

    /** Most-idle units as of the last exchange (pruned-mode hint). */
    std::vector<UnitId> idleHint;

    // ---- Precomputed scoring tables (struct-of-arrays rows) ----
    /**
     * Eq. 2 stack-pair cost, row-major [cs * nStacks + s]: Dintra *
     * meanIntraHops on the diagonal, Dinter * mesh hops off it. Rows
     * are contiguous so the per-sample stack walk is a vectorizable
     * streaming add / min over nStacks doubles.
     */
    std::vector<double> stackPairCost;
    /** topo.stackOf(u) flattened for the final scoring pass. */
    std::vector<StackId> stackOfUnit;
    /**
     * forwardPenalty * distanceCost(creator, u) premultiplied,
     * row-major per creator (empty above fwdPenMaxUnits or when the
     * penalty is zero). The products use the identical operand pairs
     * as the on-the-fly computation, so both paths are bit-equal.
     */
    std::vector<double> fwdPen;
    static constexpr std::uint32_t fwdPenMaxUnits = 1024;

    // Scoring scratch (reused across calls; single-threaded simulator).
    std::vector<Addr> sampleScratch;
    std::vector<UnitId> prunedScratch;
    std::vector<double> stackBase;
    std::vector<double> stackMin;
    std::vector<double> unitBonus;
    std::vector<UnitId> bonusDirty;
    std::vector<double> unitScore;

    std::uint64_t nDecisions = 0;
    stats::Counter nExchanges;
};

} // namespace abndp

#endif // ABNDP_SCHED_SCHEDULER_HH
