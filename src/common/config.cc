#include "common/config.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace abndp
{

namespace
{

bool
isPow2(std::uint64_t x)
{
    return x != 0 && std::has_single_bit(x);
}

} // namespace

namespace
{

/** Shared geometry checks for the per-core SRAM caches. */
void
validateCacheGeometry(const CacheGeometry &geom, const char *name)
{
    if (geom.sizeBytes == 0 || !isPow2(geom.sizeBytes))
        fatal(name, " size (", geom.sizeBytes,
              " bytes) must be a nonzero power of two");
    if (geom.lineBytes == 0 || !isPow2(geom.lineBytes))
        fatal(name, " line size (", geom.lineBytes,
              " bytes) must be a nonzero power of two");
    if (geom.assoc == 0)
        fatal(name, " associativity must be nonzero");
    if (geom.numSets() == 0)
        fatal(name, " geometry degenerate: ", geom.sizeBytes, "B / ",
              geom.lineBytes, "B lines / ", geom.assoc,
              "-way leaves zero sets");
}

} // namespace

const char *
memBackendName(MemBackendKind k)
{
    switch (k) {
      case MemBackendKind::Meter: return "meter";
      case MemBackendKind::Ddr: return "ddr";
    }
    panic("unknown memory backend kind");
}

MemBackendKind
memBackendFromName(const std::string &name)
{
    if (name == "meter")
        return MemBackendKind::Meter;
    if (name == "ddr")
        return MemBackendKind::Ddr;
    fatal("unknown memory backend '", name, "' (valid: meter, ddr)");
}

const char *
pagePolicyName(PagePolicy p)
{
    switch (p) {
      case PagePolicy::Open: return "open";
      case PagePolicy::Close: return "close";
      case PagePolicy::Adaptive: return "adaptive";
    }
    panic("unknown page policy");
}

PagePolicy
pagePolicyFromName(const std::string &name)
{
    if (name == "open")
        return PagePolicy::Open;
    if (name == "close")
        return PagePolicy::Close;
    if (name == "adaptive")
        return PagePolicy::Adaptive;
    fatal("unknown page policy '", name,
          "' (valid: open, close, adaptive)");
}

const char *
dramAddrMapName(DramAddrMapKind k)
{
    switch (k) {
      case DramAddrMapKind::RowBankColumn: return "rbc";
      case DramAddrMapKind::RowColumnBank: return "rcb";
      case DramAddrMapKind::BankRowColumn: return "brc";
    }
    panic("unknown dram address map");
}

DramAddrMapKind
dramAddrMapFromName(const std::string &name)
{
    if (name == "rbc")
        return DramAddrMapKind::RowBankColumn;
    if (name == "rcb")
        return DramAddrMapKind::RowColumnBank;
    if (name == "brc")
        return DramAddrMapKind::BankRowColumn;
    fatal("unknown dram address map '", name, "' (valid: rbc, rcb, brc)");
}

void
SystemConfig::validate() const
{
    if (meshX == 0 || meshY == 0)
        fatal("mesh dimensions must be nonzero");
    if (unitsPerStack == 0 || coresPerUnit == 0)
        fatal("unitsPerStack and coresPerUnit must be nonzero (a system "
              "with zero NDP units cannot execute tasks)");
    if (!isPow2(memBytesPerUnit))
        fatal("memBytesPerUnit must be a power of two");
    validateCacheGeometry(l1d, "L1-D");
    validateCacheGeometry(l1i, "L1-I");
    if (traveller.style != CacheStyle::None) {
        if (!isPow2(traveller.ratioDenom))
            fatal("traveller ratio denominator must be a power of two");
        if (traveller.assoc == 0 || travellerSets() == 0)
            fatal("traveller cache geometry degenerate");
        if (traveller.campCount == 0)
            fatal("campCount must be >= 1 when the Traveller Cache is on");
        if (numUnits() % numGroups() != 0)
            fatal("numUnits (", numUnits(), ") must be divisible by the ",
                  "number of camp groups (", numGroups(), ")");
        if (traveller.bypassProb < 0.0 || traveller.bypassProb > 1.0)
            fatal("bypassProb must be within [0, 1]");
        if (traveller.tagCheckNs < 0.0 || traveller.sramDataNs < 0.0)
            fatal("traveller tagCheckNs and sramDataNs must be "
                  "non-negative");
    }
    if (pbHitNs < 0.0)
        fatal("pbHitNs must be non-negative, got ", pbHitNs);
    if (l1iMissNs < 0.0)
        fatal("l1iMissNs must be non-negative, got ", l1iMissNs);
    if (sched.prefetchWindow == 0)
        fatal("prefetchWindow must be nonzero");
    if (sched.schedulingWindow == 0)
        fatal("schedulingWindow must be nonzero");
    if (sched.stealBatch == 0 && sched.workStealing)
        fatal("stealBatch must be nonzero when work stealing is enabled");
    if (sched.exchangeIntervalCycles == 0)
        fatal("exchangeIntervalCycles must be nonzero (a zero-cycle "
              "exchange interval re-arms the snapshot chain every tick "
              "and livelocks the epoch)");
    if (sched.missPipelineDepth < 1 || sched.missPipelineDepth > 64)
        fatal("missPipelineDepth must be within [1, 64], got ",
              sched.missPipelineDepth);
    if (coreFreqGHz <= 0.0)
        fatal("coreFreqGHz must be positive");
    if (tlb.enabled) {
        if (tlb.pageBytes == 0 || !isPow2(tlb.pageBytes))
            fatal("TLB page size must be a nonzero power of two");
        if (tlb.assoc == 0 || tlb.entries == 0
            || tlb.entries % tlb.assoc != 0)
            fatal("TLB entries (", tlb.entries,
                  ") must be a nonzero multiple of the associativity (",
                  tlb.assoc, ")");
    }

    // ---- Fault injection (src/fault) ----
    const auto &st = fault.straggler;
    if (st.computeDerate <= 0.0 || st.computeDerate > 1.0)
        fatal("straggler computeDerate must be within (0, 1], got ",
              st.computeDerate, " (1.0 = full speed; use count=0 to "
              "disable straggler injection)");
    if (st.bandwidthDerate <= 0.0 || st.bandwidthDerate > 1.0)
        fatal("straggler bandwidthDerate must be within (0, 1], got ",
              st.bandwidthDerate);
    if (st.count > numUnits())
        fatal("straggler count (", st.count, ") exceeds the unit count (",
              numUnits(), ")");
    for (std::uint32_t u : st.units)
        if (u >= numUnits())
            fatal("straggler unit id ", u, " is out of range (system has ",
                  numUnits(), " units, ids 0..", numUnits() - 1, ")");
    if (st.windowEndNs < 0.0 || st.windowStartNs < 0.0)
        fatal("straggler window bounds must be non-negative");
    if (st.windowEndNs != 0.0 && st.windowEndNs <= st.windowStartNs)
        fatal("straggler window is empty: windowEndNs (", st.windowEndNs,
              ") must exceed windowStartNs (", st.windowStartNs,
              "), or be 0 for an always-on straggler");

    const auto &lf = fault.link;
    if (lf.dropProb < 0.0 || lf.dropProb >= 1.0)
        fatal("link dropProb must be within [0, 1), got ", lf.dropProb,
              " (a link dropping every packet never delivers)");
    if (lf.extraLatencyNs < 0.0 || lf.retryBackoffNs < 0.0)
        fatal("link extraLatencyNs and retryBackoffNs must be "
              "non-negative");
    if (lf.count > numStacks() * 4)
        fatal("faulty link count (", lf.count, ") exceeds the directed "
              "mesh link count (", numStacks() * 4, ")");
    for (std::uint32_t l : lf.links)
        if (l >= numStacks() * 4)
            fatal("faulty link index ", l, " is out of range (mesh has ",
                  numStacks() * 4, " directed links, stack*4+dir)");
    if (lf.enabled() && lf.dropProb > 0.0 && lf.maxRetries == 0)
        fatal("link maxRetries must be nonzero when dropProb > 0 "
              "(a dropped packet needs at least one retry to arrive)");

    // ---- Memory backend (src/mem) ----
    if (dram.banks == 0)
        fatal("dram banks must be nonzero");
    if (dram.rowBytes == 0)
        fatal("dram rowBytes must be nonzero");
    if (dram.busBits == 0)
        fatal("dram busBits must be nonzero");
    if (dram.busGHz <= 0.0)
        fatal("dram busGHz must be positive, got ", dram.busGHz);
    if (dram.tCasNs < 0.0 || dram.tRcdNs < 0.0 || dram.tRpNs < 0.0)
        fatal("dram tCAS/tRCD/tRP must be non-negative");
    if (dram.refreshEnabled) {
        if (dram.tRefiNs <= 0.0)
            fatal("dram tREFI must be positive when refresh is enabled, "
                  "got ", dram.tRefiNs);
        if (dram.tRfcNs < 0.0)
            fatal("dram tRFC must be non-negative, got ", dram.tRfcNs);
        if (dram.refreshCatchupMax == 0)
            fatal("dram refreshCatchupMax must be nonzero (a zero bound "
                  "never charges a lagging bank any refresh at all)");
    }
    if (dram.backend == MemBackendKind::Ddr) {
        if (!isPow2(dram.burstBytes))
            fatal("dram burstBytes must be a nonzero power of two, got ",
                  dram.burstBytes);
        if (dram.rowBytes % dram.burstBytes != 0)
            fatal("dram rowBytes (", dram.rowBytes, ") must be a "
                  "multiple of burstBytes (", dram.burstBytes, ")");
        if (dram.bankGroups == 0 || dram.banks % dram.bankGroups != 0)
            fatal("dram banks (", dram.banks, ") must be a nonzero "
                  "multiple of bankGroups (", dram.bankGroups, ")");
        if (dram.tRasNs < dram.tRcdNs)
            fatal("dram tRAS (", dram.tRasNs, "ns) must cover at least "
                  "tRCD (", dram.tRcdNs, "ns): the row must stay open "
                  "through its own column access");
        if (dram.tWrNs < 0.0 || dram.tFawNs < 0.0)
            fatal("dram tWR and tFAW must be non-negative");
        if (dram.addrMap == DramAddrMapKind::BankRowColumn
            && memBytesPerUnit % dram.banks != 0)
            fatal("the brc address map slices each unit's region evenly "
                  "across banks: memBytesPerUnit (", memBytesPerUnit,
                  ") must be a multiple of dram banks (", dram.banks,
                  ")");
    }

    if (!traceOut.empty() && traceBufferEvents == 0)
        fatal("traceBufferEvents must be nonzero when event tracing is "
              "enabled (--trace-out)");

    const auto &df = fault.dram;
    if (df.eccRetryProb < 0.0 || df.eccRetryProb >= 1.0)
        fatal("dram eccRetryProb must be within [0, 1), got ",
              df.eccRetryProb);
    if (df.eccRetryNs < 0.0)
        fatal("dram eccRetryNs must be non-negative");

    // ---- Online serving (src/serve) ----
    if (serving.enabled()) {
        if (serving.ratePerUs <= 0.0)
            fatal("serving ratePerUs must be positive, got ",
                  serving.ratePerUs,
                  " (an open-loop stream needs a nonzero arrival rate)");
        if (serving.burstFactor < 1.0)
            fatal("serving burstFactor must be >= 1, got ",
                  serving.burstFactor,
                  " (the burst phase cannot run below the mean rate)");
        if (serving.burstFraction < 0.0 || serving.burstFraction >= 1.0)
            fatal("serving burstFraction must be within [0, 1), got ",
                  serving.burstFraction);
        if (serving.profile == RateProfile::Bursty
            && serving.burstFactor * serving.burstFraction >= 1.0)
            fatal("serving burstFactor (", serving.burstFactor,
                  ") * burstFraction (", serving.burstFraction,
                  ") must stay below 1 so the off-phase rate that "
                  "preserves the mean remains positive");
        if (serving.burstPeriodUs <= 0.0)
            fatal("serving burstPeriodUs must be positive, got ",
                  serving.burstPeriodUs);
        if (serving.diurnalPeriodUs <= 0.0)
            fatal("serving diurnalPeriodUs must be positive, got ",
                  serving.diurnalPeriodUs);
        if (serving.diurnalDepth < 0.0 || serving.diurnalDepth >= 1.0)
            fatal("serving diurnalDepth must be within [0, 1), got ",
                  serving.diurnalDepth,
                  " (depth 1 would zero the trough rate and the "
                  "thinning sampler would stall)");
        if (serving.zipfS < 0.0)
            fatal("serving zipfS must be non-negative, got ",
                  serving.zipfS);
        if (serving.tenants == 0)
            fatal("serving tenants must be nonzero (every request "
                  "belongs to some tenant)");
        if (serving.tenants > 64)
            fatal("serving tenants must be at most 64, got ",
                  serving.tenants, " (per-tenant latency logs are "
                  "dense and tasks carry an 8-bit tenant id)");
        if (!serving.tenantWeights.empty()
            && serving.tenantWeights.size() != serving.tenants)
            fatal("serving tenantWeights has ",
                  serving.tenantWeights.size(), " entries but ",
                  serving.tenants, " tenants are configured (leave it "
                  "empty for equal shares)");
        for (double w : serving.tenantWeights)
            if (w <= 0.0)
                fatal("serving tenant weights must be positive, got ",
                      w);
        if (serving.sloNs <= 0.0)
            fatal("serving sloNs must be positive, got ", serving.sloNs);
    }

    // ---- Hierarchical load balancing (src/sched/lb) ----
    if (lb.enabled) {
        if (lb.intraTier == LbTierKind::None
            && lb.interTier == LbTierKind::None)
            fatal("lb enabled with both tiers set to none balances "
                  "nothing; disable it or pick a tier balancer");
        if (lb.hotK == 0)
            fatal("lb hotK must be nonzero (the hotness tracker needs "
                  "at least one counter slot per unit)");
        if (lb.decayShift > 63)
            fatal("lb decayShift must be at most 63, got ", lb.decayShift,
                  " (counters are 64-bit; larger shifts are undefined)");
        if (lb.chunkSize == 0
            && (lb.intraTier == LbTierKind::Stealing
                || lb.interTier == LbTierKind::Stealing))
            fatal("lb chunkSize must be nonzero when a stealing tier is "
                  "configured (a zero chunk sheds no tasks)");
        if ((lb.reserveFrac < 0.0 || lb.reserveFrac > 1.0)
            && (lb.intraTier == LbTierKind::Reserve
                || lb.interTier == LbTierKind::Reserve))
            fatal("lb reserveFrac must be within [0, 1], got ",
                  lb.reserveFrac);
    }
    if (lb.migration.enabled) {
        if (!lb.enabled)
            fatal("lb migration requires the load balancer itself: "
                  "re-homing decisions ride the exchange windows");
        if (lb.migration.threshold == 0)
            fatal("lb migration threshold must be nonzero (a zero "
                  "threshold re-homes every tracked block every "
                  "window)");
        if (lb.migration.maxPerExchange == 0)
            fatal("lb migration maxPerExchange must be nonzero (a zero "
                  "cap silently disables migration; disable it "
                  "explicitly instead)");
    }

    const auto &uf = fault.unitFailure;
    for (std::uint32_t u : uf.units)
        if (u >= numUnits())
            fatal("failed unit id ", u, " is out of range (system has ",
                  numUnits(), " units, ids 0..", numUnits() - 1, ")");
    if (uf.enabled()) {
        // Recovery re-homes dead ranges onto live buddies; killing the
        // whole machine leaves nowhere to recover to.
        std::uint32_t nFailed;
        if (!uf.units.empty()) {
            auto ids = uf.units;
            std::sort(ids.begin(), ids.end());
            ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
            nFailed = static_cast<std::uint32_t>(ids.size());
        } else {
            nFailed = uf.count;
        }
        if (nFailed >= numUnits())
            fatal("unit failures must leave at least one live unit (",
                  nFailed, " failures configured for ", numUnits(),
                  " units)");
        if (uf.failAtNs < 0.0 || uf.recoverAtNs < 0.0)
            fatal("unit-failure failAtNs and recoverAtNs must be "
                  "non-negative");
        if (uf.recoverAtNs != 0.0 && uf.recoverAtNs <= uf.failAtNs)
            fatal("unit-failure recoverAtNs (", uf.recoverAtNs,
                  ") must exceed failAtNs (", uf.failAtNs,
                  "), or be 0 for a permanent kill");
        if (uf.ackTimeoutNs <= 0.0)
            fatal("unit-failure ackTimeoutNs must be positive (a zero "
                  "timeout redispatches every send instantly)");
        if (uf.redispatchBackoffNs < 0.0)
            fatal("unit-failure redispatchBackoffNs must be "
                  "non-negative");
        if (uf.maxRedispatch == 0)
            fatal("unit-failure maxRedispatch must be nonzero (an "
                  "undeliverable task needs at least one redispatch "
                  "to reach a live unit)");
    }
}

void
SystemConfig::print(std::ostream &os) const
{
    os << "NDP system      : " << meshX << "x" << meshY
       << " stacks in mesh, " << unitsPerStack << " NDP units per stack; "
       << (totalMemBytes() >> 30) << "GB in total, "
       << (memBytesPerUnit >> 20) << "MB per unit\n";
    os << "NDP core        : " << coreFreqGHz << "GHz, " << coresPerUnit
       << " cores per NDP unit (" << numCores() << " in total)\n";
    os << "L1-D cache      : " << (l1d.sizeBytes >> 10) << "kB, "
       << l1d.assoc << "-way, " << l1d.lineBytes << "B cachelines, LRU\n";
    os << "L1-I cache      : " << (l1i.sizeBytes >> 10) << "kB, "
       << l1i.assoc << "-way, " << l1i.lineBytes << "B cachelines, LRU\n";
    os << "Prefetch buffer : " << (prefetchBufBytes >> 10) << "kB, "
       << cachelineBytes << "B blocks, FIFO\n";
    os << "DRAM channel    : " << dram.busBits << " bits; tCAS=tRCD=tRP="
       << dram.tCasNs << "ns; " << dram.pjPerBitRw << "pJ/bit RD/WR, "
       << dram.pjActPre << "pJ ACT/PRE\n";
    os << "Memory backend  : " << memBackendName(dram.backend);
    if (dram.backend == MemBackendKind::Ddr)
        os << " (" << pagePolicyName(dram.pagePolicy) << " page, "
           << dramAddrMapName(dram.addrMap) << " map, " << dram.banks
           << " banks / " << dram.bankGroups << " groups; tRAS="
           << dram.tRasNs << "ns, tWR=" << dram.tWrNs << "ns, tFAW="
           << dram.tFawNs << "ns)";
    os << "\n";
    os << "Intra-stack net : " << net.intraLinkBits << "-bit link; "
       << net.intraHopNs << "ns/hop; " << net.intraPjPerBit << "pJ/bit\n";
    os << "Inter-stack net : " << net.interGBs << "GB/s per direction; "
       << net.interHopNs << "ns/hop; " << net.interPjPerBit << "pJ/bit\n";
    if (traveller.style != CacheStyle::None) {
        os << "Traveller Cache : 1/R=1/" << traveller.ratioDenom
           << " of local mem. capacity, " << traveller.assoc << "-way; C="
           << traveller.campCount << " camp loc.; "
           << (traveller.repl == ReplPolicy::Random ? "random" : "LRU")
           << " repl., " << static_cast<int>(traveller.bypassProb * 100)
           << "% bypass\n";
    } else {
        os << "Traveller Cache : disabled\n";
    }
    os << "Scheduler       : " << sched.exchangeIntervalCycles
       << "-cycle workload exchange interval; hybrid scheduling weight B="
       << sched.hybridAlpha << "*Dinter\n";
    if (lb.enabled) {
        os << "Hierarchical LB : intra=" << lbTierName(lb.intraTier)
           << ", inter=" << lbTierName(lb.interTier) << "; hotK="
           << lb.hotK << ", decay>>" << lb.decayShift;
        if (lb.migration.enabled)
            os << "; migration (threshold=" << lb.migration.threshold
               << ", cooldown=" << lb.migration.cooldownWindows
               << " windows, max " << lb.migration.maxPerExchange
               << "/exchange)";
        os << "\n";
    }
    if (fault.anyInjector()) {
        os << "Fault injection :";
        if (fault.straggler.enabled())
            os << " stragglers="
               << (fault.straggler.units.empty()
                       ? fault.straggler.count
                       : static_cast<std::uint32_t>(
                             fault.straggler.units.size()))
               << " (compute x" << fault.straggler.computeDerate
               << ", bandwidth x" << fault.straggler.bandwidthDerate
               << ");";
        if (fault.link.enabled())
            os << " faulty links="
               << (fault.link.links.empty()
                       ? fault.link.count
                       : static_cast<std::uint32_t>(
                             fault.link.links.size()))
               << " (drop " << fault.link.dropProb << ", +"
               << fault.link.extraLatencyNs << "ns);";
        if (fault.dram.enabled())
            os << " dram ECC retry p=" << fault.dram.eccRetryProb << " (+"
               << fault.dram.eccRetryNs << "ns);";
        if (fault.unitFailure.enabled())
            os << " failed units="
               << (fault.unitFailure.units.empty()
                       ? fault.unitFailure.count
                       : static_cast<std::uint32_t>(
                             fault.unitFailure.units.size()))
               << " (fail@" << fault.unitFailure.failAtNs << "ns, "
               << (fault.unitFailure.recoverAtNs == 0.0
                       ? std::string("permanent")
                       : std::string("recover@")
                             + std::to_string(
                                   fault.unitFailure.recoverAtNs)
                             + "ns")
               << ");";
        os << "\n";
    }
}

const char *
designName(Design d)
{
    switch (d) {
      case Design::H: return "H";
      case Design::B: return "B";
      case Design::Sm: return "Sm";
      case Design::Sl: return "Sl";
      case Design::Sh: return "Sh";
      case Design::C: return "C";
      case Design::O: return "O";
      case Design::Hlb: return "HLB";
      case Design::HlbM: return "HLB-mig";
    }
    panic("unknown design");
}

namespace
{

/**
 * Declarative Table-2 composition (extended): each design is a
 * (scheduling policy, work stealing, cache layer, hierarchical lb,
 * migration) tuple. H keeps the defaults; the NDP fields are ignored
 * by the host model anyway.
 */
struct DesignComposition
{
    Design design;
    SchedPolicy policy;
    bool workStealing;
    CacheStyle cache;
    bool lb;
    bool migrate;
};

constexpr DesignComposition designTable[] = {
    {Design::H, SchedPolicy::Colocate, false, CacheStyle::None,
     false, false},
    {Design::B, SchedPolicy::Colocate, false, CacheStyle::None,
     false, false},
    {Design::Sm, SchedPolicy::LowestDistance, false, CacheStyle::None,
     false, false},
    {Design::Sl, SchedPolicy::LowestDistance, true, CacheStyle::None,
     false, false},
    {Design::Sh, SchedPolicy::Hybrid, false, CacheStyle::None,
     false, false},
    {Design::C, SchedPolicy::LowestDistance, false,
     CacheStyle::TravellerSramTags, false, false},
    {Design::O, SchedPolicy::Hybrid, false,
     CacheStyle::TravellerSramTags, false, false},
    {Design::Hlb, SchedPolicy::Hybrid, false,
     CacheStyle::TravellerSramTags, true, false},
    {Design::HlbM, SchedPolicy::Hybrid, false,
     CacheStyle::TravellerSramTags, true, true},
};

} // namespace

SystemConfig
applyDesign(SystemConfig base, Design d)
{
    for (const DesignComposition &row : designTable) {
        if (row.design != d)
            continue;
        base.sched.policy = row.policy;
        base.sched.policyName.clear();
        base.sched.workStealing = row.workStealing;
        base.traveller.style = row.cache;
        base.lb.enabled = row.lb;
        base.lb.migration.enabled = row.lb && row.migrate;
        if (base.sched.autoAlpha)
            base.sched.hybridAlpha = base.meshDiameter() / 2.0;
        return base;
    }
    panic("unknown design");
}

} // namespace abndp
