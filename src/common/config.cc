#include "common/config.hh"

#include <bit>

#include "common/logging.hh"

namespace abndp
{

namespace
{

bool
isPow2(std::uint64_t x)
{
    return x != 0 && std::has_single_bit(x);
}

} // namespace

void
SystemConfig::validate() const
{
    if (meshX == 0 || meshY == 0)
        fatal("mesh dimensions must be nonzero");
    if (unitsPerStack == 0 || coresPerUnit == 0)
        fatal("unitsPerStack and coresPerUnit must be nonzero");
    if (!isPow2(memBytesPerUnit))
        fatal("memBytesPerUnit must be a power of two");
    if (!isPow2(l1d.sizeBytes) || !isPow2(l1i.sizeBytes))
        fatal("L1 cache sizes must be powers of two");
    if (traveller.style != CacheStyle::None) {
        if (!isPow2(traveller.ratioDenom))
            fatal("traveller ratio denominator must be a power of two");
        if (traveller.assoc == 0 || travellerSets() == 0)
            fatal("traveller cache geometry degenerate");
        if (traveller.campCount == 0)
            fatal("campCount must be >= 1 when the Traveller Cache is on");
        if (numUnits() % numGroups() != 0)
            fatal("numUnits (", numUnits(), ") must be divisible by the ",
                  "number of camp groups (", numGroups(), ")");
        if (traveller.bypassProb < 0.0 || traveller.bypassProb > 1.0)
            fatal("bypassProb must be within [0, 1]");
    }
    if (sched.prefetchWindow == 0)
        fatal("prefetchWindow must be nonzero");
    if (coreFreqGHz <= 0.0)
        fatal("coreFreqGHz must be positive");
}

void
SystemConfig::print(std::ostream &os) const
{
    os << "NDP system      : " << meshX << "x" << meshY
       << " stacks in mesh, " << unitsPerStack << " NDP units per stack; "
       << (totalMemBytes() >> 30) << "GB in total, "
       << (memBytesPerUnit >> 20) << "MB per unit\n";
    os << "NDP core        : " << coreFreqGHz << "GHz, " << coresPerUnit
       << " cores per NDP unit (" << numCores() << " in total)\n";
    os << "L1-D cache      : " << (l1d.sizeBytes >> 10) << "kB, "
       << l1d.assoc << "-way, " << l1d.lineBytes << "B cachelines, LRU\n";
    os << "L1-I cache      : " << (l1i.sizeBytes >> 10) << "kB, "
       << l1i.assoc << "-way, " << l1i.lineBytes << "B cachelines, LRU\n";
    os << "Prefetch buffer : " << (prefetchBufBytes >> 10) << "kB, "
       << cachelineBytes << "B blocks, FIFO\n";
    os << "DRAM channel    : " << dram.busBits << " bits; tCAS=tRCD=tRP="
       << dram.tCasNs << "ns; " << dram.pjPerBitRw << "pJ/bit RD/WR, "
       << dram.pjActPre << "pJ ACT/PRE\n";
    os << "Intra-stack net : " << net.intraLinkBits << "-bit link; "
       << net.intraHopNs << "ns/hop; " << net.intraPjPerBit << "pJ/bit\n";
    os << "Inter-stack net : " << net.interGBs << "GB/s per direction; "
       << net.interHopNs << "ns/hop; " << net.interPjPerBit << "pJ/bit\n";
    if (traveller.style != CacheStyle::None) {
        os << "Traveller Cache : 1/R=1/" << traveller.ratioDenom
           << " of local mem. capacity, " << traveller.assoc << "-way; C="
           << traveller.campCount << " camp loc.; "
           << (traveller.repl == ReplPolicy::Random ? "random" : "LRU")
           << " repl., " << static_cast<int>(traveller.bypassProb * 100)
           << "% bypass\n";
    } else {
        os << "Traveller Cache : disabled\n";
    }
    os << "Scheduler       : " << sched.exchangeIntervalCycles
       << "-cycle workload exchange interval; hybrid scheduling weight B="
       << sched.hybridAlpha << "*Dinter\n";
}

const char *
designName(Design d)
{
    switch (d) {
      case Design::H: return "H";
      case Design::B: return "B";
      case Design::Sm: return "Sm";
      case Design::Sl: return "Sl";
      case Design::Sh: return "Sh";
      case Design::C: return "C";
      case Design::O: return "O";
    }
    panic("unknown design");
}

SystemConfig
applyDesign(SystemConfig base, Design d)
{
    base.traveller.style = CacheStyle::None;
    base.sched.workStealing = false;
    switch (d) {
      case Design::H:
        // Host-only; the NDP fields are ignored by the host model.
        break;
      case Design::B:
        base.sched.policy = SchedPolicy::Colocate;
        break;
      case Design::Sm:
        base.sched.policy = SchedPolicy::LowestDistance;
        break;
      case Design::Sl:
        base.sched.policy = SchedPolicy::LowestDistance;
        base.sched.workStealing = true;
        break;
      case Design::Sh:
        base.sched.policy = SchedPolicy::Hybrid;
        break;
      case Design::C:
        base.sched.policy = SchedPolicy::LowestDistance;
        base.traveller.style = CacheStyle::TravellerSramTags;
        break;
      case Design::O:
        base.sched.policy = SchedPolicy::Hybrid;
        base.traveller.style = CacheStyle::TravellerSramTags;
        break;
    }
    if (base.sched.autoAlpha)
        base.sched.hybridAlpha = base.meshDiameter() / 2.0;
    return base;
}

} // namespace abndp
