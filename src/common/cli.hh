/**
 * @file
 * Minimal command-line flag parser used by the benchmark and example
 * binaries. Supports "--name=value" and "--name value" forms.
 */

#ifndef ABNDP_COMMON_CLI_HH
#define ABNDP_COMMON_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace abndp
{

/** Parsed command-line flags with typed, defaulted accessors. */
class CliFlags
{
  public:
    CliFlags() = default;
    CliFlags(int argc, char **argv) { parse(argc, argv); }

    /** Parse argv; unknown flags are collected, positionals kept aside. */
    void parse(int argc, char **argv);

    bool has(const std::string &name) const;

    std::string getString(const std::string &name,
                          const std::string &defval) const;
    std::int64_t getInt(const std::string &name, std::int64_t defval) const;
    std::uint64_t getUint(const std::string &name,
                          std::uint64_t defval) const;
    double getDouble(const std::string &name, double defval) const;
    bool getBool(const std::string &name, bool defval) const;

    const std::vector<std::string> &positional() const { return args; }

  private:
    std::map<std::string, std::string> flags;
    std::vector<std::string> args;
};

/**
 * Insert @p tag into @p path before its extension — "out/trace.json"
 * with tag "pr.O" becomes "out/trace.pr.O.json". Paths without an
 * extension get ".tag" appended. Used by the multi-run front ends to
 * derive per-design output files from one --trace-out/--stats-out flag.
 */
std::string tagPath(const std::string &path, const std::string &tag);

} // namespace abndp

#endif // ABNDP_COMMON_CLI_HH
