/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * Every stochastic decision in the system (probabilistic cache insertion,
 * random replacement, workload synthesis) draws from seeded Rng instances
 * so that a given configuration reproduces bit-identical results.
 */

#ifndef ABNDP_COMMON_RNG_HH
#define ABNDP_COMMON_RNG_HH

#include <cstdint>

namespace abndp
{

/** SplitMix64 finalizer; also used as a general 64-bit mixing hash. */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * xoshiro256** generator. Small, fast, and high quality; seeded via
 * SplitMix64 per Blackman/Vigna's recommendation.
 */
class Rng
{
  public:
    /** Default seed shared by all ABNDP components unless overridden. */
    static constexpr std::uint64_t defaultSeed = 0xab9dbf5eed2023ULL;

    explicit Rng(std::uint64_t seed = defaultSeed) { reseed(seed); }

    /** Re-initialize the full state from a 64-bit seed. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t x = seed;
        for (auto &word : state) {
            x += 0x9e3779b97f4a7c15ULL;
            word = mix64(x);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless bounded generation (biased by at
        // most 2^-64, fine for simulation purposes).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Bernoulli trial with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Standard normal via Box-Muller (one value per call). */
    double gaussian();

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace abndp

#endif // ABNDP_COMMON_RNG_HH
