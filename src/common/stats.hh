/**
 * @file
 * Lightweight statistics framework in the spirit of gem5's Stats package.
 *
 * Components own named counters/scalars/distributions, register them in a
 * StatGroup, and the experiment driver snapshots or prints the full tree.
 */

#ifndef ABNDP_COMMON_STATS_HH
#define ABNDP_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace abndp
{
namespace stats
{

/** Monotonically increasing event counter. */
class Counter
{
  public:
    Counter &operator++() { ++count; return *this; }
    Counter &operator+=(std::uint64_t n) { count += n; return *this; }
    void reset() { count = 0; }
    std::uint64_t value() const { return count; }

  private:
    std::uint64_t count = 0;
};

/** Arbitrary floating-point accumulator (e.g., picojoules). */
class Scalar
{
  public:
    Scalar &operator+=(double v) { total += v; return *this; }
    void set(double v) { total = v; }
    void reset() { total = 0.0; }
    double value() const { return total; }

  private:
    double total = 0.0;
};

/** Running min/max/mean/stddev over observed samples. */
class Distribution
{
  public:
    void
    sample(double v)
    {
        ++n;
        sum += v;
        sumSq += v * v;
        if (v < minV || n == 1)
            minV = v;
        if (v > maxV || n == 1)
            maxV = v;
    }

    void
    reset()
    {
        n = 0;
        sum = sumSq = 0.0;
        minV = maxV = 0.0;
    }

    std::uint64_t samples() const { return n; }
    double mean() const { return n ? sum / n : 0.0; }
    double total() const { return sum; }
    double min() const { return minV; }
    double max() const { return maxV; }
    double variance() const;
    double stddev() const;

  private:
    std::uint64_t n = 0;
    double sum = 0.0;
    double sumSq = 0.0;
    double minV = 0.0;
    double maxV = 0.0;
};

/** Fixed-bucket histogram over [lo, hi) with overflow/underflow bins. */
class Histogram
{
  public:
    Histogram() = default;

    Histogram(double lo_, double hi_, std::size_t buckets)
    {
        init(lo_, hi_, buckets);
    }

    void
    init(double lo_, double hi_, std::size_t buckets)
    {
        abndp_assert(hi_ > lo_ && buckets > 0);
        lo = lo_;
        hi = hi_;
        bins.assign(buckets, 0);
        under = over = 0;
    }

    void
    sample(double v)
    {
        abndp_assert(!bins.empty(), "histogram not initialized");
        if (v < lo) {
            ++under;
        } else if (v >= hi) {
            ++over;
        } else {
            auto idx = static_cast<std::size_t>(
                (v - lo) / (hi - lo) * bins.size());
            if (idx >= bins.size())
                idx = bins.size() - 1;
            ++bins[idx];
        }
    }

    const std::vector<std::uint64_t> &buckets() const { return bins; }
    std::uint64_t underflow() const { return under; }
    std::uint64_t overflow() const { return over; }

  private:
    double lo = 0.0;
    double hi = 1.0;
    std::vector<std::uint64_t> bins;
    std::uint64_t under = 0;
    std::uint64_t over = 0;
};

/**
 * A named, hierarchical group of statistics. Children register themselves
 * by name; dump() prints the tree as "group.sub.stat value" lines.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name_) : _name(std::move(name_)) {}

    const std::string &name() const { return _name; }

    void addCounter(const std::string &n, const Counter *c);
    void addScalar(const std::string &n, const Scalar *s);
    void addDistribution(const std::string &n, const Distribution *d);
    void addChild(const StatGroup *g);

    /** Print all stats in this group and its children. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

  private:
    std::string _name;
    std::map<std::string, const Counter *> counters;
    std::map<std::string, const Scalar *> scalars;
    std::map<std::string, const Distribution *> distributions;
    std::vector<const StatGroup *> children;
};

} // namespace stats
} // namespace abndp

#endif // ABNDP_COMMON_STATS_HH
