#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace abndp
{

TextTable::TextTable(std::vector<std::string> header)
{
    rows.push_back(std::move(header));
}

void
TextTable::addRow(std::vector<std::string> row)
{
    abndp_assert(row.size() == rows.front().size(),
                 "row width mismatch: ", row.size(), " vs ",
                 rows.front().size());
    rows.push_back(std::move(row));
}

std::string
TextTable::fmt(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

std::string
TextTable::fmt(std::uint64_t v)
{
    return std::to_string(v);
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(rows.front().size(), 0);
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto printRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "| " : " | ")
               << std::setw(static_cast<int>(widths[c])) << std::left
               << row[c];
        }
        os << " |\n";
    };

    auto printSep = [&]() {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            os << (c == 0 ? "|-" : "-|-");
            os << std::string(widths[c], '-');
        }
        os << "-|\n";
    };

    printRow(rows.front());
    printSep();
    for (std::size_t r = 1; r < rows.size(); ++r)
        printRow(rows[r]);
}

} // namespace abndp
