/**
 * @file
 * Capped exponential backoff, shared by every retry mechanism in the
 * simulator: faulty-link retransmission timeouts (LinkFaultConfig) and
 * the unit-failure task-redispatch timer (UnitFailureConfig) compute
 * their waits through this one helper, so the two state machines stay
 * bit-identical in their arithmetic and are tested in one place
 * (tests/test_backoff.cc).
 */

#ifndef ABNDP_COMMON_BACKOFF_HH
#define ABNDP_COMMON_BACKOFF_HH

#include <cstdint>

#include "common/types.hh"

namespace abndp
{

/**
 * Backoff before retry @p attempt (0-based): @p base doubled per
 * attempt, with the shift saturated at @p shiftCap so huge attempt
 * counts cannot overflow the 64-bit tick arithmetic. attempt 0 waits
 * @p base, attempt 1 waits 2x @p base, and so on.
 */
constexpr Tick
cappedExpBackoff(Tick base, std::uint32_t attempt,
                 std::uint32_t shiftCap = 16)
{
    return base << (attempt < shiftCap ? attempt : shiftCap);
}

} // namespace abndp

#endif // ABNDP_COMMON_BACKOFF_HH
