/**
 * @file
 * gem5-style status and error reporting: panic/fatal/warn/inform.
 *
 * panic() is for internal invariant violations (simulator bugs) and
 * aborts; fatal() is for user/configuration errors and exits cleanly.
 */

#ifndef ABNDP_COMMON_LOGGING_HH
#define ABNDP_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace abndp
{

namespace logging_detail
{

/** Concatenate a heterogeneous argument pack into one string. */
template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace logging_detail

/** Abort on an internal simulator invariant violation. */
template <typename... Args>
[[noreturn]] void
panic(Args&&... args)
{
    logging_detail::panicImpl("", 0,
        logging_detail::concat(std::forward<Args>(args)...));
}

/** Exit on an unrecoverable user/configuration error. */
template <typename... Args>
[[noreturn]] void
fatal(Args&&... args)
{
    logging_detail::fatalImpl("", 0,
        logging_detail::concat(std::forward<Args>(args)...));
}

/** Warn about suspicious but non-fatal conditions. */
template <typename... Args>
void
warn(Args&&... args)
{
    logging_detail::warnImpl(
        logging_detail::concat(std::forward<Args>(args)...));
}

/** Informational status message. */
template <typename... Args>
void
inform(Args&&... args)
{
    logging_detail::informImpl(
        logging_detail::concat(std::forward<Args>(args)...));
}

/**
 * Internal assertion that reports through panic(). Enabled in all build
 * types: simulation correctness matters more than the cycle cost.
 */
#define abndp_assert(cond, ...)                                            \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::abndp::panic("assertion failed: " #cond " at ", __FILE__,    \
                           ":", __LINE__, " ", ##__VA_ARGS__);             \
        }                                                                  \
    } while (0)

} // namespace abndp

#endif // ABNDP_COMMON_LOGGING_HH
