/**
 * @file
 * Fundamental type aliases and global constants used across ABNDP.
 */

#ifndef ABNDP_COMMON_TYPES_HH
#define ABNDP_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace abndp
{

/** Simulated physical address (byte granularity). */
using Addr = std::uint64_t;

/**
 * Simulation time in ticks. One tick is one picosecond, so that both the
 * 2 GHz NDP cores (500 ticks/cycle) and the nanosecond-scale interconnect
 * and DRAM latencies of Table 1 can be represented exactly.
 */
using Tick = std::uint64_t;

/** Core clock cycles (frequency-dependent; see SystemConfig). */
using Cycles = std::uint64_t;

/** Global NDP unit identifier, 0 .. numUnits-1. */
using UnitId = std::uint32_t;

/** Memory stack identifier within the inter-stack mesh. */
using StackId = std::uint32_t;

/** Camp-location group identifier, 0 .. numGroups-1. */
using GroupId = std::uint32_t;

/** Ticks per nanosecond (tick = 1 ps). */
constexpr Tick ticksPerNs = 1000;

/** Cache line size used throughout the system (Table 1). */
constexpr std::uint32_t cachelineBytes = 64;

/** log2 of the cache line size. */
constexpr std::uint32_t cachelineBits = 6;

/** Sentinel for an invalid/unassigned unit. */
constexpr UnitId invalidUnit = std::numeric_limits<UnitId>::max();

/** Sentinel for an invalid address. */
constexpr Addr invalidAddr = std::numeric_limits<Addr>::max();

/** Sentinel tick "never". */
constexpr Tick tickNever = std::numeric_limits<Tick>::max();

/** Convert a byte address to its cache-block number. */
constexpr Addr
blockNumber(Addr addr)
{
    return addr >> cachelineBits;
}

/** Align a byte address down to its cache-block base. */
constexpr Addr
blockAlign(Addr addr)
{
    return addr & ~static_cast<Addr>(cachelineBytes - 1);
}

} // namespace abndp

#endif // ABNDP_COMMON_TYPES_HH
