/**
 * @file
 * System configuration: every knob from Table 1 (system configurations)
 * and Table 2 (evaluated designs) of the ABNDP paper, with the paper's
 * defaults, plus derived quantities used throughout the simulator.
 */

#ifndef ABNDP_COMMON_CONFIG_HH
#define ABNDP_COMMON_CONFIG_HH

#include <cstdint>
#include <ostream>
#include <string>

#include "common/types.hh"
#include "fault/fault_config.hh"
#include "sched/lb/lb_config.hh"
#include "serve/serving_config.hh"

namespace abndp
{

/** Task scheduling policies (paper Sections 2.3 and 5, Table 2). */
enum class SchedPolicy
{
    /** Co-locate each task with its main (first hint) data element: B. */
    Colocate,
    /** Lowest total distance over all hint addresses: Sm / C. */
    LowestDistance,
    /** Hybrid score costmem + B * costload: Sh / O. */
    Hybrid,
};

/** Data-cache styles evaluated in Figure 13. */
enum class CacheStyle
{
    /** No remote-data cache at all (B, Sm, Sl, Sh). */
    None,
    /** Traveller Cache: DRAM data, SRAM tags (ABNDP). */
    TravellerSramTags,
    /** Pure on-chip SRAM data cache (impractical area). */
    SramData,
    /** DRAM data cache with tags co-located in DRAM. */
    DramTags,
};

/** Replacement policies for the generic set-associative cache. */
enum class ReplPolicy
{
    Lru,
    Random,
    Fifo,
};

/** Geometry of a set-associative SRAM cache. */
struct CacheGeometry
{
    std::uint64_t sizeBytes = 0;
    std::uint32_t assoc = 1;
    std::uint32_t lineBytes = cachelineBytes;
    ReplPolicy repl = ReplPolicy::Lru;
    /**
     * Hash the set index (data caches: the range-partitioned simulated
     * address space aliases pathologically under low-bit indexing).
     * Sequential-access caches (L1-I) keep low-bit indexing so
     * consecutive blocks never conflict.
     */
    bool hashedIndex = true;

    std::uint64_t numSets() const { return sizeBytes / lineBytes / assoc; }
};

/** Per-core TLB parameters (Section 3.2: local TLBs per core). */
struct TlbConfig
{
    /** Total entries (organized set-associatively). */
    std::uint32_t entries = 64;
    std::uint32_t assoc = 4;
    std::uint32_t pageBytes = 4096;
    /** Page-walk latency on a miss (walker hits cached page tables). */
    double missNs = 50.0;
    bool enabled = true;
};

/**
 * Memory timing backends behind the MemBackend seam (src/mem).
 * Meter is the fast bucketed-backfill default (bit-identical to the
 * historical DramChannel); Ddr adds a per-bank state machine with
 * page-policy, tRAS/tWR recovery and tFAW ACT-window tracking.
 */
enum class MemBackendKind
{
    Meter,
    Ddr,
};

/** DDR page-management policies (DdrBackend only). */
enum class PagePolicy
{
    /** Leave the row open after every access (row-hit friendly). */
    Open,
    /** Auto-precharge after every access (conflict friendly). */
    Close,
    /** Per-bank saturating hit history picks open vs close. */
    Adaptive,
};

/**
 * Channel address-interleave orders (DdrBackend only), low bits first.
 * The names list the fields from most- to least-significant, in the
 * style of M2NDP's memory_decode split.
 */
enum class DramAddrMapKind
{
    /** row : bank : column — consecutive rows rotate across banks
     *  (matches the historical meter decode; preserves row locality). */
    RowBankColumn,
    /** row : column : bank — consecutive bursts rotate across banks
     *  (maximum bank parallelism, minimum row locality). */
    RowColumnBank,
    /** bank : row : column — each bank owns one contiguous slice of
     *  the unit's region (bank conflicts follow the data layout). */
    BankRowColumn,
};

/** Display name of a backend kind ("meter" / "ddr"). */
const char *memBackendName(MemBackendKind k);
/** Parse a backend name; fatal() on anything unknown. */
MemBackendKind memBackendFromName(const std::string &name);
/** Display name of a page policy ("open" / "close" / "adaptive"). */
const char *pagePolicyName(PagePolicy p);
/** Parse a page-policy name; fatal() on anything unknown. */
PagePolicy pagePolicyFromName(const std::string &name);
/** Display name of an address-map order ("rbc" / "rcb" / "brc"). */
const char *dramAddrMapName(DramAddrMapKind k);
/** Parse an address-map name; fatal() on anything unknown. */
DramAddrMapKind dramAddrMapFromName(const std::string &name);

/** DRAM channel timing/energy parameters (Table 1, HBM-like). */
struct DramConfig
{
    /** Timing backend every access of this channel flows through. */
    MemBackendKind backend = MemBackendKind::Meter;
    /** Channel data-bus width in bits. */
    std::uint32_t busBits = 128;
    /** Number of independent banks per channel. */
    std::uint32_t banks = 8;
    /** Row-buffer (page) size in bytes. */
    std::uint32_t rowBytes = 2048;
    /** Column access latency. */
    double tCasNs = 17.0;
    /** Row-to-column delay. */
    double tRcdNs = 17.0;
    /** Precharge latency. */
    double tRpNs = 17.0;
    /** Data-bus clock in GHz (DDR: 2 transfers/cycle). */
    double busGHz = 1.0;
    /** Read/write access energy per bit. */
    double pjPerBitRw = 5.0;
    /** Activate+precharge energy per row operation. */
    double pjActPre = 535.8;
    /** All-bank refresh interval (per-bank staggered). */
    double tRefiNs = 3900.0;
    /** Refresh cycle time (bank unavailable). */
    double tRfcNs = 260.0;
    /** Model refresh interference. */
    bool refreshEnabled = true;
    /**
     * Refreshes accounted per access when a bank's schedule lags the
     * access tick (lazy catch-up bound; the rest hides in idle time).
     */
    std::uint32_t refreshCatchupMax = 4;

    // ---- DdrBackend-only knobs (ignored by the meter backend) ----
    /** Page-management policy. */
    PagePolicy pagePolicy = PagePolicy::Open;
    /** Address-interleave order across banks/rows/columns. */
    DramAddrMapKind addrMap = DramAddrMapKind::RowBankColumn;
    /** Bank groups per channel (banks are dealt round-robin across
     *  groups; must divide @ref banks). */
    std::uint32_t bankGroups = 4;
    /** Burst (minimum transfer) granularity in bytes; the
     *  RowColumnBank order interleaves banks at this stride. */
    std::uint32_t burstBytes = 64;
    /** Minimum ACT-to-PRE interval (row must stay open this long). */
    double tRasNs = 34.0;
    /** Write recovery: burst end to PRE on the same bank. */
    double tWrNs = 15.0;
    /** Four-activate window: at most 4 ACTs per channel per tFAW. */
    double tFawNs = 30.0;

    /** HBM-like channel (Table 1 default). */
    static DramConfig hbm() { return {}; }

    /**
     * HMC-like vault: narrower, faster bus and smaller rows. The paper
     * notes the design works with either organization.
     */
    static DramConfig
    hmc()
    {
        DramConfig cfg;
        cfg.busBits = 32;
        cfg.busGHz = 2.5;
        cfg.rowBytes = 256;
        cfg.tCasNs = 13.75;
        cfg.tRcdNs = 13.75;
        cfg.tRpNs = 13.75;
        cfg.banks = 16;
        cfg.bankGroups = 4;
        cfg.tRasNs = 27.5;
        cfg.tWrNs = 11.0;
        cfg.tFawNs = 20.0;
        return cfg;
    }
};

/** Intra-stack NoC organizations (the paper defaults to a crossbar). */
enum class IntraTopology
{
    /** Single-hop crossbar: constant Dintra (Table 1). */
    Crossbar,
    /** Bidirectional ring: Dintra scales with ring distance. */
    Ring,
};

/** Interconnect parameters (Table 1). */
struct NetConfig
{
    IntraTopology intraTopology = IntraTopology::Crossbar;
    /** Intra-stack hop latency (crossbar traversal or one ring hop). */
    double intraHopNs = 1.5;
    /** Intra-stack energy per bit. */
    double intraPjPerBit = 0.4;
    /** Intra-stack link width in bits. */
    std::uint32_t intraLinkBits = 128;
    /** Intra-stack link clock GHz (serialization). */
    double intraGHz = 1.0;
    /** Inter-stack per-hop latency. */
    double interHopNs = 10.0;
    /** Inter-stack energy per bit per hop. */
    double interPjPerBit = 4.0;
    /** Inter-stack link bandwidth per direction, GB/s. */
    double interGBs = 32.0;
};

/** Traveller Cache configuration (paper Section 4, Table 1). */
struct TravellerConfig
{
    CacheStyle style = CacheStyle::None;
    /** Fraction 1/R of local memory used as cache space (R = ratioDenom). */
    std::uint64_t ratioDenom = 64;
    /** Set associativity of the DRAM cache. */
    std::uint32_t assoc = 4;
    /** Number of camp locations C per block (groups = C + 1). */
    std::uint32_t campCount = 3;
    /** Probability that an insertion bypasses the cache. */
    double bypassProb = 0.4;
    /** Skewed per-group unit mapping (vs identical; Figure 11). */
    bool skewedMapping = true;
    /** Replacement policy within a set. */
    ReplPolicy repl = ReplPolicy::Random;
    /** SRAM tag-check latency at a camp location. */
    double tagCheckNs = 1.0;
    /** Pure-SRAM data cache access latency (Figure 13 variant). */
    double sramDataNs = 2.0;
    /**
     * Hash the camp-cache set index instead of the paper's low-bit
     * index. Low-bit is the default because it keeps a set's ways in
     * one DRAM row of the cache region (ROADMAP item 4); the hashed
     * variant exists to measure that claim under the DDR backend
     * (EXPERIMENTS.md).
     */
    bool hashedIndex = false;
};

/** Scheduler configuration (paper Section 5, Table 1). */
struct SchedConfig
{
    SchedPolicy policy = SchedPolicy::Colocate;
    /**
     * Registered scheduling-policy name (src/sched/policy_registry.hh).
     * Empty (the default) derives the policy from @ref policy; a
     * nonempty name overrides the enum and is looked up in the registry,
     * which is how out-of-tree design points plug in custom policies.
     */
    std::string policyName;
    /** Enable dynamic work stealing (Sl). */
    bool workStealing = false;
    /**
     * Hybrid weight B = alpha * Dinter; the paper's default alpha is half
     * the inter-stack mesh diameter (3 for the 4x4 mesh).
     */
    double hybridAlpha = 3.0;
    /** If true derive alpha = d/2 from the topology diameter. */
    bool autoAlpha = true;
    /** Workload exchange interval, in core cycles. */
    std::uint64_t exchangeIntervalCycles = 100000;
    /** Tasks in the prefetch window of each task queue. */
    std::uint32_t prefetchWindow = 2;
    /**
     * Outstanding demand-miss fetches the core/prefetch engine overlaps
     * for the executing task (1 = strictly in-order misses).
     */
    std::uint32_t missPipelineDepth = 1;
    /** Tasks in the scheduling window of each task queue. */
    std::uint32_t schedulingWindow = 8;
    /** Max tasks stolen per steal attempt. */
    std::uint32_t stealBatch = 8;
    /**
     * Weight of the task-descriptor shipping cost in the hybrid score
     * (fraction of the data-packet distance cost; a 32-byte descriptor
     * vs an 80-byte data packet gives ~0.4).
     */
    double forwardPenaltyFrac = 0.4;
    /** Latency of one scheduling-window decision (hardware scorer). */
    double decisionNs = 4.0;
    /**
     * Relative W deviation treated as balanced (costload = 0). Queue
     * workloads are exchanged coarsely; with shallow queues a +-1 task
     * difference is noise, not imbalance.
     */
    double costloadDeadband = 0.25;
    /**
     * Score all units exhaustively (paper behaviour). When false, a pruned
     * candidate set (camp/home locations + most idle units) is used; the
     * ablation bench shows this is nearly equivalent and much faster.
     */
    bool exhaustiveScoring = true;
};

/** Host (non-NDP) baseline H configuration (paper Section 6). */
struct HostConfig
{
    std::uint32_t cores = 16;
    double freqGHz = 2.6;
    /** Out-of-order issue width / effective IPC on compute. */
    double ipc = 2.0;
    /**
     * Effective memory-level parallelism factor for stall overlap. The
     * evaluated applications are pointer-chasing and irregular, which
     * limits achievable MLP well below the ROB bound.
     */
    double mlp = 1.5;
    CacheGeometry llc { 20ull * 1024 * 1024, 16, cachelineBytes,
                        ReplPolicy::Lru };
    double llcHitNs = 12.0;
    std::uint32_t ddrChannels = 4;
    /** Loaded random-access latency (row misses dominate). */
    double ddrLatencyNs = 90.0;
    /** DDR4-2400 per-channel bandwidth, GB/s. */
    double ddrGBsPerChannel = 19.2;
};

/**
 * Full system configuration. Defaults reproduce Table 1: 4x4 stacks in a
 * mesh, 8 NDP units per stack, 2 cores per unit at 2 GHz, 512 MB per unit.
 */
struct SystemConfig
{
    // ---- Topology ----
    std::uint32_t meshX = 4;
    std::uint32_t meshY = 4;
    std::uint32_t unitsPerStack = 8;
    std::uint32_t coresPerUnit = 2;
    double coreFreqGHz = 2.0;
    std::uint64_t memBytesPerUnit = 512ull * 1024 * 1024;

    // ---- Per-core structures ----
    CacheGeometry l1d { 64 * 1024, 4, cachelineBytes, ReplPolicy::Lru };
    CacheGeometry l1i { 32 * 1024, 2, cachelineBytes, ReplPolicy::Lru,
                        /*hashedIndex=*/false };
    std::uint64_t prefetchBufBytes = 4 * 1024;
    /** Prefetch-buffer hit latency (small SRAM FIFO next to the core). */
    double pbHitNs = 1.0;
    /** L1-I miss fill latency (local code fill, no remote traffic). */
    double l1iMissNs = 40.0;
    TlbConfig tlb;
    /** Instruction footprint of one task's handler (L1-I modeling). */
    std::uint32_t taskCodeBytes = 1024;

    // ---- Substrates ----
    DramConfig dram;
    NetConfig net;
    TravellerConfig traveller;
    SchedConfig sched;
    HostConfig host;

    // ---- Core energy model (Section 6) ----
    double corePjPerInstr = 371.0;
    double coreIdleUw = 163.0;
    /**
     * Background (static) power per NDP unit: DRAM refresh/standby plus
     * always-on logic. Not in Table 1; set so that the static share of
     * the Figure-7 baseline breakdown is in the paper's range.
     */
    double staticMwPerUnit = 12.0;

    /**
     * Hardware fault & straggler injection (off by default). All draws
     * are seeded from @ref seed, so injected faults keep runs
     * bit-deterministic.
     */
    FaultConfig fault;

    /**
     * Online serving mode (src/serve): an open-loop, seeded request
     * stream injected without epoch drain barriers. Off by default
     * (requests == 0); batch runs never read these knobs.
     */
    ServingConfig serving;

    /**
     * Hierarchical load balancing + hotness-driven re-homing
     * (src/sched/lb). Off by default (enabled == false); the `HLB`
     * family of design points turns it on, and classic designs never
     * read these knobs.
     */
    LbConfig lb;

    // ---- Simulation ----
    std::uint64_t seed = 1;
    /** Cap on bulk-synchronous epochs (0 = run to completion). */
    std::uint64_t maxEpochs = 0;
    /** Optional per-epoch CSV trace file ("" = disabled). */
    std::string traceFile;

    // ---- Observability (src/obs; see docs/OBSERVABILITY.md) ----
    /**
     * Chrome trace-event JSON output path ("" = tracing disabled).
     * When set, hot paths record task/cache/CAMP/NoC events into a
     * ring buffer and the run exports a Perfetto-loadable trace.
     * Tracing is observational only: it never changes simulated
     * timing, so metrics are bit-identical with tracing on or off.
     */
    std::string traceOut;
    /** Event ring-buffer capacity; oldest events drop once full. */
    std::uint64_t traceBufferEvents = 1ull << 20;
    /**
     * Dump interval stats from the hierarchical registry every N
     * bulk-synchronous epochs (0 = disabled). Counters print as
     * per-interval deltas, gauges as current values.
     */
    std::uint64_t statsInterval = 0;
    /** Interval-stats output path ("" = stdout). */
    std::string statsOut;

    // ---- Correctness checking (src/check; see docs/TESTING.md) ----
    /**
     * Arm the machine invariant checkers: conservation laws (task
     * accounting, hop/packet reconciliation, cache occupancy, energy
     * additivity, bandwidth-bucket capacity) are audited at every
     * epoch boundary and at run end, and any violation panic()s with
     * a full diagnostic. Like tracing, checking is observational only:
     * metrics are bit-identical with checkers on or off.
     */
    bool checkInvariants = false;

    // ---- Derived quantities ----
    std::uint32_t numStacks() const { return meshX * meshY; }
    std::uint32_t numUnits() const { return numStacks() * unitsPerStack; }
    std::uint32_t numCores() const { return numUnits() * coresPerUnit; }
    std::uint64_t totalMemBytes() const
    {
        return static_cast<std::uint64_t>(numUnits()) * memBytesPerUnit;
    }
    /** Ticks per core cycle (tick = 1 ps). */
    Tick ticksPerCycle() const
    {
        return static_cast<Tick>(1000.0 / coreFreqGHz);
    }
    /** Inter-stack mesh diameter in hops. */
    std::uint32_t meshDiameter() const { return (meshX - 1) + (meshY - 1); }
    /** Number of camp groups (C + 1, incl. the home group). */
    std::uint32_t numGroups() const { return traveller.campCount + 1; }
    /** DRAM cache bytes per unit. */
    std::uint64_t travellerBytesPerUnit() const
    {
        return memBytesPerUnit / traveller.ratioDenom;
    }
    /** DRAM cache sets per unit. */
    std::uint64_t travellerSets() const
    {
        return travellerBytesPerUnit() / cachelineBytes / traveller.assoc;
    }

    /** Sanity-check invariants; calls fatal() on bad user configs. */
    void validate() const;

    /** Pretty-print the configuration (bench_table1_config). */
    void print(std::ostream &os) const;
};

/** Named design points of Table 2 (plus the host-only H). */
enum class Design
{
    H,  ///< host CPU only
    B,  ///< co-locate with main element, no cache
    Sm, ///< lowest-distance, no cache
    Sl, ///< lowest-distance + work stealing, no cache
    Sh, ///< hybrid scheduling, no cache
    C,  ///< lowest-distance + Traveller Cache
    O,  ///< hybrid scheduling + Traveller Cache (full ABNDP)
    Hlb,  ///< O + hierarchical two-tier load balancing (extension)
    HlbM, ///< Hlb + hotness-driven data re-homing (extension)
};

/** Short display name of a design ("B", "Sm", ...). */
const char *designName(Design d);

/** Apply a Table-2 design point on top of a base configuration. */
SystemConfig applyDesign(SystemConfig base, Design d);

} // namespace abndp

#endif // ABNDP_COMMON_CONFIG_HH
