/**
 * @file
 * ASCII table formatting used by the benchmark harnesses to print the
 * rows/series of each paper table and figure.
 */

#ifndef ABNDP_COMMON_TABLE_HH
#define ABNDP_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace abndp
{

/** Column-aligned text table with a header row. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append one row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format doubles with fixed precision. */
    static std::string fmt(double v, int precision = 2);
    static std::string fmt(std::uint64_t v);

    void print(std::ostream &os) const;

  private:
    std::vector<std::vector<std::string>> rows;
};

} // namespace abndp

#endif // ABNDP_COMMON_TABLE_HH
