#include "common/stats.hh"

#include <cmath>

namespace abndp
{
namespace stats
{

double
Distribution::variance() const
{
    if (n < 2)
        return 0.0;
    double m = mean();
    double var = sumSq / n - m * m;
    return var > 0.0 ? var : 0.0;
}

double
Distribution::stddev() const
{
    return std::sqrt(variance());
}

void
StatGroup::addCounter(const std::string &n, const Counter *c)
{
    abndp_assert(counters.emplace(n, c).second, "duplicate counter ", n);
}

void
StatGroup::addScalar(const std::string &n, const Scalar *s)
{
    abndp_assert(scalars.emplace(n, s).second, "duplicate scalar ", n);
}

void
StatGroup::addDistribution(const std::string &n, const Distribution *d)
{
    abndp_assert(distributions.emplace(n, d).second,
                 "duplicate distribution ", n);
}

void
StatGroup::addChild(const StatGroup *g)
{
    children.push_back(g);
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    std::string base = prefix.empty() ? _name : prefix + "." + _name;
    for (const auto &[n, c] : counters)
        os << base << "." << n << " " << c->value() << "\n";
    for (const auto &[n, s] : scalars)
        os << base << "." << n << " " << s->value() << "\n";
    for (const auto &[n, d] : distributions) {
        os << base << "." << n << ".samples " << d->samples() << "\n";
        os << base << "." << n << ".mean " << d->mean() << "\n";
        os << base << "." << n << ".min " << d->min() << "\n";
        os << base << "." << n << ".max " << d->max() << "\n";
        os << base << "." << n << ".stddev " << d->stddev() << "\n";
    }
    for (const auto *g : children)
        g->dump(os, base);
}

} // namespace stats
} // namespace abndp
