#include "common/cli.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace abndp
{

void
CliFlags::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string tok = argv[i];
        if (tok.rfind("--", 0) != 0) {
            args.push_back(tok);
            continue;
        }
        tok = tok.substr(2);
        auto eq = tok.find('=');
        if (eq != std::string::npos) {
            flags[tok.substr(0, eq)] = tok.substr(eq + 1);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0)
                   != 0) {
            flags[tok] = argv[++i];
        } else {
            flags[tok] = "true";
        }
    }
}

bool
CliFlags::has(const std::string &name) const
{
    return flags.count(name) > 0;
}

std::string
CliFlags::getString(const std::string &name, const std::string &defval) const
{
    auto it = flags.find(name);
    return it == flags.end() ? defval : it->second;
}

std::int64_t
CliFlags::getInt(const std::string &name, std::int64_t defval) const
{
    auto it = flags.find(name);
    if (it == flags.end())
        return defval;
    return std::strtoll(it->second.c_str(), nullptr, 0);
}

std::uint64_t
CliFlags::getUint(const std::string &name, std::uint64_t defval) const
{
    auto it = flags.find(name);
    if (it == flags.end())
        return defval;
    return std::strtoull(it->second.c_str(), nullptr, 0);
}

double
CliFlags::getDouble(const std::string &name, double defval) const
{
    auto it = flags.find(name);
    if (it == flags.end())
        return defval;
    return std::strtod(it->second.c_str(), nullptr);
}

bool
CliFlags::getBool(const std::string &name, bool defval) const
{
    auto it = flags.find(name);
    if (it == flags.end())
        return defval;
    const std::string &v = it->second;
    if (v == "true" || v == "1" || v == "yes" || v == "on")
        return true;
    if (v == "false" || v == "0" || v == "no" || v == "off")
        return false;
    fatal("bad boolean flag --", name, "=", v);
}

std::string
tagPath(const std::string &path, const std::string &tag)
{
    auto slash = path.find_last_of('/');
    auto dot = path.find_last_of('.');
    if (dot == std::string::npos
        || (slash != std::string::npos && dot < slash))
        return path + "." + tag;
    return path.substr(0, dot) + "." + tag + path.substr(dot);
}

} // namespace abndp
