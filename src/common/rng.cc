#include "common/rng.hh"

#include <cmath>

namespace abndp
{

double
Rng::gaussian()
{
    // Box-Muller; discards the second variate for simplicity.
    double u1 = uniform();
    double u2 = uniform();
    // Guard against log(0).
    if (u1 <= 0.0)
        u1 = 0x1.0p-53;
    constexpr double two_pi = 6.283185307179586476925286766559;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
}

} // namespace abndp
